package repro

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/ref"
)

// newSys builds a default EPXA1 system or fails the test.
func newSys(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func u32s(vals []uint32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

func TestQuickstartVecAdd(t *testing.T) {
	sys := newSys(t, Config{})
	p, err := sys.NewProcess("add")
	if err != nil {
		t.Fatal(err)
	}
	// 2048 elements -> three 8 KB objects (12 pages) + the parameter page
	// against 8 frames: demand paging is exercised.
	n := 2048
	a, _ := p.Alloc(4 * n)
	b, _ := p.Alloc(4 * n)
	c, _ := p.Alloc(4 * n)
	av := make([]uint32, n)
	bv := make([]uint32, n)
	rng := rand.New(rand.NewSource(41))
	for i := range av {
		av[i] = rng.Uint32()
		bv[i] = rng.Uint32()
	}
	if err := a.Write(u32s(av)); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(u32s(bv)); err != nil {
		t.Fatal(err)
	}
	if err := p.FPGALoad(VecAddBitstream("EPXA1")); err != nil {
		t.Fatal(err)
	}
	if err := p.FPGAMapObject(VecAddObjA, a, In); err != nil {
		t.Fatal(err)
	}
	if err := p.FPGAMapObject(VecAddObjB, b, In); err != nil {
		t.Fatal(err)
	}
	if err := p.FPGAMapObject(VecAddObjC, c, Out); err != nil {
		t.Fatal(err)
	}
	rep, err := p.FPGAExecute(uint32(n))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := c.Read()
	want := ref.VecAdd(av, bv)
	for i := range want {
		got := binary.LittleEndian.Uint32(raw[4*i:])
		if got != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got, want[i])
		}
	}
	// 3 x 8 KB objects exceed the 16 KB DP RAM, so demand paging must
	// have occurred.
	if rep.VIM.Faults == 0 {
		t.Fatal("expected demand-paging faults for 24 KB of objects")
	}
	if rep.HWPs <= 0 || rep.SWDPPs <= 0 {
		t.Fatalf("missing time components: %+v", rep)
	}
}

// runADPCM executes the coprocessor version over nbytes of input under the
// given config and returns the report plus output correctness.
func runADPCM(t *testing.T, cfg Config, nbytes int, seed int64) *Report {
	t.Helper()
	sys := newSys(t, cfg)
	p, err := sys.NewProcess("adpcm")
	if err != nil {
		t.Fatal(err)
	}
	in, _ := p.Alloc(nbytes)
	out, _ := p.Alloc(nbytes * 4)
	packed := make([]byte, nbytes)
	rand.New(rand.NewSource(seed)).Read(packed)
	if err := in.Write(packed); err != nil {
		t.Fatal(err)
	}
	if err := p.FPGALoad(ADPCMBitstream(sys.Board().Spec.Name)); err != nil {
		t.Fatal(err)
	}
	if err := p.FPGAMapObject(ADPCMObjIn, in, In); err != nil {
		t.Fatal(err)
	}
	if err := p.FPGAMapObject(ADPCMObjOut, out, Out); err != nil {
		t.Fatal(err)
	}
	rep, err := p.FPGAExecute(uint32(nbytes))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := out.Read()
	want := ref.ADPCMDecode(ref.ADPCMState{}, packed)
	for i, w := range want {
		got := int16(binary.LittleEndian.Uint16(raw[2*i:]))
		if got != w {
			t.Fatalf("sample %d: got %d, want %d (cfg %+v)", i, got, w, cfg)
		}
	}
	return rep
}

func TestADPCMNoFaultsAt2KB(t *testing.T) {
	// §4.1: "for an input data size of 2 KB ... all data can fit the
	// dual-port RAM and the application execution completes without
	// causing page faults."
	rep := runADPCM(t, Config{}, 2048, 7)
	if rep.VIM.Faults != 0 {
		t.Fatalf("faults = %d, want 0 at 2 KB", rep.VIM.Faults)
	}
}

func TestADPCMFaultsFrom4KB(t *testing.T) {
	// §4.1: "For all other input sizes, page faults occur."
	rep := runADPCM(t, Config{}, 4096, 7)
	if rep.VIM.Faults == 0 {
		t.Fatal("expected faults at 4 KB")
	}
}

func TestADPCMAllPoliciesCorrect(t *testing.T) {
	for _, pol := range []string{"fifo", "lru", "clock", "random"} {
		rep := runADPCM(t, Config{Policy: pol, Seed: 99}, 4096, 11)
		if rep.Policy != pol {
			t.Fatalf("report policy = %q, want %q", rep.Policy, pol)
		}
	}
}

func TestADPCMBounceBufferCostsMore(t *testing.T) {
	lean := runADPCM(t, Config{}, 8192, 13)
	bounce := runADPCM(t, Config{BounceBuffer: true}, 8192, 13)
	if bounce.SWDPPs <= lean.SWDPPs {
		t.Fatalf("bounce SW(DP) %.0f <= lean %.0f", bounce.SWDPPs, lean.SWDPPs)
	}
	// Identical hardware activity either way.
	if bounce.HWCy != lean.HWCy {
		t.Fatalf("bounce changed hardware cycles: %d vs %d", bounce.HWCy, lean.HWCy)
	}
}

func TestADPCMPrefetchReducesFaults(t *testing.T) {
	plain := runADPCM(t, Config{}, 8192, 17)
	pf := runADPCM(t, Config{PrefetchPages: 2}, 8192, 17)
	if pf.VIM.Faults >= plain.VIM.Faults {
		t.Fatalf("prefetch did not reduce faults: %d vs %d", pf.VIM.Faults, plain.VIM.Faults)
	}
}

func TestADPCMPipelinedIMUFasterHW(t *testing.T) {
	plain := runADPCM(t, Config{}, 4096, 19)
	pipe := runADPCM(t, Config{PipelinedIMU: true}, 4096, 19)
	if pipe.HWPs >= plain.HWPs {
		t.Fatalf("pipelined IMU HW time %.0f >= multicycle %.0f", pipe.HWPs, plain.HWPs)
	}
}

// runIDEA executes the IDEA coprocessor over n input bytes.
func runIDEA(t *testing.T, cfg Config, nbytes int, seed int64) *Report {
	t.Helper()
	sys := newSys(t, cfg)
	p, err := sys.NewProcess("idea")
	if err != nil {
		t.Fatal(err)
	}
	in, _ := p.Alloc(nbytes)
	out, _ := p.Alloc(nbytes)
	rng := rand.New(rand.NewSource(seed))
	var key IDEAKey
	rng.Read(key[:])
	plain := make([]byte, nbytes)
	rng.Read(plain)
	if err := in.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := p.FPGALoad(IDEABitstream(sys.Board().Spec.Name)); err != nil {
		t.Fatal(err)
	}
	if err := p.FPGAMapObject(IDEAObjIn, in, In); err != nil {
		t.Fatal(err)
	}
	if err := p.FPGAMapObject(IDEAObjOut, out, Out); err != nil {
		t.Fatal(err)
	}
	rep, err := p.FPGAExecute(IDEAEncryptParams(key, nbytes/8)...)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := out.Read()
	ek := ref.ExpandIDEAKey(key)
	want := ref.IDEAApply(&ek, plain)
	if !bytes.Equal(raw, want) {
		t.Fatalf("ciphertext mismatch (cfg %+v, n=%d)", cfg, nbytes)
	}
	return rep
}

func TestIDEACorrectAcrossSizes(t *testing.T) {
	// 4 KB through 32 KB, the Figure 9 sweep. 16 KB and 32 KB exceed the
	// dual-port RAM; the virtual interface must page transparently with
	// no change to application or coprocessor.
	for _, n := range []int{4096, 8192, 16384, 32768} {
		rep := runIDEA(t, Config{}, n, int64(n))
		if n >= 16384 && rep.VIM.Faults == 0 {
			t.Fatalf("expected faults at %d bytes", n)
		}
	}
}

func TestIDEADecryptRoundTripOnHardware(t *testing.T) {
	sys := newSys(t, Config{})
	p, _ := sys.NewProcess("idea-rt")
	n := 4096
	rng := rand.New(rand.NewSource(77))
	var key IDEAKey
	rng.Read(key[:])
	plain := make([]byte, n)
	rng.Read(plain)
	ek := ref.ExpandIDEAKey(key)
	ct := ref.IDEAApply(&ek, plain)

	in, _ := p.Alloc(n)
	out, _ := p.Alloc(n)
	_ = in.Write(ct)
	if err := p.FPGALoad(IDEABitstream("EPXA1")); err != nil {
		t.Fatal(err)
	}
	_ = p.FPGAMapObject(IDEAObjIn, in, In)
	_ = p.FPGAMapObject(IDEAObjOut, out, Out)
	if _, err := p.FPGAExecute(IDEADecryptParams(key, n/8)...); err != nil {
		t.Fatal(err)
	}
	raw, _ := out.Read()
	if !bytes.Equal(raw, plain) {
		t.Fatal("hardware decryption did not recover the plaintext")
	}
}

func TestPortabilityAcrossBoards(t *testing.T) {
	// §4: the same application and coprocessor run unmodified on devices
	// with different dual-port RAM sizes; larger memories mean fewer
	// faults.
	var faults []uint64
	for _, board := range []string{"EPXA1", "EPXA4", "EPXA10"} {
		rep := runIDEA(t, Config{Board: board}, 16384, 3)
		faults = append(faults, rep.VIM.Faults)
	}
	if !(faults[0] > faults[1] && faults[1] >= faults[2]) {
		t.Fatalf("faults did not shrink with DP RAM size: %v", faults)
	}
}

func TestSoftwareVersionsMatchHardware(t *testing.T) {
	sys := newSys(t, Config{})
	p, _ := sys.NewProcess("sw")
	n := 2048
	in, _ := p.Alloc(n)
	outHW, _ := p.Alloc(n * 4)
	outSW, _ := p.Alloc(n * 4)
	packed := make([]byte, n)
	rand.New(rand.NewSource(55)).Read(packed)
	_ = in.Write(packed)

	swRep, err := p.RunADPCMDecodeSW(in, outSW)
	if err != nil {
		t.Fatal(err)
	}
	if swRep.PurePs <= 0 {
		t.Fatal("software run reported no time")
	}
	if err := p.FPGALoad(ADPCMBitstream("EPXA1")); err != nil {
		t.Fatal(err)
	}
	_ = p.FPGAMapObject(ADPCMObjIn, in, In)
	_ = p.FPGAMapObject(ADPCMObjOut, outHW, Out)
	if _, err := p.FPGAExecute(uint32(n)); err != nil {
		t.Fatal(err)
	}
	hw, _ := outHW.Read()
	swb, _ := outSW.Read()
	if !bytes.Equal(hw, swb) {
		t.Fatal("software and hardware outputs differ")
	}
}

func TestExclusivePLDOwnership(t *testing.T) {
	sys := newSys(t, Config{})
	p1, _ := sys.NewProcess("p1")
	p2, _ := sys.NewProcess("p2")
	if err := p1.FPGALoad(VecAddBitstream("EPXA1")); err != nil {
		t.Fatal(err)
	}
	if err := p2.FPGALoad(VecAddBitstream("EPXA1")); err == nil {
		t.Fatal("second process acquired a busy PLD")
	}
	p1.FPGAUnload()
	if err := p2.FPGALoad(VecAddBitstream("EPXA1")); err != nil {
		t.Fatalf("PLD not released: %v", err)
	}
}

func TestExecuteBeforeLoadFails(t *testing.T) {
	sys := newSys(t, Config{})
	p, _ := sys.NewProcess("early")
	if _, err := p.FPGAExecute(1); err == nil {
		t.Fatal("FPGA_EXECUTE accepted without FPGA_LOAD")
	}
}

func TestWrongDeviceBitstreamRejected(t *testing.T) {
	sys := newSys(t, Config{Board: "EPXA4"})
	p, _ := sys.NewProcess("wrong")
	if err := p.FPGALoad(VecAddBitstream("EPXA1")); err == nil {
		t.Fatal("EPXA1 image accepted on EPXA4")
	}
}
