// Golden determinism tests for the fleet dispatch layer: every pinned FLEET
// cell — dispatch policy x pool size at twice the single-board knee per
// board — runs under BOTH simulation schedulers, and the measured fleet
// aggregates must match the committed values bit for bit. The acceptance
// property of the fleet work is asserted on the pinned cells themselves:
// at 4 boards the locality-aware policies strictly beat seeded-random
// routing on goodput AND fleet-wide configuration traffic.
package repro_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/rcsched"
	"repro/internal/sim"
)

// fleetCell is the pinned measurement record of one fleet cell.
type fleetCell struct {
	GoodJobs        int     `json:"good_jobs"`
	Misses          int     `json:"misses"`
	Reconfigs       int     `json:"reconfigs"`
	TotalReconfigPs float64 `json:"total_reconfig_ps"`
	MakespanPs      float64 `json:"makespan_ps"`
	GoodputRPS      float64 `json:"goodput_rps"`
	AchievedRPS     float64 `json:"achieved_rps"`
	P99LatencyPs    float64 `json:"p99_latency_ps"`
	MissRate        float64 `json:"miss_rate"`
	UtilMin         float64 `json:"util_min"`
	UtilMean        float64 `json:"util_mean"`
	UtilMax         float64 `json:"util_max"`
}

func fleetCellOf(rep *fleet.Report) fleetCell {
	return fleetCell{
		GoodJobs:        rep.GoodJobs,
		Misses:          rep.Misses,
		Reconfigs:       rep.Reconfigs,
		TotalReconfigPs: rep.TotalReconfigPs,
		MakespanPs:      rep.MakespanPs,
		GoodputRPS:      rep.GoodputRPS,
		AchievedRPS:     rep.AchievedRPS,
		P99LatencyPs:    rep.P99LatencyPs,
		MissRate:        rep.MissRate,
		UtilMin:         rep.UtilMin,
		UtilMean:        rep.UtilMean,
		UtilMax:         rep.UtilMax,
	}
}

// fleetCellSpec enumerates the pinned fleet cells: every dispatch policy
// over pools of 2, 4 and 8 boards, offered twice the single-board knee per
// board. The rate is a knee multiple rather than a raw RPS so the fixture
// tracks the configuration's measured capacity, like the SATURATE cells.
type fleetCellSpec struct {
	dispatch string
	boards   int
}

func allFleetCells() []fleetCellSpec {
	var cells []fleetCellSpec
	for _, boards := range exp.FleetBoardCounts() {
		for _, dispatch := range exp.FleetDispatches() {
			cells = append(cells, fleetCellSpec{dispatch, boards})
		}
	}
	return cells
}

func (c fleetCellSpec) name() string {
	return fmt.Sprintf("%s/%db", c.dispatch, c.boards)
}

func (c fleetCellSpec) run(kneeRPS float64) (*fleet.Report, error) {
	jobs, err := exp.FleetStream(c.boards, kneeRPS)
	if err != nil {
		return nil, err
	}
	return fleet.Run(exp.FleetConfig(c.dispatch, c.boards, rcsched.AdmitOff), jobs)
}

const fleetCellsPath = "testdata/fleet_cells.json"

// fleetGolden is the committed golden file: the single-board knee the
// offered rates scale from, plus every pinned cell.
type fleetGolden struct {
	KneeRPS float64              `json:"knee_rps"`
	Cells   map[string]fleetCell `json:"cells"`
}

// TestGoldenFleetCells pins the fleet experiment end to end under both the
// lockstep reference scheduler and the event-driven default (which must
// agree bit for bit): the single-board knee the stream scales from, then
// every dispatch x pool-size cell, enforcing the committed golden file.
// Regenerate with -update-golden.
func TestGoldenFleetCells(t *testing.T) {
	if raceEnabled {
		t.Skip("fleet golden sweep under -race: see race_enabled_test.go")
	}
	var want *fleetGolden
	if !*updateGolden {
		data, err := os.ReadFile(fleetCellsPath)
		if err != nil {
			t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
		}
		want = &fleetGolden{}
		if err := json.Unmarshal(data, want); err != nil {
			t.Fatal(err)
		}
		if len(want.Cells) != len(allFleetCells()) {
			t.Errorf("golden file has %d cells, expected %d", len(want.Cells), len(allFleetCells()))
		}
	}

	// The knee the fleet rates scale from is the saturation fixture's: both
	// schedulers must agree, and the committed value must not drift.
	ramp := func() (float64, error) {
		r, err := exp.SaturateRamp(exp.SaturateConfig("slack", rcsched.AdmitOff))
		if err != nil {
			return 0, err
		}
		return r.KneeRPS, nil
	}
	lockKnee, err := runWith(sim.Lockstep, ramp)
	if err != nil {
		t.Fatal(err)
	}
	evntKnee, err := runWith(sim.EventDriven, ramp)
	if err != nil {
		t.Fatal(err)
	}
	if lockKnee != evntKnee {
		t.Fatalf("schedulers disagree on the single-board knee: lockstep %.0f, event %.0f", lockKnee, evntKnee)
	}
	if lockKnee == 0 {
		t.Fatal("the canonical ramp found no knee to scale the fleet rates from")
	}
	if want != nil && lockKnee != want.KneeRPS {
		t.Errorf("knee drifted: got %.0f, want %.0f", lockKnee, want.KneeRPS)
	}

	got := map[string]fleetCell{}
	for _, spec := range allFleetCells() {
		spec := spec
		t.Run(spec.name(), func(t *testing.T) {
			run := func() (*fleet.Report, error) { return spec.run(lockKnee) }
			lockRep, err := runWith(sim.Lockstep, run)
			if err != nil {
				t.Fatal(err)
			}
			evntRep, err := runWith(sim.EventDriven, run)
			if err != nil {
				t.Fatal(err)
			}
			lock, evnt := fleetCellOf(lockRep), fleetCellOf(evntRep)
			if lock != evnt {
				t.Errorf("schedulers disagree:\n lockstep %+v\n event    %+v", lock, evnt)
			}
			got[spec.name()] = lock
			if want != nil {
				w, ok := want.Cells[spec.name()]
				if !ok {
					t.Errorf("cell %s missing from golden file (re-run with -update-golden)", spec.name())
				} else if lock != w {
					t.Errorf("cell drifted:\n got  %+v\n want %+v", lock, w)
				}
			}
		})
	}

	// The acceptance property of the fleet work, asserted on the pinned
	// cells themselves: at 2x the single-board knee per board on 4 boards,
	// the locality-aware policies strictly beat seeded-random routing on
	// goodput AND on fleet-wide configuration traffic.
	if random, ok := got["random/4b"]; ok {
		for _, dispatch := range []string{fleet.Affinity, fleet.Po2} {
			cell, ok := got[dispatch+"/4b"]
			if !ok {
				continue // a -run subtest filter skipped the cell
			}
			if cell.GoodputRPS <= random.GoodputRPS {
				t.Errorf("%s goodput %.0f jobs/s not above random's %.0f at 4 boards",
					dispatch, cell.GoodputRPS, random.GoodputRPS)
			}
			if cell.TotalReconfigPs >= random.TotalReconfigPs {
				t.Errorf("%s config traffic %.3f ms not below random's %.3f ms at 4 boards",
					dispatch, cell.TotalReconfigPs/1e9, random.TotalReconfigPs/1e9)
			}
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(&fleetGolden{KneeRPS: lockKnee, Cells: got}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fleetCellsPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cells to %s (knee %.0f jobs/s)", len(got), fleetCellsPath, lockKnee)
	}
}
