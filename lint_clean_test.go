package repro_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

// TestLintClean runs the full vimlint suite — walltime, seededrand,
// maporder, psunits, passiveobserver — over every package in the module,
// test files included. The determinism and passivity contracts the
// analyzers enforce are the precondition for every golden-cell and
// scenario-replay test in this file's siblings, so a violation anywhere
// is a tier-1 failure, not a style nit. Suppressions require an in-source
// //lint:allow <analyzer> <reason> directive, which the suite itself
// validates.
func TestLintClean(t *testing.T) {
	pkgs, err := load.New(".").Packages(true, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader found no packages")
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
