// Allocation-regression tests for the sparse memory model: booting even the
// largest board must not zero (or allocate) memory proportional to the
// simulated SDRAM.
package repro_test

import (
	"testing"

	"repro"
	"repro/internal/mem"
	"repro/internal/platform"
)

// TestByteStoreLazyPages asserts that a large store materialises no backing
// pages until written, and only the touched pages afterwards.
func TestByteStoreLazyPages(t *testing.T) {
	s := mem.NewByteStore(256 << 20)
	if got := s.MaterializedBytes(); got != 0 {
		t.Fatalf("fresh 256 MB store materialised %d bytes, want 0", got)
	}
	if v, err := s.Read32(128 << 20); err != nil || v != 0 {
		t.Fatalf("unwritten word = %#x, %v; want 0, nil", v, err)
	}
	if got := s.MaterializedBytes(); got != 0 {
		t.Fatalf("reads materialised %d bytes, want 0", got)
	}
	if err := s.SetByte(200<<20, 0xab); err != nil {
		t.Fatal(err)
	}
	if got := s.MaterializedBytes(); got <= 0 || got >= 1<<20 {
		t.Fatalf("one write materialised %d bytes, want one page (0 < n < 1 MB)", got)
	}
}

// TestNewSystemNoEagerSDRAMZeroing bounds the construction cost of the
// largest board: allocating a System must stay far below the 256 MB of
// simulated SDRAM it models (the seed implementation allocated and zeroed
// the whole array up front).
func TestNewSystemNoEagerSDRAMZeroing(t *testing.T) {
	if testing.Short() {
		t.Skip("testing.Benchmark in -short mode")
	}
	spec := platform.EPXA10()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys, err := repro.NewSystem(repro.Config{Board: "EPXA10"})
			if err != nil {
				b.Fatal(err)
			}
			_ = sys
		}
	})
	limit := int64(spec.SDRAMBytes / 8)
	if got := res.AllocedBytesPerOp(); got > limit {
		t.Fatalf("NewSystem(EPXA10) allocates %d B/op, want <= %d (SDRAM is %d)",
			got, limit, spec.SDRAMBytes)
	}
	board, err := platform.NewBoard(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := board.SDRAM.Store().MaterializedBytes(); got != 0 {
		t.Fatalf("fresh EPXA10 board materialised %d SDRAM bytes, want 0", got)
	}
}
