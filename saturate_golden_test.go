// Golden determinism tests for the open-loop saturation layer: the RPS
// ramp's detected knee and every pinned SATURATE cell — offered rate x
// policy x admission mode — run under BOTH simulation schedulers, and the
// measured metrics must match the committed values bit for bit.
package repro_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/exp"
	"repro/internal/rcsched"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// saturateCell is the pinned measurement record of one saturation cell.
type saturateCell struct {
	Admitted      int     `json:"admitted"`
	Degraded      int     `json:"degraded"`
	Rejected      int     `json:"rejected"`
	GoodJobs      int     `json:"good_jobs"`
	MakespanPs    float64 `json:"makespan_ps"`
	GoodputRPS    float64 `json:"goodput_rps"`
	AchievedRPS   float64 `json:"achieved_rps"`
	ShedRate      float64 `json:"shed_rate"`
	P99LatencyPs  float64 `json:"p99_latency_ps"`
	P99AdmittedPs float64 `json:"p99_admitted_ps"`
	MissRate      float64 `json:"miss_rate"`
	Faults        uint64  `json:"faults"`
}

func saturateCellOf(rep *rcsched.Report) saturateCell {
	return saturateCell{
		Admitted:      rep.Admitted,
		Degraded:      rep.Degraded,
		Rejected:      rep.Rejected,
		GoodJobs:      rep.GoodJobs,
		MakespanPs:    rep.MakespanPs,
		GoodputRPS:    rep.GoodputRPS,
		AchievedRPS:   rep.AchievedRPS,
		ShedRate:      rep.ShedRate,
		P99LatencyPs:  rep.P99LatencyPs,
		P99AdmittedPs: rep.P99AdmittedPs,
		MissRate:      rep.MissRate,
		Faults:        rep.VIM.Faults,
	}
}

// saturateCellSpec enumerates the pinned saturation cells: both deadline
// policies at the detected knee and at twice the knee, with admission off,
// rejecting, and degrading. The rate is a knee multiple rather than a raw
// RPS so the fixture tracks the configuration's measured capacity.
type saturateCellSpec struct {
	policy string
	admit  string
	mult   float64
}

func allSaturateCells() []saturateCellSpec {
	var cells []saturateCellSpec
	for _, mult := range []float64{1, 2} {
		for _, policy := range []string{"slack", "edf"} {
			for _, admit := range []string{rcsched.AdmitOff, rcsched.AdmitReject, rcsched.AdmitDegrade} {
				cells = append(cells, saturateCellSpec{policy, admit, mult})
			}
		}
	}
	return cells
}

func (c saturateCellSpec) name() string {
	return fmt.Sprintf("%s/%s/%gx", c.policy, c.admit, c.mult)
}

func (c saturateCellSpec) run(kneeRPS float64) (*rcsched.Report, error) {
	jobs, err := exp.SaturateStream(c.mult * kneeRPS)
	if err != nil {
		return nil, err
	}
	return rcsched.Serve(exp.SaturateConfig(c.policy, c.admit), jobs)
}

const saturateCellsPath = "testdata/saturate_cells.json"

// saturateGolden is the committed golden file: the ramp's detected knee
// plus every pinned cell.
type saturateGolden struct {
	KneeRPS       float64                 `json:"knee_rps"`
	SaturationRPS float64                 `json:"saturation_rps"`
	Cells         map[string]saturateCell `json:"cells"`
}

// TestGoldenSaturateCells pins the saturation experiment end to end under
// both the lockstep reference scheduler and the event-driven default (which
// must agree bit for bit): first the RPS ramp's detected knee, then every
// offered-rate x policy x admission cell at the knee and past it, enforcing
// the committed golden file. Regenerate with -update-golden.
func TestGoldenSaturateCells(t *testing.T) {
	var want *saturateGolden
	if !*updateGolden {
		data, err := os.ReadFile(saturateCellsPath)
		if err != nil {
			t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
		}
		want = &saturateGolden{}
		if err := json.Unmarshal(data, want); err != nil {
			t.Fatal(err)
		}
		if len(want.Cells) != len(allSaturateCells()) {
			t.Errorf("golden file has %d cells, expected %d", len(want.Cells), len(allSaturateCells()))
		}
	}

	// The ramp itself is part of the fixture: both schedulers must detect
	// the same knee, and the committed knee must not drift.
	ramp := func() (*traffic.Ramp, error) {
		return exp.SaturateRamp(exp.SaturateConfig("slack", rcsched.AdmitOff))
	}
	lockRamp, err := runWith(sim.Lockstep, ramp)
	if err != nil {
		t.Fatal(err)
	}
	evntRamp, err := runWith(sim.EventDriven, ramp)
	if err != nil {
		t.Fatal(err)
	}
	if lockRamp.KneeRPS != evntRamp.KneeRPS || lockRamp.SaturationRPS != evntRamp.SaturationRPS {
		t.Fatalf("schedulers disagree on the knee: lockstep %.0f/%.0f, event %.0f/%.0f",
			lockRamp.KneeRPS, lockRamp.SaturationRPS, evntRamp.KneeRPS, evntRamp.SaturationRPS)
	}
	if lockRamp.SaturationRPS == 0 {
		t.Fatal("the canonical ramp never saturated the board")
	}
	if want != nil && (lockRamp.KneeRPS != want.KneeRPS || lockRamp.SaturationRPS != want.SaturationRPS) {
		t.Errorf("knee drifted: got %.0f/%.0f, want %.0f/%.0f",
			lockRamp.KneeRPS, lockRamp.SaturationRPS, want.KneeRPS, want.SaturationRPS)
	}
	knee := lockRamp.KneeRPS

	got := map[string]saturateCell{}
	for _, spec := range allSaturateCells() {
		spec := spec
		t.Run(spec.name(), func(t *testing.T) {
			run := func() (*rcsched.Report, error) { return spec.run(knee) }
			lockRep, err := runWith(sim.Lockstep, run)
			if err != nil {
				t.Fatal(err)
			}
			evntRep, err := runWith(sim.EventDriven, run)
			if err != nil {
				t.Fatal(err)
			}
			lock, evnt := saturateCellOf(lockRep), saturateCellOf(evntRep)
			if lock != evnt {
				t.Errorf("schedulers disagree:\n lockstep %+v\n event    %+v", lock, evnt)
			}
			got[spec.name()] = lock
			if want != nil {
				w, ok := want.Cells[spec.name()]
				if !ok {
					t.Errorf("cell %s missing from golden file (re-run with -update-golden)", spec.name())
				} else if lock != w {
					t.Errorf("cell drifted:\n got  %+v\n want %+v", lock, w)
				}
			}
		})
	}

	// The acceptance property of the admission-control work, asserted on
	// the pinned cells themselves: past saturation (twice the detected
	// knee), shedding provably-late jobs strictly improves goodput and
	// strictly tightens the admitted-job p99 against admitting everything,
	// for both deadline policies — and actually sheds something, or the
	// comparison is vacuous. At the knee, admission must stay close to
	// inert: a healthy board should not shed its whole stream.
	for _, policy := range []string{"slack", "edf"} {
		off, okOff := got[policy+"/off/2x"]
		rej, okRej := got[policy+"/reject/2x"]
		if !okOff || !okRej {
			continue // a -run subtest filter skipped one side
		}
		if rej.Rejected == 0 {
			t.Errorf("%s: admission shed nothing at 2x the knee", policy)
		}
		if rej.GoodputRPS <= off.GoodputRPS {
			t.Errorf("%s: admission goodput %.0f jobs/s not above admit-everything's %.0f",
				policy, rej.GoodputRPS, off.GoodputRPS)
		}
		if rej.P99AdmittedPs >= off.P99AdmittedPs {
			t.Errorf("%s: admitted-job p99 %.3f ms not below admit-everything's %.3f ms",
				policy, rej.P99AdmittedPs/1e9, off.P99AdmittedPs/1e9)
		}
		if knee1, ok := got[policy+"/reject/1x"]; ok && knee1.Rejected > knee1.Admitted {
			t.Errorf("%s: admission shed most of a knee-rate stream (%d of %d)",
				policy, knee1.Rejected, knee1.Admitted+knee1.Rejected)
		}
		if deg, ok := got[policy+"/degrade/2x"]; ok && deg.Rejected != 0 {
			t.Errorf("%s: degrade mode rejected %d jobs outright", policy, deg.Rejected)
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(&saturateGolden{
			KneeRPS:       lockRamp.KneeRPS,
			SaturationRPS: lockRamp.SaturationRPS,
			Cells:         got,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(saturateCellsPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cells to %s (knee %.0f jobs/s)", len(got), saturateCellsPath, lockRamp.KneeRPS)
	}
}
