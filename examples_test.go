// Smoke tests for the example programs: every example must build, and the
// quickstart must run end to end and verify its result on the simulated
// coprocessor, so the first command a new user tries is known-good.
package repro_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesBuild compiles every example program.
func TestExamplesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	out, err := exec.Command("go", "build", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("examples failed to build: %v\n%s", err, out)
	}
}

// TestQuickstartExampleRuns executes examples/quickstart and asserts that
// it verified the coprocessor result and exercised demand paging (the
// documented expected output).
func TestQuickstartExampleRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	out, err := exec.Command("go", "run", "./examples/quickstart").CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart failed: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "verified on the coprocessor") {
		t.Errorf("quickstart did not report verification:\n%s", text)
	}
	if !strings.Contains(text, "page faults") {
		t.Errorf("quickstart did not report paging activity:\n%s", text)
	}
}
