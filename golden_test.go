// Golden determinism tests: the simulator's measured results are part of its
// contract. These tables were captured from the seed implementation (eager
// flat memory, cross-multiplied scheduler, no fast paths) and every value is
// compared exactly — the allocation-free kernel, the sparse memory model and
// the idle bulk-skip must reproduce the seed's simulated metrics bit for
// bit, not merely approximately.
package repro_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/platform"
	"repro/internal/sim"
)

// -update-golden regenerates testdata/golden_cells.json from the lockstep
// reference scheduler (the seed-equivalent engine). Committed values are
// then enforced against BOTH schedulers on every run.
var updateGolden = flag.Bool("update-golden", false,
	"regenerate testdata/golden_cells.json from the lockstep reference engine")

// eq compares a float64 metric for exact (bitwise) equality.
func eq(t *testing.T, what string, got, want float64) {
	t.Helper()
	if got != want {
		t.Errorf("%s = %v, want exactly %v", what, got, want)
	}
}

// TestGoldenFig3 pins the three execution times of the motivating example.
func TestGoldenFig3(t *testing.T) {
	res, err := exp.RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "fig3 sw_ms", res.Series["sw_ms"], 5.012135338345864)
	eq(t, "fig3 typ_ms", res.Series["typ_ms"], 2.6853947368421047)
	eq(t, "fig3 vim_ms", res.Series["vim_ms"], 3.079047932330827)
}

// TestGoldenFig7 pins the 4-cycle translated read latency.
func TestGoldenFig7(t *testing.T) {
	res, err := exp.RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "fig7 latency_cycles", res.Series["latency_cycles"], 4)
	eq(t, "fig7 read_value_ok", res.Series["read_value_ok"], 1)
}

// TestGoldenFig8 pins the 8 KB adpcmdecode VIM run (the benchmarked cell).
func TestGoldenFig8(t *testing.T) {
	rep, err := exp.AdpcmVIM(repro.Config{}, 8192, 800+8192)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "fig8 8KB total_ps", rep.TotalPs(), 1.1130160714285715e+10)
	if rep.VIM.Faults != 16 {
		t.Errorf("fig8 8KB faults = %d, want 16", rep.VIM.Faults)
	}
}

// goldenCell is the pinned measurement record of one experiment cell.
type goldenCell struct {
	TotalPs float64 `json:"total_ps"`
	HWPs    float64 `json:"hw_ps"`
	SWDPPs  float64 `json:"swdp_ps"`
	SWIMUPs float64 `json:"swimu_ps"`
	SWOSPs  float64 `json:"swos_ps"`
	Faults  uint64  `json:"faults"`
	HWCy    int64   `json:"hw_cy"`
}

func cellOf(rep *core.Report) goldenCell {
	return goldenCell{
		TotalPs: rep.TotalPs(),
		HWPs:    rep.HWPs,
		SWDPPs:  rep.SWDPPs,
		SWIMUPs: rep.SWIMUPs,
		SWOSPs:  rep.SWOSPs,
		Faults:  rep.VIM.Faults,
		HWCy:    rep.HWCy,
	}
}

// goldenCellSpec enumerates every policy × board × workload cell of the
// repro.go experiment space. Dataset sizes are chosen to exceed every
// board's dual-port RAM so the replacement policy actually decides.
type goldenCellSpec struct {
	policy, board, workload string
}

func allGoldenCells() []goldenCellSpec {
	var cells []goldenCellSpec
	for _, policy := range []string{"fifo", "lru", "clock", "random"} {
		for _, board := range []string{"EPXA1", "EPXA4", "EPXA10"} {
			for _, workload := range []string{"vecadd", "adpcm", "idea"} {
				cells = append(cells, goldenCellSpec{policy, board, workload})
			}
		}
	}
	// The multi-coprocessor sessions cells: concurrent IDEA+ADPCM behind
	// one VIM, half the page pool each, under both arbitration policies
	// (the policy column carries the arbitration name).
	for _, arb := range []string{"static", "global-lru"} {
		for _, board := range []string{"EPXA1", "EPXA4", "EPXA10"} {
			cells = append(cells, goldenCellSpec{arb, board, "sessions"})
		}
	}
	return cells
}

func (c goldenCellSpec) name() string {
	return fmt.Sprintf("%s/%s/%s", c.workload, c.board, c.policy)
}

func (c goldenCellSpec) run() (*core.Report, error) {
	cfg := repro.Config{Board: c.board, Policy: c.policy, Seed: 4242}
	switch c.workload {
	case "vecadd":
		return exp.VecAddVIM(cfg, 16384, 4242) // 3 × 64 KB objects
	case "adpcm":
		return exp.AdpcmVIM(cfg, 8192, 4242) // 8 KB in, 32 KB out
	case "idea":
		return exp.IdeaVIM(cfg, 32768, 4242) // 32 KB in and out
	case "sessions":
		// Concurrent IDEA+ADPCM gang, half the frames each; the policy
		// column names the inter-session arbitration.
		spec, ok := platform.SpecByName(c.board)
		if !ok {
			return nil, fmt.Errorf("unknown board %q", c.board)
		}
		frames := spec.DPBytes >> spec.PageLog
		rep, err := exp.SessionsGang(c.board, c.policy, frames/2, 16384, 8192, 4242)
		if err != nil {
			return nil, err
		}
		return rep.Report(), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", c.workload)
	}
}

// runWith runs fn with the given package-default sim scheduler installed.
func runWith[T any](s sim.Scheduler, fn func() (T, error)) (T, error) {
	prev := sim.SetDefaultScheduler(s)
	defer sim.SetDefaultScheduler(prev)
	return fn()
}

const goldenCellsPath = "testdata/golden_cells.json"

func loadGoldenCells(t *testing.T) map[string]goldenCell {
	t.Helper()
	data, err := os.ReadFile(goldenCellsPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	want := map[string]goldenCell{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// runCellsParallel fans deterministic, independent experiment cells out
// across GOMAXPROCS with the given package-default scheduler installed for
// the whole batch (the default is process-global, so the two scheduler
// passes run as sequential phases while the cells within a phase run
// concurrently). Results come back indexed, keeping every later comparison
// deterministic.
func runCellsParallel(s sim.Scheduler, specs []goldenCellSpec) ([]*core.Report, []error) {
	prev := sim.SetDefaultScheduler(s)
	defer sim.SetDefaultScheduler(prev)
	reps := make([]*core.Report, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reps[i], errs[i] = specs[i].run()
		}(i)
	}
	wg.Wait()
	return reps, errs
}

// subtestFiltered reports whether the -run flag narrows execution below
// the named test (a '/' in the pattern), in which case precomputing every
// cell would defeat the filter.
func subtestFiltered() bool {
	f := flag.Lookup("test.run")
	return f != nil && strings.Contains(f.Value.String(), "/")
}

// TestGoldenAllCells pins every policy × board × workload cell end to end
// and doubles as the whole-system differential harness: each cell is run
// under the lockstep reference scheduler and the event-driven default, the
// two reports must agree bit for bit, and both must match the committed
// golden file (captured from the lockstep engine with -update-golden).
// Cells are independent, so a full run farms each scheduler pass across
// GOMAXPROCS up front; a subtest-filtered run
// (-run 'TestGoldenAllCells/<workload>/<board>/<policy>') skips the
// precompute and simulates only the selected cells.
func TestGoldenAllCells(t *testing.T) {
	var want map[string]goldenCell
	if !*updateGolden {
		want = loadGoldenCells(t)
		if len(want) != len(allGoldenCells()) {
			t.Errorf("golden file has %d cells, expected %d", len(want), len(allGoldenCells()))
		}
	}
	specs := allGoldenCells()
	var lockReps, evntReps []*core.Report
	var lockErrs, evntErrs []error
	if !subtestFiltered() {
		lockReps, lockErrs = runCellsParallel(sim.Lockstep, specs)
		evntReps, evntErrs = runCellsParallel(sim.EventDriven, specs)
	}
	got := map[string]goldenCell{}
	for i, spec := range specs {
		i, spec := i, spec
		t.Run(spec.name(), func(t *testing.T) {
			var lockRep, evntRep *core.Report
			var err error
			if lockReps != nil {
				if lockErrs[i] != nil {
					t.Fatal(lockErrs[i])
				}
				if evntErrs[i] != nil {
					t.Fatal(evntErrs[i])
				}
				lockRep, evntRep = lockReps[i], evntReps[i]
			} else {
				if lockRep, err = runWith(sim.Lockstep, spec.run); err != nil {
					t.Fatal(err)
				}
				if evntRep, err = runWith(sim.EventDriven, spec.run); err != nil {
					t.Fatal(err)
				}
			}
			lock, evnt := cellOf(lockRep), cellOf(evntRep)
			if lock != evnt {
				t.Errorf("schedulers disagree:\n lockstep %+v\n event    %+v", lock, evnt)
			}
			if lockRep.IMU != evntRep.IMU {
				t.Errorf("IMU counters disagree:\n lockstep %+v\n event    %+v", lockRep.IMU, evntRep.IMU)
			}
			if !reflect.DeepEqual(lockRep.VIM, evntRep.VIM) {
				t.Errorf("VIM counters disagree:\n lockstep %+v\n event    %+v", lockRep.VIM, evntRep.VIM)
			}
			got[spec.name()] = lock
			if want != nil {
				w, ok := want[spec.name()]
				if !ok {
					t.Errorf("cell %s missing from golden file (re-run with -update-golden)", spec.name())
				} else if lock != w {
					t.Errorf("cell drifted:\n got  %+v\n want %+v", lock, w)
				}
			}
		})
	}
	if *updateGolden {
		if len(got) != len(allGoldenCells()) {
			t.Fatalf("-update-golden needs a full run: ran %d of %d cells (drop the -run filter)",
				len(got), len(allGoldenCells()))
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCellsPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cells to %s", len(got), goldenCellsPath)
	}
}

// TestDifferentialExperiments runs every registered experiment — all
// figures and every ablation — under both schedulers and requires every
// published series value to match exactly. Together with TestGoldenAllCells
// this pins the lockstep/event-driven equivalence across the entire
// evaluation surface of the reproduction.
func TestDifferentialExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	for _, e := range exp.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if raceEnabled && e.ID == "FLEET" {
				t.Skip("fleet sweep under -race: see race_enabled_test.go")
			}
			lock, err := runWith(sim.Lockstep, e.Run)
			if err != nil {
				t.Fatal(err)
			}
			evnt, err := runWith(sim.EventDriven, e.Run)
			if err != nil {
				t.Fatal(err)
			}
			if len(lock.Series) != len(evnt.Series) {
				t.Fatalf("series sizes differ: lockstep %d, event %d", len(lock.Series), len(evnt.Series))
			}
			for k, lv := range lock.Series {
				if ev, ok := evnt.Series[k]; !ok || ev != lv {
					t.Errorf("series %q: lockstep %v, event %v", k, lv, evnt.Series[k])
				}
			}
		})
	}
}

// TestGoldenFig9Policies pins the 32 KB IDEA run under all four replacement
// policies, including the per-component time breakdown.
func TestGoldenFig9Policies(t *testing.T) {
	cases := []struct {
		policy  string
		totalPs float64
		hwPs    float64
		swdpPs  float64
		swimuPs float64
		swosPs  float64
		faults  uint64
	}{
		{"fifo", 1.7356149122807014e+10, 1.6397833333333334e+10, 7.08330827067669e+08, 2.3118796992481163e+08, 1.879699248120301e+07, 25},
		{"lru", 1.750795363408521e+10, 1.6397833333333334e+10, 8.190075187969923e+08, 2.723157894736837e+08, 1.879699248120301e+07, 30},
		{"clock", 1.750795363408521e+10, 1.6397833333333334e+10, 8.190075187969923e+08, 2.723157894736837e+08, 1.879699248120301e+07, 30},
		{"random", 1.7447231829573933e+10, 1.6397833333333334e+10, 7.74736842105263e+08, 2.558646616541349e+08, 1.879699248120301e+07, 28},
	}
	for _, c := range cases {
		t.Run(c.policy, func(t *testing.T) {
			cfg := repro.Config{Policy: c.policy}
			if c.policy == "random" {
				cfg.Seed = 4242
			}
			rep, err := exp.IdeaVIM(cfg, 32768, 900+32768)
			if err != nil {
				t.Fatal(err)
			}
			eq(t, "total_ps", rep.TotalPs(), c.totalPs)
			eq(t, "hw_ps", rep.HWPs, c.hwPs)
			eq(t, "swdp_ps", rep.SWDPPs, c.swdpPs)
			eq(t, "swimu_ps", rep.SWIMUPs, c.swimuPs)
			eq(t, "swos_ps", rep.SWOSPs, c.swosPs)
			if rep.VIM.Faults != c.faults {
				t.Errorf("faults = %d, want %d", rep.VIM.Faults, c.faults)
			}
		})
	}
}
