// Golden determinism tests: the simulator's measured results are part of its
// contract. These tables were captured from the seed implementation (eager
// flat memory, cross-multiplied scheduler, no fast paths) and every value is
// compared exactly — the allocation-free kernel, the sparse memory model and
// the idle bulk-skip must reproduce the seed's simulated metrics bit for
// bit, not merely approximately.
package repro_test

import (
	"testing"

	"repro"
	"repro/internal/exp"
)

// eq compares a float64 metric for exact (bitwise) equality.
func eq(t *testing.T, what string, got, want float64) {
	t.Helper()
	if got != want {
		t.Errorf("%s = %v, want exactly %v", what, got, want)
	}
}

// TestGoldenFig3 pins the three execution times of the motivating example.
func TestGoldenFig3(t *testing.T) {
	res, err := exp.RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "fig3 sw_ms", res.Series["sw_ms"], 5.012135338345864)
	eq(t, "fig3 typ_ms", res.Series["typ_ms"], 2.6853947368421047)
	eq(t, "fig3 vim_ms", res.Series["vim_ms"], 3.079047932330827)
}

// TestGoldenFig7 pins the 4-cycle translated read latency.
func TestGoldenFig7(t *testing.T) {
	res, err := exp.RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "fig7 latency_cycles", res.Series["latency_cycles"], 4)
	eq(t, "fig7 read_value_ok", res.Series["read_value_ok"], 1)
}

// TestGoldenFig8 pins the 8 KB adpcmdecode VIM run (the benchmarked cell).
func TestGoldenFig8(t *testing.T) {
	rep, err := exp.AdpcmVIM(repro.Config{}, 8192, 800+8192)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "fig8 8KB total_ps", rep.TotalPs(), 1.1130160714285715e+10)
	if rep.VIM.Faults != 16 {
		t.Errorf("fig8 8KB faults = %d, want 16", rep.VIM.Faults)
	}
}

// TestGoldenFig9Policies pins the 32 KB IDEA run under all four replacement
// policies, including the per-component time breakdown.
func TestGoldenFig9Policies(t *testing.T) {
	cases := []struct {
		policy  string
		totalPs float64
		hwPs    float64
		swdpPs  float64
		swimuPs float64
		swosPs  float64
		faults  uint64
	}{
		{"fifo", 1.7356149122807014e+10, 1.6397833333333334e+10, 7.08330827067669e+08, 2.3118796992481163e+08, 1.879699248120301e+07, 25},
		{"lru", 1.750795363408521e+10, 1.6397833333333334e+10, 8.190075187969923e+08, 2.723157894736837e+08, 1.879699248120301e+07, 30},
		{"clock", 1.750795363408521e+10, 1.6397833333333334e+10, 8.190075187969923e+08, 2.723157894736837e+08, 1.879699248120301e+07, 30},
		{"random", 1.7447231829573933e+10, 1.6397833333333334e+10, 7.74736842105263e+08, 2.558646616541349e+08, 1.879699248120301e+07, 28},
	}
	for _, c := range cases {
		t.Run(c.policy, func(t *testing.T) {
			cfg := repro.Config{Policy: c.policy}
			if c.policy == "random" {
				cfg.Seed = 4242
			}
			rep, err := exp.IdeaVIM(cfg, 32768, 900+32768)
			if err != nil {
				t.Fatal(err)
			}
			eq(t, "total_ps", rep.TotalPs(), c.totalPs)
			eq(t, "hw_ps", rep.HWPs, c.hwPs)
			eq(t, "swdp_ps", rep.SWDPPs, c.swdpPs)
			eq(t, "swimu_ps", rep.SWIMUPs, c.swimuPs)
			eq(t, "swos_ps", rep.SWOSPs, c.swosPs)
			if rep.VIM.Faults != c.faults {
				t.Errorf("faults = %d, want %d", rep.VIM.Faults, c.faults)
			}
		})
	}
}
