// Golden determinism tests for the deadline-aware serving layer: every
// pinned DEADLINE cell runs the full scheduler — pre-staged
// reconfiguration included — under BOTH simulation schedulers, and the
// measured metrics must match the committed values bit for bit.
package repro_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/exp"
	"repro/internal/rcsched"
	"repro/internal/sim"
)

// deadlineCell is the pinned measurement record of one deadline cell.
type deadlineCell struct {
	MakespanPs      float64 `json:"makespan_ps"`
	MeanLatencyPs   float64 `json:"mean_latency_ps"`
	P99LatencyPs    float64 `json:"p99_latency_ps"`
	MissRate        float64 `json:"miss_rate"`
	Misses          int     `json:"misses"`
	TotalReconfigPs float64 `json:"total_reconfig_ps"`
	Reconfigs       int     `json:"reconfigs"`
	StageCommits    int     `json:"stage_commits"`
	StageCancels    int     `json:"stage_cancels"`
	Faults          uint64  `json:"faults"`
}

func deadlineCellOf(rep *rcsched.Report) deadlineCell {
	return deadlineCell{
		MakespanPs:      rep.MakespanPs,
		MeanLatencyPs:   rep.MeanLatencyPs,
		P99LatencyPs:    rep.P99LatencyPs,
		MissRate:        rep.MissRate,
		Misses:          rep.Misses,
		TotalReconfigPs: rep.TotalReconfigPs,
		Reconfigs:       rep.Reconfigs,
		StageCommits:    rep.StageCommits,
		StageCancels:    rep.StageCancels,
		Faults:          rep.VIM.Faults,
	}
}

// deadlineCellSpec enumerates the pinned deadline cells: every deadline-era
// policy with staging off and on at the slow configuration port where
// pre-staging matters most, plus a default-bandwidth pair.
type deadlineCellSpec struct {
	policy string
	stage  bool
	bw     float64
}

func allDeadlineCells() []deadlineCellSpec {
	var cells []deadlineCellSpec
	for _, policy := range []string{"affinity", "edf", "slack"} {
		for _, stage := range []bool{false, true} {
			cells = append(cells, deadlineCellSpec{policy, stage, 250_000})
		}
	}
	cells = append(cells,
		deadlineCellSpec{"affinity", false, rcsched.DefaultConfigBW},
		deadlineCellSpec{"slack", true, rcsched.DefaultConfigBW},
	)
	return cells
}

func (c deadlineCellSpec) name() string {
	staging := "nostage"
	if c.stage {
		staging = "stage"
	}
	return fmt.Sprintf("%s/%s/%dKBps", c.policy, staging, int(c.bw)/1000)
}

func (c deadlineCellSpec) run() (*rcsched.Report, error) {
	return rcsched.Serve(rcsched.Config{
		Policy:   c.policy,
		Slots:    2,
		ConfigBW: c.bw,
		Stage:    c.stage,
	}, exp.DeadlineTrace(1))
}

const deadlineCellsPath = "testdata/deadline_cells.json"

// TestGoldenDeadlineCells pins every deadline-aware serving cell end to end
// under both the lockstep reference scheduler and the event-driven default
// (which must agree bit for bit), and enforces the committed golden file.
// Regenerate with -update-golden.
func TestGoldenDeadlineCells(t *testing.T) {
	var want map[string]deadlineCell
	if !*updateGolden {
		data, err := os.ReadFile(deadlineCellsPath)
		if err != nil {
			t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
		}
		want = map[string]deadlineCell{}
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatal(err)
		}
		if len(want) != len(allDeadlineCells()) {
			t.Errorf("golden file has %d cells, expected %d", len(want), len(allDeadlineCells()))
		}
	}
	got := map[string]deadlineCell{}
	for _, spec := range allDeadlineCells() {
		spec := spec
		t.Run(spec.name(), func(t *testing.T) {
			lockRep, err := runWith(sim.Lockstep, spec.run)
			if err != nil {
				t.Fatal(err)
			}
			evntRep, err := runWith(sim.EventDriven, spec.run)
			if err != nil {
				t.Fatal(err)
			}
			lock, evnt := deadlineCellOf(lockRep), deadlineCellOf(evntRep)
			if lock != evnt {
				t.Errorf("schedulers disagree:\n lockstep %+v\n event    %+v", lock, evnt)
			}
			got[spec.name()] = lock
			if want != nil {
				w, ok := want[spec.name()]
				if !ok {
					t.Errorf("cell %s missing from golden file (re-run with -update-golden)", spec.name())
				} else if lock != w {
					t.Errorf("cell drifted:\n got  %+v\n want %+v", lock, w)
				}
			}
		})
	}

	// The acceptance property of the deadline work, asserted on the pinned
	// cells themselves: on the same saturated stream with a slow
	// configuration port, slack with pre-staging strictly lowers both the
	// p99 latency and the deadline miss-rate against the plain
	// bitstream-affinity scheduler, and pre-staging strictly cuts full
	// reconfigurations for every policy that uses it.
	aff, okA := got["affinity/nostage/250KBps"]
	slk, okS := got["slack/stage/250KBps"]
	if okA && okS { // a -run subtest filter may have skipped one side
		if slk.P99LatencyPs >= aff.P99LatencyPs {
			t.Errorf("slack+staging p99 %.3f ms not below plain affinity's %.3f ms",
				slk.P99LatencyPs/1e9, aff.P99LatencyPs/1e9)
		}
		if slk.MissRate >= aff.MissRate {
			t.Errorf("slack+staging miss rate %.3f not below plain affinity's %.3f",
				slk.MissRate, aff.MissRate)
		}
	}
	for _, policy := range []string{"affinity", "edf", "slack"} {
		off, okOff := got[policy+"/nostage/250KBps"]
		on, okOn := got[policy+"/stage/250KBps"]
		if !okOff || !okOn {
			continue // a -run subtest filter skipped one side of the pair
		}
		if on.StageCommits == 0 {
			t.Errorf("%s with staging never committed a pre-staged bitstream", policy)
		}
		if on.Reconfigs >= off.Reconfigs {
			t.Errorf("%s with staging streamed %d full reconfigurations, %d without — no saving",
				policy, on.Reconfigs, off.Reconfigs)
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(deadlineCellsPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cells to %s", len(got), deadlineCellsPath)
	}
}
