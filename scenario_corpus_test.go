// Scenario corpus replay: every recorded scenario under testdata/scenarios/
// is a pinned end-to-end run — full config, arrival stream, per-job
// dispatch decisions and final report — and this driver replays each one
// bit for bit under BOTH simulation schedulers. Where the golden tables pin
// aggregate metrics per cell, the corpus pins the step-by-step trajectory,
// so a regression surfaces as a first-divergence diff ("job 17 landed on
// slot 1, recorded slot 0") instead of a bare metric delta.
//
// Refresh a scenario after an intentional behaviour change with:
//
//	go run ./cmd/vimsim -mode record -as <kind> -scenario testdata/scenarios/<name>.json ...
//
// (each scenario file's "description" field records the exact command that
// produced it).
package repro_test

import (
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

const scenarioDir = "testdata/scenarios"

// corpusFloor is the minimum corpus size; shrinking the corpus below the
// seeded set should be a deliberate, visible act.
const corpusFloor = 8

func loadScenarioCorpus(t *testing.T) []*scenario.Scenario {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(scenarioDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) < corpusFloor {
		t.Fatalf("scenario corpus has %d files, want at least %d", len(paths), corpusFloor)
	}
	scs := make([]*scenario.Scenario, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if scs[i], err = scenario.Parse(data); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	return scs
}

// replayCorpusParallel replays every scenario with the given package-default
// scheduler installed for the whole batch (same two-phase pattern as the
// golden sweeps: schedulers are sequential phases, scenarios within a phase
// run concurrently — each replay only touches its own recorder).
func replayCorpusParallel(t *testing.T, s sim.Scheduler, scs []*scenario.Scenario) []*scenario.Result {
	t.Helper()
	prev := sim.SetDefaultScheduler(s)
	defer sim.SetDefaultScheduler(prev)
	results := make([]*scenario.Result, len(scs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range scs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := scenario.Replay(scs[i], "")
			if err != nil {
				res = &scenario.Result{Name: scs[i].Name, Err: err.Error()}
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	return results
}

// TestScenarioCorpus replays the committed scenario corpus under the
// lockstep reference scheduler and the event-driven default. Every scenario
// must reproduce exactly (its own match mode; the seeded corpus is strict),
// under both engines — the corpus therefore doubles as another
// whole-system scheduler-equivalence differential.
func TestScenarioCorpus(t *testing.T) {
	scs := loadScenarioCorpus(t)
	phases := []struct {
		name  string
		sched sim.Scheduler
	}{
		{"lockstep", sim.Lockstep},
		{"event", sim.EventDriven},
	}
	for _, ph := range phases {
		results := replayCorpusParallel(t, ph.sched, scs)
		t.Run(ph.name, func(t *testing.T) {
			for i, sc := range scs {
				res := results[i]
				t.Run(sc.Name, func(t *testing.T) {
					if !res.Pass() {
						t.Errorf("scenario did not reproduce:\n%s", res.Text())
					}
					if res.Err == "" && res.Steps == 0 {
						t.Errorf("replay matched zero stream steps; scenario pins nothing")
					}
				})
			}
		})
	}
}
