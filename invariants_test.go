package repro_test

import (
	"math/rand"
	"testing"

	"repro"
	"repro/internal/exp"
)

// TestBitReproducibility asserts the simulation is fully deterministic:
// identical configurations and seeds produce identical reports down to the
// picosecond and every counter.
func TestBitReproducibility(t *testing.T) {
	run := func() *repro.Report {
		rep, err := exp.IdeaVIM(repro.Config{Policy: "random", Seed: 1234}, 16384, 99)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if *a != *b {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestCounterConsistency cross-checks the bookkeeping of the three layers
// (IMU hardware counters, VIM counters, report) against each other.
func TestCounterConsistency(t *testing.T) {
	rep, err := exp.AdpcmVIM(repro.Config{}, 8192, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Every VIM fault service corresponds to one hardware fault.
	if rep.VIM.Faults != rep.IMU.Faults {
		t.Errorf("VIM faults %d != IMU faults %d", rep.VIM.Faults, rep.IMU.Faults)
	}
	// The coprocessor performs one access per input byte (read) and two
	// per byte of samples (writes): total = nbytes reads + 2*nbytes
	// writes + 1 param read + faulted retries are the same accesses.
	wantAccesses := uint64(8192 + 2*8192 + 1)
	if rep.IMU.Accesses != wantAccesses {
		t.Errorf("IMU accesses = %d, want %d", rep.IMU.Accesses, wantAccesses)
	}
	// Hits are the completed translations; every access eventually hits.
	if rep.IMU.Hits != rep.IMU.Accesses {
		t.Errorf("hits %d != accesses %d", rep.IMU.Hits, rep.IMU.Accesses)
	}
	// Pages loaded + elided = initial mapping + fault services.
	if rep.VIM.PagesLoaded+rep.VIM.LoadsElided == 0 {
		t.Error("no page activity recorded")
	}
	// Write-back volume matches the flushed + evicted dirty pages at page
	// granularity (the output object is 4x the input).
	if rep.VIM.BytesOut == 0 {
		t.Error("no bytes written back for a producing coprocessor")
	}
	// Data volume in: input object (8 KB) + parameter page loads are not
	// counted as object bytes; at least the input must have moved once.
	if rep.VIM.BytesIn < 8192 {
		t.Errorf("BytesIn = %d, want >= 8192", rep.VIM.BytesIn)
	}
	// Every evicted frame was either reloaded or stayed free: evictions
	// can never exceed faults (only fault service evicts).
	if rep.VIM.Evictions > rep.VIM.Faults {
		t.Errorf("evictions %d > faults %d", rep.VIM.Evictions, rep.VIM.Faults)
	}
}

// TestConfigValidation covers the facade's error paths.
func TestConfigValidation(t *testing.T) {
	if _, err := repro.NewSystem(repro.Config{Board: "EPXA99"}); err == nil {
		t.Error("unknown board accepted")
	}
	if _, err := repro.NewSystem(repro.Config{Policy: "optimal"}); err == nil {
		t.Error("unknown policy accepted")
	}
	sys, err := repro.NewSystem(repro.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.NewProcess("v")
	if err != nil {
		t.Fatal(err)
	}
	buf, err := p.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(make([]byte, 17)); err == nil {
		t.Error("oversized buffer write accepted")
	}
	if err := p.FPGAMapObject(-1, buf, repro.In); err == nil {
		t.Error("negative object id accepted")
	}
	if err := p.FPGAMapObject(255, buf, repro.In); err == nil {
		t.Error("reserved object id accepted")
	}
	if _, err := p.Alloc(0); err == nil {
		t.Error("zero-byte alloc accepted")
	}
}

// TestQuickFacadeRandomSizes is the facade-level randomized sweep: random
// IDEA sizes and policies must always produce golden ciphertext (checked
// inside exp.IdeaVIM's caller path via the report being error-free, and
// here against the golden model directly).
func TestQuickFacadeRandomSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized sweep")
	}
	rng := rand.New(rand.NewSource(2024))
	policies := []string{"fifo", "lru", "clock", "random"}
	for i := 0; i < 8; i++ {
		blocks := 64 + rng.Intn(2048)
		n := blocks * 8
		pol := policies[rng.Intn(len(policies))]

		sys, err := repro.NewSystem(repro.Config{Policy: pol, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		p, err := sys.NewProcess("sweep")
		if err != nil {
			t.Fatal(err)
		}
		in, _ := p.Alloc(n)
		out, _ := p.Alloc(n)
		var key repro.IDEAKey
		rng.Read(key[:])
		plain := make([]byte, n)
		rng.Read(plain)
		if err := in.Write(plain); err != nil {
			t.Fatal(err)
		}
		if err := p.FPGALoad(repro.IDEABitstream("EPXA1")); err != nil {
			t.Fatal(err)
		}
		_ = p.FPGAMapObject(repro.IDEAObjIn, in, repro.In)
		_ = p.FPGAMapObject(repro.IDEAObjOut, out, repro.Out)
		if _, err := p.FPGAExecute(repro.IDEAEncryptParams(key, blocks)...); err != nil {
			t.Fatalf("n=%d policy=%s: %v", n, pol, err)
		}
		got, _ := out.Read()
		want := repro.GoldenIDEAEncrypt(key, plain)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("n=%d policy=%s: byte %d differs", n, pol, j)
			}
		}
	}
}
