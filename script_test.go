package repro_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/copro/scriptcp"
)

// scriptLayout describes the object set for a scripted run.
type scriptLayout struct {
	name string
	objs []scriptcp.ObjSpec
	dirs map[uint8]repro.Direction
}

// layouts returns object sets of increasing dual-port-RAM pressure
// (the EPXA1 has 16 KB = 8 frames).
func layouts() []scriptLayout {
	return []scriptLayout{
		{
			name: "fits", // 3 small objects + param page fit entirely
			objs: []scriptcp.ObjSpec{
				{ID: 0, Size: 2048, Readable: true, ReadbackSafe: true},
				{ID: 1, Size: 2048, Readable: true, Writable: true, ReadbackSafe: true},
				{ID: 2, Size: 2048, Writable: true},
			},
			dirs: map[uint8]repro.Direction{0: repro.In, 1: repro.InOut, 2: repro.Out},
		},
		{
			name: "pressure", // 2x the DP RAM: steady eviction traffic
			objs: []scriptcp.ObjSpec{
				{ID: 0, Size: 8192, Readable: true, ReadbackSafe: true},
				{ID: 1, Size: 16384, Readable: true, Writable: true, ReadbackSafe: true},
				{ID: 2, Size: 8192, Writable: true},
			},
			dirs: map[uint8]repro.Direction{0: repro.In, 1: repro.InOut, 2: repro.Out},
		},
		{
			name: "many-objects", // five objects force cross-object thrash
			objs: []scriptcp.ObjSpec{
				{ID: 0, Size: 4096, Readable: true, ReadbackSafe: true},
				{ID: 1, Size: 4096, Readable: true, ReadbackSafe: true},
				{ID: 2, Size: 8192, Readable: true, Writable: true, ReadbackSafe: true},
				{ID: 3, Size: 4096, Writable: true},
				{ID: 4, Size: 8192, Readable: true, Writable: true, ReadbackSafe: true},
			},
			dirs: map[uint8]repro.Direction{
				0: repro.In, 1: repro.In, 2: repro.InOut, 3: repro.Out, 4: repro.InOut,
			},
		},
	}
}

// runScripted executes one generated script through the full facade under
// cfg and cross-checks every object buffer against the host-side model.
func runScripted(t *testing.T, cfg repro.Config, lay scriptLayout, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	script, err := scriptcp.Generate(rng, lay.objs, ops)
	if err != nil {
		t.Fatal(err)
	}

	sys, err := repro.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.NewProcess("scripted")
	if err != nil {
		t.Fatal(err)
	}

	// Allocate and initialise buffers; build the model's view.
	bufs := map[uint8]repro.Buffer{}
	model := map[uint8][]byte{}
	for _, o := range lay.objs {
		b, err := p.Alloc(int(o.Size))
		if err != nil {
			t.Fatal(err)
		}
		init := make([]byte, o.Size)
		rng.Read(init)
		if err := b.Write(init); err != nil {
			t.Fatal(err)
		}
		bufs[o.ID] = b
		model[o.ID] = append([]byte(nil), init...)
	}

	img, err := scriptcp.Bitstream(sys.Board().Spec.Name, script)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FPGALoad(img); err != nil {
		t.Fatal(err)
	}
	for _, o := range lay.objs {
		if err := p.FPGAMapObject(int(o.ID), bufs[o.ID], lay.dirs[o.ID]); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := p.FPGAExecute(0)
	if err != nil {
		t.Fatalf("cfg=%+v layout=%s seed=%d: %v", cfg, lay.name, seed, err)
	}

	_, masks, err := scriptcp.Apply(script, model)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range lay.objs {
		got, err := bufs[o.ID].Read()
		if err != nil {
			t.Fatal(err)
		}
		// In/InOut objects must match in full; for load-elided Out
		// objects only the written bytes are defined (DMA-output
		// contract; see scriptcp.Apply).
		fullCompare := lay.dirs[o.ID] != repro.Out
		if fullCompare && bytes.Equal(got, model[o.ID]) {
			continue
		}
		for i := range got {
			if !fullCompare && !masks[o.ID][i] {
				continue
			}
			if got[i] != model[o.ID][i] {
				t.Fatalf("cfg=%+v layout=%s seed=%d: object %d differs first at %#x: %#x != %#x (faults=%d evictions=%d)",
					cfg, lay.name, seed, o.ID, i, got[i], model[o.ID][i],
					rep.VIM.Faults, rep.VIM.Evictions)
			}
		}
	}
}

// TestScriptedRandomAccessAllPolicies drives random access patterns through
// every replacement policy and checks bit-exact end state — including the
// checksum of every value the coprocessor read, which catches stale or
// misloaded pages that final memory state alone would miss.
func TestScriptedRandomAccessAllPolicies(t *testing.T) {
	for _, pol := range []string{"fifo", "lru", "clock", "random"} {
		for _, lay := range layouts() {
			t.Run(pol+"/"+lay.name, func(t *testing.T) {
				runScripted(t, repro.Config{Policy: pol, Seed: 7}, lay, 100+int64(len(lay.name)), 300)
			})
		}
	}
}

// TestScriptedRandomAccessModes exercises the bounce-buffer, prefetch and
// pipelined-IMU variants under memory pressure.
func TestScriptedRandomAccessModes(t *testing.T) {
	lay := layouts()[1]
	cases := []repro.Config{
		{BounceBuffer: true},
		{PrefetchPages: 2},
		{PipelinedIMU: true},
		{Policy: "lru", BounceBuffer: true, PrefetchPages: 1, PipelinedIMU: true},
	}
	for i, cfg := range cases {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			runScripted(t, cfg, lay, 500+int64(i), 300)
		})
	}
}

// TestScriptedRandomAccessBoards runs the heavy layout on all devices.
func TestScriptedRandomAccessBoards(t *testing.T) {
	for _, board := range []string{"EPXA1", "EPXA4", "EPXA10"} {
		t.Run(board, func(t *testing.T) {
			runScripted(t, repro.Config{Board: board}, layouts()[2], 900, 400)
		})
	}
}

// TestScriptedManySeeds is the randomized sweep: many independent scripts
// under the default configuration.
func TestScriptedManySeeds(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runScripted(t, repro.Config{}, layouts()[seed%3], 1000+seed, 250)
		})
	}
}

func TestScriptCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	script, err := scriptcp.Generate(rng, layouts()[0].objs, 64)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := scriptcp.Decode(scriptcp.Encode(script))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(script) {
		t.Fatalf("decoded %d ops, want %d", len(dec), len(script))
	}
	for i := range script {
		if dec[i] != script[i] {
			t.Fatalf("op %d: %+v != %+v", i, dec[i], script[i])
		}
	}
	if _, err := scriptcp.Decode([]byte{1, 2}); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
