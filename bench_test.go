// Benchmarks regenerating every figure and table of the paper's evaluation.
// Each benchmark runs the corresponding simulated experiment per iteration
// and publishes the *simulated* execution times as custom metrics
// (sim-ms-*), so `go test -bench=.` reproduces the paper's numbers while
// also tracking host-side simulator performance.
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"repro"
	"repro/internal/exp"
	"repro/internal/fleet"
	"repro/internal/platform"
	"repro/internal/rcsched"
)

// reportSim publishes a simulated-time metric.
func reportSim(b *testing.B, name string, ps float64) {
	b.ReportMetric(ps/1e9, name)
}

// BenchmarkFig3MotivatingExample regenerates Figure 3's three versions of
// the vector-add application (pure SW, typical coprocessor, VIM-based).
func BenchmarkFig3MotivatingExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		reportSim(b, "sim-ms-sw", res.Series["sw_ms"]*1e9)
		reportSim(b, "sim-ms-typical", res.Series["typ_ms"]*1e9)
		reportSim(b, "sim-ms-vim", res.Series["vim_ms"]*1e9)
	}
}

// BenchmarkFig7ReadAccess regenerates Figure 7, the 4-cycle translated read.
func BenchmarkFig7ReadAccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Series["latency_cycles"], "latency-cycles")
	}
}

// BenchmarkFig8Adpcmdecode regenerates Figure 8 cell by cell.
func BenchmarkFig8Adpcmdecode(b *testing.B) {
	for _, n := range []int{2048, 4096, 8192} {
		label := map[int]string{2048: "2KB", 4096: "4KB", 8192: "8KB"}[n]
		b.Run("SW-"+label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := exp.AdpcmSW(repro.Config{}, n, int64(800+n))
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms", rep.TotalPs())
			}
		})
		b.Run("VIM-"+label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := exp.AdpcmVIM(repro.Config{}, n, int64(800+n))
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms", rep.TotalPs())
				b.ReportMetric(float64(rep.VIM.Faults), "faults")
			}
		})
	}
}

// BenchmarkFig9IDEA regenerates Figure 9 cell by cell (the normal
// coprocessor rows exist only while the data fits the dual-port RAM).
func BenchmarkFig9IDEA(b *testing.B) {
	labels := map[int]string{4096: "4KB", 8192: "8KB", 16384: "16KB", 32768: "32KB"}
	for _, n := range []int{4096, 8192, 16384, 32768} {
		label := labels[n]
		b.Run("SW-"+label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := exp.IdeaSW(repro.Config{}, n, int64(900+n))
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms", rep.TotalPs())
			}
		})
		if n <= 8192 {
			b.Run("Normal-"+label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rep, err := exp.IdeaNormal(platform.EPXA1(), n, int64(900+n))
					if err != nil {
						b.Fatal(err)
					}
					if rep == nil {
						b.Fatal("normal coprocessor unexpectedly exceeded memory")
					}
					reportSim(b, "sim-ms", rep.TotalPs())
				}
			})
		}
		b.Run("VIM-"+label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := exp.IdeaVIM(repro.Config{}, n, int64(900+n))
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms", rep.TotalPs())
				b.ReportMetric(float64(rep.VIM.Faults), "faults")
			}
		})
	}
}

// BenchmarkTableOverheads regenerates the §4.1 overhead figures.
func BenchmarkTableOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunOverhead()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Series["idea_imu_frac/16KB"], "idea-swimu-pct")
		b.ReportMetric(res.Series["idea_xlat_frac/16KB"], "idea-xlat-pct")
	}
}

// BenchmarkTablePortability regenerates the portability table.
func BenchmarkTablePortability(b *testing.B) {
	for _, board := range []string{"EPXA1", "EPXA4", "EPXA10"} {
		b.Run(board, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := exp.IdeaVIM(repro.Config{Board: board}, 16384, 777)
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms", rep.TotalPs())
				b.ReportMetric(float64(rep.VIM.Faults), "faults")
			}
		})
	}
}

// BenchmarkAblationPolicies compares the replacement policies of §3.3.
func BenchmarkAblationPolicies(b *testing.B) {
	for _, pol := range []string{"fifo", "lru", "clock", "random"} {
		b.Run(pol, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := exp.IdeaVIM(repro.Config{Policy: pol, Seed: 4242}, 32768, 4242)
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms", rep.TotalPs())
				b.ReportMetric(float64(rep.VIM.Faults), "faults")
			}
		})
	}
}

// BenchmarkAblationBounceBuffer measures the double-transfer penalty.
func BenchmarkAblationBounceBuffer(b *testing.B) {
	for _, bounce := range []bool{false, true} {
		name := "direct"
		if bounce {
			name = "bounce"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := exp.AdpcmVIM(repro.Config{BounceBuffer: bounce}, 8192, 21)
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms-swdp", rep.SWDPPs)
			}
		})
	}
}

// BenchmarkAblationPipelinedIMU measures the translation overhead recovery.
func BenchmarkAblationPipelinedIMU(b *testing.B) {
	for _, pipe := range []bool{false, true} {
		name := "multicycle"
		if pipe {
			name = "pipelined"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := exp.IdeaVIM(repro.Config{PipelinedIMU: pipe}, 16384, 32)
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms-hw", rep.HWPs)
			}
		})
	}
}

// BenchmarkAblationPrefetch sweeps the sequential prefetch depth.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, pf := range []int{0, 1, 2} {
		b.Run(map[int]string{0: "off", 1: "1page", 2: "2pages"}[pf], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := exp.AdpcmVIM(repro.Config{PrefetchPages: pf}, 8192, 51)
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms", rep.TotalPs())
				b.ReportMetric(float64(rep.VIM.Faults), "faults")
			}
		})
	}
}

// BenchmarkAblationPageSize sweeps the dual-port RAM page size.
func BenchmarkAblationPageSize(b *testing.B) {
	for _, lg := range []uint{10, 11, 12} {
		b.Run(map[uint]string{10: "1KB", 11: "2KB", 12: "4KB"}[lg], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := exp.AdpcmVIM(repro.Config{PageLog: lg}, 8192, 71)
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms", rep.TotalPs())
				b.ReportMetric(float64(rep.VIM.Faults), "faults")
			}
		})
	}
}

// BenchmarkServe runs the dynamic-reconfiguration serving cells: the
// 24-job SERVE stream on two shell slots under each scheduling policy —
// including the deadline-aware pair, with and without pre-staged
// reconfiguration for slack — plus the open-loop saturation pair, the
// SATURATE stream offered at twice the detected knee with admission
// control off and rejecting. The simulated makespan, reconfiguration,
// deadline and goodput metrics are published alongside the host-side cost
// of running the whole serving loop.
func BenchmarkServe(b *testing.B) {
	jobs := exp.ServeTrace()
	for _, c := range []struct {
		name   string
		policy string
		stage  bool
	}{
		{"fcfs", "fcfs", false},
		{"sjf", "sjf", false},
		{"affinity", "affinity", false},
		{"edf", "edf", false},
		{"slack", "slack", false},
		{"slack-staged", "slack", true},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := rcsched.Serve(rcsched.Config{Policy: c.policy, Slots: 2, Stage: c.stage}, jobs)
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms-makespan", rep.MakespanPs)
				reportSim(b, "sim-ms-reconfig", rep.TotalReconfigPs)
				reportSim(b, "sim-ms-p99", rep.P99LatencyPs)
				b.ReportMetric(float64(rep.Reconfigs), "reconfigs")
				b.ReportMetric(rep.MissRate, "miss-rate")
			}
		})
	}
	// Open-loop saturation cells: 1600 jobs/s is twice the knee the pinned
	// SATURATE ramp detects for this configuration (testdata/saturate_cells.json).
	saturated, err := exp.SaturateStream(1600)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name  string
		admit string
	}{
		{"saturate-off", rcsched.AdmitOff},
		{"saturate-admit", rcsched.AdmitReject},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := rcsched.Serve(rcsched.Config{Policy: "slack", Slots: 2, Admit: c.admit}, saturated)
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms-makespan", rep.MakespanPs)
				reportSim(b, "sim-ms-p99-admitted", rep.P99AdmittedPs)
				b.ReportMetric(rep.GoodputRPS, "goodput-rps")
				b.ReportMetric(rep.ShedRate, "shed-rate")
				b.ReportMetric(rep.MissRate, "miss-rate")
			}
		})
	}
}

// BenchmarkFleet runs the fleet dispatch cells: the FLEET stream — twice
// the single-board knee per board, 1600 jobs/s x 4 boards per the pinned
// SATURATE ramp (testdata/saturate_cells.json) — dispatched across four
// two-slot boards under the uninformed baseline and both locality-aware
// policies. Publishes fleet goodput, p99 and config-traffic metrics next to
// the host-side cost of routing plus concurrent board serving.
func BenchmarkFleet(b *testing.B) {
	jobs, err := exp.FleetStream(4, 800)
	if err != nil {
		b.Fatal(err)
	}
	for _, dispatch := range []string{fleet.Random, fleet.Affinity, fleet.Po2} {
		b.Run(dispatch, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := fleet.Run(exp.FleetConfig(dispatch, 4, rcsched.AdmitOff), jobs)
				if err != nil {
					b.Fatal(err)
				}
				reportSim(b, "sim-ms-makespan", rep.MakespanPs)
				reportSim(b, "sim-ms-config", rep.TotalReconfigPs)
				reportSim(b, "sim-ms-p99", rep.P99LatencyPs)
				b.ReportMetric(rep.GoodputRPS, "goodput-rps")
				b.ReportMetric(float64(rep.Reconfigs), "reconfigs")
				b.ReportMetric(rep.MissRate, "miss-rate")
			}
		})
	}
}

// BenchmarkAblationChunkedBaseline compares the Figure 3 hand-chunked loop
// against the transparent VIM on an out-of-memory dataset.
func BenchmarkAblationChunkedBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunChunkAblation()
		if err != nil {
			b.Fatal(err)
		}
		reportSim(b, "sim-ms-chunked", res.Series["chunked_ms"]*1e9)
		reportSim(b, "sim-ms-vim", res.Series["vim_ms"]*1e9)
	}
}
