//go:build race

package repro_test

// raceEnabled reports whether this test binary was built with the race
// detector. The heaviest sweeps (the FLEET differential run and the fleet
// golden cells) skip under -race: the detector slows the fleet sweeps
// ~25x past the package test timeout, and the fleet fan-out's race
// coverage lives in internal/fleet's stress and scheduler-agreement
// tests, which do run under -race.
const raceEnabled = true
