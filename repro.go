// Package repro is a full reproduction, in simulation, of "Operating System
// Support for Interface Virtualisation of Reconfigurable Coprocessors"
// (Vuletić, Righetti, Pozzi and Ienne — DATE 2004).
//
// It provides the paper's programming model on a cycle-level simulated
// reconfigurable SoC (an Altera Excalibur EPXA1-class device with an ARM
// stripe, AMBA AHB, dual-port RAM and a PLD):
//
//	sys, _ := repro.NewSystem(repro.Config{Board: "EPXA1"})
//	p, _ := sys.NewProcess("add")
//	a, _ := p.Alloc(4096)   // user-space buffers in simulated SDRAM
//	b, _ := p.Alloc(4096)
//	c, _ := p.Alloc(4096)
//	_ = p.FPGALoad(repro.VecAddBitstream("EPXA1"))
//	_ = p.FPGAMapObject(0, a, repro.In)
//	_ = p.FPGAMapObject(1, b, repro.In)
//	_ = p.FPGAMapObject(2, c, repro.Out)
//	rep, _ := p.FPGAExecute(1024) // element count
//
// The three services mirror §3.1 of the paper: FPGALoad configures the PLD
// from a validated bit-stream, FPGAMapObject declares the data objects the
// coprocessor will address virtually, and FPGAExecute builds the initial
// dual-port RAM mapping, passes scalar parameters through the parameter
// page, launches the coprocessor and services translation faults until
// completion. The returned Report carries the paper's execution-time
// components (hardware, dual-port management, IMU management) and all
// paging counters.
package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/imu"
	"repro/internal/kernel"
	"repro/internal/platform"
	"repro/internal/sw"
	"repro/internal/vim"
)

// Direction declares how the coprocessor uses a mapped object.
type Direction = vim.Direction

// Re-exported object directions.
const (
	In    = vim.In
	Out   = vim.Out
	InOut = vim.InOut
)

// Report is the measurement record of one execution.
type Report = core.Report

// Config selects the platform and the virtualisation-layer options.
type Config struct {
	// Board is "EPXA1" (default), "EPXA4" or "EPXA10".
	Board string
	// Policy is the page-replacement policy: "fifo" (default), "lru",
	// "clock" or "random".
	Policy string
	// PipelinedIMU switches the IMU to the pipelined translation path
	// (the paper's announced follow-up implementation).
	PipelinedIMU bool
	// BounceBuffer reproduces the naive double-transfer page movement the
	// paper reports (§4.1).
	BounceBuffer bool
	// PrefetchPages enables sequential prefetch of up to N pages on each
	// fault (§3.3 "speculative actions as prefetching").
	PrefetchPages int
	// PageLog overrides the dual-port RAM page size (log2 bytes; 0 keeps
	// the board default of 2 KB pages). The paper fixes 2 KB; this knob
	// drives the page-size ablation.
	PageLog uint
	// Seed drives the "random" policy; runs are reproducible.
	Seed int64
}

// System is one simulated board plus its virtualisation layer settings.
type System struct {
	board  *platform.Board
	vimCfg vim.Config

	pldOwner *Process
}

// NewSystem boots a simulated board.
func NewSystem(cfg Config) (*System, error) {
	spec, ok := platform.SpecByName(cfg.Board)
	if !ok {
		return nil, fmt.Errorf("repro: unknown board %q", cfg.Board)
	}
	if cfg.PipelinedIMU {
		spec.IMUMode = imu.Pipelined
	}
	if cfg.PageLog != 0 {
		if cfg.PageLog < 7 || cfg.PageLog > 13 {
			return nil, fmt.Errorf("repro: page log %d out of range [7,13]", cfg.PageLog)
		}
		if spec.DPBytes>>cfg.PageLog > 256 {
			return nil, fmt.Errorf("repro: page log %d yields more frames than the TLB supports", cfg.PageLog)
		}
		spec.PageLog = cfg.PageLog
	}
	board, err := platform.NewBoard(spec)
	if err != nil {
		return nil, err
	}
	policy, ok := vim.NewPolicy(cfg.Policy, cfg.Seed)
	if !ok {
		return nil, fmt.Errorf("repro: unknown policy %q", cfg.Policy)
	}
	return &System{
		board: board,
		vimCfg: vim.Config{
			Policy:        policy,
			BounceBuffer:  cfg.BounceBuffer,
			PrefetchPages: cfg.PrefetchPages,
		},
	}, nil
}

// Board exposes the underlying platform (experiments, tools).
func (s *System) Board() *platform.Board { return s.board }

// Process is a user process on the simulated system.
type Process struct {
	sys  *System
	proc *kernel.Process
	sess *core.Session

	tables   sw.Tables
	tablesOK bool
}

// NewProcess creates a process with its own session state.
func (s *System) NewProcess(name string) (*Process, error) {
	kp := s.board.Kern.NewProcess(name)
	sess, err := core.NewSession(s.board, kp, s.vimCfg)
	if err != nil {
		return nil, err
	}
	return &Process{sys: s, proc: kp, sess: sess}, nil
}

// Session exposes the underlying session (experiments, tools).
func (p *Process) Session() *core.Session { return p.sess }

// Buffer is a user-space allocation in simulated SDRAM.
type Buffer struct {
	p    *Process
	addr uint32
	size int
}

// Alloc reserves n bytes of user memory.
func (p *Process) Alloc(n int) (Buffer, error) {
	addr, err := p.proc.Alloc(n)
	if err != nil {
		return Buffer{}, err
	}
	return Buffer{p: p, addr: addr, size: n}, nil
}

// Addr returns the buffer's user-space address.
func (b Buffer) Addr() uint32 { return b.addr }

// Size returns the buffer length in bytes.
func (b Buffer) Size() int { return b.size }

// Write fills the buffer with data (process image setup; untimed).
func (b Buffer) Write(data []byte) error {
	if len(data) > b.size {
		return fmt.Errorf("repro: writing %d bytes into a %d-byte buffer", len(data), b.size)
	}
	return b.p.sys.board.Kern.WriteUser(b.addr, data)
}

// Read returns the buffer contents.
func (b Buffer) Read() ([]byte, error) {
	return b.p.sys.board.Kern.ReadUser(b.addr, b.size)
}

// FPGALoad implements the FPGA_LOAD service: it validates the bit-stream,
// configures the PLD with the matching coprocessor, and acquires exclusive
// use of the reconfigurable resource.
func (p *Process) FPGALoad(img []byte) error {
	if p.sys.pldOwner != nil && p.sys.pldOwner != p {
		return fmt.Errorf("repro: PLD held by process %q", p.sys.pldOwner.proc.Name)
	}
	if err := p.sess.Load(img); err != nil {
		return err
	}
	p.sys.pldOwner = p
	return nil
}

// FPGAUnload releases the PLD.
func (p *Process) FPGAUnload() {
	if p.sys.pldOwner == p {
		p.sys.pldOwner = nil
	}
	p.sess.Unload()
}

// FPGAMapObject implements FPGA_MAP_OBJECT: it declares buffer as data
// object id with the given direction flag.
func (p *Process) FPGAMapObject(id int, buf Buffer, dir Direction) error {
	if id < 0 || id > 0xfe {
		return fmt.Errorf("repro: object id %d out of range", id)
	}
	return p.sess.MapObject(uint8(id), buf.addr, uint32(buf.size), dir)
}

// FPGAExecute implements FPGA_EXECUTE: parameter passing, initial mapping,
// launch, fault service and completion, returning the measured report.
func (p *Process) FPGAExecute(params ...uint32) (*Report, error) {
	return p.sess.Execute(params...)
}
