package repro

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/copro/adpcmdec"
	"repro/internal/copro/ideacp"
	"repro/internal/copro/vecadd"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/ref"
	"repro/internal/sw"
)

// IDEAKey is a 128-bit IDEA cipher key.
type IDEAKey = ref.IDEAKey

// Object identifiers of the bundled coprocessors (the software/hardware
// designer contract of §3.1).
const (
	VecAddObjA = vecadd.ObjA
	VecAddObjB = vecadd.ObjB
	VecAddObjC = vecadd.ObjC

	ADPCMObjIn  = adpcmdec.ObjIn
	ADPCMObjOut = adpcmdec.ObjOut

	IDEAObjIn  = ideacp.ObjIn
	IDEAObjOut = ideacp.ObjOut
)

// mustBuild builds a bit-stream image or panics (the inputs are constants).
func mustBuild(h bitstream.Header) []byte {
	img, err := bitstream.Build(h)
	if err != nil {
		panic(fmt.Sprintf("repro: bitstream build: %v", err))
	}
	return img
}

// syntheticPayload generates deterministic configuration frames sized to
// the resource count, standing in for the synthesised SOF content.
func syntheticPayload(les uint32) []byte {
	p := make([]byte, les/4)
	x := uint32(0x2468ace1)
	for i := range p {
		x = x*1664525 + 1013904223
		p[i] = byte(x >> 24)
	}
	return p
}

// VecAddBitstream returns the vector-add coprocessor image for a board
// (core and IMU at 40 MHz).
func VecAddBitstream(board string) []byte {
	return mustBuild(bitstream.Header{
		Device:    board,
		Core:      vecadd.CoreName,
		CoreClock: 40_000_000,
		IMUClock:  40_000_000,
		LEs:       1450,
		Payload:   syntheticPayload(1450),
	})
}

// ADPCMBitstream returns the adpcmdecode coprocessor image (core and IMU at
// 40 MHz, the paper's Figure 8 clock plan).
func ADPCMBitstream(board string) []byte {
	return mustBuild(bitstream.Header{
		Device:    board,
		Core:      adpcmdec.CoreName,
		CoreClock: 40_000_000,
		IMUClock:  40_000_000,
		LEs:       2100,
		Payload:   syntheticPayload(2100),
	})
}

// IDEABitstream returns the IDEA coprocessor image (6 MHz core behind a
// 24 MHz IMU and memory subsystem, the paper's Figure 9 clock plan).
func IDEABitstream(board string) []byte {
	return mustBuild(bitstream.Header{
		Device:    board,
		Core:      ideacp.CoreName,
		CoreClock: 6_000_000,
		IMUClock:  24_000_000,
		LEs:       3900,
		Payload:   syntheticPayload(3900),
	})
}

// IDEAEncryptParams builds the FPGA_EXECUTE parameter list for the IDEA
// coprocessor: the block count followed by the packed encryption subkeys.
func IDEAEncryptParams(key IDEAKey, nblocks int) []uint32 {
	ek := ref.ExpandIDEAKey(key)
	params := []uint32{uint32(nblocks)}
	for _, w := range ideacp.PackSubkeys(ek) {
		params = append(params, w)
	}
	return params
}

// IDEADecryptParams builds the parameter list with the inverted (decryption)
// key schedule.
func IDEADecryptParams(key IDEAKey, nblocks int) []uint32 {
	dk := ref.InvertIDEAKey(ref.ExpandIDEAKey(key))
	params := []uint32{uint32(nblocks)}
	for _, w := range ideacp.PackSubkeys(dk) {
		params = append(params, w)
	}
	return params
}

// --- Pure-software versions (the paper's baseline bars) -----------------

// ensureTables lazily materialises the ADPCM ROMs in the process image.
func (p *Process) ensureTables() (sw.Tables, error) {
	if p.tablesOK {
		return p.tables, nil
	}
	buf, err := p.Alloc(512)
	if err != nil {
		return sw.Tables{}, err
	}
	st := p.sys.board.SDRAM.Store()
	p.tables = sw.WriteTables(func(addr, v uint32) {
		if err := st.Write32(addr, v, 0xf); err != nil {
			panic(err)
		}
	}, buf.addr)
	p.tablesOK = true
	return p.tables, nil
}

// RunVecAddSW executes the pure-software vector addition and returns its
// measured report.
func (p *Process) RunVecAddSW(a, b, c Buffer, n int) *Report {
	ctx := cpu.NewCtx(p.sys.board.CPU)
	return core.RunSoftware(p.sys.board, "vecadd-sw", func() {
		sw.VecAdd(ctx, a.addr, b.addr, c.addr, uint32(n))
	})
}

// RunADPCMDecodeSW executes the pure-software decoder over the whole input
// buffer and returns its measured report.
func (p *Process) RunADPCMDecodeSW(in, out Buffer) (*Report, error) {
	tb, err := p.ensureTables()
	if err != nil {
		return nil, err
	}
	if out.size < in.size*4 {
		return nil, fmt.Errorf("repro: ADPCM output buffer must be 4x the input (%d < %d)", out.size, in.size*4)
	}
	ctx := cpu.NewCtx(p.sys.board.CPU)
	return core.RunSoftware(p.sys.board, "adpcmdecode-sw", func() {
		sw.ADPCMDecode(ctx, tb, in.addr, out.addr, uint32(in.size))
	}), nil
}

// RunIDEASW executes the pure-software cipher (encryption schedule) over
// whole blocks and returns its measured report.
func (p *Process) RunIDEASW(key IDEAKey, in, out Buffer) (*Report, error) {
	if in.size%ref.IDEABlockBytes != 0 || out.size < in.size {
		return nil, fmt.Errorf("repro: IDEA buffers must be whole blocks, out >= in")
	}
	keyBuf, err := p.Alloc(ref.IDEASubkeys * 2)
	if err != nil {
		return nil, err
	}
	st := p.sys.board.SDRAM.Store()
	sw.WriteSubkeys(func(addr, v uint32) {
		if err := st.Write32(addr, v, 0xf); err != nil {
			panic(err)
		}
	}, keyBuf.addr, ref.ExpandIDEAKey(key))
	ctx := cpu.NewCtx(p.sys.board.CPU)
	return core.RunSoftware(p.sys.board, "idea-sw", func() {
		sw.IDEAApply(ctx, in.addr, out.addr, keyBuf.addr, uint32(in.size/ref.IDEABlockBytes))
	}), nil
}

// --- Golden reference models (re-exported for applications/examples) -----

// GoldenADPCMEncode compresses 16-bit samples with the reference IMA/DVI
// encoder (two 4-bit codes per byte, high nibble first).
func GoldenADPCMEncode(samples []int16) []byte {
	return ref.ADPCMEncode(ref.ADPCMState{}, samples)
}

// GoldenADPCMDecode is the reference decoder the coprocessor must match.
func GoldenADPCMDecode(packed []byte) []int16 {
	return ref.ADPCMDecode(ref.ADPCMState{}, packed)
}

// GoldenIDEAEncrypt applies the reference cipher with the encryption
// schedule (whole 8-byte blocks, ECB).
func GoldenIDEAEncrypt(key IDEAKey, in []byte) []byte {
	ek := ref.ExpandIDEAKey(key)
	return ref.IDEAApply(&ek, in)
}

// GoldenIDEADecrypt applies the reference cipher with the inverted
// (decryption) schedule.
func GoldenIDEADecrypt(key IDEAKey, in []byte) []byte {
	dk := ref.InvertIDEAKey(ref.ExpandIDEAKey(key))
	return ref.IDEAApply(&dk, in)
}
