package bitstream

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a fresh coprocessor model instance for a parsed header.
// The returned value is opaque to this package (the platform layer asserts
// it to the coprocessor interface); keeping it untyped avoids an import
// cycle between the hardware model and the loader.
type Factory func(h Header) (any, error)

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{}
)

// RegisterCore installs a factory for the given core name. Coprocessor
// packages call this from init; registering the same name twice panics, as
// it indicates two models claiming one identity.
func RegisterCore(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || f == nil {
		panic("bitstream: RegisterCore with empty name or nil factory")
	}
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("bitstream: core %q registered twice", name))
	}
	factories[name] = f
}

// Instantiate parses img, checks it targets device, and builds the
// registered coprocessor model.
func Instantiate(img []byte, device string) (Header, any, error) {
	h, err := Parse(img)
	if err != nil {
		return h, nil, err
	}
	if h.Device != device {
		return h, nil, fmt.Errorf("%w: image for %q, device is %q", ErrWrongDevice, h.Device, device)
	}
	regMu.RLock()
	f, ok := factories[h.Core]
	regMu.RUnlock()
	if !ok {
		return h, nil, fmt.Errorf("%w: %q", ErrUnknownCore, h.Core)
	}
	core, err := f(h)
	if err != nil {
		return h, nil, err
	}
	return h, core, nil
}

// RegisteredCores lists the known core names, sorted (for tooling output).
func RegisteredCores() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
