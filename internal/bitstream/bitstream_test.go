package bitstream

import (
	"errors"
	"testing"
	"testing/quick"
)

func sampleHeader() Header {
	return Header{
		Device:    "EPXA1",
		Core:      "vecadd",
		CoreClock: 40_000_000,
		IMUClock:  40_000_000,
		LEs:       1234,
		Payload:   []byte{0xde, 0xad, 0xbe, 0xef, 0x42},
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	img, err := Build(sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	h, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleHeader()
	if h.Device != want.Device || h.Core != want.Core ||
		h.CoreClock != want.CoreClock || h.IMUClock != want.IMUClock || h.LEs != want.LEs {
		t.Fatalf("header mismatch: %+v", h)
	}
	if string(h.Payload) != string(want.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestParseRejectsBadMagic(t *testing.T) {
	img, _ := Build(sampleHeader())
	img[0] ^= 0xff
	if _, err := Parse(img); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestParseRejectsTruncation(t *testing.T) {
	img, _ := Build(sampleHeader())
	for _, n := range []int{0, 10, len(img) - 1} {
		if _, err := Parse(img[:n]); err == nil {
			t.Fatalf("accepted truncation to %d bytes", n)
		}
	}
}

func TestQuickSingleBitCorruptionDetected(t *testing.T) {
	img, _ := Build(sampleHeader())
	f := func(pos uint16, bit uint8) bool {
		p := int(pos) % len(img)
		mut := append([]byte(nil), img...)
		mut[p] ^= 1 << (bit % 8)
		_, err := Parse(mut)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildValidation(t *testing.T) {
	h := sampleHeader()
	h.Device = ""
	if _, err := Build(h); !errors.Is(err, ErrBadParameter) {
		t.Fatalf("err = %v, want ErrBadParameter", err)
	}
	h = sampleHeader()
	h.CoreClock = 0
	if _, err := Build(h); !errors.Is(err, ErrBadParameter) {
		t.Fatalf("err = %v, want ErrBadParameter", err)
	}
}

func TestRegistry(t *testing.T) {
	RegisterCore("test-core-registry", func(h Header) (any, error) { return h.Core + "!", nil })
	h := sampleHeader()
	h.Core = "test-core-registry"
	img, _ := Build(h)

	_, core, err := Instantiate(img, "EPXA1")
	if err != nil {
		t.Fatal(err)
	}
	if core.(string) != "test-core-registry!" {
		t.Fatalf("factory result = %v", core)
	}
	if _, _, err := Instantiate(img, "EPXA4"); !errors.Is(err, ErrWrongDevice) {
		t.Fatalf("err = %v, want ErrWrongDevice", err)
	}
	h.Core = "nobody-home"
	img2, _ := Build(h)
	if _, _, err := Instantiate(img2, "EPXA1"); !errors.Is(err, ErrUnknownCore) {
		t.Fatalf("err = %v, want ErrUnknownCore", err)
	}
	found := false
	for _, n := range RegisteredCores() {
		if n == "test-core-registry" {
			found = true
		}
	}
	if !found {
		t.Fatal("RegisteredCores missing test core")
	}
}

func TestConfigCycles(t *testing.T) {
	img, _ := Build(sampleHeader())
	if ConfigCycles(img) != int64(len(img)) {
		t.Fatal("ConfigCycles != image length")
	}
}
