// Package bitstream defines the configuration bit-stream container consumed
// by the FPGA_LOAD service and the registry that maps a validated bit-stream
// to an executable coprocessor model.
//
// On the real Excalibur, FPGA_LOAD receives a pointer to an SOF-style
// configuration image for the PLD. In the simulation the payload is opaque
// configuration data; what matters — and what this package reproduces — is
// the loader contract: a device-targeted, integrity-checked image whose
// identity selects the coprocessor, plus a size from which configuration
// time is derived.
package bitstream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies a bit-stream image ("PLDB").
const Magic = 0x504c4442

// FormatVersion is the container version written by Build.
const FormatVersion = 1

// Errors returned by Parse and the registry.
var (
	ErrBadMagic     = errors.New("bitstream: bad magic")
	ErrBadVersion   = errors.New("bitstream: unsupported container version")
	ErrCorrupt      = errors.New("bitstream: CRC mismatch")
	ErrTruncated    = errors.New("bitstream: truncated image")
	ErrWrongDevice  = errors.New("bitstream: image targets a different device")
	ErrUnknownCore  = errors.New("bitstream: no registered coprocessor for core name")
	ErrBadParameter = errors.New("bitstream: invalid build parameter")
)

// Header describes a parsed bit-stream image.
type Header struct {
	Version   uint16
	Device    string // target device, e.g. "EPXA1"
	Core      string // coprocessor identity, e.g. "adpcmdec"
	CoreClock int64  // requested coprocessor clock, Hz
	IMUClock  int64  // requested IMU/memory clock, Hz
	LEs       uint32 // logic elements consumed (resource report)
	Payload   []byte // opaque configuration frames
}

const fixedHeaderBytes = 4 + 2 + 2 + 2 + 8 + 8 + 4 + 4 // fixed fields before the names

// Build serialises a bit-stream image.
//
// Layout (little-endian):
//
//	u32 magic, u16 version, u16 deviceLen, u16 coreLen,
//	i64 coreClock, i64 imuClock, u32 LEs, u32 payloadLen,
//	device, core, u32 headerCRC, payload, u32 payloadCRC
//
// The header CRC covers the fixed fields and both name strings, so any
// single-bit corruption anywhere in the image is detected.
func Build(h Header) ([]byte, error) {
	if h.Device == "" || h.Core == "" {
		return nil, fmt.Errorf("%w: empty device or core name", ErrBadParameter)
	}
	if h.CoreClock <= 0 || h.IMUClock <= 0 {
		return nil, fmt.Errorf("%w: clocks must be positive", ErrBadParameter)
	}
	if len(h.Device) > 0xffff || len(h.Core) > 0xffff {
		return nil, fmt.Errorf("%w: name too long", ErrBadParameter)
	}
	buf := make([]byte, 0, fixedHeaderBytes+len(h.Device)+len(h.Core)+len(h.Payload)+4)
	var scratch [8]byte

	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		buf = append(buf, scratch[:4]...)
	}
	put16 := func(v uint16) {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		buf = append(buf, scratch[:2]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		buf = append(buf, scratch[:8]...)
	}

	put32(Magic)
	put16(FormatVersion)
	put16(uint16(len(h.Device)))
	put16(uint16(len(h.Core)))
	put64(uint64(h.CoreClock))
	put64(uint64(h.IMUClock))
	put32(h.LEs)
	put32(uint32(len(h.Payload)))
	buf = append(buf, h.Device...)
	buf = append(buf, h.Core...)
	put32(crc32.ChecksumIEEE(buf)) // header CRC over fixed fields + names
	buf = append(buf, h.Payload...)
	put32(crc32.ChecksumIEEE(h.Payload))
	return buf, nil
}

// Parse validates and decodes an image.
func Parse(img []byte) (Header, error) {
	var h Header
	if len(img) < fixedHeaderBytes {
		return h, ErrTruncated
	}
	if binary.LittleEndian.Uint32(img[0:]) != Magic {
		return h, ErrBadMagic
	}
	h.Version = binary.LittleEndian.Uint16(img[4:])
	if h.Version != FormatVersion {
		return h, fmt.Errorf("%w: %d", ErrBadVersion, h.Version)
	}
	devLen := int(binary.LittleEndian.Uint16(img[6:]))
	coreLen := int(binary.LittleEndian.Uint16(img[8:]))
	h.CoreClock = int64(binary.LittleEndian.Uint64(img[10:]))
	h.IMUClock = int64(binary.LittleEndian.Uint64(img[18:]))
	h.LEs = binary.LittleEndian.Uint32(img[26:])
	payLen := int(binary.LittleEndian.Uint32(img[30:]))

	namesEnd := fixedHeaderBytes + devLen + coreLen
	if len(img) < namesEnd+4 {
		return h, ErrTruncated
	}
	wantHdrCRC := binary.LittleEndian.Uint32(img[namesEnd:])
	if crc32.ChecksumIEEE(img[:namesEnd]) != wantHdrCRC {
		return h, fmt.Errorf("%w: header", ErrCorrupt)
	}
	h.Device = string(img[fixedHeaderBytes : fixedHeaderBytes+devLen])
	h.Core = string(img[fixedHeaderBytes+devLen : namesEnd])

	payStart := namesEnd + 4
	if len(img) < payStart+payLen+4 {
		return h, ErrTruncated
	}
	h.Payload = append([]byte(nil), img[payStart:payStart+payLen]...)
	wantPayCRC := binary.LittleEndian.Uint32(img[payStart+payLen:])
	if crc32.ChecksumIEEE(h.Payload) != wantPayCRC {
		return h, fmt.Errorf("%w: payload", ErrCorrupt)
	}
	return h, nil
}

// ConfigCycles returns the number of configuration-clock cycles needed to
// shift the image into the PLD (one byte per cycle, matching passive-serial
// configuration).
func ConfigCycles(img []byte) int64 { return int64(len(img)) }
