package amba

import (
	"repro/internal/mem"
)

// DPRAMSlave adapts port B of the dual-port RAM to the AHB. On-chip RAM
// answers with a fixed (small) number of wait states.
type DPRAMSlave struct {
	RAM   *mem.DPRAM
	Waits int64 // wait states per beat (on-chip: 0 or 1)
}

// Name implements Slave.
func (s *DPRAMSlave) Name() string { return "dpram" }

// Access implements Slave.
func (s *DPRAMSlave) Access(b Beat) (uint32, int64, error) {
	if b.Write {
		return 0, s.Waits, s.RAM.WriteB(b.Addr, b.WData, b.BE)
	}
	v, err := s.RAM.ReadB(b.Addr)
	return v, s.Waits, err
}

// SDRAMSlave adapts the external SDRAM to the AHB. The first beat of a
// transaction pays the activation latency; sequential beats stream at the
// burst rate.
type SDRAMSlave struct {
	RAM *mem.SDRAM
}

// Name implements Slave.
func (s *SDRAMSlave) Name() string { return "sdram" }

// Access implements Slave.
func (s *SDRAMSlave) Access(b Beat) (uint32, int64, error) {
	t := s.RAM.Timing
	var waits int64
	if b.Seq {
		waits = t.NextWord - 1
	} else {
		waits = t.FirstWord - 1
	}
	if waits < 0 {
		waits = 0
	}
	if b.Write {
		return 0, waits, s.RAM.Store().Write32(b.Addr, b.WData, b.BE)
	}
	v, err := s.RAM.Store().Read32(b.Addr)
	return v, waits, err
}

// RegSlave adapts a register file (anything with word read/write callbacks)
// to the AHB; used for the IMU's AR/SR/CR/TLB window. Register accesses are
// single-cycle on-chip.
type RegSlave struct {
	Label   string
	ReadFn  func(off uint32) (uint32, error)
	WriteFn func(off uint32, v uint32) error
}

// Name implements Slave.
func (s *RegSlave) Name() string { return s.Label }

// Access implements Slave.
func (s *RegSlave) Access(b Beat) (uint32, int64, error) {
	if b.Write {
		if s.WriteFn == nil {
			return 0, 0, ErrSlave
		}
		return 0, 0, s.WriteFn(b.Addr, b.WData)
	}
	if s.ReadFn == nil {
		return 0, 0, ErrSlave
	}
	v, err := s.ReadFn(b.Addr)
	return v, 0, err
}
