// Package amba models the AMBA AHB-lite interconnect of the Excalibur
// stripe: an address decoder, wait-stated slaves, and a master port that
// performs single transfers and INCR bursts while accounting bus cycles.
//
// The paper's SW(DP) overhead component — the operating system moving pages
// between user-space SDRAM and the dual-port RAM — is costed by driving this
// model, so its wait-state arithmetic is what ultimately shapes Figures 8
// and 9.
package amba

import (
	"errors"
	"fmt"
	"sort"
)

// Transfer direction and size constants.
const (
	// WordBytes is the bus width in bytes (AHB 32-bit data bus).
	WordBytes = 4
)

// Errors returned by bus operations.
var (
	ErrDecode  = errors.New("amba: no slave mapped at address")
	ErrOverlap = errors.New("amba: region overlaps an existing mapping")
	ErrSlave   = errors.New("amba: slave error response")
)

// Beat describes one beat of a transfer presented to a slave.
type Beat struct {
	Addr  uint32
	Write bool
	WData uint32
	BE    uint8 // byte enables for writes
	Seq   bool  // true for the non-first beats of an INCR burst
}

// Slave is an AHB slave: it performs the access and reports how many wait
// states it inserted before completing the data phase.
type Slave interface {
	// Access performs the beat and returns read data (for reads) and the
	// number of wait states (0 means single-cycle data phase).
	Access(b Beat) (rdata uint32, waits int64, err error)
	// Name identifies the slave in errors and dumps.
	Name() string
}

// region is one entry of the address map.
type region struct {
	base, size uint32
	slave      Slave
}

// Bus is a single-master AHB-lite layer with an address decoder.
//
// The stripe has one AHB master of interest at a time (the ARM core or the
// configuration DMA); true multi-master arbitration is not required for the
// paper's experiments and is documented as out of scope.
type Bus struct {
	regions []region
	// last caches the most recently decoded region index; page copies and
	// cache refills hit the same slave for long beat runs, so checking it
	// first skips the binary search on the hot path.
	last int

	// Cycles is the running HCLK cycle count consumed by transfers.
	Cycles int64
	// Transfers counts completed beats.
	Transfers int64

	// copyBuf is Copy's reusable burst staging buffer.
	copyBuf []uint32
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Map attaches slave at [base, base+size). Regions must not overlap.
func (b *Bus) Map(base, size uint32, s Slave) error {
	if s == nil || size == 0 {
		return fmt.Errorf("amba: invalid mapping for %q", nameOf(s))
	}
	newEnd := uint64(base) + uint64(size)
	for _, r := range b.regions {
		end := uint64(r.base) + uint64(r.size)
		if uint64(base) < end && newEnd > uint64(r.base) {
			return fmt.Errorf("%w: [%#x,%#x) vs %q [%#x,%#x)", ErrOverlap, base, newEnd, r.slave.Name(), r.base, end)
		}
	}
	b.regions = append(b.regions, region{base: base, size: size, slave: s})
	sort.Slice(b.regions, func(i, j int) bool { return b.regions[i].base < b.regions[j].base })
	return nil
}

func nameOf(s Slave) string {
	if s == nil {
		return "<nil>"
	}
	return s.Name()
}

// decode finds the slave and local offset for addr.
func (b *Bus) decode(addr uint32) (Slave, uint32, error) {
	if b.last < len(b.regions) {
		r := &b.regions[b.last]
		if addr-r.base < r.size { // unsigned wrap rejects addr < base
			return r.slave, addr - r.base, nil
		}
	}
	i := sort.Search(len(b.regions), func(i int) bool { return b.regions[i].base > addr })
	if i > 0 {
		r := b.regions[i-1]
		if addr-r.base < r.size {
			b.last = i - 1
			return r.slave, addr - r.base, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: %#x", ErrDecode, addr)
}

// transfer runs one beat through decode and the slave, charging cycles:
// the address phase of a beat overlaps the previous data phase, so a beat
// costs 1 (data) + waits, plus 1 extra cycle for the very first address
// phase of a transaction (firstBeat).
func (b *Bus) transfer(beat Beat, firstBeat bool) (uint32, error) {
	s, off, err := b.decode(beat.Addr)
	if err != nil {
		return 0, err
	}
	local := beat
	local.Addr = off
	rdata, waits, err := s.Access(local)
	if err != nil {
		return 0, fmt.Errorf("%w: %q at %#x: %v", ErrSlave, s.Name(), beat.Addr, err)
	}
	cost := 1 + waits
	if firstBeat {
		cost++
	}
	b.Cycles += cost
	b.Transfers++
	return rdata, nil
}

// Read32 performs a single word read.
func (b *Bus) Read32(addr uint32) (uint32, error) {
	return b.transfer(Beat{Addr: addr}, true)
}

// Write32 performs a single word write with all byte lanes enabled.
func (b *Bus) Write32(addr, v uint32) error {
	_, err := b.transfer(Beat{Addr: addr, Write: true, WData: v, BE: 0xf}, true)
	return err
}

// ReadBurst performs an INCR read burst of n words starting at addr,
// filling dst. Bursts must not cross region boundaries (callers split at
// page granularity, which is always within one device).
func (b *Bus) ReadBurst(addr uint32, dst []uint32) error {
	for i := range dst {
		v, err := b.transfer(Beat{Addr: addr + uint32(i*WordBytes), Seq: i > 0}, i == 0)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// WriteBurst performs an INCR write burst of the words in src.
func (b *Bus) WriteBurst(addr uint32, src []uint32) error {
	for i, v := range src {
		_, err := b.transfer(Beat{Addr: addr + uint32(i*WordBytes), Write: true, WData: v, BE: 0xf, Seq: i > 0}, i == 0)
		if err != nil {
			return err
		}
	}
	return nil
}

// Copy moves n bytes from src to dst using word bursts of burstWords beats,
// returning the HCLK cycles consumed. Addresses and n must be word-aligned.
func (b *Bus) Copy(dst, src uint32, n int, burstWords int) (int64, error) {
	if n%WordBytes != 0 || dst%WordBytes != 0 || src%WordBytes != 0 {
		return 0, fmt.Errorf("amba: Copy requires word alignment (dst=%#x src=%#x n=%d)", dst, src, n)
	}
	if burstWords <= 0 {
		burstWords = 1
	}
	start := b.Cycles
	if cap(b.copyBuf) < burstWords {
		b.copyBuf = make([]uint32, burstWords)
	}
	buf := b.copyBuf[:burstWords]
	for done := 0; done < n; {
		words := (n - done) / WordBytes
		if words > burstWords {
			words = burstWords
		}
		chunk := buf[:words]
		if err := b.ReadBurst(src+uint32(done), chunk); err != nil {
			return b.Cycles - start, err
		}
		if err := b.WriteBurst(dst+uint32(done), chunk); err != nil {
			return b.Cycles - start, err
		}
		done += words * WordBytes
	}
	return b.Cycles - start, nil
}
