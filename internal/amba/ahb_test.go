package amba

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func testBus(t *testing.T) (*Bus, *mem.DPRAM, *mem.SDRAM) {
	t.Helper()
	b := NewBus()
	dp, err := mem.NewDPRAM(16*1024, 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	sd := mem.NewSDRAM(1<<20, mem.DefaultSDRAMTiming())
	if err := b.Map(0x0800_0000, uint32(dp.Size()), &DPRAMSlave{RAM: dp}); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(0x0000_0000, uint32(sd.Size()), &SDRAMSlave{RAM: sd}); err != nil {
		t.Fatal(err)
	}
	return b, dp, sd
}

func TestDecodeAndRoundTrip(t *testing.T) {
	b, dp, _ := testBus(t)
	if err := b.Write32(0x0800_0010, 0xcafebabe); err != nil {
		t.Fatal(err)
	}
	v, err := b.Read32(0x0800_0010)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xcafebabe {
		t.Fatalf("read %#x, want 0xcafebabe", v)
	}
	// The write went to the DP RAM's port B.
	if dp.WritesB != 1 {
		t.Fatalf("dpram WritesB = %d, want 1", dp.WritesB)
	}
}

func TestDecodeError(t *testing.T) {
	b, _, _ := testBus(t)
	if _, err := b.Read32(0xf000_0000); !errors.Is(err, ErrDecode) {
		t.Fatalf("err = %v, want ErrDecode", err)
	}
}

func TestOverlapRejected(t *testing.T) {
	b, _, _ := testBus(t)
	dp2, _ := mem.NewDPRAM(4096, 1024)
	err := b.Map(0x0800_0800, 4096, &DPRAMSlave{RAM: dp2})
	if !errors.Is(err, ErrOverlap) {
		t.Fatalf("err = %v, want ErrOverlap", err)
	}
}

func TestSingleTransferCost(t *testing.T) {
	b, _, _ := testBus(t)
	start := b.Cycles
	// DPRAM single read: 1 addr + 1 data + 0 waits = 2.
	if _, err := b.Read32(0x0800_0000); err != nil {
		t.Fatal(err)
	}
	if got := b.Cycles - start; got != 2 {
		t.Fatalf("dpram single read cost = %d, want 2", got)
	}
	start = b.Cycles
	// SDRAM single read: 1 addr + 1 data + (FirstWord-1)=5 waits = 7.
	if _, err := b.Read32(0x0000_0100); err != nil {
		t.Fatal(err)
	}
	if got := b.Cycles - start; got != 7 {
		t.Fatalf("sdram single read cost = %d, want 7", got)
	}
}

func TestBurstIsCheaperThanSingles(t *testing.T) {
	b, _, _ := testBus(t)
	dst := make([]uint32, 8)
	start := b.Cycles
	if err := b.ReadBurst(0x0000_0000, dst); err != nil {
		t.Fatal(err)
	}
	burst := b.Cycles - start
	start = b.Cycles
	for i := 0; i < 8; i++ {
		if _, err := b.Read32(uint32(i * 4)); err != nil {
			t.Fatal(err)
		}
	}
	singles := b.Cycles - start
	if burst >= singles {
		t.Fatalf("burst cost %d not cheaper than singles %d", burst, singles)
	}
	// Burst of 8 from SDRAM: first beat 1+1+5, then 7 seq beats at 1+0
	// waits (NextWord=1 -> 0 waits) = 7+7 = 14.
	if burst != 14 {
		t.Fatalf("burst cost = %d, want 14", burst)
	}
}

func TestCopyMovesDataAndCharges(t *testing.T) {
	b, dp, sd := testBus(t)
	src := make([]byte, 2048)
	for i := range src {
		src[i] = byte(i ^ (i >> 3))
	}
	if err := sd.Store().WriteBytes(0x4000, src); err != nil {
		t.Fatal(err)
	}
	cycles, err := b.Copy(0x0800_0000, 0x4000, 2048, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatal("copy consumed no cycles")
	}
	got, err := dp.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], src[i])
		}
	}
}

func TestCopyAlignment(t *testing.T) {
	b, _, _ := testBus(t)
	if _, err := b.Copy(0x0800_0001, 0, 8, 8); err == nil {
		t.Fatal("accepted unaligned dst")
	}
	if _, err := b.Copy(0x0800_0000, 0, 6, 8); err == nil {
		t.Fatal("accepted non-word length")
	}
}

// Property: copy cycle cost is linear-ish and monotone in size, and data
// always arrives intact.
func TestQuickCopyMonotone(t *testing.T) {
	f := func(a, c uint8) bool {
		nA := (int(a%16) + 1) * 64
		nC := (int(c%16) + 1) * 64
		if nA > nC {
			nA, nC = nC, nA
		}
		b1, _, sd1 := testBusQuick()
		for i := 0; i < nC; i++ {
			_ = sd1.Store().SetByte(uint32(i), byte(i))
		}
		cyA, err1 := b1.Copy(0x0800_0000, 0, nA, 8)
		b2, _, _ := testBusQuick()
		cyC, err2 := b2.Copy(0x0800_0000, 0, nC, 8)
		return err1 == nil && err2 == nil && cyA <= cyC
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testBusQuick() (*Bus, *mem.DPRAM, *mem.SDRAM) {
	b := NewBus()
	dp, _ := mem.NewDPRAM(16*1024, 2*1024)
	sd := mem.NewSDRAM(1<<20, mem.DefaultSDRAMTiming())
	_ = b.Map(0x0800_0000, uint32(dp.Size()), &DPRAMSlave{RAM: dp})
	_ = b.Map(0x0000_0000, uint32(sd.Size()), &SDRAMSlave{RAM: sd})
	return b, dp, sd
}

func TestRegSlave(t *testing.T) {
	b := NewBus()
	var reg uint32
	rs := &RegSlave{
		Label:   "imu-regs",
		ReadFn:  func(off uint32) (uint32, error) { return reg + off, nil },
		WriteFn: func(off uint32, v uint32) error { reg = v; return nil },
	}
	if err := b.Map(0x1000_0000, 0x100, rs); err != nil {
		t.Fatal(err)
	}
	if err := b.Write32(0x1000_0000, 42); err != nil {
		t.Fatal(err)
	}
	v, err := b.Read32(0x1000_0004)
	if err != nil {
		t.Fatal(err)
	}
	if v != 46 {
		t.Fatalf("reg read = %d, want 46", v)
	}
}

func TestBurstIntoUnmappedRegionFails(t *testing.T) {
	b := NewBus()
	sd := mem.NewSDRAM(1024, mem.DefaultSDRAMTiming())
	if err := b.Map(0, 1024, &SDRAMSlave{RAM: sd}); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint32, 8)
	// The burst starts in range and runs off the end of the device.
	if err := b.ReadBurst(1024-16, dst); err == nil {
		t.Fatal("burst past the region end succeeded")
	}
}

func TestMapRejectsNilAndEmpty(t *testing.T) {
	b := NewBus()
	if err := b.Map(0, 0x100, nil); err == nil {
		t.Fatal("nil slave accepted")
	}
	sd := mem.NewSDRAM(1024, mem.DefaultSDRAMTiming())
	if err := b.Map(0, 0, &SDRAMSlave{RAM: sd}); err == nil {
		t.Fatal("empty region accepted")
	}
}

func TestAdjacentRegionsDecodeExactly(t *testing.T) {
	b := NewBus()
	lo := mem.NewSDRAM(256, mem.DefaultSDRAMTiming())
	hi := mem.NewSDRAM(256, mem.DefaultSDRAMTiming())
	if err := b.Map(0x000, 256, &SDRAMSlave{RAM: lo}); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(0x100, 256, &SDRAMSlave{RAM: hi}); err != nil {
		t.Fatal(err)
	}
	if err := b.Write32(0x0fc, 0x10101010); err != nil { // last word of lo
		t.Fatal(err)
	}
	if err := b.Write32(0x100, 0x20202020); err != nil { // first word of hi
		t.Fatal(err)
	}
	v, _ := lo.Store().Read32(0xfc)
	if v != 0x10101010 {
		t.Fatal("low region missed its last word")
	}
	v, _ = hi.Store().Read32(0)
	if v != 0x20202020 {
		t.Fatal("high region missed its first word")
	}
}
