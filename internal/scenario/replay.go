package scenario

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/rcsched"
	"repro/internal/telemetry"
)

// Result is the outcome of replaying one scenario.
type Result struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Mode is the match mode the comparison actually ran under.
	Mode string `json:"mode"`
	// Steps counts the decision-stream steps (events and routing
	// decisions) that matched before the comparison stopped.
	Steps int `json:"steps"`
	// Divergences is empty on a pass; otherwise its first entry is the
	// earliest divergence in replay order (decisions, then per-board
	// events, then job reports, then aggregates).
	Divergences []Divergence `json:"divergences,omitempty"`
	// Err is a replay execution failure (the run itself refused or died),
	// as opposed to a comparison mismatch.
	Err string `json:"error,omitempty"`
}

// Pass reports whether the replay reproduced the scenario.
func (r *Result) Pass() bool { return r.Err == "" && len(r.Divergences) == 0 }

// Replay re-executes the scenario's run from its recorded configuration
// and arrival stream, then matches the outcome against the expectations.
// modeOverride forces Strict or Metrics regardless of the file ("" keeps
// the file's mode). Execution failures land in Result.Err so a corpus
// sweep can keep going; only a nonsensical override is an error here.
func Replay(sc *Scenario, modeOverride string) (*Result, error) {
	return ReplayMetered(sc, modeOverride, nil)
}

// ReplayMetered is Replay with a telemetry meter attached to the replayed
// run. Telemetry is strictly passive, so a metered replay must match the
// scenario exactly as an unmetered one does — the corpus doubles as the
// telemetry regression suite.
func ReplayMetered(sc *Scenario, modeOverride string, m *telemetry.Meter) (*Result, error) {
	match := sc.Match
	switch modeOverride {
	case "":
	case Strict, Metrics:
		match.Mode = modeOverride
	default:
		return nil, fmt.Errorf("scenario: unknown match mode %q", modeOverride)
	}
	res := &Result{Name: sc.Name, Kind: sc.Kind, Mode: match.effectiveMode()}

	// Re-recording the reconstructed run reuses the exact capture path the
	// original recording took: same observers, same resolution, same
	// ordering — the comparison is recorder-output against recorder-output.
	var re *Scenario
	var err error
	switch sc.Kind {
	case KindServe:
		cfg := sc.serveConfig()
		cfg.Meter = m
		re, err = RecordServe(sc.Name, "", cfg, jobsOf(sc.Jobs), match)
	case KindFleet:
		cfg := sc.fleetConfig()
		cfg.Meter = m
		re, err = RecordFleet(sc.Name, "", cfg, jobsOf(sc.Jobs), match)
	default:
		err = fmt.Errorf("scenario %s: unknown kind %q", sc.Name, sc.Kind)
	}
	if err != nil {
		res.Err = err.Error()
		return res, nil
	}
	if res.Mode == Metrics {
		res.Divergences = compareAggregate(&sc.Expect.Aggregate, &re.Expect.Aggregate, match.effectiveTol())
	} else {
		res.Steps, res.Divergences = compareStrict(&sc.Expect, &re.Expect)
	}
	return res, nil
}

// serveConfig rebuilds the rcsched configuration the scenario pinned.
func (sc *Scenario) serveConfig() rcsched.Config {
	return rcsched.Config{
		Board:         sc.Serve.Board,
		Slots:         sc.Serve.Slots,
		ShellHz:       sc.Serve.ShellHz,
		Policy:        sc.Serve.Policy,
		ConfigBW:      sc.Serve.ConfigBW,
		Stage:         sc.Serve.Stage,
		Admit:         sc.Serve.Admit,
		FramesPerSlot: sc.Serve.FramesPerSlot,
	}
}

// fleetConfig rebuilds the fleet configuration the scenario pinned.
func (sc *Scenario) fleetConfig() fleet.Config {
	return fleet.Config{
		Boards:   sc.Fleet.Boards,
		Dispatch: sc.Fleet.Dispatch,
		Seed:     sc.Fleet.Seed,
		BoundPs:  sc.Fleet.BoundPs,
		Board:    sc.serveConfig(),
	}
}
