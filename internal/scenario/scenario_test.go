package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/rcsched"
)

// testStream is a small canonical-shaped trace: n multi-user jobs with the
// SERVE experiment's seed and mean gap.
func testStream(t *testing.T, n int) []rcsched.Job {
	t.Helper()
	jobs, err := rcsched.Trace(n, 4242, 0.15e9)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func recordServe(t *testing.T, cfg rcsched.Config, jobs []rcsched.Job) *Scenario {
	t.Helper()
	sc, err := RecordServe("test-serve", "unit fixture", cfg, jobs, Match{})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// roundTrip pushes the scenario through Serialize/Parse, proving every
// pinned value survives the file format bit for bit.
func roundTrip(t *testing.T, sc *Scenario) *Scenario {
	t.Helper()
	data, err := Serialize(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("re-parse of a just-serialized scenario: %v", err)
	}
	return back
}

// TestRecordReplayServe records a small serve run, round-trips it through
// the file format and replays it strictly: the replay must reproduce every
// event, job report and aggregate bit for bit.
func TestRecordReplayServe(t *testing.T) {
	cfgs := []rcsched.Config{
		{Slots: 2, Policy: "affinity"},
		{Slots: 2, Policy: "slack", Stage: true, ConfigBW: 250_000},
	}
	for _, cfg := range cfgs {
		jobs := testStream(t, 8)
		if cfg.Policy == "slack" {
			rcsched.SetBudgets(jobs, 1)
		}
		sc := roundTrip(t, recordServe(t, cfg, jobs))
		res, err := Replay(sc, "")
		if err != nil {
			t.Fatal(err)
		}
		if !res.Pass() {
			t.Fatalf("%s replay diverged:\n%s", cfg.Policy, res.Text())
		}
		if res.Steps == 0 {
			t.Errorf("%s replay matched zero steps; the event stream was not recorded", cfg.Policy)
		}
		if len(sc.Expect.Events) == 0 {
			t.Errorf("%s scenario pinned no events", cfg.Policy)
		}
	}
}

// TestRecordReplayFleet does the same over a 2-board fleet run, including
// the routing decisions and per-board event streams.
func TestRecordReplayFleet(t *testing.T) {
	jobs := testStream(t, 12)
	cfg := fleet.Config{
		Boards:   2,
		Dispatch: fleet.Affinity,
		Seed:     99,
		Board:    rcsched.Config{Slots: 2, Policy: "affinity"},
	}
	sc, err := RecordFleet("test-fleet", "unit fixture", cfg, jobs, Match{})
	if err != nil {
		t.Fatal(err)
	}
	sc = roundTrip(t, sc)
	if len(sc.Expect.Decisions) != len(jobs) {
		t.Fatalf("pinned %d decisions for %d jobs", len(sc.Expect.Decisions), len(jobs))
	}
	res, err := Replay(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Fatalf("fleet replay diverged:\n%s", res.Text())
	}
}

// TestReplayCatchesPerturbations injects single-step corruptions into a
// recorded scenario — the acceptance property: each is caught, and the
// reported first divergence names the right step and field.
func TestReplayCatchesPerturbations(t *testing.T) {
	base := recordServe(t, rcsched.Config{Slots: 2, Policy: "affinity"}, testStream(t, 8))
	cases := []struct {
		name   string
		mutate func(*Scenario)
		where  string // substring the divergence location must carry
		field  string
	}{
		{
			name:   "wrong-slot",
			mutate: func(sc *Scenario) { sc.Expect.Jobs[3].Slot ^= 1 },
			where:  "job", field: "slot",
		},
		{
			name:   "late-completion",
			mutate: func(sc *Scenario) { sc.Expect.Jobs[5].DonePs += 1e9 },
			where:  "job", field: "done_ps",
		},
		{
			name: "flipped-disposition",
			mutate: func(sc *Scenario) {
				sc.Expect.Jobs[2].Disposition = string(rcsched.Rejected)
			},
			where: "job", field: "disposition",
		},
		{
			name: "missing-job",
			mutate: func(sc *Scenario) {
				sc.Expect.Jobs = append(sc.Expect.Jobs[:4], sc.Expect.Jobs[5:]...)
			},
			where: "job",
		},
		{
			name: "event-slot",
			mutate: func(sc *Scenario) {
				for i := range sc.Expect.Events {
					if sc.Expect.Events[i].Kind == EventDispatch {
						sc.Expect.Events[i].Slot ^= 1
						return
					}
				}
			},
			where: "event[", field: "slot",
		},
		{
			name: "event-path",
			mutate: func(sc *Scenario) {
				for i := range sc.Expect.Events {
					if sc.Expect.Events[i].Kind == EventDispatch {
						sc.Expect.Events[i].Path = DispatchPathFlip(sc.Expect.Events[i].Path)
						return
					}
				}
			},
			where: "event[", field: "path",
		},
		{
			name:   "aggregate",
			mutate: func(sc *Scenario) { sc.Expect.Aggregate.Reconfigs++ },
			where:  "aggregate", field: "reconfigs",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := roundTrip(t, base) // deep copy via the file format
			c.mutate(sc)
			res, err := Replay(sc, "")
			if err != nil {
				t.Fatal(err)
			}
			if res.Pass() {
				t.Fatal("perturbation not caught")
			}
			if len(res.Divergences) != 1 {
				t.Fatalf("want exactly the first divergence, got %d", len(res.Divergences))
			}
			d := res.Divergences[0]
			if !strings.Contains(d.Where, c.where) {
				t.Errorf("divergence at %q, want location containing %q", d.Where, c.where)
			}
			if c.field != "" && d.Field != c.field {
				t.Errorf("divergence field %q, want %q", d.Field, c.field)
			}
			if !strings.Contains(res.Text(), "first divergence at") {
				t.Errorf("text diff lacks the first-divergence line:\n%s", res.Text())
			}

			// Every caught perturbation must also render as a failing
			// JUnit case carrying the diff.
			xmlOut, err := FormatJUnit("scenarios", []*Result{res})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(xmlOut), `failures="1"`) {
				t.Errorf("JUnit suite does not count the failure:\n%s", xmlOut)
			}
			if !strings.Contains(string(xmlOut), "diverged at") {
				t.Errorf("JUnit case lacks the divergence message:\n%s", xmlOut)
			}
		})
	}
}

// DispatchPathFlip swaps a dispatch path annotation for a different valid
// one (test helper for the path-perturbation case).
func DispatchPathFlip(p string) string {
	if p == rcsched.DispatchResident {
		return rcsched.DispatchStream
	}
	return rcsched.DispatchResident
}

// TestMetricsMode relaxes the comparison to aggregate tolerances: a small
// in-tolerance nudge passes, a gross one fails, and the strict override
// still catches everything.
func TestMetricsMode(t *testing.T) {
	sc := recordServe(t, rcsched.Config{Slots: 2, Policy: "fcfs"}, testStream(t, 8))
	sc.Match = Match{Mode: Metrics, Tolerance: 0.05}
	sc.Expect.Aggregate.MakespanPs *= 1.01 // within 5%
	sc.Expect.Jobs[0].Slot ^= 1            // metrics mode never looks at this
	res, err := Replay(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Fatalf("in-tolerance metrics replay failed:\n%s", res.Text())
	}

	res, err = Replay(sc, Strict)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass() {
		t.Fatal("strict override ignored the perturbations")
	}

	sc.Expect.Aggregate.MakespanPs *= 1.2 // way outside 5%
	res, err = Replay(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass() {
		t.Fatal("out-of-tolerance metrics replay passed")
	}
	if res.Divergences[0].Where != "aggregate" {
		t.Errorf("metrics divergence at %q, want aggregate", res.Divergences[0].Where)
	}
}

// TestParseRejects pins the error behaviour on bad files: malformed,
// truncated, mistagged, version-skewed and structurally invalid scenarios
// all error cleanly.
func TestParseRejects(t *testing.T) {
	good, err := Serialize(recordServe(t, rcsched.Config{Slots: 2, Policy: "fcfs"}, testStream(t, 4)))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty", []byte{}, "malformed"},
		{"not-json", []byte("#!/bin/sh\n"), "malformed"},
		{"truncated", good[:len(good)/2], "malformed"},
		{"wrong-format", []byte(`{"format":"something-else","version":1}`), "not a scenario file"},
		{"version-skew", []byte(strings.Replace(string(good), `"version": 1`, `"version": 99`, 1)), "version 99 unsupported"},
		{"no-jobs", []byte(strings.Replace(string(good), `"kind": "serve"`, `"kind": "warp"`, 1)), `unknown kind "warp"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.data)
			if err == nil {
				t.Fatal("parse accepted a bad file")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestObserverPassive is the recording-off/on differential: attaching the
// recorder must not change a single bit of the run it observes — the same
// stream served with and without an observer yields deeply equal reports,
// for a plain serve and for a fleet run.
func TestObserverPassive(t *testing.T) {
	jobs := testStream(t, 8)
	cfg := rcsched.Config{Slots: 2, Policy: "slack", Stage: true, ConfigBW: 250_000}
	rcsched.SetBudgets(jobs, 1)
	bare, err := rcsched.Serve(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = &recorder{}
	observed, err := rcsched.Serve(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, observed) {
		t.Errorf("observing a serve run perturbed it:\n bare     %+v\n observed %+v", bare, observed)
	}

	fjobs := testStream(t, 12)
	fcfg := fleet.Config{Boards: 2, Dispatch: fleet.Po2, Seed: 7,
		Board: rcsched.Config{Slots: 2, Policy: "affinity"}}
	fbare, err := fleet.Run(fcfg, fjobs)
	if err != nil {
		t.Fatal(err)
	}
	fcfg.Observe = &fleetRecorder{boards: make([]recorder, fcfg.Boards)}
	fobserved, err := fleet.Run(fcfg, fjobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fbare, fobserved) {
		t.Error("observing a fleet run perturbed it")
	}
}
