package scenario

import (
	"fmt"
	"math"
	"strconv"
)

// Divergence is one point where the replay left the recorded run. The
// comparison stops at the first one, so a result carries at most a single
// divergence — the earliest, which is the one worth reading: everything
// after it is downstream noise.
type Divergence struct {
	// Where locates the step: "event[12]", "decision[3]",
	// "board[1].event[4]", "job 17" or "aggregate".
	Where string `json:"where"`
	// Field names the diverging field within the step ("" when the whole
	// step is missing or extra).
	Field string `json:"field,omitempty"`
	Got   string `json:"got"`
	Want  string `json:"want"`
}

func (d Divergence) String() string {
	loc := d.Where
	if d.Field != "" {
		loc += "." + d.Field
	}
	return fmt.Sprintf("first divergence at %s:\n  got  %s\n  want %s", loc, d.Got, d.Want)
}

// compareStrict matches the replayed expectations bit for bit against the
// recorded ones, in replay order: the decision streams first (a scheduling
// divergence surfaces there earliest and most legibly), then the per-job
// reports, then the aggregates. It returns the number of matched stream
// steps and the first divergence (if any).
func compareStrict(want, got *Expect) (int, []Divergence) {
	steps := 0
	if d := compareDecisions(want.Decisions, got.Decisions, &steps); d != nil {
		return steps, d
	}
	if d := compareEvents("event", want.Events, got.Events, &steps); d != nil {
		return steps, d
	}
	boards := len(want.BoardEvents)
	if len(got.BoardEvents) > boards {
		boards = len(got.BoardEvents)
	}
	for b := 0; b < boards; b++ {
		var w, g []Event
		if b < len(want.BoardEvents) {
			w = want.BoardEvents[b]
		}
		if b < len(got.BoardEvents) {
			g = got.BoardEvents[b]
		}
		if d := compareEvents(fmt.Sprintf("board[%d].event", b), w, g, &steps); d != nil {
			return steps, d
		}
	}
	if d := compareJobs(want.Jobs, got.Jobs); d != nil {
		return steps, d
	}
	return steps, compareAggregate(&want.Aggregate, &got.Aggregate, 0)
}

func compareDecisions(want, got []DecisionRecord, steps *int) []Divergence {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			return []Divergence{{
				Where: fmt.Sprintf("decision[%d]", i),
				Field: decisionField(want[i], got[i]),
				Got:   got[i].format(),
				Want:  want[i].format(),
			}}
		}
		*steps++
	}
	if len(want) != len(got) {
		return []Divergence{streamLength(fmt.Sprintf("decision[%d]", n), len(want), len(got))}
	}
	return nil
}

func compareEvents(where string, want, got []Event, steps *int) []Divergence {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			return []Divergence{{
				Where: fmt.Sprintf("%s[%d]", where, i),
				Field: eventField(want[i], got[i]),
				Got:   got[i].format(),
				Want:  want[i].format(),
			}}
		}
		*steps++
	}
	if len(want) != len(got) {
		return []Divergence{streamLength(fmt.Sprintf("%s[%d]", where, n), len(want), len(got))}
	}
	return nil
}

// compareJobs matches the per-job reports by job ID, so a missing or extra
// record reads as exactly that instead of shifting every later comparison.
func compareJobs(want, got []JobRecord) []Divergence {
	byID := make(map[int]*JobRecord, len(want))
	for i := range want {
		byID[want[i].ID] = &want[i]
	}
	for i := range got {
		g := &got[i]
		w, ok := byID[g.ID]
		if !ok {
			return []Divergence{{
				Where: fmt.Sprintf("job %d", g.ID),
				Got:   g.format(),
				Want:  "(no pinned report: the job is missing from the scenario)",
			}}
		}
		delete(byID, g.ID)
		if *w != *g {
			field, gv, wv := jobField(w, g)
			return []Divergence{{
				Where: fmt.Sprintf("job %d", g.ID),
				Field: field,
				Got:   gv,
				Want:  wv,
			}}
		}
	}
	// Deterministic pick of the lowest leftover ID, if any.
	missing := -1
	for id := range byID {
		if missing < 0 || id < missing {
			missing = id
		}
	}
	if missing >= 0 {
		return []Divergence{{
			Where: fmt.Sprintf("job %d", missing),
			Got:   "(never replayed)",
			Want:  byID[missing].format(),
		}}
	}
	return nil
}

// compareAggregate checks every aggregate value; tol 0 means exact
// (strict), otherwise each value must sit within tol relative error.
func compareAggregate(want, got *Aggregate, tol float64) []Divergence {
	for _, f := range aggregateFields {
		w, g := f.get(want), f.get(got)
		if tol == 0 {
			if w == g {
				continue
			}
		} else if math.Abs(g-w) <= tol*math.Max(math.Abs(w), 1e-9) {
			continue
		}
		return []Divergence{{
			Where: "aggregate",
			Field: f.name,
			Got:   ftoa(g),
			Want:  ftoa(w),
		}}
	}
	return nil
}

func streamLength(where string, want, got int) Divergence {
	return Divergence{
		Where: where,
		Got:   fmt.Sprintf("stream has %d steps", got),
		Want:  fmt.Sprintf("stream has %d steps", want),
	}
}

func (e Event) format() string {
	s := fmt.Sprintf("%s job %d", e.Kind, e.Job)
	if e.Slot >= 0 {
		s += fmt.Sprintf(" slot %d", e.Slot)
	}
	s += " at " + ftoa(e.AtPs) + " ps"
	if e.Path != "" {
		s += " (" + e.Path + ")"
	}
	return s
}

func (d DecisionRecord) format() string {
	return fmt.Sprintf("job %d -> board %d at %s ps", d.Job, d.Board, ftoa(d.EpochPs))
}

func (j *JobRecord) format() string {
	return fmt.Sprintf("%s %s %d B slot %d done at %s ps", j.Disposition, j.App, j.Size, j.Slot, ftoa(j.DonePs))
}

func eventField(w, g Event) string {
	switch {
	case w.Kind != g.Kind:
		return "kind"
	case w.Job != g.Job:
		return "job"
	case w.Slot != g.Slot:
		return "slot"
	case w.AtPs != g.AtPs:
		return "at_ps"
	default:
		return "path"
	}
}

func decisionField(w, g DecisionRecord) string {
	switch {
	case w.Job != g.Job:
		return "job"
	case w.Board != g.Board:
		return "board"
	default:
		return "epoch_ps"
	}
}

// jobField names the first diverging field of a job record and renders
// both sides.
func jobField(w, g *JobRecord) (name, got, want string) {
	for _, f := range jobRecordFields {
		if wv, gv := f.get(w), f.get(g); wv != gv {
			return f.name, gv, wv
		}
	}
	return "?", g.format(), w.format()
}

var jobRecordFields = []struct {
	name string
	get  func(*JobRecord) string
}{
	{"app", func(j *JobRecord) string { return j.App }},
	{"size", func(j *JobRecord) string { return strconv.Itoa(j.Size) }},
	{"slot", func(j *JobRecord) string { return strconv.Itoa(j.Slot) }},
	{"board", func(j *JobRecord) string { return strconv.Itoa(j.Board) }},
	{"disposition", func(j *JobRecord) string { return j.Disposition }},
	{"arrival_ps", func(j *JobRecord) string { return ftoa(j.ArrivalPs) }},
	{"deadline_ps", func(j *JobRecord) string { return ftoa(j.DeadlinePs) }},
	{"queue_wait_ps", func(j *JobRecord) string { return ftoa(j.QueueWaitPs) }},
	{"reconfig_ps", func(j *JobRecord) string { return ftoa(j.ReconfigPs) }},
	{"exec_ps", func(j *JobRecord) string { return ftoa(j.ExecPs) }},
	{"latency_ps", func(j *JobRecord) string { return ftoa(j.LatencyPs) }},
	{"lateness_ps", func(j *JobRecord) string { return ftoa(j.LatenessPs) }},
	{"done_ps", func(j *JobRecord) string { return ftoa(j.DonePs) }},
	{"reconfigured", func(j *JobRecord) string { return strconv.FormatBool(j.Reconfig) }},
	{"staged", func(j *JobRecord) string { return strconv.FormatBool(j.Staged) }},
	{"missed", func(j *JobRecord) string { return strconv.FormatBool(j.Missed) }},
	{"faults", func(j *JobRecord) string { return strconv.FormatUint(j.Faults, 10) }},
}

var aggregateFields = []struct {
	name string
	get  func(*Aggregate) float64
}{
	{"makespan_ps", func(a *Aggregate) float64 { return a.MakespanPs }},
	{"total_reconfig_ps", func(a *Aggregate) float64 { return a.TotalReconfigPs }},
	{"reconfigs", func(a *Aggregate) float64 { return float64(a.Reconfigs) }},
	{"stage_commits", func(a *Aggregate) float64 { return float64(a.StageCommits) }},
	{"stage_cancels", func(a *Aggregate) float64 { return float64(a.StageCancels) }},
	{"mean_wait_ps", func(a *Aggregate) float64 { return a.MeanWaitPs }},
	{"mean_latency_ps", func(a *Aggregate) float64 { return a.MeanLatencyPs }},
	{"p99_latency_ps", func(a *Aggregate) float64 { return a.P99LatencyPs }},
	{"p99_admitted_ps", func(a *Aggregate) float64 { return a.P99AdmittedPs }},
	{"misses", func(a *Aggregate) float64 { return float64(a.Misses) }},
	{"miss_rate", func(a *Aggregate) float64 { return a.MissRate }},
	{"admitted", func(a *Aggregate) float64 { return float64(a.Admitted) }},
	{"degraded", func(a *Aggregate) float64 { return float64(a.Degraded) }},
	{"rejected", func(a *Aggregate) float64 { return float64(a.Rejected) }},
	{"completed", func(a *Aggregate) float64 { return float64(a.Completed) }},
	{"good_jobs", func(a *Aggregate) float64 { return float64(a.GoodJobs) }},
	{"offered_rps", func(a *Aggregate) float64 { return a.OfferedRPS }},
	{"achieved_rps", func(a *Aggregate) float64 { return a.AchievedRPS }},
	{"goodput_rps", func(a *Aggregate) float64 { return a.GoodputRPS }},
	{"shed_rate", func(a *Aggregate) float64 { return a.ShedRate }},
	{"util_mean", func(a *Aggregate) float64 { return a.UtilMean }},
	{"util_min", func(a *Aggregate) float64 { return a.UtilMin }},
	{"util_max", func(a *Aggregate) float64 { return a.UtilMax }},
	{"faults", func(a *Aggregate) float64 { return float64(a.Faults) }},
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
