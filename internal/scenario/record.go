package scenario

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/rcsched"
)

// recorder is the passive rcsched.Observer that turns one board's serving
// run into an event stream. A fleet run uses one recorder per board, each
// called only from its own board's goroutine.
type recorder struct {
	events []Event
}

func (r *recorder) JobShed(jr rcsched.JobReport) {
	r.events = append(r.events, Event{
		Kind: EventShed, Job: jr.ID, Slot: -1, AtPs: jr.DonePs, Path: string(jr.Disposition),
	})
}

func (r *recorder) JobDispatched(jobID, slot int, atPs float64, path string) {
	r.events = append(r.events, Event{Kind: EventDispatch, Job: jobID, Slot: slot, AtPs: atPs, Path: path})
}

func (r *recorder) JobFinished(jr rcsched.JobReport) {
	r.events = append(r.events, Event{Kind: EventFinish, Job: jr.ID, Slot: jr.Slot, AtPs: jr.DonePs})
}

// fleetRecorder hands each board its own recorder.
type fleetRecorder struct {
	boards []recorder
}

func (f *fleetRecorder) BoardObserver(b int) rcsched.Observer { return &f.boards[b] }

// RecordServe executes one rcsched.Serve run with recording attached and
// returns it as a scenario. The configuration is stored fully resolved
// (defaults filled in from the run's own report), so later default changes
// cannot silently re-parameterise a pinned run.
func RecordServe(name, desc string, cfg rcsched.Config, jobs []rcsched.Job, match Match) (*Scenario, error) {
	rec := &recorder{}
	cfg.Observer = rec
	rep, err := rcsched.Serve(cfg, jobs)
	if err != nil {
		return nil, err
	}
	sc := &Scenario{
		Format:      Format,
		Version:     Version,
		Name:        name,
		Description: desc,
		Kind:        KindServe,
		Match:       match,
		Serve:       serveConfigOf(cfg, rep),
		Jobs:        jobSpecsOf(jobs),
		Expect: Expect{
			Events:    rec.events,
			Jobs:      jobRecords(rep.Jobs, nil),
			Aggregate: serveAggregate(rep),
		},
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: recorded run does not validate: %w", err)
	}
	return sc, nil
}

// RecordFleet executes one fleet.Run with per-board recording attached and
// returns it as a scenario.
func RecordFleet(name, desc string, cfg fleet.Config, jobs []rcsched.Job, match Match) (*Scenario, error) {
	if cfg.Boards <= 0 {
		return nil, fmt.Errorf("scenario: fleet board count %d must be positive", cfg.Boards)
	}
	rec := &fleetRecorder{boards: make([]recorder, cfg.Boards)}
	cfg.Observe = rec
	rep, err := fleet.Run(cfg, jobs)
	if err != nil {
		return nil, err
	}
	boundPs := cfg.BoundPs
	if boundPs == 0 {
		boundPs = fleet.DefaultBoundPs
	}
	decisions := make([]DecisionRecord, len(rep.Decisions))
	boardOf := make(map[int]int, len(rep.Decisions))
	for i, d := range rep.Decisions {
		decisions[i] = DecisionRecord{Job: d.Job, Board: d.Board, EpochPs: d.EpochPs}
		boardOf[d.Job] = d.Board
	}
	boardEvents := make([][]Event, cfg.Boards)
	var faults uint64
	var served *rcsched.Report // any board that actually ran resolves the config
	for b := range rec.boards {
		boardEvents[b] = rec.boards[b].events
		if boardEvents[b] == nil {
			boardEvents[b] = []Event{} // an idle board pins an explicitly empty stream
		}
		faults += rep.Boards[b].VIM.Faults
		if served == nil && rep.Boards[b].Board != "" {
			served = rep.Boards[b]
		}
	}
	if served == nil {
		return nil, fmt.Errorf("scenario: fleet run served no board")
	}
	sc := &Scenario{
		Format:      Format,
		Version:     Version,
		Name:        name,
		Description: desc,
		Kind:        KindFleet,
		Match:       match,
		Serve:       serveConfigOf(cfg.Board, served),
		Fleet: &FleetConfig{
			Boards:   cfg.Boards,
			Dispatch: rep.Dispatch,
			Seed:     cfg.Seed,
			BoundPs:  boundPs,
		},
		Jobs: jobSpecsOf(jobs),
		Expect: Expect{
			Decisions:   decisions,
			BoardEvents: boardEvents,
			Jobs:        jobRecords(rep.Jobs, boardOf),
			Aggregate:   fleetAggregate(rep, faults),
		},
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: recorded run does not validate: %w", err)
	}
	return sc, nil
}

// serveConfigOf resolves cfg's defaults against the run's own report (the
// report carries the resolved board, policy, slot count and bandwidth).
func serveConfigOf(cfg rcsched.Config, rep *rcsched.Report) ServeConfig {
	shellHz := cfg.ShellHz
	if shellHz == 0 {
		shellHz = rcsched.DefaultShellHz
	}
	admit := cfg.Admit
	if admit == "" {
		admit = rcsched.AdmitOff
	}
	return ServeConfig{
		Board:         rep.Board,
		Slots:         rep.Slots,
		ShellHz:       shellHz,
		Policy:        rep.Policy,
		ConfigBW:      rep.ConfigBW,
		Stage:         cfg.Stage,
		Admit:         admit,
		FramesPerSlot: cfg.FramesPerSlot,
	}
}

func jobSpecsOf(jobs []rcsched.Job) []JobSpec {
	specs := make([]JobSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = JobSpec{
			ID: j.ID, App: j.App, Size: j.Size,
			ArrivalPs: j.ArrivalPs, DeadlinePs: j.DeadlinePs, Seed: j.Seed,
		}
	}
	return specs
}

// jobsOf rebuilds the arrival stream a replay serves; the inverse of
// jobSpecsOf.
func jobsOf(specs []JobSpec) []rcsched.Job {
	jobs := make([]rcsched.Job, len(specs))
	for i, s := range specs {
		jobs[i] = rcsched.Job{
			ID: s.ID, App: s.App, Size: s.Size,
			ArrivalPs: s.ArrivalPs, DeadlinePs: s.DeadlinePs, Seed: s.Seed,
		}
	}
	return jobs
}

// jobRecords pins every job report; boardOf (fleet only) annotates each
// with the board it was routed to.
func jobRecords(reports []rcsched.JobReport, boardOf map[int]int) []JobRecord {
	recs := make([]JobRecord, len(reports))
	for i, j := range reports {
		recs[i] = JobRecord{
			ID:          j.ID,
			App:         j.App,
			Size:        j.Size,
			Slot:        j.Slot,
			Board:       boardOf[j.ID],
			Disposition: string(j.Disposition),
			ArrivalPs:   j.ArrivalPs,
			DeadlinePs:  j.DeadlinePs,
			QueueWaitPs: j.QueueWaitPs,
			ReconfigPs:  j.ReconfigPs,
			ExecPs:      j.ExecPs,
			LatencyPs:   j.LatencyPs,
			LatenessPs:  j.LatenessPs,
			DonePs:      j.DonePs,
			Reconfig:    j.Reconfigured,
			Staged:      j.Staged,
			Missed:      j.Missed,
			Faults:      j.Faults,
		}
	}
	return recs
}

func serveAggregate(rep *rcsched.Report) Aggregate {
	return Aggregate{
		MakespanPs:      rep.MakespanPs,
		TotalReconfigPs: rep.TotalReconfigPs,
		Reconfigs:       rep.Reconfigs,
		StageCommits:    rep.StageCommits,
		StageCancels:    rep.StageCancels,
		MeanWaitPs:      rep.MeanWaitPs,
		MeanLatencyPs:   rep.MeanLatencyPs,
		P99LatencyPs:    rep.P99LatencyPs,
		P99AdmittedPs:   rep.P99AdmittedPs,
		Misses:          rep.Misses,
		MissRate:        rep.MissRate,
		Admitted:        rep.Admitted,
		Degraded:        rep.Degraded,
		Rejected:        rep.Rejected,
		Completed:       rep.Completed,
		GoodJobs:        rep.GoodJobs,
		OfferedRPS:      rep.OfferedRPS,
		AchievedRPS:     rep.AchievedRPS,
		GoodputRPS:      rep.GoodputRPS,
		ShedRate:        rep.ShedRate,
		UtilMean:        rep.UtilMean,
		Faults:          rep.VIM.Faults,
	}
}

func fleetAggregate(rep *fleet.Report, faults uint64) Aggregate {
	return Aggregate{
		MakespanPs:      rep.MakespanPs,
		TotalReconfigPs: rep.TotalReconfigPs,
		Reconfigs:       rep.Reconfigs,
		StageCommits:    rep.StageCommits,
		StageCancels:    rep.StageCancels,
		P99LatencyPs:    rep.P99LatencyPs,
		P99AdmittedPs:   rep.P99AdmittedPs,
		Misses:          rep.Misses,
		MissRate:        rep.MissRate,
		Admitted:        rep.Admitted,
		Degraded:        rep.Degraded,
		Rejected:        rep.Rejected,
		Completed:       rep.Completed,
		GoodJobs:        rep.GoodJobs,
		OfferedRPS:      rep.OfferedRPS,
		AchievedRPS:     rep.AchievedRPS,
		GoodputRPS:      rep.GoodputRPS,
		ShedRate:        rep.ShedRate,
		UtilMean:        rep.UtilMean,
		UtilMin:         rep.UtilMin,
		UtilMax:         rep.UtilMax,
		Faults:          faults,
	}
}
