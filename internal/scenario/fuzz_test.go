package scenario

import (
	"reflect"
	"testing"

	"repro/internal/rcsched"
)

// FuzzScenarioRoundTrip throws arbitrary bytes at the parser and requires
// two properties: hostile input (malformed, truncated, version-skewed,
// mistagged) errors and never panics, and any input the parser does accept
// round-trips losslessly — parse→serialize→parse yields the identical
// scenario, so nothing a file pins can be silently dropped or rewritten.
func FuzzScenarioRoundTrip(f *testing.F) {
	// Seed with a real recorded scenario and targeted corruptions of it.
	jobs, err := rcsched.Trace(4, 4242, 0.15e9)
	if err != nil {
		f.Fatal(err)
	}
	sc, err := RecordServe("fuzz-seed", "", rcsched.Config{Slots: 2, Policy: "affinity"}, jobs, Match{})
	if err != nil {
		f.Fatal(err)
	}
	good, err := Serialize(sc)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(`{"format":"vimsim-scenario","version":99}`))
	f.Add([]byte(`{"format":"vimsim-scenario","version":1,"kind":"serve"}`))
	f.Add([]byte(`{"format":"other","version":1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte("\x00\x01\x02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		first, err := Parse(data) // must never panic
		if err != nil {
			return
		}
		out, err := Serialize(first)
		if err != nil {
			t.Fatalf("accepted scenario does not serialize: %v", err)
		}
		second, err := Parse(out)
		if err != nil {
			t.Fatalf("serialized form of an accepted scenario does not re-parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("round trip is lossy:\n first  %+v\n second %+v", first, second)
		}
	})
}
