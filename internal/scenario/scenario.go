// Package scenario is the record/replay regression harness: it captures a
// serve or fleet run — the full resolved configuration, the arrival stream,
// every dispatch decision and per-job outcome, and the aggregate report —
// into a versioned JSON scenario file, and replays such a file by
// re-executing the run and matching it step by step. Strict matching
// demands bit-identical event streams, job reports and aggregates (Go's
// JSON encoder round-trips float64 exactly, so pinning through JSON loses
// nothing); metrics matching relaxes the comparison to aggregate values
// within a relative tolerance. Divergences come back as human-readable
// first-divergence diffs and render as text, JSON or JUnit for CI.
//
// Recording rides the passive observer hooks in rcsched and fleet
// (rcsched.Config.Observer, fleet.Config.Observe), so a recorded run is
// bit-identical to an unobserved one — any run worth keeping can be
// promoted into the corpus under testdata/scenarios/ exactly as it
// happened. The scenario-file design follows the cli-replay related repo.
package scenario

import (
	"encoding/json"
	"fmt"
)

// Format is the magic tag every scenario file carries.
const Format = "vimsim-scenario"

// Version is the scenario format version this build reads and writes.
// Readers accept any file with version in [1, Version]: fields added by a
// later minor revision are simply absent from older files, and a file
// newer than the build is refused rather than half-parsed.
const Version = 1

// Match modes.
const (
	// Strict demands bit-identical event streams, job reports and
	// aggregates — the default, and what the corpus test enforces.
	Strict = "strict"
	// Metrics compares only the aggregate report, each value within
	// Match.Tolerance relative error — for pinning noisy-environment runs
	// where the shape matters more than the bits.
	Metrics = "metrics"
)

// DefaultTolerance is the metrics-mode relative tolerance when the file
// does not set one.
const DefaultTolerance = 0.01

// Scenario kinds.
const (
	KindServe = "serve" // one rcsched.Serve run
	KindFleet = "fleet" // one fleet.Run (dispatch + per-board serves)
)

// Scenario is one recorded run: everything needed to re-execute it (config
// and jobs) plus everything it produced (the expectations).
type Scenario struct {
	Format      string `json:"format"`
	Version     int    `json:"version"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Kind        string `json:"kind"`
	Match       Match  `json:"match"`

	// Serve is the resolved single-board serving configuration; for
	// KindFleet it is the per-board config and Fleet adds the dispatch
	// layer on top.
	Serve ServeConfig  `json:"serve"`
	Fleet *FleetConfig `json:"fleet,omitempty"`

	// Jobs is the explicit arrival stream — recorded verbatim so replay
	// does not depend on any generator staying stable.
	Jobs []JobSpec `json:"jobs"`

	Expect Expect `json:"expect"`
}

// Match selects how a replay is compared against the expectations.
type Match struct {
	// Mode is Strict or Metrics ("" = Strict).
	Mode string `json:"mode"`
	// Tolerance is the metrics-mode relative error bound per aggregate
	// value (0 = DefaultTolerance); strict mode ignores it.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// ServeConfig is a fully resolved rcsched.Config: defaults are filled in at
// record time so a replay cannot drift when a default changes.
type ServeConfig struct {
	Board         string  `json:"board"`
	Slots         int     `json:"slots"`
	ShellHz       int64   `json:"shell_hz"`
	Policy        string  `json:"policy"`
	ConfigBW      float64 `json:"config_bw"`
	Stage         bool    `json:"stage,omitempty"`
	Admit         string  `json:"admit,omitempty"`
	FramesPerSlot int     `json:"frames_per_slot,omitempty"`
}

// FleetConfig is the resolved dispatch layer of a KindFleet scenario.
type FleetConfig struct {
	Boards   int     `json:"boards"`
	Dispatch string  `json:"dispatch"`
	Seed     int64   `json:"seed"`
	BoundPs  float64 `json:"bound_ps"`
}

// JobSpec is one job of the recorded arrival stream.
type JobSpec struct {
	ID         int     `json:"id"`
	App        string  `json:"app"`
	Size       int     `json:"size"`
	ArrivalPs  float64 `json:"arrival_ps"`
	DeadlinePs float64 `json:"deadline_ps,omitempty"`
	Seed       int64   `json:"seed"`
}

// Event kinds, in the order the serving loop emits them.
const (
	EventShed     = "shed"     // admission rejected or degraded the job
	EventDispatch = "dispatch" // the policy paired the job with a slot
	EventFinish   = "finish"   // the job's output verified and it detached
)

// Event is one step of a board's recorded decision stream.
type Event struct {
	Kind string `json:"kind"`
	Job  int    `json:"job"`
	// Slot is the shell slot (dispatch/finish); shed events carry -1.
	Slot int `json:"slot"`
	// AtPs is the decision instant: dispatch time, completion time, or the
	// shed instant.
	AtPs float64 `json:"at_ps"`
	// Path annotates dispatches (resident/staged/stream) and sheds
	// (rejected/degraded); finish events leave it empty.
	Path string `json:"path,omitempty"`
}

// DecisionRecord is one fleet routing decision.
type DecisionRecord struct {
	Job     int     `json:"job"`
	Board   int     `json:"board"`
	EpochPs float64 `json:"epoch_ps"`
}

// JobRecord mirrors rcsched.JobReport, plus the board the job was routed
// to in a fleet scenario (always 0 for KindServe).
type JobRecord struct {
	ID          int     `json:"id"`
	App         string  `json:"app"`
	Size        int     `json:"size"`
	Slot        int     `json:"slot"`
	Board       int     `json:"board,omitempty"`
	Disposition string  `json:"disposition"`
	ArrivalPs   float64 `json:"arrival_ps"`
	DeadlinePs  float64 `json:"deadline_ps,omitempty"`
	QueueWaitPs float64 `json:"queue_wait_ps"`
	ReconfigPs  float64 `json:"reconfig_ps"`
	ExecPs      float64 `json:"exec_ps"`
	LatencyPs   float64 `json:"latency_ps"`
	LatenessPs  float64 `json:"lateness_ps"`
	DonePs      float64 `json:"done_ps"`
	Reconfig    bool    `json:"reconfigured,omitempty"`
	Staged      bool    `json:"staged,omitempty"`
	Missed      bool    `json:"missed,omitempty"`
	Faults      uint64  `json:"faults"`
}

// Aggregate is the pinned aggregate report. Serve and fleet scenarios
// share the struct; fields the kind does not measure stay zero (e.g.
// UtilMin/UtilMax for serve, MeanWaitPs for fleet).
type Aggregate struct {
	MakespanPs      float64 `json:"makespan_ps"`
	TotalReconfigPs float64 `json:"total_reconfig_ps"`
	Reconfigs       int     `json:"reconfigs"`
	StageCommits    int     `json:"stage_commits"`
	StageCancels    int     `json:"stage_cancels"`
	MeanWaitPs      float64 `json:"mean_wait_ps"`
	MeanLatencyPs   float64 `json:"mean_latency_ps"`
	P99LatencyPs    float64 `json:"p99_latency_ps"`
	P99AdmittedPs   float64 `json:"p99_admitted_ps"`
	Misses          int     `json:"misses"`
	MissRate        float64 `json:"miss_rate"`
	Admitted        int     `json:"admitted"`
	Degraded        int     `json:"degraded"`
	Rejected        int     `json:"rejected"`
	Completed       int     `json:"completed"`
	GoodJobs        int     `json:"good_jobs"`
	OfferedRPS      float64 `json:"offered_rps"`
	AchievedRPS     float64 `json:"achieved_rps"`
	GoodputRPS      float64 `json:"goodput_rps"`
	ShedRate        float64 `json:"shed_rate"`
	UtilMean        float64 `json:"util_mean"`
	UtilMin         float64 `json:"util_min"`
	UtilMax         float64 `json:"util_max"`
	Faults          uint64  `json:"faults"`
}

// Expect is everything the recorded run produced, in the order replay
// compares it: the decision streams first (where a divergence is earliest
// and most tellable), then the per-job reports, then the aggregates.
type Expect struct {
	// Events is the serving loop's decision stream (KindServe).
	Events []Event `json:"events,omitempty"`
	// Decisions and BoardEvents replace Events for KindFleet: the routing
	// trace, then each board's own decision stream (index = board; an
	// unused board records an empty stream).
	Decisions   []DecisionRecord `json:"decisions,omitempty"`
	BoardEvents [][]Event        `json:"board_events,omitempty"`

	Jobs      []JobRecord `json:"jobs"`
	Aggregate Aggregate   `json:"aggregate"`
}

// Parse decodes and validates a scenario file. Malformed or truncated
// JSON, a missing or wrong format tag, a version this build does not
// support, and structurally invalid scenarios all return errors; Parse
// never panics on hostile input.
func Parse(data []byte) (*Scenario, error) {
	// Probe the header first so version skew reports as version skew even
	// if a newer revision changed some field's shape.
	var probe struct {
		Format  string `json:"format"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("scenario: malformed file: %w", err)
	}
	if probe.Format != Format {
		return nil, fmt.Errorf("scenario: not a scenario file (format %q, want %q)", probe.Format, Format)
	}
	if probe.Version < 1 || probe.Version > Version {
		return nil, fmt.Errorf("scenario: file version %d unsupported (this build reads 1..%d)",
			probe.Version, Version)
	}
	sc := &Scenario{}
	if err := json.Unmarshal(data, sc); err != nil {
		return nil, fmt.Errorf("scenario: malformed file: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// Serialize renders the scenario as indented JSON with a trailing newline,
// byte-stable for committing under testdata/scenarios/.
func Serialize(sc *Scenario) ([]byte, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// effectiveMode resolves "" to Strict.
func (m Match) effectiveMode() string {
	if m.Mode == "" {
		return Strict
	}
	return m.Mode
}

// effectiveTol resolves 0 to DefaultTolerance.
func (m Match) effectiveTol() float64 {
	if m.Tolerance == 0 {
		return DefaultTolerance
	}
	return m.Tolerance
}

// Validate checks the scenario's structural invariants — everything replay
// assumes beyond what the serving layers re-check themselves.
func (sc *Scenario) Validate() error {
	if sc.Format != Format {
		return fmt.Errorf("scenario: format is %q, want %q", sc.Format, Format)
	}
	if sc.Version < 1 || sc.Version > Version {
		return fmt.Errorf("scenario: version %d unsupported (this build reads 1..%d)", sc.Version, Version)
	}
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	switch sc.Kind {
	case KindServe:
		if sc.Fleet != nil {
			return fmt.Errorf("scenario %s: a serve scenario must not carry a fleet block", sc.Name)
		}
		if len(sc.Expect.Decisions) > 0 || len(sc.Expect.BoardEvents) > 0 {
			return fmt.Errorf("scenario %s: a serve scenario must not carry fleet expectations", sc.Name)
		}
	case KindFleet:
		if sc.Fleet == nil {
			return fmt.Errorf("scenario %s: a fleet scenario needs a fleet block", sc.Name)
		}
		if sc.Fleet.Boards <= 0 {
			return fmt.Errorf("scenario %s: fleet board count %d must be positive", sc.Name, sc.Fleet.Boards)
		}
		if len(sc.Expect.Events) > 0 {
			return fmt.Errorf("scenario %s: a fleet scenario pins per-board event streams, not a flat one", sc.Name)
		}
		if n := len(sc.Expect.BoardEvents); n != sc.Fleet.Boards {
			return fmt.Errorf("scenario %s: %d board event streams for %d boards", sc.Name, n, sc.Fleet.Boards)
		}
	default:
		return fmt.Errorf("scenario %s: unknown kind %q", sc.Name, sc.Kind)
	}
	switch sc.Match.Mode {
	case "", Strict, Metrics:
	default:
		return fmt.Errorf("scenario %s: unknown match mode %q", sc.Name, sc.Match.Mode)
	}
	if sc.Match.Tolerance < 0 {
		return fmt.Errorf("scenario %s: negative match tolerance %g", sc.Name, sc.Match.Tolerance)
	}
	if sc.Serve.Slots <= 0 {
		return fmt.Errorf("scenario %s: serve config needs a positive slot count, got %d", sc.Name, sc.Serve.Slots)
	}
	if sc.Serve.Board == "" || sc.Serve.Policy == "" || sc.Serve.ShellHz <= 0 || sc.Serve.ConfigBW <= 0 {
		return fmt.Errorf("scenario %s: serve config is not fully resolved (board/policy/shell_hz/config_bw)", sc.Name)
	}
	if len(sc.Jobs) == 0 {
		return fmt.Errorf("scenario %s: empty job stream", sc.Name)
	}
	ids := make(map[int]bool, len(sc.Jobs))
	for i := range sc.Jobs {
		j := &sc.Jobs[i]
		if j.App == "" || j.Size <= 0 {
			return fmt.Errorf("scenario %s: job %d is not a full job spec (app/size)", sc.Name, j.ID)
		}
		if j.ArrivalPs < 0 || j.DeadlinePs < 0 {
			return fmt.Errorf("scenario %s: job %d has a negative timestamp", sc.Name, j.ID)
		}
		if ids[j.ID] {
			return fmt.Errorf("scenario %s: duplicate job id %d", sc.Name, j.ID)
		}
		ids[j.ID] = true
	}
	// A pinned report for a job outside the stream is structurally wrong;
	// a stream job without a pinned report is left to the replay comparison,
	// which diffs it as a missing record instead of refusing the file.
	for i := range sc.Expect.Jobs {
		if !ids[sc.Expect.Jobs[i].ID] {
			return fmt.Errorf("scenario %s: job record %d pins a job id not in the stream", sc.Name, sc.Expect.Jobs[i].ID)
		}
	}
	return nil
}
