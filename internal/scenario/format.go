package scenario

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"strings"
)

// Text renders one result the way a human wants to read it: one PASS/FAIL
// line, and on failure the first-divergence diff underneath.
func (r *Result) Text() string {
	if r.Pass() {
		return fmt.Sprintf("PASS %s (%s, %s, %d steps)", r.Name, r.Kind, r.Mode, r.Steps)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "FAIL %s (%s, %s)", r.Name, r.Kind, r.Mode)
	if r.Err != "" {
		fmt.Fprintf(&b, "\n  replay error: %s", r.Err)
	}
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "\n  %s", strings.ReplaceAll(d.String(), "\n", "\n  "))
		if r.Steps > 0 {
			fmt.Fprintf(&b, "\n  (%d steps matched before this point)", r.Steps)
		}
	}
	return b.String()
}

// FormatText renders a whole corpus run as PASS/FAIL lines plus a summary.
func FormatText(results []*Result) string {
	var b strings.Builder
	pass := 0
	for _, r := range results {
		b.WriteString(r.Text())
		b.WriteByte('\n')
		if r.Pass() {
			pass++
		}
	}
	fmt.Fprintf(&b, "%d/%d scenarios reproduced\n", pass, len(results))
	return b.String()
}

// FormatJSON renders a corpus run as a single machine-readable document.
func FormatJSON(results []*Result) ([]byte, error) {
	pass := true
	for _, r := range results {
		if !r.Pass() {
			pass = false
			break
		}
	}
	out := struct {
		Pass      bool      `json:"pass"`
		Scenarios []*Result `json:"scenarios"`
	}{pass, results}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// JUnit XML shapes, matching what CI dashboards ingest.
type junitSuite struct {
	XMLName  xml.Name    `xml:"testsuite"`
	Name     string      `xml:"name,attr"`
	Tests    int         `xml:"tests,attr"`
	Failures int         `xml:"failures,attr"`
	Errors   int         `xml:"errors,attr"`
	Cases    []junitCase `xml:"testcase"`
}

type junitCase struct {
	Name      string    `xml:"name,attr"`
	Classname string    `xml:"classname,attr"`
	Failure   *junitMsg `xml:"failure,omitempty"`
	Error     *junitMsg `xml:"error,omitempty"`
}

type junitMsg struct {
	Message string `xml:"message,attr"`
	Body    string `xml:",chardata"`
}

// FormatJUnit renders a corpus run as one JUnit test suite: a testcase per
// scenario, comparison mismatches as failures and replay execution errors
// as errors, each carrying the first-divergence diff as its body.
func FormatJUnit(suiteName string, results []*Result) ([]byte, error) {
	suite := junitSuite{Name: suiteName, Tests: len(results)}
	for _, r := range results {
		c := junitCase{Name: r.Name, Classname: "scenario." + r.Kind}
		switch {
		case r.Err != "":
			suite.Errors++
			c.Error = &junitMsg{Message: "replay error", Body: r.Err}
		case len(r.Divergences) > 0:
			suite.Failures++
			d := r.Divergences[0]
			msg := "diverged at " + d.Where
			if d.Field != "" {
				msg += "." + d.Field
			}
			c.Failure = &junitMsg{Message: msg, Body: r.Text()}
		}
		suite.Cases = append(suite.Cases, c)
	}
	data, err := xml.MarshalIndent(&suite, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), append(data, '\n')...), nil
}
