// Package traffic generates open-loop job streams for the serving layer:
// arrival processes that keep offering load at a target rate whether or not
// the board keeps up — the regime in which queues grow, deadlines slip and
// admission control earns its keep. Every generator is deterministic in
// (n, seed, spec): the same triple replays the same stream bit for bit,
// so stress cells pin under both simulation schedulers like every other
// experiment in the repository.
//
// The package also owns the overload detector and the RPS-ramp sweep that
// locates a serving configuration's saturation knee — the offered rate past
// which the failure rate over a sliding window of consecutive jobs crosses
// the overload threshold (the invitro-style CheckOverload criterion).
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/rcsched"
)

// Arrival-process names for Spec.Process.
const (
	// Uniform draws arrival gaps uniformly in (0, 2/RPS) — the closed-form
	// jitter the serving layer's own Trace uses, averaged to the target rate.
	Uniform = "uniform"
	// Poisson draws exponential gaps at rate RPS: the memoryless open-loop
	// process serving benchmarks model user populations with.
	Poisson = "poisson"
	// Bursty alternates Poisson phases: bursts at BurstFactor x RPS for
	// DutyCycle of each PeriodPs, quiet at whatever lower rate keeps the
	// long-run average at RPS.
	Bursty = "bursty"
	// Diurnal cycles through an explicit Phases schedule of (RPS, duration)
	// pairs — a whole day's load shape compressed onto the serving clock.
	Diurnal = "diurnal"
)

// Defaults for the optional Spec knobs.
const (
	// DefaultBurstFactor is the burst-phase rate multiplier.
	DefaultBurstFactor = 4.0
	// DefaultDutyCycle is the fraction of each period spent bursting. At the
	// default factor the off phase is exactly silent (4 x 0.25 = 1), so the
	// default bursty process is pure on/off.
	DefaultDutyCycle = 0.25
)

// Phase is one segment of a piecewise-constant arrival schedule.
type Phase struct {
	// RPS is the phase's Poisson arrival rate in jobs per second (0 = silent).
	RPS float64
	// DurationPs is the phase's length on the serving clock.
	DurationPs float64
}

// Spec parameterises one arrival process.
type Spec struct {
	// Process is Uniform, Poisson (default), Bursty or Diurnal.
	Process string
	// RPS is the target offered rate in jobs per second. It must be positive
	// for every process except Diurnal, whose rate lives in Phases.
	RPS float64
	// BurstFactor multiplies RPS during Bursty's burst phase (default
	// DefaultBurstFactor; must be >= 1 and <= 1/DutyCycle so the quiet
	// phase's balancing rate stays non-negative).
	BurstFactor float64
	// DutyCycle is the fraction of each Bursty period spent bursting
	// (default DefaultDutyCycle, in (0, 1)).
	DutyCycle float64
	// PeriodPs is Bursty's on/off cycle length (default: the span of 20
	// jobs at RPS, so a stream of a few dozen jobs sees several bursts).
	PeriodPs float64
	// Phases is Diurnal's repeating schedule; at least one phase must have
	// a positive rate, and every duration must be positive.
	Phases []Phase
}

// schedule normalises the spec into a repeating piecewise-constant rate
// schedule, validating as it goes.
func (s Spec) schedule() ([]Phase, error) {
	switch s.Process {
	case Bursty:
		factor := s.BurstFactor
		if factor == 0 {
			factor = DefaultBurstFactor
		}
		duty := s.DutyCycle
		if duty == 0 {
			duty = DefaultDutyCycle
		}
		if duty <= 0 || duty >= 1 {
			return nil, fmt.Errorf("traffic: bursty duty cycle %g outside (0, 1)", duty)
		}
		if factor < 1 || factor*duty > 1 {
			return nil, fmt.Errorf("traffic: burst factor %g outside [1, 1/duty=%g]", factor, 1/duty)
		}
		period := s.PeriodPs
		if period == 0 {
			period = 20 / s.RPS * 1e12
		}
		if period <= 0 {
			return nil, fmt.Errorf("traffic: bursty period %g ps not positive", period)
		}
		// The quiet phase's rate balances the burst so the long-run average
		// stays at RPS: duty*factor*RPS + (1-duty)*quiet = RPS.
		quiet := s.RPS * (1 - duty*factor) / (1 - duty)
		return []Phase{
			{RPS: factor * s.RPS, DurationPs: duty * period},
			{RPS: quiet, DurationPs: (1 - duty) * period},
		}, nil
	case Diurnal:
		if len(s.Phases) == 0 {
			return nil, fmt.Errorf("traffic: diurnal process needs a phase schedule")
		}
		live := false
		for i, ph := range s.Phases {
			if ph.DurationPs <= 0 {
				return nil, fmt.Errorf("traffic: diurnal phase %d duration %g ps not positive", i, ph.DurationPs)
			}
			if ph.RPS < 0 {
				return nil, fmt.Errorf("traffic: diurnal phase %d rate %g negative", i, ph.RPS)
			}
			if ph.RPS > 0 {
				live = true
			}
		}
		if !live {
			return nil, fmt.Errorf("traffic: diurnal schedule has no phase with a positive rate")
		}
		return append([]Phase(nil), s.Phases...), nil
	}
	return nil, nil // single-rate process; no schedule
}

// validate checks the spec and resolves its process name.
func (s Spec) validate() (string, error) {
	proc := s.Process
	if proc == "" {
		proc = Poisson
	}
	switch proc {
	case Uniform, Poisson, Bursty, Diurnal:
	default:
		return "", fmt.Errorf("traffic: unknown arrival process %q (want uniform, poisson, bursty or diurnal)", s.Process)
	}
	if proc != Diurnal && s.RPS <= 0 {
		return "", fmt.Errorf("traffic: %s process needs a positive rate, got %g jobs/s", proc, s.RPS)
	}
	return proc, nil
}

// arrivals returns a generator of successive arrival instants (in
// picoseconds) for the spec, driven by rng. Piecewise-constant processes
// consume one unit-rate exponential sample across phase boundaries — the
// exact inversion for an inhomogeneous Poisson process, not a per-phase
// approximation.
func (s Spec) arrivals(proc string, rng *rand.Rand) func() float64 {
	switch proc {
	case Uniform:
		t := 0.0
		return func() float64 {
			t += rng.Float64() * 2 / s.RPS * 1e12
			return t
		}
	case Poisson:
		t := 0.0
		return func() float64 {
			t += rng.ExpFloat64() / s.RPS * 1e12
			return t
		}
	}
	// Bursty and Diurnal: walk the repeating schedule.
	phases, _ := s.schedule()
	t := 0.0
	pi, left := 0, phases[0].DurationPs
	return func() float64 {
		e := rng.ExpFloat64() // unit-rate sample, consumed across phases
		for {
			ratePerPs := phases[pi].RPS / 1e12
			if ratePerPs > 0 {
				if need := e / ratePerPs; need <= left {
					t += need
					left -= need
					return t
				}
				e -= left * ratePerPs
			}
			t += left
			pi = (pi + 1) % len(phases)
			left = phases[pi].DurationPs
		}
	}
}

// Stream generates a deterministic n-job open-loop stream under spec:
// arrivals from the requested process, applications and input sizes from
// the serving layer's bundled mix (IDEA / ADPCM / vecadd over 1–4 KB),
// per-job data seeds, and per-app deadlines at the default budget factor
// (re-derive with rcsched.SetBudgets). The same (n, seed, spec) triple
// always yields the same stream.
func Stream(n int, seed int64, spec Spec) ([]rcsched.Job, error) {
	if n <= 0 {
		return nil, fmt.Errorf("traffic: stream needs a positive job count, got %d", n)
	}
	proc, err := spec.validate()
	if err != nil {
		return nil, err
	}
	if _, err := spec.schedule(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	next := spec.arrivals(proc, rng)
	apps := []string{"idea", "adpcm", "vecadd"}
	sizes := []int{1024, 2048, 4096}
	jobs := make([]rcsched.Job, n)
	for i := range jobs {
		jobs[i] = rcsched.Job{
			ID:        i,
			ArrivalPs: next(),
			App:       apps[rng.Intn(len(apps))],
			Size:      sizes[rng.Intn(len(sizes))] &^ 7,
			Seed:      rng.Int63(),
		}
	}
	rcsched.SetBudgets(jobs, rcsched.DefaultBudgetFactor)
	return jobs, nil
}
