package traffic

import (
	"math"
	"reflect"
	"testing"
)

// FuzzArrivals fuzzes the arrival generators over (n, seed, rps, process)
// and pins the properties every stream must hold regardless of input:
// strictly monotone arrivals, bit-identical replay for a fixed triple, and
// — for the memoryless process on long streams — an empirical mean
// interarrival within a statistical tolerance of 1/rps.
func FuzzArrivals(f *testing.F) {
	f.Add(uint16(32), int64(7), 800.0, uint8(0))
	f.Add(uint16(64), int64(42), 1200.5, uint8(1))
	f.Add(uint16(128), int64(-3), 250.0, uint8(2))
	f.Add(uint16(256), int64(1), 5000.0, uint8(1))
	f.Add(uint16(1024), int64(99), 1000.0, uint8(1))
	f.Fuzz(func(t *testing.T, n uint16, seed int64, rps float64, proc uint8) {
		if n == 0 || rps <= 0 || rps > 1e7 || math.IsNaN(rps) || math.IsInf(rps, 0) {
			t.Skip("out of the generator's contract; Stream rejects these explicitly")
		}
		process := []string{Uniform, Poisson, Bursty}[int(proc)%3]
		spec := Spec{Process: process, RPS: rps}
		a, err := Stream(int(n), seed, spec)
		if err != nil {
			t.Fatalf("valid spec rejected: %v", err)
		}
		b, err := Stream(int(n), seed, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("identical (n, seed, rps) triple produced different streams")
		}
		last := 0.0
		for _, j := range a {
			if j.ArrivalPs <= last || math.IsNaN(j.ArrivalPs) || math.IsInf(j.ArrivalPs, 0) {
				t.Fatalf("job %d arrival %v ps not strictly past its predecessor's %v ps",
					j.ID, j.ArrivalPs, last)
			}
			last = j.ArrivalPs
		}
		// Mean interarrival: the memoryless process on a long stream must
		// average to 1/rps. The tolerance is a loose large-deviation bound
		// (relative error beyond ~8/sqrt(n) is vanishingly unlikely for
		// exponential sums), so the check never flakes on an honest
		// generator but catches any systematic rate error.
		if process == Poisson && n >= 64 {
			meanPs := a[len(a)-1].ArrivalPs / float64(n)
			wantPs := 1e12 / rps
			tol := 8 / math.Sqrt(float64(n))
			if meanPs < wantPs*(1-tol) || meanPs > wantPs*(1+tol) {
				t.Fatalf("mean interarrival %.0f ps strays from 1/rps = %.0f ps by more than %.0f%%",
					meanPs, wantPs, tol*100)
			}
		}
	})
}
