package traffic

import (
	"fmt"

	"repro/internal/rcsched"
)

// Overload-detector defaults: a job stream is overloaded when more than
// DefaultThreshold of any DefaultWindow consecutive jobs (in arrival order)
// fail — miss their deadline or are shed at admission. The sliding window
// makes the detector sensitive to sustained failure runs rather than a
// stream-wide average that a long healthy warm-up would dilute.
const (
	DefaultWindow    = 12
	DefaultThreshold = 0.3
)

// failed reports whether one served job counts against the overload
// detector: it was shed outright, or it completed past its deadline.
func failed(j *rcsched.JobReport) bool {
	return j.Disposition == rcsched.Rejected || j.Missed
}

// Overloaded applies the sliding-window failure-rate criterion to a serving
// report: true when any window of `window` consecutive jobs (arrival order,
// which is the report's job order) has a failure fraction strictly above
// threshold. Zero window and threshold select the defaults.
func Overloaded(rep *rcsched.Report, window int, threshold float64) bool {
	return OverloadedJobs(rep.Jobs, window, threshold)
}

// OverloadedJobs applies the sliding-window criterion to an explicit job
// list, which must be in arrival order. Callers aggregating several serving
// runs — the fleet dispatcher merging per-board reports — must merge their
// job lists back into one arrival-ordered sequence before calling: sliding
// a window over per-board concatenations would miss failure runs that span
// boards and manufacture runs across the concatenation seams.
func OverloadedJobs(jobs []rcsched.JobReport, window int, threshold float64) bool {
	if window <= 0 {
		window = DefaultWindow
	}
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	fails := 0
	for i := range jobs {
		if failed(&jobs[i]) {
			fails++
		}
		if i >= window && failed(&jobs[i-window]) {
			fails--
		}
		if i >= window-1 && float64(fails)/float64(window) > threshold {
			return true
		}
	}
	return false
}

// RampSpec parameterises one saturation sweep: a linear RPS ramp served
// step by step until the overload detector fires.
type RampSpec struct {
	// StartRPS and StepRPS define the linear ramp (both must be positive).
	StartRPS float64
	StepRPS  float64
	// Steps bounds the ramp length (must be positive).
	Steps int
	// Jobs is the stream length served at each step (must be positive).
	Jobs int
	// Seed drives every step's stream (the step index perturbs it, so
	// consecutive steps are independent draws of the same process).
	Seed int64
	// Window and Threshold parameterise the overload detector
	// (0 = the package defaults).
	Window    int
	Threshold float64
}

// RampPoint is one measured step of a saturation sweep.
type RampPoint struct {
	RPS          float64 // target offered rate of this step
	OfferedRPS   float64 // measured offered rate of the generated stream
	AchievedRPS  float64
	GoodputRPS   float64
	ShedRate     float64
	MissRate     float64
	P99LatencyPs float64
	Overloaded   bool
}

// Ramp is the result of a saturation sweep.
type Ramp struct {
	Points []RampPoint
	// KneeRPS is the highest offered rate the configuration served without
	// tripping the overload detector (0 when even the first step overloads).
	KneeRPS float64
	// SaturationRPS is the first offered rate that tripped the detector
	// (0 when the ramp ended with the configuration still keeping up).
	SaturationRPS float64
}

// FindKnee sweeps offered load up the ramp under cfg, serving one stream of
// spec's arrival process per step with the step's rate substituted in, and
// stops at the first step the overload detector flags. The returned ramp
// holds every measured point plus the detected knee. Diurnal specs are
// rejected: their rate lives in the phase schedule, so a ramp has nothing
// to sweep.
func FindKnee(cfg rcsched.Config, spec Spec, ramp RampSpec) (*Ramp, error) {
	if spec.Process == Diurnal {
		return nil, fmt.Errorf("traffic: a diurnal schedule has no single rate to ramp")
	}
	if ramp.StartRPS <= 0 || ramp.StepRPS <= 0 {
		return nil, fmt.Errorf("traffic: ramp needs positive start and step rates, got %g + k x %g",
			ramp.StartRPS, ramp.StepRPS)
	}
	if ramp.Steps <= 0 || ramp.Jobs <= 0 {
		return nil, fmt.Errorf("traffic: ramp needs positive step and job counts, got %d steps x %d jobs",
			ramp.Steps, ramp.Jobs)
	}
	out := &Ramp{}
	for step := 0; step < ramp.Steps; step++ {
		s := spec
		s.RPS = ramp.StartRPS + float64(step)*ramp.StepRPS
		jobs, err := Stream(ramp.Jobs, ramp.Seed+int64(step), s)
		if err != nil {
			return nil, err
		}
		rep, err := rcsched.Serve(cfg, jobs)
		if err != nil {
			return nil, fmt.Errorf("traffic: ramp step %d (%g jobs/s): %w", step, s.RPS, err)
		}
		over := Overloaded(rep, ramp.Window, ramp.Threshold)
		out.Points = append(out.Points, RampPoint{
			RPS:          s.RPS,
			OfferedRPS:   rep.OfferedRPS,
			AchievedRPS:  rep.AchievedRPS,
			GoodputRPS:   rep.GoodputRPS,
			ShedRate:     rep.ShedRate,
			MissRate:     rep.MissRate,
			P99LatencyPs: rep.P99LatencyPs,
			Overloaded:   over,
		})
		if over {
			out.SaturationRPS = s.RPS
			break
		}
		out.KneeRPS = s.RPS
	}
	return out, nil
}
