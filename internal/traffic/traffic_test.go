package traffic

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/rcsched"
)

func mustStream(t *testing.T, n int, seed int64, spec Spec) []rcsched.Job {
	t.Helper()
	jobs, err := Stream(n, seed, spec)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestStreamDeterminism pins the open-loop generator's replay contract for
// every arrival process: the same (n, seed, spec) triple yields the same
// stream bit for bit, and a different seed diverges.
func TestStreamDeterminism(t *testing.T) {
	specs := map[string]Spec{
		"uniform": {Process: Uniform, RPS: 800},
		"poisson": {Process: Poisson, RPS: 800},
		"bursty":  {Process: Bursty, RPS: 800},
		"diurnal": {Process: Diurnal, Phases: []Phase{
			{RPS: 200, DurationPs: 20e9}, {RPS: 2000, DurationPs: 10e9},
		}},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			a := mustStream(t, 32, 7, spec)
			b := mustStream(t, 32, 7, spec)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("identical parameters produced different streams")
			}
			c := mustStream(t, 32, 8, spec)
			if reflect.DeepEqual(a, c) {
				t.Fatal("different seeds produced identical streams")
			}
			last := 0.0
			for _, j := range a {
				if j.ArrivalPs <= last {
					t.Fatalf("job %d arrival %.3f ms not past its predecessor's %.3f ms",
						j.ID, j.ArrivalPs/1e9, last/1e9)
				}
				last = j.ArrivalPs
				if j.Size%8 != 0 {
					t.Fatalf("job %d size %d is not a whole IDEA block count", j.ID, j.Size)
				}
				if j.DeadlinePs <= j.ArrivalPs {
					t.Fatalf("job %d deadline not past its arrival", j.ID)
				}
			}
		})
	}
}

// TestStreamMeanRate checks each averaged process against its target: over
// a long stream the empirical rate must land within a loose statistical
// tolerance of RPS (diurnal against its schedule's own time average).
func TestStreamMeanRate(t *testing.T) {
	const n, rps = 4096, 1000.0
	for name, spec := range map[string]Spec{
		"uniform": {Process: Uniform, RPS: rps},
		"poisson": {Process: Poisson, RPS: rps},
		"bursty":  {Process: Bursty, RPS: rps},
	} {
		jobs := mustStream(t, n, 99, spec)
		got := float64(n) / (jobs[n-1].ArrivalPs / 1e12)
		if got < 0.85*rps || got > 1.15*rps {
			t.Errorf("%s: empirical rate %.1f jobs/s, want ~%.0f", name, got, rps)
		}
	}
	// Diurnal: equal halves at 200 and 1800 jobs/s average to 1000.
	jobs := mustStream(t, n, 99, Spec{Process: Diurnal, Phases: []Phase{
		{RPS: 200, DurationPs: 50e9}, {RPS: 1800, DurationPs: 50e9},
	}})
	got := float64(n) / (jobs[n-1].ArrivalPs / 1e12)
	if got < 850 || got > 1150 {
		t.Errorf("diurnal: empirical rate %.1f jobs/s, want ~1000", got)
	}
}

// TestBurstyConcentratesArrivals pins the point of the bursty process: at
// the default duty cycle the quiet phase is exactly silent, so every
// arrival must land inside a burst window.
func TestBurstyConcentratesArrivals(t *testing.T) {
	spec := Spec{Process: Bursty, RPS: 500, PeriodPs: 40e9}
	jobs := mustStream(t, 256, 3, spec)
	for _, j := range jobs {
		if phase := math.Mod(j.ArrivalPs, 40e9); phase > DefaultDutyCycle*40e9+1e-3 {
			t.Fatalf("job %d arrives %.3f ms into the period — inside the silent phase", j.ID, phase/1e9)
		}
	}
}

// TestStreamRejectsBadSpecs sweeps the validation surface: every degenerate
// spec must be an error, not a hung generator or an absurd stream.
func TestStreamRejectsBadSpecs(t *testing.T) {
	for name, spec := range map[string]Spec{
		"unknown process":   {Process: "adversarial", RPS: 100},
		"zero rate":         {Process: Poisson},
		"negative rate":     {Process: Poisson, RPS: -5},
		"uniform zero rate": {Process: Uniform},
		"duty cycle 1":      {Process: Bursty, RPS: 100, DutyCycle: 1},
		"factor below 1":    {Process: Bursty, RPS: 100, BurstFactor: 0.5},
		"factor too high":   {Process: Bursty, RPS: 100, BurstFactor: 10, DutyCycle: 0.5},
		"negative period":   {Process: Bursty, RPS: 100, PeriodPs: -1},
		"diurnal no phases": {Process: Diurnal},
		"diurnal all idle":  {Process: Diurnal, Phases: []Phase{{RPS: 0, DurationPs: 1e9}}},
		"diurnal bad span":  {Process: Diurnal, Phases: []Phase{{RPS: 100, DurationPs: 0}}},
	} {
		if _, err := Stream(8, 1, spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Stream(0, 1, Spec{RPS: 100}); err == nil {
		t.Error("zero-job stream accepted")
	}
	if jobs, err := Stream(4, 1, Spec{RPS: 100}); err != nil || len(jobs) != 4 {
		t.Errorf("empty process name should default to poisson: %v, %d jobs", err, len(jobs))
	}
}

// TestOverloadedWindow exercises the sliding-window failure-rate criterion
// on synthetic reports: a sustained failure run trips it, the same failures
// diluted across the stream do not.
func TestOverloadedWindow(t *testing.T) {
	mk := func(n int, fail func(i int) bool) *rcsched.Report {
		rep := &rcsched.Report{Jobs: make([]rcsched.JobReport, n)}
		for i := range rep.Jobs {
			rep.Jobs[i] = rcsched.JobReport{ID: i, Disposition: rcsched.Admitted, Missed: fail(i)}
		}
		return rep
	}
	if Overloaded(mk(48, func(i int) bool { return false }), 12, 0.3) {
		t.Error("clean stream flagged overloaded")
	}
	// 5 of any 12 consecutive jobs > 0.3: a solid run of 5 misses trips it.
	if !Overloaded(mk(48, func(i int) bool { return i >= 20 && i < 25 }), 12, 0.3) {
		t.Error("sustained failure run not flagged")
	}
	// The same 5 failures spread evenly (every 10th job) never exceed 2 per
	// window of 12 — not overloaded.
	if Overloaded(mk(48, func(i int) bool { return i%10 == 0 }), 12, 0.3) {
		t.Error("diluted failures flagged overloaded")
	}
	// Rejected jobs count as failures too.
	rej := mk(24, func(i int) bool { return false })
	for i := 6; i < 12; i++ {
		rej.Jobs[i].Disposition = rcsched.Rejected
	}
	if !Overloaded(rej, 12, 0.3) {
		t.Error("rejection run not flagged")
	}
	// A stream shorter than the window can still trip the detector once
	// window-1 jobs are in (the guard is i >= window-1).
	if Overloaded(mk(6, func(i int) bool { return true }), 12, 0.3) {
		t.Error("stream shorter than the window flagged")
	}
}

// TestFindKneeLocatesSaturation runs the ramp sweep on the default serving
// configuration and checks the detected knee against the board's known
// capacity (~1k jobs/s at two slots): the sweep must end overloaded, with
// a knee strictly inside the ramp and below the saturation rate.
func TestFindKneeLocatesSaturation(t *testing.T) {
	ramp, err := FindKnee(
		rcsched.Config{Policy: "slack", Slots: 2},
		Spec{Process: Poisson},
		RampSpec{StartRPS: 400, StepRPS: 400, Steps: 10, Jobs: 36, Seed: 42},
	)
	if err != nil {
		t.Fatal(err)
	}
	if ramp.SaturationRPS == 0 {
		t.Fatal("ramp never saturated a two-slot board at up to 4000 jobs/s")
	}
	if ramp.KneeRPS == 0 || ramp.KneeRPS >= ramp.SaturationRPS {
		t.Fatalf("knee %.0f jobs/s not strictly inside the ramp (saturation %.0f)",
			ramp.KneeRPS, ramp.SaturationRPS)
	}
	last := ramp.Points[len(ramp.Points)-1]
	if !last.Overloaded {
		t.Fatal("sweep stopped on a point not flagged overloaded")
	}
	for _, p := range ramp.Points[:len(ramp.Points)-1] {
		if p.Overloaded {
			t.Fatalf("sweep continued past overloaded point at %.0f jobs/s", p.RPS)
		}
	}
}

// TestFindKneeRejectsBadRamps sweeps the ramp validation surface.
func TestFindKneeRejectsBadRamps(t *testing.T) {
	cfg := rcsched.Config{Slots: 2}
	for name, ramp := range map[string]RampSpec{
		"zero start":    {StepRPS: 100, Steps: 2, Jobs: 8},
		"zero step":     {StartRPS: 100, Steps: 2, Jobs: 8},
		"zero steps":    {StartRPS: 100, StepRPS: 100, Jobs: 8},
		"zero jobs":     {StartRPS: 100, StepRPS: 100, Steps: 2},
		"negative step": {StartRPS: 100, StepRPS: -1, Steps: 2, Jobs: 8},
	} {
		if _, err := FindKnee(cfg, Spec{}, ramp); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := FindKnee(cfg, Spec{Process: Diurnal, Phases: []Phase{{RPS: 100, DurationPs: 1e9}}},
		RampSpec{StartRPS: 100, StepRPS: 100, Steps: 2, Jobs: 8}); err == nil {
		t.Error("diurnal ramp accepted — there is no single rate to sweep")
	}
}
