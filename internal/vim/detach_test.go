package vim

import (
	"errors"
	"testing"
)

// TestDetachInvariants pins the dynamic teardown contract: after Detach the
// session's TLB entries are gone, its frames are free, the survivor is
// untouched, and both the partition and the session slot are reusable by a
// later Attach.
func TestDetachInvariants(t *testing.T) {
	board, m, a, b := twoSessions(t, StaticPartition)
	fill(t, a, 1, 12)
	fill(t, b, 1, 12)
	aFramesBefore := m.Frames()
	blo, bhi := b.Partition()

	if err := m.Detach(b); err != nil {
		t.Fatal(err)
	}
	// Double detach must fail, not corrupt.
	if err := m.Detach(b); !errors.Is(err, ErrPartition) {
		t.Fatalf("double Detach: %v", err)
	}
	// The detached session's TLB entries are gone; the survivor's remain.
	for f := 0; f < board.IMU.Entries(); f++ {
		e := board.IMU.Entry(f)
		if e.Valid && e.Sess == 1 {
			t.Fatalf("TLB entry %d still owned by the detached session: %+v", f, e)
		}
	}
	survivors := 0
	for f := 0; f < board.IMU.Entries(); f++ {
		if e := board.IMU.Entry(f); e.Valid && e.Sess == 0 {
			survivors++
		}
	}
	if survivors == 0 {
		t.Fatal("survivor session lost its TLB entries")
	}
	// The detached partition's frames are free; the survivor's unchanged.
	for f := blo; f < bhi; f++ {
		if m.Frames()[f].Occupied {
			t.Fatalf("frame %d of the detached partition still occupied", f)
		}
	}
	alo, ahi := a.Partition()
	for f := alo; f < ahi; f++ {
		if m.Frames()[f] != aFramesBefore[f] {
			t.Fatalf("survivor frame %d changed across Detach: %+v -> %+v",
				f, aFramesBefore[f], m.Frames()[f])
		}
	}
	if m.single() != true {
		t.Fatal("manager with one survivor does not report single")
	}

	// The freed partition and session slot are reusable: a new session
	// lands on slot 1 over the same frames (first fit) and runs.
	c, err := m.Attach(Config{}, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() != 1 {
		t.Fatalf("reattached session got slot %d, want the freed slot 1", c.ID())
	}
	if lo, hi := c.Partition(); lo != blo || hi != bhi {
		t.Fatalf("reattached partition [%d,%d), want the freed [%d,%d)", lo, hi, blo, bhi)
	}
	fill(t, c, 1, 12)
	occupied := 0
	for f := blo; f < bhi; f++ {
		if fr := m.Frames()[f]; fr.Occupied && fr.Sess == 1 {
			occupied++
		}
	}
	if occupied != bhi-blo {
		t.Fatalf("reattached session occupies %d of %d reclaimed frames", occupied, bhi-blo)
	}
}

// TestDetachFramesReusableBySurvivor asserts that a survivor can grow into
// the reclaimed frames: under GlobalLRU the freed partition's frames are
// borrowed by the survivor's demand paging.
func TestDetachFramesReusableBySurvivor(t *testing.T) {
	board, m, a, b := twoSessions(t, GlobalLRU)
	fill(t, a, 1, 12)
	fill(t, b, 1, 12)
	if err := m.Detach(b); err != nil {
		t.Fatal(err)
	}
	blo, bhi := b.Partition()

	// The survivor faults on a non-resident page; with its own partition
	// full it must borrow one of the reclaimed free frames instead of
	// evicting its own.
	board.IMU.InjectFault(0, 1, 8*2048)
	if err := a.HandleFault(); err != nil {
		t.Fatal(err)
	}
	if a.Count.Evictions != 0 || a.Count.Steals != 0 {
		t.Fatalf("survivor evicted or stole instead of borrowing a reclaimed frame: %+v", a.Count)
	}
	found := false
	for f := blo; f < bhi; f++ {
		if fr := m.Frames()[f]; fr.Occupied && fr.Sess == 0 && fr.Obj == 1 && fr.VPage == 8 {
			found = true
		}
	}
	if !found {
		t.Fatal("faulted page not placed on a reclaimed frame")
	}
}

// TestAttachRespectsBorrowedFrames asserts the carve never claims a frame a
// neighbour has borrowed: the first-fit run skips occupied frames even
// outside any live partition.
func TestAttachRespectsBorrowedFrames(t *testing.T) {
	board, m, a, b := twoSessions(t, GlobalLRU)
	fill(t, a, 1, 12)
	if err := b.PrepareExecute(nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Detach(b); err != nil {
		t.Fatal(err)
	}
	// Survivor borrows a reclaimed frame (frame 4, the lowest free one).
	board.IMU.InjectFault(0, 1, 8*2048)
	if err := a.HandleFault(); err != nil {
		t.Fatal(err)
	}
	// A 4-frame attach no longer fits [4,8) — the borrowed frame splits the
	// run — so the attach must fail rather than hand out an occupied frame.
	if _, err := m.Attach(Config{}, 4, -1); !errors.Is(err, ErrPartition) {
		t.Fatalf("attach over a borrowed frame: %v", err)
	}
	// A smaller attach fits behind the borrowed frame.
	c, err := m.Attach(Config{}, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := c.Partition()
	for f := lo; f < hi; f++ {
		if m.Frames()[f].Occupied {
			t.Fatalf("carved frame %d already occupied", f)
		}
	}
}
