package vim

import (
	"errors"
	"testing"

	"repro/internal/copro"
	"repro/internal/imu"
	"repro/internal/platform"
)

// twoSessions builds an EPXA1 board (eight 2 KB frames) carrying two
// sessions of four frames each under the given arbitration policy, with
// the IMU reconfigured to two channels.
func twoSessions(t *testing.T, arb Arbitration) (*platform.Board, *Manager, *Session, *Session) {
	t.Helper()
	board, err := platform.NewBoard(platform.EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	if err := board.IMU.SetChannels(2); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(board.Kern, board.IMU, platform.DPBase, platform.IMURegBase,
		board.DP.PageSize(), arb)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.AddSession(Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AddSession(Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return board, m, a, b
}

// fill maps an object covering pages frames of data on s and prepares the
// execution, so the session's partition is fully occupied (one parameter
// frame + data pages).
func fill(t *testing.T, s *Session, obj uint8, pages int) uint32 {
	t.Helper()
	ps := int(s.m.pageSz)
	base, err := s.m.k.Alloc(pages * ps)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MapObject(obj, base, uint32(pages*ps), In); err != nil {
		t.Fatal(err)
	}
	if err := s.PrepareExecute(nil); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestAddSessionPartitioning(t *testing.T) {
	board, err := platform.NewBoard(platform.EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(board.Kern, board.IMU, platform.DPBase, platform.IMURegBase,
		board.DP.PageSize(), StaticPartition)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSession(Config{}, 1); !errors.Is(err, ErrPartition) {
		t.Fatalf("one-frame session accepted: %v", err)
	}
	// The single-session compatibility shims must error, not panic, on a
	// manager that has no sessions yet.
	if err := m.PrepareExecute(nil); !errors.Is(err, ErrPartition) {
		t.Fatalf("PrepareExecute on a session-less manager: %v", err)
	}
	if err := m.HandleFault(); !errors.Is(err, ErrPartition) {
		t.Fatalf("HandleFault on a session-less manager: %v", err)
	}
	if err := m.Finish(); !errors.Is(err, ErrPartition) {
		t.Fatalf("Finish on a session-less manager: %v", err)
	}
	if objs := m.Objects(); objs != nil {
		t.Fatalf("Objects on a session-less manager = %v", objs)
	}
	a, err := m.AddSession(Config{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := a.Partition(); lo != 0 || hi != 5 {
		t.Fatalf("session A partition = [%d,%d), want [0,5)", lo, hi)
	}
	if _, err := m.AddSession(Config{}, 4); !errors.Is(err, ErrPartition) {
		t.Fatalf("overcommitted partition accepted: %v", err)
	}
	b, err := m.AddSession(Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := b.Partition(); lo != 5 || hi != 8 {
		t.Fatalf("session B partition = [%d,%d), want [5,8)", lo, hi)
	}
	if m.single() {
		t.Fatal("two-session manager reports single")
	}
}

// TestPrepareExecuteConfinedToPartition asserts that a session's initial
// mapping never spills outside its home partition, even when the mapped
// object would fill the whole board.
func TestPrepareExecuteConfinedToPartition(t *testing.T) {
	_, m, a, _ := twoSessions(t, StaticPartition)
	fill(t, a, 1, 12) // 12 pages >> 3 data frames of the partition
	lo, hi := a.Partition()
	for f, fr := range m.Frames() {
		inPart := f >= lo && f < hi
		if fr.Occupied && !inPart {
			t.Fatalf("frame %d outside [%d,%d) occupied by session %d", f, lo, hi, fr.Sess)
		}
		if inPart && !fr.Occupied {
			t.Fatalf("frame %d of the partition left free", f)
		}
	}
	if got := a.Count.PagesLoaded; got != 3 {
		t.Fatalf("pages loaded = %d, want 3 (partition minus parameter frame)", got)
	}
}

// TestStaticExhaustionEvictsOwnFramesOnly asserts the partition-exhaustion
// contract: a session whose partition is full services its faults by
// evicting its own frames only, and the neighbour session's frames and
// stats stay untouched.
func TestStaticExhaustionEvictsOwnFramesOnly(t *testing.T) {
	board, m, a, b := twoSessions(t, StaticPartition)
	fill(t, a, 1, 12)
	fill(t, b, 1, 12)
	framesBefore := m.Frames()

	// Session A faults on a page far beyond its resident set.
	board.IMU.InjectFault(0, 1, 8*2048)
	if err := a.HandleFault(); err != nil {
		t.Fatal(err)
	}
	if a.Count.Faults != 1 || a.Count.Evictions != 1 {
		t.Fatalf("session A counters = %+v, want 1 fault, 1 eviction", a.Count)
	}
	if a.Count.Steals != 0 || m.Count.Steals != 0 {
		t.Fatal("static partitioning stole a frame")
	}
	if b.Count.Evictions != 0 || b.Count.Faults != 0 {
		t.Fatalf("session B was disturbed: %+v", b.Count)
	}
	blo, bhi := b.Partition()
	for f := blo; f < bhi; f++ {
		if m.Frames()[f] != framesBefore[f] {
			t.Fatalf("session B frame %d changed: %+v -> %+v", f, framesBefore[f], m.Frames()[f])
		}
	}
	// The faulted page landed inside A's partition.
	alo, ahi := a.Partition()
	found := false
	for f := alo; f < ahi; f++ {
		if fr := m.Frames()[f]; fr.Occupied && fr.Obj == 1 && fr.VPage == 8 {
			found = true
		}
	}
	if !found {
		t.Fatal("faulted page not resident in session A's partition")
	}
}

// TestGlobalLRUStealsColdestNeighbourFrame asserts the stealing path: under
// GlobalLRU arbitration a session whose partition is exhausted takes the
// globally least-recently-used frame from its neighbour, visible in both
// sessions' stats.
func TestGlobalLRUStealsColdestNeighbourFrame(t *testing.T) {
	board, m, a, b := twoSessions(t, GlobalLRU)
	fill(t, a, 1, 12)
	fill(t, b, 1, 12)

	// Stamp A's entries hot and B's cold so the global-LRU arbiter picks
	// B as the victim session (hardware would stamp LastUse on hits).
	for f := 0; f < 8; f++ {
		e := board.IMU.Entry(f)
		if !e.Valid || e.Obj == copro.ParamObj {
			continue
		}
		if e.Sess == 0 {
			e.LastUse = 100 + uint64(f)
		} else {
			e.LastUse = 1 + uint64(f)
		}
		if err := board.IMU.SetEntry(f, e); err != nil {
			t.Fatal(err)
		}
	}

	board.IMU.InjectFault(0, 1, 8*2048)
	if err := a.HandleFault(); err != nil {
		t.Fatal(err)
	}
	if a.Count.Steals != 1 {
		t.Fatalf("session A steals = %d, want 1", a.Count.Steals)
	}
	if b.Count.Evictions != 1 {
		t.Fatalf("session B evictions = %d, want 1 (its frame was stolen)", b.Count.Evictions)
	}
	if a.Count.Evictions != 0 {
		t.Fatalf("session A evictions = %d, want 0", a.Count.Evictions)
	}
	if m.Count.Steals != 1 || m.Count.Evictions != 1 {
		t.Fatalf("aggregate counters = %+v", m.Count)
	}
	// The stolen frame now belongs to A and holds the faulted page.
	blo, bhi := b.Partition()
	stolen := false
	for f := blo; f < bhi; f++ {
		if fr := m.Frames()[f]; fr.Occupied && fr.Sess == 0 && fr.Obj == 1 && fr.VPage == 8 {
			stolen = true
		}
	}
	if !stolen {
		t.Fatal("faulted page not resident on a frame stolen from session B")
	}
	// The shared TLB entry is session-tagged for A.
	for f := blo; f < bhi; f++ {
		e := board.IMU.Entry(f)
		if e.Valid && e.Obj == 1 && e.VPage == 8 && e.Sess != 0 {
			t.Fatalf("stolen frame's TLB entry tagged session %d, want 0", e.Sess)
		}
	}
}

// TestGlobalLRUBorrowsFreeForeignFrames asserts that under GlobalLRU a
// session may claim free frames outside its home partition before
// resorting to eviction.
func TestGlobalLRUBorrowsFreeForeignFrames(t *testing.T) {
	board, m, a, b := twoSessions(t, GlobalLRU)
	fill(t, a, 1, 12) // A full
	// B maps nothing: its data frames stay free.
	if err := b.PrepareExecute(nil); err != nil {
		t.Fatal(err)
	}
	board.IMU.InjectFault(0, 1, 8*2048)
	if err := a.HandleFault(); err != nil {
		t.Fatal(err)
	}
	if a.Count.Evictions != 0 || a.Count.Steals != 0 {
		t.Fatalf("free borrow should not evict or steal: %+v", a.Count)
	}
	blo, bhi := b.Partition()
	found := false
	for f := blo; f < bhi; f++ {
		if fr := m.Frames()[f]; fr.Occupied && fr.Sess == 0 && fr.Obj == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("faulted page not placed on a borrowed free frame")
	}
}

// TestFinishReleasesOnlyOwnFrames asserts that one session's end-of-
// operation flush leaves the neighbour's residency and TLB slice alone.
func TestFinishReleasesOnlyOwnFrames(t *testing.T) {
	board, m, a, b := twoSessions(t, StaticPartition)
	fill(t, a, 1, 2)
	fill(t, b, 1, 2)
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	alo, ahi := a.Partition()
	for f := alo; f < ahi; f++ {
		fr := m.Frames()[f]
		if fr.Occupied && !fr.Pinned {
			t.Fatalf("session A frame %d still occupied after Finish", f)
		}
	}
	blo, bhi := b.Partition()
	occupied := 0
	for f := blo; f < bhi; f++ {
		if m.Frames()[f].Occupied {
			occupied++
		}
	}
	if occupied != 3 { // parameter frame + two data pages
		t.Fatalf("session B occupancy = %d after A's Finish, want 3", occupied)
	}
	for f := blo; f < bhi; f++ {
		if e := board.IMU.Entry(f); e.Valid && e.Sess != 1 {
			t.Fatalf("TLB entry %d lost its session tag: %+v", f, e)
		}
	}
}

// TestArbitrationNames pins the arbitration name parsing and rendering.
func TestArbitrationNames(t *testing.T) {
	if a, ok := NewArbitration(""); !ok || a != StaticPartition {
		t.Fatal("default arbitration is not static")
	}
	if a, ok := NewArbitration("global-lru"); !ok || a != GlobalLRU {
		t.Fatal("global-lru not recognised")
	}
	if _, ok := NewArbitration("optimal"); ok {
		t.Fatal("unknown arbitration accepted")
	}
	if StaticPartition.String() != "static" || GlobalLRU.String() != "global-lru" {
		t.Fatal("arbitration names wrong")
	}
	if imu.MaxChannels < 2 {
		t.Fatal("IMU must support at least two channels for sessions")
	}
}
