// Package vim implements the Virtual Interface Manager of §3.3 — the
// operating-system extension that manages the dual-port RAM as a pool of
// pages, keeps the IMU's translation table coherent with its allocation
// decisions, services translation faults (eviction, dirty write-back, page
// load), and flushes dirty data back to user space at end of operation.
//
// This is the paper's primary software contribution, reproduced in full:
// mapped-object bookkeeping (FPGA_MAP_OBJECT), the initial mapping performed
// by FPGA_EXECUTE with scalar parameters passed through a dedicated page,
// demand paging with pluggable replacement policies, the load-elision
// optimisation for output-only objects (the "flags used for optimisation
// purposes" of §3.1), optional sequential prefetch (§3.3 "speculative
// actions as prefetching could be used"), and the bounce-buffer transfer
// mode that reproduces the double-copy inefficiency the paper reports and
// was removing.
package vim

import (
	"errors"
	"fmt"

	"repro/internal/copro"
	"repro/internal/imu"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// Direction declares how the coprocessor uses a mapped object.
type Direction int

const (
	// In objects are read by the coprocessor: pages are loaded from user
	// space on (pre)fault.
	In Direction = iota
	// Out objects are only written: page loads are elided.
	Out
	// InOut objects are both read and written.
	InOut
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Errors returned by the manager.
var (
	ErrBadObject   = errors.New("vim: invalid object")
	ErrOutOfBounds = errors.New("vim: coprocessor access beyond object bounds")
	ErrNoFrames    = errors.New("vim: no evictable frame")
)

// Object is one mapped data object (the FPGA_MAP_OBJECT contract).
type Object struct {
	ID   uint8
	Base uint32 // user-space address
	Size uint32 // bytes
	Dir  Direction
}

// Pages returns the number of pages the object spans.
func (o *Object) Pages(pageSize uint32) uint32 {
	return (o.Size + pageSize - 1) / pageSize
}

// Frame is the manager's view of one DP RAM page frame.
type Frame struct {
	Occupied bool
	Pinned   bool // parameter page while still live
	Obj      uint8
	VPage    uint32
	LoadSeq  uint64
}

// Config tunes the manager.
type Config struct {
	// Policy picks eviction victims; nil means FIFO.
	Policy Policy
	// BounceBuffer reproduces the paper's naive implementation that makes
	// two transfers per page movement (user <-> kernel buffer <-> DP RAM).
	BounceBuffer bool
	// PrefetchPages maps (and loads) up to this many sequential next pages
	// of the faulting object while servicing a fault, if free frames are
	// available. 0 disables prefetch.
	PrefetchPages int
}

// Counters aggregates manager activity.
type Counters struct {
	Faults       uint64
	Evictions    uint64
	Writebacks   uint64 // dirty pages copied back (fault path)
	PagesLoaded  uint64
	PagesFlushed uint64 // dirty pages copied back at end of operation
	LoadsElided  uint64 // OUT pages mapped without a data copy
	Prefetches   uint64
	BytesIn      uint64 // user -> DP RAM
	BytesOut     uint64 // DP RAM -> user
}

// Manager is the Virtual Interface Manager.
type Manager struct {
	k       *kernel.Kernel
	u       *imu.IMU
	cfg     Config
	dpBase  uint32 // AHB base address of the DP RAM
	regBase uint32 // AHB base address of the IMU register window
	pageSz  uint32

	objects map[uint8]*Object
	frames  []Frame
	seq     uint64

	// writtenBack records (obj, vpage) pairs whose partial contents have
	// been copied to user space by a dirty eviction. Load elision for
	// output objects is only sound on a page's *first* residency: once a
	// partially written page has been written back, a later fault must
	// reload it or the next flush would clobber the earlier writes with
	// frame garbage.
	writtenBack map[uint64]bool

	// bounce is the kernel-space staging buffer address (allocated once).
	bounce uint32

	Count Counters
}

// New builds a manager for the given kernel and IMU; dpBase and regBase are
// the AHB addresses of the DP RAM and the IMU register window.
func New(k *kernel.Kernel, u *imu.IMU, dpBase, regBase uint32, pageSize int, cfg Config) (*Manager, error) {
	if k == nil || u == nil {
		return nil, fmt.Errorf("vim: nil kernel or IMU")
	}
	if cfg.Policy == nil {
		cfg.Policy = FIFO{}
	}
	m := &Manager{
		k:           k,
		u:           u,
		cfg:         cfg,
		dpBase:      dpBase,
		regBase:     regBase,
		pageSz:      uint32(pageSize),
		objects:     map[uint8]*Object{},
		frames:      make([]Frame, u.Entries()),
		writtenBack: map[uint64]bool{},
	}
	if cfg.BounceBuffer {
		addr, err := k.Alloc(pageSize)
		if err != nil {
			return nil, fmt.Errorf("vim: bounce buffer: %w", err)
		}
		m.bounce = addr
	}
	return m, nil
}

// Config returns the manager configuration.
func (m *Manager) Config() Config { return m.cfg }

// PageSize returns the page size in bytes.
func (m *Manager) PageSize() uint32 { return m.pageSz }

// Frames returns a copy of the frame table (tests, reports).
func (m *Manager) Frames() []Frame { return append([]Frame(nil), m.frames...) }

// Objects returns the mapped objects (tests, reports).
func (m *Manager) Objects() []Object {
	out := make([]Object, 0, len(m.objects))
	for _, o := range m.objects {
		out = append(out, *o)
	}
	return out
}

// MapObject registers a user-space object for coprocessor use
// (FPGA_MAP_OBJECT). Object IDs must be unique per execution and below the
// parameter identifier.
func (m *Manager) MapObject(id uint8, base, size uint32, dir Direction) error {
	if id == copro.ParamObj {
		return fmt.Errorf("%w: id %#x is reserved for the parameter page", ErrBadObject, id)
	}
	if _, dup := m.objects[id]; dup {
		return fmt.Errorf("%w: id %d already mapped", ErrBadObject, id)
	}
	if size == 0 {
		return fmt.Errorf("%w: object %d has zero size", ErrBadObject, id)
	}
	if base%4 != 0 {
		return fmt.Errorf("%w: object %d base %#x not word aligned", ErrBadObject, id, base)
	}
	m.objects[id] = &Object{ID: id, Base: base, Size: size, Dir: dir}
	return nil
}

// UnmapAll clears the object table (between executions).
func (m *Manager) UnmapAll() { m.objects = map[uint8]*Object{} }

// ResetCounters zeroes the activity counters.
func (m *Manager) ResetCounters() { m.Count = Counters{} }

// frameAddr returns the AHB address of frame f.
func (m *Manager) frameAddr(f int) uint32 { return m.dpBase + uint32(f)*m.pageSz }

// pageSpan returns the user address and byte length (word-padded) of page
// vpage of object o.
func (m *Manager) pageSpan(o *Object, vpage uint32) (uint32, int) {
	off := vpage * m.pageSz
	n := m.pageSz
	if off+n > o.Size {
		n = o.Size - off
	}
	// Word-pad: user buffers are allocated with 8-byte padding, so the
	// rounded copy stays in bounds.
	n = (n + 3) &^ 3
	return o.Base + off, int(n)
}

// copyIn moves one page of o from user space into frame f.
func (m *Manager) copyIn(o *Object, vpage uint32, f int) error {
	src, n := m.pageSpan(o, vpage)
	if n == 0 {
		return nil
	}
	if m.cfg.BounceBuffer {
		// The naive module staged every page through a kernel buffer:
		// two transfers per movement (§4.1).
		if err := m.k.BusCopy(stats.SWDP, m.bounce, src, n); err != nil {
			return err
		}
		src = m.bounce
	}
	if err := m.k.BusCopy(stats.SWDP, m.frameAddr(f), src, n); err != nil {
		return err
	}
	m.Count.PagesLoaded++
	m.Count.BytesIn += uint64(n)
	return nil
}

// copyOut moves frame f back to page vpage of o in user space.
func (m *Manager) copyOut(o *Object, vpage uint32, f int) error {
	dst, n := m.pageSpan(o, vpage)
	if n == 0 {
		return nil
	}
	src := m.frameAddr(f)
	if m.cfg.BounceBuffer {
		if err := m.k.BusCopy(stats.SWDP, m.bounce, src, n); err != nil {
			return err
		}
		src = m.bounce
	}
	if err := m.k.BusCopy(stats.SWDP, dst, src, n); err != nil {
		return err
	}
	m.Count.BytesOut += uint64(n)
	return nil
}

// installEntry programs TLB entry == frame index f (the manager's fixed
// convention) through timed register writes.
func (m *Manager) installEntry(f int, e imu.TLBEntry) error {
	if err := m.k.BusWrite32(stats.SWIMU, m.regAddr(imu.RegTLBIdx), uint32(f)); err != nil {
		return err
	}
	if err := m.k.BusWrite32(stats.SWIMU, m.regAddr(imu.RegTLBLo), packLo(e)); err != nil {
		return err
	}
	return m.k.BusWrite32(stats.SWIMU, m.regAddr(imu.RegTLBHi), packHi(e))
}

// packLo/packHi mirror the IMU register encoding (the VIM is the other side
// of that contract).
func packLo(e imu.TLBEntry) uint32 {
	v := uint32(0)
	if e.Valid {
		v |= 1
	}
	v |= uint32(e.Obj) << 1
	v |= (e.VPage & 0x7fff) << 9
	return v
}

func packHi(e imu.TLBEntry) uint32 {
	v := uint32(e.Frame)
	if e.Dirty {
		v |= 1 << 8
	}
	if e.Ref {
		v |= 1 << 9
	}
	return v
}

func (m *Manager) regAddr(off uint32) uint32 { return m.regBase + off }
