// Package vim implements the Virtual Interface Manager of §3.3 — the
// operating-system extension that manages the dual-port RAM as a pool of
// pages, keeps the IMU's translation table coherent with its allocation
// decisions, services translation faults (eviction, dirty write-back, page
// load), and flushes dirty data back to user space at end of operation.
//
// This is the paper's primary software contribution, reproduced in full:
// mapped-object bookkeeping (FPGA_MAP_OBJECT), the initial mapping performed
// by FPGA_EXECUTE with scalar parameters passed through a dedicated page,
// demand paging with pluggable replacement policies, the load-elision
// optimisation for output-only objects (the "flags used for optimisation
// purposes" of §3.1), optional sequential prefetch (§3.3 "speculative
// actions as prefetching could be used"), and the bounce-buffer transfer
// mode that reproduces the double-copy inefficiency the paper reports and
// was removing.
//
// # Sessions
//
// Beyond the paper, the manager is multi-tenant: a Manager owns the shared
// page pool (the frames of one dual-port RAM) and any number of Sessions,
// one per loaded coprocessor. Each session brings its own mapped-object
// table, its own slice of the IMU translation table (entries are
// session-tagged), its own replacement policy, a home partition of the page
// pool, and its own counters. How sessions compete for frames is decided by
// the manager-wide Arbitration policy: StaticPartition confines every
// session to its home partition, GlobalLRU lets a loaded session steal the
// globally least-recently-used frame from a neighbour. The single-session
// constructor New builds a manager whose only session spans the whole pool,
// which reproduces the paper's original module bit for bit.
package vim

import (
	"errors"
	"fmt"

	"repro/internal/imu"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// Direction declares how the coprocessor uses a mapped object.
type Direction int

const (
	// In objects are read by the coprocessor: pages are loaded from user
	// space on (pre)fault.
	In Direction = iota
	// Out objects are only written: page loads are elided.
	Out
	// InOut objects are both read and written.
	InOut
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Errors returned by the manager.
var (
	ErrBadObject   = errors.New("vim: invalid object")
	ErrOutOfBounds = errors.New("vim: coprocessor access beyond object bounds")
	ErrNoFrames    = errors.New("vim: no evictable frame")
	ErrPartition   = errors.New("vim: bad session partition")
)

// Object is one mapped data object (the FPGA_MAP_OBJECT contract).
type Object struct {
	ID   uint8
	Base uint32 // user-space address
	Size uint32 // bytes
	Dir  Direction
}

// Pages returns the number of pages the object spans.
func (o *Object) Pages(pageSize uint32) uint32 {
	return (o.Size + pageSize - 1) / pageSize
}

// Frame is the manager's view of one DP RAM page frame. Sess identifies the
// owning session while the frame is occupied; free frames belong to the
// home partition they sit in.
type Frame struct {
	Occupied bool
	Pinned   bool  // parameter page while still live
	Sess     uint8 // owning session while occupied
	Obj      uint8
	VPage    uint32
	LoadSeq  uint64
}

// Config tunes one session of the manager.
type Config struct {
	// Policy picks eviction victims among the session's own frames; nil
	// means FIFO.
	Policy Policy
	// BounceBuffer reproduces the paper's naive implementation that makes
	// two transfers per page movement (user <-> kernel buffer <-> DP RAM).
	BounceBuffer bool
	// PrefetchPages maps (and loads) up to this many sequential next pages
	// of the faulting object while servicing a fault, if free frames are
	// available. 0 disables prefetch.
	PrefetchPages int
}

// Counters aggregates manager activity. The manager keeps one aggregate set
// across all sessions plus one per session.
type Counters struct {
	Faults       uint64
	Evictions    uint64
	Writebacks   uint64 // dirty pages copied back (fault path)
	PagesLoaded  uint64
	PagesFlushed uint64 // dirty pages copied back at end of operation
	LoadsElided  uint64 // OUT pages mapped without a data copy
	Prefetches   uint64
	Steals       uint64 // frames evicted from another session (GlobalLRU)
	BytesIn      uint64 // user -> DP RAM
	BytesOut     uint64 // DP RAM -> user
}

// Arbitration decides how sessions compete for page frames.
type Arbitration int

const (
	// StaticPartition confines every session to its home partition: frames
	// are allocated and evicted strictly within [lo, hi).
	StaticPartition Arbitration = iota
	// GlobalLRU lets a session that has exhausted its partition take the
	// frame pool's globally least-recently-used frame: the owner of that
	// frame is chosen as the victim session, the owner's own replacement
	// policy picks which of its frames to give up, and the stealing
	// session takes it over.
	GlobalLRU
)

// String implements fmt.Stringer.
func (a Arbitration) String() string {
	if a == GlobalLRU {
		return "global-lru"
	}
	return "static"
}

// NewArbitration resolves an arbitration policy by name ("static",
// "global-lru").
func NewArbitration(name string) (Arbitration, bool) {
	switch name {
	case "", "static":
		return StaticPartition, true
	case "global-lru", "globallru", "lru":
		return GlobalLRU, true
	}
	return StaticPartition, false
}

// Manager is the Virtual Interface Manager: the shared half of the
// subsystem. It owns the frame pool, the arbitration policy, the bounce
// staging buffer and the aggregate counters; Sessions own everything
// per-tenant.
type Manager struct {
	k       *kernel.Kernel
	u       *imu.IMU
	arb     Arbitration
	dpBase  uint32 // AHB base address of the DP RAM
	regBase uint32 // AHB base address of the IMU register window
	pageSz  uint32

	frames   []Frame
	sessions []*Session
	carved   int // frames already assigned to partitions

	// view is the reusable scratch slice scopedVictim hands to replacement
	// policies: a copy of frames with foreign sessions' frames blanked.
	view []Frame

	// bounce is the kernel-space staging buffer address (allocated once,
	// shared by all bounce-mode sessions; OS services are serialised).
	bounce uint32

	// Count aggregates activity across every session.
	Count Counters
}

// NewManager builds an empty multi-session manager over the kernel and IMU;
// dpBase and regBase are the AHB addresses of the DP RAM and the IMU
// register window. Partitions are carved by AddSession.
func NewManager(k *kernel.Kernel, u *imu.IMU, dpBase, regBase uint32, pageSize int, arb Arbitration) (*Manager, error) {
	if k == nil || u == nil {
		return nil, fmt.Errorf("vim: nil kernel or IMU")
	}
	return &Manager{
		k:       k,
		u:       u,
		arb:     arb,
		dpBase:  dpBase,
		regBase: regBase,
		pageSz:  uint32(pageSize),
		frames:  make([]Frame, u.Entries()),
		view:    make([]Frame, u.Entries()),
	}, nil
}

// New builds a single-session manager: the paper's original module, whose
// only session spans the whole page pool.
func New(k *kernel.Kernel, u *imu.IMU, dpBase, regBase uint32, pageSize int, cfg Config) (*Manager, error) {
	m, err := NewManager(k, u, dpBase, regBase, pageSize, StaticPartition)
	if err != nil {
		return nil, err
	}
	if _, err := m.AddSession(cfg, len(m.frames)); err != nil {
		return nil, err
	}
	return m, nil
}

// AddSession carves the next nframes frames of the pool into a new
// session's home partition and returns the session. The session index must
// have a matching IMU channel by the time hardware runs; the parameter page
// occupies the partition's first frame, so a runnable session needs at
// least two frames.
func (m *Manager) AddSession(cfg Config, nframes int) (*Session, error) {
	if len(m.sessions) >= imu.MaxChannels {
		return nil, fmt.Errorf("%w: %d sessions exceed the %d IMU channels", ErrPartition, len(m.sessions)+1, imu.MaxChannels)
	}
	if nframes < 2 {
		return nil, fmt.Errorf("%w: %d frames (the parameter page needs one, data at least one)", ErrPartition, nframes)
	}
	if m.carved+nframes > len(m.frames) {
		return nil, fmt.Errorf("%w: %d frames requested, %d left in the pool", ErrPartition, nframes, len(m.frames)-m.carved)
	}
	if cfg.Policy == nil {
		cfg.Policy = FIFO{}
	}
	if cfg.BounceBuffer && m.bounce == 0 {
		addr, err := m.k.Alloc(int(m.pageSz))
		if err != nil {
			return nil, fmt.Errorf("vim: bounce buffer: %w", err)
		}
		m.bounce = addr
	}
	s := &Session{
		m:           m,
		id:          uint8(len(m.sessions)),
		lo:          m.carved,
		hi:          m.carved + nframes,
		cfg:         cfg,
		objects:     map[uint8]*Object{},
		writtenBack: map[uint64]bool{},
	}
	m.carved += nframes
	m.sessions = append(m.sessions, s)
	return s, nil
}

// single reports whether the manager runs the paper's single-session shape
// (one session spanning the whole pool), which uses the original unscoped
// fast paths.
func (m *Manager) single() bool { return len(m.sessions) == 1 }

// Sessions returns the managed sessions (experiments, tools).
func (m *Manager) Sessions() []*Session { return m.sessions }

// Arbitration returns the inter-session arbitration policy.
func (m *Manager) Arbitration() Arbitration { return m.arb }

// errNoSessions guards the single-session compatibility shims: a manager
// built with NewManager has no sessions until AddSession.
func (m *Manager) errNoSessions() error {
	if len(m.sessions) == 0 {
		return fmt.Errorf("%w: manager has no sessions (AddSession first)", ErrPartition)
	}
	return nil
}

// Config returns the first session's configuration (single-session
// compatibility; zero Config on a session-less manager).
func (m *Manager) Config() Config {
	if len(m.sessions) == 0 {
		return Config{}
	}
	return m.sessions[0].cfg
}

// PageSize returns the page size in bytes.
func (m *Manager) PageSize() uint32 { return m.pageSz }

// Frames returns a copy of the shared frame table (tests, reports).
func (m *Manager) Frames() []Frame { return append([]Frame(nil), m.frames...) }

// Objects returns the first session's mapped objects (single-session
// compatibility).
func (m *Manager) Objects() []Object {
	if len(m.sessions) == 0 {
		return nil
	}
	return m.sessions[0].Objects()
}

// MapObject registers a user-space object on the first session
// (single-session compatibility).
func (m *Manager) MapObject(id uint8, base, size uint32, dir Direction) error {
	if err := m.errNoSessions(); err != nil {
		return err
	}
	return m.sessions[0].MapObject(id, base, size, dir)
}

// UnmapAll clears the first session's object table (between executions).
func (m *Manager) UnmapAll() {
	if len(m.sessions) > 0 {
		m.sessions[0].UnmapAll()
	}
}

// PrepareExecute performs the FPGA_EXECUTE setup on the first session
// (single-session compatibility).
func (m *Manager) PrepareExecute(params []uint32) error {
	if err := m.errNoSessions(); err != nil {
		return err
	}
	return m.sessions[0].PrepareExecute(params)
}

// HandleFault services the first session's translation fault
// (single-session compatibility).
func (m *Manager) HandleFault() error {
	if err := m.errNoSessions(); err != nil {
		return err
	}
	return m.sessions[0].HandleFault()
}

// Finish performs the first session's end-of-operation service
// (single-session compatibility).
func (m *Manager) Finish() error {
	if err := m.errNoSessions(); err != nil {
		return err
	}
	return m.sessions[0].Finish()
}

// ResetCounters zeroes the aggregate and every session's counters.
func (m *Manager) ResetCounters() {
	m.Count = Counters{}
	for _, s := range m.sessions {
		s.Count = Counters{}
	}
}

// frameAddr returns the AHB address of frame f.
func (m *Manager) frameAddr(f int) uint32 { return m.dpBase + uint32(f)*m.pageSz }

// scopedVictim asks the owner session's replacement policy for a victim
// among the owner's own frames: the shared pool is copied into the scratch
// view with every foreign (or free) frame blanked, so policies written for
// the single-session manager work unchanged on a partitioned pool.
func (m *Manager) scopedVictim(owner *Session) int {
	copy(m.view, m.frames)
	for i := range m.view {
		if !(m.view[i].Occupied && m.view[i].Sess == owner.id) {
			m.view[i] = Frame{}
		}
	}
	return owner.cfg.Policy.Victim(m.view, m.u)
}

// lruOwner finds the session owning the globally least-recently-used
// evictable frame, or nil if nothing is evictable.
func (m *Manager) lruOwner() *Session {
	best, bestUse := -1, uint64(0)
	for i := range m.frames {
		f := &m.frames[i]
		if !f.Occupied || f.Pinned {
			continue
		}
		use := m.u.Entry(i).LastUse
		if best < 0 || use < bestUse {
			best, bestUse = i, use
		}
	}
	if best < 0 {
		return nil
	}
	return m.sessions[m.frames[best].Sess]
}

// victim selects an eviction victim on behalf of session s under the
// arbitration policy, returning the frame index and the session that owns
// it (and whose object table must drive the write-back), or (-1, nil).
func (m *Manager) victim(s *Session) (int, *Session) {
	if m.single() {
		// The paper's original path: the policy sees the raw pool.
		return s.cfg.Policy.Victim(m.frames, m.u), s
	}
	switch m.arb {
	case GlobalLRU:
		owner := m.lruOwner()
		if owner == nil {
			return -1, nil
		}
		return m.scopedVictim(owner), owner
	default: // StaticPartition
		return m.scopedVictim(s), s
	}
}

// installEntry programs TLB entry == frame index f (the manager's fixed
// convention) through timed register writes against session s's bank.
func (s *Session) installEntry(f int, e imu.TLBEntry) error {
	e.Sess = s.id
	if err := s.m.k.BusWrite32(stats.SWIMU, s.regAddr(imu.RegTLBIdx), uint32(f)); err != nil {
		return err
	}
	if err := s.m.k.BusWrite32(stats.SWIMU, s.regAddr(imu.RegTLBLo), packLo(e)); err != nil {
		return err
	}
	return s.m.k.BusWrite32(stats.SWIMU, s.regAddr(imu.RegTLBHi), packHi(e))
}

// packLo/packHi mirror the IMU register encoding (the VIM is the other side
// of that contract).
func packLo(e imu.TLBEntry) uint32 {
	v := uint32(0)
	if e.Valid {
		v |= 1
	}
	v |= uint32(e.Obj) << 1
	v |= (e.VPage & 0x7fff) << 9
	v |= uint32(e.Sess&0xf) << 24
	return v
}

func packHi(e imu.TLBEntry) uint32 {
	v := uint32(e.Frame)
	if e.Dirty {
		v |= 1 << 8
	}
	if e.Ref {
		v |= 1 << 9
	}
	return v
}

// regAddr returns the AHB address of register off in session s's bank.
func (s *Session) regAddr(off uint32) uint32 {
	return s.m.regBase + imu.RegBank(int(s.id)) + off
}
