// Package vim implements the Virtual Interface Manager of §3.3 — the
// operating-system extension that manages the dual-port RAM as a pool of
// pages, keeps the IMU's translation table coherent with its allocation
// decisions, services translation faults (eviction, dirty write-back, page
// load), and flushes dirty data back to user space at end of operation.
//
// This is the paper's primary software contribution, reproduced in full:
// mapped-object bookkeeping (FPGA_MAP_OBJECT), the initial mapping performed
// by FPGA_EXECUTE with scalar parameters passed through a dedicated page,
// demand paging with pluggable replacement policies, the load-elision
// optimisation for output-only objects (the "flags used for optimisation
// purposes" of §3.1), optional sequential prefetch (§3.3 "speculative
// actions as prefetching could be used"), and the bounce-buffer transfer
// mode that reproduces the double-copy inefficiency the paper reports and
// was removing.
//
// # Sessions
//
// Beyond the paper, the manager is multi-tenant: a Manager owns the shared
// page pool (the frames of one dual-port RAM) and any number of Sessions,
// one per loaded coprocessor. Each session brings its own mapped-object
// table, its own slice of the IMU translation table (entries are
// session-tagged), its own replacement policy, a home partition of the page
// pool, and its own counters. How sessions compete for frames is decided by
// the manager-wide Arbitration policy: StaticPartition confines every
// session to its home partition, GlobalLRU lets a loaded session steal the
// globally least-recently-used frame from a neighbour. The single-session
// constructor New builds a manager whose only session spans the whole pool,
// which reproduces the paper's original module bit for bit.
//
// Sessions are dynamic: Attach admits a new session while others are
// mid-execution (first-fit partition carve, lowest free session slot) and
// Detach reclaims a finished session's frames, translation-table slice and
// slot, so an OS-level scheduler (package rcsched) can load and unload
// coprocessors at runtime under a live job stream.
package vim

import (
	"errors"
	"fmt"

	"repro/internal/imu"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// Direction declares how the coprocessor uses a mapped object.
type Direction int

const (
	// In objects are read by the coprocessor: pages are loaded from user
	// space on (pre)fault.
	In Direction = iota
	// Out objects are only written: page loads are elided.
	Out
	// InOut objects are both read and written.
	InOut
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Errors returned by the manager.
var (
	ErrBadObject   = errors.New("vim: invalid object")
	ErrOutOfBounds = errors.New("vim: coprocessor access beyond object bounds")
	ErrNoFrames    = errors.New("vim: no evictable frame")
	ErrPartition   = errors.New("vim: bad session partition")
)

// Object is one mapped data object (the FPGA_MAP_OBJECT contract).
type Object struct {
	ID   uint8
	Base uint32 // user-space address
	Size uint32 // bytes
	Dir  Direction
}

// Pages returns the number of pages the object spans.
func (o *Object) Pages(pageSize uint32) uint32 {
	return (o.Size + pageSize - 1) / pageSize
}

// Frame is the manager's view of one DP RAM page frame. Sess identifies the
// owning session while the frame is occupied; free frames belong to the
// home partition they sit in.
type Frame struct {
	Occupied bool
	Pinned   bool  // parameter page while still live
	Sess     uint8 // owning session while occupied
	Obj      uint8
	VPage    uint32
	LoadSeq  uint64
}

// Config tunes one session of the manager.
type Config struct {
	// Policy picks eviction victims among the session's own frames; nil
	// means FIFO.
	Policy Policy
	// BounceBuffer reproduces the paper's naive implementation that makes
	// two transfers per page movement (user <-> kernel buffer <-> DP RAM).
	BounceBuffer bool
	// PrefetchPages maps (and loads) up to this many sequential next pages
	// of the faulting object while servicing a fault, if free frames are
	// available. 0 disables prefetch.
	PrefetchPages int
}

// Counters aggregates manager activity. The manager keeps one aggregate set
// across all sessions plus one per session.
type Counters struct {
	Faults       uint64
	Evictions    uint64
	Writebacks   uint64 // dirty pages copied back (fault path)
	PagesLoaded  uint64
	PagesFlushed uint64 // dirty pages copied back at end of operation
	LoadsElided  uint64 // OUT pages mapped without a data copy
	Prefetches   uint64
	Steals       uint64 // frames evicted from another session (GlobalLRU)
	BytesIn      uint64 // user -> DP RAM
	BytesOut     uint64 // DP RAM -> user
}

// Arbitration decides how sessions compete for page frames.
type Arbitration int

const (
	// StaticPartition confines every session to its home partition: frames
	// are allocated and evicted strictly within [lo, hi).
	StaticPartition Arbitration = iota
	// GlobalLRU lets a session that has exhausted its partition take the
	// frame pool's globally least-recently-used frame: the owner of that
	// frame is chosen as the victim session, the owner's own replacement
	// policy picks which of its frames to give up, and the stealing
	// session takes it over.
	GlobalLRU
)

// String implements fmt.Stringer.
func (a Arbitration) String() string {
	if a == GlobalLRU {
		return "global-lru"
	}
	return "static"
}

// NewArbitration resolves an arbitration policy by name ("static",
// "global-lru").
func NewArbitration(name string) (Arbitration, bool) {
	switch name {
	case "", "static":
		return StaticPartition, true
	case "global-lru", "globallru", "lru":
		return GlobalLRU, true
	}
	return StaticPartition, false
}

// Manager is the Virtual Interface Manager: the shared half of the
// subsystem. It owns the frame pool, the arbitration policy, the bounce
// staging buffer and the aggregate counters; Sessions own everything
// per-tenant.
type Manager struct {
	k       *kernel.Kernel
	u       *imu.IMU
	arb     Arbitration
	dpBase  uint32 // AHB base address of the DP RAM
	regBase uint32 // AHB base address of the IMU register window
	pageSz  uint32

	frames []Frame
	// sessions is indexed by session identifier (== the session's IMU
	// channel); a nil hole is a detached slot awaiting reuse. live counts
	// the non-nil entries.
	sessions []*Session
	live     int

	// view is the reusable scratch slice scopedVictim hands to replacement
	// policies: a copy of frames with foreign sessions' frames blanked.
	view []Frame

	// bounce is the kernel-space staging buffer address (allocated once,
	// shared by all bounce-mode sessions; OS services are serialised).
	bounce uint32

	// Count aggregates activity across every session.
	Count Counters
}

// NewManager builds an empty multi-session manager over the kernel and IMU;
// dpBase and regBase are the AHB addresses of the DP RAM and the IMU
// register window. Partitions are carved by AddSession.
func NewManager(k *kernel.Kernel, u *imu.IMU, dpBase, regBase uint32, pageSize int, arb Arbitration) (*Manager, error) {
	if k == nil || u == nil {
		return nil, fmt.Errorf("vim: nil kernel or IMU")
	}
	return &Manager{
		k:       k,
		u:       u,
		arb:     arb,
		dpBase:  dpBase,
		regBase: regBase,
		pageSz:  uint32(pageSize),
		frames:  make([]Frame, u.Entries()),
		view:    make([]Frame, u.Entries()),
	}, nil
}

// New builds a single-session manager: the paper's original module, whose
// only session spans the whole page pool.
func New(k *kernel.Kernel, u *imu.IMU, dpBase, regBase uint32, pageSize int, cfg Config) (*Manager, error) {
	m, err := NewManager(k, u, dpBase, regBase, pageSize, StaticPartition)
	if err != nil {
		return nil, err
	}
	if _, err := m.AddSession(cfg, len(m.frames)); err != nil {
		return nil, err
	}
	return m, nil
}

// AddSession carves the next nframes frames of the pool into a new
// session's home partition and returns the session. The session index must
// have a matching IMU channel by the time hardware runs; the parameter page
// occupies the partition's first frame, so a runnable session needs at
// least two frames.
func (m *Manager) AddSession(cfg Config, nframes int) (*Session, error) {
	return m.Attach(cfg, nframes, -1)
}

// Attach dynamically admits a new session: it claims session slot ch (which
// is also the session's IMU channel; ch < 0 picks the lowest free slot),
// carves a first-fit contiguous run of nframes free frames into the new
// session's home partition, and returns the session. Attach may be called
// while other sessions are mid-execution — the carve only ever takes frames
// that belong to no live partition and hold no page, so neighbours keep
// translating undisturbed. Detach is the inverse.
func (m *Manager) Attach(cfg Config, nframes int, ch int) (*Session, error) {
	if ch < 0 {
		for i := 0; i < imu.MaxChannels; i++ {
			if i >= len(m.sessions) || m.sessions[i] == nil {
				ch = i
				break
			}
		}
		if ch < 0 {
			return nil, fmt.Errorf("%w: all %d IMU channels hold live sessions", ErrPartition, imu.MaxChannels)
		}
	} else if ch >= m.u.Channels() {
		// An explicit slot binds to existing hardware immediately, so it
		// must name a configured channel. (Auto-picked slots keep the
		// looser AddSession contract: the static gang carves sessions
		// first and assembles the matching channels afterwards.)
		return nil, fmt.Errorf("%w: session slot %d on a %d-channel IMU", ErrPartition, ch, m.u.Channels())
	}
	if ch < len(m.sessions) && m.sessions[ch] != nil {
		return nil, fmt.Errorf("%w: session slot %d already live", ErrPartition, ch)
	}
	if nframes < 2 {
		return nil, fmt.Errorf("%w: %d frames (the parameter page needs one, data at least one)", ErrPartition, nframes)
	}
	lo := m.findRun(nframes)
	if lo < 0 {
		return nil, fmt.Errorf("%w: no contiguous run of %d free frames in the pool", ErrPartition, nframes)
	}
	if cfg.Policy == nil {
		cfg.Policy = FIFO{}
	}
	if cfg.BounceBuffer && m.bounce == 0 {
		addr, err := m.k.Alloc(int(m.pageSz))
		if err != nil {
			return nil, fmt.Errorf("vim: bounce buffer: %w", err)
		}
		m.bounce = addr
	}
	s := &Session{
		m:           m,
		id:          uint8(ch),
		lo:          lo,
		hi:          lo + nframes,
		cfg:         cfg,
		objects:     map[uint8]*Object{},
		writtenBack: map[uint64]bool{},
	}
	for ch >= len(m.sessions) {
		m.sessions = append(m.sessions, nil)
	}
	m.sessions[ch] = s
	m.live++
	return s, nil
}

// Detach tears a session down and reclaims its resources: every frame it
// owns is dropped (no write-back — flush results with Finish first), its
// slice of the IMU translation table is invalidated, its object table is
// cleared, and both its home partition and its session slot return to the
// pool for a later Attach. Surviving sessions keep translating throughout.
func (m *Manager) Detach(s *Session) error {
	if s == nil || int(s.id) >= len(m.sessions) || m.sessions[s.id] != s {
		return fmt.Errorf("%w: detaching a session the manager does not hold", ErrPartition)
	}
	for i := range m.frames {
		if m.frames[i].Occupied && m.frames[i].Sess == s.id {
			m.frames[i] = Frame{}
		}
	}
	m.u.InvalidateSession(s.id)
	m.u.ClearParamFreeCh(int(s.id))
	s.objects = map[uint8]*Object{}
	s.writtenBack = map[uint64]bool{}
	m.sessions[s.id] = nil
	m.live--
	return nil
}

// findRun locates the lowest first-fit contiguous run of n carveable frames:
// frames inside no live partition and holding no page (a neighbour may have
// borrowed an uncarved frame under GlobalLRU). It returns the start index,
// or -1.
func (m *Manager) findRun(n int) int {
	run := 0
	for i := range m.frames {
		if m.frames[i].Occupied || m.inPartition(i) {
			run = 0
			continue
		}
		run++
		if run == n {
			return i - n + 1
		}
	}
	return -1
}

// inPartition reports whether frame f lies inside a live session's home
// partition.
func (m *Manager) inPartition(f int) bool {
	for _, s := range m.sessions {
		if s != nil && f >= s.lo && f < s.hi {
			return true
		}
	}
	return false
}

// single reports whether the manager runs the paper's single-session shape
// (one live session), which uses the original unscoped fast paths.
func (m *Manager) single() bool { return m.live == 1 }

// Sessions returns the live sessions in slot order (experiments, tools).
func (m *Manager) Sessions() []*Session {
	out := make([]*Session, 0, m.live)
	for _, s := range m.sessions {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Arbitration returns the inter-session arbitration policy.
func (m *Manager) Arbitration() Arbitration { return m.arb }

// errNoSessions guards the single-session compatibility shims: a manager
// built with NewManager has no sessions until AddSession, and slot 0 may
// have been detached since.
func (m *Manager) errNoSessions() error {
	if len(m.sessions) == 0 || m.sessions[0] == nil {
		return fmt.Errorf("%w: manager has no session in slot 0 (AddSession first)", ErrPartition)
	}
	return nil
}

// Config returns the first session's configuration (single-session
// compatibility; zero Config on a session-less manager).
func (m *Manager) Config() Config {
	if len(m.sessions) == 0 || m.sessions[0] == nil {
		return Config{}
	}
	return m.sessions[0].cfg
}

// PageSize returns the page size in bytes.
func (m *Manager) PageSize() uint32 { return m.pageSz }

// Frames returns a copy of the shared frame table (tests, reports).
func (m *Manager) Frames() []Frame { return append([]Frame(nil), m.frames...) }

// Objects returns the first session's mapped objects (single-session
// compatibility).
func (m *Manager) Objects() []Object {
	if len(m.sessions) == 0 || m.sessions[0] == nil {
		return nil
	}
	return m.sessions[0].Objects()
}

// MapObject registers a user-space object on the first session
// (single-session compatibility).
func (m *Manager) MapObject(id uint8, base, size uint32, dir Direction) error {
	if err := m.errNoSessions(); err != nil {
		return err
	}
	return m.sessions[0].MapObject(id, base, size, dir)
}

// UnmapAll clears the first session's object table (between executions).
func (m *Manager) UnmapAll() {
	if len(m.sessions) > 0 && m.sessions[0] != nil {
		m.sessions[0].UnmapAll()
	}
}

// PrepareExecute performs the FPGA_EXECUTE setup on the first session
// (single-session compatibility).
func (m *Manager) PrepareExecute(params []uint32) error {
	if err := m.errNoSessions(); err != nil {
		return err
	}
	return m.sessions[0].PrepareExecute(params)
}

// HandleFault services the first session's translation fault
// (single-session compatibility).
func (m *Manager) HandleFault() error {
	if err := m.errNoSessions(); err != nil {
		return err
	}
	return m.sessions[0].HandleFault()
}

// Finish performs the first session's end-of-operation service
// (single-session compatibility).
func (m *Manager) Finish() error {
	if err := m.errNoSessions(); err != nil {
		return err
	}
	return m.sessions[0].Finish()
}

// ResetCounters zeroes the aggregate and every live session's counters.
func (m *Manager) ResetCounters() {
	m.Count = Counters{}
	for _, s := range m.sessions {
		if s != nil {
			s.Count = Counters{}
		}
	}
}

// frameAddr returns the AHB address of frame f.
func (m *Manager) frameAddr(f int) uint32 { return m.dpBase + uint32(f)*m.pageSz }

// scopedVictim asks the owner session's replacement policy for a victim
// among the owner's own frames: the shared pool is copied into the scratch
// view with every foreign (or free) frame blanked, so policies written for
// the single-session manager work unchanged on a partitioned pool.
func (m *Manager) scopedVictim(owner *Session) int {
	copy(m.view, m.frames)
	for i := range m.view {
		if !(m.view[i].Occupied && m.view[i].Sess == owner.id) {
			m.view[i] = Frame{}
		}
	}
	return owner.cfg.Policy.Victim(m.view, m.u)
}

// lruOwner finds the session owning the globally least-recently-used
// evictable frame, or nil if nothing is evictable.
func (m *Manager) lruOwner() *Session {
	best, bestUse := -1, uint64(0)
	for i := range m.frames {
		f := &m.frames[i]
		if !f.Occupied || f.Pinned {
			continue
		}
		use := m.u.Entry(i).LastUse
		if best < 0 || use < bestUse {
			best, bestUse = i, use
		}
	}
	if best < 0 {
		return nil
	}
	return m.sessions[m.frames[best].Sess]
}

// victim selects an eviction victim on behalf of session s under the
// arbitration policy, returning the frame index and the session that owns
// it (and whose object table must drive the write-back), or (-1, nil).
func (m *Manager) victim(s *Session) (int, *Session) {
	if m.single() {
		// The paper's original path: the policy sees the raw pool.
		return s.cfg.Policy.Victim(m.frames, m.u), s
	}
	switch m.arb {
	case GlobalLRU:
		owner := m.lruOwner()
		if owner == nil {
			return -1, nil
		}
		return m.scopedVictim(owner), owner
	default: // StaticPartition
		return m.scopedVictim(s), s
	}
}

// installEntry programs TLB entry == frame index f (the manager's fixed
// convention) through timed register writes against session s's bank.
func (s *Session) installEntry(f int, e imu.TLBEntry) error {
	e.Sess = s.id
	if err := s.m.k.BusWrite32(stats.SWIMU, s.regAddr(imu.RegTLBIdx), uint32(f)); err != nil {
		return err
	}
	if err := s.m.k.BusWrite32(stats.SWIMU, s.regAddr(imu.RegTLBLo), packLo(e)); err != nil {
		return err
	}
	return s.m.k.BusWrite32(stats.SWIMU, s.regAddr(imu.RegTLBHi), packHi(e))
}

// packLo/packHi mirror the IMU register encoding (the VIM is the other side
// of that contract).
func packLo(e imu.TLBEntry) uint32 {
	v := uint32(0)
	if e.Valid {
		v |= 1
	}
	v |= uint32(e.Obj) << 1
	v |= (e.VPage & 0x7fff) << 9
	v |= uint32(e.Sess&0xf) << 24
	return v
}

func packHi(e imu.TLBEntry) uint32 {
	v := uint32(e.Frame)
	if e.Dirty {
		v |= 1 << 8
	}
	if e.Ref {
		v |= 1 << 9
	}
	return v
}

// regAddr returns the AHB address of register off in session s's bank.
func (s *Session) regAddr(off uint32) uint32 {
	return s.m.regBase + imu.RegBank(int(s.id)) + off
}
