package vim

import (
	"math/rand"

	"repro/internal/imu"
)

// Policy selects an eviction victim among occupied frames (§3.3: "several
// replacement policies are possible — e.g., first-in first-out, least
// recently used, random").
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Victim returns the frame index to evict. frames lists the manager's
	// frame table; u exposes the hardware reference information (Ref bits,
	// LastUse stamps). Pinned frames must not be chosen.
	Victim(frames []Frame, u *imu.IMU) int
}

// eligible reports whether frame i may be evicted.
func eligible(f *Frame) bool { return f.Occupied && !f.Pinned }

// FIFO evicts the frame loaded the longest ago.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Victim implements Policy.
func (FIFO) Victim(frames []Frame, _ *imu.IMU) int {
	best, bestSeq := -1, uint64(0)
	for i := range frames {
		f := &frames[i]
		if !eligible(f) {
			continue
		}
		if best < 0 || f.LoadSeq < bestSeq {
			best, bestSeq = i, f.LoadSeq
		}
	}
	return best
}

// LRU evicts the frame whose TLB entry has the oldest LastUse stamp (the
// IMU stamps every hit; never-hit frames evict first).
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "lru" }

// Victim implements Policy.
func (LRU) Victim(frames []Frame, u *imu.IMU) int {
	best, bestUse := -1, uint64(0)
	for i := range frames {
		f := &frames[i]
		if !eligible(f) {
			continue
		}
		use := u.Entry(i).LastUse
		if best < 0 || use < bestUse {
			best, bestUse = i, use
		}
	}
	return best
}

// Clock is the second-chance policy over the hardware Ref bits: it sweeps a
// hand, clearing set bits and evicting the first clear one.
type Clock struct {
	hand int
}

// Name implements Policy.
func (*Clock) Name() string { return "clock" }

// Victim implements Policy.
func (c *Clock) Victim(frames []Frame, u *imu.IMU) int {
	n := len(frames)
	if n == 0 {
		return -1
	}
	// Two sweeps guarantee termination: the first pass may clear bits,
	// the second finds a clear one.
	for pass := 0; pass < 2*n; pass++ {
		i := c.hand
		c.hand = (c.hand + 1) % n
		f := &frames[i]
		if !eligible(f) {
			continue
		}
		e := u.Entry(i)
		if e.Ref {
			e.Ref = false
			if err := u.SetEntry(i, e); err != nil {
				continue
			}
			continue
		}
		return i
	}
	// All referenced and pinned-free: fall back to the hand position.
	for i := range frames {
		if eligible(&frames[i]) {
			return i
		}
	}
	return -1
}

// Random evicts a uniformly random eligible frame (seeded: runs are
// reproducible).
type Random struct {
	Rng *rand.Rand
}

// Name implements Policy.
func (*Random) Name() string { return "random" }

// Victim implements Policy.
func (r *Random) Victim(frames []Frame, _ *imu.IMU) int {
	var candidates []int
	for i := range frames {
		if eligible(&frames[i]) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[r.Rng.Intn(len(candidates))]
}

// NewPolicy builds a policy by name ("fifo", "lru", "clock", "random").
func NewPolicy(name string, seed int64) (Policy, bool) {
	switch name {
	case "", "fifo":
		return FIFO{}, true
	case "lru":
		return LRU{}, true
	case "clock":
		return &Clock{}, true
	case "random":
		return &Random{Rng: rand.New(rand.NewSource(seed))}, true
	}
	return nil, false
}
