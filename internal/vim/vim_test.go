package vim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/copro"
	"repro/internal/imu"
	"repro/internal/platform"
)

// rig builds a board plus a manager for direct unit testing.
func rig(t *testing.T, cfg Config) (*platform.Board, *Manager) {
	t.Helper()
	board, err := platform.NewBoard(platform.EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(board.Kern, board.IMU, platform.DPBase, platform.IMURegBase,
		board.DP.PageSize(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return board, m
}

func TestMapObjectValidation(t *testing.T) {
	_, m := rig(t, Config{})
	if err := m.MapObject(copro.ParamObj, 0, 16, In); !errors.Is(err, ErrBadObject) {
		t.Fatalf("reserved id accepted: %v", err)
	}
	if err := m.MapObject(1, 0x1000, 0, In); !errors.Is(err, ErrBadObject) {
		t.Fatalf("zero size accepted: %v", err)
	}
	if err := m.MapObject(1, 0x1001, 16, In); !errors.Is(err, ErrBadObject) {
		t.Fatalf("unaligned base accepted: %v", err)
	}
	if err := m.MapObject(1, 0x1000, 16, In); err != nil {
		t.Fatal(err)
	}
	if err := m.MapObject(1, 0x2000, 16, In); !errors.Is(err, ErrBadObject) {
		t.Fatalf("duplicate id accepted: %v", err)
	}
	m.UnmapAll()
	if err := m.MapObject(1, 0x2000, 16, In); err != nil {
		t.Fatalf("id not released by UnmapAll: %v", err)
	}
}

func TestPrepareExecuteInitialMapping(t *testing.T) {
	board, m := rig(t, Config{})
	ps := int(m.PageSize())
	// 2-page input, 2-page output: everything plus the parameter page
	// fits the 8 frames.
	inBase, _ := board.Kern.Alloc(2 * ps)
	outBase, _ := board.Kern.Alloc(2 * ps)
	data := make([]byte, 2*ps)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := board.Kern.WriteUser(inBase, data); err != nil {
		t.Fatal(err)
	}
	if err := m.MapObject(0, inBase, uint32(2*ps), In); err != nil {
		t.Fatal(err)
	}
	if err := m.MapObject(1, outBase, uint32(2*ps), Out); err != nil {
		t.Fatal(err)
	}
	if err := m.PrepareExecute([]uint32{0xabcd, 42}); err != nil {
		t.Fatal(err)
	}

	// Parameter words sit in frame 0.
	w, _ := board.DP.ReadB(0)
	if w != 0xabcd {
		t.Fatalf("param word 0 = %#x", w)
	}
	// Input pages were loaded; output pages mapped without copies.
	if m.Count.PagesLoaded != 2 {
		t.Fatalf("pages loaded = %d, want 2", m.Count.PagesLoaded)
	}
	if m.Count.LoadsElided != 2 {
		t.Fatalf("loads elided = %d, want 2", m.Count.LoadsElided)
	}
	// Input page 0 contents landed in some frame.
	found := false
	for f := 0; f < board.DP.Pages(); f++ {
		page, _ := board.DP.ReadPage(f)
		if page[0] == data[0] && page[1] == data[1] && page[100] == data[100] {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("input page contents not found in any frame")
	}
	// The TLB mirrors the frame table: every occupied frame has a valid
	// entry at its own index.
	for f, fr := range m.Frames() {
		e := board.IMU.Entry(f)
		if fr.Occupied != e.Valid {
			t.Fatalf("frame %d occupancy %v but TLB valid %v", f, fr.Occupied, e.Valid)
		}
		if fr.Occupied && int(e.Frame) != f {
			t.Fatalf("entry %d points at frame %d", f, e.Frame)
		}
	}
}

func TestPrepareExecuteRejectsTooManyParams(t *testing.T) {
	_, m := rig(t, Config{})
	params := make([]uint32, int(m.PageSize()/4)+1)
	if err := m.PrepareExecute(params); err == nil {
		t.Fatal("oversized parameter list accepted")
	}
}

func TestPrepareExecuteStopsWhenFull(t *testing.T) {
	board, m := rig(t, Config{})
	ps := int(m.PageSize())
	// 12 input pages for 7 free frames: initial mapping must stop at
	// capacity and leave the rest for demand paging.
	base, _ := board.Kern.Alloc(12 * ps)
	if err := m.MapObject(0, base, uint32(12*ps), In); err != nil {
		t.Fatal(err)
	}
	if err := m.PrepareExecute(nil); err != nil {
		t.Fatal(err)
	}
	occupied := 0
	for _, fr := range m.Frames() {
		if fr.Occupied {
			occupied++
		}
	}
	if occupied != board.DP.Pages() {
		t.Fatalf("occupied frames = %d, want all %d", occupied, board.DP.Pages())
	}
	if m.Count.PagesLoaded != uint64(board.DP.Pages()-1) {
		t.Fatalf("pages loaded = %d, want %d", m.Count.PagesLoaded, board.DP.Pages()-1)
	}
}

// --- Policy unit tests ---------------------------------------------------

func policyFixture(t *testing.T) (*imu.IMU, []Frame) {
	t.Helper()
	board, err := platform.NewBoard(platform.EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	u := board.IMU
	frames := make([]Frame, 8)
	for i := range frames {
		frames[i] = Frame{Occupied: true, Obj: 0, VPage: uint32(i), LoadSeq: uint64(10 + i)}
		e := imu.TLBEntry{Valid: true, Obj: 0, VPage: uint32(i), Frame: uint8(i), LastUse: uint64(100 + i)}
		if err := u.SetEntry(i, e); err != nil {
			t.Fatal(err)
		}
	}
	return u, frames
}

func TestFIFOVictimIsOldestLoad(t *testing.T) {
	u, frames := policyFixture(t)
	frames[3].LoadSeq = 1 // oldest
	if v := (FIFO{}).Victim(frames, u); v != 3 {
		t.Fatalf("FIFO victim = %d, want 3", v)
	}
}

func TestFIFOSkipsPinnedAndFree(t *testing.T) {
	u, frames := policyFixture(t)
	frames[0].LoadSeq = 1
	frames[0].Pinned = true
	frames[1].LoadSeq = 2
	frames[1].Occupied = false
	frames[2].LoadSeq = 3
	if v := (FIFO{}).Victim(frames, u); v != 2 {
		t.Fatalf("FIFO victim = %d, want 2 (0 pinned, 1 free)", v)
	}
}

func TestLRUVictimIsColdestEntry(t *testing.T) {
	u, frames := policyFixture(t)
	e := u.Entry(5)
	e.LastUse = 1 // coldest
	_ = u.SetEntry(5, e)
	if v := (LRU{}).Victim(frames, u); v != 5 {
		t.Fatalf("LRU victim = %d, want 5", v)
	}
}

func TestClockGivesSecondChance(t *testing.T) {
	u, frames := policyFixture(t)
	// All referenced: the first sweep clears, the second evicts frame 0.
	for i := range frames {
		e := u.Entry(i)
		e.Ref = true
		_ = u.SetEntry(i, e)
	}
	v := (&Clock{}).Victim(frames, u)
	if v != 0 {
		t.Fatalf("clock victim = %d, want 0 after full sweep", v)
	}
	// Ref bits must have been cleared by the sweep.
	for i := range frames {
		if u.Entry(i).Ref && i != v {
			t.Fatalf("entry %d still referenced after sweep", i)
		}
	}
	// Now mark only frame 2 unreferenced-free: hand position continues.
	e := u.Entry(4)
	e.Ref = true
	_ = u.SetEntry(4, e)
	c := &Clock{}
	if v := c.Victim(frames, u); v < 0 {
		t.Fatal("clock found no victim")
	}
}

func TestRandomIsSeededAndEligible(t *testing.T) {
	u, frames := policyFixture(t)
	frames[1].Pinned = true
	r1 := &Random{Rng: rand.New(rand.NewSource(5))}
	r2 := &Random{Rng: rand.New(rand.NewSource(5))}
	for i := 0; i < 32; i++ {
		v1 := r1.Victim(frames, u)
		v2 := r2.Victim(frames, u)
		if v1 != v2 {
			t.Fatal("random policy not reproducible for equal seeds")
		}
		if v1 == 1 {
			t.Fatal("random policy chose a pinned frame")
		}
	}
}

func TestQuickPoliciesNeverPickIneligible(t *testing.T) {
	u, _ := policyFixture(t)
	pols := []Policy{FIFO{}, LRU{}, &Clock{}, &Random{Rng: rand.New(rand.NewSource(1))}}
	f := func(occupancy uint8, pins uint8) bool {
		frames := make([]Frame, 8)
		any := false
		for i := range frames {
			frames[i].Occupied = occupancy&(1<<i) != 0
			frames[i].Pinned = pins&(1<<i) != 0
			frames[i].LoadSeq = uint64(i)
			if frames[i].Occupied && !frames[i].Pinned {
				any = true
			}
		}
		for _, p := range pols {
			v := p.Victim(frames, u)
			if !any {
				if v >= 0 {
					return false
				}
				continue
			}
			if v < 0 || !frames[v].Occupied || frames[v].Pinned {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPolicyNames(t *testing.T) {
	for _, name := range []string{"", "fifo", "lru", "clock", "random"} {
		if _, ok := NewPolicy(name, 1); !ok {
			t.Errorf("NewPolicy(%q) failed", name)
		}
	}
	if _, ok := NewPolicy("optimal", 1); ok {
		t.Error("NewPolicy accepted unknown name")
	}
}

func TestDirectionString(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" || InOut.String() != "inout" {
		t.Fatal("Direction strings wrong")
	}
}

func TestManagerRejectsNilDependencies(t *testing.T) {
	board, _ := rig(t, Config{})
	if _, err := New(nil, board.IMU, platform.DPBase, platform.IMURegBase, 2048, Config{}); err == nil {
		t.Fatal("nil kernel accepted")
	}
	if _, err := New(board.Kern, nil, platform.DPBase, platform.IMURegBase, 2048, Config{}); err == nil {
		t.Fatal("nil IMU accepted")
	}
}

func TestBounceBufferAllocatedOnce(t *testing.T) {
	_, m := rig(t, Config{BounceBuffer: true})
	if !m.Config().BounceBuffer {
		t.Fatal("bounce flag lost")
	}
	if m.bounce == 0 {
		t.Fatal("bounce buffer not allocated")
	}
}

func TestFinishFlushesDirtyPages(t *testing.T) {
	board, m := rig(t, Config{})
	ps := int(m.PageSize())
	base, _ := board.Kern.Alloc(ps)
	if err := m.MapObject(3, base, uint32(ps), Out); err != nil {
		t.Fatal(err)
	}
	if err := m.PrepareExecute(nil); err != nil {
		t.Fatal(err)
	}
	// Find the frame holding the output page and dirty it through the
	// hardware path (write via port B + dirty bit in the TLB entry).
	var frame int = -1
	for f, fr := range m.Frames() {
		if fr.Occupied && !fr.Pinned && fr.Obj == 3 {
			frame = f
		}
	}
	if frame < 0 {
		t.Fatal("output page not mapped by PrepareExecute")
	}
	if err := board.DP.WriteB(uint32(frame*ps), 0xfeedc0de, 0xf); err != nil {
		t.Fatal(err)
	}
	e := board.IMU.Entry(frame)
	e.Dirty = true
	if err := board.IMU.SetEntry(frame, e); err != nil {
		t.Fatal(err)
	}
	if err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	got, _ := board.Kern.ReadUser(base, 4)
	if got[0] != 0xde || got[1] != 0xc0 {
		t.Fatalf("dirty page not flushed: % x", got)
	}
	if m.Count.PagesFlushed != 1 {
		t.Fatalf("PagesFlushed = %d, want 1", m.Count.PagesFlushed)
	}
	// All frames released and the TLB cleared.
	for f, fr := range m.Frames() {
		if fr.Occupied && !fr.Pinned {
			t.Fatalf("frame %d still occupied after Finish", f)
		}
		if f > 0 && board.IMU.Entry(f).Valid {
			t.Fatalf("TLB entry %d still valid after Finish", f)
		}
	}
}
