package vim

import (
	"errors"
	"fmt"

	"repro/internal/copro"
	"repro/internal/imu"
	"repro/internal/stats"
)

// PrepareExecute performs the FPGA_EXECUTE setup of §3.1: it resets the
// translation state, writes the scalar parameters into the dedicated
// parameter page, and builds the initial mapping — input pages are
// preloaded in object order until the dual-port RAM is full, then output
// pages are mapped (without data movement) into whatever frames remain.
// Datasets that do not fit are demand-paged later, which is exactly the
// paper's "not necessarily all of the datasets used by the coprocessor
// reside in the memory at the same time".
func (m *Manager) PrepareExecute(params []uint32) error {
	m.u.InvalidateAll()
	// A previous execution may have left the parameter-free status bit
	// set (the coprocessor releases the page mid-run); clear it so the
	// fresh parameter page is not immediately reclaimed.
	m.u.ClearParamFree()
	for i := range m.frames {
		m.frames[i] = Frame{}
	}
	m.seq = 0
	m.writtenBack = map[uint64]bool{}

	if int(m.pageSz/4) < len(params) {
		return fmt.Errorf("vim: %d parameter words exceed the parameter page", len(params))
	}

	// Frame 0 carries the parameter page until the coprocessor releases it.
	for i, w := range params {
		if err := m.k.BusWrite32(stats.SWIMU, m.frameAddr(0)+uint32(i*4), w); err != nil {
			return err
		}
	}
	m.frames[0] = Frame{Occupied: true, Pinned: true, Obj: copro.ParamObj, VPage: 0, LoadSeq: m.nextSeq()}
	if err := m.installEntry(0, imu.TLBEntry{Valid: true, Obj: copro.ParamObj, VPage: 0, Frame: 0}); err != nil {
		return err
	}

	// Initial mapping: inputs first (they are needed immediately), then
	// outputs while frames remain.
	ids := m.sortedIDs()
	for _, loadable := range []bool{true, false} {
		for _, id := range ids {
			o := m.objects[id]
			isInput := o.Dir != Out
			if isInput != loadable {
				continue
			}
			for vp := uint32(0); vp < o.Pages(m.pageSz); vp++ {
				f := m.freeFrame()
				if f < 0 {
					return nil // DP RAM full; demand paging takes over
				}
				if err := m.mapPage(o, vp, f, loadable); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// sortedIDs returns mapped object IDs in ascending order (deterministic
// initial mapping).
func (m *Manager) sortedIDs() []uint8 {
	ids := make([]uint8, 0, len(m.objects))
	for id := range m.objects {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}

func (m *Manager) nextSeq() uint64 {
	m.seq++
	return m.seq
}

// freeFrame returns a free frame index, reclaiming the parameter frame if
// the coprocessor has released it, or -1.
func (m *Manager) freeFrame() int {
	if m.u.ParamFree() {
		for i := range m.frames {
			if m.frames[i].Pinned && m.frames[i].Obj == copro.ParamObj {
				m.frames[i] = Frame{}
				m.u.ClearParamFree()
				// The IMU already invalidated the TLB entry itself.
				break
			}
		}
	}
	for i := range m.frames {
		if !m.frames[i].Occupied {
			return i
		}
	}
	return -1
}

// mapPage binds (o, vpage) to frame f, loading data when load is true, and
// installs the TLB entry.
func (m *Manager) mapPage(o *Object, vpage uint32, f int, load bool) error {
	if load {
		if err := m.copyIn(o, vpage, f); err != nil {
			return err
		}
	} else {
		m.Count.LoadsElided++
	}
	m.k.ChargeCPU(stats.SWIMU, m.k.Costs.PageSetup)
	m.frames[f] = Frame{Occupied: true, Obj: o.ID, VPage: vpage, LoadSeq: m.nextSeq()}
	return m.installEntry(f, imu.TLBEntry{Valid: true, Obj: o.ID, VPage: vpage, Frame: uint8(f)})
}

// evict frees the victim frame, writing back its page if dirty, and
// invalidates its TLB entry.
func (m *Manager) evict(f int) error {
	fr := &m.frames[f]
	if !fr.Occupied || fr.Pinned {
		return fmt.Errorf("vim: evicting unusable frame %d", f)
	}
	// Read the hardware entry (timed) to learn the dirty bit.
	if err := m.k.BusWrite32(stats.SWIMU, m.regAddr(imu.RegTLBIdx), uint32(f)); err != nil {
		return err
	}
	hi, err := m.k.BusRead32(stats.SWIMU, m.regAddr(imu.RegTLBHi))
	if err != nil {
		return err
	}
	dirty := hi&(1<<8) != 0
	if dirty {
		o, ok := m.objects[fr.Obj]
		if !ok {
			return fmt.Errorf("%w: frame %d owned by unknown object %d", ErrBadObject, f, fr.Obj)
		}
		if err := m.copyOut(o, fr.VPage, f); err != nil {
			return err
		}
		m.Count.Writebacks++
		m.writtenBack[pageKey(fr.Obj, fr.VPage)] = true
	}
	if err := m.installEntry(f, imu.TLBEntry{}); err != nil {
		return err
	}
	m.frames[f] = Frame{}
	m.Count.Evictions++
	return nil
}

// HandleFault services one translation fault: it decodes the cause from the
// IMU registers, validates the access, makes a frame available (free,
// param-reclaim or eviction), loads the page if the object direction needs
// it, optionally prefetches sequential successors, and restarts the IMU.
func (m *Manager) HandleFault() error {
	m.Count.Faults++
	m.k.ChargeIRQ(stats.SWIMU)

	// Decode the fault cause (timed register reads: SR then AR).
	if _, err := m.k.BusRead32(stats.SWIMU, m.regAddr(imu.RegSR)); err != nil {
		return err
	}
	ar, err := m.k.BusRead32(stats.SWIMU, m.regAddr(imu.RegAR))
	if err != nil {
		return err
	}
	obj := uint8(ar >> 24)
	addr := ar & 0x00ffffff

	o, ok := m.objects[obj]
	if !ok {
		return fmt.Errorf("%w: coprocessor touched unmapped object %d (addr %#x)", ErrBadObject, obj, addr)
	}
	if addr >= o.Size {
		return fmt.Errorf("%w: object %d addr %#x size %#x", ErrOutOfBounds, obj, addr, o.Size)
	}
	vpage := addr / m.pageSz

	faultFrame, err := m.pageIn(o, vpage)
	if err != nil {
		return err
	}

	// Sequential prefetch (§3.3 "speculative actions as prefetching"):
	// while servicing the fault, also bring in the following pages of the
	// same object — each one turns a future fault (interrupt + decode +
	// restart) into a batched page load. The just-faulted page is pinned
	// so speculation can never displace it.
	if m.cfg.PrefetchPages > 0 {
		m.frames[faultFrame].Pinned = true
		for p := 1; p <= m.cfg.PrefetchPages; p++ {
			vp := vpage + uint32(p)
			if vp >= o.Pages(m.pageSz) || m.resident(o.ID, vp) {
				continue
			}
			if _, err := m.pageIn(o, vp); err != nil {
				if errors.Is(err, ErrNoFrames) {
					break
				}
				return err
			}
			m.Count.Prefetches++
		}
		m.frames[faultFrame].Pinned = false
	}

	// Restart the stalled translation (timed CR write).
	return m.k.BusWrite32(stats.SWIMU, m.regAddr(imu.RegCR), imu.CRRestart)
}

// pageKey packs an (object, page) pair for the written-back set.
func pageKey(obj uint8, vpage uint32) uint64 {
	return uint64(obj)<<32 | uint64(vpage)
}

// needsLoad decides whether binding (o, vpage) requires a data copy from
// user space: always for readable objects; for output objects only once
// the page holds previously written-back partial results.
func (m *Manager) needsLoad(o *Object, vpage uint32) bool {
	if o.Dir != Out {
		return true
	}
	return m.writtenBack[pageKey(o.ID, vpage)]
}

// pageIn makes (o, vpage) resident, evicting if necessary, and returns the
// frame used.
func (m *Manager) pageIn(o *Object, vpage uint32) (int, error) {
	f := m.freeFrame()
	if f < 0 {
		victim := m.cfg.Policy.Victim(m.frames, m.u)
		if victim < 0 {
			return -1, ErrNoFrames
		}
		if err := m.evict(victim); err != nil {
			return -1, err
		}
		f = victim
	}
	return f, m.mapPage(o, vpage, f, m.needsLoad(o, vpage))
}

// resident reports whether (obj, vpage) currently occupies a frame.
func (m *Manager) resident(obj uint8, vpage uint32) bool {
	for i := range m.frames {
		fr := &m.frames[i]
		if fr.Occupied && !fr.Pinned && fr.Obj == obj && fr.VPage == vpage {
			return true
		}
	}
	return false
}

// Finish performs the end-of-operation service of §3.3: every dirty page
// still resident is copied back to user space, and the translation table is
// cleared for the next execution.
func (m *Manager) Finish() error {
	m.k.ChargeIRQ(stats.SWOS)
	for f := range m.frames {
		fr := &m.frames[f]
		if !fr.Occupied || fr.Pinned {
			continue
		}
		if err := m.k.BusWrite32(stats.SWIMU, m.regAddr(imu.RegTLBIdx), uint32(f)); err != nil {
			return err
		}
		hi, err := m.k.BusRead32(stats.SWIMU, m.regAddr(imu.RegTLBHi))
		if err != nil {
			return err
		}
		if hi&(1<<8) != 0 { // dirty
			o, ok := m.objects[fr.Obj]
			if !ok {
				return fmt.Errorf("%w: frame %d owned by unknown object %d", ErrBadObject, f, fr.Obj)
			}
			if err := m.copyOut(o, fr.VPage, f); err != nil {
				return err
			}
			m.Count.PagesFlushed++
		}
		m.frames[f] = Frame{}
	}
	m.u.InvalidateAll()
	m.k.ChargeCPU(stats.SWOS, m.k.Costs.WakeProcess)
	return nil
}
