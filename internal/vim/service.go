package vim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/copro"
	"repro/internal/imu"
	"repro/internal/stats"
)

// Session is one tenant of the Virtual Interface Manager: the per-loaded-
// coprocessor half of the subsystem. It owns the mapped-object table, the
// session-tagged slice of the IMU translation table, the home partition
// [lo, hi) of the frame pool, the replacement policy, and the per-session
// counters. All its timed register traffic goes through its own bank of
// the IMU register window, so faults arrive session-tagged.
type Session struct {
	m   *Manager
	id  uint8
	lo  int // home partition start (frame index); the parameter frame
	hi  int // home partition end (exclusive)
	cfg Config

	objects map[uint8]*Object
	seq     uint64

	// writtenBack records (obj, vpage) pairs whose partial contents have
	// been copied to user space by a dirty eviction. Load elision for
	// output objects is only sound on a page's *first* residency: once a
	// partially written page has been written back, a later fault must
	// reload it or the next flush would clobber the earlier writes with
	// frame garbage.
	writtenBack map[uint64]bool

	// Count is this session's activity (the manager aggregates across
	// sessions in Manager.Count).
	Count Counters
}

// ID returns the session index (== its IMU channel).
func (s *Session) ID() int { return int(s.id) }

// Partition returns the session's home partition [lo, hi) in frame
// indices.
func (s *Session) Partition() (lo, hi int) { return s.lo, s.hi }

// Config returns the session configuration.
func (s *Session) Config() Config { return s.cfg }

// Manager returns the owning manager.
func (s *Session) Manager() *Manager { return s.m }

// Objects returns the mapped objects in ascending ID order (tests,
// reports).
func (s *Session) Objects() []Object {
	out := make([]Object, 0, len(s.objects))
	for _, id := range s.sortedIDs() {
		out = append(out, *s.objects[id])
	}
	return out
}

// MapObject registers a user-space object for coprocessor use
// (FPGA_MAP_OBJECT). Object IDs must be unique per execution and below the
// parameter identifier.
func (s *Session) MapObject(id uint8, base, size uint32, dir Direction) error {
	if id == copro.ParamObj {
		return fmt.Errorf("%w: id %#x is reserved for the parameter page", ErrBadObject, id)
	}
	if _, dup := s.objects[id]; dup {
		return fmt.Errorf("%w: id %d already mapped", ErrBadObject, id)
	}
	if size == 0 {
		return fmt.Errorf("%w: object %d has zero size", ErrBadObject, id)
	}
	if base%4 != 0 {
		return fmt.Errorf("%w: object %d base %#x not word aligned", ErrBadObject, id, base)
	}
	s.objects[id] = &Object{ID: id, Base: base, Size: size, Dir: dir}
	return nil
}

// UnmapAll clears the object table (between executions).
func (s *Session) UnmapAll() { s.objects = map[uint8]*Object{} }

// PrepareExecute performs the FPGA_EXECUTE setup of §3.1: it resets the
// session's translation state, writes the scalar parameters into the
// dedicated parameter page (the first frame of the home partition), and
// builds the initial mapping — input pages are preloaded in object order
// until the partition is full, then output pages are mapped (without data
// movement) into whatever frames remain. Datasets that do not fit are
// demand-paged later, which is exactly the paper's "not necessarily all of
// the datasets used by the coprocessor reside in the memory at the same
// time".
func (s *Session) PrepareExecute(params []uint32) error {
	m := s.m
	m.u.InvalidateSession(s.id)
	// A previous execution may have left the parameter-free status bit
	// set (the coprocessor releases the page mid-run); clear it so the
	// fresh parameter page is not immediately reclaimed.
	m.u.ClearParamFreeCh(int(s.id))
	for i := range m.frames {
		if m.frames[i].Sess == s.id {
			m.frames[i] = Frame{}
		}
	}
	s.seq = 0
	s.writtenBack = map[uint64]bool{}

	if int(m.pageSz/4) < len(params) {
		return fmt.Errorf("vim: %d parameter words exceed the parameter page", len(params))
	}

	// Under GlobalLRU a neighbour may have borrowed frames of this home
	// partition (including the parameter frame) while the session was
	// idle; reclaim the parameter frame before writing into it.
	if fr := &m.frames[s.lo]; fr.Occupied && fr.Sess != s.id {
		if err := m.sessions[fr.Sess].evict(s.lo); err != nil {
			return err
		}
	}

	// The partition's first frame carries the parameter page until the
	// coprocessor releases it.
	for i, w := range params {
		if err := m.k.BusWrite32(stats.SWIMU, m.frameAddr(s.lo)+uint32(i*4), w); err != nil {
			return err
		}
	}
	m.frames[s.lo] = Frame{Occupied: true, Pinned: true, Sess: s.id, Obj: copro.ParamObj, VPage: 0, LoadSeq: s.nextSeq()}
	if err := s.installEntry(s.lo, imu.TLBEntry{Valid: true, Obj: copro.ParamObj, VPage: 0, Frame: uint8(s.lo)}); err != nil {
		return err
	}

	// Initial mapping: inputs first (they are needed immediately), then
	// outputs while frames remain.
	ids := s.sortedIDs()
	for _, loadable := range []bool{true, false} {
		for _, id := range ids {
			o := s.objects[id]
			isInput := o.Dir != Out
			if isInput != loadable {
				continue
			}
			for vp := uint32(0); vp < o.Pages(m.pageSz); vp++ {
				f := s.freeFrame(false)
				if f < 0 {
					return nil // partition full; demand paging takes over
				}
				if err := s.mapPage(o, vp, f, loadable); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// sortedIDs returns mapped object IDs in ascending order (deterministic
// initial mapping).
func (s *Session) sortedIDs() []uint8 {
	ids := make([]uint8, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (s *Session) nextSeq() uint64 {
	s.seq++
	return s.seq
}

// freeFrame returns a free frame index, reclaiming the parameter frame if
// the coprocessor has released it, or -1. The home partition is scanned
// first; under GlobalLRU the demand-paging path (demand true) may also
// borrow free frames anywhere in the pool, while the initial mapping
// (demand false) stays confined so one session's launch never swallows a
// neighbour's carve before it starts.
func (s *Session) freeFrame(demand bool) int {
	m := s.m
	if m.u.ParamFreeCh(int(s.id)) {
		if fr := &m.frames[s.lo]; fr.Pinned && fr.Sess == s.id && fr.Obj == copro.ParamObj {
			*fr = Frame{}
			m.u.ClearParamFreeCh(int(s.id))
			// The IMU already invalidated the TLB entry itself.
		}
	}
	for i := s.lo; i < s.hi; i++ {
		if !m.frames[i].Occupied {
			return i
		}
	}
	// Under GlobalLRU the whole pool is fair game for demand paging — free
	// foreign frames include partitions reclaimed by Detach. (A manager
	// built with New always arbitrates statically, so the paper's
	// single-session shape never reaches this scan.)
	if demand && m.arb == GlobalLRU {
		for i := range m.frames {
			if !m.frames[i].Occupied {
				return i
			}
		}
	}
	return -1
}

// mapPage binds (o, vpage) to frame f, loading data when load is true, and
// installs the TLB entry.
func (s *Session) mapPage(o *Object, vpage uint32, f int, load bool) error {
	m := s.m
	if load {
		if err := s.copyIn(o, vpage, f); err != nil {
			return err
		}
	} else {
		s.Count.LoadsElided++
		m.Count.LoadsElided++
	}
	m.k.ChargeCPU(stats.SWIMU, m.k.Costs.PageSetup)
	m.frames[f] = Frame{Occupied: true, Sess: s.id, Obj: o.ID, VPage: vpage, LoadSeq: s.nextSeq()}
	return s.installEntry(f, imu.TLBEntry{Valid: true, Obj: o.ID, VPage: vpage, Frame: uint8(f)})
}

// evict frees the victim frame, writing back its page if dirty, and
// invalidates its TLB entry. It must be called on the session that owns
// the frame (its object table drives the write-back).
func (s *Session) evict(f int) error {
	m := s.m
	fr := &m.frames[f]
	if !fr.Occupied || fr.Pinned || fr.Sess != s.id {
		return fmt.Errorf("vim: evicting unusable frame %d", f)
	}
	// Read the hardware entry (timed) to learn the dirty bit.
	if err := m.k.BusWrite32(stats.SWIMU, s.regAddr(imu.RegTLBIdx), uint32(f)); err != nil {
		return err
	}
	hi, err := m.k.BusRead32(stats.SWIMU, s.regAddr(imu.RegTLBHi))
	if err != nil {
		return err
	}
	dirty := hi&(1<<8) != 0
	if dirty {
		o, ok := s.objects[fr.Obj]
		if !ok {
			return fmt.Errorf("%w: frame %d owned by unknown object %d", ErrBadObject, f, fr.Obj)
		}
		if err := s.copyOut(o, fr.VPage, f); err != nil {
			return err
		}
		s.Count.Writebacks++
		m.Count.Writebacks++
		s.writtenBack[pageKey(fr.Obj, fr.VPage)] = true
	}
	if err := s.installEntry(f, imu.TLBEntry{}); err != nil {
		return err
	}
	m.frames[f] = Frame{}
	s.Count.Evictions++
	m.Count.Evictions++
	return nil
}

// HandleFault services one translation fault: it decodes the cause from
// the session's IMU register bank, validates the access, makes a frame
// available (free, param-reclaim, eviction, or — under GlobalLRU — a steal
// from another session), loads the page if the object direction needs it,
// optionally prefetches sequential successors, and restarts the IMU
// channel.
func (s *Session) HandleFault() error {
	m := s.m
	s.Count.Faults++
	m.Count.Faults++
	m.k.ChargeIRQ(stats.SWIMU)

	// Decode the fault cause (timed register reads: SR then AR).
	if _, err := m.k.BusRead32(stats.SWIMU, s.regAddr(imu.RegSR)); err != nil {
		return err
	}
	ar, err := m.k.BusRead32(stats.SWIMU, s.regAddr(imu.RegAR))
	if err != nil {
		return err
	}
	obj := uint8(ar >> 24)
	addr := ar & 0x00ffffff

	o, ok := s.objects[obj]
	if !ok {
		return fmt.Errorf("%w: coprocessor touched unmapped object %d (addr %#x)", ErrBadObject, obj, addr)
	}
	if addr >= o.Size {
		return fmt.Errorf("%w: object %d addr %#x size %#x", ErrOutOfBounds, obj, addr, o.Size)
	}
	vpage := addr / m.pageSz

	faultFrame, err := s.pageIn(o, vpage)
	if err != nil {
		return err
	}

	// Sequential prefetch (§3.3 "speculative actions as prefetching"):
	// while servicing the fault, also bring in the following pages of the
	// same object — each one turns a future fault (interrupt + decode +
	// restart) into a batched page load. The just-faulted page is pinned
	// so speculation can never displace it.
	if s.cfg.PrefetchPages > 0 {
		m.frames[faultFrame].Pinned = true
		for p := 1; p <= s.cfg.PrefetchPages; p++ {
			vp := vpage + uint32(p)
			if vp >= o.Pages(m.pageSz) || s.resident(o.ID, vp) {
				continue
			}
			if _, err := s.pageIn(o, vp); err != nil {
				if errors.Is(err, ErrNoFrames) {
					break
				}
				return err
			}
			s.Count.Prefetches++
			m.Count.Prefetches++
		}
		m.frames[faultFrame].Pinned = false
	}

	// Restart the stalled translation (timed CR write).
	return m.k.BusWrite32(stats.SWIMU, s.regAddr(imu.RegCR), imu.CRRestart)
}

// pageKey packs an (object, page) pair for the written-back set.
func pageKey(obj uint8, vpage uint32) uint64 {
	return uint64(obj)<<32 | uint64(vpage)
}

// needsLoad decides whether binding (o, vpage) requires a data copy from
// user space: always for readable objects; for output objects only once
// the page holds previously written-back partial results.
func (s *Session) needsLoad(o *Object, vpage uint32) bool {
	if o.Dir != Out {
		return true
	}
	return s.writtenBack[pageKey(o.ID, vpage)]
}

// pageIn makes (o, vpage) resident, evicting (or stealing) if necessary,
// and returns the frame used.
func (s *Session) pageIn(o *Object, vpage uint32) (int, error) {
	f := s.freeFrame(true)
	if f < 0 {
		victim, owner := s.m.victim(s)
		if victim < 0 {
			return -1, ErrNoFrames
		}
		if err := owner.evict(victim); err != nil {
			return -1, err
		}
		if owner != s {
			s.Count.Steals++
			s.m.Count.Steals++
		}
		f = victim
	}
	return f, s.mapPage(o, vpage, f, s.needsLoad(o, vpage))
}

// resident reports whether (obj, vpage) currently occupies one of the
// session's frames.
func (s *Session) resident(obj uint8, vpage uint32) bool {
	m := s.m
	for i := range m.frames {
		fr := &m.frames[i]
		if fr.Occupied && !fr.Pinned && fr.Sess == s.id && fr.Obj == obj && fr.VPage == vpage {
			return true
		}
	}
	return false
}

// Finish performs the end-of-operation service of §3.3: every dirty page
// the session still holds is copied back to user space, and its slice of
// the translation table is cleared for the next execution.
func (s *Session) Finish() error {
	m := s.m
	m.k.ChargeIRQ(stats.SWOS)
	for f := range m.frames {
		fr := &m.frames[f]
		if !fr.Occupied || fr.Pinned || fr.Sess != s.id {
			continue
		}
		if err := m.k.BusWrite32(stats.SWIMU, s.regAddr(imu.RegTLBIdx), uint32(f)); err != nil {
			return err
		}
		hi, err := m.k.BusRead32(stats.SWIMU, s.regAddr(imu.RegTLBHi))
		if err != nil {
			return err
		}
		if hi&(1<<8) != 0 { // dirty
			o, ok := s.objects[fr.Obj]
			if !ok {
				return fmt.Errorf("%w: frame %d owned by unknown object %d", ErrBadObject, f, fr.Obj)
			}
			if err := s.copyOut(o, fr.VPage, f); err != nil {
				return err
			}
			s.Count.PagesFlushed++
			m.Count.PagesFlushed++
		}
		m.frames[f] = Frame{}
	}
	m.u.InvalidateSession(s.id)
	m.k.ChargeCPU(stats.SWOS, m.k.Costs.WakeProcess)
	return nil
}

// pageSpan returns the user address and byte length (word-padded) of page
// vpage of object o.
func (s *Session) pageSpan(o *Object, vpage uint32) (uint32, int) {
	off := vpage * s.m.pageSz
	n := s.m.pageSz
	if off+n > o.Size {
		n = o.Size - off
	}
	// Word-pad: user buffers are allocated with 8-byte padding, so the
	// rounded copy stays in bounds.
	n = (n + 3) &^ 3
	return o.Base + off, int(n)
}

// copyIn moves one page of o from user space into frame f.
func (s *Session) copyIn(o *Object, vpage uint32, f int) error {
	m := s.m
	src, n := s.pageSpan(o, vpage)
	if n == 0 {
		return nil
	}
	if s.cfg.BounceBuffer {
		// The naive module staged every page through a kernel buffer:
		// two transfers per movement (§4.1).
		if err := m.k.BusCopy(stats.SWDP, m.bounce, src, n); err != nil {
			return err
		}
		src = m.bounce
	}
	if err := m.k.BusCopy(stats.SWDP, m.frameAddr(f), src, n); err != nil {
		return err
	}
	s.Count.PagesLoaded++
	m.Count.PagesLoaded++
	s.Count.BytesIn += uint64(n)
	m.Count.BytesIn += uint64(n)
	return nil
}

// copyOut moves frame f back to page vpage of o in user space.
func (s *Session) copyOut(o *Object, vpage uint32, f int) error {
	m := s.m
	dst, n := s.pageSpan(o, vpage)
	if n == 0 {
		return nil
	}
	src := m.frameAddr(f)
	if s.cfg.BounceBuffer {
		if err := m.k.BusCopy(stats.SWDP, m.bounce, src, n); err != nil {
			return err
		}
		src = m.bounce
	}
	if err := m.k.BusCopy(stats.SWDP, dst, src, n); err != nil {
		return err
	}
	s.Count.BytesOut += uint64(n)
	m.Count.BytesOut += uint64(n)
	return nil
}
