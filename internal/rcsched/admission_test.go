package rcsched

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// overloadedTrace is a stream offered well past the two-slot board's
// service capacity (~1k jobs/s): a 0.15 ms mean gap is ~6.7k jobs/s, so
// without admission control the queue grows without bound over the run and
// late jobs drag every later one past its deadline.
func overloadedTrace(t *testing.T, n int) []Job {
	t.Helper()
	return mustTrace(t, n, 4242, 0.15e9)
}

// TestAdmitModeValidation pins the Config.Admit vocabulary: the empty
// string and the three named modes are accepted, anything else is a
// serve-time error naming the bad mode.
func TestAdmitModeValidation(t *testing.T) {
	jobs := mustTrace(t, 2, 1, 0.1e9)
	for _, admit := range []string{"", AdmitOff, AdmitReject, AdmitDegrade} {
		if _, err := Serve(Config{Slots: 2, Admit: admit}, jobs); err != nil {
			t.Errorf("admit mode %q rejected: %v", admit, err)
		}
	}
	if _, err := Serve(Config{Slots: 2, Admit: "shed"}, jobs); err == nil {
		t.Error("unknown admit mode accepted")
	}
}

// TestAdmissionOffBitIdentical pins the compatibility contract written into
// Config.Admit's documentation: with admission control off — whether by
// the empty default or the explicit mode name — the serving run is
// bit-identical, per-job metrics included, and every job reports the
// Admitted disposition.
func TestAdmissionOffBitIdentical(t *testing.T) {
	jobs := overloadedTrace(t, 16)
	def, err := Serve(Config{Policy: "slack", Slots: 2, Stage: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Serve(Config{Policy: "slack", Slots: 2, Stage: true, Admit: AdmitOff}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, off) {
		t.Fatalf("explicit %q mode diverges from the default:\n default %+v\n off     %+v",
			AdmitOff, def, off)
	}
	if def.Admitted != len(jobs) || def.Rejected != 0 || def.Degraded != 0 {
		t.Fatalf("admission off should admit everything: %d admitted, %d rejected, %d degraded",
			def.Admitted, def.Rejected, def.Degraded)
	}
	for i := range def.Jobs {
		if def.Jobs[i].Disposition != Admitted {
			t.Fatalf("job %d disposition %q with admission off", def.Jobs[i].ID, def.Jobs[i].Disposition)
		}
	}
	if def.Completed != len(jobs) || def.ShedRate != 0 {
		t.Fatalf("admission off: completed %d of %d, shed rate %v", def.Completed, len(jobs), def.ShedRate)
	}
}

// TestAdmissionRejectImprovesGoodput is the robustness property the
// admission controller exists for: on a stream offered far past capacity,
// shedding provably-late jobs yields strictly more deadline-met completions
// per second than serving everything, and bounds the p99 latency of the
// jobs it does admit below the admit-everything tail.
func TestAdmissionRejectImprovesGoodput(t *testing.T) {
	jobs := overloadedTrace(t, 32)
	run := func(admit string) *Report {
		t.Helper()
		rep, err := Serve(Config{Policy: "slack", Slots: 2, Admit: admit}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	off := run(AdmitOff)
	rej := run(AdmitReject)
	if rej.Rejected == 0 {
		t.Fatal("overloaded stream shed nothing — the estimator never fired")
	}
	if rej.Rejected == len(jobs) {
		t.Fatal("admission rejected the entire stream — the estimator is not optimistic")
	}
	if rej.GoodputRPS <= off.GoodputRPS {
		t.Errorf("admission goodput %.1f jobs/s not above admit-everything's %.1f",
			rej.GoodputRPS, off.GoodputRPS)
	}
	if rej.P99AdmittedPs >= off.P99AdmittedPs {
		t.Errorf("admitted-jobs p99 %.3f ms not below admit-everything's %.3f ms",
			rej.P99AdmittedPs/1e9, off.P99AdmittedPs/1e9)
	}
	// Rejected jobs carry the rejection instant and nothing else.
	for i := range rej.Jobs {
		j := &rej.Jobs[i]
		if j.Disposition != Rejected {
			continue
		}
		if j.Slot != -1 || j.LatencyPs != 0 || j.ExecPs != 0 {
			t.Fatalf("rejected job %d carries serving metrics: %+v", j.ID, j)
		}
		if j.DonePs < j.ArrivalPs {
			t.Fatalf("rejected job %d decided before it arrived", j.ID)
		}
	}
}

// TestAdmissionDegradeServesEverything pins the degraded path: in degrade
// mode nothing is shed outright — provably-late jobs run on the timed-SW
// baseline, sequentially, at the calibrated estimate — so every job
// completes and the degraded ones report the SW service model's timing.
func TestAdmissionDegradeServesEverything(t *testing.T) {
	jobs := overloadedTrace(t, 24)
	rep, err := Serve(Config{Policy: "slack", Slots: 2, Admit: AdmitDegrade}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 0 {
		t.Fatalf("degrade mode rejected %d jobs", rep.Rejected)
	}
	if rep.Degraded == 0 {
		t.Fatal("overloaded stream degraded nothing — the estimator never fired")
	}
	if rep.Completed != len(jobs) {
		t.Fatalf("degrade mode completed %d of %d", rep.Completed, len(jobs))
	}
	prevDone := 0.0
	for i := range rep.Jobs {
		j := &rep.Jobs[i]
		if j.Disposition != Degraded {
			continue
		}
		if j.Slot != -1 {
			t.Fatalf("degraded job %d claims shell slot %d", j.ID, j.Slot)
		}
		if want := SWEstPs(j.App, j.Size); math.Abs(j.ExecPs-want) > 1e-6 {
			t.Fatalf("degraded job %d exec %.3f ms, SW estimate %.3f ms", j.ID, j.ExecPs/1e9, want/1e9)
		}
		// The SW server is sequential: degraded executions never overlap.
		if start := j.DonePs - j.ExecPs; start < prevDone {
			t.Fatalf("degraded job %d starts %.3f ms before the SW server is free (%.3f ms)",
				j.ID, start/1e9, prevDone/1e9)
		}
		prevDone = j.DonePs
	}
}

// TestAdmissionAllRejectedZeroAggregates is the aggregate edge-case
// regression: a stream whose every deadline is already unmeetable at
// admission leaves an empty completion set, and every divided aggregate —
// p99 included, which used to index lats[-1] and panic — must come back an
// explicit, finite zero.
func TestAdmissionAllRejectedZeroAggregates(t *testing.T) {
	jobs := mustTrace(t, 6, 7, 0.1e9)
	for i := range jobs {
		jobs[i].DeadlinePs = jobs[i].ArrivalPs + 1 // 1 ps budget: provably unmeetable
	}
	rep, err := Serve(Config{Slots: 2, Admit: AdmitReject}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != len(jobs) || rep.Completed != 0 {
		t.Fatalf("want everything rejected: %d rejected, %d completed", rep.Rejected, rep.Completed)
	}
	for name, v := range map[string]float64{
		"MeanWaitPs":    rep.MeanWaitPs,
		"MeanLatencyPs": rep.MeanLatencyPs,
		"P99LatencyPs":  rep.P99LatencyPs,
		"P99AdmittedPs": rep.P99AdmittedPs,
		"MissRate":      rep.MissRate,
		"UtilMean":      rep.UtilMean,
		"MakespanPs":    rep.MakespanPs,
		"AchievedRPS":   rep.AchievedRPS,
		"GoodputRPS":    rep.GoodputRPS,
	} {
		if v != 0 || math.IsNaN(v) {
			t.Errorf("%s = %v on an all-rejected run, want explicit 0", name, v)
		}
	}
	if rep.ShedRate != 1 {
		t.Errorf("ShedRate = %v, want 1", rep.ShedRate)
	}
}

// TestAdmissionNeverShedsDeadlineFreeJobs pins the documented exception:
// jobs without a service-level objective are always admitted, however
// saturated the board is.
func TestAdmissionNeverShedsDeadlineFreeJobs(t *testing.T) {
	jobs := overloadedTrace(t, 16)
	for i := range jobs {
		jobs[i].DeadlinePs = 0
	}
	rep, err := Serve(Config{Slots: 2, Admit: AdmitReject}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 0 || rep.Admitted != len(jobs) {
		t.Fatalf("deadline-free stream shed jobs: %d rejected of %d", rep.Rejected, len(jobs))
	}
}

// TestAdmissionSchedulerEquivalence extends the differential guarantee to
// the admission controller: with shedding active on an overloaded stream,
// the lockstep reference and the event-driven default must produce the
// same report bit for bit — dispositions, shed instants and aggregates
// included.
func TestAdmissionSchedulerEquivalence(t *testing.T) {
	jobs := overloadedTrace(t, 20)
	for _, admit := range []string{AdmitReject, AdmitDegrade} {
		run := func(s sim.Scheduler) *Report {
			t.Helper()
			prev := sim.SetDefaultScheduler(s)
			defer sim.SetDefaultScheduler(prev)
			rep, err := Serve(Config{Policy: "edf", Slots: 2, Stage: true, Admit: admit}, jobs)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		lock := run(sim.Lockstep)
		evnt := run(sim.EventDriven)
		if !reflect.DeepEqual(lock, evnt) {
			t.Fatalf("%s: schedulers disagree:\n lockstep %+v\n event    %+v", admit, lock, evnt)
		}
	}
}
