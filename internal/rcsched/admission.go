package rcsched

import "fmt"

// Disposition is the admission-control outcome of one job: what the
// scheduler decided to do with it the instant it arrived.
type Disposition string

const (
	// Admitted jobs are served on a shell slot — the only disposition that
	// exists with admission control off.
	Admitted Disposition = "admitted"
	// Rejected jobs are shed at admission: their deadline was provably
	// unmeetable even under the most optimistic schedule, so serving them
	// would only have delayed jobs that could still make it.
	Rejected Disposition = "rejected"
	// Degraded jobs run on the timed-SW baseline path instead of a shell
	// slot: served — the user still gets an answer — but at software speed,
	// off the contended reconfigurable hardware.
	Degraded Disposition = "degraded"
)

// Admission-control modes for Config.Admit.
const (
	// AdmitOff admits every job unconditionally (the pre-admission-control
	// serving behaviour, bit-identical to it).
	AdmitOff = "off"
	// AdmitReject sheds provably-late jobs at admission.
	AdmitReject = "reject"
	// AdmitDegrade sends provably-late jobs to the timed-SW baseline path.
	AdmitDegrade = "degrade"
)

// admitMode canonicalises an admission-control mode name.
func admitMode(name string) (string, error) {
	switch name {
	case "", AdmitOff:
		return AdmitOff, nil
	case AdmitReject:
		return AdmitReject, nil
	case AdmitDegrade:
		return AdmitDegrade, nil
	}
	return "", fmt.Errorf("rcsched: unknown admission mode %q (want off, reject or degrade)", name)
}

// bestCaseDonePs is the admission estimator: the earliest instant job j
// could possibly complete given the scheduler's current state. It is built
// to be optimistic — every uncertain term is resolved in the job's favour —
// so an estimate past the deadline proves the deadline unmeetable, while an
// estimate inside it promises nothing.
//
//   - freePs holds, per slot, the earliest instant the slot could accept a
//     new job (now when free; reconfiguration end plus the waiting job's
//     estimate when configuring; launch instant plus the cost-model
//     estimate when executing).
//   - Jobs already queued ahead of j are placed greedily onto the
//     earliest-free slot at their bare execution estimate — no
//     reconfiguration charged, the optimistic floor for the backlog they
//     impose.
//   - j itself then takes the earliest remaining slot and pays configPs
//     (zero when its bitstream is resident, staged, or shared with a job
//     ahead that could leave it resident — otherwise the full stream).
func bestCaseDonePs(nowPs float64, freePs []float64, queued []*Job,
	est func(*Job) float64, j *Job, configPs float64) float64 {
	f := append([]float64(nil), freePs...)
	for i := range f {
		if f[i] < nowPs {
			f[i] = nowPs
		}
	}
	earliest := func() int {
		b := 0
		for i := 1; i < len(f); i++ {
			if f[i] < f[b] {
				b = i
			}
		}
		return b
	}
	for _, q := range queued {
		f[earliest()] += est(q)
	}
	s := earliest()
	return f[s] + configPs + est(j)
}
