package rcsched

import "testing"

// TestSJFRanksByModelledCost is the regression test for the SJF misranking
// bugfix: the policy must rank by the modelled per-app cost, not the raw
// input size. An ADPCM job does ~4x the output traffic of an IDEA job of
// the same input size (and holds its core far longer per byte), so on this
// queue the raw-size ranking picks the 1 KB ADPCM job even though the 2 KB
// IDEA job is ~5x cheaper — the pre-fix code fails here.
func TestSJFRanksByModelledCost(t *testing.T) {
	queue := []*Job{
		{ID: 0, App: "adpcm", Size: 1024, coreName: "adpcmdec"},
		{ID: 1, App: "idea", Size: 2048, coreName: "idea"},
	}
	if queue[0].Cost() <= queue[1].Cost() {
		t.Fatalf("cost model broken: adpcm-1024 cost %d not above idea-2048 cost %d",
			queue[0].Cost(), queue[1].Cost())
	}
	slots := []SlotState{{Free: true}}
	j, _, ok := (SJF{}).Pick(queue, slots, nil)
	if !ok || j != 1 {
		t.Fatalf("SJF picked queue[%d] (ok=%v), want the cheaper idea-2048 at queue[1]", j, ok)
	}

	// Exact cost ties keep arrival order: 104 B of IDEA and 112 B of
	// vecadd both cost 2912 eighth-cycles.
	tie := []*Job{
		{ID: 0, App: "idea", Size: 104, coreName: "idea"},
		{ID: 1, App: "vecadd", Size: 112, coreName: "vecadd"},
	}
	if tie[0].Cost() != tie[1].Cost() {
		t.Fatalf("tie fixture out of date: costs %d vs %d", tie[0].Cost(), tie[1].Cost())
	}
	if j, _, ok := (SJF{}).Pick(tie, slots, nil); !ok || j != 0 {
		t.Fatalf("SJF tie-break picked queue[%d], want arrival order (queue[0])", j)
	}
}

// TestChooseFree pins the single free-slot scan's explicit preference
// order: resident match > staged match > empty slot > any free slot, with
// the lowest index winning inside each kind and -1 when nothing is free.
func TestChooseFree(t *testing.T) {
	cases := []struct {
		name  string
		slots []SlotState
		want  string
		slot  int
		kind  matchKind
	}{
		{"empty beats resident", []SlotState{
			{Free: true, Resident: "vecadd"},
			{Free: true, Resident: ""},
		}, "idea", 1, matchEmpty},
		{"resident match beats empty", []SlotState{
			{Free: true, Resident: ""},
			{Free: true, Resident: "idea"},
		}, "idea", 1, matchResident},
		{"staged match beats empty", []SlotState{
			{Free: true, Resident: ""},
			{Free: true, Resident: "vecadd", Staged: "idea"},
		}, "idea", 1, matchStaged},
		{"resident beats staged", []SlotState{
			{Free: true, Resident: "vecadd", Staged: "idea"},
			{Free: true, Resident: "idea"},
		}, "idea", 1, matchResident},
		{"all busy", []SlotState{
			{Free: false, Resident: "idea"},
			{Free: false},
		}, "idea", -1, matchNone},
		{"multi-match determinism: lowest index", []SlotState{
			{Free: true, Resident: "idea"},
			{Free: true, Resident: "idea"},
		}, "idea", 0, matchResident},
		{"multi-empty determinism", []SlotState{
			{Free: false},
			{Free: true},
			{Free: true},
		}, "idea", 1, matchEmpty},
		{"no preference without a want", []SlotState{
			{Free: true, Resident: "vecadd"},
			{Free: true, Resident: "idea"},
		}, "", 0, matchAny},
	}
	for _, c := range cases {
		slot, kind := chooseFree(c.slots, c.want)
		if slot != c.slot || kind != c.kind {
			t.Errorf("%s: chooseFree = (%d, %d), want (%d, %d)", c.name, slot, kind, c.slot, c.kind)
		}
	}
}

// TestEDFPick pins the earliest-deadline-first dispatch order, including
// the tie and no-deadline rules.
func TestEDFPick(t *testing.T) {
	queue := []*Job{
		{ID: 0, App: "idea", Size: 1024, DeadlinePs: 9e9, coreName: "idea"},
		{ID: 1, App: "vecadd", Size: 1024, DeadlinePs: 3e9, coreName: "vecadd"},
		{ID: 2, App: "adpcm", Size: 1024, DeadlinePs: 3e9, coreName: "adpcmdec"},
	}
	slots := []SlotState{{Free: true, Resident: "idea"}}
	if j, s, ok := (EDF{}).Pick(queue, slots, nil); !ok || j != 1 || s != 0 {
		t.Fatalf("EDF picked (%d,%d,%v), want the earliest deadline with arrival tie-break", j, s, ok)
	}
	// Jobs without a deadline run after every deadlined job.
	queue = []*Job{
		{ID: 0, App: "idea", Size: 1024, coreName: "idea"},
		{ID: 1, App: "vecadd", Size: 1024, DeadlinePs: 30e9, coreName: "vecadd"},
	}
	if j, _, ok := (EDF{}).Pick(queue, slots, nil); !ok || j != 1 {
		t.Fatalf("EDF picked queue[%d], want the only deadlined job", j)
	}
}

// TestSlackPick pins the deadline-aware affinity decisions: take the cheap
// resident/staged match, except when that would make an urgent job miss a
// deadline it could still meet — and never sacrifice the match for a job
// that is already doomed.
func TestSlackPick(t *testing.T) {
	est := func(j *Job) float64 { return float64(j.Cost()) / 8 * 41666.0 } // ~24 MHz
	ctx := &PickCtx{
		NowPs:      0,
		ExecEstPs:  est,
		ReconfigPs: func(*Job) float64 { return 2e9 },
	}
	slots := []SlotState{{Free: true, Resident: "vecadd"}}

	// Cheap match with no urgency conflict: the vecadd job dispatches even
	// though the idea job arrived first.
	queue := []*Job{
		{ID: 0, App: "idea", Size: 1024, DeadlinePs: 60e9, coreName: "idea"},
		{ID: 1, App: "vecadd", Size: 1024, DeadlinePs: 50e9, coreName: "vecadd"},
	}
	if j, s, ok := (Slack{}).Pick(queue, slots, ctx); !ok || j != 1 || s != 0 {
		t.Fatalf("slack picked (%d,%d,%v), want the zero-config vecadd match", j, s, ok)
	}

	// Urgent and savable: the idea job's deadline cannot survive waiting
	// behind the big vecadd job (est ~4.4 ms + reconfig 2 ms + exec
	// ~0.15 ms > 3 ms), but dispatched now it meets it — affinity yields.
	queue = []*Job{
		{ID: 0, App: "idea", Size: 1024, DeadlinePs: 3e9, coreName: "idea"},
		{ID: 1, App: "vecadd", Size: 1024 * 1024, DeadlinePs: 50e9, coreName: "vecadd"},
	}
	if j, _, ok := (Slack{}).Pick(queue, slots, ctx); !ok || j != 0 {
		t.Fatalf("slack picked queue[%d], want the urgent idea job over the cheap match", j)
	}

	// Urgent but doomed (deadline already unmeetable even if dispatched
	// now): do not trigger the reconfiguration, keep the cheap match.
	queue[0].DeadlinePs = 1e9 // < reconfig alone
	if j, _, ok := (Slack{}).Pick(queue, slots, ctx); !ok || j != 1 {
		t.Fatalf("slack picked queue[%d], want the cheap match over a doomed job", j)
	}

	// Among several cheap matches, the most urgent one dispatches.
	slots = []SlotState{{Free: true, Resident: "vecadd"}, {Free: true, Resident: "idea"}}
	queue = []*Job{
		{ID: 0, App: "vecadd", Size: 1024, DeadlinePs: 50e9, coreName: "vecadd"},
		{ID: 1, App: "idea", Size: 1024, DeadlinePs: 5e9, coreName: "idea"},
	}
	if j, s, ok := (Slack{}).Pick(queue, slots, ctx); !ok || j != 1 || s != 1 {
		t.Fatalf("slack picked (%d,%d,%v), want the more urgent of the two cheap matches", j, s, ok)
	}

	// A staged match counts as cheap.
	slots = []SlotState{{Free: true, Resident: "vecadd", Staged: "idea"}}
	queue = []*Job{{ID: 0, App: "idea", Size: 1024, DeadlinePs: 50e9, coreName: "idea"}}
	if j, s, ok := (Slack{}).Pick(queue, slots, ctx); !ok || j != 0 || s != 0 {
		t.Fatalf("slack picked (%d,%d,%v), want the staged match", j, s, ok)
	}
}
