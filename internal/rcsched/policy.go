package rcsched

// SlotState is the scheduler-visible state of one shell slot when a
// dispatch decision is made.
type SlotState struct {
	Free     bool   // no member attached and no reconfiguration in flight
	Resident string // core currently configured into the slot ("" if empty)
	Staged   string // core pre-staged into the slot's staging buffer ("" if none)
}

// PickCtx is the run context a dispatch decision may consult: the current
// instant and the scheduler's cost model, so deadline-aware policies can
// estimate whether a choice makes an urgent job miss. Policies that ignore
// it must behave identically when it is nil (unit tests construct bare
// queues).
type PickCtx struct {
	NowPs float64
	// ExecEstPs estimates a job's execution time from the calibrated cost
	// model (paging and fault service excluded).
	ExecEstPs func(*Job) float64
	// ReconfigPs is the full configuration-port cost of streaming a job's
	// bitstream (what dispatching it onto a non-matching slot pays).
	ReconfigPs func(*Job) float64
}

// Policy picks which queued job to dispatch next and onto which free slot.
// Pick sees the admission queue in arrival order (ties broken by job ID at
// trace generation), every slot's state and the run context; it must
// return a queue index and a free slot index, or ok == false to leave the
// queue waiting. All bundled policies are work-conserving: they always
// dispatch when a job and a free slot exist.
type Policy interface {
	Name() string
	Pick(queue []*Job, slots []SlotState, ctx *PickCtx) (jobIdx, slot int, ok bool)
}

// NewPolicy resolves a scheduling policy by name ("fcfs", "sjf",
// "affinity", "edf", "slack").
func NewPolicy(name string) (Policy, bool) {
	switch name {
	case "", "fcfs":
		return FCFS{}, true
	case "sjf":
		return SJF{}, true
	case "affinity", "bitstream-affinity":
		return Affinity{}, true
	case "edf":
		return EDF{}, true
	case "slack":
		return Slack{}, true
	}
	return nil, false
}

// lowestFree returns the lowest-indexed free slot, or -1.
func lowestFree(slots []SlotState) int {
	for i, s := range slots {
		if s.Free {
			return i
		}
	}
	return -1
}

// matchKind ranks how well a free slot suits a job's bitstream; higher is
// cheaper to dispatch onto.
type matchKind int

const (
	matchNone     matchKind = iota // nothing free
	matchAny                       // a free slot holding some other resident core
	matchEmpty                     // a free, never-configured slot (streams either way, evicts nothing)
	matchStaged                    // the job's bitstream is already pre-staged (commit latency only)
	matchResident                  // the job's core is already resident (zero configuration traffic)
)

// chooseFree is the single free-slot scan every placement decision goes
// through, with one explicit preference order: a resident match beats a
// staged match beats an empty slot beats any other free slot; within one
// kind the lowest-indexed slot wins, so multi-match decisions are
// deterministic. It returns the chosen slot (-1 if nothing is free) and
// the match kind that chose it.
func chooseFree(slots []SlotState, want string) (int, matchKind) {
	best, kind := -1, matchNone
	for i, s := range slots {
		if !s.Free {
			continue
		}
		k := matchAny
		switch {
		case want != "" && s.Resident == want:
			k = matchResident
		case want != "" && s.Staged == want:
			k = matchStaged
		case s.Resident == "":
			k = matchEmpty
		}
		if k > kind {
			best, kind = i, k
		}
	}
	return best, kind
}

// FCFS dispatches jobs strictly in arrival order onto the lowest-indexed
// free slot, oblivious to what is resident there — the baseline every
// reconfiguration-aware policy is measured against.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Policy.
func (FCFS) Pick(queue []*Job, slots []SlotState, _ *PickCtx) (int, int, bool) {
	if len(queue) == 0 {
		return 0, 0, false
	}
	slot := lowestFree(slots)
	if slot < 0 {
		return 0, 0, false
	}
	return 0, slot, true
}

// SJF (shortest job first) dispatches the queued job with the smallest
// modelled service demand — Job.Cost, the per-app cost weight times the
// input size — onto the lowest-indexed free slot. Ranking by raw input
// size misranks mixed queues: an ADPCM job moves four times the output
// traffic of an IDEA job of the same input size and occupies its core far
// longer, so a "smaller" ADPCM request can be the longest job waiting.
// Ties keep arrival order.
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "sjf" }

// Pick implements Policy.
func (SJF) Pick(queue []*Job, slots []SlotState, _ *PickCtx) (int, int, bool) {
	if len(queue) == 0 {
		return 0, 0, false
	}
	slot := lowestFree(slots)
	if slot < 0 {
		return 0, 0, false
	}
	best := 0
	for i, j := range queue[1:] {
		if j.Cost() < queue[best].Cost() {
			best = i + 1
		}
	}
	return best, slot, true
}

// Affinity is the bitstream-affinity policy: it avoids partial
// reconfiguration by preferring (job, slot) pairs whose application is
// already resident in the slot. Jobs are scanned in arrival order and the
// first one whose bitstream matches a free slot dispatches there without
// any configuration-port traffic; when nothing matches, it falls back to
// FCFS order through chooseFree's preference ladder — a slot holding the
// head job's pre-staged bitstream first, then a still-empty slot (which
// must be configured either way) over evicting a resident core.
type Affinity struct{}

// Name implements Policy.
func (Affinity) Name() string { return "affinity" }

// Pick implements Policy.
func (Affinity) Pick(queue []*Job, slots []SlotState, _ *PickCtx) (int, int, bool) {
	if len(queue) == 0 {
		return 0, 0, false
	}
	for i, j := range queue {
		if s, kind := chooseFree(slots, j.coreName); kind == matchResident {
			return i, s, true
		}
	}
	// No affinity match: FCFS order, best remaining placement for the head.
	s, kind := chooseFree(slots, queue[0].coreName)
	if kind == matchNone {
		return 0, 0, false
	}
	return 0, s, true
}

// deadlineBefore reports whether a's deadline is strictly more urgent than
// b's; jobs without a deadline sort after every deadlined job.
func deadlineBefore(a, b *Job) bool {
	switch {
	case a.DeadlinePs <= 0:
		return false
	case b.DeadlinePs <= 0:
		return true
	default:
		return a.DeadlinePs < b.DeadlinePs
	}
}

// edfIndex returns the queue index of the most urgent job (earliest
// deadline; ties and deadline-free jobs keep arrival order).
func edfIndex(queue []*Job) int {
	best := 0
	for i, j := range queue[1:] {
		if deadlineBefore(j, queue[best]) {
			best = i + 1
		}
	}
	return best
}

// EDF (earliest deadline first) dispatches the queued job with the
// soonest service-level deadline onto the best free slot for its
// bitstream; jobs without deadlines run after every deadlined job, in
// arrival order. EDF is deadline-optimal on an identical-slot abstraction
// but pays every reconfiguration FCFS would.
type EDF struct{}

// Name implements Policy.
func (EDF) Name() string { return "edf" }

// Pick implements Policy.
func (EDF) Pick(queue []*Job, slots []SlotState, _ *PickCtx) (int, int, bool) {
	if len(queue) == 0 {
		return 0, 0, false
	}
	j := edfIndex(queue)
	s, kind := chooseFree(slots, queue[j].coreName)
	if kind == matchNone {
		return 0, 0, false
	}
	return j, s, true
}

// Slack is the deadline-aware affinity policy: take the cheap match — the
// most urgent queued job whose bitstream is resident (zero config) or
// pre-staged (commit latency only) in a free slot — unless doing so would
// make the most urgent queued job miss a deadline it would otherwise have
// met, in which case the urgent job dispatches instead, EDF-style. Both
// halves of that test use the calibrated cost model: the urgent job only
// wins the slot if (a) dispatched now it still meets its deadline, and
// (b) queued behind the cheap job's estimated completion it does not — a
// job that is doomed either way must not trigger a reconfiguration storm
// that makes every other job late too (the classic EDF overload
// collapse).
type Slack struct{}

// Name implements Policy.
func (Slack) Name() string { return "slack" }

// Pick implements Policy.
func (Slack) Pick(queue []*Job, slots []SlotState, ctx *PickCtx) (int, int, bool) {
	if len(queue) == 0 {
		return 0, 0, false
	}
	// The cheap match: among jobs whose bitstream is already resident or
	// staged in a free slot, the most urgent one.
	cheapJob, cheapSlot := -1, -1
	for i, j := range queue {
		if s, kind := chooseFree(slots, j.coreName); kind >= matchStaged {
			if cheapJob < 0 || deadlineBefore(j, queue[cheapJob]) {
				cheapJob, cheapSlot = i, s
			}
		}
	}
	urgent := edfIndex(queue)
	if cheapJob < 0 {
		// No cheap match anywhere: serve the most urgent job, best placement.
		s, kind := chooseFree(slots, queue[urgent].coreName)
		if kind == matchNone {
			return 0, 0, false
		}
		return urgent, s, true
	}
	if cheapJob == urgent || ctx == nil || queue[urgent].DeadlinePs <= 0 {
		return cheapJob, cheapSlot, true
	}
	// Would the cheap dispatch make the urgent job miss? Only if it takes
	// the last free slot: otherwise the urgent job dispatches this same
	// instant on the next pick.
	free := 0
	for _, s := range slots {
		if s.Free {
			free++
		}
	}
	if free > 1 {
		return cheapJob, cheapSlot, true
	}
	needPs := ctx.ExecEstPs(queue[urgent])
	us, ukind := chooseFree(slots, queue[urgent].coreName)
	if ukind < matchStaged {
		needPs += ctx.ReconfigPs(queue[urgent])
	}
	deadline := queue[urgent].DeadlinePs
	savable := ctx.NowPs+needPs <= deadline
	missesBehindCheap := ctx.NowPs+ctx.ExecEstPs(queue[cheapJob])+needPs > deadline
	if savable && missesBehindCheap {
		return urgent, us, true
	}
	return cheapJob, cheapSlot, true
}
