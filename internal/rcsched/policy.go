package rcsched

// SlotState is the scheduler-visible state of one shell slot when a
// dispatch decision is made.
type SlotState struct {
	Free     bool   // no member attached and no reconfiguration in flight
	Resident string // core currently configured into the slot ("" if empty)
}

// Policy picks which queued job to dispatch next and onto which free slot.
// Pick sees the admission queue in arrival order (ties broken by job ID at
// trace generation) and every slot's state; it must return a queue index
// and a free slot index, or ok == false to leave the queue waiting. All
// bundled policies are work-conserving: they always dispatch when a job and
// a free slot exist.
type Policy interface {
	Name() string
	Pick(queue []*Job, slots []SlotState) (jobIdx, slot int, ok bool)
}

// NewPolicy resolves a scheduling policy by name ("fcfs", "sjf",
// "affinity").
func NewPolicy(name string) (Policy, bool) {
	switch name {
	case "", "fcfs":
		return FCFS{}, true
	case "sjf":
		return SJF{}, true
	case "affinity", "bitstream-affinity":
		return Affinity{}, true
	}
	return nil, false
}

// lowestFree returns the lowest-indexed free slot, or -1.
func lowestFree(slots []SlotState) int {
	for i, s := range slots {
		if s.Free {
			return i
		}
	}
	return -1
}

// FCFS dispatches jobs strictly in arrival order onto the lowest-indexed
// free slot, oblivious to what is resident there — the baseline every
// reconfiguration-aware policy is measured against.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Policy.
func (FCFS) Pick(queue []*Job, slots []SlotState) (int, int, bool) {
	if len(queue) == 0 {
		return 0, 0, false
	}
	slot := lowestFree(slots)
	if slot < 0 {
		return 0, 0, false
	}
	return 0, slot, true
}

// SJF (shortest job first) dispatches the queued job with the smallest
// input size — the scheduler's work estimate — onto the lowest-indexed free
// slot. Ties keep arrival order.
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "sjf" }

// Pick implements Policy.
func (SJF) Pick(queue []*Job, slots []SlotState) (int, int, bool) {
	if len(queue) == 0 {
		return 0, 0, false
	}
	slot := lowestFree(slots)
	if slot < 0 {
		return 0, 0, false
	}
	best := 0
	for i, j := range queue[1:] {
		if j.Size < queue[best].Size {
			best = i + 1
		}
	}
	return best, slot, true
}

// Affinity is the bitstream-affinity policy: it avoids partial
// reconfiguration by preferring (job, slot) pairs whose application is
// already resident in the slot. Jobs are scanned in arrival order and the
// first one whose bitstream matches a free slot dispatches there without
// any configuration-port traffic; when nothing matches, it falls back to
// FCFS order, preferring a still-empty slot (which must be configured
// either way) over evicting a resident core.
type Affinity struct{}

// Name implements Policy.
func (Affinity) Name() string { return "affinity" }

// Pick implements Policy.
func (Affinity) Pick(queue []*Job, slots []SlotState) (int, int, bool) {
	if len(queue) == 0 {
		return 0, 0, false
	}
	for i, j := range queue {
		for s, st := range slots {
			if st.Free && st.Resident != "" && st.Resident == j.coreName {
				return i, s, true
			}
		}
	}
	// No affinity match: FCFS, but burn an empty slot before a resident one.
	for s, st := range slots {
		if st.Free && st.Resident == "" {
			return 0, s, true
		}
	}
	slot := lowestFree(slots)
	if slot < 0 {
		return 0, 0, false
	}
	return 0, slot, true
}
