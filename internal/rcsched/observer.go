package rcsched

// Dispatch paths reported to an Observer: how the slot acquired the job's
// coprocessor at the moment the policy paired them.
const (
	// DispatchResident: the coprocessor was already resident — zero-config.
	DispatchResident = "resident"
	// DispatchStaged: a pre-staged bitstream covers the job, so the swap
	// costs the staged commit instead of a full configuration stream.
	DispatchStaged = "staged"
	// DispatchStream: the slot pays a full configuration stream.
	DispatchStream = "stream"
)

// Observer receives the serving loop's decision points as they happen:
// admission sheds, policy dispatches and job completions. It exists for
// recording (the scenario package's record/replay harness) and MUST be
// passive — Serve hands it values after every state change is already
// committed, and a nil Observer run is bit-identical to an observed one.
// Serve calls the methods from its own goroutine only; a fleet run attaches
// an independent Observer per board (see fleet.Config.Observe).
type Observer interface {
	// JobShed fires when admission control rejects or degrades a job; jr
	// is the job's final report (neither disposition touches a slot).
	JobShed(jr JobReport)
	// JobDispatched fires when the policy pairs a queued job with slot,
	// before any configuration time is paid. path is DispatchResident,
	// DispatchStaged or DispatchStream; atPs is the decision instant.
	JobDispatched(jobID, slot int, atPs float64, path string)
	// JobFinished fires when a slot-served job's output has verified
	// against the golden algorithm; jr is the job's final report.
	JobFinished(jr JobReport)
}
