package rcsched

import (
	"repro/internal/copro/adpcmdec"
	"repro/internal/copro/ideacp"
)

// The scheduler's work model. A job's input size alone is a poor estimate
// of its service demand: an ADPCM job moves five bytes through the
// coprocessor port for every input byte (one packed code byte in, four PCM
// bytes out) and burns DecodeCycles per nibble, while an IDEA job of the
// same input size moves two bytes and occupies the cipher pipeline for
// ComputeCycles per 8-byte block. The weights below fold both the port
// traffic and the calibrated compute occupancy of each core model into a
// per-input-byte cost, expressed in eighths of a shell cycle so the
// fractional per-byte compute shares stay exact integers.

// costWeight is app's modelled cost per input byte in eighth shell cycles:
// 8 x (translated bytes moved per input byte) + (compute cycles per input
// byte, times 8).
func costWeight(app string) int64 {
	switch app {
	case "idea":
		// 1 B in + 1 B out per input byte; ComputeCycles per 8-byte block.
		return 8*2 + ideacp.ComputeCycles
	case "adpcm":
		// 1 B in + 4 B out per input byte; two nibbles at DecodeCycles each.
		return 8*5 + 8*2*adpcmdec.DecodeCycles
	case "vecadd":
		// Size is per-vector bytes: 2 B in + 1 B out per vector byte; one
		// add per 4-byte element.
		return 8*3 + 8/4
	}
	// Unknown applications fall back to raw traffic of one byte per byte,
	// reducing to the old size ranking.
	return 8
}

// Cost returns the job's modelled service demand in eighth shell cycles —
// the quantity SJF ranks by and the deadline policies estimate with.
func (j *Job) Cost() int64 { return int64(j.Size) * costWeight(j.App) }

// ExecEstPs converts a job's modelled cost into picoseconds at the given
// shell clock. It deliberately ignores paging and fault service — it is a
// ranking and admission estimate, not a simulation.
func ExecEstPs(app string, size int, shellHz int64) float64 {
	cost := (&Job{App: app, Size: size}).Cost()
	return float64(cost) / 8 * 1e12 / float64(shellHz)
}

// Timed-SW service model: the per-input-byte picosecond cost of running an
// application on the ARM core instead of its coprocessor, calibrated from
// the pure-software baseline runs (`vimsim -mode sw` on the EPXA4: IDEA
// ~6.1 µs/B, ADPCM ~2.2 µs/B, vecadd ~0.24 µs/B — all linear in the input).
// Admission control uses it to price the degraded path a shed job falls
// back to when its deadline is provably unmeetable on the shell slots.
func swPsPerByte(app string) float64 {
	switch app {
	case "idea":
		return 6_120_000
	case "adpcm":
		return 2_200_000
	case "vecadd":
		return 240_000
	}
	// Unknown applications price like the most expensive known one, so a
	// mispriced degrade never looks cheaper than it is.
	return 6_120_000
}

// SWEstPs estimates a job's execution time on the timed-SW baseline path in
// picoseconds. Like ExecEstPs it is a service model, not a simulation: the
// degraded path runs the golden algorithm and charges this calibrated time.
func SWEstPs(app string, size int) float64 {
	return float64(size) * swPsPerByte(app)
}

// BaseBudgetPs is the fixed scheduling allowance inside every service-level
// budget: headroom for queueing and configuration-port time that even the
// smallest job needs before its own execution starts, sized so the pinned
// saturated streams produce a mixed (neither empty nor total) miss
// population at DefaultBudgetFactor.
const BaseBudgetPs = 8e9 // 8 ms

// DefaultBudgetFactor scales the per-app service-level budget jobs receive
// from Trace; SetBudgets re-derives deadlines at another factor.
const DefaultBudgetFactor = 1.0

// BudgetPs is the service-level budget of one (app, size) request at the
// given slack factor: factor x (BaseBudgetPs + the modelled execution
// estimate at the default shell clock).
func BudgetPs(app string, size int, factor float64) float64 {
	return factor * (BaseBudgetPs + ExecEstPs(app, size, DefaultShellHz))
}

// SetBudgets re-derives every job's deadline as arrival plus its per-app
// service-level budget at the given slack factor, so one generated trace
// can be served under several service objectives.
func SetBudgets(jobs []Job, factor float64) {
	for i := range jobs {
		jobs[i].DeadlinePs = jobs[i].ArrivalPs + BudgetPs(jobs[i].App, jobs[i].Size, factor)
	}
}
