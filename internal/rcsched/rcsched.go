// Package rcsched is the dynamic reconfiguration scheduler: the OS-level
// layer that turns the simulated board into a job-serving system, in the
// spirit of FOS and SYNERGY. It owns a fixed set of shell slots with a
// modelled partial-reconfiguration latency (derived from each coprocessor's
// bitstream size and a configurable configuration-port bandwidth), an
// admission queue of timestamped multi-user jobs carrying per-app
// service-level deadlines, and pluggable scheduling policies: FCFS,
// shortest-job-first (ranked by the calibrated cost model), bitstream-
// affinity (avoids reconfiguration by reusing resident coprocessors),
// earliest-deadline-first, and slack (deadline-aware affinity). With
// pre-staged reconfiguration enabled, the configuration port DMAs the next
// queued job's bitstream into a busy slot's staging buffer while the
// resident core executes, so the eventual swap costs a fixed commit window
// instead of the full stream.
//
// Serve drives the live core.Gang shell loop: sessions attach as jobs
// dispatch, coprocessors load and unload while their neighbours keep
// translating, faults and completions are serviced per channel, and every
// finished job's output is verified against the golden algorithm before its
// session detaches. Idle stretches between arrivals are bulk-skipped by the
// simulation kernel through a bounded-idle alarm ticker, so serving a
// sparse stream costs barely more host time than serving a dense one.
package rcsched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/imu"
	"repro/internal/kernel"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/vim"
)

// DefaultShellHz is the shell clock plan every tenant is recompiled
// against, matching the sessions layer's shared-shell regime.
const DefaultShellHz = 24_000_000

// DefaultConfigBW is the configuration-port bandwidth in bytes per second
// used to turn a bitstream's size into partial-reconfiguration time.
const DefaultConfigBW = 1_000_000

// StageCommitCycles is the fixed cost, in shell cycles, of committing a
// pre-staged bitstream into its slot: the double-buffered configuration
// swap plus the channel rebind — a few microseconds at the default shell
// clock, against the milliseconds a full configuration stream takes.
const StageCommitCycles = 64

// Config parameterises one serving run.
type Config struct {
	// Board is "EPXA1", "EPXA4" (default) or "EPXA10".
	Board string
	// Slots is the number of shell slots; it must be positive.
	Slots int
	// ShellHz is the shared shell clock (default DefaultShellHz).
	ShellHz int64
	// Policy is the scheduling policy: "fcfs" (default), "sjf",
	// "affinity", "edf" or "slack".
	Policy string
	// ConfigBW is the configuration-port bandwidth in bytes/second
	// (default DefaultConfigBW); a slot reconfiguration takes
	// len(bitstream)/ConfigBW seconds.
	ConfigBW float64
	// Stage enables pre-staged reconfiguration: while every slot is busy,
	// the configuration port DMAs the next queued job's bitstream into the
	// soonest-to-finish slot's staging buffer (one transfer in flight, at
	// ConfigBW), so a matching dispatch later pays only StageCommitCycles
	// instead of the full stream. With Stage false the serving loop is
	// bit-identical to the pre-staging scheduler.
	Stage bool
	// Admit selects the admission-control mode: "" or AdmitOff serves
	// every job on the shell slots (bit-identical to the
	// pre-admission-control scheduler), AdmitReject sheds jobs whose
	// deadline is provably unmeetable at admission, and AdmitDegrade sends
	// them to the timed-SW baseline path instead. Jobs without a deadline
	// are always admitted.
	Admit string
	// FramesPerSlot sizes each session's home partition (0 = page pool
	// divided evenly across slots).
	FramesPerSlot int
	// Budget bounds the whole run in simulation super-edges (0 = the
	// core.DefaultBudget).
	Budget int64
	// Observer, when non-nil, receives shed/dispatch/finish events as the
	// serving loop makes them. Observation is passive: a nil-Observer run
	// is bit-identical to an observed one.
	Observer Observer
	// Meter, when non-nil, receives the run's telemetry: live gauges
	// (queue depth, slot states) sampled on simulated time, and counters,
	// histograms and trace spans folded in from the final report. Like
	// Observer it is strictly passive — a nil-Meter run is bit-identical
	// to a metered one.
	Meter *telemetry.Meter
	// TracePid is the trace process ID the run's slot tracks render
	// under (0 means ServeBoardPid). A fleet assigns each board its own
	// pid so board tracks stay distinct in the merged trace.
	TracePid int
}

// JobReport is the measured outcome of one served job.
type JobReport struct {
	ID   int
	App  string
	Size int
	Slot int

	ArrivalPs   float64
	DeadlinePs  float64 // service-level objective (0 = none)
	QueueWaitPs float64 // arrival -> dispatch decision
	ReconfigPs  float64 // critical-path configuration time paid before launch
	ExecPs      float64 // launch -> completion (fault service included)
	LatencyPs   float64 // arrival -> completion
	LatenessPs  float64 // completion - deadline (negative = early; 0 without a deadline)
	DonePs      float64

	Reconfigured bool   // the slot's core changed for this job
	Staged       bool   // ... via a pre-staged commit rather than a full stream
	Missed       bool   // finished after its deadline
	Faults       uint64 // the job session's translation faults

	// Disposition is the admission decision: Admitted (served on a shell
	// slot; Slot/timing fields as above), Degraded (served by the timed-SW
	// baseline path; Slot is -1 and ExecPs is the calibrated SW estimate)
	// or Rejected (shed at admission; Slot is -1, DonePs is the rejection
	// instant and no latency is accumulated).
	Disposition Disposition
}

// Report aggregates one serving run.
type Report struct {
	Board    string
	Policy   string
	Slots    int
	ConfigBW float64

	Jobs []JobReport

	// MakespanPs is the hardware-timeline instant of the last completion.
	MakespanPs      float64
	TotalReconfigPs float64
	Reconfigs       int
	MeanWaitPs      float64
	MeanLatencyPs   float64

	// P99LatencyPs is the nearest-rank 99th-percentile latency over the
	// jobs that completed (rejected jobs never complete; an empty
	// completion set reports an explicit 0). P99AdmittedPs restricts the
	// percentile to slot-served jobs — the population whose tail admission
	// control promises to bound. Misses/MissRate count completed jobs that
	// finished after their deadline, over the completed jobs that carry
	// one. StageCommits and StageCancels count pre-staged bitstreams that
	// were swapped in, respectively discarded because their job dispatched
	// elsewhere.
	P99LatencyPs  float64
	P99AdmittedPs float64
	Misses        int
	MissRate      float64
	StageCommits  int
	StageCancels  int

	// Admission-control aggregates. Admitted/Degraded/Rejected partition
	// the stream by disposition (admission off: everything Admitted).
	// Completed counts jobs that produced output (admitted + degraded);
	// GoodJobs are completions that met their deadline (deadline-free
	// completions count — any finished job is useful work). OfferedRPS is
	// the stream's arrival rate over its arrival span; AchievedRPS and
	// GoodputRPS are completions, respectively deadline-met completions,
	// per second of makespan. ShedRate is the rejected fraction of the
	// whole stream. All rates are explicit zeros when their denominator is
	// empty (e.g. every job rejected).
	Admitted    int
	Degraded    int
	Rejected    int
	Completed   int
	GoodJobs    int
	OfferedRPS  float64
	AchievedRPS float64
	GoodputRPS  float64
	ShedRate    float64

	// SlotBusyPs is each slot's occupied time (reconfiguration + execution);
	// UtilMean is the mean busy fraction of the makespan across slots.
	SlotBusyPs []float64
	UtilMean   float64

	// SlotOccupancy breaks each slot's makespan into execution, configura-
	// tion and idle time. Unlike SlotBusyPs (dispatch decision to
	// completion, the utilisation definition the golden cells pin),
	// BusyPs counts launch to completion only, ConfigPs accrues exactly
	// where TotalReconfigPs does (so the per-slot values sum to it), and
	// IdlePs is the makespan remainder — the three shares sum to
	// MakespanPs per slot by construction. This is the single source of
	// truth the telemetry exporters read; nothing re-derives occupancy.
	SlotOccupancy []SlotShare

	// The software components of the shared timeline, in picoseconds.
	SWDPPs  float64
	SWIMUPs float64
	SWOSPs  float64

	VIM vim.Counters // aggregate across all job sessions
	IMU imu.Counters // aggregate across all channels

	// IMUCh is each channel's slice of the IMU counters, channel = slot.
	// (The engine's own scheduling tallies — edges, skips, heap ops — go
	// to the Meter only: they are scheduler-implementation detail, and
	// the two sim schedulers legitimately skip different edge counts, so
	// storing them here would break scheduler-equivalence comparisons.)
	IMUCh []imu.Counters
}

// SlotShare is one slot's occupancy breakdown (see Report.SlotOccupancy).
type SlotShare struct {
	BusyPs   float64 // launch -> completion (execution, fault service included)
	ConfigPs float64 // configuration-port time serialised on the slot
	IdlePs   float64 // makespan remainder
}

// alarm is a bounded-idle ticker on the shell clock: it never does anything
// at an edge, but while armed it advertises exactly the edges remaining
// until its deadline as inert, so the engine's bulk-skip can jump an
// otherwise idle board straight to the next job arrival or reconfiguration
// completion instead of delivering millions of no-op edges.
type alarm struct {
	dom *sim.Domain
	at  int64 // absolute shell-domain cycle of the deadline; -1 disarmed
}

func (a *alarm) Eval()   {}
func (a *alarm) Update() {}

// IdleEdges implements sim.BulkIdler: unbounded while disarmed, and while
// armed every edge strictly before the deadline. Claiming one edge fewer
// than remain matters: the engine delivers a normal edge at the wake
// horizon after consuming the claimed window, so advertising remain-1
// leaves that delivered edge landing exactly on the deadline — the same
// cycle at which the lockstep scheduler's run predicate stops — keeping the
// two schedulers bit-identical. Once the deadline is reached the alarm
// reads busy and the serving loop's predicate takes over.
func (a *alarm) IdleEdges() int64 {
	if a.at < 0 {
		return sim.IdleForever
	}
	rem := a.at - a.dom.Cycles() - 1
	if rem <= 0 {
		return 0
	}
	return rem
}

// SkipEdges implements sim.BulkIdler; skipped edges carry no alarm state.
func (a *alarm) SkipEdges(int64) {}

func (a *alarm) fired() bool { return a.at >= 0 && a.dom.Cycles() >= a.at }

// slotRun is the scheduler's runtime state for one shell slot.
type slotRun struct {
	mb            *core.Member
	job           int   // dispatched job index (valid while mb != nil or reconfiguring)
	reconfigUntil int64 // shell cycle at which reconfiguration completes; -1 idle
	stageReady    int64 // shell cycle at which the staging DMA completes; -1 none in flight
	stageCommit   bool  // the pending reconfigUntil is a staged commit, not a stream
	stagedHit     bool  // the current job attached via a staged commit
	dispatchPs    float64
	startPs       float64
	reconfigPs    float64
}

// Serve runs the job stream to completion under cfg and returns the
// measured report. Jobs may be given in any order; they are served by
// arrival time. Every job's output is verified against the golden
// algorithm before its session is detached — the scheduler must not trade
// correctness for utilisation.
func Serve(cfg Config, jobs []Job) (*Report, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("rcsched: empty job stream")
	}
	if cfg.Board == "" {
		cfg.Board = "EPXA4"
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("rcsched: shell needs a positive slot count, got %d", cfg.Slots)
	}
	if cfg.ShellHz == 0 {
		cfg.ShellHz = DefaultShellHz
	}
	if cfg.ConfigBW == 0 {
		cfg.ConfigBW = DefaultConfigBW
	}
	if cfg.ConfigBW < 0 {
		return nil, fmt.Errorf("rcsched: negative config-port bandwidth %g", cfg.ConfigBW)
	}
	if cfg.Budget == 0 {
		cfg.Budget = core.DefaultBudget
	}
	policy, ok := NewPolicy(cfg.Policy)
	if !ok {
		return nil, fmt.Errorf("rcsched: unknown policy %q", cfg.Policy)
	}
	admit, err := admitMode(cfg.Admit)
	if err != nil {
		return nil, err
	}
	spec, ok := platform.SpecByName(cfg.Board)
	if !ok {
		return nil, fmt.Errorf("rcsched: unknown board %q", cfg.Board)
	}
	board, err := platform.NewBoard(spec)
	if err != nil {
		return nil, err
	}
	pool := board.DP.Pages()
	frames := cfg.FramesPerSlot
	if frames == 0 {
		frames = pool / cfg.Slots
	}
	if frames < 2 || frames*cfg.Slots > pool {
		return nil, fmt.Errorf("rcsched: %d slots x %d frames does not fit the %d-frame pool",
			cfg.Slots, frames, pool)
	}
	apps, err := appTable(spec.Name)
	if err != nil {
		return nil, err
	}

	g, err := core.NewShellGang(board, vim.StaticPartition, cfg.ShellHz, cfg.Slots)
	if err != nil {
		return nil, err
	}
	dom := g.Shell.Dom
	eng := g.Shell.Eng
	al := &alarm{dom: dom, at: -1}
	dom.Attach(al)

	// Admission order: by arrival, ties by ID.
	order := append([]Job(nil), jobs...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].ArrivalPs != order[j].ArrivalPs {
			return order[i].ArrivalPs < order[j].ArrivalPs
		}
		return order[i].ID < order[j].ID
	})

	// Materialise every job's process image up front (untimed, like the
	// single-run experiments: the data already exists in user space).
	preps := make([]*prepared, len(order))
	for i := range order {
		a, ok := apps[order[i].App]
		if !ok {
			return nil, fmt.Errorf("rcsched: job %d: unknown application %q", order[i].ID, order[i].App)
		}
		order[i].coreName = a.coreName
		p, err := a.prepare(board.Kern, order[i].Size, rand.New(rand.NewSource(order[i].Seed)))
		if err != nil {
			return nil, fmt.Errorf("rcsched: job %d: %w", order[i].ID, err)
		}
		preps[i] = p
	}

	periodPs := dom.PeriodPs()
	cycleOf := func(ps float64) int64 { return int64(math.Ceil(ps / periodPs)) }
	reconfigEdges := func(img []byte) int64 {
		return int64(math.Ceil(float64(len(img)) / cfg.ConfigBW * 1e12 / periodPs))
	}

	rep := &Report{
		Board:         spec.Name,
		Policy:        policy.Name(),
		Slots:         cfg.Slots,
		ConfigBW:      cfg.ConfigBW,
		Jobs:          make([]JobReport, len(order)),
		SlotBusyPs:    make([]float64, cfg.Slots),
		SlotOccupancy: make([]SlotShare, cfg.Slots),
	}
	board.Kern.TL.Reset()
	board.IMU.ResetCounters()

	slots := make([]slotRun, cfg.Slots)
	for i := range slots {
		slots[i].reconfigUntil = -1
		slots[i].stageReady = -1
	}
	queue := []int{} // indices into order, admission order
	nextArrival := 0
	completed := 0
	budget := cfg.Budget
	irq := board.IMU.IRQRef()

	// Live gauges for the simulated-time sampler. The closures read loop
	// state the scheduler maintains anyway; a nil meter makes every call a
	// no-op, so the serving loop below never varies on the meter's
	// presence (only the Advance calls are gated, purely to skip the
	// NowPs computation they alone would need).
	meter := cfg.Meter
	meter.SetFunc("rcsched_queue_depth", func() float64 { return float64(len(queue)) })
	meter.SetFunc("rcsched_slots_busy", func() float64 {
		n := 0
		for s := range slots {
			if slots[s].mb != nil {
				n++
			}
		}
		return float64(n)
	})
	meter.SetFunc("rcsched_slots_config", func() float64 {
		n := 0
		for s := range slots {
			if slots[s].reconfigUntil >= 0 {
				n++
			}
		}
		return float64(n)
	})

	// estPs is the policy-visible execution estimate from the calibrated
	// cost model (the same ExecEstPs that derives deadline budgets, so the
	// estimate has a single definition); stageSlot is the one slot (if
	// any) holding an uncommitted pre-staged bitstream — the configuration
	// port runs a single staging DMA at a time.
	estPs := func(j *Job) float64 { return ExecEstPs(j.App, j.Size, cfg.ShellHz) }
	stageSlot := -1

	// Admission control. swFreePs is the timed-SW server's next free
	// instant — degraded jobs run the golden algorithm on the ARM core
	// sequentially at the calibrated SW estimate, off the contended shell
	// slots. unmeetable feeds the optimistic best-case estimator with the
	// live slot, stage and queue state: a true result proves the deadline
	// out of reach no matter what the policy does.
	swFreePs := 0.0
	unmeetable := func(ji int) bool {
		j := &order[ji]
		if admit == AdmitOff || j.DeadlinePs <= 0 {
			return false
		}
		nowPs := eng.NowPs()
		now := dom.Cycles()
		freePs := make([]float64, cfg.Slots)
		for s := range slots {
			switch {
			case slots[s].reconfigUntil >= 0:
				freePs[s] = float64(slots[s].reconfigUntil-now)*periodPs + nowPs +
					estPs(&order[slots[s].job])
			case slots[s].mb != nil:
				freePs[s] = slots[s].startPs + estPs(&order[slots[s].job])
			default:
				freePs[s] = nowPs
			}
		}
		configPs := float64(reconfigEdges(apps[j.App].img)) * periodPs
		for s := range slots {
			if g.Shell.Slots[s].Resident() == j.coreName || g.Shell.Slots[s].Staged() == j.coreName {
				configPs = 0 // the bitstream is already (or nearly) on board
				break
			}
		}
		queued := make([]*Job, len(queue))
		for i, qi := range queue {
			queued[i] = &order[qi]
			if order[qi].coreName == j.coreName {
				configPs = 0 // a job ahead may leave the bitstream resident
			}
		}
		return bestCaseDonePs(nowPs, freePs, queued, estPs, j, configPs) > j.DeadlinePs
	}
	// shed records a rejected or degraded job's report the instant the
	// decision is made; neither disposition ever touches a shell slot.
	shed := func(ji int) {
		j := &order[ji]
		jr := JobReport{
			ID: j.ID, App: j.App, Size: j.Size, Slot: -1,
			ArrivalPs: j.ArrivalPs, DeadlinePs: j.DeadlinePs,
		}
		nowPs := eng.NowPs()
		if admit == AdmitDegrade {
			start := nowPs
			if start < swFreePs {
				start = swFreePs
			}
			done := start + SWEstPs(j.App, j.Size)
			swFreePs = done
			jr.Disposition = Degraded
			jr.QueueWaitPs = start - j.ArrivalPs
			jr.ExecPs = done - start
			jr.LatencyPs = done - j.ArrivalPs
			jr.DonePs = done
			if j.DeadlinePs > 0 {
				jr.LatenessPs = done - j.DeadlinePs
				jr.Missed = jr.LatenessPs > 0
			}
		} else {
			jr.Disposition = Rejected
			jr.DonePs = nowPs
		}
		rep.Jobs[ji] = jr
		completed++
		if cfg.Observer != nil {
			cfg.Observer.JobShed(jr)
		}
	}

	// launch attaches job j's session onto slot s and starts it.
	launch := func(s, j int) error {
		a := apps[order[j].App]
		mb, err := g.AttachMember(s, a.img, frames, vim.Config{})
		if err != nil {
			return fmt.Errorf("rcsched: job %d attach: %w", order[j].ID, err)
		}
		for _, o := range preps[j].objs {
			if err := mb.Sess.MapObject(o.id, o.base, o.size, o.dir); err != nil {
				return fmt.Errorf("rcsched: job %d map: %w", order[j].ID, err)
			}
		}
		mb.Params = preps[j].params
		if err := g.Launch(mb); err != nil {
			return fmt.Errorf("rcsched: job %d launch: %w", order[j].ID, err)
		}
		slots[s].mb = mb
		slots[s].job = j
		slots[s].startPs = eng.NowPs()
		return nil
	}

	for completed < len(order) {
		now := dom.Cycles()
		if meter != nil {
			meter.Advance(eng.NowPs())
		}

		// Admit every job whose arrival instant has passed, deciding its
		// disposition on the spot: a provably-late job is shed (rejected,
		// or degraded to the timed-SW path) instead of joining a queue it
		// could never clear — overload sheds load instead of melting p99.
		for nextArrival < len(order) && cycleOf(order[nextArrival].ArrivalPs) <= now {
			ji := nextArrival
			nextArrival++
			if unmeetable(ji) {
				shed(ji)
				continue
			}
			queue = append(queue, ji)
		}
		if completed == len(order) {
			break // the tail of the stream was shed; nothing left to serve
		}

		// Complete due reconfigurations: the slot's new coprocessor is
		// configured — or its staged bitstream's commit window has elapsed,
		// in which case the stage swaps in now — attach and start the
		// waiting job.
		for s := range slots {
			if slots[s].reconfigUntil >= 0 && slots[s].reconfigUntil <= now {
				slots[s].reconfigUntil = -1
				if slots[s].stageCommit {
					slots[s].stageCommit = false
					slots[s].stageReady = -1
					stageSlot = -1 // buffer consumed; the port is free again
					if err := g.CommitStage(s); err != nil {
						return nil, err
					}
				}
				if err := launch(s, slots[s].job); err != nil {
					return nil, err
				}
			}
		}

		// Service pending hardware events before dispatching: a completion
		// frees a slot this same instant.
		if *irq {
			finished, serviced, err := g.ServicePending()
			if err != nil {
				return nil, err
			}
			if !serviced {
				return nil, fmt.Errorf("rcsched: IRQ with no serviceable channel (SR0=%#x)", board.IMU.SR())
			}
			// Let restarts and acknowledges propagate (requests are consumed
			// at the next edge), mirroring the gang loop.
			eng.Step()
			eng.Step()
			budget -= 2
			for _, mb := range finished {
				s := mb.Sess.ID()
				j := slots[s].job
				if err := finishJob(rep, board.Kern, &order[j], preps[j], &slots[s], mb, j); err != nil {
					return nil, err
				}
				if cfg.Observer != nil {
					cfg.Observer.JobFinished(rep.Jobs[j])
				}
				if err := g.DetachMember(mb); err != nil {
					return nil, err
				}
				slots[s].mb = nil
				completed++
				// Drain the slot's completion handshake (CP_FIN falls once
				// the core observes CP_START low) so a follow-on job cannot
				// see a stale completion.
				port := g.Shell.Slots[s].Port()
				n, err := eng.RunUntil(func() bool { return !port.CP().Fin }, 256)
				if err != nil {
					return nil, fmt.Errorf("rcsched: slot %d completion handshake did not drain: %v", s, err)
				}
				budget -= n
			}
			continue
		}

		// Dispatch: keep pairing queued jobs with free slots until the
		// policy declines.
		ctx := &PickCtx{
			NowPs:     eng.NowPs(),
			ExecEstPs: estPs,
			ReconfigPs: func(j *Job) float64 {
				return float64(reconfigEdges(apps[j.App].img)) * periodPs
			},
		}
		// slotStates is the policy's view: a staging DMA still in flight is
		// invisible (advertising it would let a policy mistake a
		// barely-started transfer for a cheap dispatch), but the scheduler
		// itself still commits a partial transfer when a matching job lands
		// on the slot — always at most the cost of streaming from scratch.
		slotStates := func() []SlotState {
			states := make([]SlotState, cfg.Slots)
			for s := range slots {
				states[s] = SlotState{
					Free:     slots[s].mb == nil && slots[s].reconfigUntil < 0,
					Resident: g.Shell.Slots[s].Resident(),
				}
				if slots[s].stageReady >= 0 && slots[s].stageReady <= now {
					states[s].Staged = g.Shell.Slots[s].Staged()
				}
			}
			return states
		}
		for len(queue) > 0 {
			states := slotStates()
			qjobs := make([]*Job, len(queue))
			for i, j := range queue {
				qjobs[i] = &order[j]
			}
			qi, s, ok := policy.Pick(qjobs, states, ctx)
			if !ok {
				break
			}
			j := queue[qi]
			queue = append(queue[:qi], queue[qi+1:]...)
			slots[s].job = j
			slots[s].dispatchPs = eng.NowPs()
			slots[s].stagedHit = false
			if cfg.Observer != nil {
				path := DispatchStream
				switch {
				case g.Shell.Slots[s].Resident() == order[j].coreName:
					path = DispatchResident
				case cfg.Stage && g.Shell.Slots[s].Staged() == order[j].coreName:
					path = DispatchStaged
				}
				cfg.Observer.JobDispatched(order[j].ID, s, slots[s].dispatchPs, path)
			}
			if g.Shell.Slots[s].Resident() == order[j].coreName {
				// Zero-config dispatch; a staged bitstream on this slot (for
				// some later job) stays parked in the buffer.
				slots[s].reconfigPs = 0
				if err := launch(s, j); err != nil {
					return nil, err
				}
				continue
			}
			if cfg.Stage && g.Shell.Slots[s].Staged() == order[j].coreName {
				// Staged hit: the bitstream is already (or nearly) in the
				// slot's staging buffer, so the swap costs the remaining DMA
				// time plus the fixed commit window instead of a full stream.
				// The port stays claimed (stageSlot) until the commit
				// consumes the buffer — an in-flight transfer must not free
				// it for a concurrent second DMA.
				ready := slots[s].stageReady
				if ready < now {
					ready = now
				}
				until := ready + StageCommitCycles
				// A transfer that has barely started can be beaten by
				// streaming from scratch; the port controller finishes
				// whichever way is faster, so a staged hit never costs more
				// than a full stream.
				if full := now + reconfigEdges(apps[order[j].App].img); until > full {
					until = full
				}
				slots[s].reconfigUntil = until
				slots[s].reconfigPs = float64(until-now) * periodPs
				slots[s].stageCommit = true
				slots[s].stagedHit = true
				rep.StageCommits++
				rep.TotalReconfigPs += slots[s].reconfigPs
				rep.SlotOccupancy[s].ConfigPs += slots[s].reconfigPs
				continue
			}
			if cfg.Stage && g.Shell.Slots[s].Staged() != "" {
				// The staged bitstream's job went elsewhere and a different
				// application needs this slot: abort the transfer and pay the
				// full stream. Resident neighbours are untouched.
				if err := g.CancelStage(s); err != nil {
					return nil, err
				}
				slots[s].stageReady = -1
				stageSlot = -1
				rep.StageCancels++
			}
			// The demand stream about to start owns the configuration port:
			// an uncommitted staging DMA still in flight anywhere else is
			// aborted — one transfer on the port at a time.
			if cfg.Stage && stageSlot >= 0 && !slots[stageSlot].stageCommit &&
				slots[stageSlot].stageReady > now {
				if err := g.CancelStage(stageSlot); err != nil {
					return nil, err
				}
				slots[stageSlot].stageReady = -1
				stageSlot = -1
				rep.StageCancels++
			}
			// Partial reconfiguration: empty the slot (the IMU channel
			// unbinds; neighbours keep translating) and model the
			// configuration-port time from the bitstream size.
			if err := g.BeginReconfig(s); err != nil {
				return nil, err
			}
			edges := reconfigEdges(apps[order[j].App].img)
			slots[s].reconfigUntil = now + edges
			slots[s].reconfigPs = float64(edges) * periodPs
			rep.Reconfigs++
			rep.TotalReconfigPs += slots[s].reconfigPs
			rep.SlotOccupancy[s].ConfigPs += slots[s].reconfigPs
		}

		// Retarget a stale stage: when the job a bitstream was staged for
		// dispatched elsewhere and no queued job wants it any more, discard
		// it so the port can pre-stage something useful; a staged bitstream
		// some queued job still matches — or one a dispatched job is about
		// to commit — stays parked.
		if cfg.Stage && stageSlot >= 0 && !slots[stageSlot].stageCommit && len(queue) > 0 {
			staged := g.Shell.Slots[stageSlot].Staged()
			wanted := false
			for _, qj := range queue {
				if order[qj].coreName == staged {
					wanted = true
					break
				}
			}
			if !wanted {
				if err := g.CancelStage(stageSlot); err != nil {
					return nil, err
				}
				slots[stageSlot].stageReady = -1
				stageSlot = -1
				rep.StageCancels++
			}
		}

		// Pre-stage: every slot is committed but jobs are waiting, so put
		// the configuration port to work behind the resident cores' backs.
		// The target is the busy slot predicted (by the cost model) to free
		// up soonest; the bitstream is the one the policy would dispatch
		// onto that slot if it were free right now — asked by handing the
		// policy a hypothetical slot table — so the stage anticipates the
		// policy's own next decision rather than blind arrival order. One
		// transfer on the port at a time: a staging DMA only starts while
		// no demand stream (or staged-hit residual) is flowing.
		portBusy := false
		for s := range slots {
			if slots[s].reconfigUntil >= 0 {
				portBusy = true
				break
			}
		}
		if cfg.Stage && stageSlot < 0 && !portBusy && len(queue) > 0 {
			target := -1
			bestFin := 0.0
			for s := range slots {
				if slots[s].mb == nil {
					continue // free or already reconfiguring for a dispatched job
				}
				fin := slots[s].startPs + estPs(&order[slots[s].job])
				if target < 0 || fin < bestFin {
					target, bestFin = s, fin
				}
			}
			if target >= 0 {
				hyp := slotStates()
				hyp[target].Free = true
				qjobs := make([]*Job, len(queue))
				for i, j := range queue {
					qjobs[i] = &order[j]
				}
				qi, hs, ok := policy.Pick(qjobs, hyp, ctx)
				if ok && hs == target {
					next := &order[queue[qi]]
					if g.Shell.Slots[target].Resident() != next.coreName {
						if err := g.BeginStage(target, apps[next.App].img); err != nil {
							return nil, err
						}
						slots[target].stageReady = now + reconfigEdges(apps[next.App].img)
						stageSlot = target
					}
				}
			}
		}

		// Arm the alarm for the earliest timed event: the next arrival or
		// the next reconfiguration completion.
		deadline := int64(-1)
		if nextArrival < len(order) {
			deadline = cycleOf(order[nextArrival].ArrivalPs)
		}
		running := false
		for s := range slots {
			if slots[s].reconfigUntil >= 0 && (deadline < 0 || slots[s].reconfigUntil < deadline) {
				deadline = slots[s].reconfigUntil
			}
			if slots[s].mb != nil {
				running = true
			}
		}
		if deadline < 0 && !running {
			return nil, fmt.Errorf("rcsched: stalled with %d of %d jobs served", completed, len(order))
		}
		al.at = deadline

		n, err := eng.RunUntil(func() bool { return *irq || al.fired() }, budget)
		budget -= n
		if err != nil {
			return nil, fmt.Errorf("rcsched: %v (budget exhausted serving job stream)", err)
		}
	}

	rep.VIM = g.M.Count
	rep.IMU = board.IMU.Count
	rep.SWDPPs = board.Kern.TL.Ps(stats.SWDP)
	rep.SWIMUPs = board.Kern.TL.Ps(stats.SWIMU)
	rep.SWOSPs = board.Kern.TL.Ps(stats.SWOS)
	// Aggregates run over the *completed* population — rejected jobs never
	// produced output, so folding their zero latencies in would flatter
	// every mean and percentile. Each divided quantity keeps an explicit
	// zero when its denominator is empty (all-rejected runs included);
	// with admission off every job completes and the arithmetic reduces
	// bit-for-bit to the pre-admission-control aggregates.
	wait, lat, lastArrivalPs := 0.0, 0.0, 0.0
	var lats, admLats []float64
	deadlined := 0
	for i := range rep.Jobs {
		j := &rep.Jobs[i]
		if j.ArrivalPs > lastArrivalPs {
			lastArrivalPs = j.ArrivalPs
		}
		switch j.Disposition {
		case Rejected:
			rep.Rejected++
			continue
		case Degraded:
			rep.Degraded++
		default:
			rep.Admitted++
			admLats = append(admLats, j.LatencyPs)
		}
		rep.Completed++
		wait += j.QueueWaitPs
		lat += j.LatencyPs
		lats = append(lats, j.LatencyPs)
		if j.DonePs > rep.MakespanPs {
			rep.MakespanPs = j.DonePs
		}
		if j.DeadlinePs > 0 {
			deadlined++
			if j.Missed {
				rep.Misses++
			} else {
				rep.GoodJobs++
			}
		} else {
			rep.GoodJobs++ // no SLO: any completion is useful work
		}
	}
	if rep.Completed > 0 {
		rep.MeanWaitPs = wait / float64(rep.Completed)
		rep.MeanLatencyPs = lat / float64(rep.Completed)
	}
	if rep.MakespanPs > 0 {
		util := 0.0
		for _, b := range rep.SlotBusyPs {
			util += b / rep.MakespanPs
		}
		rep.UtilMean = util / float64(cfg.Slots)
		rep.AchievedRPS = float64(rep.Completed) * 1e12 / rep.MakespanPs
		rep.GoodputRPS = float64(rep.GoodJobs) * 1e12 / rep.MakespanPs
	}
	// Deadline and admission aggregates: nearest-rank p99 over the
	// completed population and its admitted subset, miss-rate over the
	// completed deadlined jobs, offered load over the arrival span and the
	// shed fraction of the whole stream.
	sort.Float64s(lats)
	sort.Float64s(admLats)
	rep.P99LatencyPs = stats.NearestRank(lats, 0.99)
	rep.P99AdmittedPs = stats.NearestRank(admLats, 0.99)
	if deadlined > 0 {
		rep.MissRate = float64(rep.Misses) / float64(deadlined)
	}
	rep.ShedRate = float64(rep.Rejected) / float64(len(order))
	if len(order) > 1 && lastArrivalPs > 0 {
		rep.OfferedRPS = float64(len(order)-1) * 1e12 / lastArrivalPs
	}
	// Idle time is the makespan remainder, making the three occupancy
	// shares sum to MakespanPs per slot by construction.
	for s := range rep.SlotOccupancy {
		o := &rep.SlotOccupancy[s]
		o.IdlePs = rep.MakespanPs - o.BusyPs - o.ConfigPs
	}
	rep.IMUCh = make([]imu.Counters, cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		rep.IMUCh[s] = board.IMU.ChCounters(s)
	}
	if meter != nil {
		meter.Advance(eng.NowPs())
		meterReport(meter, rep, eng.Stats())
		pid := cfg.TracePid
		if pid == 0 {
			pid = ServeBoardPid
		}
		TraceReport(meter.Trace(), rep, pid)
	}
	return rep, nil
}

// finishJob verifies a completed job's output against the golden algorithm
// and records its metrics.
func finishJob(rep *Report, k *kernel.Kernel, job *Job, p *prepared, sr *slotRun, mb *core.Member, idx int) error {
	got, err := k.ReadUser(p.outAddr, len(p.want))
	if err != nil {
		return err
	}
	for i := range got {
		if got[i] != p.want[i] {
			return fmt.Errorf("rcsched: job %d (%s, %d B) output diverges from the golden algorithm at byte %d",
				job.ID, job.App, job.Size, i)
		}
	}
	s := mb.Sess.ID()
	done := mb.DonePs()
	jr := JobReport{
		ID:           job.ID,
		App:          job.App,
		Size:         job.Size,
		Slot:         s,
		ArrivalPs:    job.ArrivalPs,
		DeadlinePs:   job.DeadlinePs,
		QueueWaitPs:  sr.dispatchPs - job.ArrivalPs,
		ReconfigPs:   sr.reconfigPs,
		ExecPs:       done - sr.startPs,
		LatencyPs:    done - job.ArrivalPs,
		DonePs:       done,
		Reconfigured: sr.reconfigPs > 0,
		Staged:       sr.stagedHit,
		Faults:       mb.Sess.Count.Faults,
		Disposition:  Admitted,
	}
	if job.DeadlinePs > 0 {
		jr.LatenessPs = done - job.DeadlinePs
		jr.Missed = jr.LatenessPs > 0
	}
	rep.Jobs[idx] = jr
	rep.SlotBusyPs[s] += done - sr.dispatchPs
	rep.SlotOccupancy[s].BusyPs += done - sr.startPs
	return nil
}
