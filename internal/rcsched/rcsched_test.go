package rcsched

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// mustTrace is the test-side Trace wrapper for parameters that are valid
// by construction.
func mustTrace(t *testing.T, n int, seed int64, meanGapPs float64) []Job {
	t.Helper()
	jobs, err := Trace(n, seed, meanGapPs)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestTraceDeterminism pins the trace generator's contract: the same
// (n, seed, gap) triple replays bit-for-bit, a different seed diverges,
// arrivals are monotone, IDEA sizes are whole blocks and every job carries
// a service-level deadline past its arrival.
func TestTraceDeterminism(t *testing.T) {
	a := mustTrace(t, 24, 7, 0.2e9)
	b := mustTrace(t, 24, 7, 0.2e9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical trace parameters produced different streams")
	}
	c := mustTrace(t, 24, 8, 0.2e9)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
	last := 0.0
	for _, j := range a {
		if j.ArrivalPs < last {
			t.Fatalf("job %d arrives before its predecessor", j.ID)
		}
		last = j.ArrivalPs
		if j.Size%8 != 0 {
			t.Fatalf("job %d size %d is not a whole IDEA block count", j.ID, j.Size)
		}
		if j.DeadlinePs <= j.ArrivalPs {
			t.Fatalf("job %d deadline %.3f ms not past its arrival %.3f ms",
				j.ID, j.DeadlinePs/1e9, j.ArrivalPs/1e9)
		}
	}
}

// TestTraceRejectsDegenerateInputs pins the validation bugfix: a
// non-positive job count or a negative mean gap must be an error, not an
// empty or absurd stream.
func TestTraceRejectsDegenerateInputs(t *testing.T) {
	if _, err := Trace(0, 1, 0.1e9); err == nil {
		t.Error("zero-job trace accepted")
	}
	if _, err := Trace(-1, 1, 0.1e9); err == nil {
		t.Error("negative job count accepted")
	}
	if _, err := Trace(4, 1, -1); err == nil {
		t.Error("negative mean gap accepted")
	}
	if jobs, err := Trace(4, 1, 0); err != nil || len(jobs) != 4 {
		t.Errorf("zero gap (burst arrival) should be legal: %v, %d jobs", err, len(jobs))
	}
}

// TestPolicyPick exercises the dispatch decisions on synthetic queues.
func TestPolicyPick(t *testing.T) {
	queue := []*Job{
		{ID: 0, App: "idea", Size: 4096, coreName: "idea"},
		{ID: 1, App: "vecadd", Size: 1024, coreName: "vecadd"},
		{ID: 2, App: "adpcm", Size: 2048, coreName: "adpcmdecode"},
	}
	slots := []SlotState{
		{Free: false, Resident: "idea"},
		{Free: true, Resident: "adpcmdecode"},
	}

	if j, s, ok := (FCFS{}).Pick(queue, slots, nil); !ok || j != 0 || s != 1 {
		t.Fatalf("FCFS picked (%d,%d,%v), want head of queue on lowest free slot", j, s, ok)
	}
	if j, s, ok := (SJF{}).Pick(queue, slots, nil); !ok || j != 1 || s != 1 {
		t.Fatalf("SJF picked (%d,%d,%v), want the cheapest job", j, s, ok)
	}
	// Affinity: slot 1 has adpcmdecode resident, job 2 is the match.
	if j, s, ok := (Affinity{}).Pick(queue, slots, nil); !ok || j != 2 || s != 1 {
		t.Fatalf("affinity picked (%d,%d,%v), want the resident-matching job", j, s, ok)
	}
	// No match anywhere: affinity prefers an empty slot over evicting a
	// resident core.
	slots = []SlotState{
		{Free: true, Resident: "vecadd"},
		{Free: true, Resident: ""},
	}
	queue = queue[:1] // idea only
	if j, s, ok := (Affinity{}).Pick(queue, slots, nil); !ok || j != 0 || s != 1 {
		t.Fatalf("affinity picked (%d,%d,%v), want FCFS onto the empty slot", j, s, ok)
	}
	// Nothing free: every policy declines.
	slots = []SlotState{{Free: false}}
	for _, p := range []Policy{FCFS{}, SJF{}, Affinity{}, EDF{}, Slack{}} {
		if _, _, ok := p.Pick(queue, slots, nil); ok {
			t.Fatalf("%s dispatched onto a busy board", p.Name())
		}
	}
}

// TestServeAllPoliciesComplete runs a shared 16-job trace under every
// policy and slot count — the deadline pair and a pre-staging variant
// included — and checks the report invariants: every job completes
// exactly once with verified output (Serve fails otherwise), waits and
// latencies are consistent, and utilisation is a fraction.
func TestServeAllPoliciesComplete(t *testing.T) {
	jobs := mustTrace(t, 16, 4242, 0.15e9)
	for _, c := range []struct {
		policy string
		stage  bool
	}{
		{"fcfs", false}, {"sjf", false}, {"affinity", false},
		{"edf", false}, {"slack", false},
		{"affinity", true}, {"slack", true},
	} {
		policy := c.policy
		if c.stage {
			policy += "+stage"
		}
		for _, slots := range []int{1, 2, 4} {
			rep, err := Serve(Config{Policy: c.policy, Slots: slots, Stage: c.stage}, jobs)
			if err != nil {
				t.Fatalf("%s/%d slots: %v", policy, slots, err)
			}
			if len(rep.Jobs) != len(jobs) {
				t.Fatalf("%s/%d slots: served %d of %d jobs", policy, slots, len(rep.Jobs), len(jobs))
			}
			seen := map[int]bool{}
			for _, j := range rep.Jobs {
				if seen[j.ID] {
					t.Fatalf("%s/%d slots: job %d served twice", policy, slots, j.ID)
				}
				seen[j.ID] = true
				if j.QueueWaitPs < 0 || j.ExecPs <= 0 || j.DonePs <= 0 {
					t.Fatalf("%s/%d slots: job %d has inconsistent metrics %+v", policy, slots, j.ID, j)
				}
				if j.LatencyPs < j.ExecPs {
					t.Fatalf("%s/%d slots: job %d latency %v below exec %v", policy, slots, j.ID, j.LatencyPs, j.ExecPs)
				}
				if j.Slot < 0 || j.Slot >= slots {
					t.Fatalf("%s/%d slots: job %d on slot %d", policy, slots, j.ID, j.Slot)
				}
			}
			if rep.UtilMean <= 0 || rep.UtilMean > 1 {
				t.Fatalf("%s/%d slots: utilisation %v out of range", policy, slots, rep.UtilMean)
			}
			if rep.MakespanPs <= 0 {
				t.Fatalf("%s/%d slots: empty makespan", policy, slots)
			}
		}
	}
}

// TestAffinityReducesReconfiguration is the headline property of the
// bitstream-affinity policy: on the same stream and board it must spend
// less configuration-port time (and fewer reconfigurations) than FCFS.
func TestAffinityReducesReconfiguration(t *testing.T) {
	jobs := mustTrace(t, 24, 4242, 0.15e9)
	fcfs, err := Serve(Config{Policy: "fcfs", Slots: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	aff, err := Serve(Config{Policy: "affinity", Slots: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if aff.Reconfigs >= fcfs.Reconfigs {
		t.Fatalf("affinity reconfigured %d times, FCFS %d — no saving", aff.Reconfigs, fcfs.Reconfigs)
	}
	if aff.TotalReconfigPs >= fcfs.TotalReconfigPs {
		t.Fatalf("affinity spent %.3f ms reconfiguring, FCFS %.3f ms — no saving",
			aff.TotalReconfigPs/1e9, fcfs.TotalReconfigPs/1e9)
	}
}

// TestServeSchedulerEquivalence runs one serving cell under the lockstep
// reference scheduler and the event-driven default and requires the whole
// report — per-job metrics included — to agree bit for bit, extending the
// repository's differential guarantee to the serving layer (the alarm
// ticker's bulk-skip windows must be provably inert).
func TestServeSchedulerEquivalence(t *testing.T) {
	jobs := mustTrace(t, 10, 99, 0.2e9)
	run := func(s sim.Scheduler) *Report {
		t.Helper()
		prev := sim.SetDefaultScheduler(s)
		defer sim.SetDefaultScheduler(prev)
		rep, err := Serve(Config{Policy: "affinity", Slots: 2}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	lock := run(sim.Lockstep)
	evnt := run(sim.EventDriven)
	if !reflect.DeepEqual(lock, evnt) {
		t.Fatalf("schedulers disagree:\n lockstep %+v\n event    %+v", lock, evnt)
	}
}

// TestDetachLeavesSurvivorsIntact is the system-level detach invariant: a
// short job attaches next to a long-running one, finishes first and
// detaches — reclaiming its frames and translation entries — while the
// survivor keeps executing. Both outputs are verified against the golden
// algorithms inside Serve, so the survivor's result is bit-identical to
// what a never-disturbed run produces.
func TestDetachLeavesSurvivorsIntact(t *testing.T) {
	long := Job{ID: 0, App: "adpcm", Size: 4096, ArrivalPs: 0, Seed: 1}
	short := Job{ID: 1, App: "vecadd", Size: 1024, ArrivalPs: 0, Seed: 2}

	solo, err := Serve(Config{Policy: "fcfs", Slots: 2}, []Job{long})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Serve(Config{Policy: "fcfs", Slots: 2}, []Job{long, short})
	if err != nil {
		t.Fatal(err)
	}
	var longR, shortR *JobReport
	for i := range both.Jobs {
		switch both.Jobs[i].ID {
		case 0:
			longR = &both.Jobs[i]
		case 1:
			shortR = &both.Jobs[i]
		}
	}
	if longR.Slot == shortR.Slot {
		t.Fatalf("jobs share slot %d; want concurrent execution", longR.Slot)
	}
	if shortR.DonePs >= longR.DonePs {
		t.Fatalf("short job finished at %.3f ms, after the long job's %.3f ms — no mid-run detach exercised",
			shortR.DonePs/1e9, longR.DonePs/1e9)
	}
	// The survivor's fault count matches its undisturbed run: the detach
	// reclaimed only the short job's frames.
	if longR.Faults != solo.Jobs[0].Faults {
		t.Fatalf("survivor faulted %d times next to a detaching neighbour, %d alone",
			longR.Faults, solo.Jobs[0].Faults)
	}
}

// TestServeRejectsBadConfig pins the configuration validation, including
// the degenerate inputs the scheduler used to accept silently: a
// non-positive slot count once fell back to a default (so `-slots 0`
// produced a report contradicting the flag) and only a negative bandwidth
// was caught after the sweep.
func TestServeRejectsBadConfig(t *testing.T) {
	jobs := mustTrace(t, 2, 1, 0.1e9)
	if _, err := Serve(Config{Policy: "optimal", Slots: 2}, jobs); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Serve(Config{Board: "EPXA99", Slots: 2}, jobs); err == nil {
		t.Fatal("unknown board accepted")
	}
	if _, err := Serve(Config{Slots: 32}, jobs); err == nil {
		t.Fatal("32 slots on a 16-frame pool accepted")
	}
	if _, err := Serve(Config{Slots: 0}, jobs); err == nil {
		t.Fatal("zero slots accepted (must error, not silently default)")
	}
	if _, err := Serve(Config{Slots: -1}, jobs); err == nil {
		t.Fatal("negative slot count accepted")
	}
	if _, err := Serve(Config{Slots: 2, ConfigBW: -5}, jobs); err == nil {
		t.Fatal("negative configuration-port bandwidth accepted")
	}
	if _, err := Serve(Config{Slots: 2}, nil); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// TestStagingNeverArmedBitIdentical is the differential guarantee of the
// pre-staging machinery: on a stream whose queue never waits behind a busy
// board (so the stage is never armed), a staging-enabled run must be
// bit-identical to the pre-staging scheduler — every per-job metric, every
// counter, the whole report.
func TestStagingNeverArmedBitIdentical(t *testing.T) {
	// Two jobs land on the two free slots instantly; the third arrives
	// long after both finished. Nothing ever queues, so the stage cannot
	// arm.
	jobs := []Job{
		{ID: 0, App: "adpcm", Size: 2048, ArrivalPs: 0, Seed: 1},
		{ID: 1, App: "idea", Size: 2048, ArrivalPs: 0, Seed: 2},
		{ID: 2, App: "vecadd", Size: 1024, ArrivalPs: 40e9, Seed: 3},
	}
	off, err := Serve(Config{Policy: "affinity", Slots: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	on, err := Serve(Config{Policy: "affinity", Slots: 2, Stage: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if on.StageCommits != 0 || on.StageCancels != 0 {
		t.Fatalf("stage armed on a never-queueing stream: %d commits, %d cancels",
			on.StageCommits, on.StageCancels)
	}
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("staging-enabled run diverged with the stage never armed:\n on  %+v\n off %+v", on, off)
	}
}

// TestStagedThenCancelledLeavesRunIntact is the cancellation invariant: a
// bitstream staged for a job that another slot then steals is discarded
// the moment a different application needs the slot, and the discarded
// transfer must leave the resident core, the survivor jobs' outputs
// (verified against the golden algorithms inside Serve) and every timing
// bit-identical to a run without staging.
func TestStagedThenCancelledLeavesRunIntact(t *testing.T) {
	// Both slots are busy when the lone vecadd job arrives — slot 0 with a
	// long adpcm job, slot 1 executing idea — so the vecadd bitstream
	// stages behind slot 1 (the soonest to finish). A dense chain of idea
	// arrivals then keeps slot 1 on zero-config resident matches, until
	// slot 0 frees first and steals the vecadd job with a full
	// reconfiguration; the stale vecadd stage on slot 1 is discarded the
	// moment no queued job wants it any more.
	jobs := []Job{
		{ID: 0, App: "adpcm", Size: 4096, ArrivalPs: 0, Seed: 1},
		{ID: 1, App: "idea", Size: 4096, ArrivalPs: 0, Seed: 2},
		{ID: 2, App: "vecadd", Size: 1024, ArrivalPs: 1.3e9, Seed: 3},
	}
	for i := 0; i < 25; i++ {
		size := 1024
		if i%2 == 1 {
			size = 2048
		}
		jobs = append(jobs, Job{
			ID: 3 + i, App: "idea", Size: size,
			ArrivalPs: 1.4e9 + float64(i)*0.3e9, Seed: int64(10 + i),
		})
	}
	off, err := Serve(Config{Policy: "affinity", Slots: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	on, err := Serve(Config{Policy: "affinity", Slots: 2, Stage: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if on.StageCancels == 0 {
		t.Fatalf("fixture rot: the staged-then-cancelled path was not exercised (%d commits, %d cancels)",
			on.StageCommits, on.StageCancels)
	}
	if on.StageCommits != 0 {
		t.Fatalf("fixture rot: a stage committed (%d), so the runs legitimately differ", on.StageCommits)
	}
	cancels := on.StageCancels
	on.StageCancels = 0
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("a staged-then-cancelled bitstream perturbed the run (%d cancels):\n on  %+v\n off %+v",
			cancels, on, off)
	}
}

// TestStagingSchedulerEquivalence extends the lockstep/event-driven
// differential guarantee to the staging and deadline machinery: a
// slack-policy run with pre-staging enabled must produce bit-identical
// reports under both simulation schedulers.
func TestStagingSchedulerEquivalence(t *testing.T) {
	jobs := mustTrace(t, 16, 99, 0.1e9)
	run := func(s sim.Scheduler) *Report {
		t.Helper()
		prev := sim.SetDefaultScheduler(s)
		defer sim.SetDefaultScheduler(prev)
		rep, err := Serve(Config{Policy: "slack", Slots: 2, ConfigBW: 250_000, Stage: true}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	lock := run(sim.Lockstep)
	evnt := run(sim.EventDriven)
	if !reflect.DeepEqual(lock, evnt) {
		t.Fatalf("schedulers disagree:\n lockstep %+v\n event    %+v", lock, evnt)
	}
	if lock.StageCommits == 0 {
		t.Fatal("fixture rot: staging never committed, equivalence not exercised")
	}
}

// TestSlotOccupancySumsToMakespan is the regression test for the per-slot
// occupancy breakdown: for every slot the busy, config and idle shares
// must sum to the makespan (they are defined that way — the test guards
// the accrual sites against drifting apart), idle must never go negative
// (execution and configuration intervals on one slot cannot exceed the
// run), and the per-slot config shares must sum to TotalReconfigPs, since
// the two accrue at the same code sites.
func TestSlotOccupancySumsToMakespan(t *testing.T) {
	jobs := mustTrace(t, 16, 4242, 0.15e9)
	for _, c := range []struct {
		policy string
		stage  bool
		admit  string
	}{
		{"fcfs", false, ""},
		{"affinity", true, ""},
		{"slack", true, AdmitReject},
	} {
		rep, err := Serve(Config{Policy: c.policy, Slots: 2, Stage: c.stage, Admit: c.admit}, jobs)
		if err != nil {
			t.Fatalf("%s: %v", c.policy, err)
		}
		if len(rep.SlotOccupancy) != rep.Slots {
			t.Fatalf("%s: %d occupancy entries for %d slots", c.policy, len(rep.SlotOccupancy), rep.Slots)
		}
		const eps = 1e-3 // ps; float accrual rounding only
		configSum := 0.0
		for s, o := range rep.SlotOccupancy {
			sum := o.BusyPs + o.ConfigPs + o.IdlePs
			if diff := sum - rep.MakespanPs; diff > eps || diff < -eps {
				t.Errorf("%s: slot %d shares sum to %v, makespan %v", c.policy, s, sum, rep.MakespanPs)
			}
			if o.IdlePs < -eps {
				t.Errorf("%s: slot %d negative idle %v (busy %v + config %v exceed makespan %v)",
					c.policy, s, o.IdlePs, o.BusyPs, o.ConfigPs, rep.MakespanPs)
			}
			if o.BusyPs <= 0 {
				t.Errorf("%s: slot %d never executed", c.policy, s)
			}
			configSum += o.ConfigPs
		}
		if diff := configSum - rep.TotalReconfigPs; diff > eps || diff < -eps {
			t.Errorf("%s: per-slot config sum %v != TotalReconfigPs %v", c.policy, configSum, rep.TotalReconfigPs)
		}
	}
}
