package rcsched

import (
	"fmt"
	"strconv"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// This file is the adapter between the serving layer and the telemetry
// package: it folds a finished Report into a Meter (counters, histograms,
// per-slot occupancy gauges) and renders it as trace-event spans. Keeping
// the adapter here — not in telemetry — keeps telemetry a leaf package,
// and deriving everything from the Report keeps the serving loop itself
// nearly untouched: the only live instrumentation is the gauge sampler.

// Trace track layout: pid 0 is the scheduler/dispatcher, pid 1 the job
// view (tid = job ID), and pid ServeBoardPid+b board b's slot view
// (tid = slot). A plain Serve run is board 0.
const (
	// SchedulerPid is the trace pid of the dispatcher (fleet routing
	// instants land here).
	SchedulerPid = 0
	// JobsPid is the trace pid of the per-job lifecycle view.
	JobsPid = 1
	// ServeBoardPid is the trace pid of board 0; fleet board b uses
	// ServeBoardPid + b.
	ServeBoardPid = 2
)

// meterReport folds rep's aggregates into m: the stack-wide counters (sim
// engine, VIM, IMU global and per channel) and the serving-layer tallies
// (dispatch paths, admission dispositions, staging, reconfigurations,
// per-slot occupancy, wait/latency distributions). The sim tallies come
// in separately — they are scheduler-implementation detail the Report
// deliberately does not carry.
func meterReport(m *telemetry.Meter, rep *Report, st sim.Stats) {
	m.Count("sim_edges_delivered_total", uint64(st.EdgesDelivered))
	m.Count("sim_edges_skipped_total", uint64(st.EdgesSkipped))
	m.Count("sim_heap_ops_total", uint64(st.HeapOps))

	m.Count("vim_faults_total", rep.VIM.Faults)
	m.Count("vim_steals_total", rep.VIM.Steals)
	m.Count("vim_evictions_total", rep.VIM.Evictions)
	m.Count("vim_prefetches_total", rep.VIM.Prefetches)
	m.Count("vim_bytes_total", rep.VIM.BytesIn, "dir", "in")
	m.Count("vim_bytes_total", rep.VIM.BytesOut, "dir", "out")

	m.Count("imu_tlb_accesses_total", rep.IMU.Accesses)
	m.Count("imu_tlb_hits_total", rep.IMU.Hits)
	m.Count("imu_tlb_faults_total", rep.IMU.Faults)
	m.Count("imu_fault_cycles_total", rep.IMU.FaultCycles)
	for ch, c := range rep.IMUCh {
		l := strconv.Itoa(ch)
		m.Count("imu_channel_accesses_total", c.Accesses, "channel", l)
		m.Count("imu_channel_hits_total", c.Hits, "channel", l)
		m.Count("imu_channel_faults_total", c.Faults, "channel", l)
	}

	m.Count("rcsched_reconfig_total", uint64(rep.Reconfigs))
	m.Count("rcsched_stage_commits_total", uint64(rep.StageCommits))
	m.Count("rcsched_stage_cancels_total", uint64(rep.StageCancels))
	m.Count("rcsched_admit_total", uint64(rep.Admitted), "disposition", string(Admitted))
	m.Count("rcsched_admit_total", uint64(rep.Degraded), "disposition", string(Degraded))
	m.Count("rcsched_admit_total", uint64(rep.Rejected), "disposition", string(Rejected))

	for s, o := range rep.SlotOccupancy {
		l := strconv.Itoa(s)
		m.Set("rcsched_slot_busy_ps", o.BusyPs, "slot", l)
		m.Set("rcsched_slot_config_ps", o.ConfigPs, "slot", l)
		m.Set("rcsched_slot_idle_ps", o.IdlePs, "slot", l)
	}

	for i := range rep.Jobs {
		j := &rep.Jobs[i]
		m.Count("rcsched_dispatch_total", 1, "path", dispatchPathOf(j))
		if j.Disposition == Rejected {
			continue
		}
		m.Observe("rcsched_queue_wait_ps", j.QueueWaitPs)
		m.Observe("rcsched_latency_ps", j.LatencyPs)
		m.Observe("rcsched_session_faults", float64(j.Faults))
	}
}

// dispatchPathOf reconstructs the dispatch path an Observer would have
// seen from the job's final report; sheds get their disposition instead.
func dispatchPathOf(j *JobReport) string {
	switch {
	case j.Disposition != Admitted:
		return string(j.Disposition)
	case j.Staged:
		return DispatchStaged
	case j.Reconfigured:
		return DispatchStream
	default:
		return DispatchResident
	}
}

// TraceReport renders rep's job lifecycles as Chrome trace events on tr:
// per-job queue → config → exec spans on the job track group (JobsPid,
// tid = job ID), and per-slot config and exec spans on the board's track
// group (boardPid, tid = slot). Rejected jobs become instants, degraded
// jobs a software-execution span. Every value is read from the Report, so
// a trace is exactly as deterministic as the run it renders.
func TraceReport(tr *telemetry.Trace, rep *Report, boardPid int) {
	if tr == nil {
		return
	}
	tr.NameProcess(JobsPid, "jobs")
	tr.NameProcess(boardPid, fmt.Sprintf("board %d (%s, %s)", boardPid-ServeBoardPid, rep.Board, rep.Policy))
	for s := 0; s < rep.Slots; s++ {
		tr.NameThread(boardPid, s, fmt.Sprintf("slot %d", s))
	}
	for i := range rep.Jobs {
		j := &rep.Jobs[i]
		tr.NameThread(JobsPid, j.ID, fmt.Sprintf("job %d (%s)", j.ID, j.App))
		args := map[string]string{
			"app":  j.App,
			"size": strconv.Itoa(j.Size),
			"path": dispatchPathOf(j),
		}
		switch j.Disposition {
		case Rejected:
			tr.Instant(telemetry.Instant{
				Name: "rejected", Pid: JobsPid, Tid: j.ID, AtPs: j.DonePs, Args: args,
			})
			continue
		case Degraded:
			tr.Span(telemetry.Span{
				Name: "queue", Cat: "job", Pid: JobsPid, Tid: j.ID,
				StartPs: j.ArrivalPs, DurPs: j.QueueWaitPs, Args: args,
			})
			tr.Span(telemetry.Span{
				Name: "sw-exec", Cat: "job", Pid: JobsPid, Tid: j.ID,
				StartPs: j.DonePs - j.ExecPs, DurPs: j.ExecPs, Args: args,
			})
			continue
		}
		args["faults"] = strconv.FormatUint(j.Faults, 10)
		dispatchPs := j.ArrivalPs + j.QueueWaitPs
		execStartPs := j.DonePs - j.ExecPs
		tr.Span(telemetry.Span{
			Name: "queue", Cat: "job", Pid: JobsPid, Tid: j.ID,
			StartPs: j.ArrivalPs, DurPs: j.QueueWaitPs, Args: args,
		})
		if j.ReconfigPs > 0 {
			tr.Span(telemetry.Span{
				Name: "config", Cat: "reconfig", Pid: JobsPid, Tid: j.ID,
				StartPs: dispatchPs, DurPs: j.ReconfigPs, Args: args,
			})
			tr.Span(telemetry.Span{
				Name: "config " + j.App, Cat: "reconfig", Pid: boardPid, Tid: j.Slot,
				StartPs: dispatchPs, DurPs: j.ReconfigPs, Args: args,
			})
		}
		tr.Span(telemetry.Span{
			Name: "exec", Cat: "job", Pid: JobsPid, Tid: j.ID,
			StartPs: execStartPs, DurPs: j.ExecPs, Args: args,
		})
		tr.Span(telemetry.Span{
			Name: j.App, Cat: "exec", Pid: boardPid, Tid: j.Slot,
			StartPs: execStartPs, DurPs: j.ExecPs, Args: args,
		})
	}
}
