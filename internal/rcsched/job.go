package rcsched

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/bitstream"
	"repro/internal/kernel"
	"repro/internal/vim"
)

// Job is one unit of the multi-user stream: a user asking for application
// App over Size bytes of fresh input, arriving at ArrivalPs on the serving
// clock. Seed drives the job's input data, so a trace replays bit-for-bit.
// DeadlinePs is the job's service-level objective — the instant by which it
// should complete (arrival plus a per-app budget; 0 means no deadline);
// the deadline-aware policies schedule against it and Report measures
// lateness and miss-rate from it.
type Job struct {
	ID         int
	App        string // "idea" | "adpcm" | "vecadd"
	Size       int    // input bytes (whole IDEA blocks enforced by Trace)
	ArrivalPs  float64
	DeadlinePs float64
	Seed       int64

	coreName string // bitstream identity, resolved at admission
}

// Trace generates a deterministic n-job stream: arrival gaps are uniform in
// (0, 2·meanGapPs), applications and input sizes are drawn from the bundled
// mix (IDEA / ADPCM / vecadd over 1–4 KB), every job carries its own data
// seed, and deadlines are assigned per app at DefaultBudgetFactor
// (re-derive with SetBudgets). The same (n, seed, meanGapPs) triple always
// yields the same stream. n must be positive and meanGapPs non-negative.
func Trace(n int, seed int64, meanGapPs float64) ([]Job, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rcsched: trace needs a positive job count, got %d", n)
	}
	if meanGapPs < 0 {
		return nil, fmt.Errorf("rcsched: negative mean arrival gap %g ps", meanGapPs)
	}
	rng := rand.New(rand.NewSource(seed))
	apps := []string{"idea", "adpcm", "vecadd"}
	sizes := []int{1024, 2048, 4096}
	jobs := make([]Job, n)
	arrival := 0.0
	for i := range jobs {
		arrival += rng.Float64() * 2 * meanGapPs
		jobs[i] = Job{
			ID:        i,
			App:       apps[rng.Intn(len(apps))],
			Size:      sizes[rng.Intn(len(sizes))] &^ 7,
			ArrivalPs: arrival,
			Seed:      rng.Int63(),
		}
	}
	SetBudgets(jobs, DefaultBudgetFactor)
	return jobs, nil
}

// objSpec is one FPGA_MAP_OBJECT call a job needs.
type objSpec struct {
	id         uint8
	base, size uint32
	dir        vim.Direction
}

// prepared is a job's materialised process image: user buffers holding the
// input, the object mappings and launch parameters, and the expected output
// from the golden algorithm for end-of-job verification.
type prepared struct {
	objs    []objSpec
	params  []uint32
	outAddr uint32
	want    []byte
}

// appSpec binds an application name to its bitstream and workload builder.
type appSpec struct {
	coreName string
	img      []byte
	prepare  func(k *kernel.Kernel, size int, rng *rand.Rand) (*prepared, error)
}

// appTable resolves the bundled applications for a board.
func appTable(board string) (map[string]*appSpec, error) {
	table := map[string]*appSpec{
		"idea":   {img: repro.IDEABitstream(board), prepare: prepIDEA},
		"adpcm":  {img: repro.ADPCMBitstream(board), prepare: prepADPCM},
		"vecadd": {img: repro.VecAddBitstream(board), prepare: prepVecAdd},
	}
	for name, a := range table {
		h, err := bitstream.Parse(a.img)
		if err != nil {
			return nil, fmt.Errorf("rcsched: %s bitstream: %w", name, err)
		}
		a.coreName = h.Core
	}
	return table, nil
}

func prepIDEA(k *kernel.Kernel, size int, rng *rand.Rand) (*prepared, error) {
	var key repro.IDEAKey
	rng.Read(key[:])
	plain := make([]byte, size)
	rng.Read(plain)
	in, err := k.Alloc(size)
	if err != nil {
		return nil, err
	}
	out, err := k.Alloc(size)
	if err != nil {
		return nil, err
	}
	if err := k.WriteUser(in, plain); err != nil {
		return nil, err
	}
	return &prepared{
		objs: []objSpec{
			{repro.IDEAObjIn, in, uint32(size), vim.In},
			{repro.IDEAObjOut, out, uint32(size), vim.Out},
		},
		params:  repro.IDEAEncryptParams(key, size/8),
		outAddr: out,
		want:    repro.GoldenIDEAEncrypt(key, plain),
	}, nil
}

func prepADPCM(k *kernel.Kernel, size int, rng *rand.Rand) (*prepared, error) {
	packed := make([]byte, size)
	rng.Read(packed)
	in, err := k.Alloc(size)
	if err != nil {
		return nil, err
	}
	out, err := k.Alloc(size * 4)
	if err != nil {
		return nil, err
	}
	if err := k.WriteUser(in, packed); err != nil {
		return nil, err
	}
	samples := repro.GoldenADPCMDecode(packed)
	want := make([]byte, 2*len(samples))
	for i, s := range samples {
		binary.LittleEndian.PutUint16(want[2*i:], uint16(s))
	}
	return &prepared{
		objs: []objSpec{
			{repro.ADPCMObjIn, in, uint32(size), vim.In},
			{repro.ADPCMObjOut, out, uint32(size * 4), vim.Out},
		},
		params:  []uint32{uint32(size)},
		outAddr: out,
		want:    want,
	}, nil
}

func prepVecAdd(k *kernel.Kernel, size int, rng *rand.Rand) (*prepared, error) {
	n := size / 4
	av := make([]byte, size)
	bv := make([]byte, size)
	rng.Read(av)
	rng.Read(bv)
	a, err := k.Alloc(size)
	if err != nil {
		return nil, err
	}
	b, err := k.Alloc(size)
	if err != nil {
		return nil, err
	}
	c, err := k.Alloc(size)
	if err != nil {
		return nil, err
	}
	if err := k.WriteUser(a, av); err != nil {
		return nil, err
	}
	if err := k.WriteUser(b, bv); err != nil {
		return nil, err
	}
	want := make([]byte, size)
	for i := 0; i < n; i++ {
		s := binary.LittleEndian.Uint32(av[4*i:]) + binary.LittleEndian.Uint32(bv[4*i:])
		binary.LittleEndian.PutUint32(want[4*i:], s)
	}
	return &prepared{
		objs: []objSpec{
			{repro.VecAddObjA, a, uint32(size), vim.In},
			{repro.VecAddObjB, b, uint32(size), vim.In},
			{repro.VecAddObjC, c, uint32(size), vim.Out},
		},
		params:  []uint32{uint32(n)},
		outAddr: c,
		want:    want,
	}, nil
}
