// Package sim provides a deterministic, two-phase, multi-clock-domain
// synchronous simulation kernel.
//
// The kernel models a set of clock domains, each with an integer frequency in
// hertz. Synchronous components register against a domain and receive two
// callbacks per rising edge: Eval, during which they may read the committed
// outputs of every other component and compute their next state, and Update,
// during which they commit that state. Because every component samples only
// committed values during Eval, evaluation order within an edge is
// irrelevant and the simulation is free of combinational races by
// construction — the classic two-phase (evaluate/commit) RTL discipline.
//
// Edges from different domains are interleaved in exact time order without
// floating-point time: the next edge of a domain that has ticked c cycles at
// f hertz occurs at t = (c+1)/f seconds, and the kernel compares such
// rationals by cross-multiplication in int64. Coincident edges (for example
// a 6 MHz core and a 24 MHz bus every fourth bus cycle) are merged into a
// single super-edge: all Evals run, then all Updates, preserving the
// synchronous contract across domain boundaries.
//
// # Schedulers
//
// The engine offers two interchangeable schedulers, selected per Engine
// (SetScheduler) or process-wide (SetDefaultScheduler):
//
//   - EventDriven (the default): a min-heap of next-edge times. Real
//     platforms (and everything Validate accepts) use integer frequency
//     ratios, for which every domain edge lands exactly on a tick of the
//     fastest domain; the engine precomputes, per domain, its period in
//     fastest-domain ticks (ratio) and the absolute tick of its next edge
//     (nextAt), and keeps the domains in a binary heap keyed by
//     (nextAt, creation order). One super-edge pops the due domains in
//     O(log n) and coincidence is an integer compare; ties break towards
//     creation order, so coincident edges Eval and Update in exactly the
//     order the lockstep scheduler uses. Engines with non-integer ratios
//     fall back to cross-multiplied rational comparisons with the same
//     delivery order.
//
//   - Lockstep: the original linear scan over all domains per super-edge,
//     kept verbatim as the reference implementation. The differential tests
//     in this package (and the whole-system golden tests at the repository
//     root) prove the two schedulers deliver bit-identical edge schedules,
//     cycle counts and metrics for every configuration, which is what makes
//     the event-driven path safe to default to.
//
// # Idle bulk-skip
//
// Components whose edges are provably no-ops can advertise idleness and let
// the engine jump time forward instead of delivering inert edges one by one:
//
//   - Idler declares open-ended idleness: every upcoming edge is a no-op
//     until a component in another clock domain commits new state (or the
//     component is poked externally between run calls). The IMU idles this
//     way while the coprocessor computes internally.
//
//   - BulkIdler extends the contract to bounded idleness: a component in a
//     multi-cycle compute phase (a cipher pipeline filling, a serial decode
//     counting down) knows exactly how many upcoming edges are inert and is
//     fast-forwarded through them with SkipEdges. The coprocessor cores
//     advertise their compute phases this way.
//
// When every ticker of a domain is idle, the event-driven scheduler advances
// the domain's cycle counter in bulk to the earliest non-inert edge across
// all domains (the wake horizon) in one O(n) pass — any subset of idle
// domains is jumped over at once. The skipped edges are exactly the ones
// whose Eval would have taken the component's no-op fast path, so cycle
// counts, counters, committed values and NowPs are bit-identical to the
// unskipped schedule; edges at the horizon itself are delivered normally,
// because that is where a skipped component wakes or another domain commits.
// The lockstep scheduler keeps the narrower PR-1 behaviour (two-domain
// fast path only) so it stays a faithful reference.
//
// The kernel is allocation-free in steady state: Step reuses one scratch
// slice for the set of due domains (callers must not retain it across
// steps), heap operations never allocate, and the flag-polled run loop
// RunUntilFlag stops on a plain bool without any per-edge closure call.
// RunUntil's done() polling can be batched with SetDoneCheckInterval for
// callers that only need eventual detection; the default interval of 1
// preserves edge-exact stopping, which metric-collecting callers rely on.
package sim

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
)

// Ticker is a synchronous component driven by a clock domain.
//
// Eval must not modify any state observable by other components; Update
// commits the state computed during Eval. Components that keep all state in
// Reg values get this discipline for free.
type Ticker interface {
	// Eval computes the component's next state from committed inputs.
	Eval()
	// Update commits the state computed by the preceding Eval.
	Update()
}

// Idler is an optional Ticker extension for components whose edges are
// provably no-ops while they wait for input. IdleUntilInput reports that
// every edge delivered to the component from now on would leave all
// observable state unchanged until either (a) a component in another clock
// domain commits new state, or (b) the component is poked externally
// between run calls (the OS models only touch hardware while the engine is
// paused). When every ticker of a domain is an idle Idler and another
// domain still has work, the engine advances the idle domain's cycle
// counter in bulk instead of delivering the edges one by one — the skipped
// edges are exactly the ones whose Eval would have taken the component's
// no-op fast path, so cycle counts, counters and all committed values are
// bit-identical to the unskipped schedule.
type Idler interface {
	IdleUntilInput() bool
}

// IdleForever is the IdleEdges result declaring open-ended idleness, fully
// equivalent to Idler's IdleUntilInput returning true.
const IdleForever = int64(math.MaxInt64)

// BulkIdler is the bounded extension of Idler for components whose inert
// windows end on their own clock — a compute pipeline draining, a serial
// unit counting down — rather than on external input.
//
// IdleEdges reports how many upcoming edges are provably inert: delivering
// them would neither commit state observable by other components nor depend
// on state other domains may commit meanwhile (internal countdowns are
// allowed; that is the point). It returns 0 when the component is busy and
// IdleForever when it is idle until input. As with Idler, the window may end
// early only through another domain's commit or an external poke between
// run calls, both of which the engine re-queries before every super-edge.
//
// SkipEdges(k) tells the component that k of those edges (k never exceeds
// the advertised count) were consumed in bulk; it must leave the component
// in exactly the state k delivered edges would have produced, which for a
// contract-abiding component means advancing internal countdowns by k.
// Components whose inert edges carry no state at all may make it a no-op.
type BulkIdler interface {
	IdleEdges() int64
	SkipEdges(k int64)
}

// Scheduler selects the engine's super-edge scheduling algorithm.
type Scheduler uint8

const (
	// SchedulerDefault resolves to the package-wide default (EventDriven
	// unless overridden with SetDefaultScheduler). It is the zero value so
	// that config structs embedding a Scheduler default sensibly.
	SchedulerDefault Scheduler = iota
	// EventDriven schedules super-edges from a min-heap of next-edge times
	// and bulk-skips any subset of idle domains to the wake horizon.
	EventDriven
	// Lockstep is the original linear due-domain scan, kept as the
	// reference implementation for differential testing.
	Lockstep
)

// String implements fmt.Stringer.
func (s Scheduler) String() string {
	switch s {
	case EventDriven:
		return "event-driven"
	case Lockstep:
		return "lockstep"
	default:
		return "default"
	}
}

// defaultScheduler is what NewEngine installs; differential harnesses flip
// it to run identical assembly code under both schedulers. The SIM_SCHEDULER
// environment variable ("event" or "lockstep") overrides it at start-up so
// benchmarks and experiments can be A/B-ed without a rebuild.
var defaultScheduler = EventDriven

func init() {
	switch os.Getenv("SIM_SCHEDULER") {
	case "lockstep":
		defaultScheduler = Lockstep
	case "event", "event-driven":
		defaultScheduler = EventDriven
	}
}

// SetDefaultScheduler changes the scheduler NewEngine installs and returns
// the previous default, so tests can restore it with defer. Passing
// SchedulerDefault restores the built-in default (EventDriven). It is not
// safe for concurrent use with NewEngine.
func SetDefaultScheduler(s Scheduler) Scheduler {
	prev := defaultScheduler
	if s == SchedulerDefault {
		s = EventDriven
	}
	defaultScheduler = s
	return prev
}

// TickerFunc adapts a pair of functions to the Ticker interface.
type TickerFunc struct {
	OnEval   func()
	OnUpdate func()
}

// Eval implements Ticker.
func (t TickerFunc) Eval() {
	if t.OnEval != nil {
		t.OnEval()
	}
}

// Update implements Ticker.
func (t TickerFunc) Update() {
	if t.OnUpdate != nil {
		t.OnUpdate()
	}
}

// Domain is a clock domain with an integer frequency.
type Domain struct {
	name    string
	freqHz  int64
	cycles  int64 // rising edges already delivered
	tickers []Ticker
	eng     *Engine
	order   int // creation index; breaks scheduling ties deterministically

	// Fast-path schedule (valid while eng.fast): the domain's period in
	// fastest-domain ticks, and the absolute tick of its next edge.
	ratio  int64
	nextAt int64

	// Event-scheduler scratch: the absolute tick (fast mode) or rational
	// numerator over freqHz (general mode) of the first non-inert edge,
	// recomputed by every skip pass. wake < 0 encodes "idle until input".
	wake int64

	// Adaptive idle-probe state of the single-domain event path: probe
	// counts edges until the next idleness query, probeBack the current
	// backoff the counter is reloaded from (reset to 0 by every hit).
	probe     int8
	probeBack int8

	// idlers and bulk hold the tickers that advertise idleness (each ticker
	// lands in exactly one slice; BulkIdler wins when both are implemented).
	// The domain is bulk-skippable only when every ticker is in one of them;
	// skippable caches that condition across Attach calls.
	idlers    []Idler
	bulk      []BulkIdler
	skippable bool
}

// allIdle reports whether every ticker of the domain is an Idler currently
// idle until input. It is the lockstep scheduler's narrower predicate (PR-1
// semantics): bounded BulkIdler idleness does not count.
func (d *Domain) allIdle() bool {
	if len(d.idlers) != len(d.tickers) || len(d.tickers) == 0 {
		return false
	}
	for _, i := range d.idlers {
		if !i.IdleUntilInput() {
			return false
		}
	}
	return true
}

// idleEdges reports how many upcoming edges of the whole domain are provably
// inert: 0 when any ticker is busy (or advertises no idleness at all),
// IdleForever when every ticker is idle until input, and otherwise the
// minimum bounded count across tickers.
func (d *Domain) idleEdges() int64 {
	if !d.skippable {
		return 0
	}
	// Bounded idlers first: a busy coprocessor core answers from its FSM
	// state alone, which keeps the per-edge cost of a fruitless query low.
	k := IdleForever
	for _, b := range d.bulk {
		n := b.IdleEdges()
		if n <= 0 {
			return 0
		}
		if n < k {
			k = n
		}
	}
	for _, i := range d.idlers {
		if !i.IdleUntilInput() {
			return 0
		}
	}
	return k
}

// skipEdges consumes k inert edges in bulk: cycle accounting advances as if
// the edges had been delivered, and bounded idlers fast-forward their
// countdowns. k never exceeds the domain's advertised idleEdges.
func (d *Domain) skipEdges(k int64) {
	for _, b := range d.bulk {
		b.SkipEdges(k)
	}
	d.cycles += k
	d.nextAt += k * d.ratio
	d.eng.statSkipped += k
}

// Name returns the domain name given at creation.
func (d *Domain) Name() string { return d.name }

// FreqHz returns the domain frequency in hertz.
func (d *Domain) FreqHz() int64 { return d.freqHz }

// Cycles returns the number of rising edges delivered so far.
func (d *Domain) Cycles() int64 { return d.cycles }

// PeriodPs returns the clock period in picoseconds as a float (reporting
// only; the kernel itself never uses floating-point time).
func (d *Domain) PeriodPs() float64 { return 1e12 / float64(d.freqHz) }

// Attach registers a synchronous component with the domain.
func (d *Domain) Attach(t Ticker) {
	if t == nil {
		panic("sim: Attach(nil)")
	}
	d.tickers = append(d.tickers, t)
	if b, ok := t.(BulkIdler); ok {
		d.bulk = append(d.bulk, b)
	} else if i, ok := t.(Idler); ok {
		d.idlers = append(d.idlers, i)
	}
	d.skippable = len(d.idlers)+len(d.bulk) == len(d.tickers)
}

// Engine owns a set of clock domains and advances them in time order.
type Engine struct {
	domains []*Domain
	// stopErr is set by a Ticker via Fail and aborts the current Run.
	stopErr error

	// sched selects the scheduling algorithm (resolved, never
	// SchedulerDefault).
	sched Scheduler
	// eheap is the event scheduler's binary min-heap over (nextAt, order),
	// valid while planned && fast; storage is reused across rebuilds.
	eheap []*Domain

	// due is the scratch buffer Step returns; reused every super-edge.
	due []*Domain
	// planned marks the scheduling plan valid; adding a domain clears it.
	planned bool
	// fast selects the integer-ratio schedule over cross-multiplication.
	fast bool
	// doneEvery batches RunUntil's done() polling (0 or 1 = every edge).
	doneEvery int64
	// noSkip > 0 suspends idle bulk-skipping (RunCycles needs to hit its
	// per-domain cycle target exactly, not jump past it).
	noSkip int

	// Telemetry tallies, maintained off the per-edge hot paths: skipped
	// edges accrue only inside the (rare) bulk-skip passes and heap ops
	// only inside the heap mutators. Delivered edges are derived lazily in
	// Stats from the per-domain cycle counters, so the delivery loops stay
	// untouched.
	statSkipped int64
	statHeapOps int64
}

// Stats is a snapshot of the engine's scheduling tallies, all monotonic
// over the engine's lifetime. EdgesDelivered counts domain edges whose
// tickers actually ran Eval/Update; EdgesSkipped counts edges consumed by
// idle bulk-skip instead (the two sum to every domain's cycle counter);
// HeapOps counts event-heap mutations (pushes, pops, and one per domain on
// each wholesale rebuild) — zero under the lockstep scheduler and the
// heap-free inline paths.
type Stats struct {
	EdgesDelivered int64
	EdgesSkipped   int64
	HeapOps        int64
}

// Stats returns the engine's scheduling tallies. Reporting only: reading
// them never perturbs the schedule.
func (e *Engine) Stats() Stats {
	total := int64(0)
	for _, d := range e.domains {
		total += d.cycles
	}
	return Stats{
		EdgesDelivered: total - e.statSkipped,
		EdgesSkipped:   e.statSkipped,
		HeapOps:        e.statHeapOps,
	}
}

// NewEngine returns an empty engine using the package default scheduler.
func NewEngine() *Engine { return &Engine{sched: defaultScheduler} }

// SetScheduler selects the engine's scheduling algorithm; SchedulerDefault
// resolves to the package default. Switching forces a plan rebuild, so it is
// safe at any point between super-edges.
func (e *Engine) SetScheduler(s Scheduler) {
	if s == SchedulerDefault {
		s = defaultScheduler
	}
	e.sched = s
	e.planned = false
}

// Scheduler returns the engine's resolved scheduling algorithm.
func (e *Engine) Scheduler() Scheduler { return e.sched }

// NewDomain creates a clock domain. Frequency must be positive.
func (e *Engine) NewDomain(name string, freqHz int64) *Domain {
	if freqHz <= 0 {
		panic(fmt.Sprintf("sim: domain %q: frequency %d Hz must be positive", name, freqHz))
	}
	d := &Domain{name: name, freqHz: freqHz, eng: e, order: len(e.domains)}
	e.domains = append(e.domains, d)
	e.planned = false
	return d
}

// Domains returns the engine's domains in creation order.
func (e *Engine) Domains() []*Domain { return e.domains }

// Fail aborts the current Run with err. It is intended to be called from a
// Ticker when the model reaches an impossible state.
func (e *Engine) Fail(err error) { e.stopErr = err }

// SetDoneCheckInterval makes RunUntil consult done() only every k
// super-edges (k <= 1 restores the default of every edge). Batching is only
// sound when done() is monotonic within one run and the caller tolerates up
// to k-1 extra edges being delivered after the condition becomes true;
// callers that fold edge counts or cycle counters into measurements must
// keep the exact default.
func (e *Engine) SetDoneCheckInterval(k int64) {
	if k < 1 {
		k = 1
	}
	e.doneEvery = k
}

// plan rebuilds the scheduling plan: if every frequency divides the fastest
// one, each domain gets its period in fastest-domain ticks and the absolute
// tick of its next edge, enabling the integer fast path.
func (e *Engine) plan() {
	e.planned = true
	e.fast = false
	if len(e.domains) == 0 {
		return
	}
	maxHz := e.domains[0].freqHz
	for _, d := range e.domains[1:] {
		if d.freqHz > maxHz {
			maxHz = d.freqHz
		}
	}
	for _, d := range e.domains {
		if maxHz%d.freqHz != 0 {
			return
		}
	}
	for _, d := range e.domains {
		d.ratio = maxHz / d.freqHz
		d.nextAt = (d.cycles + 1) * d.ratio
	}
	e.fast = true
	if e.sched == EventDriven {
		e.heapInit()
	}
}

// edgeBefore reports whether domain a's next edge is strictly before b's.
// Next-edge times are (a.cycles+1)/a.freq and (b.cycles+1)/b.freq; compare
// by cross multiplication. Frequencies are bounded by ~1e9 and cycle counts
// by the run budget, so the products stay well inside int64.
func edgeBefore(a, b *Domain) bool {
	return (a.cycles+1)*b.freqHz < (b.cycles+1)*a.freqHz
}

// edgeCoincident reports whether the next edges of a and b are simultaneous.
func edgeCoincident(a, b *Domain) bool {
	return (a.cycles+1)*b.freqHz == (b.cycles+1)*a.freqHz
}

// ErrBudget is returned by Run variants when the cycle budget is exhausted
// before the stop condition is met.
var ErrBudget = errors.New("sim: cycle budget exhausted")

// tick delivers one edge to a single domain: all Evals, then all Updates.
func (d *Domain) tick() {
	for _, t := range d.tickers {
		t.Eval()
	}
	for _, t := range d.tickers {
		t.Update()
	}
	d.cycles++
	d.nextAt += d.ratio
}

// soloTick delivers an edge that is due on one domain only, returning the
// number of super-edges consumed. If the due domain ticks on every
// fastest-domain tick (ratio 1), is fully idle, and skipping is permitted,
// its no-op edges — including its slot in the upcoming coincident edge —
// are consumed in bulk and the other domain's edge is delivered instead;
// the other domain's commit is the only thing that can end the idleness,
// so the skipped edges are exactly the no-ops the component would have
// fast-pathed anyway.
func (e *Engine) soloTick(due, other *Domain) int64 {
	if due.ratio == 1 && e.noSkip == 0 && due.allIdle() {
		// k solo edges of due plus the coincident edge at other.nextAt:
		// k+1 distinct super-edge times consumed in one call.
		k := other.nextAt - due.nextAt + 1
		due.cycles += k
		due.nextAt += k
		e.statSkipped += k
		other.tick()
		return k
	}
	due.tick()
	return 1
}

// step advances the simulation without materialising the due set and
// returns the number of super-edges consumed: 1 normally, more when idle
// bulk-skip jumps a domain over a no-op window. It is the engine-internal
// fast path behind the run loops; Step is the due-returning public variant.
func (e *Engine) step() int64 {
	if !e.planned {
		e.plan()
	}
	if e.sched == EventDriven {
		return e.eventStep()
	}
	return e.lockstepFastStep()
}

// lockstepFastStep is the lockstep scheduler's internal step: the
// single-domain and two-domain integer-ratio layouts are dispatched inline,
// everything else goes through the linear due-domain scan.
func (e *Engine) lockstepFastStep() int64 {
	if e.fast {
		switch len(e.domains) {
		case 1:
			e.domains[0].tick()
			return 1
		case 2:
			d0, d1 := e.domains[0], e.domains[1]
			if d0.nextAt < d1.nextAt {
				return e.soloTick(d0, d1)
			} else if d1.nextAt < d0.nextAt {
				return e.soloTick(d1, d0)
			} else {
				// Coincident super-edge: all Evals before any Update,
				// in creation order.
				for _, t := range d0.tickers {
					t.Eval()
				}
				for _, t := range d1.tickers {
					t.Eval()
				}
				for _, t := range d0.tickers {
					t.Update()
				}
				d0.cycles++
				d0.nextAt += d0.ratio
				for _, t := range d1.tickers {
					t.Update()
				}
				d1.cycles++
				d1.nextAt += d1.ratio
			}
			return 1
		}
	}
	e.lockstepStep()
	return 1
}

// Step delivers the earliest pending super-edge: the earliest pending edge
// across all domains together with every other domain edge coincident with
// it. It returns the domains that ticked, in creation order. Under the
// event-driven scheduler a Step may additionally consume bulk-skipped idle
// edges of other domains up to the delivered instant, exactly as the run
// loops do. The returned slice is a scratch buffer owned by the engine and
// is overwritten by the next Step; callers must copy it if they need to
// retain it.
func (e *Engine) Step() []*Domain {
	if len(e.domains) == 0 {
		return nil
	}
	if !e.planned {
		e.plan()
	}
	if e.sched == EventDriven {
		if len(e.domains) == 1 {
			// The solo path leaves due bookkeeping to this (cold) wrapper.
			e.due = append(e.due[:0], e.domains[0])
		}
		e.eventStep()
		return e.due
	}
	return e.lockstepStep()
}

// lockstepStep is the linear-scan reference scheduler: find the earliest
// next edge, collect every coincident domain, deliver Evals then Updates.
func (e *Engine) lockstepStep() []*Domain {
	due := e.due[:0]
	switch {
	case len(e.domains) == 1:
		// Single-domain fast loop: every edge is a super-edge of the
		// only domain; no schedule to consult.
		due = append(due, e.domains[0])
	case e.fast:
		t := e.domains[0].nextAt
		for _, d := range e.domains[1:] {
			if d.nextAt < t {
				t = d.nextAt
			}
		}
		for _, d := range e.domains {
			if d.nextAt == t {
				due = append(due, d)
			}
		}
	default:
		earliest := e.domains[0]
		for _, d := range e.domains[1:] {
			if edgeBefore(d, earliest) {
				earliest = d
			}
		}
		for _, d := range e.domains {
			if d == earliest || edgeCoincident(d, earliest) {
				due = append(due, d)
			}
		}
	}
	// Deterministic order: creation order is preserved because we scan
	// e.domains in order.
	for _, d := range due {
		for _, t := range d.tickers {
			t.Eval()
		}
	}
	for _, d := range due {
		for _, t := range d.tickers {
			t.Update()
		}
		d.cycles++
		d.nextAt += d.ratio
	}
	e.due = due
	return due
}

// RunUntil advances the simulation until done() reports true (checked before
// every super-edge by default; see SetDoneCheckInterval) or at least
// maxEdges super-edges have been delivered, whichever comes first. It
// returns the number of super-edges delivered (counting bulk-skipped idle
// edges; the final count may exceed maxEdges by up to the domain clock
// ratio when a skipped window spans the budget boundary) and ErrBudget if
// the budget ran out, or the error passed to Fail.
func (e *Engine) RunUntil(done func() bool, maxEdges int64) (int64, error) {
	e.stopErr = nil
	every := e.doneEvery
	if every < 1 {
		every = 1
	}
	sinceCheck := every // poll before the first edge
	n := int64(0)
	for n < maxEdges {
		if done != nil && sinceCheck >= every {
			sinceCheck = 0
			if done() {
				return n, nil
			}
		}
		k := e.step()
		n += k
		sinceCheck += k
		if e.stopErr != nil {
			return n, e.stopErr
		}
	}
	if done != nil && done() {
		return n, nil
	}
	return n, ErrBudget
}

// RunUntilFlag advances the simulation until *stop is true (checked before
// every super-edge, exactly as RunUntil with the default interval) or
// maxEdges super-edges have been delivered. It is the allocation- and
// closure-free variant of RunUntil for hot loops whose stop condition is a
// single level-sensitive line, such as an interrupt request.
func (e *Engine) RunUntilFlag(stop *bool, maxEdges int64) (int64, error) {
	e.stopErr = nil
	n := int64(0)
	for n < maxEdges {
		if *stop {
			return n, nil
		}
		n += e.step()
		if e.stopErr != nil {
			return n, e.stopErr
		}
	}
	if *stop {
		return n, nil
	}
	return n, ErrBudget
}

// RunCycles delivers exactly n rising edges to domain d (other domains tick
// as time passes).
func (e *Engine) RunCycles(d *Domain, n int64) {
	// Idle bulk-skip could jump d past target; deliver edge by edge.
	e.noSkip++
	defer func() { e.noSkip-- }()
	target := d.cycles + n
	for d.cycles < target {
		e.step()
	}
}

// NowPs returns the current simulation time in picoseconds, defined as the
// time of the latest delivered edge across all domains. Reporting only.
func (e *Engine) NowPs() float64 {
	now := 0.0
	for _, d := range e.domains {
		t := float64(d.cycles) / float64(d.freqHz) * 1e12
		now = math.Max(now, t)
	}
	return now
}

// Validate checks cross-domain ratios: domains whose components exchange
// signals should have integer frequency ratios so edges align. It returns a
// descriptive error naming the first non-integer pair, or nil.
func (e *Engine) Validate() error {
	ds := append([]*Domain(nil), e.domains...)
	sort.Slice(ds, func(i, j int) bool { return ds[i].freqHz < ds[j].freqHz })
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			if ds[j].freqHz%ds[i].freqHz != 0 {
				return fmt.Errorf("sim: domains %q (%d Hz) and %q (%d Hz) have a non-integer ratio",
					ds[i].name, ds[i].freqHz, ds[j].name, ds[j].freqHz)
			}
		}
	}
	return nil
}
