// Package sim provides a deterministic, two-phase, multi-clock-domain
// synchronous simulation kernel.
//
// The kernel models a set of clock domains, each with an integer frequency in
// hertz. Synchronous components register against a domain and receive two
// callbacks per rising edge: Eval, during which they may read the committed
// outputs of every other component and compute their next state, and Update,
// during which they commit that state. Because every component samples only
// committed values during Eval, evaluation order within an edge is
// irrelevant and the simulation is free of combinational races by
// construction — the classic two-phase (evaluate/commit) RTL discipline.
//
// Edges from different domains are interleaved in exact time order without
// floating-point time: the next edge of a domain that has ticked c cycles at
// f hertz occurs at t = (c+1)/f seconds, and the kernel compares such
// rationals by cross-multiplication in int64. Coincident edges (for example
// a 6 MHz core and a 24 MHz bus every fourth bus cycle) are merged into a
// single super-edge: all Evals run, then all Updates, preserving the
// synchronous contract across domain boundaries.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Ticker is a synchronous component driven by a clock domain.
//
// Eval must not modify any state observable by other components; Update
// commits the state computed during Eval. Components that keep all state in
// Reg values get this discipline for free.
type Ticker interface {
	// Eval computes the component's next state from committed inputs.
	Eval()
	// Update commits the state computed by the preceding Eval.
	Update()
}

// TickerFunc adapts a pair of functions to the Ticker interface.
type TickerFunc struct {
	OnEval   func()
	OnUpdate func()
}

// Eval implements Ticker.
func (t TickerFunc) Eval() {
	if t.OnEval != nil {
		t.OnEval()
	}
}

// Update implements Ticker.
func (t TickerFunc) Update() {
	if t.OnUpdate != nil {
		t.OnUpdate()
	}
}

// Domain is a clock domain with an integer frequency.
type Domain struct {
	name    string
	freqHz  int64
	cycles  int64 // rising edges already delivered
	tickers []Ticker
	eng     *Engine
}

// Name returns the domain name given at creation.
func (d *Domain) Name() string { return d.name }

// FreqHz returns the domain frequency in hertz.
func (d *Domain) FreqHz() int64 { return d.freqHz }

// Cycles returns the number of rising edges delivered so far.
func (d *Domain) Cycles() int64 { return d.cycles }

// PeriodPs returns the clock period in picoseconds as a float (reporting
// only; the kernel itself never uses floating-point time).
func (d *Domain) PeriodPs() float64 { return 1e12 / float64(d.freqHz) }

// Attach registers a synchronous component with the domain.
func (d *Domain) Attach(t Ticker) {
	if t == nil {
		panic("sim: Attach(nil)")
	}
	d.tickers = append(d.tickers, t)
}

// Engine owns a set of clock domains and advances them in time order.
type Engine struct {
	domains []*Domain
	// stopErr is set by a Ticker via Fail and aborts the current Run.
	stopErr error
}

// NewEngine returns an empty engine.
func NewEngine() *Engine { return &Engine{} }

// NewDomain creates a clock domain. Frequency must be positive.
func (e *Engine) NewDomain(name string, freqHz int64) *Domain {
	if freqHz <= 0 {
		panic(fmt.Sprintf("sim: domain %q: frequency %d Hz must be positive", name, freqHz))
	}
	d := &Domain{name: name, freqHz: freqHz, eng: e}
	e.domains = append(e.domains, d)
	return d
}

// Domains returns the engine's domains in creation order.
func (e *Engine) Domains() []*Domain { return e.domains }

// Fail aborts the current Run with err. It is intended to be called from a
// Ticker when the model reaches an impossible state.
func (e *Engine) Fail(err error) { e.stopErr = err }

// edgeBefore reports whether domain a's next edge is strictly before b's.
// Next-edge times are (a.cycles+1)/a.freq and (b.cycles+1)/b.freq; compare
// by cross multiplication. Frequencies are bounded by ~1e9 and cycle counts
// by the run budget, so the products stay well inside int64.
func edgeBefore(a, b *Domain) bool {
	return (a.cycles+1)*b.freqHz < (b.cycles+1)*a.freqHz
}

// edgeCoincident reports whether the next edges of a and b are simultaneous.
func edgeCoincident(a, b *Domain) bool {
	return (a.cycles+1)*b.freqHz == (b.cycles+1)*a.freqHz
}

// ErrBudget is returned by Run variants when the cycle budget is exhausted
// before the stop condition is met.
var ErrBudget = errors.New("sim: cycle budget exhausted")

// Step delivers exactly one super-edge: the earliest pending edge across all
// domains together with every other domain edge coincident with it. It
// returns the domains that ticked.
func (e *Engine) Step() []*Domain {
	if len(e.domains) == 0 {
		return nil
	}
	earliest := e.domains[0]
	for _, d := range e.domains[1:] {
		if edgeBefore(d, earliest) {
			earliest = d
		}
	}
	var due []*Domain
	for _, d := range e.domains {
		if d == earliest || edgeCoincident(d, earliest) {
			due = append(due, d)
		}
	}
	// Deterministic order: creation order is preserved because we scan
	// e.domains in order.
	for _, d := range due {
		for _, t := range d.tickers {
			t.Eval()
		}
	}
	for _, d := range due {
		for _, t := range d.tickers {
			t.Update()
		}
		d.cycles++
	}
	return due
}

// RunUntil advances the simulation until done() reports true (checked after
// every super-edge) or maxEdges super-edges have been delivered, whichever
// comes first. It returns the number of super-edges delivered and ErrBudget
// if the budget ran out, or the error passed to Fail.
func (e *Engine) RunUntil(done func() bool, maxEdges int64) (int64, error) {
	e.stopErr = nil
	for n := int64(0); n < maxEdges; n++ {
		if done != nil && done() {
			return n, nil
		}
		e.Step()
		if e.stopErr != nil {
			return n + 1, e.stopErr
		}
	}
	if done != nil && done() {
		return maxEdges, nil
	}
	return maxEdges, ErrBudget
}

// RunCycles delivers exactly n rising edges to domain d (other domains tick
// as time passes).
func (e *Engine) RunCycles(d *Domain, n int64) {
	target := d.cycles + n
	for d.cycles < target {
		e.Step()
	}
}

// NowPs returns the current simulation time in picoseconds, defined as the
// time of the latest delivered edge across all domains. Reporting only.
func (e *Engine) NowPs() float64 {
	now := 0.0
	for _, d := range e.domains {
		t := float64(d.cycles) / float64(d.freqHz) * 1e12
		now = math.Max(now, t)
	}
	return now
}

// Validate checks cross-domain ratios: domains whose components exchange
// signals should have integer frequency ratios so edges align. It returns a
// descriptive error naming the first non-integer pair, or nil.
func (e *Engine) Validate() error {
	ds := append([]*Domain(nil), e.domains...)
	sort.Slice(ds, func(i, j int) bool { return ds[i].freqHz < ds[j].freqHz })
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			if ds[j].freqHz%ds[i].freqHz != 0 {
				return fmt.Errorf("sim: domains %q (%d Hz) and %q (%d Hz) have a non-integer ratio",
					ds[i].name, ds[i].freqHz, ds[j].name, ds[j].freqHz)
			}
		}
	}
	return nil
}
