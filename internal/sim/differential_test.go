package sim

// Differential test harness: the event-driven scheduler must be
// indistinguishable from the lockstep reference for every configuration —
// identical edge schedules when nothing is skippable, and identical
// observable state (cycle counts, component state, NowPs) when idle windows
// let the event engine bulk-skip. Configurations are generated from fixed
// seeds across 2–8 domains, integer and coprime frequency ratios, and
// random mixes of active, bounded-countdown and wait-for-input windows.

import (
	"fmt"
	"math/rand"
	"testing"
)

const (
	phActive = iota // does work every edge (never skippable)
	phCount         // bounded countdown: inert except the final edge
	phWait          // idle until another domain commits the wake flag
)

type sphase struct {
	kind int
	n    int64 // edges (phActive/phCount); ignored for phWait
}

// scriptTicker runs a cyclic phase script. It implements BulkIdler with the
// exact semantics the engine contract requires: countdown edges are pure
// decrements (the final one, which advances the script, is delivered), and
// wait phases are idle until the wake flag — set only by another ticker's
// Update — is observed high.
type scriptTicker struct {
	phases []sphase
	pi     int
	rem    int64

	edges  int64  // every edge, delivered or skipped
	active int64  // active edges only
	sum    uint64 // rolling hash over active edges (the observable)

	flag *bool   // wake flag this ticker waits on (phWait)
	out  []*bool // wake flags this ticker raises (driver role)
	// fireEvery raises every out flag each time active hits a multiple.
	fireEvery int64
	firePend  bool
}

func newScriptTicker(phases []sphase) *scriptTicker {
	return &scriptTicker{phases: phases, rem: phases[0].n}
}

func (t *scriptTicker) step() {
	t.pi = (t.pi + 1) % len(t.phases)
	t.rem = t.phases[t.pi].n
}

func (t *scriptTicker) Eval() {
	t.edges++
	switch t.phases[t.pi].kind {
	case phActive:
		t.active++
		t.sum = (t.sum ^ (uint64(t.edges)*31 + uint64(t.pi))) * 0x9E3779B97F4A7C15
		if t.fireEvery > 0 && t.active%t.fireEvery == 0 {
			t.firePend = true
		}
		t.rem--
		if t.rem == 0 {
			t.step()
		}
	case phCount:
		t.rem--
		if t.rem == 0 {
			t.step()
		}
	case phWait:
		if *t.flag {
			*t.flag = false
			t.step()
		}
	}
}

func (t *scriptTicker) Update() {
	if t.firePend {
		t.firePend = false
		for _, f := range t.out {
			*f = true
		}
	}
}

// IdleEdges implements BulkIdler.
func (t *scriptTicker) IdleEdges() int64 {
	switch t.phases[t.pi].kind {
	case phCount:
		// The committed rem is always >= 1 inside a countdown; the edge
		// that drops it to 0 advances the script and must be delivered.
		if t.rem > 1 {
			return t.rem - 1
		}
	case phWait:
		if !*t.flag {
			return IdleForever
		}
	}
	return 0
}

// SkipEdges implements BulkIdler: skipped edges count like delivered ones
// and fast-forward a countdown; skipped wait edges carry no state.
func (t *scriptTicker) SkipEdges(k int64) {
	t.edges += k
	if t.phases[t.pi].kind == phCount {
		t.rem -= k
	}
}

// domSpec describes one domain of a differential configuration.
type domSpec struct {
	freq       int64
	phases     []sphase
	hasWait    bool
	extraIdler bool // attach a pure (open-ended) Idler alongside
}

// diffResult is everything observable about one run, plus the number of
// engine steps taken (done() polls), which shows how much skipping helped.
type diffResult struct {
	cycles []int64
	edges  []int64
	active []int64
	sums   []uint64
	nowPs  float64
	steps  int64
}

// runSpec assembles fresh components for specs and runs them under sched
// until the driver (domain 0) has performed target active edges.
func runSpec(t *testing.T, sched Scheduler, specs []domSpec, fireEvery, target int64) diffResult {
	t.Helper()
	e := NewEngine()
	e.SetScheduler(sched)
	ticks := make([]*scriptTicker, len(specs))
	for i, s := range specs {
		d := e.NewDomain(fmt.Sprintf("d%d", i), s.freq)
		tk := newScriptTicker(s.phases)
		if s.hasWait {
			tk.flag = new(bool)
		}
		ticks[i] = tk
		d.Attach(tk)
		if s.extraIdler {
			d.Attach(alwaysIdle{})
		}
	}
	drv := ticks[0]
	drv.fireEvery = fireEvery
	for _, tk := range ticks[1:] {
		if tk.flag != nil {
			drv.out = append(drv.out, tk.flag)
		}
	}
	var polls int64
	if _, err := e.RunUntil(func() bool { polls++; return drv.active >= target }, 50_000_000); err != nil {
		t.Fatalf("%v run did not finish: %v", sched, err)
	}
	res := diffResult{nowPs: e.NowPs(), steps: polls}
	for i, d := range e.Domains() {
		res.cycles = append(res.cycles, d.Cycles())
		res.edges = append(res.edges, ticks[i].edges)
		res.active = append(res.active, ticks[i].active)
		res.sums = append(res.sums, ticks[i].sum)
	}
	return res
}

// randPhases builds a cyclic phase script; driver scripts never wait (so the
// system cannot deadlock), and every script does some active work.
func randPhases(r *rand.Rand, driver, canWait bool) ([]sphase, bool) {
	n := 2 + r.Intn(4)
	phases := make([]sphase, 0, n+1)
	hasWait := false
	for i := 0; i < n; i++ {
		switch k := r.Intn(3); {
		case k == 2 && canWait && !driver:
			phases = append(phases, sphase{kind: phWait})
			hasWait = true
		case k == 1:
			phases = append(phases, sphase{kind: phCount, n: 1 + int64(r.Intn(40))})
		default:
			phases = append(phases, sphase{kind: phActive, n: 1 + int64(r.Intn(6))})
		}
	}
	phases = append(phases, sphase{kind: phActive, n: 1 + int64(r.Intn(4))})
	return phases, hasWait
}

// intRatioFreqs yields frequencies with integer ratios (the fast schedule);
// one random domain runs at the full base rate so the set's maximum divides
// evenly into every member.
func intRatioFreqs(r *rand.Rand, n int) []int64 {
	base := int64(1+r.Intn(999)) * 48_000
	divs := []int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 48}
	out := make([]int64, n)
	for i := range out {
		out[i] = base / divs[r.Intn(len(divs))]
	}
	out[r.Intn(n)] = base
	return out
}

// coprimeFreqs yields pairwise-coprime frequencies, forcing the rational
// (cross-multiplied) schedule in both engines.
func coprimeFreqs(r *rand.Rand, n int) []int64 {
	primes := []int64{7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
	r.Shuffle(len(primes), func(i, j int) { primes[i], primes[j] = primes[j], primes[i] })
	out := make([]int64, n)
	for i := range out {
		out[i] = primes[i] * 1_000_003
	}
	return out
}

// TestDifferentialIdleConfigs is the headline equivalence test: for seeded
// random configurations of 2–8 domains, integer and coprime ratios, and
// random idle patterns, the event-driven engine (which bulk-skips) and the
// lockstep engine (which delivers every edge) must agree on every
// observable: per-domain cycle counts, per-component edge and active-edge
// counts, the active-edge hash, and simulated time.
func TestDifferentialIdleConfigs(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			nd := 2 + r.Intn(7)
			coprime := seed%3 == 2
			var freqs []int64
			if coprime {
				freqs = coprimeFreqs(r, nd)
			} else {
				freqs = intRatioFreqs(r, nd)
			}
			specs := make([]domSpec, nd)
			for i := range specs {
				phases, hasWait := randPhases(r, i == 0, true)
				specs[i] = domSpec{
					freq:       freqs[i],
					phases:     phases,
					hasWait:    hasWait,
					extraIdler: r.Intn(4) == 0,
				}
			}
			fireEvery := int64(1 + r.Intn(3))
			lock := runSpec(t, Lockstep, specs, fireEvery, 200)
			evnt := runSpec(t, EventDriven, specs, fireEvery, 200)
			if lock.nowPs != evnt.nowPs {
				t.Errorf("NowPs: lockstep %v, event %v", lock.nowPs, evnt.nowPs)
			}
			for i := 0; i < nd; i++ {
				if lock.cycles[i] != evnt.cycles[i] {
					t.Errorf("domain %d cycles: lockstep %d, event %d", i, lock.cycles[i], evnt.cycles[i])
				}
				if lock.edges[i] != evnt.edges[i] {
					t.Errorf("domain %d edges: lockstep %d, event %d", i, lock.edges[i], evnt.edges[i])
				}
				if lock.active[i] != evnt.active[i] {
					t.Errorf("domain %d active: lockstep %d, event %d", i, lock.active[i], evnt.active[i])
				}
				if lock.sums[i] != evnt.sums[i] {
					t.Errorf("domain %d hash: lockstep %#x, event %#x", i, lock.sums[i], evnt.sums[i])
				}
			}
		})
	}
}

// traceSchedule drives an engine Step by Step and records the full edge
// schedule: for every super-edge, the due domains (by creation order) and
// their post-edge cycle counts.
func traceSchedule(sched Scheduler, freqs []int64, steps int) ([]int64, float64, int64) {
	e := NewEngine()
	e.SetScheduler(sched)
	for i, f := range freqs {
		d := e.NewDomain(fmt.Sprintf("d%d", i), f)
		d.Attach(&counter{})
	}
	var trace []int64
	for s := 0; s < steps; s++ {
		for _, d := range e.Step() {
			trace = append(trace, int64(d.order)<<32|d.Cycles())
		}
		trace = append(trace, -1)
	}
	// A second engine over the same frequencies checks the run-loop edge
	// accounting: with nothing skippable both schedulers count identically.
	e2 := NewEngine()
	e2.SetScheduler(sched)
	for i, f := range freqs {
		d := e2.NewDomain(fmt.Sprintf("d%d", i), f)
		d.Attach(&counter{})
	}
	n, _ := e2.RunUntil(nil, int64(steps))
	return trace, e.NowPs(), n
}

// TestDifferentialSchedules pins exact super-edge equivalence when nothing
// is skippable: the heap (or rational) event schedule must deliver the
// same due sets in the same order with the same cycle counts as the
// lockstep linear scan, and the run loops must count the same number of
// super-edges.
func TestDifferentialSchedules(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed + 1000))
			nd := 2 + r.Intn(7)
			var freqs []int64
			if seed%2 == 0 {
				freqs = intRatioFreqs(r, nd)
			} else {
				freqs = coprimeFreqs(r, nd)
			}
			lockT, lockNow, lockN := traceSchedule(Lockstep, freqs, 600)
			evntT, evntNow, evntN := traceSchedule(EventDriven, freqs, 600)
			if lockNow != evntNow {
				t.Errorf("NowPs: lockstep %v, event %v", lockNow, evntNow)
			}
			if lockN != evntN {
				t.Errorf("RunUntil count: lockstep %d, event %d", lockN, evntN)
			}
			if len(lockT) != len(evntT) {
				t.Fatalf("trace lengths differ: lockstep %d, event %d", len(lockT), len(evntT))
			}
			for i := range lockT {
				if lockT[i] != evntT[i] {
					t.Fatalf("trace diverges at %d: lockstep %#x, event %#x", i, lockT[i], evntT[i])
				}
			}
		})
	}
}

// TestDifferentialBoundedSkipExact is a directed (non-random) case easy to
// reason about by hand: three integer-ratio domains, one driver working one
// edge in four, one long-countdown component and one wait-for-input
// component. It additionally pins that the event engine really skips (the
// step count is smaller), so the equivalence above is not vacuous.
func TestDifferentialBoundedSkipExact(t *testing.T) {
	specs := []domSpec{
		{freq: 48_000_000, phases: []sphase{{kind: phActive, n: 1}, {kind: phCount, n: 31}}},
		{freq: 24_000_000, phases: []sphase{{kind: phCount, n: 63}, {kind: phActive, n: 2}}},
		{freq: 12_000_000, phases: []sphase{{kind: phWait}, {kind: phActive, n: 1}}, hasWait: true},
	}
	lock := runSpec(t, Lockstep, specs, 2, 400)
	evnt := runSpec(t, EventDriven, specs, 2, 400)
	for i := range specs {
		if lock.cycles[i] != evnt.cycles[i] || lock.sums[i] != evnt.sums[i] || lock.edges[i] != evnt.edges[i] {
			t.Errorf("domain %d diverged: cycles %d/%d edges %d/%d hash %#x/%#x",
				i, lock.cycles[i], evnt.cycles[i], lock.edges[i], evnt.edges[i], lock.sums[i], evnt.sums[i])
		}
	}
	if lock.nowPs != evnt.nowPs {
		t.Errorf("NowPs: lockstep %v, event %v", lock.nowPs, evnt.nowPs)
	}
	// The idle windows above dominate the schedule; the event engine must
	// have covered the same simulated span in far fewer steps, proving the
	// equivalence asserted here is about real skipping, not a no-op.
	if evnt.steps*2 >= lock.steps {
		t.Errorf("event engine took %d steps vs lockstep %d; expected <50%%", evnt.steps, lock.steps)
	}
}
