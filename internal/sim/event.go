package sim

import "math"

// This file implements the event-driven scheduler: a binary min-heap of
// next-edge times for the integer-ratio fast mode, a cross-multiplied
// rational fallback for arbitrary frequencies, and the generalised idle
// bulk-skip that jumps any subset of idle domains to the wake horizon — the
// earliest non-inert edge across all domains — in one pass. The
// single-domain and two-domain integer-ratio layouts (every assembled
// platform) are dispatched through heap-free inline paths with the same
// semantics; the heap carries the n >= 3 boards.
//
// Ordering contract: both modes deliver exactly the super-edge the lockstep
// scheduler would deliver, with coincident domains Evaluated and Updated in
// creation order. The differential tests pin this equivalence.

// domBefore orders domains by next-edge tick, ties broken by creation
// order so coincident pops come out in delivery order.
func domBefore(a, b *Domain) bool {
	return a.nextAt < b.nextAt || (a.nextAt == b.nextAt && a.order < b.order)
}

// heapInit (re)builds the event heap over all domains. Called from plan and
// after a bulk-skip pass rewrites many nextAt values at once.
func (e *Engine) heapInit() {
	e.eheap = append(e.eheap[:0], e.domains...)
	for i := len(e.eheap)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
	e.statHeapOps += int64(len(e.eheap))
}

func (e *Engine) siftDown(i int) {
	h := e.eheap
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && domBefore(h[l], h[min]) {
			min = l
		}
		if r < n && domBefore(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

func (e *Engine) siftUp(i int) {
	h := e.eheap
	for i > 0 {
		p := (i - 1) / 2
		if !domBefore(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// heapPop removes and returns the earliest domain.
func (e *Engine) heapPop() *Domain {
	h := e.eheap
	d := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	e.eheap = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	e.statHeapOps++
	return d
}

// heapPush inserts a domain after its nextAt moved forward.
func (e *Engine) heapPush(d *Domain) {
	e.eheap = append(e.eheap, d)
	e.siftUp(len(e.eheap) - 1)
	e.statHeapOps++
}

// wakeFrom returns the absolute tick of the domain's first non-inert edge
// given its current idle count k: nextAt when busy, nextAt + k·ratio for a
// bounded idle window, and math.MaxInt64 for open-ended idleness (or on
// arithmetic overflow, which merely shortens a skip — always sound).
func (d *Domain) wakeFrom(k int64) int64 {
	if k == 0 {
		return d.nextAt
	}
	if k < IdleForever && k <= (math.MaxInt64-d.nextAt)/d.ratio {
		return d.nextAt + k*d.ratio
	}
	return math.MaxInt64
}

// wakeAt is wakeFrom with a fresh idleness query.
func (d *Domain) wakeAt() int64 { return d.wakeFrom(d.idleEdges()) }

// spanEdges counts the edges of d in [d.nextAt, T), i.e. strictly before
// tick T. The dominant ratio-1 case avoids the integer division.
func spanEdges(d *Domain, T int64) int64 {
	s := T - d.nextAt
	if d.ratio != 1 {
		s /= d.ratio
	}
	return s
}

// eventStep advances the simulation by one event: either one delivered
// super-edge, or a bulk-skip window ending in one. It records the delivered
// domains in e.due and returns the number of super-edge times consumed
// (counting skipped idle edges, like the lockstep fast path does).
func (e *Engine) eventStep() int64 {
	switch {
	case len(e.domains) == 1:
		return e.eventStepSolo()
	case e.fast && len(e.domains) == 2:
		return e.eventStepPair()
	case e.fast:
		return e.eventStepFast()
	default:
		return e.eventStepGeneral()
	}
}

// probeMax bounds the adaptive probe backoff of the hot step paths: after
// a streak of fruitless idleness queries the engine probes a domain only
// every probeMax-th due edge. Probing less often never changes results —
// delivering an inert edge is exactly what the lockstep scheduler does —
// it only trades a little skip coverage on the first edges of an idle
// window for near-zero overhead on workloads with no skippable windows.
const probeMax = 4

// probedIdleEdges is idleEdges behind the adaptive backoff: any idle
// answer resets the cadence, a busy streak stretches it.
func (d *Domain) probedIdleEdges() int64 {
	if d.probe > 0 {
		d.probe--
		return 0
	}
	k := d.idleEdges()
	if k > 0 {
		d.probeBack = 0
		return k
	}
	if d.probeBack < probeMax {
		d.probeBack++
	}
	d.probe = d.probeBack
	return 0
}

// eventStepSolo handles the single-domain engine: no schedule to consult,
// and a bounded idle window (a compute phase) is jumped in one call. An
// open-ended idle window is not skippable — with no other domain to wake
// the component, the engine delivers the no-op edges one by one so run
// budgets still advance, exactly as lockstep does.
func (e *Engine) eventStepSolo() int64 {
	d := e.domains[0]
	if e.noSkip == 0 && d.skippable {
		if d.probe > 0 {
			d.probe--
		} else if k := d.idleEdges(); k > 0 && k < IdleForever {
			d.probeBack = 0
			d.skipEdges(k)
			d.tick()
			return k + 1
		} else {
			// Open-ended idleness is useless to a solo engine (nothing can
			// wake the domain), so it backs the probe off like busy does.
			if d.probeBack < probeMax {
				d.probeBack++
			}
			d.probe = d.probeBack
		}
	}
	d.tick()
	return 1
}

// eventStepPair is the two-domain integer-ratio event step: a pair needs no
// heap, just one compare, mirroring the lockstep inline path — but idleness
// is the generalised kind (bounded compute windows included, any ratio),
// dispatched through the shared pair skip pass.
func (e *Engine) eventStepPair() int64 {
	d0, d1 := e.domains[0], e.domains[1]
	if d0.nextAt < d1.nextAt {
		return e.pairSolo(d0, d1)
	}
	if d1.nextAt < d0.nextAt {
		return e.pairSolo(d1, d0)
	}
	// Coincident super-edge.
	if e.noSkip == 0 {
		k0 := d0.probedIdleEdges()
		k1 := d1.probedIdleEdges()
		if k0 > 0 || k1 > 0 {
			return e.pairSkip(d0, d1, k0, k1)
		}
	}
	e.due = append(e.due[:0], d0, d1)
	e.deliverPair(d0, d1)
	return 1
}

// pairSolo delivers an edge due on one domain of a pair, or enters the skip
// pass when the due domain is idle. Idleness is queried through the probe
// backoff, so a never-idle pair (a busy pipelined-IMU board) degrades to
// within a probe of the lockstep inline cost.
func (e *Engine) pairSolo(due, other *Domain) int64 {
	if e.noSkip == 0 {
		if k := due.probedIdleEdges(); k > 0 {
			return e.pairSkip(due, other, k, other.idleEdges())
		}
	}
	e.due = append(e.due[:0], due)
	due.tick()
	return 1
}

// deliverPair runs a coincident super-edge on two domains in creation
// order: all Evals before any Update.
func (e *Engine) deliverPair(d0, d1 *Domain) {
	if d1.order < d0.order {
		d0, d1 = d1, d0
	}
	for _, t := range d0.tickers {
		t.Eval()
	}
	for _, t := range d1.tickers {
		t.Eval()
	}
	for _, t := range d0.tickers {
		t.Update()
	}
	d0.cycles++
	d0.nextAt += d0.ratio
	for _, t := range d1.tickers {
		t.Update()
	}
	d1.cycles++
	d1.nextAt += d1.ratio
}

// pairSkip is the two-domain wake-horizon pass: T is the earlier of the two
// domains' first non-inert edges; edges at ticks <= T of a domain still
// inert there are consumed in bulk, and domains waking exactly at T get a
// delivered edge. A skipped edge coincident with T is sound to drop
// silently: its Eval would run before any Update at T commits, so it
// observes exactly the state that made it inert.
func (e *Engine) pairSkip(a, b *Domain, ka, kb int64) int64 {
	wa, wb := a.wakeFrom(ka), b.wakeFrom(kb)
	T := wa
	if wb < T {
		T = wb
	}
	if T == math.MaxInt64 {
		// Both idle until input neither will produce: deliver the earliest
		// (no-op) super-edge so run budgets advance, exactly as lockstep.
		if a.nextAt < b.nextAt {
			e.due = append(e.due[:0], a)
			a.tick()
		} else if b.nextAt < a.nextAt {
			e.due = append(e.due[:0], b)
			b.tick()
		} else {
			e.due = append(e.due[:0], a, b)
			e.deliverPair(a, b)
		}
		return 1
	}
	consumed := int64(1)
	var dela, delb bool
	if a.nextAt <= T {
		if wa == T {
			if s := spanEdges(a, T); s > 0 {
				a.skipEdges(s)
				if s+1 > consumed {
					consumed = s + 1
				}
			}
			dela = true
		} else {
			s := spanEdges(a, T) + 1
			a.skipEdges(s)
			if s > consumed {
				consumed = s
			}
		}
	}
	if b.nextAt <= T {
		if wb == T {
			if s := spanEdges(b, T); s > 0 {
				b.skipEdges(s)
				if s+1 > consumed {
					consumed = s + 1
				}
			}
			delb = true
		} else {
			s := spanEdges(b, T) + 1
			b.skipEdges(s)
			if s > consumed {
				consumed = s
			}
		}
	}
	switch {
	case dela && delb:
		e.due = append(e.due[:0], a, b)
		e.deliverPair(a, b)
	case dela:
		e.due = append(e.due[:0], a)
		a.tick()
	default:
		e.due = append(e.due[:0], b)
		b.tick()
	}
	return consumed
}

// eventStepFast is the n >= 3 integer-ratio event step. The heap yields the
// due set in creation order in O(due · log n); the skip pass, taken only
// when a due domain is idle, scans all domains once for the wake horizon.
func (e *Engine) eventStepFast() int64 {
	t0 := e.eheap[0].nextAt
	due := e.due[:0]
	for len(e.eheap) > 0 && e.eheap[0].nextAt == t0 {
		due = append(due, e.heapPop())
	}
	e.due = due
	if e.noSkip == 0 {
		for _, d := range due {
			if d.probedIdleEdges() > 0 {
				// The popped due set is re-derived from e.domains and the
				// heap rebuilt wholesale by the skip pass (which queries
				// every domain's idleness fresh, un-probed).
				return e.eventSkipFast()
			}
		}
	}
	for _, d := range due {
		for _, t := range d.tickers {
			t.Eval()
		}
	}
	for _, d := range due {
		for _, t := range d.tickers {
			t.Update()
		}
		d.cycles++
		d.nextAt += d.ratio
	}
	for _, d := range due {
		e.heapPush(d)
	}
	return 1
}

// eventSkipFast advances an n >= 3 engine to the wake horizon T: the
// earliest tick at which any domain has a non-inert edge. Idle domains
// consume all their (provably no-op) edges at ticks <= T in bulk; domains
// whose first non-inert edge lands exactly on T are delivered a normal
// super-edge there.
func (e *Engine) eventSkipFast() int64 {
	T := int64(math.MaxInt64)
	for _, d := range e.domains {
		d.wake = d.wakeAt()
		if d.wake < T {
			T = d.wake
		}
	}
	if T == math.MaxInt64 {
		// Every domain is idle until input that no domain will produce:
		// deliver the earliest (no-op) super-edge so run budgets advance.
		t0 := e.domains[0].nextAt
		for _, d := range e.domains[1:] {
			if d.nextAt < t0 {
				t0 = d.nextAt
			}
		}
		T = t0
		for _, d := range e.domains {
			d.wake = d.nextAt
		}
	}
	consumed := int64(1)
	due := e.due[:0]
	for _, d := range e.domains { // creation order
		if d.nextAt > T {
			continue
		}
		if d.wake == T {
			if s := spanEdges(d, T); s > 0 {
				d.skipEdges(s)
				if s+1 > consumed {
					consumed = s + 1
				}
			}
			due = append(due, d)
		} else {
			s := spanEdges(d, T) + 1
			d.skipEdges(s)
			if s > consumed {
				consumed = s
			}
		}
	}
	for _, d := range due {
		for _, t := range d.tickers {
			t.Eval()
		}
	}
	for _, d := range due {
		for _, t := range d.tickers {
			t.Update()
		}
		d.cycles++
		d.nextAt += d.ratio
	}
	e.due = due
	e.heapInit()
	return consumed
}

// maxBoundedIdle caps bounded idle windows in the rational (non-integer
// ratio) mode so wake-time cross-multiplications cannot overflow int64.
// Skipping fewer edges than a component advertises is always sound — the
// next step simply skips again — so the cap costs only a little speed on
// absurdly long countdowns.
const maxBoundedIdle = int64(1) << 31

// eventStepGeneral is the event step for engines whose frequencies have
// non-integer ratios: next-edge times are the rationals (cycles+1)/freqHz,
// compared by cross-multiplication exactly like the lockstep fallback.
func (e *Engine) eventStepGeneral() int64 {
	earliest := e.domains[0]
	for _, d := range e.domains[1:] {
		if edgeBefore(d, earliest) {
			earliest = d
		}
	}
	if e.noSkip == 0 {
		for _, d := range e.domains {
			if (d == earliest || edgeCoincident(d, earliest)) && d.idleEdges() > 0 {
				return e.eventSkipGeneral()
			}
		}
	}
	due := e.due[:0]
	for _, d := range e.domains {
		if d == earliest || edgeCoincident(d, earliest) {
			due = append(due, d)
		}
	}
	for _, d := range due {
		for _, t := range d.tickers {
			t.Eval()
		}
	}
	for _, d := range due {
		for _, t := range d.tickers {
			t.Update()
		}
		d.cycles++
		d.nextAt += d.ratio
	}
	e.due = due
	return 1
}

// eventSkipGeneral is the rational-time bulk-skip: the wake horizon T is
// the minimum of the per-domain rationals (cycles+1+idle)/freqHz, and a
// domain's edge count up to T is floor(Tnum·freq/Tden) — inside the same
// cross-multiplication bound the comparisons rely on.
func (e *Engine) eventSkipGeneral() int64 {
	var tn, td int64
	haveT := false
	for _, d := range e.domains {
		k := d.idleEdges()
		if k >= IdleForever {
			d.wake = -1 // idle until input: no wake edge of its own
			continue
		}
		if k > maxBoundedIdle {
			k = maxBoundedIdle
		}
		d.wake = d.cycles + 1 + k
		if !haveT || d.wake*td < tn*d.freqHz {
			tn, td = d.wake, d.freqHz
			haveT = true
		}
	}
	if !haveT {
		// Everything idle until input: deliver the earliest no-op edge.
		earliest := e.domains[0]
		for _, d := range e.domains[1:] {
			if edgeBefore(d, earliest) {
				earliest = d
			}
		}
		tn, td = earliest.cycles+1, earliest.freqHz
		for _, d := range e.domains {
			d.wake = d.cycles + 1
		}
	}
	consumed := int64(1)
	due := e.due[:0]
	for _, d := range e.domains { // creation order
		// Edges of d at times <= T, minus those already delivered.
		r := tn*d.freqHz/td - d.cycles
		if r <= 0 {
			continue
		}
		if d.wake >= 0 && d.wake*td == tn*d.freqHz {
			if r-1 > 0 {
				d.skipEdges(r - 1)
			}
			if r > consumed {
				consumed = r
			}
			due = append(due, d)
		} else {
			d.skipEdges(r)
			if r > consumed {
				consumed = r
			}
		}
	}
	for _, d := range due {
		for _, t := range d.tickers {
			t.Eval()
		}
	}
	for _, d := range due {
		for _, t := range d.tickers {
			t.Update()
		}
		d.cycles++
		d.nextAt += d.ratio
	}
	e.due = due
	return consumed
}
