package sim

// Reg is a clocked register holding a value of type T. During Eval a
// component reads other components' registers with Get (committed value) and
// schedules its own next value with Set; the owning component's Update must
// call Commit. Reg is the basic building block for honouring the two-phase
// discipline without hand-writing cur/next pairs.
type Reg[T any] struct {
	cur, next T
	pending   bool
}

// NewReg returns a register initialised (and committed) to v.
func NewReg[T any](v T) Reg[T] {
	return Reg[T]{cur: v, next: v}
}

// Get returns the committed value.
func (r *Reg[T]) Get() T { return r.cur }

// Ref returns a read-only pointer to the committed value, valid until the
// next Commit or Force. It lets per-edge hot paths inspect wide registers
// without copying them; callers must not write through it.
func (r *Reg[T]) Ref() *T { return &r.cur }

// Set schedules v to become the committed value at the next Commit.
func (r *Reg[T]) Set(v T) {
	r.next = v
	r.pending = true
}

// Commit applies the value scheduled by Set, if any.
func (r *Reg[T]) Commit() {
	if r.pending {
		r.cur = r.next
		r.pending = false
	}
}

// Force immediately sets both the committed and pending value. It is meant
// for reset logic and testbenches, not for use during Eval.
func (r *Reg[T]) Force(v T) {
	r.cur = v
	r.next = v
	r.pending = false
}
