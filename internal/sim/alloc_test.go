package sim

import (
	"fmt"
	"testing"
)

// TestStepZeroAllocSteadyState pins the allocation-free contract of the
// kernel: after the first super-edge (which sizes the scratch due buffer and
// builds the scheduling plan), Step must not allocate.
func TestStepZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	fast := e.NewDomain("fast", 24_000_000)
	slow := e.NewDomain("slow", 6_000_000)
	fast.Attach(&counter{})
	slow.Attach(&counter{})
	e.Step() // warm up: scratch buffer + plan

	if avg := testing.AllocsPerRun(1000, func() { e.Step() }); avg != 0 {
		t.Fatalf("Step allocates %v times per super-edge in steady state, want 0", avg)
	}
}

// TestDoneCheckIntervalBatching verifies the batched polling semantics:
// with an interval of k, done() is consulted every k super-edges, so a
// condition that becomes true mid-batch is detected at the next boundary.
func TestDoneCheckIntervalBatching(t *testing.T) {
	e := NewEngine()
	d := e.NewDomain("clk", 1000)
	c := &counter{}
	d.Attach(c)
	e.SetDoneCheckInterval(4)
	n, err := e.RunUntil(func() bool { return c.n.Get() >= 5 }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// The condition holds after edge 5; the next check is at edge 8.
	if n != 8 {
		t.Fatalf("edges = %d, want 8 (condition at 5, checked every 4)", n)
	}
	e.SetDoneCheckInterval(1)
	n, err = e.RunUntil(func() bool { return c.n.Get() >= 9 }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("edges = %d, want 1 (exact polling restored)", n)
	}
}

// TestIdleSkipMatchesUnskipped verifies that disabling idle bulk-skip (via
// RunCycles, which suspends it) and running edge by edge produces the same
// cycle counts a skipped run does: the idle windows are jumped, never lost.
func TestIdleSkipMatchesUnskipped(t *testing.T) {
	type idleCounter struct{ counter }
	// A ticker that is always idle would never be delivered an edge by a
	// skipping engine; pair an idle fast domain with an active slow one
	// and check the fast domain's cycle accounting stays exact.
	e := NewEngine()
	fast := e.NewDomain("fast", 4000)
	slow := e.NewDomain("slow", 1000)
	fast.Attach(alwaysIdle{})
	cs := &idleCounter{}
	slow.Attach(cs)
	for i := 0; i < 7; i++ {
		e.step()
	}
	// 7 super-edges with skipping: each slow edge consumes its window of
	// four fast edges, so cycles advance as if unskipped.
	if cs.n.Get() != 7 {
		t.Fatalf("slow counter = %d, want 7", cs.n.Get())
	}
	if fast.Cycles() != 28 || slow.Cycles() != 7 {
		t.Fatalf("cycles fast=%d slow=%d, want 28/7", fast.Cycles(), slow.Cycles())
	}
}

// TestStatsAccountAllEdges pins the telemetry invariant behind
// Engine.Stats: delivered plus skipped edges must equal the sum of the
// per-domain cycle counters, under both schedulers and across every skip
// path (the lockstep inline skip bypasses Domain.skipEdges and is counted
// separately).
func TestStatsAccountAllEdges(t *testing.T) {
	for _, sched := range []Scheduler{EventDriven, Lockstep} {
		e := NewEngine()
		e.SetScheduler(sched)
		fast := e.NewDomain("fast", 4000)
		slow := e.NewDomain("slow", 1000)
		fast.Attach(alwaysIdle{})
		c := &counter{}
		slow.Attach(c)
		for i := 0; i < 100; i++ {
			e.step()
		}
		st := e.Stats()
		total := fast.Cycles() + slow.Cycles()
		if st.EdgesDelivered+st.EdgesSkipped != total {
			t.Fatalf("%v: delivered %d + skipped %d != total cycles %d",
				sched, st.EdgesDelivered, st.EdgesSkipped, total)
		}
		if st.EdgesSkipped == 0 {
			t.Fatalf("%v: idle fast domain skipped no edges", sched)
		}
		if sched == Lockstep && st.HeapOps != 0 {
			t.Fatalf("lockstep scheduler recorded %d heap ops, want 0", st.HeapOps)
		}
	}
	// The n >= 3 event layout is the only one that touches the heap.
	e := NewEngine()
	e.SetScheduler(EventDriven)
	for i, hz := range []int64{4000, 2000, 1000} {
		e.NewDomain(fmt.Sprintf("d%d", i), hz).Attach(&counter{})
	}
	for i := 0; i < 50; i++ {
		e.step()
	}
	if st := e.Stats(); st.HeapOps == 0 {
		t.Fatal("three-domain event engine recorded no heap ops")
	}
}

// alwaysIdle is a Ticker+Idler whose edges are permanent no-ops.
type alwaysIdle struct{}

func (alwaysIdle) Eval()                {}
func (alwaysIdle) Update()              {}
func (alwaysIdle) IdleUntilInput() bool { return true }

// TestEventStepZeroAllocAllLayouts pins the allocation-free contract of the
// event-driven scheduler across every dispatch path: the solo and pair
// inline paths, the n >= 3 heap path (pop/push per super-edge), and the
// bulk-skip passes (which rebuild the heap). After warm-up, neither Step
// nor the skip machinery may allocate.
func TestEventStepZeroAllocAllLayouts(t *testing.T) {
	build := func(domains int) *Engine {
		e := NewEngine()
		e.SetScheduler(EventDriven)
		for i := 0; i < domains; i++ {
			d := e.NewDomain(fmt.Sprintf("d%d", i), int64(48_000_000)>>(i%3))
			if i%2 == 0 {
				// Alternating active/countdown windows keep the skip
				// passes (and heap rebuilds) on the measured path.
				d.Attach(&phaseBulk{active: 2, idle: 16, rem: 2})
			} else {
				d.Attach(&counter{})
			}
		}
		for i := 0; i < 64; i++ {
			e.step() // warm up: plan, heap, due scratch, skip pass
		}
		return e
	}
	for _, domains := range []int{1, 2, 3, 8} {
		e := build(domains)
		if avg := testing.AllocsPerRun(2000, func() { e.step() }); avg != 0 {
			t.Fatalf("event step with %d domains allocates %v times per super-edge, want 0", domains, avg)
		}
	}
}

// TestRunUntilFlagZeroAlloc pins the same contract for the flag-polled run
// loop the execute path uses.
func TestRunUntilFlagZeroAlloc(t *testing.T) {
	e := NewEngine()
	d := e.NewDomain("clk", 1_000_000)
	d.Attach(&counter{})
	stop := false
	e.Step()

	if avg := testing.AllocsPerRun(100, func() {
		if _, err := e.RunUntilFlag(&stop, 64); err != nil && err != ErrBudget {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("RunUntilFlag allocates %v times per call, want 0", avg)
	}
}
