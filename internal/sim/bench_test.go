package sim

import (
	"fmt"
	"testing"
)

// busyBulk is a BulkIdler that is never idle — the worst case for the
// event scheduler's per-edge idleness probing (a coprocessor core that
// always has work, like the vector adder).
type busyBulk struct{ n int64 }

func (b *busyBulk) Eval()            { b.n++ }
func (b *busyBulk) Update()          {}
func (b *busyBulk) IdleEdges() int64 { return 0 }
func (b *busyBulk) SkipEdges(int64)  {}

// busyIdler is an Idler that is never idle (an IMU with traffic in flight).
type busyIdler struct{ n int64 }

func (b *busyIdler) Eval()                { b.n++ }
func (b *busyIdler) Update()              {}
func (b *busyIdler) IdleUntilInput() bool { return false }

// phaseBulk alternates active and bounded-idle windows of fixed length,
// modelling a core with multi-cycle compute phases between accesses.
type phaseBulk struct {
	active, idle int64 // window lengths
	rem          int64 // edges left in the current window
	inIdle       bool
	work         int64 // counts active edges only
}

func (p *phaseBulk) Eval() {
	if p.rem == 0 {
		p.inIdle = !p.inIdle
		if p.inIdle {
			p.rem = p.idle
		} else {
			p.rem = p.active
		}
	}
	p.rem--
	if !p.inIdle {
		p.work++
	}
}
func (p *phaseBulk) Update() {}

// IdleEdges: the decrement edges inside an idle window are inert; the edge
// that flips between windows changes behaviour and must be delivered.
func (p *phaseBulk) IdleEdges() int64 {
	if p.inIdle && p.rem > 0 {
		return p.rem
	}
	return 0
}
func (p *phaseBulk) SkipEdges(k int64) { p.rem -= k }

func schedulers() []struct {
	name  string
	sched Scheduler
} {
	return []struct {
		name  string
		sched Scheduler
	}{{"lockstep", Lockstep}, {"event", EventDriven}}
}

// BenchmarkSoloBusy pins the per-edge overhead of a single-domain engine
// whose components never idle: the event scheduler's probe backoff should
// keep it within a few percent of lockstep.
func BenchmarkSoloBusy(b *testing.B) {
	for _, s := range schedulers() {
		b.Run(s.name, func(b *testing.B) {
			e := NewEngine()
			e.SetScheduler(s.sched)
			d := e.NewDomain("clk", 40_000_000)
			d.Attach(&busyBulk{})
			d.Attach(&busyIdler{})
			e.Step()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.step()
			}
		})
	}
}

// BenchmarkPairWait pins the two-domain layout of the IDEA board: a
// ratio-1 domain that idles between bursts (the IMU) against a slower
// always-busy domain (a core waiting on translated accesses). Iterations
// cover a fixed simulated span so the schedulers are comparable even
// though the event engine consumes several edges per step.
func BenchmarkPairWait(b *testing.B) {
	for _, s := range schedulers() {
		b.Run(s.name, func(b *testing.B) {
			e := NewEngine()
			e.SetScheduler(s.sched)
			fast := e.NewDomain("imu", 24_000_000)
			slow := e.NewDomain("copro", 6_000_000)
			fast.Attach(&phaseBulk{active: 4, idle: 4, rem: 4})
			slow.Attach(&busyBulk{})
			e.Step()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				target := fast.Cycles() + 64
				if _, err := e.RunUntil(func() bool { return fast.Cycles() >= target }, 1<<40); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNDomainIdle is the acceptance benchmark for the generalised
// event scheduler: boards with three or more clock domains where most
// domains are idle on well over half their edges. Lockstep must deliver
// every inert edge; the event scheduler jumps each idle subset to the wake
// horizon, so its advantage grows with domain count and idle fraction.
// Iteration cost is normalised per delivered unit of work, not per edge:
// both schedulers run the same simulated span per loop.
func BenchmarkNDomainIdle(b *testing.B) {
	for _, n := range []int{3, 4, 8} {
		for _, s := range schedulers() {
			b.Run(fmt.Sprintf("domains=%d/%s", n, s.name), func(b *testing.B) {
				e := NewEngine()
				e.SetScheduler(s.sched)
				driver := e.NewDomain("drv", 48_000_000)
				// The driver works one edge in eight; every other domain
				// idles in long countdown windows (>= 87% idle edges).
				driver.Attach(&phaseBulk{active: 1, idle: 7, rem: 1})
				for i := 1; i < n; i++ {
					d := e.NewDomain(fmt.Sprintf("idle%d", i), 48_000_000/int64(1<<(i%3)))
					d.Attach(&phaseBulk{active: 1, idle: 63, rem: 1})
				}
				e.Step()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Advance a fixed simulated span with skipping allowed
					// (RunCycles would suspend it): both schedulers cover
					// identical simulated time per iteration.
					target := driver.Cycles() + 512
					if _, err := e.RunUntil(func() bool { return driver.Cycles() >= target }, 1<<40); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
