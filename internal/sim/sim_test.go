package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

// counter increments a register once per edge.
type counter struct {
	n Reg[int]
}

func (c *counter) Eval()   { c.n.Set(c.n.Get() + 1) }
func (c *counter) Update() { c.n.Commit() }

func TestSingleDomainCounts(t *testing.T) {
	e := NewEngine()
	d := e.NewDomain("clk", 100)
	c := &counter{}
	d.Attach(c)
	e.RunCycles(d, 10)
	if got := c.n.Get(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if d.Cycles() != 10 {
		t.Fatalf("cycles = %d, want 10", d.Cycles())
	}
}

func TestIntegerRatioDomainsStayLocked(t *testing.T) {
	e := NewEngine()
	fast := e.NewDomain("fast", 24_000_000)
	slow := e.NewDomain("slow", 6_000_000)
	cf, cs := &counter{}, &counter{}
	fast.Attach(cf)
	slow.Attach(cs)
	e.RunCycles(fast, 400)
	if got := cf.n.Get(); got != 400 {
		t.Fatalf("fast = %d, want 400", got)
	}
	// slow runs at exactly 1/4 rate; after 400 fast edges 100 slow edges
	// have occurred (the t=0+ first edges coincide).
	if got := cs.n.Get(); got != 100 {
		t.Fatalf("slow = %d, want 100", got)
	}
}

// sampler records the value another component's register had at each of its
// own edges, to verify the two-phase contract: a same-edge write must not be
// visible.
type sampler struct {
	src  *counter
	seen []int
}

func (s *sampler) Eval()   { s.seen = append(s.seen, s.src.n.Get()) }
func (s *sampler) Update() {}

func TestTwoPhaseNoSameEdgeVisibility(t *testing.T) {
	e := NewEngine()
	d := e.NewDomain("clk", 1000)
	c := &counter{}
	s := &sampler{src: c}
	// Attach the sampler first so that, were the kernel single-phase in
	// reverse order, it would see updated values.
	d.Attach(s)
	d.Attach(c)
	e.RunCycles(d, 5)
	want := []int{0, 1, 2, 3, 4}
	for i, v := range want {
		if s.seen[i] != v {
			t.Fatalf("edge %d: sampled %d, want %d (same-edge write leaked)", i, s.seen[i], v)
		}
	}
}

func TestCoincidentEdgesEvalBeforeAnyUpdate(t *testing.T) {
	e := NewEngine()
	fast := e.NewDomain("fast", 4000)
	slow := e.NewDomain("slow", 1000)
	c := &counter{}
	fast.Attach(c)
	s := &sampler{src: c}
	slow.Attach(s)
	e.RunCycles(fast, 8)
	// Slow edge j coincides with fast edge 4j; during the shared
	// super-edge all Evals run before any Update, so the sampler must see
	// the counter value from *before* that edge: 3, then 7.
	want := []int{3, 7}
	if len(s.seen) != len(want) {
		t.Fatalf("slow sampled %d times, want %d", len(s.seen), len(want))
	}
	for i, v := range want {
		if s.seen[i] != v {
			t.Fatalf("sample %d = %d, want %d (pre-edge value)", i, s.seen[i], v)
		}
	}
}

func TestRunUntilStopsOnCondition(t *testing.T) {
	e := NewEngine()
	d := e.NewDomain("clk", 10)
	c := &counter{}
	d.Attach(c)
	n, err := e.RunUntil(func() bool { return c.n.Get() >= 7 }, 1000)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if n != 7 {
		t.Fatalf("edges = %d, want 7", n)
	}
}

func TestRunUntilBudget(t *testing.T) {
	e := NewEngine()
	d := e.NewDomain("clk", 10)
	d.Attach(&counter{})
	_, err := e.RunUntil(func() bool { return false }, 10)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestFailAbortsRun(t *testing.T) {
	e := NewEngine()
	d := e.NewDomain("clk", 10)
	boom := errors.New("boom")
	d.Attach(TickerFunc{OnEval: func() { e.Fail(boom) }})
	_, err := e.RunUntil(nil, 100)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestValidateRejectsNonIntegerRatio(t *testing.T) {
	e := NewEngine()
	e.NewDomain("a", 133_000_000)
	e.NewDomain("b", 40_000_000)
	if err := e.Validate(); err == nil {
		t.Fatal("Validate accepted 133/40 MHz")
	}
	e2 := NewEngine()
	e2.NewDomain("a", 24_000_000)
	e2.NewDomain("b", 6_000_000)
	e2.NewDomain("c", 24_000_000)
	if err := e2.Validate(); err != nil {
		t.Fatalf("Validate rejected integer ratios: %v", err)
	}
}

func TestNowPsAdvances(t *testing.T) {
	e := NewEngine()
	d := e.NewDomain("clk", 1_000_000) // 1 MHz -> 1 us period
	d.Attach(&counter{})
	e.RunCycles(d, 3)
	if got := e.NowPs(); got != 3e6 {
		t.Fatalf("NowPs = %v, want 3e6", got)
	}
}

// Property: for any pair of frequencies with integer ratio k and any number
// of fast cycles n, slow cycles == n/k (first edges coincide).
func TestQuickDomainRatioInvariant(t *testing.T) {
	f := func(base uint16, ratio uint8, cycles uint8) bool {
		b := int64(base%1000) + 1
		k := int64(ratio%7) + 1
		n := int64(cycles%100) + k
		e := NewEngine()
		fast := e.NewDomain("fast", b*k)
		slow := e.NewDomain("slow", b)
		fast.Attach(&counter{})
		slow.Attach(&counter{})
		e.RunCycles(fast, n)
		// Slow edge j coincides with fast edge j*k, so after n fast
		// edges exactly floor(n/k) slow edges have been delivered.
		return slow.Cycles() == n/k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegForceAndCommit(t *testing.T) {
	r := NewReg(5)
	r.Set(9)
	if r.Get() != 5 {
		t.Fatal("Set leaked before Commit")
	}
	r.Commit()
	if r.Get() != 9 {
		t.Fatal("Commit did not apply")
	}
	r.Force(1)
	r.Commit() // no pending write; must stay 1
	if r.Get() != 1 {
		t.Fatal("Commit after Force changed value")
	}
}

func TestThreeDomainInterleaving(t *testing.T) {
	e := NewEngine()
	d1 := e.NewDomain("a", 6_000_000)
	d2 := e.NewDomain("b", 24_000_000)
	d3 := e.NewDomain("c", 48_000_000)
	c1, c2, c3 := &counter{}, &counter{}, &counter{}
	d1.Attach(c1)
	d2.Attach(c2)
	d3.Attach(c3)
	e.RunCycles(d3, 480)
	if c3.n.Get() != 480 || c2.n.Get() != 240 || c1.n.Get() != 60 {
		t.Fatalf("counts %d/%d/%d, want 480/240/60", c3.n.Get(), c2.n.Get(), c1.n.Get())
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerSelection(t *testing.T) {
	// Pin the package default for the duration of the test so a
	// SIM_SCHEDULER override in the environment cannot skew it.
	defer SetDefaultScheduler(SetDefaultScheduler(EventDriven))
	e := NewEngine()
	if got := e.Scheduler(); got != EventDriven {
		t.Fatalf("default scheduler = %v, want event-driven", got)
	}
	e.SetScheduler(Lockstep)
	if got := e.Scheduler(); got != Lockstep {
		t.Fatalf("scheduler = %v after SetScheduler(Lockstep)", got)
	}
	e.SetScheduler(SchedulerDefault)
	if got := e.Scheduler(); got != EventDriven {
		t.Fatalf("SchedulerDefault resolved to %v, want event-driven", got)
	}
	SetDefaultScheduler(Lockstep)
	if got := NewEngine().Scheduler(); got != Lockstep {
		t.Fatalf("NewEngine after SetDefaultScheduler(Lockstep) = %v", got)
	}
	if EventDriven.String() != "event-driven" || Lockstep.String() != "lockstep" {
		t.Fatal("Scheduler.String mismatch")
	}
}

// TestSchedulerSwitchMidRun verifies a scheduler change between super-edges
// replans cleanly: cycle accounting continues exactly where it left off.
func TestSchedulerSwitchMidRun(t *testing.T) {
	e := NewEngine()
	e.SetScheduler(EventDriven)
	fast := e.NewDomain("fast", 4000)
	slow := e.NewDomain("slow", 1000)
	cf, cs := &counter{}, &counter{}
	fast.Attach(cf)
	slow.Attach(cs)
	e.RunCycles(fast, 6)
	e.SetScheduler(Lockstep)
	e.RunCycles(fast, 6)
	e.SetScheduler(EventDriven)
	e.RunCycles(fast, 4)
	if cf.n.Get() != 16 || cs.n.Get() != 4 {
		t.Fatalf("counts %d/%d after scheduler switches, want 16/4", cf.n.Get(), cs.n.Get())
	}
}

func TestStepReturnsDueDomains(t *testing.T) {
	e := NewEngine()
	fast := e.NewDomain("fast", 2000)
	slow := e.NewDomain("slow", 1000)
	fast.Attach(&counter{})
	slow.Attach(&counter{})
	// First edge: only fast (t=0.5ms) fires; second: both (t=1ms).
	due := e.Step()
	if len(due) != 1 || due[0] != fast {
		t.Fatalf("first step fired %d domains", len(due))
	}
	due = e.Step()
	if len(due) != 2 {
		t.Fatalf("second step fired %d domains, want 2 (coincident)", len(due))
	}
}
