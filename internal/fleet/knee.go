package fleet

import (
	"fmt"

	"repro/internal/traffic"
)

// Overloaded applies the traffic package's sliding-window failure-rate
// criterion to a fleet report. The window slides over the merged
// arrival-ordered job list, not over per-board concatenations: a failure
// run that spans boards must still trip the detector, and the seams
// between boards must not manufacture runs that never happened.
func Overloaded(rep *Report, window int, threshold float64) bool {
	return traffic.OverloadedJobs(rep.Jobs, window, threshold)
}

// FindKnee sweeps offered load up the ramp through the fleet dispatcher —
// the fleet counterpart of traffic.FindKnee, with the overload decision
// made on each step's merged fleet report. Diurnal specs are rejected for
// the same reason as the single-board sweep: their rate lives in the phase
// schedule.
func FindKnee(cfg Config, spec traffic.Spec, ramp traffic.RampSpec) (*traffic.Ramp, error) {
	if spec.Process == traffic.Diurnal {
		return nil, fmt.Errorf("fleet: a diurnal schedule has no single rate to ramp")
	}
	if ramp.StartRPS <= 0 || ramp.StepRPS <= 0 {
		return nil, fmt.Errorf("fleet: ramp needs positive start and step rates, got %g + k x %g",
			ramp.StartRPS, ramp.StepRPS)
	}
	if ramp.Steps <= 0 || ramp.Jobs <= 0 {
		return nil, fmt.Errorf("fleet: ramp needs positive step and job counts, got %d steps x %d jobs",
			ramp.Steps, ramp.Jobs)
	}
	out := &traffic.Ramp{}
	for step := 0; step < ramp.Steps; step++ {
		s := spec
		s.RPS = ramp.StartRPS + float64(step)*ramp.StepRPS
		jobs, err := traffic.Stream(ramp.Jobs, ramp.Seed+int64(step), s)
		if err != nil {
			return nil, err
		}
		rep, err := Run(cfg, jobs)
		if err != nil {
			return nil, fmt.Errorf("fleet: ramp step %d (%g jobs/s): %w", step, s.RPS, err)
		}
		over := Overloaded(rep, ramp.Window, ramp.Threshold)
		out.Points = append(out.Points, traffic.RampPoint{
			RPS:          s.RPS,
			OfferedRPS:   rep.OfferedRPS,
			AchievedRPS:  rep.AchievedRPS,
			GoodputRPS:   rep.GoodputRPS,
			ShedRate:     rep.ShedRate,
			MissRate:     rep.MissRate,
			P99LatencyPs: rep.P99LatencyPs,
			Overloaded:   over,
		})
		if over {
			out.SaturationRPS = s.RPS
			break
		}
		out.KneeRPS = s.RPS
	}
	return out, nil
}
