// Package fleet shards an open-loop job stream across many independent
// boards: the two-level serving model the cluster-scale systems in the
// related work converge on — a front-end dispatcher routing requests over a
// pool of reconfigurable nodes, each node running its own single-board
// scheduler (shell slots, config port, VIM and rcsched serving loop).
//
// The dispatcher is a pure routing layer. Every decision is made at the
// job's arrival instant (its dispatch epoch) from the dispatcher's own
// model of each board — a cost-model backlog estimate and a slots-deep
// LRU of the bitstreams it has routed there — never from live simulated
// state. Routing is therefore a deterministic function of (stream, config,
// seed) alone, which keeps every board's serving run bit-identical under
// the lockstep and event-driven simulation schedulers, and makes a
// one-board fleet provably equal to a plain rcsched.Serve run. Boards are
// served concurrently (each is an isolated simulation) and their reports
// merged back into one arrival-ordered fleet report.
package fleet

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"

	"repro"
	"repro/internal/rcsched"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Dispatch-policy names for Config.Dispatch.
const (
	// Random routes each job to a seeded-uniform board — the baseline the
	// informed policies are measured against.
	Random = "random"
	// LeastLoaded routes to the board with the smallest backlog estimate at
	// the decision epoch (ties to the lowest index).
	LeastLoaded = "least-loaded"
	// Affinity routes to a board whose modelled resident set already holds
	// the job's bitstream — fleet-wide zero-config dispatch — as long as
	// one such board is accepting (backlog under the bound); among several
	// the least loaded wins. When no board holds the bitstream, or every
	// holder is past the bound, the bitstream is (re)placed on a board with
	// a vacant modelled slot (least-loaded among those), replicating a hot
	// bitstream instead of melting its home board — bounded-load affinity,
	// the same compromise bounded-load consistent hashing makes.
	Affinity = "affinity"
	// Po2 draws two distinct seeded-random boards and keeps the one holding
	// the job's bitstream while it is accepting (the bounded affinity
	// tiebreak), else the less loaded — the classic power-of-two-choices
	// balancer with a config-traffic tilt.
	Po2 = "po2"
)

// DefaultBoundPs is the default bounded-load affinity threshold: a board
// whose modelled backlog extends further than this past the decision epoch
// stops counting as an affinity target. It is twice the serving layer's
// base deadline budget — with a backlog that deep, jobs routed there for
// residency's sake have burned their whole scheduling allowance queueing,
// so paying one replication stream (a fraction of a millisecond of config
// traffic) is the cheaper failure mode.
const DefaultBoundPs = 2 * rcsched.BaseBudgetPs

// Config parameterises one fleet run.
type Config struct {
	// Boards is the number of independent boards behind the dispatcher; it
	// must be positive.
	Boards int
	// Dispatch is the routing policy: Random, LeastLoaded, Affinity or Po2
	// ("" defaults to LeastLoaded).
	Dispatch string
	// Seed drives the randomised dispatch policies; deterministic replay is
	// part of the contract (the same (stream, config, seed) triple always
	// routes identically).
	Seed int64
	// BoundPs is the bounded-load affinity threshold for Affinity and Po2
	// (0 = DefaultBoundPs): how far a board's modelled backlog may extend
	// past the decision epoch before it stops counting as an affinity
	// target.
	BoundPs float64
	// Board is the per-board serving configuration handed verbatim to each
	// board's rcsched.Serve run.
	Board rcsched.Config
	// Observe, when non-nil, supplies a per-board rcsched.Observer that Run
	// installs on that board's serving config (overriding Board.Observer).
	// Boards serve concurrently, so each board gets its own Observer and
	// Serve calls it only from that board's goroutine. Observation is
	// passive: a nil-Observe run is bit-identical to an observed one.
	Observe Observer
	// Meter, when non-nil, collects the fleet run's telemetry: the
	// dispatcher's routing decisions and per-board backlog series feed it
	// directly, and each board's serving run gets a child meter (boards
	// run concurrently) folded back in under a "board" label after all
	// boards join — in board order, so the result is deterministic.
	// Strictly passive, like Observe (overrides Board.Meter).
	Meter *telemetry.Meter
}

// Observer hands out one rcsched.Observer per board for a fleet run; see
// Config.Observe. BoardObserver may return nil to leave a board unobserved.
type Observer interface {
	BoardObserver(board int) rcsched.Observer
}

// Decision records one routing decision for the property tests: which board
// the job went to, the dispatcher's per-board backlog estimates at the
// decision epoch, and which boards' modelled resident sets held the job's
// bitstream.
type Decision struct {
	Job     int     // job ID
	Board   int     // chosen board
	EpochPs float64 // the job's arrival instant — when the decision was made
	// LoadsPs is the dispatcher's backlog estimate per board at the epoch:
	// how far beyond the epoch each board's routed-but-unfinished work is
	// modelled to extend (0 = modelled idle).
	LoadsPs []float64
	// Resident flags, per board, whether the dispatcher's LRU model held the
	// job's bitstream when the decision was made.
	Resident []bool
}

// Report aggregates one fleet run: every board's own serving report, the
// dispatch trace, and the per-job reports of all boards merged back into
// one arrival-ordered stream with fleet-wide aggregates over it.
type Report struct {
	Dispatch string
	Boards   []*rcsched.Report // index = board; an unused board gets an empty report

	Decisions []Decision
	// Jobs is every board's job reports merged in arrival order (ties by
	// job ID) — the order the overload detector's sliding window requires.
	// Each generated job appears exactly once.
	Jobs []rcsched.JobReport

	// Fleet aggregates, defined exactly like their rcsched counterparts but
	// over the merged population; the makespan is the last completion on
	// any board. All rates are explicit zeros when their denominator is
	// empty. UtilSpread fields measure per-board busy fractions of the
	// fleet makespan — the dispersion a balancing policy exists to narrow.
	MakespanPs      float64
	TotalReconfigPs float64
	Reconfigs       int
	StageCommits    int
	StageCancels    int
	P99LatencyPs    float64
	P99AdmittedPs   float64
	Misses          int
	MissRate        float64
	Admitted        int
	Degraded        int
	Rejected        int
	Completed       int
	GoodJobs        int
	OfferedRPS      float64
	AchievedRPS     float64
	GoodputRPS      float64
	ShedRate        float64
	UtilMean        float64
	UtilMin         float64
	UtilMax         float64
}

// boardModel is the dispatcher's view of one board: a virtual-time backlog
// estimate and a slots-deep LRU of the bitstreams routed there. It is a
// model, not a mirror — the board's own policy decides what actually ends
// up resident — but it is the only state a front-end dispatcher could
// realistically have without a callback channel from every node.
type boardModel struct {
	busyUntilPs float64
	resident    []string // most-recently-routed first, at most `slots` entries
}

// loadPs is the modelled backlog beyond instant t.
func (b *boardModel) loadPs(t float64) float64 {
	if b.busyUntilPs <= t {
		return 0
	}
	return b.busyUntilPs - t
}

func (b *boardModel) has(app string) bool {
	for _, r := range b.resident {
		if r == app {
			return true
		}
	}
	return false
}

// touch records that app's bitstream was just routed here: it becomes the
// most recently used entry and the LRU tail falls off past the slot count.
func (b *boardModel) touch(app string, slots int) {
	out := make([]string, 0, slots)
	out = append(out, app)
	for _, r := range b.resident {
		if r != app && len(out) < slots {
			out = append(out, r)
		}
	}
	b.resident = out
}

// dispatcher routes one job at its arrival epoch. Implementations must be
// pure functions of the model state and (for the randomised policies) the
// seeded rng, so routing replays bit for bit.
type dispatcher func(j *rcsched.Job, boards []boardModel, t float64, rng *rand.Rand) int

// leastLoadedOf returns the least-loaded board among candidates at epoch t,
// ties to the lowest index.
func leastLoadedOf(candidates []int, boards []boardModel, t float64) int {
	best := candidates[0]
	for _, c := range candidates[1:] {
		if boards[c].loadPs(t) < boards[best].loadPs(t) {
			best = c
		}
	}
	return best
}

func newDispatcher(name string, boundPs float64) (string, dispatcher, error) {
	switch name {
	case Random:
		return Random, func(j *rcsched.Job, boards []boardModel, t float64, rng *rand.Rand) int {
			return rng.Intn(len(boards))
		}, nil
	case "", LeastLoaded:
		return LeastLoaded, func(j *rcsched.Job, boards []boardModel, t float64, rng *rand.Rand) int {
			all := make([]int, len(boards))
			for i := range all {
				all[i] = i
			}
			return leastLoadedOf(all, boards, t)
		}, nil
	case Affinity:
		return Affinity, func(j *rcsched.Job, boards []boardModel, t float64, rng *rand.Rand) int {
			// Accepting resident boards first: zero-config dispatch as long
			// as somebody holding the bitstream is under the load bound.
			var match []int
			for i := range boards {
				if boards[i].has(j.App) && boards[i].loadPs(t) <= boundPs {
					match = append(match, i)
				}
			}
			if len(match) > 0 {
				return leastLoadedOf(match, boards, t)
			}
			// No accepting holder: (re)place the bitstream the way
			// rcsched's own chooseFree ladder places a first dispatch —
			// prefer a board with a vacant modelled slot over evicting
			// another app's residency, so apps spread one per board while
			// vacancies remain instead of thrashing a shared board. Ties
			// (and the no-vacancy case) fall to least-loaded, lowest index.
			minRes := len(boards[0].resident)
			for i := range boards {
				if len(boards[i].resident) < minRes {
					minRes = len(boards[i].resident)
				}
			}
			for i := range boards {
				if len(boards[i].resident) == minRes {
					match = append(match, i)
				}
			}
			return leastLoadedOf(match, boards, t)
		}, nil
	case Po2:
		return Po2, func(j *rcsched.Job, boards []boardModel, t float64, rng *rand.Rand) int {
			if len(boards) == 1 {
				return 0
			}
			a := rng.Intn(len(boards))
			b := rng.Intn(len(boards) - 1)
			if b >= a {
				b++
			}
			// Bounded affinity tiebreak: a sampled board holding the
			// bitstream wins outright while the load imbalance that choice
			// tolerates stays within the bound — a relative margin, unlike
			// Affinity's absolute backlog cap, because po2 always holds a
			// second sample to compare against; otherwise the less loaded
			// of the two (ties to the lower index).
			la, lb := boards[a].loadPs(t), boards[b].loadPs(t)
			ra := boards[a].has(j.App) && la <= lb+boundPs
			rb := boards[b].has(j.App) && lb <= la+boundPs
			switch {
			case ra && !rb:
				return a
			case rb && !ra:
				return b
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			if boards[hi].loadPs(t) < boards[lo].loadPs(t) {
				return hi
			}
			return lo
		}, nil
	}
	return "", nil, fmt.Errorf("fleet: unknown dispatch policy %q (want random, least-loaded, affinity or po2)", name)
}

// bitstreamBytes is the configuration-stream size of app's bitstream on the
// given board — what the dispatcher's backlog model charges for routing a
// job whose bitstream it does not model as resident.
func bitstreamBytes(board, app string) (int, error) {
	switch app {
	case "idea":
		return len(repro.IDEABitstream(board)), nil
	case "adpcm":
		return len(repro.ADPCMBitstream(board)), nil
	case "vecadd":
		return len(repro.VecAddBitstream(board)), nil
	}
	return 0, fmt.Errorf("fleet: unknown application %q", app)
}

// Route computes the dispatch trace for a job stream under cfg without
// serving anything: every job is assigned a board at its arrival epoch, in
// arrival order (ties by ID), from the dispatcher's evolving board models.
// The returned per-board sub-streams partition the input — each job appears
// in exactly one — and the decisions record the model state behind every
// choice. Routing is deterministic in (jobs, cfg): it never consults
// simulated state, so the split is identical under every sim scheduler.
func Route(cfg Config, jobs []rcsched.Job) (subs [][]rcsched.Job, decisions []Decision, err error) {
	if cfg.Boards <= 0 {
		return nil, nil, fmt.Errorf("fleet: board count must be positive, got %d", cfg.Boards)
	}
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("fleet: empty job stream")
	}
	bound := cfg.BoundPs
	if bound == 0 {
		bound = DefaultBoundPs
	}
	_, pick, err := newDispatcher(cfg.Dispatch, bound)
	if err != nil {
		return nil, nil, err
	}
	boardName := cfg.Board.Board
	if boardName == "" {
		boardName = "EPXA4"
	}
	shellHz := cfg.Board.ShellHz
	if shellHz == 0 {
		shellHz = rcsched.DefaultShellHz
	}
	configBW := cfg.Board.ConfigBW
	if configBW == 0 {
		configBW = rcsched.DefaultConfigBW
	}
	slots := cfg.Board.Slots
	if slots <= 0 {
		return nil, nil, fmt.Errorf("fleet: per-board slot count must be positive, got %d", slots)
	}

	// Dispatch epochs: arrival order, ties by ID — the same admission order
	// each board's serving loop uses.
	order := append([]rcsched.Job(nil), jobs...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].ArrivalPs != order[j].ArrivalPs {
			return order[i].ArrivalPs < order[j].ArrivalPs
		}
		return order[i].ID < order[j].ID
	})

	rng := rand.New(rand.NewSource(cfg.Seed))
	boards := make([]boardModel, cfg.Boards)
	subs = make([][]rcsched.Job, cfg.Boards)
	decisions = make([]Decision, 0, len(order))
	for i := range order {
		j := &order[i]
		t := j.ArrivalPs
		d := Decision{
			Job:      j.ID,
			EpochPs:  t,
			LoadsPs:  make([]float64, cfg.Boards),
			Resident: make([]bool, cfg.Boards),
		}
		for b := range boards {
			d.LoadsPs[b] = boards[b].loadPs(t)
			d.Resident[b] = boards[b].has(j.App)
		}
		b := pick(j, boards, t, rng)
		if b < 0 || b >= cfg.Boards {
			return nil, nil, fmt.Errorf("fleet: dispatcher chose board %d of %d", b, cfg.Boards)
		}
		d.Board = b
		decisions = append(decisions, d)

		// Advance the chosen board's model: the job starts when the board's
		// modelled backlog drains (or now), pays a configuration stream when
		// its bitstream is not modelled resident, then its cost-model
		// execution estimate.
		start := boards[b].busyUntilPs
		if start < t {
			start = t
		}
		if !boards[b].has(j.App) {
			n, err := bitstreamBytes(boardName, j.App)
			if err != nil {
				return nil, nil, fmt.Errorf("fleet: job %d: %w", j.ID, err)
			}
			start += float64(n) / configBW * 1e12
		}
		boards[b].busyUntilPs = start + rcsched.ExecEstPs(j.App, j.Size, shellHz)
		boards[b].touch(j.App, slots)
		subs[b] = append(subs[b], *j)
	}
	return subs, decisions, nil
}

// Run routes the job stream across the fleet and serves every board's
// sub-stream through its own rcsched.Serve loop — concurrently, since the
// boards are isolated simulations — then merges the per-board reports into
// one fleet report. Jobs may be given in any order.
func Run(cfg Config, jobs []rcsched.Job) (*Report, error) {
	subs, decisions, err := Route(cfg, jobs)
	if err != nil {
		return nil, err
	}
	name, _, err := newDispatcher(cfg.Dispatch, 0)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Dispatch:  name,
		Boards:    make([]*rcsched.Report, cfg.Boards),
		Decisions: decisions,
	}
	meterRoute(cfg.Meter, name, decisions)

	var wg sync.WaitGroup
	errs := make([]error, cfg.Boards)
	meters := make([]*telemetry.Meter, cfg.Boards)
	for b := range subs {
		if len(subs[b]) == 0 {
			// An idle board serves nothing: an explicit empty report keeps
			// the per-board indexing and the utilisation spread honest.
			rep.Boards[b] = &rcsched.Report{
				Policy:   cfg.Board.Policy,
				Slots:    cfg.Board.Slots,
				ConfigBW: cfg.Board.ConfigBW,
			}
			continue
		}
		boardCfg := cfg.Board
		if cfg.Observe != nil {
			boardCfg.Observer = cfg.Observe.BoardObserver(b)
		}
		// Each board gets its own child meter (boards run concurrently;
		// a Meter is single-goroutine) and its own trace pid.
		meters[b] = cfg.Meter.Child()
		boardCfg.Meter = meters[b]
		boardCfg.TracePid = rcsched.ServeBoardPid + b
		wg.Add(1)
		go func(b int, boardCfg rcsched.Config) {
			defer wg.Done()
			r, err := rcsched.Serve(boardCfg, subs[b])
			if err != nil {
				errs[b] = fmt.Errorf("fleet: board %d: %w", b, err)
				return
			}
			rep.Boards[b] = r
		}(b, boardCfg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Fold the board meters back in board order — deterministic no matter
	// how the serving goroutines interleaved (Absorb of a nil child is a
	// no-op, so idle boards just don't contribute).
	for b, child := range meters {
		cfg.Meter.Absorb(child, "board", strconv.Itoa(b))
	}
	aggregate(rep, cfg)
	meterFleet(cfg.Meter, rep)
	return rep, nil
}

// aggregate merges the per-board reports into the fleet-wide view: job
// reports re-merged into arrival order, totals summed, rates recomputed
// over the fleet makespan, and the per-board utilisation spread measured
// against that shared makespan.
func aggregate(rep *Report, cfg Config) {
	for _, br := range rep.Boards {
		rep.Jobs = append(rep.Jobs, br.Jobs...)
		rep.Reconfigs += br.Reconfigs
		rep.TotalReconfigPs += br.TotalReconfigPs
		rep.StageCommits += br.StageCommits
		rep.StageCancels += br.StageCancels
		if br.MakespanPs > rep.MakespanPs {
			rep.MakespanPs = br.MakespanPs
		}
	}
	// Merge in arrival order (ties by ID): each board's list is one
	// arrival-ordered slice of a common stream, so a sort of the
	// concatenation is a k-way merge — every job exactly once, no
	// per-board seams for the overload window to trip over.
	sort.Slice(rep.Jobs, func(i, j int) bool {
		if rep.Jobs[i].ArrivalPs != rep.Jobs[j].ArrivalPs {
			return rep.Jobs[i].ArrivalPs < rep.Jobs[j].ArrivalPs
		}
		return rep.Jobs[i].ID < rep.Jobs[j].ID
	})

	var lats, admLats []float64
	deadlined := 0
	lastArrivalPs := 0.0
	for i := range rep.Jobs {
		j := &rep.Jobs[i]
		if j.ArrivalPs > lastArrivalPs {
			lastArrivalPs = j.ArrivalPs
		}
		switch j.Disposition {
		case rcsched.Rejected:
			rep.Rejected++
			continue
		case rcsched.Degraded:
			rep.Degraded++
		default:
			rep.Admitted++
			admLats = append(admLats, j.LatencyPs)
		}
		rep.Completed++
		lats = append(lats, j.LatencyPs)
		if j.DeadlinePs > 0 {
			deadlined++
			if j.Missed {
				rep.Misses++
			} else {
				rep.GoodJobs++
			}
		} else {
			rep.GoodJobs++
		}
	}
	sort.Float64s(lats)
	sort.Float64s(admLats)
	rep.P99LatencyPs = stats.NearestRank(lats, 0.99)
	rep.P99AdmittedPs = stats.NearestRank(admLats, 0.99)
	if deadlined > 0 {
		rep.MissRate = float64(rep.Misses) / float64(deadlined)
	}
	rep.ShedRate = float64(rep.Rejected) / float64(len(rep.Jobs))
	if len(rep.Jobs) > 1 && lastArrivalPs > 0 {
		rep.OfferedRPS = float64(len(rep.Jobs)-1) * 1e12 / lastArrivalPs
	}
	if rep.MakespanPs > 0 {
		rep.AchievedRPS = float64(rep.Completed) * 1e12 / rep.MakespanPs
		rep.GoodputRPS = float64(rep.GoodJobs) * 1e12 / rep.MakespanPs
		rep.UtilMin = 2 // above any busy fraction; replaced by the first board
		for _, br := range rep.Boards {
			busy := 0.0
			for _, b := range br.SlotBusyPs {
				busy += b
			}
			util := busy / (float64(cfg.Board.Slots) * rep.MakespanPs)
			rep.UtilMean += util
			if util < rep.UtilMin {
				rep.UtilMin = util
			}
			if util > rep.UtilMax {
				rep.UtilMax = util
			}
		}
		rep.UtilMean /= float64(len(rep.Boards))
	} else {
		rep.UtilMin = 0
	}
}
