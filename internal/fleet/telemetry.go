package fleet

import (
	"fmt"
	"strconv"

	"repro/internal/rcsched"
	"repro/internal/telemetry"
)

// This file is the fleet side of the telemetry adapter (rcsched has the
// per-board one): the dispatcher's routing trace feeds the meter directly —
// per-board backlog gauges sampled at the decision epochs, routing
// counters, one trace instant per decision — and the aggregated fleet
// report contributes the fleet-wide tallies. Everything derives from data
// Run computes anyway, so metering never perturbs a run.

// meterRoute replays the dispatch trace onto m. It runs before the boards
// are served, single-threaded, in decision (arrival) order: the sampler
// advances to each epoch before the backlog gauges take that epoch's
// values, so a sampled boundary records the dispatcher's model state just
// before the first decision at or after it.
func meterRoute(m *telemetry.Meter, dispatch string, decisions []Decision) {
	if m == nil {
		return
	}
	tr := m.Trace()
	tr.NameProcess(rcsched.SchedulerPid, "dispatcher ("+dispatch+")")
	tr.NameThread(rcsched.SchedulerPid, 0, "routing")
	for i := range decisions {
		d := &decisions[i]
		m.Advance(d.EpochPs)
		for b, l := range d.LoadsPs {
			m.Set("fleet_backlog_ps", l, "board", strconv.Itoa(b))
		}
		board := strconv.Itoa(d.Board)
		m.Count("fleet_routed_total", 1, "board", board)
		if d.Resident[d.Board] {
			m.Count("fleet_route_resident_total", 1)
		}
		tr.Instant(telemetry.Instant{
			Name: fmt.Sprintf("route job %d -> board %d", d.Job, d.Board),
			Pid:  rcsched.SchedulerPid, Tid: 0, AtPs: d.EpochPs,
			Args: map[string]string{"job": strconv.Itoa(d.Job), "board": board},
		})
	}
}

// meterFleet folds the aggregated fleet report into m: population and shed
// tallies plus the utilisation spread the dispatch policies are judged on.
// Per-board detail is already present under "board" labels from the
// absorbed child meters.
func meterFleet(m *telemetry.Meter, rep *Report) {
	if m == nil {
		return
	}
	m.Count("fleet_jobs_total", uint64(len(rep.Jobs)))
	m.Count("fleet_shed_total", uint64(rep.Rejected))
	m.Count("fleet_degraded_total", uint64(rep.Degraded))
	m.Set("fleet_makespan_ps", rep.MakespanPs)
	m.Set("fleet_util_mean", rep.UtilMean)
	m.Set("fleet_util_min", rep.UtilMin)
	m.Set("fleet_util_max", rep.UtilMax)
}
