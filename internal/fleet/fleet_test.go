// Differential, property and regression tests for the fleet dispatcher.
//
// The dispatcher's contract is that it is a pure routing layer: a one-board
// fleet is bit-identical to a plain rcsched.Serve run, routing replays
// deterministically from (stream, config, seed), and every policy's
// documented invariant is visible in its recorded decision trace.
package fleet_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/fleet"
	"repro/internal/rcsched"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// allDispatches is every routing policy, uninformed baseline first.
func allDispatches() []string {
	return []string{fleet.Random, fleet.LeastLoaded, fleet.Affinity, fleet.Po2}
}

// stream generates the canonical test stream: n Poisson arrivals at rps.
func stream(t *testing.T, n int, seed int64, rps float64) []rcsched.Job {
	t.Helper()
	jobs, err := traffic.Stream(n, seed, traffic.Spec{Process: traffic.Poisson, RPS: rps})
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestOneBoardDifferential pins the dispatcher as a pure routing layer: a
// 1-board fleet under EVERY dispatch policy produces exactly the report a
// plain rcsched.Serve run produces — the board report bit for bit, the
// merged per-job reports, and every fleet aggregate — with admission control
// both off and rejecting.
func TestOneBoardDifferential(t *testing.T) {
	for _, admit := range []string{rcsched.AdmitOff, rcsched.AdmitReject} {
		jobs := stream(t, 40, 1717, 1600)
		board := rcsched.Config{Policy: "slack", Slots: 2, Admit: admit}
		plain, err := rcsched.Serve(board, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, dispatch := range allDispatches() {
			t.Run(dispatch+"/"+admit, func(t *testing.T) {
				rep, err := fleet.Run(fleet.Config{
					Boards: 1, Dispatch: dispatch, Seed: 42, Board: board,
				}, jobs)
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Boards) != 1 {
					t.Fatalf("1-board fleet produced %d board reports", len(rep.Boards))
				}
				if !reflect.DeepEqual(rep.Boards[0], plain) {
					t.Errorf("board report diverges from plain rcsched.Serve:\n fleet %+v\n plain %+v",
						rep.Boards[0], plain)
				}
				if !reflect.DeepEqual(rep.Jobs, plain.Jobs) {
					t.Error("merged per-job reports diverge from plain rcsched.Serve")
				}
				for _, d := range rep.Decisions {
					if d.Board != 0 {
						t.Fatalf("job %d routed to board %d of a 1-board fleet", d.Job, d.Board)
					}
				}
				// Every aggregate the fleet report recomputes must equal the
				// single board's own aggregation — same formulas, same jobs.
				pairs := []struct {
					name      string
					got, want float64
				}{
					{"makespan", rep.MakespanPs, plain.MakespanPs},
					{"reconfig_ps", rep.TotalReconfigPs, plain.TotalReconfigPs},
					{"reconfigs", float64(rep.Reconfigs), float64(plain.Reconfigs)},
					{"p99", rep.P99LatencyPs, plain.P99LatencyPs},
					{"p99_admitted", rep.P99AdmittedPs, plain.P99AdmittedPs},
					{"misses", float64(rep.Misses), float64(plain.Misses)},
					{"miss_rate", rep.MissRate, plain.MissRate},
					{"admitted", float64(rep.Admitted), float64(plain.Admitted)},
					{"degraded", float64(rep.Degraded), float64(plain.Degraded)},
					{"rejected", float64(rep.Rejected), float64(plain.Rejected)},
					{"completed", float64(rep.Completed), float64(plain.Completed)},
					{"good_jobs", float64(rep.GoodJobs), float64(plain.GoodJobs)},
					{"offered_rps", rep.OfferedRPS, plain.OfferedRPS},
					{"achieved_rps", rep.AchievedRPS, plain.AchievedRPS},
					{"goodput_rps", rep.GoodputRPS, plain.GoodputRPS},
					{"shed_rate", rep.ShedRate, plain.ShedRate},
					{"util_mean", rep.UtilMean, plain.UtilMean},
					{"util_min", rep.UtilMin, plain.UtilMean},
					{"util_max", rep.UtilMax, plain.UtilMean},
				}
				for _, p := range pairs {
					if p.got != p.want {
						t.Errorf("%s = %v, plain rcsched.Serve says %v", p.name, p.got, p.want)
					}
				}
			})
		}
	}
}

// TestDispatchConservation pins the partition property over policy x boards
// x seeds: Route assigns every generated job to exactly one board, and the
// served fleet report carries every job exactly once with a recorded
// decision and a valid disposition.
func TestDispatchConservation(t *testing.T) {
	for _, dispatch := range allDispatches() {
		for _, boards := range []int{1, 2, 3, 4, 8} {
			for _, seed := range []int64{1, 7, 4242} {
				jobs := stream(t, 48, seed, 3200)
				cfg := fleet.Config{
					Boards: boards, Dispatch: dispatch, Seed: seed + 1,
					Board: rcsched.Config{Policy: "slack", Slots: 2, Admit: rcsched.AdmitReject},
				}
				subs, decisions, err := fleet.Route(cfg, jobs)
				if err != nil {
					t.Fatal(err)
				}
				seen := map[int]int{}
				for _, sub := range subs {
					for _, j := range sub {
						seen[j.ID]++
					}
				}
				if len(decisions) != len(jobs) {
					t.Fatalf("%s/%d boards/seed %d: %d decisions for %d jobs",
						dispatch, boards, seed, len(decisions), len(jobs))
				}
				for _, j := range jobs {
					if seen[j.ID] != 1 {
						t.Fatalf("%s/%d boards/seed %d: job %d routed %d times",
							dispatch, boards, seed, j.ID, seen[j.ID])
					}
				}
				rep, err := fleet.Run(cfg, jobs)
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Jobs) != len(jobs) {
					t.Fatalf("%s/%d boards/seed %d: fleet report carries %d of %d jobs",
						dispatch, boards, seed, len(rep.Jobs), len(jobs))
				}
				served := map[int]int{}
				for i := range rep.Jobs {
					j := &rep.Jobs[i]
					served[j.ID]++
					switch j.Disposition {
					case rcsched.Admitted, rcsched.Degraded, rcsched.Rejected:
					default:
						t.Fatalf("job %d has disposition %q", j.ID, j.Disposition)
					}
				}
				for _, j := range jobs {
					if served[j.ID] != 1 {
						t.Fatalf("%s/%d boards/seed %d: job %d appears %d times in the merged report",
							dispatch, boards, seed, j.ID, served[j.ID])
					}
				}
				if rep.Admitted+rep.Degraded+rep.Rejected != len(jobs) {
					t.Fatalf("%s/%d boards/seed %d: dispositions sum to %d, want %d", dispatch, boards, seed,
						rep.Admitted+rep.Degraded+rep.Rejected, len(jobs))
				}
			}
		}
	}
}

// TestDispatchReplayDeterminism pins routing as a function of (stream,
// config, seed): two full fleet runs of the same triple are identical down
// to the decision trace and every per-board report — for the randomised
// policies in particular, the seed fully determines the draw sequence.
func TestDispatchReplayDeterminism(t *testing.T) {
	jobs := stream(t, 64, 7, 6400)
	for _, dispatch := range allDispatches() {
		cfg := fleet.Config{
			Boards: 4, Dispatch: dispatch, Seed: 99,
			Board: rcsched.Config{Policy: "slack", Slots: 2},
		}
		a, err := fleet.Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fleet.Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two runs of the same (stream, config, seed) diverged", dispatch)
		}
	}
}

// TestLeastLoadedNeverBusier pins the least-loaded invariant on the decision
// trace: at every decision epoch the chosen board's modelled backlog is no
// larger than any other board's, and ties break to the lowest index.
func TestLeastLoadedNeverBusier(t *testing.T) {
	for _, boards := range []int{2, 4, 8} {
		for _, seed := range []int64{1, 7, 4242} {
			jobs := stream(t, 48, seed, 1600*float64(boards))
			_, decisions, err := fleet.Route(fleet.Config{
				Boards: boards, Dispatch: fleet.LeastLoaded, Seed: seed,
				Board: rcsched.Config{Policy: "slack", Slots: 2},
			}, jobs)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range decisions {
				for b, load := range d.LoadsPs {
					if load < d.LoadsPs[d.Board] {
						t.Fatalf("%d boards/seed %d: job %d went to board %d (backlog %.0f ps) while board %d sat at %.0f ps",
							boards, seed, d.Job, d.Board, d.LoadsPs[d.Board], b, load)
					}
					if b < d.Board && load == d.LoadsPs[d.Board] {
						t.Fatalf("%d boards/seed %d: job %d tie broke upward to board %d over board %d",
							boards, seed, d.Job, d.Board, b)
					}
				}
			}
		}
	}
}

// TestAffinityRoutesToResident pins the affinity invariant on the decision
// trace: whenever any board is modelled as holding the job's bitstream with
// backlog under the bound, the chosen board is such a board — so the
// dispatcher never charges a configuration stream it could have avoided.
func TestAffinityRoutesToResident(t *testing.T) {
	for _, boards := range []int{2, 4, 8} {
		for _, seed := range []int64{1, 7, 4242} {
			jobs := stream(t, 48, seed, 1600*float64(boards))
			_, decisions, err := fleet.Route(fleet.Config{
				Boards: boards, Dispatch: fleet.Affinity, Seed: seed,
				Board: rcsched.Config{Policy: "slack", Slots: 2},
			}, jobs)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range decisions {
				accepting := false
				for b := range d.Resident {
					if d.Resident[b] && d.LoadsPs[b] <= fleet.DefaultBoundPs {
						accepting = true
						break
					}
				}
				if accepting && !d.Resident[d.Board] {
					t.Fatalf("%d boards/seed %d: job %d reconfigures board %d while an accepting board held its bitstream",
						boards, seed, d.Job, d.Board)
				}
			}
		}
	}
}

// TestAffinityNoReconfigAtModerateLoad is the serving-level form of the
// affinity invariant: at moderate load (no board ever past the bound) a
// stream of repeating applications triggers at most one reconfig-charging
// dispatch per application — after first placement, every job is routed to
// a board modelled as holding its bitstream — and the boards themselves
// reconfigure at most once per application per slot (a board may warm the
// same bitstream into both of its slots, but never re-loads over residency).
func TestAffinityNoReconfigAtModerateLoad(t *testing.T) {
	const slots = 2
	jobs := stream(t, 48, 7, 400) // well under one board's knee
	apps := map[string]bool{}
	for _, j := range jobs {
		apps[j.App] = true
	}
	rep, err := fleet.Run(fleet.Config{
		Boards: 4, Dispatch: fleet.Affinity, Seed: 99,
		Board: rcsched.Config{Policy: "slack", Slots: slots},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cold := 0
	for _, d := range rep.Decisions {
		for _, load := range d.LoadsPs {
			if load > fleet.DefaultBoundPs {
				t.Skipf("stream no longer moderate: modelled backlog %.0f ps past the bound", load)
			}
		}
		if !d.Resident[d.Board] {
			cold++
		}
	}
	if cold > len(apps) {
		t.Errorf("affinity charged %d cold dispatches for %d distinct applications — residency not being reused",
			cold, len(apps))
	}
	if rep.Reconfigs > len(apps)*slots {
		t.Errorf("affinity fleet reconfigured %d times serving %d applications on %d-slot boards (want <= %d)",
			rep.Reconfigs, len(apps), slots, len(apps)*slots)
	}
}

// TestFleetKneeOnMergedReports is the regression test for overload
// detection on aggregated fleet reports: the detector must slide its window
// over the jobs of ALL boards merged back into arrival order — per-board
// concatenation both hides failure runs that span boards and manufactures
// runs across the seams — and the merge must carry every job exactly once.
func TestFleetKneeOnMergedReports(t *testing.T) {
	fail := rcsched.JobReport{Disposition: rcsched.Rejected}
	ok := rcsched.JobReport{Disposition: rcsched.Admitted}
	at := func(j rcsched.JobReport, id int, ps float64) rcsched.JobReport {
		j.ID, j.ArrivalPs = id, ps
		return j
	}

	// Two boards, failures alternating between them in arrival order: each
	// board alone sees 3 failures spread over its 12 jobs (a quarter of any
	// window — under the 30% threshold), but the merged order carries a run
	// of 6 consecutive failures — overloaded by any honest window.
	var boardA, boardB, merged []rcsched.JobReport
	for i := 0; i < 24; i++ {
		j := ok
		if i >= 8 && i < 14 { // jobs 8..13 fail, alternating boards
			j = fail
		}
		j = at(j, i, float64(i+1)*1e9)
		merged = append(merged, j)
		if i%2 == 0 {
			boardA = append(boardA, j)
		} else {
			boardB = append(boardB, j)
		}
	}
	if traffic.OverloadedJobs(boardA, 0, 0) || traffic.OverloadedJobs(boardB, 0, 0) {
		t.Fatal("fixture broken: a single board should look healthy on its own")
	}
	if !traffic.OverloadedJobs(merged, 0, 0) {
		t.Fatal("fixture broken: the merged order should carry an overload run")
	}
	if traffic.OverloadedJobs(append(append([]rcsched.JobReport{}, boardA...), boardB...), 0, 0) {
		t.Error("per-board concatenation detected the cross-board run only by luck; fixture needs retuning")
	}

	// The converse seam hazard: two boards each ending in a short healthy
	// tail after early failures. Concatenating boards butts board A's late
	// failures against board B's early ones — a run that never happened.
	var tailA, tailB []rcsched.JobReport
	for i := 0; i < 12; i++ {
		j := ok
		if i >= 9 { // board A fails at the end...
			j = fail
		}
		tailA = append(tailA, at(j, i, float64(i+1)*1e9))
	}
	for i := 0; i < 12; i++ {
		j := ok
		if i < 3 { // ...board B at the beginning, in overlapping real time
			j = fail
		}
		tailB = append(tailB, at(j, 100+i, float64(i+1)*1e9+0.5e9))
	}
	concat := append(append([]rcsched.JobReport{}, tailA...), tailB...)
	if !traffic.OverloadedJobs(concat, 0, 0) {
		t.Fatal("fixture broken: the concatenation seam should manufacture a failure run")
	}
	var interleaved []rcsched.JobReport
	for i := range tailA { // true arrival order interleaves the boards
		interleaved = append(interleaved, tailA[i], tailB[i])
	}
	if traffic.OverloadedJobs(interleaved, 0, 0) {
		t.Error("true arrival order flagged overload: the failures were never consecutive")
	}

	// End to end on a real fleet: the merged report's job list is in strict
	// arrival order, fleet.Overloaded agrees with running the detector over
	// a hand-merged copy of the per-board reports, and a fleet offered far
	// past its capacity does trip the detector.
	jobs := stream(t, 96, 7, 25600)
	rep, err := fleet.Run(fleet.Config{
		Boards: 2, Dispatch: fleet.Random, Seed: 99,
		Board: rcsched.Config{Policy: "slack", Slots: 2},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var hand []rcsched.JobReport
	for _, br := range rep.Boards {
		hand = append(hand, br.Jobs...)
	}
	if len(hand) != len(rep.Jobs) {
		t.Fatalf("merge double-counts: %d jobs across boards, %d in the fleet report", len(hand), len(rep.Jobs))
	}
	for i := 1; i < len(rep.Jobs); i++ {
		if rep.Jobs[i].ArrivalPs < rep.Jobs[i-1].ArrivalPs {
			t.Fatal("fleet report's merged jobs are not in arrival order")
		}
	}
	if !fleet.Overloaded(rep, 0, 0) {
		t.Error("a 2-board fleet offered 16x its per-board knee did not read as overloaded")
	}

	// And the fleet ramp finds a knee strictly below its saturation rate.
	ramp, err := fleet.FindKnee(fleet.Config{
		Boards: 2, Dispatch: fleet.LeastLoaded, Seed: 99,
		Board: rcsched.Config{Policy: "slack", Slots: 2},
	}, traffic.Spec{Process: traffic.Poisson}, traffic.RampSpec{
		StartRPS: 1600, StepRPS: 1600, Steps: 10, Jobs: 36, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ramp.SaturationRPS == 0 || ramp.KneeRPS <= 0 || ramp.KneeRPS >= ramp.SaturationRPS {
		t.Errorf("fleet ramp found knee %.0f / saturation %.0f", ramp.KneeRPS, ramp.SaturationRPS)
	}
}

// TestFleetStressRace is the dedicated race-detector stress case: many
// boards serving bursty overload concurrently, twice per policy, with the
// two runs required to agree bit for bit. Kept fast enough for -short so
// the -race CI job always exercises the concurrent serving path.
func TestFleetStressRace(t *testing.T) {
	jobs, err := traffic.Stream(96, 4242, traffic.Spec{Process: traffic.Bursty, RPS: 12800})
	if err != nil {
		t.Fatal(err)
	}
	for _, dispatch := range allDispatches() {
		cfg := fleet.Config{
			Boards: 12, Dispatch: dispatch, Seed: 1,
			Board: rcsched.Config{Policy: "slack", Slots: 2, Admit: rcsched.AdmitReject},
		}
		a, err := fleet.Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fleet.Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: concurrent board serving perturbed the report across runs", dispatch)
		}
		if got := a.Admitted + a.Degraded + a.Rejected; got != len(jobs) {
			t.Errorf("%s: dispositions sum to %d, want %d", dispatch, got, len(jobs))
		}
	}
}

// TestFleetConfigValidation pins the error surface: bad board counts, empty
// streams, bad slot counts and unknown dispatch policies are rejected with
// errors, never panics or silent defaults.
func TestFleetConfigValidation(t *testing.T) {
	jobs := stream(t, 8, 1, 800)
	board := rcsched.Config{Policy: "slack", Slots: 2}
	cases := []struct {
		name string
		cfg  fleet.Config
		jobs []rcsched.Job
	}{
		{"zero boards", fleet.Config{Boards: 0, Board: board}, jobs},
		{"negative boards", fleet.Config{Boards: -2, Board: board}, jobs},
		{"empty stream", fleet.Config{Boards: 2, Board: board}, nil},
		{"zero slots", fleet.Config{Boards: 2, Board: rcsched.Config{Policy: "slack"}}, jobs},
		{"unknown dispatch", fleet.Config{Boards: 2, Dispatch: "round-robin", Board: board}, jobs},
	}
	for _, c := range cases {
		if _, err := fleet.Run(c.cfg, c.jobs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// The default dispatch is least-loaded, and a negative-seed rng must not
	// panic either.
	rep, err := fleet.Run(fleet.Config{Boards: 2, Seed: -7, Board: board}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dispatch != fleet.LeastLoaded {
		t.Errorf("empty dispatch resolved to %q, want %q", rep.Dispatch, fleet.LeastLoaded)
	}
	if math.IsNaN(rep.GoodputRPS) || math.IsNaN(rep.MissRate) || math.IsNaN(rep.ShedRate) {
		t.Error("fleet aggregates contain NaN on a healthy run")
	}
}

// TestFleetSchedulerAgreement runs one stressed fleet under the lockstep
// reference scheduler and the event-driven default and requires bit-equal
// reports — the dispatch-epoch determinism note made executable outside the
// golden suite.
func TestFleetSchedulerAgreement(t *testing.T) {
	jobs := stream(t, 48, 7, 6400)
	for _, dispatch := range allDispatches() {
		cfg := fleet.Config{
			Boards: 4, Dispatch: dispatch, Seed: 99,
			Board: rcsched.Config{Policy: "slack", Slots: 2, Admit: rcsched.AdmitReject},
		}
		prev := sim.SetDefaultScheduler(sim.Lockstep)
		lock, lockErr := fleet.Run(cfg, jobs)
		sim.SetDefaultScheduler(sim.EventDriven)
		evnt, evntErr := fleet.Run(cfg, jobs)
		sim.SetDefaultScheduler(prev)
		if lockErr != nil || evntErr != nil {
			t.Fatal(lockErr, evntErr)
		}
		if !reflect.DeepEqual(lock, evnt) {
			t.Errorf("%s: lockstep and event-driven schedulers disagree on the fleet report", dispatch)
		}
	}
}
