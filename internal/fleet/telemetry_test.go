// Telemetry tests for the fleet layer: metering a run never changes its
// report, the absorbed per-board series carry board labels, and two
// same-seed metered runs export byte-identical metrics and traces even
// though the boards serve on concurrently scheduled goroutines.
package fleet_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fleet"
	"repro/internal/rcsched"
	"repro/internal/telemetry"
)

func meteredFleetConfig(m *telemetry.Meter) fleet.Config {
	return fleet.Config{
		Boards:   3,
		Dispatch: fleet.Affinity,
		Seed:     7,
		Board:    rcsched.Config{Policy: "slack", Slots: 2, Stage: true, Admit: rcsched.AdmitReject},
		Meter:    m,
	}
}

func TestFleetMeterPassive(t *testing.T) {
	jobs := stream(t, 48, 9090, 3200)
	plain, err := fleet.Run(meteredFleetConfig(nil), jobs)
	if err != nil {
		t.Fatal(err)
	}
	metered, err := fleet.Run(meteredFleetConfig(telemetry.NewMeter(1e9)), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, metered) {
		t.Error("metering a fleet run changed its report")
	}
}

func TestFleetMeterDeterministicAcrossRuns(t *testing.T) {
	jobs := stream(t, 48, 9090, 3200)
	export := func() (metrics, trace []byte) {
		m := telemetry.NewMeter(1e9)
		if _, err := fleet.Run(meteredFleetConfig(m), jobs); err != nil {
			t.Fatal(err)
		}
		metrics, err := m.DumpJSON()
		if err != nil {
			t.Fatal(err)
		}
		trace, err = m.Trace().Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return metrics, trace
	}
	m1, t1 := export()
	m2, t2 := export()
	if !bytes.Equal(m1, m2) {
		t.Error("same-seed fleet runs dumped different metrics")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("same-seed fleet runs exported different traces")
	}

	// The absorbed board series carry board labels; the dispatcher's own
	// backlog series exists for every board and is non-empty.
	m := telemetry.NewMeter(1e9)
	rep, err := fleet.Run(meteredFleetConfig(m), jobs)
	if err != nil {
		t.Fatal(err)
	}
	sawQueue := false
	for b := 0; b < 3; b++ {
		if len(rep.Boards[b].Jobs) == 0 {
			continue
		}
		bl := string(rune('0' + b))
		if s := m.GaugeSamples("fleet_backlog_ps", "board", bl); len(s) == 0 {
			t.Errorf("no backlog samples for board %d", b)
		}
		if s := m.GaugeSamples("rcsched_queue_depth", "board", bl); len(s) > 0 {
			sawQueue = true
		}
	}
	if !sawQueue {
		t.Error("no absorbed per-board queue-depth series")
	}
	if !bytes.Contains(t1, []byte("dispatcher (affinity)")) {
		t.Error("trace lacks the dispatcher process name")
	}
}
