package fleet_test

import (
	"crypto/sha256"
	"encoding/json"
	"testing"

	"repro/internal/fleet"
	"repro/internal/rcsched"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// boardHashes digests every board's final report — the per-job reports plus
// the aggregates — so scheduler agreement can be asserted board by board.
func boardHashes(t *testing.T, rep *fleet.Report) [][32]byte {
	t.Helper()
	out := make([][32]byte, len(rep.Boards))
	for i, br := range rep.Boards {
		data, err := json.Marshal(br)
		if err != nil {
			t.Fatalf("board %d report not hashable: %v", i, err)
		}
		out[i] = sha256.Sum256(data)
	}
	return out
}

// FuzzDispatch fuzzes the fleet dispatcher over (stream length, stream seed,
// offered rate, arrival process, board count, dispatch policy, dispatch
// seed, admission mode) and pins the properties no input may break: no
// panics, conservation (every generated job exactly once, dispositions
// summing to the stream), in-range routing decisions, and bit-identical
// per-board reports under the lockstep and event-driven sim schedulers.
func FuzzDispatch(f *testing.F) {
	f.Add(uint8(24), int64(7), 1600.0, uint8(1), uint8(2), uint8(0), int64(99), uint8(0))
	f.Add(uint8(48), int64(1717), 6400.0, uint8(1), uint8(4), uint8(2), int64(1), uint8(1))
	f.Add(uint8(96), int64(4242), 12800.0, uint8(2), uint8(8), uint8(3), int64(-3), uint8(2))
	f.Add(uint8(12), int64(-1), 400.0, uint8(0), uint8(1), uint8(1), int64(0), uint8(0))
	f.Add(uint8(64), int64(55), 25600.0, uint8(2), uint8(5), uint8(2), int64(7), uint8(1))
	f.Fuzz(func(t *testing.T, n uint8, seed int64, rps float64, proc uint8,
		boards uint8, disp uint8, dispatchSeed int64, admit uint8) {
		if n == 0 || rps <= 0 || rps > 1e6 {
			t.Skip("outside the generator's contract")
		}
		if boards == 0 || boards > 12 {
			t.Skip("board count outside the fuzzed pool range")
		}
		process := []string{traffic.Uniform, traffic.Poisson, traffic.Bursty}[int(proc)%3]
		jobs, err := traffic.Stream(int(n), seed, traffic.Spec{Process: process, RPS: rps})
		if err != nil {
			t.Skip("stream spec rejected")
		}
		cfg := fleet.Config{
			Boards:   int(boards),
			Dispatch: allDispatches()[int(disp)%4],
			Seed:     dispatchSeed,
			Board: rcsched.Config{
				Policy: "slack",
				Slots:  2,
				Admit:  []string{rcsched.AdmitOff, rcsched.AdmitReject, rcsched.AdmitDegrade}[int(admit)%3],
			},
		}

		prev := sim.SetDefaultScheduler(sim.Lockstep)
		lock, lockErr := fleet.Run(cfg, jobs)
		sim.SetDefaultScheduler(sim.EventDriven)
		evnt, evntErr := fleet.Run(cfg, jobs)
		sim.SetDefaultScheduler(prev)
		if lockErr != nil || evntErr != nil {
			t.Fatalf("valid fleet config rejected: lockstep %v, event %v", lockErr, evntErr)
		}

		// Conservation over the merged report.
		if len(lock.Jobs) != len(jobs) {
			t.Fatalf("fleet report carries %d of %d jobs", len(lock.Jobs), len(jobs))
		}
		seen := map[int]int{}
		for i := range lock.Jobs {
			seen[lock.Jobs[i].ID]++
		}
		for _, j := range jobs {
			if seen[j.ID] != 1 {
				t.Fatalf("job %d appears %d times in the merged report", j.ID, seen[j.ID])
			}
		}
		if lock.Admitted+lock.Degraded+lock.Rejected != len(jobs) {
			t.Fatalf("dispositions sum to %d, want %d",
				lock.Admitted+lock.Degraded+lock.Rejected, len(jobs))
		}
		if len(lock.Decisions) != len(jobs) {
			t.Fatalf("%d decisions for %d jobs", len(lock.Decisions), len(jobs))
		}
		for _, d := range lock.Decisions {
			if d.Board < 0 || d.Board >= int(boards) {
				t.Fatalf("job %d routed to board %d of %d", d.Job, d.Board, boards)
			}
		}

		// Both sim schedulers must agree on every board's final report.
		lockH, evntH := boardHashes(t, lock), boardHashes(t, evnt)
		for b := range lockH {
			if lockH[b] != evntH[b] {
				t.Fatalf("board %d: lockstep and event-driven schedulers disagree on the final report", b)
			}
		}
	})
}
