// Package baseline implements the paper's comparison points that do NOT use
// the virtual interface manager:
//
//   - The "normal coprocessor" of Figure 9: the application stages the whole
//     dataset into the dual-port RAM, runs the coprocessor once, and copies
//     the results back. When the data exceeds the physical memory this
//     version simply cannot run — the paper marks those columns "exceeds
//     available memory".
//   - The "typical coprocessor" of Figure 3 (middle listing): the programmer
//     hand-writes the chunking loop — copy a fragment in, run, copy the
//     fragment out, repeat — burdened with every platform detail the VIM
//     would otherwise hide. This is the ABL-CHUNK ablation.
//
// Both run on the same hardware models as the virtualised path (the static
// full-residence mapping makes the IMU a pass-through wrapper that never
// faults), so the comparison isolates exactly the cost and benefit of OS
// involvement.
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/copro"
	"repro/internal/core"
	"repro/internal/imu"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/vim"
)

// ErrExceedsMemory marks a single-shot run whose data cannot fit the
// dual-port RAM (Figure 9's annotation).
var ErrExceedsMemory = errors.New("baseline: data set exceeds available memory")

// Stream describes one data object of the application.
type Stream struct {
	ID        uint8
	Dir       vim.Direction
	ItemBytes int    // bytes per work item (must divide the page size evenly enough to chunk)
	Data      []byte // input data (nil for pure outputs)
	Out       []byte // filled with ItemBytes*items for outputs
}

// ParamsFunc builds the FPGA_EXECUTE-style scalar parameters for a chunk of
// the given number of items.
type ParamsFunc func(items int) []uint32

// Runner executes an application against a board without any VIM.
type Runner struct {
	Board *platform.Board
	HW    *platform.HW
	hdr   bitstream.Header

	scratch uint32 // staging buffer in user memory, one DP RAM's worth
}

// NewRunner boots a fresh board of the given spec and configures the PLD
// from img.
func NewRunner(spec platform.Spec, img []byte) (*Runner, error) {
	board, err := platform.NewBoard(spec)
	if err != nil {
		return nil, err
	}
	hdr, inst, err := bitstream.Instantiate(img, spec.Name)
	if err != nil {
		return nil, err
	}
	cp, ok := inst.(copro.Coprocessor)
	if !ok {
		return nil, fmt.Errorf("baseline: bitstream %q is not a coprocessor", hdr.Core)
	}
	hw, err := board.Assemble(hdr.CoreClock, hdr.IMUClock, cp)
	if err != nil {
		return nil, err
	}
	scratch, err := board.Kern.Alloc(board.DP.Size() + 8)
	if err != nil {
		return nil, err
	}
	return &Runner{Board: board, HW: hw, hdr: hdr, scratch: scratch}, nil
}

// pagesFor returns the page count needed to hold n bytes.
func (r *Runner) pagesFor(n int) int {
	ps := r.Board.DP.PageSize()
	return (n + ps - 1) / ps
}

// chunkPages returns the frames needed by one chunk of the given item count.
func (r *Runner) chunkPages(streams []*Stream, items int) int {
	total := 1 // parameter page
	for _, s := range streams {
		total += r.pagesFor(s.ItemBytes * items)
	}
	return total
}

// fits reports whether a chunk of the given item count can be statically
// mapped. A chunk needing exactly one frame more than physically available
// still fits when the overflow page belongs to a pure-output stream: the
// coprocessor invalidates the parameter page after reading it (§3.2),
// freeing frame 0 for that final output page.
func (r *Runner) fits(streams []*Stream, items int) bool {
	total := r.chunkPages(streams, items)
	frames := r.Board.DP.Pages()
	if total <= frames {
		return true
	}
	if total == frames+1 && len(streams) > 0 {
		return streams[len(streams)-1].Dir == vim.Out
	}
	return false
}

// maxChunk returns the largest item count whose pages fit the DP RAM.
func (r *Runner) maxChunk(streams []*Stream, items int) int {
	lo, hi := 0, items
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.fits(streams, mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// RunSingleShot runs the whole dataset in one pass, exactly like the
// paper's normal coprocessor. It fails with ErrExceedsMemory when the data
// does not fit.
func (r *Runner) RunSingleShot(items int, streams []*Stream, params ParamsFunc) (*core.Report, error) {
	if !r.fits(streams, items) {
		return nil, fmt.Errorf("%w: %d pages needed, %d available",
			ErrExceedsMemory, r.chunkPages(streams, items), r.Board.DP.Pages())
	}
	return r.run(items, items, streams, params, "normal")
}

// RunChunked runs the Figure 3 hand-written loop: the largest chunk that
// fits, repeated until the dataset is done.
func (r *Runner) RunChunked(items int, streams []*Stream, params ParamsFunc) (*core.Report, error) {
	chunk := r.maxChunk(streams, items)
	if chunk == 0 {
		return nil, fmt.Errorf("%w: a single item does not fit", ErrExceedsMemory)
	}
	return r.run(items, chunk, streams, params, "chunked")
}

// run executes the dataset in chunks of up to chunkItems.
func (r *Runner) run(items, chunkItems int, streams []*Stream, params ParamsFunc, label string) (*core.Report, error) {
	k := r.Board.Kern
	tl := k.TL
	tl.Reset()
	r.Board.IMU.ResetCounters()
	u := r.Board.IMU

	for _, s := range streams {
		if s.Dir != vim.In {
			s.Out = make([]byte, s.ItemBytes*items)
		}
	}

	eng := r.HW.Eng
	imuDom := r.HW.IMUDom
	startCy := imuDom.Cycles()
	hwPs := 0.0

	for done := 0; done < items; {
		n := chunkItems
		if items-done < n {
			n = items - done
		}

		// Static mapping for this chunk: param page in frame 0, then the
		// streams' pages packed sequentially — the bookkeeping the VIM
		// would otherwise do, here hand-written in the application. An
		// overflow output page wraps onto frame 0, reusing the parameter
		// page the coprocessor releases after start-up (§3.2).
		u.InvalidateAll()
		for i, w := range params(n) {
			if err := k.BusWrite32(stats.SWIMU, platform.DPBase+uint32(4*i), w); err != nil {
				return nil, err
			}
		}
		if err := r.installEntry(0, imu.TLBEntry{Valid: true, Obj: copro.ParamObj, VPage: 0, Frame: 0}); err != nil {
			return nil, err
		}
		frames := r.Board.DP.Pages()
		assign := make([][]int, len(streams))
		next := 1
		for si, s := range streams {
			pages := r.pagesFor(s.ItemBytes * n)
			for p := 0; p < pages; p++ {
				f := next
				if f >= frames {
					f = 0 // reuse the released parameter frame
				}
				assign[si] = append(assign[si], f)
				next++
			}
		}
		var wrapped []imu.TLBEntry
		for si, s := range streams {
			bytes := s.ItemBytes * n
			if s.Dir != vim.Out && bytes > 0 {
				src := s.Data[done*s.ItemBytes : done*s.ItemBytes+bytes]
				if err := r.copyIn(assign[si], src); err != nil {
					return nil, err
				}
			}
			for p, f := range assign[si] {
				e := imu.TLBEntry{Valid: true, Obj: s.ID, VPage: uint32(p), Frame: uint8(f)}
				if f == 0 {
					// The CAM slot is still held by the parameter entry;
					// this mapping is installed once the coprocessor
					// releases the page.
					wrapped = append(wrapped, e)
					continue
				}
				if err := r.installEntry(f, e); err != nil {
					return nil, err
				}
			}
		}
		if len(wrapped) > 1 {
			return nil, fmt.Errorf("baseline: %d pages overflow the parameter frame, at most 1 fits", len(wrapped))
		}

		// Launch (no OS: the application busy-waits on the status bits).
		u.Start()
		before := eng.NowPs()
		if len(wrapped) == 1 {
			// Poll until the coprocessor has consumed the parameters and
			// invalidated their page (§3.2), then reuse frame 0 and its
			// CAM slot for the final output page.
			if _, err := eng.RunUntil(func() bool { return u.ParamFree() || u.IRQ() }, core.DefaultBudget); err != nil {
				return nil, err
			}
			hwPs += eng.NowPs() - before
			if u.IRQ() && !u.ParamFree() {
				return nil, fmt.Errorf("baseline: coprocessor stopped before releasing the parameter page")
			}
			if _, err := k.BusRead32(stats.SWIMU, platform.IMURegBase+imu.RegSR); err != nil {
				return nil, err
			}
			if err := r.installEntry(0, wrapped[0]); err != nil {
				return nil, err
			}
			if err := k.BusWrite32(stats.SWIMU, platform.IMURegBase+imu.RegCR, imu.CRClrPF); err != nil {
				return nil, err
			}
			before = eng.NowPs()
		}
		if _, err := eng.RunUntilFlag(u.IRQRef(), core.DefaultBudget); err != nil {
			return nil, err
		}
		hwPs += eng.NowPs() - before
		if u.FaultPending() {
			return nil, fmt.Errorf("baseline: unexpected fault (obj %d addr %#x) — static mapping incomplete",
				u.FaultObj(), u.FaultAddr())
		}
		u.AckDone()
		// Drain until the core has observed CP_START falling and dropped
		// CP_FIN — with a slow core domain this takes several bus edges.
		before = eng.NowPs()
		if _, err := eng.RunUntil(func() bool { return !r.HW.Port.CP().Fin && !u.IRQ() }, 256); err != nil {
			return nil, fmt.Errorf("baseline: completion handshake did not drain: %v", err)
		}
		hwPs += eng.NowPs() - before

		// Copy outputs back.
		for si, s := range streams {
			bytes := s.ItemBytes * n
			if s.Dir != vim.In && bytes > 0 {
				dst := s.Out[done*s.ItemBytes : done*s.ItemBytes+bytes]
				if err := r.copyOut(assign[si], dst); err != nil {
					return nil, err
				}
			}
		}
		done += n
	}

	tl.Add(stats.HW, hwPs)
	return &core.Report{
		App:     r.hdr.Core + "-" + label,
		Board:   r.Board.Spec.Name,
		Policy:  "static",
		IMUMode: u.Config().Mode.String(),
		HWPs:    tl.Ps(stats.HW),
		SWDPPs:  tl.Ps(stats.SWDP),
		SWIMUPs: tl.Ps(stats.SWIMU),
		SWOSPs:  tl.Ps(stats.SWOS),
		IMU:     u.Count,
		HWCy:    imuDom.Cycles() - startCy,
	}, nil
}

// installEntry programs one TLB entry through timed register writes.
func (r *Runner) installEntry(idx int, e imu.TLBEntry) error {
	k := r.Board.Kern
	if err := k.BusWrite32(stats.SWIMU, platform.IMURegBase+imu.RegTLBIdx, uint32(idx)); err != nil {
		return err
	}
	lo := uint32(0)
	if e.Valid {
		lo |= 1
	}
	lo |= uint32(e.Obj) << 1
	lo |= (e.VPage & 0x7fff) << 9
	if err := k.BusWrite32(stats.SWIMU, platform.IMURegBase+imu.RegTLBLo, lo); err != nil {
		return err
	}
	return k.BusWrite32(stats.SWIMU, platform.IMURegBase+imu.RegTLBHi, uint32(e.Frame))
}

// copyIn stages data into the assigned frames page by page (through the
// user-space staging buffer, costing the same AHB path as any user copy).
func (r *Runner) copyIn(frames []int, data []byte) error {
	k := r.Board.Kern
	if err := k.WriteUser(r.scratch, data); err != nil {
		return err
	}
	ps := r.Board.DP.PageSize()
	for p, f := range frames {
		off := p * ps
		n := len(data) - off
		if n > ps {
			n = ps
		}
		if n <= 0 {
			break
		}
		n = (n + 3) &^ 3
		if err := k.BusCopy(stats.SWDP, platform.DPBase+uint32(f*ps), r.scratch+uint32(off), n); err != nil {
			return err
		}
	}
	return nil
}

// copyOut retrieves the assigned frames into dst page by page.
func (r *Runner) copyOut(frames []int, dst []byte) error {
	k := r.Board.Kern
	ps := r.Board.DP.PageSize()
	for p, f := range frames {
		off := p * ps
		n := len(dst) - off
		if n > ps {
			n = ps
		}
		if n <= 0 {
			break
		}
		n = (n + 3) &^ 3
		if err := k.BusCopy(stats.SWDP, r.scratch+uint32(off), platform.DPBase+uint32(f*ps), n); err != nil {
			return err
		}
	}
	got, err := k.ReadUser(r.scratch, len(dst))
	if err != nil {
		return err
	}
	copy(dst, got)
	return nil
}
