package baseline

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/copro/adpcmdec"
	"repro/internal/copro/ideacp"
	"repro/internal/platform"
	"repro/internal/ref"
	"repro/internal/vim"
)

func ideaImage(t *testing.T) []byte {
	t.Helper()
	img, err := bitstream.Build(bitstream.Header{
		Device:    "EPXA1",
		Core:      ideacp.CoreName,
		CoreClock: 6_000_000,
		IMUClock:  24_000_000,
		LEs:       3900,
		Payload:   []byte{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func adpcmImage(t *testing.T) []byte {
	t.Helper()
	img, err := bitstream.Build(bitstream.Header{
		Device:    "EPXA1",
		Core:      adpcmdec.CoreName,
		CoreClock: 40_000_000,
		IMUClock:  40_000_000,
		LEs:       2100,
		Payload:   []byte{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func ideaStreams(in []byte) []*Stream {
	return []*Stream{
		{ID: ideacp.ObjIn, Dir: vim.In, ItemBytes: 8, Data: in},
		{ID: ideacp.ObjOut, Dir: vim.Out, ItemBytes: 8},
	}
}

func ideaParams(key ref.IDEAKey) ParamsFunc {
	ek := ref.ExpandIDEAKey(key)
	packed := ideacp.PackSubkeys(ek)
	return func(items int) []uint32 {
		p := []uint32{uint32(items)}
		for _, w := range packed {
			p = append(p, w)
		}
		return p
	}
}

func TestIDEASingleShotSmallSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var key ref.IDEAKey
	rng.Read(key[:])
	for _, n := range []int{4096, 8192} {
		in := make([]byte, n)
		rng.Read(in)
		r, err := NewRunner(platform.EPXA1(), ideaImage(t))
		if err != nil {
			t.Fatal(err)
		}
		streams := ideaStreams(in)
		rep, err := r.RunSingleShot(n/8, streams, ideaParams(key))
		if err != nil {
			t.Fatalf("%d bytes: %v", n, err)
		}
		ek := ref.ExpandIDEAKey(key)
		want := ref.IDEAApply(&ek, in)
		if !bytes.Equal(streams[1].Out, want) {
			t.Fatalf("%d bytes: ciphertext mismatch", n)
		}
		if rep.IMU.Faults != 0 {
			t.Fatalf("%d bytes: static mapping faulted %d times", n, rep.IMU.Faults)
		}
	}
}

func TestIDEASingleShotExceedsMemoryAt16KB(t *testing.T) {
	// Figure 9: the normal coprocessor cannot run 16 KB or 32 KB on the
	// EPXA1 — the data exceeds the dual-port RAM.
	for _, n := range []int{16384, 32768} {
		in := make([]byte, n)
		r, err := NewRunner(platform.EPXA1(), ideaImage(t))
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.RunSingleShot(n/8, ideaStreams(in), ideaParams(ref.IDEAKey{}))
		if !errors.Is(err, ErrExceedsMemory) {
			t.Fatalf("%d bytes: err = %v, want ErrExceedsMemory", n, err)
		}
	}
}

func TestIDEAChunkedHandlesLargeSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	var key ref.IDEAKey
	rng.Read(key[:])
	n := 32768
	in := make([]byte, n)
	rng.Read(in)
	r, err := NewRunner(platform.EPXA1(), ideaImage(t))
	if err != nil {
		t.Fatal(err)
	}
	streams := ideaStreams(in)
	rep, err := r.RunChunked(n/8, streams, ideaParams(key))
	if err != nil {
		t.Fatal(err)
	}
	ek := ref.ExpandIDEAKey(key)
	want := ref.IDEAApply(&ek, in)
	if !bytes.Equal(streams[1].Out, want) {
		t.Fatal("chunked ciphertext mismatch")
	}
	if rep.SWDPPs <= 0 {
		t.Fatal("chunked run charged no copy time")
	}
}

func TestADPCMChunkedMatchesGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 8192
	in := make([]byte, n)
	rng.Read(in)
	r, err := NewRunner(platform.EPXA1(), adpcmImage(t))
	if err != nil {
		t.Fatal(err)
	}
	streams := []*Stream{
		{ID: adpcmdec.ObjIn, Dir: vim.In, ItemBytes: 1, Data: in},
		{ID: adpcmdec.ObjOut, Dir: vim.Out, ItemBytes: 4},
	}
	_, err = r.RunChunked(n, streams, func(items int) []uint32 {
		return []uint32{uint32(items)}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The decoder state resets at each chunk in this baseline; the golden
	// comparison must mirror the chunking.
	chunk := r.maxChunk(streams, n)
	var want []byte
	for off := 0; off < n; off += chunk {
		end := off + chunk
		if end > n {
			end = n
		}
		for _, s := range ref.ADPCMDecode(ref.ADPCMState{}, in[off:end]) {
			want = append(want, byte(s), byte(uint16(s)>>8))
		}
	}
	if !bytes.Equal(streams[1].Out, want) {
		t.Fatal("chunked ADPCM output mismatch")
	}
}

func TestChunkedNotCheaperThanSingleShot(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	var key ref.IDEAKey
	rng.Read(key[:])
	n := 8192
	in := make([]byte, n)
	rng.Read(in)

	r1, _ := NewRunner(platform.EPXA1(), ideaImage(t))
	single, err := r1.RunSingleShot(n/8, ideaStreams(in), ideaParams(key))
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRunner(platform.EPXA1(), ideaImage(t))
	chunked, err := r2.RunChunked(n/8, ideaStreams(in), ideaParams(key))
	if err != nil {
		t.Fatal(err)
	}
	if chunked.TotalPs() < single.TotalPs() {
		t.Fatalf("chunked (%.0f ps) cheaper than single shot (%.0f ps)",
			chunked.TotalPs(), single.TotalPs())
	}
}
