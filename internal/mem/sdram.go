package mem

import "fmt"

// SDRAMTiming carries the access-cost parameters of the external SDRAM, in
// memory-controller clock cycles. The defaults approximate a PC100-class
// part behind the Excalibur's SDRAM controller.
type SDRAMTiming struct {
	// FirstWord is the latency of the first beat of an access (row
	// activation + CAS, amortised).
	FirstWord int64
	// NextWord is the cost of each subsequent sequential beat of a burst.
	NextWord int64
	// BurstLen is the natural burst length in 32-bit words.
	BurstLen int
}

// DefaultSDRAMTiming returns the timing used by the board models.
func DefaultSDRAMTiming() SDRAMTiming {
	return SDRAMTiming{FirstWord: 6, NextWord: 1, BurstLen: 8}
}

// CostWords returns the cycle cost of transferring n sequential words.
func (t SDRAMTiming) CostWords(n int) int64 {
	if n <= 0 {
		return 0
	}
	bl := t.BurstLen
	if bl <= 0 {
		bl = 1
	}
	full := n / bl
	rem := n % bl
	cost := int64(full) * (t.FirstWord + int64(bl-1)*t.NextWord)
	if rem > 0 {
		cost += t.FirstWord + int64(rem-1)*t.NextWord
	}
	return cost
}

// SDRAM is the external memory holding user-space process data. It is an
// AHB slave; its timing is consulted both by the bus model (kernel copies)
// and the timed CPU model (cache refills).
type SDRAM struct {
	store  *ByteStore
	Timing SDRAMTiming
}

// NewSDRAM allocates an SDRAM model of the given size.
func NewSDRAM(size int, timing SDRAMTiming) *SDRAM {
	return &SDRAM{store: NewByteStore(size), Timing: timing}
}

// Size returns the capacity in bytes.
func (s *SDRAM) Size() int { return s.store.Size() }

// Store exposes the backing byte store.
func (s *SDRAM) Store() *ByteStore { return s.store }

// Flash models the configuration flash holding bitstreams. Reads are slow
// and word-wide; the model only needs bulk retrieval and a programming
// operation for the loader.
type Flash struct {
	store *ByteStore
	// ReadCost is the controller cycles per 32-bit word read.
	ReadCost int64
}

// NewFlash allocates a flash model of the given size.
func NewFlash(size int) *Flash {
	return &Flash{store: NewByteStore(size), ReadCost: 12}
}

// Size returns the capacity in bytes.
func (f *Flash) Size() int { return f.store.Size() }

// Program writes image at offset (the board provisioning step).
func (f *Flash) Program(offset uint32, image []byte) error {
	return f.store.WriteBytes(offset, image)
}

// ReadImage retrieves n bytes at offset and the controller cycle cost of
// doing so.
func (f *Flash) ReadImage(offset uint32, n int) ([]byte, int64, error) {
	b, err := f.store.ReadBytes(offset, n)
	if err != nil {
		return nil, 0, fmt.Errorf("flash: %w", err)
	}
	words := int64((n + 3) / 4)
	return b, words * f.ReadCost, nil
}
