package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestByteStoreWordRoundTrip(t *testing.T) {
	s := NewByteStore(64)
	if err := s.Write32(8, 0xdeadbeef, 0xf); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read32(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef {
		t.Fatalf("read %#x, want 0xdeadbeef", v)
	}
	// Little-endian layout.
	b, _ := s.Byte(8)
	if b != 0xef {
		t.Fatalf("byte 0 = %#x, want 0xef (little endian)", b)
	}
}

func TestByteStoreByteEnables(t *testing.T) {
	s := NewByteStore(8)
	if err := s.Write32(0, 0xffffffff, 0xf); err != nil {
		t.Fatal(err)
	}
	// Write only lanes 1 and 2.
	if err := s.Write32(0, 0x00aabb00, 0x6); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Read32(0)
	if v != 0xffaabbff {
		t.Fatalf("read %#x, want 0xffaabbff", v)
	}
}

func TestByteStoreOutOfRange(t *testing.T) {
	s := NewByteStore(4)
	if _, err := s.Read32(1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Read32(1) err = %v, want ErrOutOfRange", err)
	}
	if err := s.SetByte(4, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("WriteByte(4) err = %v, want ErrOutOfRange", err)
	}
	if _, err := s.ReadBytes(0, 5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ReadBytes err = %v, want ErrOutOfRange", err)
	}
}

func TestQuickByteStoreBlockRoundTrip(t *testing.T) {
	s := NewByteStore(4096)
	f := func(off uint16, data []byte) bool {
		addr := uint32(off) % 2048
		if len(data) > 2048 {
			data = data[:2048]
		}
		if err := s.WriteBytes(addr, data); err != nil {
			return false
		}
		got, err := s.ReadBytes(addr, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDPRAMGeometry(t *testing.T) {
	d, err := NewDPRAM(16*1024, 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	if d.Pages() != 8 {
		t.Fatalf("pages = %d, want 8", d.Pages())
	}
	if d.PageBase(3) != 6*1024 {
		t.Fatalf("PageBase(3) = %#x, want %#x", d.PageBase(3), 6*1024)
	}
	if _, err := NewDPRAM(1000, 256); err == nil {
		t.Fatal("accepted non-multiple size")
	}
}

func TestDPRAMPortsShareStorage(t *testing.T) {
	d, _ := NewDPRAM(4096, 1024)
	if err := d.WriteA(100, 0x12345678, 0xf); err != nil {
		t.Fatal(err)
	}
	v, err := d.ReadB(100)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x12345678 {
		t.Fatalf("port B read %#x, want 0x12345678", v)
	}
	if d.WritesA != 1 || d.ReadsB != 1 {
		t.Fatalf("counters A=%d B=%d, want 1,1", d.WritesA, d.ReadsB)
	}
}

func TestDPRAMPageIO(t *testing.T) {
	d, _ := NewDPRAM(4096, 1024)
	page := make([]byte, 1024)
	for i := range page {
		page[i] = byte(i * 7)
	}
	if err := d.WritePage(2, page); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadPage(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("page round trip mismatch")
	}
	if err := d.WritePage(4, page); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("WritePage(4) err = %v, want ErrOutOfRange", err)
	}
}

func TestSDRAMBurstCost(t *testing.T) {
	tm := SDRAMTiming{FirstWord: 6, NextWord: 1, BurstLen: 8}
	cases := []struct {
		words int
		want  int64
	}{
		{0, 0},
		{1, 6},
		{8, 13},      // 6 + 7
		{16, 26},     // two full bursts
		{9, 13 + 6},  // full burst + single
		{12, 13 + 9}, // full burst + 4-beat remainder
	}
	for _, c := range cases {
		if got := tm.CostWords(c.words); got != c.want {
			t.Errorf("CostWords(%d) = %d, want %d", c.words, got, c.want)
		}
	}
}

func TestQuickSDRAMCostMonotonic(t *testing.T) {
	tm := DefaultSDRAMTiming()
	f := func(a, b uint8) bool {
		x, y := int(a%200), int(b%200)
		if x > y {
			x, y = y, x
		}
		return tm.CostWords(x) <= tm.CostWords(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlashProgramAndRead(t *testing.T) {
	f := NewFlash(1 << 16)
	img := []byte{1, 2, 3, 4, 5, 6, 7}
	if err := f.Program(0x100, img); err != nil {
		t.Fatal(err)
	}
	got, cost, err := f.ReadImage(0x100, len(img))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("flash image mismatch")
	}
	if cost != 2*f.ReadCost { // 7 bytes = 2 words
		t.Fatalf("cost = %d, want %d", cost, 2*f.ReadCost)
	}
}
