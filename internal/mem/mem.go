// Package mem provides the memory models of the reconfigurable SoC: the
// on-chip dual-port RAM shared between the PLD and the processor, the
// external SDRAM holding user-space data, and the flash device storing
// configuration bitstreams.
//
// All models are functional (they hold real bytes) and carry the timing
// parameters the bus and CPU models need to cost accesses.
package mem

import (
	"errors"
	"fmt"
)

// ErrOutOfRange is returned for accesses outside a device.
var ErrOutOfRange = errors.New("mem: access out of range")

// ByteStore is a flat byte-addressable storage with 32-bit word helpers.
// Words are little-endian, matching the ARM stripe configuration.
type ByteStore struct {
	data []byte
}

// NewByteStore allocates a zeroed store of the given size.
func NewByteStore(size int) *ByteStore {
	return &ByteStore{data: make([]byte, size)}
}

// Size returns the store capacity in bytes.
func (s *ByteStore) Size() int { return len(s.data) }

// InRange reports whether [addr, addr+n) lies inside the store.
func (s *ByteStore) InRange(addr uint32, n int) bool {
	return int64(addr)+int64(n) <= int64(len(s.data))
}

// Byte returns the byte at addr.
func (s *ByteStore) Byte(addr uint32) (byte, error) {
	if !s.InRange(addr, 1) {
		return 0, fmt.Errorf("%w: byte read at %#x (size %#x)", ErrOutOfRange, addr, len(s.data))
	}
	return s.data[addr], nil
}

// SetByte stores b at addr.
func (s *ByteStore) SetByte(addr uint32, b byte) error {
	if !s.InRange(addr, 1) {
		return fmt.Errorf("%w: byte write at %#x (size %#x)", ErrOutOfRange, addr, len(s.data))
	}
	s.data[addr] = b
	return nil
}

// Read32 returns the little-endian word at addr (no alignment requirement;
// the bus models enforce their own alignment rules).
func (s *ByteStore) Read32(addr uint32) (uint32, error) {
	if !s.InRange(addr, 4) {
		return 0, fmt.Errorf("%w: word read at %#x (size %#x)", ErrOutOfRange, addr, len(s.data))
	}
	d := s.data[addr:]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

// Write32 stores the little-endian word v at addr, honouring the byte-enable
// mask be (bit i enables byte lane i).
func (s *ByteStore) Write32(addr uint32, v uint32, be uint8) error {
	if !s.InRange(addr, 4) {
		return fmt.Errorf("%w: word write at %#x (size %#x)", ErrOutOfRange, addr, len(s.data))
	}
	for lane := 0; lane < 4; lane++ {
		if be&(1<<lane) != 0 {
			s.data[addr+uint32(lane)] = byte(v >> (8 * lane))
		}
	}
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (s *ByteStore) ReadBytes(addr uint32, n int) ([]byte, error) {
	if !s.InRange(addr, n) {
		return nil, fmt.Errorf("%w: block read at %#x+%#x (size %#x)", ErrOutOfRange, addr, n, len(s.data))
	}
	out := make([]byte, n)
	copy(out, s.data[addr:])
	return out, nil
}

// WriteBytes copies p into the store starting at addr.
func (s *ByteStore) WriteBytes(addr uint32, p []byte) error {
	if !s.InRange(addr, len(p)) {
		return fmt.Errorf("%w: block write at %#x+%#x (size %#x)", ErrOutOfRange, addr, len(p), len(s.data))
	}
	copy(s.data[addr:], p)
	return nil
}

// Raw exposes the backing slice for zero-copy read access by trusted models
// (the VIM's transfer engine). Callers must not grow it.
func (s *ByteStore) Raw() []byte { return s.data }
