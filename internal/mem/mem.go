// Package mem provides the memory models of the reconfigurable SoC: the
// on-chip dual-port RAM shared between the PLD and the processor, the
// external SDRAM holding user-space data, and the flash device storing
// configuration bitstreams.
//
// All models are functional (they hold real bytes) and carry the timing
// parameters the bus and CPU models need to cost accesses.
//
// Storage is sparse: a ByteStore is backed by fixed-size pages that are
// materialised on first write, and unwritten pages read as zero. Building a
// board model with 256 MB of SDRAM therefore costs a small page table, not a
// 256 MB memset — experiment harnesses construct (and discard) whole systems
// per run, and the eager zeroing used to dominate their profiles.
package mem

import (
	"errors"
	"fmt"
)

// ErrOutOfRange is returned for accesses outside a device.
var ErrOutOfRange = errors.New("mem: access out of range")

// Backing-page geometry. 64 KB pages keep the page table small even for the
// largest board (256 MB SDRAM = 4096 entries) while making first-write
// materialisation cheap.
const (
	pageShift = 16
	pageBytes = 1 << pageShift
	pageMask  = pageBytes - 1
)

// ByteStore is a flat byte-addressable storage with 32-bit word helpers.
// Words are little-endian, matching the ARM stripe configuration.
//
// The address space is backed by lazily-allocated pages: reads of a page
// that was never written return zero without allocating, and the first
// write to a page materialises it. Stores no larger than one backing page
// (the dual-port RAMs, register files) are materialised eagerly so their
// single page is always resident.
type ByteStore struct {
	size  int
	pages [][]byte
}

// NewByteStore allocates a zeroed store of the given size.
func NewByteStore(size int) *ByteStore {
	if size < 0 {
		size = 0
	}
	n := (size + pageBytes - 1) >> pageShift
	s := &ByteStore{size: size, pages: make([][]byte, n)}
	if n == 1 {
		// Small store: skip the lazy machinery, the single page costs
		// at most one 64 KB allocation.
		s.pages[0] = make([]byte, pageBytes)
	}
	return s
}

// Size returns the store capacity in bytes.
func (s *ByteStore) Size() int { return s.size }

// InRange reports whether [addr, addr+n) lies inside the store.
func (s *ByteStore) InRange(addr uint32, n int) bool {
	return int64(addr)+int64(n) <= int64(s.size)
}

// MaterializedBytes returns how many bytes of backing pages are currently
// allocated (observability for tests and capacity planning; a freshly built
// large store reports 0).
func (s *ByteStore) MaterializedBytes() int {
	n := 0
	for _, p := range s.pages {
		if p != nil {
			n += len(p)
		}
	}
	return n
}

// page materialises and returns the backing page containing addr.
func (s *ByteStore) page(addr uint32) []byte {
	i := addr >> pageShift
	p := s.pages[i]
	if p == nil {
		p = make([]byte, pageBytes)
		s.pages[i] = p
	}
	return p
}

// Byte returns the byte at addr.
func (s *ByteStore) Byte(addr uint32) (byte, error) {
	if !s.InRange(addr, 1) {
		return 0, fmt.Errorf("%w: byte read at %#x (size %#x)", ErrOutOfRange, addr, s.size)
	}
	p := s.pages[addr>>pageShift]
	if p == nil {
		return 0, nil
	}
	return p[addr&pageMask], nil
}

// SetByte stores b at addr.
func (s *ByteStore) SetByte(addr uint32, b byte) error {
	if !s.InRange(addr, 1) {
		return fmt.Errorf("%w: byte write at %#x (size %#x)", ErrOutOfRange, addr, s.size)
	}
	s.page(addr)[addr&pageMask] = b
	return nil
}

// Read32 returns the little-endian word at addr (no alignment requirement;
// the bus models enforce their own alignment rules).
func (s *ByteStore) Read32(addr uint32) (uint32, error) {
	if !s.InRange(addr, 4) {
		return 0, fmt.Errorf("%w: word read at %#x (size %#x)", ErrOutOfRange, addr, s.size)
	}
	off := addr & pageMask
	if off <= pageBytes-4 {
		p := s.pages[addr>>pageShift]
		if p == nil {
			return 0, nil
		}
		d := p[off : off+4 : off+4]
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
	}
	// The word straddles a page boundary; assemble it byte by byte.
	var v uint32
	for lane := uint32(0); lane < 4; lane++ {
		b, _ := s.Byte(addr + lane)
		v |= uint32(b) << (8 * lane)
	}
	return v, nil
}

// Write32 stores the little-endian word v at addr, honouring the byte-enable
// mask be (bit i enables byte lane i).
func (s *ByteStore) Write32(addr uint32, v uint32, be uint8) error {
	if !s.InRange(addr, 4) {
		return fmt.Errorf("%w: word write at %#x (size %#x)", ErrOutOfRange, addr, s.size)
	}
	off := addr & pageMask
	if off <= pageBytes-4 {
		p := s.page(addr)
		if be == 0xf {
			p[off] = byte(v)
			p[off+1] = byte(v >> 8)
			p[off+2] = byte(v >> 16)
			p[off+3] = byte(v >> 24)
			return nil
		}
		for lane := uint32(0); lane < 4; lane++ {
			if be&(1<<lane) != 0 {
				p[off+lane] = byte(v >> (8 * lane))
			}
		}
		return nil
	}
	for lane := uint32(0); lane < 4; lane++ {
		if be&(1<<lane) != 0 {
			_ = s.SetByte(addr+lane, byte(v>>(8*lane)))
		}
	}
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (s *ByteStore) ReadBytes(addr uint32, n int) ([]byte, error) {
	if n < 0 || !s.InRange(addr, n) {
		return nil, fmt.Errorf("%w: block read at %#x+%#x (size %#x)", ErrOutOfRange, addr, n, s.size)
	}
	out := make([]byte, n)
	// Unmaterialised pages read as zero, which make already provided.
	for done := 0; done < n; {
		off := (addr + uint32(done)) & pageMask
		chunk := pageBytes - int(off)
		if chunk > n-done {
			chunk = n - done
		}
		if p := s.pages[(addr+uint32(done))>>pageShift]; p != nil {
			copy(out[done:done+chunk], p[off:])
		}
		done += chunk
	}
	return out, nil
}

// WriteBytes copies p into the store starting at addr.
func (s *ByteStore) WriteBytes(addr uint32, p []byte) error {
	if !s.InRange(addr, len(p)) {
		return fmt.Errorf("%w: block write at %#x+%#x (size %#x)", ErrOutOfRange, addr, len(p), s.size)
	}
	for done := 0; done < len(p); {
		a := addr + uint32(done)
		off := a & pageMask
		chunk := pageBytes - int(off)
		if chunk > len(p)-done {
			chunk = len(p) - done
		}
		copy(s.page(a)[off:], p[done:done+chunk])
		done += chunk
	}
	return nil
}
