package mem

// FuzzByteStoreSparse pins the sparse-page semantics of ByteStore against a
// flat []byte reference model: any sequence of byte, word (with byte
// enables), and block reads/writes/fills — in range or out — must behave
// exactly like dense storage, with unwritten pages reading as zero and no
// partial effects from rejected accesses.

import (
	"bytes"
	"testing"
)

// fuzzStoreSize spans three full backing pages plus a ragged tail so page
// boundaries, the straddling word paths and the end-of-store bounds checks
// are all inside the fuzzed address range.
const fuzzStoreSize = 3*pageBytes + 1234

// u32 decodes 4 bytes little-endian (enough entropy for fuzz addresses).
func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func FuzzByteStoreSparse(f *testing.F) {
	// Seed corpus: page-straddling word accesses, tail bounds, block ops.
	f.Add([]byte{0x00})
	f.Add([]byte{
		2, 0xfe, 0xff, 0x00, 0x00, 0xaa, 0xbb, 0xcc, 0xdd, 0x0f, // word write straddling page 0/1
		3, 0xfe, 0xff, 0x00, 0x00, // read it back
	})
	f.Add([]byte{
		0, 0xd1, 0x04, 0x03, 0x00, 0x42, // byte write near the store tail
		2, 0xd0, 0x04, 0x03, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, // masked word write
		5, 0x00, 0x00, 0x03, 0x00, 0xff, 0xff, // big block read
	})
	f.Add([]byte{
		4, 0x10, 0x00, 0x01, 0x00, 0x20, 1, 2, 3, 4, 5, 6, 7, 8, // block write
		1, 0x12, 0x00, 0x01, 0x00,
	})

	f.Fuzz(func(t *testing.T, in []byte) {
		s := NewByteStore(fuzzStoreSize)
		model := make([]byte, fuzzStoreSize)
		inRange := func(addr uint32, n int) bool {
			return int64(addr)+int64(n) <= int64(fuzzStoreSize)
		}

		for len(in) >= 5 {
			op := in[0] % 6
			addr := u32(in[1:5])
			// Keep most addresses inside (or just beyond) the store so the
			// interesting paths dominate over trivially rejected ones.
			if in[0]&0x80 == 0 {
				addr %= fuzzStoreSize + 8
			}
			in = in[5:]
			switch op {
			case 0: // SetByte
				if len(in) < 1 {
					return
				}
				v := in[0]
				in = in[1:]
				err := s.SetByte(addr, v)
				if ok := inRange(addr, 1); ok != (err == nil) {
					t.Fatalf("SetByte(%#x): err=%v, in-range=%v", addr, err, ok)
				}
				if err == nil {
					model[addr] = v
				}
			case 1: // Byte
				got, err := s.Byte(addr)
				if ok := inRange(addr, 1); ok != (err == nil) {
					t.Fatalf("Byte(%#x): err=%v, in-range=%v", addr, err, ok)
				}
				if err == nil && got != model[addr] {
					t.Fatalf("Byte(%#x) = %#x, model %#x", addr, got, model[addr])
				}
			case 2: // Write32 with byte enables
				if len(in) < 5 {
					return
				}
				v := u32(in[:4])
				be := in[4] & 0xf
				in = in[5:]
				err := s.Write32(addr, v, be)
				if ok := inRange(addr, 4); ok != (err == nil) {
					t.Fatalf("Write32(%#x): err=%v, in-range=%v", addr, err, ok)
				}
				if err == nil {
					for lane := uint32(0); lane < 4; lane++ {
						if be&(1<<lane) != 0 {
							model[addr+lane] = byte(v >> (8 * lane))
						}
					}
				}
			case 3: // Read32
				got, err := s.Read32(addr)
				if ok := inRange(addr, 4); ok != (err == nil) {
					t.Fatalf("Read32(%#x): err=%v, in-range=%v", addr, err, ok)
				}
				if err == nil {
					want := uint32(model[addr]) | uint32(model[addr+1])<<8 |
						uint32(model[addr+2])<<16 | uint32(model[addr+3])<<24
					if got != want {
						t.Fatalf("Read32(%#x) = %#x, model %#x", addr, got, want)
					}
				}
			case 4: // WriteBytes (fill from the remaining input)
				if len(in) < 1 {
					return
				}
				n := int(in[0])
				in = in[1:]
				if n > len(in) {
					n = len(in)
				}
				p := in[:n]
				in = in[n:]
				err := s.WriteBytes(addr, p)
				if ok := inRange(addr, len(p)); ok != (err == nil) {
					t.Fatalf("WriteBytes(%#x,%d): err=%v, in-range=%v", addr, len(p), err, ok)
				}
				if err == nil {
					copy(model[addr:], p)
				}
			case 5: // ReadBytes
				if len(in) < 2 {
					return
				}
				n := int(in[0]) | int(in[1])<<8
				in = in[2:]
				got, err := s.ReadBytes(addr, n)
				if ok := inRange(addr, n); ok != (err == nil) {
					t.Fatalf("ReadBytes(%#x,%d): err=%v, in-range=%v", addr, n, err, ok)
				}
				if err == nil && !bytes.Equal(got, model[addr:int(addr)+n]) {
					t.Fatalf("ReadBytes(%#x,%d) diverged from model", addr, n)
				}
			}
		}

		// Global invariants: the whole store matches the model, and the
		// sparse backing never exceeds the page-rounded capacity.
		final, err := s.ReadBytes(0, fuzzStoreSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(final, model) {
			t.Fatal("final store contents diverged from the flat model")
		}
		if mat := s.MaterializedBytes(); mat > 4*pageBytes {
			t.Fatalf("materialised %d bytes, capacity is %d", mat, 4*pageBytes)
		}
	})
}
