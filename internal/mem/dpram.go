package mem

import "fmt"

// DPRAM is the on-chip dual-port RAM of the Excalibur device. Port A is
// wired to the PLD (the IMU accesses it synchronously, one word per cycle);
// port B is an AHB slave visible to the ARM stripe. The paper organises it
// logically in 2 KB pages managed by the VIM.
//
// Both ports address the same storage. The paper notes the two masters never
// access the memory at the same time (the processor only touches it while
// the coprocessor is stalled or idle), and the simulation preserves that
// discipline, so no port-conflict arbitration is modelled; a conflict
// counter is still kept so tests can assert the discipline holds.
type DPRAM struct {
	store    *ByteStore
	pageSize int

	// Port activity counters for assertions and reports.
	ReadsA, WritesA uint64
	ReadsB, WritesB uint64
}

// NewDPRAM builds a dual-port RAM of size bytes organised in pages of
// pageSize bytes. Size must be a positive multiple of pageSize.
func NewDPRAM(size, pageSize int) (*DPRAM, error) {
	if size <= 0 || pageSize <= 0 || size%pageSize != 0 {
		return nil, fmt.Errorf("mem: DPRAM size %d must be a positive multiple of page size %d", size, pageSize)
	}
	return &DPRAM{store: NewByteStore(size), pageSize: pageSize}, nil
}

// Size returns the capacity in bytes.
func (d *DPRAM) Size() int { return d.store.Size() }

// PageSize returns the logical page size in bytes.
func (d *DPRAM) PageSize() int { return d.pageSize }

// Pages returns the number of logical pages.
func (d *DPRAM) Pages() int { return d.store.Size() / d.pageSize }

// PageBase returns the byte address of page frame f.
func (d *DPRAM) PageBase(f int) uint32 { return uint32(f * d.pageSize) }

// ReadA performs a port-A (PLD side) word read.
func (d *DPRAM) ReadA(addr uint32) (uint32, error) {
	d.ReadsA++
	return d.store.Read32(addr)
}

// WriteA performs a port-A (PLD side) word write with byte enables.
func (d *DPRAM) WriteA(addr uint32, v uint32, be uint8) error {
	d.WritesA++
	return d.store.Write32(addr, v, be)
}

// ReadB performs a port-B (AHB side) word read.
func (d *DPRAM) ReadB(addr uint32) (uint32, error) {
	d.ReadsB++
	return d.store.Read32(addr)
}

// WriteB performs a port-B (AHB side) word write with byte enables.
func (d *DPRAM) WriteB(addr uint32, v uint32, be uint8) error {
	d.WritesB++
	return d.store.Write32(addr, v, be)
}

// ReadPage copies page frame f into a fresh slice (used by tests and the
// bounce-buffer transfer path).
func (d *DPRAM) ReadPage(f int) ([]byte, error) {
	if f < 0 || f >= d.Pages() {
		return nil, fmt.Errorf("%w: page %d of %d", ErrOutOfRange, f, d.Pages())
	}
	return d.store.ReadBytes(d.PageBase(f), d.pageSize)
}

// WritePage overwrites page frame f with p (len(p) may be shorter than a
// page; the rest of the frame is left untouched).
func (d *DPRAM) WritePage(f int, p []byte) error {
	if f < 0 || f >= d.Pages() {
		return fmt.Errorf("%w: page %d of %d", ErrOutOfRange, f, d.Pages())
	}
	if len(p) > d.pageSize {
		return fmt.Errorf("%w: %d bytes into a %d-byte page", ErrOutOfRange, len(p), d.pageSize)
	}
	return d.store.WriteBytes(d.PageBase(f), p)
}

// Store exposes the underlying byte store for trusted fast paths.
func (d *DPRAM) Store() *ByteStore { return d.store }
