package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func testCore(t *testing.T) *Core {
	if t != nil {
		t.Helper()
	}
	sd := mem.NewSDRAM(1<<20, mem.DefaultSDRAMTiming())
	c, err := NewCore(133_000_000, DefaultCostModel(), DefaultCacheConfig(), sd)
	if err != nil {
		if t != nil {
			t.Fatal(err)
		}
		panic(err)
	}
	return c
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c := testCore(t)
	x := NewCtx(c)
	x.Store32(0x100, 0xfeedface)
	if v := x.Load32(0x100); v != 0xfeedface {
		t.Fatalf("load = %#x, want 0xfeedface", v)
	}
	x.Store16(0x200, 0xbeef)
	if v := x.Load16(0x200); v != 0xbeef {
		t.Fatalf("load16 = %#x, want 0xbeef", v)
	}
	x.Store8(0x300, 0x5a)
	if v := x.Load8(0x300); v != 0x5a {
		t.Fatalf("load8 = %#x, want 0x5a", v)
	}
}

func TestCyclesAccumulate(t *testing.T) {
	c := testCore(t)
	x := NewCtx(c)
	before := c.Cycles()
	x.ALU(3)
	x.Mul()
	x.Div()
	x.Branch(true)
	x.Branch(false)
	x.Call()
	cm := c.Cost
	want := 3*cm.ALU + cm.Mul + cm.Div + cm.BranchTaken + cm.BranchNot + cm.Call
	if got := c.Cycles() - before; got != want {
		t.Fatalf("cycles = %d, want %d", got, want)
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := testCore(t)
	x := NewCtx(c)
	x.Load32(0x1000) // compulsory miss
	if c.Misses != 1 {
		t.Fatalf("misses = %d, want 1", c.Misses)
	}
	m := c.Misses
	x.Load32(0x1004) // same 32-byte line
	if c.Misses != m {
		t.Fatalf("second access missed (misses = %d)", c.Misses)
	}
	missCost := c.Cost.LoadHit + c.Cost.MissPenalty
	hitCost := c.Cost.LoadHit
	if missCost <= hitCost {
		t.Fatal("miss not dearer than hit")
	}
}

func TestCacheConflictAndWriteback(t *testing.T) {
	c := testCore(t)
	x := NewCtx(c)
	cc := DefaultCacheConfig()
	stride := uint32(cc.SizeBytes) // same index, different tag
	x.Store32(0x0, 1)              // miss, allocates dirty line
	x.Load32(stride)               // conflict miss, must write back dirty victim
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks)
	}
	if c.Misses != 2 {
		t.Fatalf("misses = %d, want 2", c.Misses)
	}
}

func TestInvalidateCache(t *testing.T) {
	c := testCore(t)
	x := NewCtx(c)
	x.Load32(0x40)
	c.InvalidateCache()
	m := c.Misses
	x.Load32(0x40)
	if c.Misses != m+1 {
		t.Fatal("access after invalidate did not miss")
	}
}

func TestResetStatsKeepsData(t *testing.T) {
	c := testCore(t)
	x := NewCtx(c)
	x.Store32(0x500, 77)
	c.ResetStats()
	if c.Cycles() != 0 || c.Loads != 0 {
		t.Fatal("stats not reset")
	}
	if v := x.Load32(0x500); v != 77 {
		t.Fatal("data lost by ResetStats")
	}
}

func TestQuickSequentialScanMissRate(t *testing.T) {
	// Property: a sequential word scan of n lines misses exactly once per
	// line (direct-mapped, line fits 8 words) when it fits the cache.
	f := func(nLines uint8) bool {
		n := int(nLines%64) + 1 // well under 256 lines
		c := testCore(nil)
		x := NewCtx(c)
		for i := 0; i < n*8; i++ {
			x.Load32(uint32(i * 4))
		}
		return c.Misses == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewCoreValidation(t *testing.T) {
	sd := mem.NewSDRAM(1024, mem.DefaultSDRAMTiming())
	if _, err := NewCore(0, DefaultCostModel(), DefaultCacheConfig(), sd); err == nil {
		t.Fatal("accepted zero frequency")
	}
	if _, err := NewCore(1, DefaultCostModel(), DefaultCacheConfig(), nil); err == nil {
		t.Fatal("accepted nil SDRAM")
	}
	if _, err := NewCore(1, DefaultCostModel(), CacheConfig{SizeBytes: 100, LineBytes: 24}, sd); err == nil {
		t.Fatal("accepted bad cache geometry")
	}
}
