// Package cpu provides a timed functional model of the Excalibur's ARM
// stripe (an ARM922T-class core at 133 MHz running Linux).
//
// The model is not an ISA interpreter: software kernels are written in Go
// against a Ctx whose operations both perform the computation on the
// simulated SDRAM and charge cycles according to a CostModel, through a
// direct-mapped write-back D-cache. This "host-compiled, timed functional"
// style is standard practice in system-level simulation; the Calibration section of
// docs/ARCHITECTURE.md documents how the cost model is calibrated against the paper's published
// pure-software execution times.
package cpu

import (
	"fmt"

	"repro/internal/mem"
)

// CostModel holds per-operation cycle costs for the core.
type CostModel struct {
	ALU         int64 // arithmetic/logic register op
	Mul         int64 // 32x32 multiply
	Div         int64 // software division/modulo (library call, ARM9 has no divider)
	BranchTaken int64 // taken branch (pipeline refill)
	BranchNot   int64 // not-taken branch
	LoadHit     int64 // load hitting the D-cache
	StoreHit    int64 // store hitting the D-cache
	Call        int64 // function call+return overhead (prologue/epilogue)
	MissPenalty int64 // D-cache line refill from SDRAM
	WBPenalty   int64 // dirty-line write-back to SDRAM
}

// DefaultCostModel returns the calibrated cost model described in
// docs/ARCHITECTURE.md (Calibration). The values are ARM9-class and tuned so the pure-software adpcmdecode
// and IDEA kernels land on the paper's published times (≈146 cycles/sample
// and ≈6.6k cycles/block at 133 MHz).
func DefaultCostModel() CostModel {
	return CostModel{
		ALU:         2, // -O0-style codegen keeps operands on the stack
		Mul:         7,
		Div:         120, // __aeabi_uidivmod library call incl. -O0 argument marshalling
		BranchTaken: 4,
		BranchNot:   2,
		LoadHit:     3,
		StoreHit:    2,
		Call:        12,
		MissPenalty: 40, // 8-word line from SDRAM incl. bus crossing
		WBPenalty:   24,
	}
}

// CacheConfig describes the direct-mapped write-back D-cache.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line size
}

// DefaultCacheConfig matches the ARM922T: 8 KB D-cache, 32-byte lines.
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{SizeBytes: 8 * 1024, LineBytes: 32}
}

// Core is the timed processor model.
type Core struct {
	FreqHz int64
	Cost   CostModel
	SDRAM  *mem.SDRAM

	cache  *dcache
	cycles int64

	// Statistics.
	Loads, Stores, Ops, Branches uint64
	Misses, Writebacks           uint64
}

// NewCore builds a core clocked at freqHz over the given SDRAM.
func NewCore(freqHz int64, cost CostModel, cc CacheConfig, sdram *mem.SDRAM) (*Core, error) {
	if freqHz <= 0 {
		return nil, fmt.Errorf("cpu: frequency %d must be positive", freqHz)
	}
	if sdram == nil {
		return nil, fmt.Errorf("cpu: nil SDRAM")
	}
	c, err := newDCache(cc)
	if err != nil {
		return nil, err
	}
	return &Core{FreqHz: freqHz, Cost: cost, SDRAM: sdram, cache: c}, nil
}

// Cycles returns the cycles consumed so far.
func (c *Core) Cycles() int64 { return c.cycles }

// AddCycles charges raw cycles (used by the kernel model for syscall entry
// costs and similar fixed overheads).
func (c *Core) AddCycles(n int64) { c.cycles += n }

// ResetStats zeroes counters and the cycle count but keeps cache contents.
func (c *Core) ResetStats() {
	c.cycles = 0
	c.Loads, c.Stores, c.Ops, c.Branches = 0, 0, 0, 0
	c.Misses, c.Writebacks = 0, 0
}

// InvalidateCache drops all cache lines without write-back (used between
// runs for cold-cache measurements).
func (c *Core) InvalidateCache() { c.cache.invalidate() }

// PsPerCycle returns the clock period in picoseconds (reporting only).
func (c *Core) PsPerCycle() float64 { return 1e12 / float64(c.FreqHz) }

// touch charges the cache/SDRAM cost of accessing addr.
func (c *Core) touch(addr uint32, write bool) {
	hit, wb := c.cache.access(addr, write)
	if !hit {
		c.Misses++
		c.cycles += c.Cost.MissPenalty
	}
	if wb {
		c.Writebacks++
		c.cycles += c.Cost.WBPenalty
	}
}

// Ctx is the execution context handed to software kernels. It is a thin
// view of the core; kernels use it for every memory access, arithmetic
// operation and branch so that timing is accounted faithfully.
type Ctx struct {
	core *Core
}

// NewCtx returns a context for the core.
func NewCtx(core *Core) *Ctx { return &Ctx{core: core} }

// Core returns the underlying core (for reports).
func (x *Ctx) Core() *Core { return x.core }

// Load8 reads a byte from SDRAM.
func (x *Ctx) Load8(addr uint32) byte {
	x.core.Loads++
	x.core.cycles += x.core.Cost.LoadHit
	x.core.touch(addr, false)
	b, err := x.core.SDRAM.Store().Byte(addr)
	if err != nil {
		panic(fmt.Sprintf("cpu: %v", err))
	}
	return b
}

// Load16 reads a little-endian halfword from SDRAM.
func (x *Ctx) Load16(addr uint32) uint16 {
	lo := uint16(x.Load8Silent(addr))
	hi := uint16(x.Load8Silent(addr + 1))
	x.core.Loads++
	x.core.cycles += x.core.Cost.LoadHit
	x.core.touch(addr, false)
	return lo | hi<<8
}

// Load8Silent reads a byte without charging (helper for multi-byte ops that
// charge once).
func (x *Ctx) Load8Silent(addr uint32) byte {
	b, err := x.core.SDRAM.Store().Byte(addr)
	if err != nil {
		panic(fmt.Sprintf("cpu: %v", err))
	}
	return b
}

// Load32 reads a little-endian word from SDRAM.
func (x *Ctx) Load32(addr uint32) uint32 {
	x.core.Loads++
	x.core.cycles += x.core.Cost.LoadHit
	x.core.touch(addr, false)
	v, err := x.core.SDRAM.Store().Read32(addr)
	if err != nil {
		panic(fmt.Sprintf("cpu: %v", err))
	}
	return v
}

// Store8 writes a byte to SDRAM.
func (x *Ctx) Store8(addr uint32, v byte) {
	x.core.Stores++
	x.core.cycles += x.core.Cost.StoreHit
	x.core.touch(addr, true)
	if err := x.core.SDRAM.Store().SetByte(addr, v); err != nil {
		panic(fmt.Sprintf("cpu: %v", err))
	}
}

// Store16 writes a little-endian halfword to SDRAM.
func (x *Ctx) Store16(addr uint32, v uint16) {
	x.core.Stores++
	x.core.cycles += x.core.Cost.StoreHit
	x.core.touch(addr, true)
	st := x.core.SDRAM.Store()
	if err := st.SetByte(addr, byte(v)); err != nil {
		panic(fmt.Sprintf("cpu: %v", err))
	}
	if err := st.SetByte(addr+1, byte(v>>8)); err != nil {
		panic(fmt.Sprintf("cpu: %v", err))
	}
}

// Store32 writes a little-endian word to SDRAM.
func (x *Ctx) Store32(addr uint32, v uint32) {
	x.core.Stores++
	x.core.cycles += x.core.Cost.StoreHit
	x.core.touch(addr, true)
	if err := x.core.SDRAM.Store().Write32(addr, v, 0xf); err != nil {
		panic(fmt.Sprintf("cpu: %v", err))
	}
}

// ALU charges n arithmetic/logic operations.
func (x *Ctx) ALU(n int) {
	x.core.Ops += uint64(n)
	x.core.cycles += int64(n) * x.core.Cost.ALU
}

// Mul charges one multiply.
func (x *Ctx) Mul() {
	x.core.Ops++
	x.core.cycles += x.core.Cost.Mul
}

// Div charges one division or modulo (software library call).
func (x *Ctx) Div() {
	x.core.Ops++
	x.core.cycles += x.core.Cost.Div
}

// Branch charges one conditional branch.
func (x *Ctx) Branch(taken bool) {
	x.core.Branches++
	if taken {
		x.core.cycles += x.core.Cost.BranchTaken
	} else {
		x.core.cycles += x.core.Cost.BranchNot
	}
}

// Call charges one function call/return pair.
func (x *Ctx) Call() { x.core.cycles += x.core.Cost.Call }
