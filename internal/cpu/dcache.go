package cpu

import "fmt"

// dcache is a direct-mapped, write-back, write-allocate data cache model.
// Only hit/miss/write-back behaviour is modelled; data always lives in the
// SDRAM byte store (the cache carries no contents).
type dcache struct {
	lineBytes int
	lines     int
	tags      []uint32
	valid     []bool
	dirty     []bool
}

func newDCache(cc CacheConfig) (*dcache, error) {
	if cc.SizeBytes <= 0 || cc.LineBytes <= 0 || cc.SizeBytes%cc.LineBytes != 0 {
		return nil, fmt.Errorf("cpu: cache size %d must be a positive multiple of line size %d",
			cc.SizeBytes, cc.LineBytes)
	}
	if cc.LineBytes&(cc.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cpu: cache line size %d must be a power of two", cc.LineBytes)
	}
	n := cc.SizeBytes / cc.LineBytes
	return &dcache{
		lineBytes: cc.LineBytes,
		lines:     n,
		tags:      make([]uint32, n),
		valid:     make([]bool, n),
		dirty:     make([]bool, n),
	}, nil
}

// access simulates one access: it returns whether it hit, and whether a
// dirty victim line had to be written back.
func (c *dcache) access(addr uint32, write bool) (hit, writeback bool) {
	line := addr / uint32(c.lineBytes)
	idx := int(line) % c.lines
	tag := line / uint32(c.lines)
	if c.valid[idx] && c.tags[idx] == tag {
		if write {
			c.dirty[idx] = true
		}
		return true, false
	}
	writeback = c.valid[idx] && c.dirty[idx]
	c.valid[idx] = true
	c.tags[idx] = tag
	c.dirty[idx] = write
	return false, writeback
}

func (c *dcache) invalidate() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
	}
}
