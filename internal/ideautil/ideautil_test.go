package ideautil

import (
	"testing"

	"repro/internal/ref"
	"repro/internal/vim"
)

func TestStreamsLayout(t *testing.T) {
	in := make([]byte, 64)
	s := Streams(in)
	if len(s) != 2 {
		t.Fatalf("streams = %d, want 2", len(s))
	}
	if s[0].Dir != vim.In || s[1].Dir != vim.Out {
		t.Fatal("stream directions wrong")
	}
	if s[0].ItemBytes != ref.IDEABlockBytes || s[1].ItemBytes != ref.IDEABlockBytes {
		t.Fatal("item size must be one cipher block")
	}
	if &s[0].Data[0] != &in[0] {
		t.Fatal("input stream must alias the caller's buffer")
	}
}

func TestParamsShape(t *testing.T) {
	var key ref.IDEAKey
	key[0] = 0x42
	p := Params(key)(100)
	if p[0] != 100 {
		t.Fatalf("param 0 = %d, want the item count", p[0])
	}
	if len(p) != 1+ref.IDEASubkeys/2 {
		t.Fatalf("params = %d words, want %d", len(p), 1+ref.IDEASubkeys/2)
	}
	// First subkey is the big-endian first key halfword.
	if uint16(p[1]) != 0x4200 {
		t.Fatalf("subkey 0 = %#x, want 0x4200", uint16(p[1]))
	}
}

func TestADPCMDescriptors(t *testing.T) {
	in := make([]byte, 16)
	s := ADPCMStreams(in)
	if s[0].ItemBytes != 1 || s[1].ItemBytes != 4 {
		t.Fatal("adpcm item sizes must be 1 byte in, 4 bytes out")
	}
	p := ADPCMParams()(7)
	if len(p) != 1 || p[0] != 7 {
		t.Fatalf("adpcm params = %v", p)
	}
}
