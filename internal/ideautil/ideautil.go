// Package ideautil provides the shared baseline-runner descriptors for the
// IDEA application (stream layout and parameter builder), used by the
// experiments and the benchmarks.
package ideautil

import (
	"repro/internal/baseline"
	"repro/internal/copro/ideacp"
	"repro/internal/ref"
	"repro/internal/vim"
)

// Streams returns the baseline stream layout for an IDEA run over in.
func Streams(in []byte) []*baseline.Stream {
	return []*baseline.Stream{
		{ID: ideacp.ObjIn, Dir: vim.In, ItemBytes: ref.IDEABlockBytes, Data: in},
		{ID: ideacp.ObjOut, Dir: vim.Out, ItemBytes: ref.IDEABlockBytes},
	}
}

// Params returns the per-chunk parameter builder (block count followed by
// the packed encryption subkeys).
func Params(key ref.IDEAKey) baseline.ParamsFunc {
	packed := ideacp.PackSubkeys(ref.ExpandIDEAKey(key))
	return func(items int) []uint32 {
		p := []uint32{uint32(items)}
		for _, w := range packed {
			p = append(p, w)
		}
		return p
	}
}

// ADPCMStreams returns the baseline stream layout for adpcmdecode over in
// (1 byte in, 4 bytes out per item).
func ADPCMStreams(in []byte) []*baseline.Stream {
	return []*baseline.Stream{
		{ID: 0, Dir: vim.In, ItemBytes: 1, Data: in},
		{ID: 1, Dir: vim.Out, ItemBytes: 4},
	}
}

// ADPCMParams returns the per-chunk parameter builder for adpcmdecode.
func ADPCMParams() baseline.ParamsFunc {
	return func(items int) []uint32 { return []uint32{uint32(items)} }
}
