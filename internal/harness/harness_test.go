package harness

import (
	"errors"
	"testing"

	"repro/internal/copro"
	"repro/internal/copro/vecadd"
	"repro/internal/imu"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Fatal("nil core accepted")
	}
	cfg := DefaultConfig()
	cfg.DPBytes = 1000 // not a multiple of the page size
	if _, err := New(cfg, vecadd.New()); err == nil {
		t.Fatal("bad DP geometry accepted")
	}
	cfg = DefaultConfig()
	cfg.CoproHz = 7_000_000 // non-integer ratio vs 40 MHz
	cfg.IMUHz = 40_000_000
	if _, err := New(cfg, vecadd.New()); err == nil {
		t.Fatal("non-integer clock ratio accepted")
	}
}

func TestSetParamsWritesFrameZeroAndMaps(t *testing.T) {
	b, err := New(DefaultConfig(), vecadd.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetParams(0x11, 0x22, 0x33); err != nil {
		t.Fatal(err)
	}
	w, _ := b.DP.ReadB(4)
	if w != 0x22 {
		t.Fatalf("param word 1 = %#x", w)
	}
	// One TLB entry must map the parameter object.
	found := false
	for i := 0; i < b.IMU.Entries(); i++ {
		e := b.IMU.Entry(i)
		if e.Valid && e.Obj == copro.ParamObj {
			found = true
		}
	}
	if !found {
		t.Fatal("parameter page not mapped")
	}
}

func TestRunFailsOnFault(t *testing.T) {
	b, err := New(DefaultConfig(), vecadd.New())
	if err != nil {
		t.Fatal(err)
	}
	// Params mapped but data objects absent: the first A-access faults
	// and the bench — having no OS — must turn it into an error.
	if err := b.SetParams(8); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(100000); !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
}

func TestMapPageExhaustion(t *testing.T) {
	b, err := New(DefaultConfig(), vecadd.New())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.IMU.Entries(); i++ {
		if err := b.MapPage(0, uint32(i), uint8(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.MapPage(1, 0, 0); err == nil {
		t.Fatal("TLB exhaustion not reported")
	}
}

func TestRunConsumesCycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = imu.MultiCycle
	core := vecadd.New()
	b, err := New(cfg, core)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetParams(0); err != nil { // zero elements: park at done
		t.Fatal(err)
	}
	cycles, err := b.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatal("no cycles consumed")
	}
	if b.PageSize() != 2048 {
		t.Fatalf("page size = %d", b.PageSize())
	}
}
