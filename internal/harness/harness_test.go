package harness

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/copro"
	"repro/internal/copro/adpcmdec"
	"repro/internal/copro/vecadd"
	"repro/internal/imu"
	"repro/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Fatal("nil core accepted")
	}
	cfg := DefaultConfig()
	cfg.DPBytes = 1000 // not a multiple of the page size
	if _, err := New(cfg, vecadd.New()); err == nil {
		t.Fatal("bad DP geometry accepted")
	}
	cfg = DefaultConfig()
	cfg.CoproHz = 7_000_000 // non-integer ratio vs 40 MHz
	cfg.IMUHz = 40_000_000
	if _, err := New(cfg, vecadd.New()); err == nil {
		t.Fatal("non-integer clock ratio accepted")
	}
}

func TestSetParamsWritesFrameZeroAndMaps(t *testing.T) {
	b, err := New(DefaultConfig(), vecadd.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetParams(0x11, 0x22, 0x33); err != nil {
		t.Fatal(err)
	}
	w, _ := b.DP.ReadB(4)
	if w != 0x22 {
		t.Fatalf("param word 1 = %#x", w)
	}
	// One TLB entry must map the parameter object.
	found := false
	for i := 0; i < b.IMU.Entries(); i++ {
		e := b.IMU.Entry(i)
		if e.Valid && e.Obj == copro.ParamObj {
			found = true
		}
	}
	if !found {
		t.Fatal("parameter page not mapped")
	}
}

func TestRunFailsOnFault(t *testing.T) {
	b, err := New(DefaultConfig(), vecadd.New())
	if err != nil {
		t.Fatal(err)
	}
	// Params mapped but data objects absent: the first A-access faults
	// and the bench — having no OS — must turn it into an error.
	if err := b.SetParams(8); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(100000); !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
}

func TestMapPageExhaustion(t *testing.T) {
	b, err := New(DefaultConfig(), vecadd.New())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.IMU.Entries(); i++ {
		if err := b.MapPage(0, uint32(i), uint8(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.MapPage(1, 0, 0); err == nil {
		t.Fatal("TLB exhaustion not reported")
	}
}

// TestSchedulerDifferentialBench runs the same adpcmdecode testbench —
// statically mapped, no OS — under the lockstep reference and the
// event-driven scheduler (whose bulk-skip jumps the core's serial decode
// countdowns) and requires identical cycle counts, outputs and port
// statistics.
func TestSchedulerDifferentialBench(t *testing.T) {
	const nbytes = 64
	run := func(sched sim.Scheduler) (int64, []byte, uint64, uint64) {
		cfg := DefaultConfig()
		cfg.Sched = sched
		core := adpcmdec.New()
		b, err := New(cfg, core)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]byte, nbytes)
		for i := range in {
			in[i] = byte(i*37 + 11)
		}
		if err := b.LoadFrame(1, in); err != nil {
			t.Fatal(err)
		}
		if err := b.SetParams(nbytes); err != nil {
			t.Fatal(err)
		}
		if err := b.MapPage(adpcmdec.ObjIn, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.MapPage(adpcmdec.ObjOut, 0, 2); err != nil {
			t.Fatal(err)
		}
		cycles, err := b.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		out, err := b.ReadFrame(2)
		if err != nil {
			t.Fatal(err)
		}
		m := core.Mem()
		return cycles, out[:nbytes*4], m.Reads + m.Writes, m.WaitCycles
	}
	lockCy, lockOut, lockAcc, lockWait := run(sim.Lockstep)
	evntCy, evntOut, evntAcc, evntWait := run(sim.EventDriven)
	if lockCy != evntCy {
		t.Errorf("cycles: lockstep %d, event %d", lockCy, evntCy)
	}
	if lockAcc != evntAcc || lockWait != evntWait {
		t.Errorf("port stats: lockstep %d/%d, event %d/%d", lockAcc, lockWait, evntAcc, evntWait)
	}
	for i := 0; i < len(lockOut); i += 2 {
		if binary.LittleEndian.Uint16(lockOut[i:]) != binary.LittleEndian.Uint16(evntOut[i:]) {
			t.Fatalf("sample %d: lockstep %#x, event %#x", i/2,
				binary.LittleEndian.Uint16(lockOut[i:]), binary.LittleEndian.Uint16(evntOut[i:]))
		}
	}
}

func TestRunConsumesCycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = imu.MultiCycle
	core := vecadd.New()
	b, err := New(cfg, core)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetParams(0); err != nil { // zero elements: park at done
		t.Fatal(err)
	}
	cycles, err := b.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Fatal("no cycles consumed")
	}
	if b.PageSize() != 2048 {
		t.Fatalf("page size = %d", b.PageSize())
	}
}
