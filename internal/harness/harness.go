// Package harness wires a coprocessor, an IMU and a dual-port RAM into a
// runnable hardware testbench without any operating-system involvement: the
// TLB and the memory frames are preloaded by the caller and the run fails
// on any translation fault.
//
// It serves two purposes: unit-level verification of coprocessor models
// against the golden algorithms, and the "typical coprocessor" baseline of
// the paper's Figure 3/Figure 9, where the application manages the physical
// memory by hand and no interface virtualisation takes place.
package harness

import (
	"errors"
	"fmt"

	"repro/internal/copro"
	"repro/internal/imu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// ErrFault is returned when the coprocessor faults although the caller
// promised a complete static mapping.
var ErrFault = errors.New("harness: unexpected translation fault")

// Config describes the bench geometry.
type Config struct {
	CoproHz int64
	IMUHz   int64
	DPBytes int
	PageLog uint // log2 page size
	Mode    imu.Mode
	// Sched selects the simulation scheduler; the zero value
	// (sim.SchedulerDefault) resolves to the package default, the
	// event-driven engine. Differential benches pass sim.Lockstep to run
	// the identical testbench under the reference scheduler.
	Sched sim.Scheduler
}

// DefaultConfig matches the EPXA1 running the vecadd/adpcm clock plan.
func DefaultConfig() Config {
	return Config{
		CoproHz: 40_000_000,
		IMUHz:   40_000_000,
		DPBytes: 16 * 1024,
		PageLog: 11,
		Mode:    imu.MultiCycle,
	}
}

// Bench is an assembled hardware testbench.
type Bench struct {
	Eng      *sim.Engine
	CoproDom *sim.Domain
	IMUDom   *sim.Domain
	DP       *mem.DPRAM
	IMU      *imu.IMU
	Port     *copro.Port
	Core     copro.Coprocessor

	pageSize int
}

// New assembles a bench around the given core.
func New(cfg Config, core copro.Coprocessor) (*Bench, error) {
	if core == nil {
		return nil, fmt.Errorf("harness: nil core")
	}
	dp, err := mem.NewDPRAM(cfg.DPBytes, 1<<cfg.PageLog)
	if err != nil {
		return nil, err
	}
	u, err := imu.New(imu.Config{PageShift: cfg.PageLog, Entries: dp.Pages(), Mode: cfg.Mode}, dp)
	if err != nil {
		return nil, err
	}
	port := copro.NewPort()
	u.Bind(port)
	core.Bind(port)
	core.ResetCore()

	eng := sim.NewEngine()
	eng.SetScheduler(cfg.Sched)
	imuDom := eng.NewDomain("imu", cfg.IMUHz)
	var coproDom *sim.Domain
	if cfg.CoproHz == cfg.IMUHz {
		coproDom = imuDom
	} else {
		coproDom = eng.NewDomain("copro", cfg.CoproHz)
	}
	// Attach the core before the IMU within a shared domain so that the
	// deterministic order is fixed; two-phase semantics make the order
	// observationally irrelevant, but determinism aids debugging.
	coproDom.Attach(core)
	imuDom.Attach(u)
	if err := eng.Validate(); err != nil {
		return nil, err
	}
	return &Bench{
		Eng:      eng,
		CoproDom: coproDom,
		IMUDom:   imuDom,
		DP:       dp,
		IMU:      u,
		Port:     port,
		Core:     core,
		pageSize: dp.PageSize(),
	}, nil
}

// MapPage installs a static TLB mapping.
func (b *Bench) MapPage(obj uint8, vpage uint32, frame uint8) error {
	for i := 0; i < b.IMU.Entries(); i++ {
		if !b.IMU.Entry(i).Valid {
			return b.IMU.SetEntry(i, imu.TLBEntry{Valid: true, Obj: obj, VPage: vpage, Frame: frame})
		}
	}
	return fmt.Errorf("harness: TLB full mapping obj %d page %d", obj, vpage)
}

// LoadFrame fills page frame f with data (port B, as the CPU would).
func (b *Bench) LoadFrame(f int, data []byte) error { return b.DP.WritePage(f, data) }

// ReadFrame returns the contents of page frame f.
func (b *Bench) ReadFrame(f int) ([]byte, error) { return b.DP.ReadPage(f) }

// SetParams writes the scalar parameter words into frame 0 and maps the
// parameter page, following the §3.2 convention.
func (b *Bench) SetParams(words ...uint32) error {
	for i, w := range words {
		if err := b.DP.WriteB(uint32(i*4), w, 0xf); err != nil {
			return err
		}
	}
	return b.MapPage(copro.ParamObj, 0, 0)
}

// Run starts the coprocessor and simulates until completion. It returns the
// number of IMU cycles consumed. Any translation fault aborts with ErrFault
// (this bench has no OS to service it).
func (b *Bench) Run(maxEdges int64) (int64, error) {
	b.IMU.Start()
	start := b.IMUDom.Cycles()
	_, err := b.Eng.RunUntil(func() bool {
		return b.IMU.DonePending() || b.IMU.FaultPending()
	}, maxEdges)
	if err != nil {
		return b.IMUDom.Cycles() - start, err
	}
	if b.IMU.FaultPending() {
		return b.IMUDom.Cycles() - start, fmt.Errorf("%w: obj %d addr %#x",
			ErrFault, b.IMU.FaultObj(), b.IMU.FaultAddr())
	}
	b.IMU.AckDone()
	b.Eng.RunCycles(b.IMUDom, 4) // let the ack propagate and the core reset
	return b.IMUDom.Cycles() - start, nil
}

// PageSize returns the configured page size in bytes.
func (b *Bench) PageSize() int { return b.pageSize }
