package kernel

import (
	"testing"

	"repro/internal/amba"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/stats"
)

func testKernel(t *testing.T) *Kernel {
	t.Helper()
	sd := mem.NewSDRAM(1<<20, mem.DefaultSDRAMTiming())
	core, err := cpu.NewCore(133_000_000, cpu.DefaultCostModel(), cpu.DefaultCacheConfig(), sd)
	if err != nil {
		t.Fatal(err)
	}
	bus := amba.NewBus()
	if err := bus.Map(0, uint32(sd.Size()), &amba.SDRAMSlave{RAM: sd}); err != nil {
		t.Fatal(err)
	}
	k, err := New(core, bus, DefaultCosts(), 2, 0x1000, uint32(sd.Size()))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestNewValidation(t *testing.T) {
	sd := mem.NewSDRAM(1<<16, mem.DefaultSDRAMTiming())
	core, _ := cpu.NewCore(1000, cpu.DefaultCostModel(), cpu.DefaultCacheConfig(), sd)
	bus := amba.NewBus()
	if _, err := New(nil, bus, DefaultCosts(), 1, 0, 100); err == nil {
		t.Fatal("nil CPU accepted")
	}
	if _, err := New(core, nil, DefaultCosts(), 1, 0, 100); err == nil {
		t.Fatal("nil bus accepted")
	}
	if _, err := New(core, bus, DefaultCosts(), 0, 0, 100); err == nil {
		t.Fatal("zero bus divisor accepted")
	}
	if _, err := New(core, bus, DefaultCosts(), 1, 100, 100); err == nil {
		t.Fatal("empty user region accepted")
	}
}

func TestAllocBumpsAndAligns(t *testing.T) {
	k := testKernel(t)
	a, err := k.Alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	if a%8 != 0 || b%8 != 0 {
		t.Fatalf("allocations not 8-byte aligned: %#x %#x", a, b)
	}
	if b-a < 8 {
		t.Fatalf("allocation overlap: %#x then %#x", a, b)
	}
	if _, err := k.Alloc(0); err == nil {
		t.Fatal("zero-byte alloc accepted")
	}
	if _, err := k.Alloc(1 << 30); err == nil {
		t.Fatal("oversized alloc accepted")
	}
}

func TestChargesLandInComponents(t *testing.T) {
	k := testKernel(t)
	k.ChargeSyscall()
	if k.TL.Ps(stats.SWOS) <= 0 {
		t.Fatal("syscall charge missing")
	}
	before := k.TL.Ps(stats.SWIMU)
	k.ChargeIRQ(stats.SWIMU)
	if k.TL.Ps(stats.SWIMU) <= before {
		t.Fatal("IRQ charge missing")
	}
	if k.CPU.Cycles() == 0 {
		t.Fatal("CPU cycles not advanced")
	}
}

func TestBusOpsChargeTimeAndWork(t *testing.T) {
	k := testKernel(t)
	if err := k.BusWrite32(stats.SWIMU, 0x2000, 0xfeed); err != nil {
		t.Fatal(err)
	}
	v, err := k.BusRead32(stats.SWIMU, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xfeed {
		t.Fatalf("read back %#x", v)
	}
	if k.TL.Ps(stats.SWIMU) <= 0 {
		t.Fatal("bus ops did not charge SWIMU")
	}
	// Bus cycles multiply by the divisor into CPU cycles.
	cy := k.CPU.Cycles()
	if cy < k.Bus.Cycles*k.BusDiv {
		t.Fatalf("CPU cycles %d < bus %d x div %d", cy, k.Bus.Cycles, k.BusDiv)
	}
}

func TestBusCopyMovesBytes(t *testing.T) {
	k := testKernel(t)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := k.WriteUser(0x3000, data); err != nil {
		t.Fatal(err)
	}
	if err := k.BusCopy(stats.SWDP, 0x4000, 0x3000, len(data)); err != nil {
		t.Fatal(err)
	}
	got, err := k.ReadUser(0x4000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], data[i])
		}
	}
	if k.TL.Ps(stats.SWDP) <= 0 {
		t.Fatal("copy did not charge SWDP")
	}
	// Zero-length copies are free.
	before := k.TL.Ps(stats.SWDP)
	if err := k.BusCopy(stats.SWDP, 0x4000, 0x3000, 0); err != nil {
		t.Fatal(err)
	}
	if k.TL.Ps(stats.SWDP) != before {
		t.Fatal("zero-length copy charged time")
	}
}

func TestProcessIdentity(t *testing.T) {
	k := testKernel(t)
	p1 := k.NewProcess("a")
	p2 := k.NewProcess("b")
	if p1.PID == p2.PID {
		t.Fatal("duplicate PIDs")
	}
	if p1.Kernel() != k {
		t.Fatal("process lost its kernel")
	}
	if _, err := p1.Alloc(64); err != nil {
		t.Fatal(err)
	}
}
