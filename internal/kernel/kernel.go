// Package kernel models the operating-system substrate the paper's Virtual
// Interface Manager plugs into: processes with user-space memory in SDRAM,
// system-call and interrupt entry costs, and timed data movement over the
// AHB (the copy_to_user / copy_from_user path of the Linux module).
//
// The model is deliberately small — the paper's contribution is the VIM,
// not the kernel — but every interaction the VIM has with the world goes
// through here so that each one lands in the right execution-time bucket.
package kernel

import (
	"fmt"

	"repro/internal/amba"
	"repro/internal/cpu"
	"repro/internal/stats"
)

// Costs carries the fixed CPU-cycle costs of kernel entry points,
// ARM-Linux-era magnitudes.
type Costs struct {
	SyscallEntry int64 // user->kernel transition
	SyscallExit  int64
	IRQEntry     int64 // interrupt entry, context stash
	IRQExit      int64
	WakeProcess  int64 // waking the sleeping caller after completion
	PageSetup    int64 // per-page bookkeeping in the fault path
}

// DefaultCosts returns the calibrated kernel costs.
func DefaultCosts() Costs {
	return Costs{
		SyscallEntry: 600,
		SyscallExit:  400,
		IRQEntry:     350,
		IRQExit:      250,
		WakeProcess:  900,
		PageSetup:    450,
	}
}

// Kernel is the OS model. BusDiv is the CPU-to-AHB clock ratio: bus cycles
// are charged to the CPU timeline multiplied by this factor.
type Kernel struct {
	CPU    *cpu.Core
	Bus    *amba.Bus
	Costs  Costs
	BusDiv int64

	TL *stats.Timeline

	nextBase uint32
	limit    uint32
	procs    int
}

// New builds a kernel over the CPU and bus. userBase/userLimit bound the
// SDRAM region handed out to processes.
func New(core *cpu.Core, bus *amba.Bus, costs Costs, busDiv int64, userBase, userLimit uint32) (*Kernel, error) {
	if core == nil || bus == nil {
		return nil, fmt.Errorf("kernel: nil CPU or bus")
	}
	if busDiv <= 0 {
		return nil, fmt.Errorf("kernel: bus divisor %d must be positive", busDiv)
	}
	if userLimit <= userBase {
		return nil, fmt.Errorf("kernel: empty user region [%#x,%#x)", userBase, userLimit)
	}
	return &Kernel{
		CPU:      core,
		Bus:      bus,
		Costs:    costs,
		BusDiv:   busDiv,
		TL:       &stats.Timeline{},
		nextBase: userBase,
		limit:    userLimit,
	}, nil
}

// chargeCPU books n CPU cycles into component c.
func (k *Kernel) chargeCPU(c stats.Component, n int64) {
	k.CPU.AddCycles(n)
	k.TL.AddCycles(c, n, k.CPU.FreqHz)
}

// ChargeCPU books raw CPU cycles into a component (exported for the VIM and
// the session orchestrator).
func (k *Kernel) ChargeCPU(c stats.Component, n int64) { k.chargeCPU(c, n) }

// ChargeSyscall books one system-call entry/exit pair.
func (k *Kernel) ChargeSyscall() {
	k.chargeCPU(stats.SWOS, k.Costs.SyscallEntry+k.Costs.SyscallExit)
}

// ChargeIRQ books one interrupt entry/exit pair into component c (faults
// are IMU management; completion wake-up is OS overhead).
func (k *Kernel) ChargeIRQ(c stats.Component) {
	k.chargeCPU(c, k.Costs.IRQEntry+k.Costs.IRQExit)
}

// BusRead32 performs a timed register/memory read over the AHB, charging
// component c.
func (k *Kernel) BusRead32(c stats.Component, addr uint32) (uint32, error) {
	before := k.Bus.Cycles
	v, err := k.Bus.Read32(addr)
	k.chargeCPU(c, (k.Bus.Cycles-before)*k.BusDiv)
	return v, err
}

// BusWrite32 performs a timed register/memory write over the AHB.
func (k *Kernel) BusWrite32(c stats.Component, addr, v uint32) error {
	before := k.Bus.Cycles
	err := k.Bus.Write32(addr, v)
	k.chargeCPU(c, (k.Bus.Cycles-before)*k.BusDiv)
	return err
}

// BusCopy performs a timed block copy (word-aligned) over the AHB with
// 8-beat bursts, charging component c.
func (k *Kernel) BusCopy(c stats.Component, dst, src uint32, n int) error {
	if n == 0 {
		return nil
	}
	cycles, err := k.Bus.Copy(dst, src, n, 8)
	k.chargeCPU(c, cycles*k.BusDiv)
	return err
}

// Process is a user process with a bump-allocated SDRAM arena.
type Process struct {
	k    *Kernel
	Name string
	PID  int
}

// NewProcess creates a process.
func (k *Kernel) NewProcess(name string) *Process {
	k.procs++
	return &Process{k: k, Name: name, PID: k.procs}
}

// Alloc reserves n bytes of user memory (8-byte aligned, padded to a word
// multiple so page copies stay word-aligned) and returns its address.
func (k *Kernel) Alloc(n int) (uint32, error) {
	if n <= 0 {
		return 0, fmt.Errorf("kernel: alloc of %d bytes", n)
	}
	size := uint32(n+7) &^ 7
	if k.nextBase+size > k.limit || k.nextBase+size < k.nextBase {
		return 0, fmt.Errorf("kernel: out of user memory (%d bytes requested)", n)
	}
	addr := k.nextBase
	k.nextBase += size
	return addr, nil
}

// Alloc reserves user memory in the process's address space.
func (p *Process) Alloc(n int) (uint32, error) { return p.k.Alloc(n) }

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.k }

// WriteUser populates user memory functionally (test/application setup;
// not timed — it models data that already exists in the process image).
func (k *Kernel) WriteUser(addr uint32, data []byte) error {
	return k.CPU.SDRAM.Store().WriteBytes(addr, data)
}

// ReadUser retrieves user memory functionally.
func (k *Kernel) ReadUser(addr uint32, n int) ([]byte, error) {
	return k.CPU.SDRAM.Store().ReadBytes(addr, n)
}
