package core

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/copro"
	"repro/internal/imu"
	"repro/internal/kernel"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vim"
)

// Member is one tenant of a Gang: a loaded coprocessor with its VIM
// session, its process, and its scalar parameters for the next ExecuteAll
// (or, in shell mode, the next Launch).
type Member struct {
	Sess   *vim.Session
	Proc   *kernel.Process
	Params []uint32

	header bitstream.Header
	core   copro.Coprocessor
	coreHz int64
	imuHz  int64

	done   bool
	donePs float64
	swDP   float64
	swIMU  float64
	swOS   float64
}

// App returns the member's coprocessor name (its bitstream identity).
func (mb *Member) App() string { return mb.header.Core }

// Done reports whether the member's coprocessor has completed and been
// flushed.
func (mb *Member) Done() bool { return mb.done }

// DonePs is the hardware-timeline instant of the member's completion.
func (mb *Member) DonePs() float64 { return mb.donePs }

// SW returns the member's attributed slices of the software components
// (dual-port management, IMU management, OS overhead), in picoseconds.
func (mb *Member) SW() (dp, imu, os float64) { return mb.swDP, mb.swIMU, mb.swOS }

// Gang runs several coprocessor sessions concurrently behind one Virtual
// Interface Manager on one board — the multi-tenant shape of the sessions
// layer. Members are added while the gang is unassembled; Assemble builds
// the shared multi-channel hardware; ExecuteAll launches every member and
// services their faults and completions until the last one finishes.
//
// A gang built with NewShellGang instead runs in shell mode: the hardware is
// a fixed set of reconfigurable slots (platform.ShellHW) and members attach
// and detach at runtime — AttachMember loads a coprocessor into a slot and
// admits its session while other members keep executing, Launch starts it,
// ServicePending services whatever faults and completions are pending, and
// DetachMember reclaims the finished member's resources. The rcsched
// scheduler drives this loop under a multi-user job stream.
type Gang struct {
	Board   *platform.Board
	M       *vim.Manager
	HW      *platform.MultiHW
	Shell   *platform.ShellHW
	Members []*Member

	// bySlot is the shell-mode roster: the member currently occupying each
	// slot (nil when the slot is free or reconfiguring).
	bySlot []*Member

	budget int64
}

// NewGang creates an empty gang over board with the given inter-session
// arbitration policy.
func NewGang(board *platform.Board, arb vim.Arbitration) (*Gang, error) {
	m, err := vim.NewManager(board.Kern, board.IMU, platform.DPBase, platform.IMURegBase,
		board.DP.PageSize(), arb)
	if err != nil {
		return nil, err
	}
	return &Gang{Board: board, M: m, budget: DefaultBudget}, nil
}

// SetBudget overrides the per-ExecuteAll simulation budget.
func (g *Gang) SetBudget(edges int64) { g.budget = edges }

// AddMember validates the bit-stream, instantiates the coprocessor model,
// and carves nframes of the page pool into the new member's home
// partition. coreHz/imuHz override the bitstream clock plan when non-zero:
// a shared shell fixes one IMU clock for every tenant, so cores whose
// native clocks do not divide it are recompiled against one that does.
// Call before Assemble.
func (g *Gang) AddMember(img []byte, nframes int, cfg vim.Config, coreHz, imuHz int64) (*Member, error) {
	if g.HW != nil {
		return nil, fmt.Errorf("core: gang already assembled")
	}
	h, inst, err := bitstream.Instantiate(img, g.Board.Spec.Name)
	if err != nil {
		return nil, err
	}
	cp, ok := inst.(copro.Coprocessor)
	if !ok {
		return nil, fmt.Errorf("core: bitstream %q produced a %T, not a coprocessor", h.Core, inst)
	}
	sess, err := g.M.AddSession(cfg, nframes)
	if err != nil {
		return nil, err
	}
	if coreHz == 0 {
		coreHz = h.CoreClock
	}
	if imuHz == 0 {
		imuHz = h.IMUClock
	}
	mb := &Member{
		Sess:   sess,
		Proc:   g.Board.Kern.NewProcess(h.Core),
		header: h,
		core:   cp,
		coreHz: coreHz,
		imuHz:  imuHz,
	}
	g.Members = append(g.Members, mb)
	return mb, nil
}

// Assemble builds the shared multi-channel hardware: one engine, the
// board's IMU with one channel per member, and one clock domain per core.
// The shell's IMU clock is the fastest IMU clock any member requested.
func (g *Gang) Assemble() error {
	if len(g.Members) == 0 {
		return fmt.Errorf("core: gang has no members")
	}
	imuHz := int64(0)
	slots := make([]platform.CoproSlot, len(g.Members))
	for i, mb := range g.Members {
		if mb.imuHz > imuHz {
			imuHz = mb.imuHz
		}
		slots[i] = platform.CoproSlot{Core: mb.core, CoreHz: mb.coreHz}
	}
	hw, err := g.Board.AssembleMulti(imuHz, slots)
	if err != nil {
		return err
	}
	g.HW = hw
	return nil
}

// SessionReport is one member's share of a gang execution.
type SessionReport struct {
	App    string
	Policy string

	// The member's slices of the software components, in picoseconds.
	SWDPPs  float64
	SWIMUPs float64
	SWOSPs  float64

	// DonePs is the hardware-timeline instant at which the member's
	// coprocessor signalled completion.
	DonePs float64

	VIM vim.Counters // the member session's counters
	IMU imu.Counters // the member channel's counters
}

// MultiReport aggregates one gang execution: the shared hardware timeline
// plus one SessionReport per member.
type MultiReport struct {
	Board   string
	Arb     string
	IMUMode string

	HWPs    float64
	SWDPPs  float64
	SWIMUPs float64
	SWOSPs  float64
	HWCy    int64 // IMU-domain cycles consumed

	VIM vim.Counters // aggregate across sessions
	IMU imu.Counters // aggregate across channels

	Sessions []SessionReport
}

// TotalPs is the end-to-end execution time of the gang run (last member
// in, all fault service included).
func (r *MultiReport) TotalPs() float64 {
	return r.HWPs + r.SWDPPs + r.SWIMUPs + r.SWOSPs
}

// TotalMs is TotalPs in milliseconds.
func (r *MultiReport) TotalMs() float64 { return r.TotalPs() / 1e9 }

// Report flattens the gang run into the single-run Report shape (golden
// cells, report printers); App and Policy describe the gang as a whole.
func (r *MultiReport) Report() *Report {
	apps := ""
	for i, s := range r.Sessions {
		if i > 0 {
			apps += "+"
		}
		apps += s.App
	}
	return &Report{
		App:     apps,
		Board:   r.Board,
		Policy:  r.Arb,
		IMUMode: r.IMUMode,
		HWPs:    r.HWPs,
		SWDPPs:  r.SWDPPs,
		SWIMUPs: r.SWIMUPs,
		SWOSPs:  r.SWOSPs,
		VIM:     r.VIM,
		IMU:     r.IMU,
		HWCy:    r.HWCy,
	}
}

// servicePass checks every roster member once for a pending completion or
// translation fault on its channel and services it: a completion triggers
// the session's end-of-operation flush and the acknowledge, a fault the
// demand-paging service. It reports whether anything was serviced and which
// members finished this pass. The roster order is the deterministic service
// order; nil entries (free shell slots) are skipped.
func (g *Gang) servicePass(roster []*Member, eng *sim.Engine) (serviced bool, finished []*Member, err error) {
	for _, mb := range roster {
		if mb == nil || mb.done {
			continue
		}
		ch := mb.Sess.ID()
		if g.Board.IMU.DonePendingCh(ch) {
			sw := g.swSnap()
			if err := mb.Sess.Finish(); err != nil {
				return false, nil, err
			}
			mb.addSW(g.swSnap(), sw)
			g.Board.IMU.AckDoneCh(ch)
			mb.done = true
			mb.donePs = eng.NowPs()
			finished = append(finished, mb)
			serviced = true
			continue
		}
		if g.Board.IMU.FaultPendingCh(ch) {
			sw := g.swSnap()
			if err := mb.Sess.HandleFault(); err != nil {
				return false, nil, fmt.Errorf("core: session %d (%s): %w", ch, mb.header.Core, err)
			}
			mb.addSW(g.swSnap(), sw)
			serviced = true
		}
	}
	return serviced, finished, nil
}

// swSnap samples the three software components of the shared timeline so
// per-member deltas can be attributed around each service call.
func (g *Gang) swSnap() [3]float64 {
	tl := g.Board.Kern.TL
	return [3]float64{tl.Ps(stats.SWDP), tl.Ps(stats.SWIMU), tl.Ps(stats.SWOS)}
}

func (mb *Member) addSW(after, before [3]float64) {
	mb.swDP += after[0] - before[0]
	mb.swIMU += after[1] - before[1]
	mb.swOS += after[2] - before[2]
}

// ExecuteAll implements FPGA_EXECUTE for every member at once: parameter
// passing and initial mapping per session, concurrent launch, interruptible
// sleep with per-channel fault service, and per-session end-of-operation
// flush as each coprocessor completes. It returns when the last member is
// done.
//
// Modelling note: the engine pauses while the OS services any channel, so
// a fault on one session also stalls the others for the service duration —
// the single-CPU system is serialised through the kernel exactly like the
// real module, but hardware that could have kept running in parallel with
// the CPU is not modelled (documented in docs/ARCHITECTURE.md).
func (g *Gang) ExecuteAll() (*MultiReport, error) {
	if g.HW == nil {
		return nil, fmt.Errorf("core: ExecuteAll before Assemble")
	}
	k := g.Board.Kern
	tl := k.TL
	tl.Reset()
	g.M.ResetCounters()
	g.Board.IMU.ResetCounters()
	for _, mb := range g.Members {
		mb.done = false
		mb.donePs = 0
		mb.swDP, mb.swIMU, mb.swOS = 0, 0, 0
	}

	// Launch: per-session syscall, parameter page, initial mapping, start.
	for i, mb := range g.Members {
		k.ChargeSyscall()
		before := g.swSnap()
		if err := mb.Sess.PrepareExecute(mb.Params); err != nil {
			return nil, err
		}
		mb.addSW(g.swSnap(), before)
		g.Board.IMU.StartCh(i)
	}

	eng := g.HW.Eng
	imuDom := g.HW.IMUDom
	startCy := imuDom.Cycles()
	hwPs := 0.0
	budget := g.budget
	irq := g.Board.IMU.IRQRef()
	remaining := len(g.Members)
	for remaining > 0 {
		before := eng.NowPs()
		n, err := eng.RunUntilFlag(irq, budget)
		hwPs += eng.NowPs() - before
		budget -= n
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBudget, err)
		}
		serviced, finished, err := g.servicePass(g.Members, eng)
		if err != nil {
			return nil, err
		}
		remaining -= len(finished)
		if !serviced {
			return nil, fmt.Errorf("core: IRQ with no serviceable channel (SR0=%#x)", g.Board.IMU.SR())
		}
		// Let restarts and acks propagate before re-checking the IRQ line
		// (requests are consumed at the next edge).
		before = eng.NowPs()
		eng.Step()
		eng.Step()
		hwPs += eng.NowPs() - before
		budget -= 2
	}
	// Drain until every core has observed CP_START falling and dropped
	// CP_FIN, so a later ExecuteAll starts clean even with slow core
	// clock domains.
	before := eng.NowPs()
	if _, err := eng.RunUntil(func() bool {
		if g.Board.IMU.IRQ() {
			return false
		}
		for _, p := range g.HW.Ports {
			if p.CP().Fin {
				return false
			}
		}
		return true
	}, 256*int64(len(g.Members))); err != nil {
		return nil, fmt.Errorf("core: completion handshake did not drain: %v", err)
	}
	hwPs += eng.NowPs() - before
	tl.Add(stats.HW, hwPs)

	rep := &MultiReport{
		Board:   g.Board.Spec.Name,
		Arb:     g.M.Arbitration().String(),
		IMUMode: g.Board.IMU.Config().Mode.String(),
		HWPs:    tl.Ps(stats.HW),
		SWDPPs:  tl.Ps(stats.SWDP),
		SWIMUPs: tl.Ps(stats.SWIMU),
		SWOSPs:  tl.Ps(stats.SWOS),
		HWCy:    imuDom.Cycles() - startCy,
		VIM:     g.M.Count,
		IMU:     g.Board.IMU.Count,
	}
	for i, mb := range g.Members {
		rep.Sessions = append(rep.Sessions, SessionReport{
			App:     mb.header.Core,
			Policy:  mb.Sess.Config().Policy.Name(),
			SWDPPs:  mb.swDP,
			SWIMUPs: mb.swIMU,
			SWOSPs:  mb.swOS,
			DonePs:  mb.donePs,
			VIM:     mb.Sess.Count,
			IMU:     g.Board.IMU.ChCounters(i),
		})
	}
	return rep, nil
}

// --- Shell mode: dynamic attach/detach under a live engine ---------------

// NewShellGang builds a gang in shell mode: an nslots-slot reconfigurable
// shell clocked at shellHz whose members attach and detach at runtime. The
// returned gang has no members; drive it with AttachMember / Launch /
// ServicePending / DetachMember.
func NewShellGang(board *platform.Board, arb vim.Arbitration, shellHz int64, nslots int) (*Gang, error) {
	shell, err := board.AssembleShell(shellHz, nslots)
	if err != nil {
		return nil, err
	}
	m, err := vim.NewManager(board.Kern, board.IMU, platform.DPBase, platform.IMURegBase,
		board.DP.PageSize(), arb)
	if err != nil {
		return nil, err
	}
	return &Gang{
		Board:  board,
		M:      m,
		Shell:  shell,
		bySlot: make([]*Member, nslots),
		budget: DefaultBudget,
	}, nil
}

// Slots returns the shell slot count (0 for a static gang).
func (g *Gang) Slots() int { return len(g.bySlot) }

// SlotMember returns the member currently occupying slot i, or nil.
func (g *Gang) SlotMember(i int) *Member { return g.bySlot[i] }

// AttachMember admits a new member into shell slot i while the rest of the
// gang keeps executing: the bit-stream is validated against the board, the
// coprocessor is placed into the slot — reusing the resident core when its
// identity already matches (the zero-cost path bitstream-affinity scheduling
// exploits; the caller models reconfiguration time otherwise, having emptied
// the slot with BeginReconfig first) — and a fresh VIM session is attached
// on the slot's IMU channel with an nframes home partition. The member is
// not started; call Launch.
func (g *Gang) AttachMember(slot int, img []byte, nframes int, cfg vim.Config) (*Member, error) {
	if g.Shell == nil {
		return nil, fmt.Errorf("core: AttachMember on a non-shell gang")
	}
	if slot < 0 || slot >= len(g.bySlot) {
		return nil, fmt.Errorf("core: slot %d out of range [0,%d)", slot, len(g.bySlot))
	}
	if g.bySlot[slot] != nil {
		return nil, fmt.Errorf("core: slot %d already occupied by %q", slot, g.bySlot[slot].App())
	}
	h, err := bitstream.Parse(img)
	if err != nil {
		return nil, err
	}
	sl := g.Shell.Slots[slot]
	var cp copro.Coprocessor
	if sl.Resident() == h.Core {
		// Bitstream affinity: the requested core is already configured into
		// the slot, so no configuration data moves — reset and rebind it.
		cp = sl.Core()
	} else {
		_, inst, err := bitstream.Instantiate(img, g.Board.Spec.Name)
		if err != nil {
			return nil, err
		}
		var ok bool
		if cp, ok = inst.(copro.Coprocessor); !ok {
			return nil, fmt.Errorf("core: bitstream %q produced a %T, not a coprocessor", h.Core, inst)
		}
	}
	sess, err := g.M.Attach(cfg, nframes, slot)
	if err != nil {
		return nil, err
	}
	g.Shell.LoadSlot(g.Board, slot, cp)
	mb := &Member{
		Sess:   sess,
		Proc:   g.Board.Kern.NewProcess(h.Core),
		header: h,
		core:   cp,
		coreHz: g.Shell.Dom.FreqHz(),
		imuHz:  g.Shell.Dom.FreqHz(),
	}
	g.bySlot[slot] = mb
	g.Members = append(g.Members, mb)
	return mb, nil
}

// BeginReconfig empties slot i for partial reconfiguration: the resident
// core is dropped and the IMU channel unbound while every other channel
// keeps translating. The caller models the configuration-port time (derived
// from the incoming bit-stream's size) before calling AttachMember.
func (g *Gang) BeginReconfig(slot int) error {
	if g.Shell == nil {
		return fmt.Errorf("core: BeginReconfig on a non-shell gang")
	}
	if g.bySlot[slot] != nil {
		return fmt.Errorf("core: reconfiguring slot %d still occupied by %q", slot, g.bySlot[slot].App())
	}
	g.Shell.UnloadSlot(g.Board, slot)
	return nil
}

// BeginStage starts pre-staging a bitstream into slot i's staging buffer:
// the coprocessor is instantiated and parked in the buffer while whatever
// member occupies the slot keeps executing. The caller models the
// configuration-port DMA time; once the member detaches, CommitStage swaps
// the staged core in for a fixed commit latency instead of a full
// configuration stream.
func (g *Gang) BeginStage(slot int, img []byte) error {
	if g.Shell == nil {
		return fmt.Errorf("core: BeginStage on a non-shell gang")
	}
	if slot < 0 || slot >= len(g.bySlot) {
		return fmt.Errorf("core: slot %d out of range [0,%d)", slot, len(g.bySlot))
	}
	sl := g.Shell.Slots[slot]
	if sl.Staged() != "" {
		return fmt.Errorf("core: slot %d already staging %q", slot, sl.Staged())
	}
	h, inst, err := bitstream.Instantiate(img, g.Board.Spec.Name)
	if err != nil {
		return err
	}
	cp, ok := inst.(copro.Coprocessor)
	if !ok {
		return fmt.Errorf("core: bitstream %q produced a %T, not a coprocessor", h.Core, inst)
	}
	sl.Stage(cp)
	return nil
}

// CommitStage swaps slot i's staged coprocessor in for the resident one.
// The slot must be unoccupied (its member detached); the caller models the
// fixed commit latency before the next AttachMember, which then finds the
// staged core resident and reuses it with zero configuration traffic.
func (g *Gang) CommitStage(slot int) error {
	if g.Shell == nil {
		return fmt.Errorf("core: CommitStage on a non-shell gang")
	}
	if slot < 0 || slot >= len(g.bySlot) {
		return fmt.Errorf("core: slot %d out of range [0,%d)", slot, len(g.bySlot))
	}
	if g.bySlot[slot] != nil {
		return fmt.Errorf("core: committing staged core into slot %d still occupied by %q",
			slot, g.bySlot[slot].App())
	}
	return g.Shell.CommitSlot(g.Board, slot)
}

// CancelStage discards slot i's staged bitstream — the job it was staged
// for dispatched elsewhere. The resident core and every running neighbour
// are untouched.
func (g *Gang) CancelStage(slot int) error {
	if g.Shell == nil {
		return fmt.Errorf("core: CancelStage on a non-shell gang")
	}
	if slot < 0 || slot >= len(g.bySlot) {
		return fmt.Errorf("core: slot %d out of range [0,%d)", slot, len(g.bySlot))
	}
	if g.Shell.Slots[slot].Staged() == "" {
		return fmt.Errorf("core: slot %d has no staged coprocessor to cancel", slot)
	}
	g.Shell.Slots[slot].CancelStage()
	return nil
}

// Launch implements the FPGA_EXECUTE entry for one shell-mode member:
// syscall charge, parameter page and initial mapping on its session, and
// CP_START on its channel. The engine is not run; the serving loop resumes
// it.
func (g *Gang) Launch(mb *Member) error {
	g.Board.Kern.ChargeSyscall()
	before := g.swSnap()
	if err := mb.Sess.PrepareExecute(mb.Params); err != nil {
		return err
	}
	mb.addSW(g.swSnap(), before)
	mb.done = false
	mb.donePs = 0
	g.Board.IMU.StartCh(mb.Sess.ID())
	return nil
}

// ServicePending runs one service pass over the occupied slots, handling
// every pending completion and translation fault, and returns the members
// that finished. serviced is false when the pass found nothing to do (an
// IRQ that was already consumed).
func (g *Gang) ServicePending() (finished []*Member, serviced bool, err error) {
	serviced, finished, err = g.servicePass(g.bySlot, g.Shell.Eng)
	return finished, serviced, err
}

// DetachMember reclaims a finished member's session — frames, translation
// entries and session slot — and frees its shell slot. The resident core
// stays configured in the slot so a later member running the same
// application can attach without reconfiguration.
func (g *Gang) DetachMember(mb *Member) error {
	if g.Shell == nil {
		return fmt.Errorf("core: DetachMember on a non-shell gang")
	}
	slot := mb.Sess.ID()
	if g.bySlot[slot] != mb {
		return fmt.Errorf("core: member %q not current in slot %d", mb.App(), slot)
	}
	if err := g.M.Detach(mb.Sess); err != nil {
		return err
	}
	g.bySlot[slot] = nil
	for i, m := range g.Members {
		if m == mb {
			g.Members = append(g.Members[:i], g.Members[i+1:]...)
			break
		}
	}
	return nil
}
