package core

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/copro"
	"repro/internal/imu"
	"repro/internal/kernel"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/vim"
)

// Member is one tenant of a Gang: a loaded coprocessor with its VIM
// session, its process, and its scalar parameters for the next ExecuteAll.
type Member struct {
	Sess   *vim.Session
	Proc   *kernel.Process
	Params []uint32

	header bitstream.Header
	core   copro.Coprocessor
	coreHz int64
	imuHz  int64

	done   bool
	donePs float64
	swDP   float64
	swIMU  float64
	swOS   float64
}

// App returns the member's coprocessor name (its bitstream identity).
func (mb *Member) App() string { return mb.header.Core }

// Gang runs several coprocessor sessions concurrently behind one Virtual
// Interface Manager on one board — the multi-tenant shape of the sessions
// layer. Members are added while the gang is unassembled; Assemble builds
// the shared multi-channel hardware; ExecuteAll launches every member and
// services their faults and completions until the last one finishes.
type Gang struct {
	Board   *platform.Board
	M       *vim.Manager
	HW      *platform.MultiHW
	Members []*Member

	budget int64
}

// NewGang creates an empty gang over board with the given inter-session
// arbitration policy.
func NewGang(board *platform.Board, arb vim.Arbitration) (*Gang, error) {
	m, err := vim.NewManager(board.Kern, board.IMU, platform.DPBase, platform.IMURegBase,
		board.DP.PageSize(), arb)
	if err != nil {
		return nil, err
	}
	return &Gang{Board: board, M: m, budget: DefaultBudget}, nil
}

// SetBudget overrides the per-ExecuteAll simulation budget.
func (g *Gang) SetBudget(edges int64) { g.budget = edges }

// AddMember validates the bit-stream, instantiates the coprocessor model,
// and carves nframes of the page pool into the new member's home
// partition. coreHz/imuHz override the bitstream clock plan when non-zero:
// a shared shell fixes one IMU clock for every tenant, so cores whose
// native clocks do not divide it are recompiled against one that does.
// Call before Assemble.
func (g *Gang) AddMember(img []byte, nframes int, cfg vim.Config, coreHz, imuHz int64) (*Member, error) {
	if g.HW != nil {
		return nil, fmt.Errorf("core: gang already assembled")
	}
	h, inst, err := bitstream.Instantiate(img, g.Board.Spec.Name)
	if err != nil {
		return nil, err
	}
	cp, ok := inst.(copro.Coprocessor)
	if !ok {
		return nil, fmt.Errorf("core: bitstream %q produced a %T, not a coprocessor", h.Core, inst)
	}
	sess, err := g.M.AddSession(cfg, nframes)
	if err != nil {
		return nil, err
	}
	if coreHz == 0 {
		coreHz = h.CoreClock
	}
	if imuHz == 0 {
		imuHz = h.IMUClock
	}
	mb := &Member{
		Sess:   sess,
		Proc:   g.Board.Kern.NewProcess(h.Core),
		header: h,
		core:   cp,
		coreHz: coreHz,
		imuHz:  imuHz,
	}
	g.Members = append(g.Members, mb)
	return mb, nil
}

// Assemble builds the shared multi-channel hardware: one engine, the
// board's IMU with one channel per member, and one clock domain per core.
// The shell's IMU clock is the fastest IMU clock any member requested.
func (g *Gang) Assemble() error {
	if len(g.Members) == 0 {
		return fmt.Errorf("core: gang has no members")
	}
	imuHz := int64(0)
	slots := make([]platform.CoproSlot, len(g.Members))
	for i, mb := range g.Members {
		if mb.imuHz > imuHz {
			imuHz = mb.imuHz
		}
		slots[i] = platform.CoproSlot{Core: mb.core, CoreHz: mb.coreHz}
	}
	hw, err := g.Board.AssembleMulti(imuHz, slots)
	if err != nil {
		return err
	}
	g.HW = hw
	return nil
}

// SessionReport is one member's share of a gang execution.
type SessionReport struct {
	App    string
	Policy string

	// The member's slices of the software components, in picoseconds.
	SWDPPs  float64
	SWIMUPs float64
	SWOSPs  float64

	// DonePs is the hardware-timeline instant at which the member's
	// coprocessor signalled completion.
	DonePs float64

	VIM vim.Counters // the member session's counters
	IMU imu.Counters // the member channel's counters
}

// MultiReport aggregates one gang execution: the shared hardware timeline
// plus one SessionReport per member.
type MultiReport struct {
	Board   string
	Arb     string
	IMUMode string

	HWPs    float64
	SWDPPs  float64
	SWIMUPs float64
	SWOSPs  float64
	HWCy    int64 // IMU-domain cycles consumed

	VIM vim.Counters // aggregate across sessions
	IMU imu.Counters // aggregate across channels

	Sessions []SessionReport
}

// TotalPs is the end-to-end execution time of the gang run (last member
// in, all fault service included).
func (r *MultiReport) TotalPs() float64 {
	return r.HWPs + r.SWDPPs + r.SWIMUPs + r.SWOSPs
}

// TotalMs is TotalPs in milliseconds.
func (r *MultiReport) TotalMs() float64 { return r.TotalPs() / 1e9 }

// Report flattens the gang run into the single-run Report shape (golden
// cells, report printers); App and Policy describe the gang as a whole.
func (r *MultiReport) Report() *Report {
	apps := ""
	for i, s := range r.Sessions {
		if i > 0 {
			apps += "+"
		}
		apps += s.App
	}
	return &Report{
		App:     apps,
		Board:   r.Board,
		Policy:  r.Arb,
		IMUMode: r.IMUMode,
		HWPs:    r.HWPs,
		SWDPPs:  r.SWDPPs,
		SWIMUPs: r.SWIMUPs,
		SWOSPs:  r.SWOSPs,
		VIM:     r.VIM,
		IMU:     r.IMU,
		HWCy:    r.HWCy,
	}
}

// swSnap samples the three software components of the shared timeline so
// per-member deltas can be attributed around each service call.
func (g *Gang) swSnap() [3]float64 {
	tl := g.Board.Kern.TL
	return [3]float64{tl.Ps(stats.SWDP), tl.Ps(stats.SWIMU), tl.Ps(stats.SWOS)}
}

func (mb *Member) addSW(after, before [3]float64) {
	mb.swDP += after[0] - before[0]
	mb.swIMU += after[1] - before[1]
	mb.swOS += after[2] - before[2]
}

// ExecuteAll implements FPGA_EXECUTE for every member at once: parameter
// passing and initial mapping per session, concurrent launch, interruptible
// sleep with per-channel fault service, and per-session end-of-operation
// flush as each coprocessor completes. It returns when the last member is
// done.
//
// Modelling note: the engine pauses while the OS services any channel, so
// a fault on one session also stalls the others for the service duration —
// the single-CPU system is serialised through the kernel exactly like the
// real module, but hardware that could have kept running in parallel with
// the CPU is not modelled (documented in docs/ARCHITECTURE.md).
func (g *Gang) ExecuteAll() (*MultiReport, error) {
	if g.HW == nil {
		return nil, fmt.Errorf("core: ExecuteAll before Assemble")
	}
	k := g.Board.Kern
	tl := k.TL
	tl.Reset()
	g.M.ResetCounters()
	g.Board.IMU.ResetCounters()
	for _, mb := range g.Members {
		mb.done = false
		mb.donePs = 0
		mb.swDP, mb.swIMU, mb.swOS = 0, 0, 0
	}

	// Launch: per-session syscall, parameter page, initial mapping, start.
	for i, mb := range g.Members {
		k.ChargeSyscall()
		before := g.swSnap()
		if err := mb.Sess.PrepareExecute(mb.Params); err != nil {
			return nil, err
		}
		mb.addSW(g.swSnap(), before)
		g.Board.IMU.StartCh(i)
	}

	eng := g.HW.Eng
	imuDom := g.HW.IMUDom
	startCy := imuDom.Cycles()
	hwPs := 0.0
	budget := g.budget
	irq := g.Board.IMU.IRQRef()
	remaining := len(g.Members)
	for remaining > 0 {
		before := eng.NowPs()
		n, err := eng.RunUntilFlag(irq, budget)
		hwPs += eng.NowPs() - before
		budget -= n
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBudget, err)
		}
		serviced := false
		for i, mb := range g.Members {
			if mb.done {
				continue
			}
			if g.Board.IMU.DonePendingCh(i) {
				sw := g.swSnap()
				if err := mb.Sess.Finish(); err != nil {
					return nil, err
				}
				mb.addSW(g.swSnap(), sw)
				g.Board.IMU.AckDoneCh(i)
				mb.done = true
				mb.donePs = eng.NowPs()
				remaining--
				serviced = true
				continue
			}
			if g.Board.IMU.FaultPendingCh(i) {
				sw := g.swSnap()
				if err := mb.Sess.HandleFault(); err != nil {
					return nil, fmt.Errorf("core: session %d (%s): %w", i, mb.header.Core, err)
				}
				mb.addSW(g.swSnap(), sw)
				serviced = true
			}
		}
		if !serviced {
			return nil, fmt.Errorf("core: IRQ with no serviceable channel (SR0=%#x)", g.Board.IMU.SR())
		}
		// Let restarts and acks propagate before re-checking the IRQ line
		// (requests are consumed at the next edge).
		before = eng.NowPs()
		eng.Step()
		eng.Step()
		hwPs += eng.NowPs() - before
		budget -= 2
	}
	// Drain until every core has observed CP_START falling and dropped
	// CP_FIN, so a later ExecuteAll starts clean even with slow core
	// clock domains.
	before := eng.NowPs()
	if _, err := eng.RunUntil(func() bool {
		if g.Board.IMU.IRQ() {
			return false
		}
		for _, p := range g.HW.Ports {
			if p.CP().Fin {
				return false
			}
		}
		return true
	}, 256*int64(len(g.Members))); err != nil {
		return nil, fmt.Errorf("core: completion handshake did not drain: %v", err)
	}
	hwPs += eng.NowPs() - before
	tl.Add(stats.HW, hwPs)

	rep := &MultiReport{
		Board:   g.Board.Spec.Name,
		Arb:     g.M.Arbitration().String(),
		IMUMode: g.Board.IMU.Config().Mode.String(),
		HWPs:    tl.Ps(stats.HW),
		SWDPPs:  tl.Ps(stats.SWDP),
		SWIMUPs: tl.Ps(stats.SWIMU),
		SWOSPs:  tl.Ps(stats.SWOS),
		HWCy:    imuDom.Cycles() - startCy,
		VIM:     g.M.Count,
		IMU:     g.Board.IMU.Count,
	}
	for i, mb := range g.Members {
		rep.Sessions = append(rep.Sessions, SessionReport{
			App:     mb.header.Core,
			Policy:  mb.Sess.Config().Policy.Name(),
			SWDPPs:  mb.swDP,
			SWIMUPs: mb.swIMU,
			SWOSPs:  mb.swOS,
			DonePs:  mb.donePs,
			VIM:     mb.Sess.Count,
			IMU:     g.Board.IMU.ChCounters(i),
		})
	}
	return rep, nil
}
