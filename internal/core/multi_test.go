package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/copro/vecadd"
	"repro/internal/platform"
	"repro/internal/vim"
)

// vecaddImg builds a vector-add bitstream for the test board (core and IMU
// at 40 MHz, like the production image).
func vecaddImg(t *testing.T, board string) []byte {
	t.Helper()
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	img, err := bitstream.Build(bitstream.Header{
		Device:    board,
		Core:      vecadd.CoreName,
		CoreClock: 40_000_000,
		IMUClock:  40_000_000,
		LEs:       1024,
		Payload:   payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestGangTwoVecAdds runs two vector-add sessions concurrently behind one
// VIM on the EPXA1 (four frames each, objects exceeding the partitions so
// both sessions demand-page), and verifies both results.
func TestGangTwoVecAdds(t *testing.T) {
	const n = 1024 // elements: 3 x 4 KB objects per session, 2 pages each
	board, err := platform.NewBoard(platform.EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGang(board, vim.StaticPartition)
	if err != nil {
		t.Fatal(err)
	}
	img := vecaddImg(t, "EPXA1")
	var members [2]*Member
	var outs [2]uint32
	var wants [2][]uint32
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2; i++ {
		mb, err := g.AddMember(img, 4, vim.Config{}, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := board.Kern.Alloc(4 * n)
		b, _ := board.Kern.Alloc(4 * n)
		c, _ := board.Kern.Alloc(4 * n)
		av := make([]uint32, n)
		bv := make([]uint32, n)
		want := make([]uint32, n)
		buf := make([]byte, 4*n)
		for j := 0; j < n; j++ {
			av[j] = rng.Uint32()
			bv[j] = rng.Uint32()
			want[j] = av[j] + bv[j]
		}
		for j, v := range av {
			binary.LittleEndian.PutUint32(buf[4*j:], v)
		}
		if err := board.Kern.WriteUser(a, buf); err != nil {
			t.Fatal(err)
		}
		for j, v := range bv {
			binary.LittleEndian.PutUint32(buf[4*j:], v)
		}
		if err := board.Kern.WriteUser(b, buf); err != nil {
			t.Fatal(err)
		}
		if err := mb.Sess.MapObject(vecadd.ObjA, a, 4*n, vim.In); err != nil {
			t.Fatal(err)
		}
		if err := mb.Sess.MapObject(vecadd.ObjB, b, 4*n, vim.In); err != nil {
			t.Fatal(err)
		}
		if err := mb.Sess.MapObject(vecadd.ObjC, c, 4*n, vim.Out); err != nil {
			t.Fatal(err)
		}
		mb.Params = []uint32{n}
		members[i] = mb
		outs[i] = c
		wants[i] = want
	}
	if err := g.Assemble(); err != nil {
		t.Fatal(err)
	}
	rep, err := g.ExecuteAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := board.Kern.ReadUser(outs[i], 4*n)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if v := binary.LittleEndian.Uint32(got[4*j:]); v != wants[i][j] {
				t.Fatalf("session %d element %d = %#x, want %#x", i, j, v, wants[i][j])
			}
		}
	}
	if len(rep.Sessions) != 2 {
		t.Fatalf("report carries %d sessions, want 2", len(rep.Sessions))
	}
	for i, s := range rep.Sessions {
		if s.VIM.Faults == 0 {
			t.Errorf("session %d had no faults; objects should exceed its partition", i)
		}
		if s.DonePs <= 0 {
			t.Errorf("session %d has no completion time", i)
		}
	}
	if rep.VIM.Faults != rep.Sessions[0].VIM.Faults+rep.Sessions[1].VIM.Faults {
		t.Error("aggregate faults do not sum the per-session faults")
	}
	if rep.TotalPs() <= 0 {
		t.Error("gang total time not positive")
	}
	// A second ExecuteAll on the same gang must start clean.
	rep2, err := g.ExecuteAll()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TotalPs() != rep.TotalPs() {
		t.Errorf("second run drifted: %v != %v", rep2.TotalPs(), rep.TotalPs())
	}
}

// TestGangConstructionErrors pins the gang construction contract.
func TestGangConstructionErrors(t *testing.T) {
	board, err := platform.NewBoard(platform.EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGang(board, vim.GlobalLRU)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Assemble(); err == nil {
		t.Fatal("assembled an empty gang")
	}
	if _, err := g.ExecuteAll(); err == nil {
		t.Fatal("executed an unassembled gang")
	}
	img := vecaddImg(t, "EPXA1")
	if _, err := g.AddMember(img, 1, vim.Config{}, 0, 0); err == nil {
		t.Fatal("accepted a one-frame member")
	}
	if _, err := g.AddMember(img, 4, vim.Config{}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Assemble(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddMember(img, 4, vim.Config{}, 0, 0); err == nil {
		t.Fatal("added a member to an assembled gang")
	}
}

// TestShellGangStaging pins the shell-mode staging contract: BeginStage
// parks an instantiated coprocessor in a slot's staging buffer without
// disturbing the resident core, CommitStage swaps it in (so a following
// AttachMember reuses it with zero configuration traffic), CancelStage
// discards it, and every misuse path errors.
func TestShellGangStaging(t *testing.T) {
	board, err := platform.NewBoard(platform.EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewShellGang(board, vim.StaticPartition, 24_000_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	img := vecaddImg(t, "EPXA1")

	// Staging on a bare slot works and is visible to the slot.
	if err := g.BeginStage(0, img); err != nil {
		t.Fatal(err)
	}
	if got := g.Shell.Slots[0].Staged(); got != vecadd.CoreName {
		t.Fatalf("staged = %q, want %q", got, vecadd.CoreName)
	}
	// A second stage on the same slot is rejected (one buffer per slot).
	if err := g.BeginStage(0, img); err == nil {
		t.Fatal("double-staged a slot")
	}
	if err := g.BeginStage(7, img); err == nil {
		t.Fatal("staged an out-of-range slot")
	}
	if err := g.CommitStage(7); err == nil {
		t.Fatal("committed an out-of-range slot")
	}
	if err := g.CancelStage(-1); err == nil {
		t.Fatal("cancelled an out-of-range slot")
	}

	// Commit makes the staged core resident; AttachMember then takes the
	// zero-config affinity path and reuses it.
	if err := g.CommitStage(0); err != nil {
		t.Fatal(err)
	}
	if got := g.Shell.Slots[0].Resident(); got != vecadd.CoreName {
		t.Fatalf("resident after commit = %q, want %q", got, vecadd.CoreName)
	}
	resident := g.Shell.Slots[0].Core()
	mb, err := g.AttachMember(0, img, 4, vim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Shell.Slots[0].Core() != resident {
		t.Fatal("AttachMember re-instantiated a core the commit had just configured")
	}

	// Committing with an occupied slot or an empty buffer errors; cancel
	// needs something staged.
	if err := g.CommitStage(0); err == nil {
		t.Fatal("committed into an occupied slot with nothing staged")
	}
	if err := g.BeginStage(0, img); err != nil {
		t.Fatal(err) // staging behind a live member is the whole point
	}
	if err := g.CommitStage(0); err == nil {
		t.Fatal("committed while the slot's member still runs")
	}
	if err := g.CancelStage(0); err != nil {
		t.Fatal(err)
	}
	if err := g.CancelStage(0); err == nil {
		t.Fatal("cancelled an empty staging buffer")
	}
	if g.Shell.Slots[0].Core() != resident || g.Shell.Slots[0].Resident() != vecadd.CoreName {
		t.Fatal("stage/cancel churn disturbed the resident core")
	}
	if err := g.DetachMember(mb); err != nil {
		t.Fatal(err)
	}

	// Stage APIs are shell-only.
	flat, err := NewGang(board, vim.StaticPartition)
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.BeginStage(0, img); err == nil {
		t.Fatal("BeginStage on a non-shell gang succeeded")
	}
}
