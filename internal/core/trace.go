package core

import (
	"io"

	"repro/internal/copro"
	"repro/internal/imu"
	"repro/internal/trace"
)

// TraceSession attaches a waveform recorder to the session's coprocessor
// port: every IMU clock edge samples the CP_* bundle, the translation-hit
// line and the interrupt. Call after Load (the port exists once the PLD is
// configured) and before Execute; write the result with WriteVCD.
//
// The recorder's timescale is one IMU clock period.
func (s *Session) TraceSession() (*trace.Recorder, error) {
	if !s.loaded {
		return nil, ErrNoBitstream
	}
	periodPs := int64(1e12 / float64(s.header.IMUClock))
	rec := trace.NewRecorder(periodPs)
	sClk := rec.Declare("clk", 1)
	sObj := rec.Declare("cp_obj", 8)
	sAddr := rec.Declare("cp_addr", 24)
	sAcc := rec.Declare("cp_access", 1)
	sWr := rec.Declare("cp_wr", 1)
	sDout := rec.Declare("cp_dout", 32)
	sHit := rec.Declare("cp_tlbhit", 1)
	sDin := rec.Declare("cp_din", 32)
	sStart := rec.Declare("cp_start", 1)
	sFin := rec.Declare("cp_fin", 1)
	sIrq := rec.Declare("irq_pld", 1)

	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	u := s.Board.IMU
	u.SetTrace(&imu.TraceHooks{OnEdge: func(cy uint64, cp copro.CPOut, out copro.IMUOut) {
		t := int64(cy)
		rec.Record(sClk, t, 1)
		rec.Record(sObj, t, uint64(cp.Obj))
		rec.Record(sAddr, t, uint64(cp.Addr))
		rec.Record(sAcc, t, b2u(cp.Access))
		rec.Record(sWr, t, b2u(cp.Wr))
		rec.Record(sDout, t, uint64(cp.DOut))
		rec.Record(sHit, t, b2u(out.TLBHit))
		rec.Record(sDin, t, uint64(out.DIn))
		rec.Record(sStart, t, b2u(out.Start))
		rec.Record(sFin, t, b2u(cp.Fin))
		rec.Record(sIrq, t, b2u(u.IRQ()))
	}})
	return rec, nil
}

// WriteVCD emits a recorded session waveform.
func WriteVCD(w io.Writer, rec *trace.Recorder) error {
	return rec.WriteVCD(w, "vim_session")
}
