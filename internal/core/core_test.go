package core

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/copro/vecadd"
	"repro/internal/platform"
	"repro/internal/vim"
)

func vecaddImage(t *testing.T, device string) []byte {
	t.Helper()
	img, err := bitstream.Build(bitstream.Header{
		Device:    device,
		Core:      vecadd.CoreName,
		CoreClock: 40_000_000,
		IMUClock:  40_000_000,
		LEs:       1450,
		Payload:   []byte{0xaa, 0xbb},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func newSession(t *testing.T) (*Session, *platform.Board) {
	t.Helper()
	board, err := platform.NewBoard(platform.EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	proc := board.Kern.NewProcess("t")
	s, err := NewSession(board, proc, vim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s, board
}

func TestExecuteBeforeLoad(t *testing.T) {
	s, _ := newSession(t)
	if _, err := s.Execute(1); !errors.Is(err, ErrNoBitstream) {
		t.Fatalf("err = %v, want ErrNoBitstream", err)
	}
}

func TestDoubleLoadRejected(t *testing.T) {
	s, _ := newSession(t)
	if err := s.Load(vecaddImage(t, "EPXA1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(vecaddImage(t, "EPXA1")); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	s.Unload()
	if err := s.Load(vecaddImage(t, "EPXA1")); err != nil {
		t.Fatalf("reload after unload failed: %v", err)
	}
}

func TestLoadChargesConfigTime(t *testing.T) {
	s, _ := newSession(t)
	if err := s.Load(vecaddImage(t, "EPXA1")); err != nil {
		t.Fatal(err)
	}
	if s.configPs <= 0 {
		t.Fatal("no configuration time accounted")
	}
}

func TestExecuteEndToEndAndRepeated(t *testing.T) {
	s, board := newSession(t)
	if err := s.Load(vecaddImage(t, "EPXA1")); err != nil {
		t.Fatal(err)
	}
	const n = 64
	a, _ := board.Kern.Alloc(4 * n)
	b, _ := board.Kern.Alloc(4 * n)
	c, _ := board.Kern.Alloc(4 * n)
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(i))
	}
	if err := board.Kern.WriteUser(a, buf); err != nil {
		t.Fatal(err)
	}
	if err := board.Kern.WriteUser(b, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.MapObject(vecadd.ObjA, a, 4*n, vim.In); err != nil {
		t.Fatal(err)
	}
	if err := s.MapObject(vecadd.ObjB, b, 4*n, vim.In); err != nil {
		t.Fatal(err)
	}
	if err := s.MapObject(vecadd.ObjC, c, 4*n, vim.Out); err != nil {
		t.Fatal(err)
	}

	// The same session executes repeatedly (the paper: "the coprocessor
	// should be ready and waiting for new execution, if another
	// FPGA_EXECUTE call appears").
	for round := 0; round < 3; round++ {
		rep, err := s.Execute(n)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		out, _ := board.Kern.ReadUser(c, 4*n)
		for i := 0; i < n; i++ {
			got := binary.LittleEndian.Uint32(out[4*i:])
			if got != uint32(2*i) {
				t.Fatalf("round %d: C[%d] = %d, want %d", round, i, got, 2*i)
			}
		}
		if rep.HWPs <= 0 {
			t.Fatalf("round %d: empty HW time", round)
		}
		if rep.App != vecadd.CoreName {
			t.Fatalf("report app = %q", rep.App)
		}
	}
}

func TestExecuteRejectsOutOfBoundsCoprocessor(t *testing.T) {
	s, board := newSession(t)
	if err := s.Load(vecaddImage(t, "EPXA1")); err != nil {
		t.Fatal(err)
	}
	a, _ := board.Kern.Alloc(64)
	b, _ := board.Kern.Alloc(64)
	c, _ := board.Kern.Alloc(64)
	_ = s.MapObject(vecadd.ObjA, a, 64, vim.In)
	_ = s.MapObject(vecadd.ObjB, b, 64, vim.In)
	_ = s.MapObject(vecadd.ObjC, c, 64, vim.Out)
	// 64-byte objects but SIZE says 600 elements: like any paging
	// hardware, bounds are enforced at page granularity, so the run
	// must die on the first access past the mapped page.
	_, err := s.Execute(600)
	if !errors.Is(err, vim.ErrOutOfBounds) {
		t.Fatalf("err = %v, want ErrOutOfBounds", err)
	}
}

func TestExecuteRejectsUnknownObject(t *testing.T) {
	s, board := newSession(t)
	if err := s.Load(vecaddImage(t, "EPXA1")); err != nil {
		t.Fatal(err)
	}
	// Only A is mapped; the first access to B must be refused.
	a, _ := board.Kern.Alloc(64)
	_ = s.MapObject(vecadd.ObjA, a, 64, vim.In)
	_, err := s.Execute(4)
	if !errors.Is(err, vim.ErrBadObject) {
		t.Fatalf("err = %v, want ErrBadObject", err)
	}
}

func TestWrongDeviceRejected(t *testing.T) {
	s, _ := newSession(t)
	err := s.Load(vecaddImage(t, "EPXA4"))
	if !errors.Is(err, bitstream.ErrWrongDevice) {
		t.Fatalf("err = %v, want ErrWrongDevice", err)
	}
}

func TestReportTotals(t *testing.T) {
	r := &Report{HWPs: 1, SWDPPs: 2, SWIMUPs: 3, SWOSPs: 4}
	if r.TotalPs() != 10 || r.SWPs() != 9 {
		t.Fatal("report arithmetic wrong")
	}
	pure := &Report{PurePs: 42}
	if pure.TotalPs() != 42 {
		t.Fatal("pure report total wrong")
	}
	if r.TotalMs() != 10/1e9 {
		t.Fatal("TotalMs wrong")
	}
}

func TestRunSoftwareReportsTime(t *testing.T) {
	board, err := platform.NewBoard(platform.EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	rep := RunSoftware(board, "noop", func() { board.CPU.AddCycles(1330) })
	if rep.PurePs <= 0 {
		t.Fatal("no time reported")
	}
	if rep.App != "noop" || rep.Board != "EPXA1" {
		t.Fatalf("report identity wrong: %+v", rep)
	}
}

func TestTraceSessionRecordsWaveform(t *testing.T) {
	s, board := newSession(t)
	if _, err := s.TraceSession(); !errors.Is(err, ErrNoBitstream) {
		t.Fatalf("trace before load: err = %v, want ErrNoBitstream", err)
	}
	if err := s.Load(vecaddImage(t, "EPXA1")); err != nil {
		t.Fatal(err)
	}
	rec, err := s.TraceSession()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := board.Kern.Alloc(64)
	b, _ := board.Kern.Alloc(64)
	c, _ := board.Kern.Alloc(64)
	_ = s.MapObject(vecadd.ObjA, a, 64, vim.In)
	_ = s.MapObject(vecadd.ObjB, b, 64, vim.In)
	_ = s.MapObject(vecadd.ObjC, c, 64, vim.Out)
	if _, err := s.Execute(16); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVCD(&sb, rec); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, sig := range []string{"cp_access", "cp_tlbhit", "cp_start", "cp_fin", "irq_pld"} {
		if !strings.Contains(out, sig) {
			t.Fatalf("VCD missing signal %s", sig)
		}
	}
	if strings.Count(out, "\n") < 100 {
		t.Fatal("VCD suspiciously short for a full run")
	}
}
