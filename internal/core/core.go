// Package core binds the pieces of the virtualisation layer — the platform
// board, the kernel model, the Virtual Interface Manager and the loaded
// coprocessor — into a Session that executes the paper's three OS services
// (FPGA_LOAD, FPGA_MAP_OBJECT, FPGA_EXECUTE) on a single coherent timeline.
//
// The timeline alternates exactly as on the real system: hardware segments
// are cycle-simulated until the IMU raises an interrupt (fault or
// completion); the coprocessor is then stalled while the timed software
// model services the event; simulation resumes afterwards. Each segment
// lands in the paper's measurement buckets (HW, SW dual-port management,
// SW IMU management, plus residual OS overhead).
//
// Beyond the paper's single-tenant shape, a Gang (multi.go) runs several
// loaded coprocessors concurrently behind one multi-session manager: every
// member owns a VIM session and an IMU channel, faults and completions are
// serviced per channel from one interruptible sleep, and the MultiReport
// splits the shared timeline into per-session shares.
package core

import (
	"errors"
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/copro"
	"repro/internal/imu"
	"repro/internal/kernel"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/vim"
)

// Errors returned by Session operations.
var (
	ErrNoBitstream = errors.New("core: FPGA_EXECUTE before FPGA_LOAD")
	ErrBusy        = errors.New("core: PLD already configured by another session")
	ErrBudget      = errors.New("core: execution exceeded the simulation budget")
)

// DefaultBudget bounds one FPGA_EXECUTE in simulation super-edges.
const DefaultBudget = int64(200_000_000)

// ConfigClockHz is the passive-serial configuration clock used to charge
// bit-stream load time.
const ConfigClockHz = 10_000_000

// Session executes applications through the virtual interface.
type Session struct {
	Board *platform.Board
	Proc  *kernel.Process
	VIM   *vim.Manager
	HW    *platform.HW

	header   bitstream.Header
	loaded   bool
	configPs float64
	budget   int64
}

// NewSession creates a session for proc on board with the given VIM
// configuration.
func NewSession(board *platform.Board, proc *kernel.Process, vimCfg vim.Config) (*Session, error) {
	m, err := vim.New(board.Kern, board.IMU, platform.DPBase, platform.IMURegBase,
		board.DP.PageSize(), vimCfg)
	if err != nil {
		return nil, err
	}
	return &Session{Board: board, Proc: proc, VIM: m, budget: DefaultBudget}, nil
}

// SetBudget overrides the per-execution simulation budget.
func (s *Session) SetBudget(edges int64) { s.budget = edges }

// Load implements FPGA_LOAD: it validates the bit-stream, instantiates the
// registered coprocessor model ("configures the PLD"), assembles the clock
// domains, and accounts the configuration time. The PLD is held exclusively
// by this session until Unload.
func (s *Session) Load(img []byte) error {
	if s.loaded {
		return ErrBusy
	}
	s.Board.Kern.ChargeSyscall()
	h, inst, err := bitstream.Instantiate(img, s.Board.Spec.Name)
	if err != nil {
		return err
	}
	cp, ok := inst.(copro.Coprocessor)
	if !ok {
		return fmt.Errorf("core: bitstream %q produced a %T, not a coprocessor", h.Core, inst)
	}
	hw, err := s.Board.Assemble(h.CoreClock, h.IMUClock, cp)
	if err != nil {
		return err
	}
	// Configuration time: flash readout plus shifting the image into the
	// PLD at the configuration clock. Reported separately, as the paper's
	// per-run measurements exclude FPGA_LOAD.
	if err := s.Board.Flash.Program(0, img); err != nil {
		return err
	}
	_, flashCycles, err := s.Board.Flash.ReadImage(0, len(img))
	if err != nil {
		return err
	}
	s.configPs = float64(flashCycles)*1e12/float64(s.Board.Spec.CPUHz) +
		float64(bitstream.ConfigCycles(img))*1e12/float64(ConfigClockHz)
	s.header = h
	s.HW = hw
	s.loaded = true
	return nil
}

// Unload releases the PLD.
func (s *Session) Unload() {
	s.loaded = false
	s.HW = nil
	s.VIM.UnmapAll()
}

// MapObject implements FPGA_MAP_OBJECT.
func (s *Session) MapObject(id uint8, base, size uint32, dir vim.Direction) error {
	s.Board.Kern.ChargeSyscall()
	return s.VIM.MapObject(id, base, size, dir)
}

// Report aggregates one execution's measurements.
type Report struct {
	App     string
	Board   string
	Policy  string
	IMUMode string

	// The paper's execution-time components, in picoseconds.
	HWPs    float64
	SWDPPs  float64
	SWIMUPs float64
	SWOSPs  float64

	// PurePs is set instead of the above for software-only runs.
	PurePs float64

	// ConfigPs is the FPGA_LOAD configuration time (not part of TotalPs).
	ConfigPs float64

	VIM  vim.Counters
	IMU  imu.Counters
	HWCy int64 // IMU-domain cycles consumed
}

// TotalPs is the end-to-end execution time of the run.
func (r *Report) TotalPs() float64 {
	if r.PurePs > 0 {
		return r.PurePs
	}
	return r.HWPs + r.SWDPPs + r.SWIMUPs + r.SWOSPs
}

// TotalMs is TotalPs in milliseconds.
func (r *Report) TotalMs() float64 { return r.TotalPs() / 1e9 }

// SWPs is the total operating-system time of the run.
func (r *Report) SWPs() float64 { return r.SWDPPs + r.SWIMUPs + r.SWOSPs }

// Execute implements FPGA_EXECUTE: initial mapping and parameter passing,
// coprocessor start, interruptible sleep with fault service, and end-of-
// operation flush. It returns the measured report.
func (s *Session) Execute(params ...uint32) (*Report, error) {
	if !s.loaded {
		return nil, ErrNoBitstream
	}
	k := s.Board.Kern
	tl := k.TL
	tl.Reset()
	s.VIM.ResetCounters()
	s.Board.IMU.ResetCounters()

	k.ChargeSyscall()
	if err := s.VIM.PrepareExecute(params); err != nil {
		return nil, err
	}
	s.Board.IMU.Start()

	eng := s.HW.Eng
	imuDom := s.HW.IMUDom
	startCy := imuDom.Cycles()
	hwPs := 0.0
	budget := s.budget
	// The interruptible sleep polls the IRQ line through the engine's
	// flag-based loop: edge-exact (the cycle counters feed the measured
	// components) but free of the per-edge closure call of RunUntil.
	irq := s.Board.IMU.IRQRef()
	for {
		before := eng.NowPs()
		n, err := eng.RunUntilFlag(irq, budget)
		hwPs += eng.NowPs() - before
		budget -= n
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBudget, err)
		}
		if s.Board.IMU.DonePending() {
			if err := s.VIM.Finish(); err != nil {
				return nil, err
			}
			s.Board.IMU.AckDone()
			// Drain until the core has observed CP_START falling and
			// dropped CP_FIN, so a later FPGA_EXECUTE starts clean even
			// with a slow coprocessor clock domain.
			before = eng.NowPs()
			if _, err := eng.RunUntil(func() bool {
				return !s.HW.Port.CP().Fin && !s.Board.IMU.IRQ()
			}, 256); err != nil {
				return nil, fmt.Errorf("core: completion handshake did not drain: %v", err)
			}
			hwPs += eng.NowPs() - before
			break
		}
		if s.Board.IMU.FaultPending() {
			if err := s.VIM.HandleFault(); err != nil {
				return nil, err
			}
			// Let the restart propagate before re-checking the IRQ
			// line (the request is consumed at the next edge).
			before = eng.NowPs()
			eng.Step()
			eng.Step()
			hwPs += eng.NowPs() - before
			budget -= 2
			continue
		}
		return nil, fmt.Errorf("core: IRQ with neither fault nor completion pending (SR=%#x)", s.Board.IMU.SR())
	}
	tl.Add(stats.HW, hwPs)

	return &Report{
		App:      s.header.Core,
		Board:    s.Board.Spec.Name,
		Policy:   s.VIM.Config().Policy.Name(),
		IMUMode:  s.Board.IMU.Config().Mode.String(),
		HWPs:     tl.Ps(stats.HW),
		SWDPPs:   tl.Ps(stats.SWDP),
		SWIMUPs:  tl.Ps(stats.SWIMU),
		SWOSPs:   tl.Ps(stats.SWOS),
		ConfigPs: s.configPs,
		VIM:      s.VIM.Count,
		IMU:      s.Board.IMU.Count,
		HWCy:     imuDom.Cycles() - startCy,
	}, nil
}

// RunSoftware measures a pure-software execution of fn on the board's CPU
// (the paper's "pure SW version ... running on top of the OS").
func RunSoftware(board *platform.Board, name string, fn func()) *Report {
	board.CPU.ResetStats()
	board.Kern.ChargeSyscall() // entering/leaving the measured region
	fn()
	cycles := board.CPU.Cycles()
	return &Report{
		App:    name,
		Board:  board.Spec.Name,
		PurePs: float64(cycles) * 1e12 / float64(board.Spec.CPUHz),
	}
}
