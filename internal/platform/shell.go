package platform

import (
	"fmt"

	"repro/internal/copro"
	"repro/internal/sim"
)

// Slot is one partially-reconfigurable region of a multi-coprocessor shell:
// a fixed ticker attached to the shell clock whose resident coprocessor
// model can be swapped while the engine is paused (the FOS-style "shell and
// role" split — the shell's wiring to the IMU channel is static, the role
// inside it is loaded and unloaded at runtime). An empty slot is idle
// forever; a loaded slot delegates edges, and the bounded-idleness contract,
// to its resident core, so the engine's bulk-skip machinery keeps working
// across reconfigurations.
type Slot struct {
	port *copro.Port
	core copro.Coprocessor
	bulk sim.BulkIdler // resident core's bulk-idle view, nil if not offered

	// staged is the slot's staging buffer: a coprocessor whose bitstream
	// the configuration port has DMA'd in behind the resident core's back.
	// It takes no part in ticking — the buffer is passive configuration
	// memory — until CommitSlot swaps it in for the resident core.
	staged copro.Coprocessor
}

// Resident returns the loaded coprocessor's name, or "" while the slot is
// empty (reconfiguring).
func (s *Slot) Resident() string {
	if s.core == nil {
		return ""
	}
	return s.core.Name()
}

// Core returns the resident coprocessor model (nil while empty).
func (s *Slot) Core() copro.Coprocessor { return s.core }

// Port returns the CP_* bundle wired between the resident core and the IMU
// channel (nil while the slot is empty).
func (s *Slot) Port() *copro.Port { return s.port }

// Load configures the slot with a coprocessor over the given port (the
// caller binds the same port to the IMU channel) and resets the core to its
// power-on state. Engine must be paused.
func (s *Slot) Load(core copro.Coprocessor, port *copro.Port) {
	s.core = core
	s.port = port
	s.bulk, _ = core.(sim.BulkIdler)
	core.Bind(port)
	core.ResetCore()
}

// Unload empties the slot (partial reconfiguration begins). Engine must be
// paused; unbind the IMU channel as well so the stale port is dropped on
// both sides. The staging buffer is untouched — a pre-staged bitstream
// survives the resident core's eviction.
func (s *Slot) Unload() {
	s.core = nil
	s.port = nil
	s.bulk = nil
}

// Stage places a coprocessor into the slot's staging buffer while the
// resident core (if any) keeps executing undisturbed. The caller models
// the configuration-port DMA time; the buffer itself is timeless.
func (s *Slot) Stage(core copro.Coprocessor) {
	s.staged = core
}

// Staged returns the staged coprocessor's name, or "" while the staging
// buffer is empty.
func (s *Slot) Staged() string {
	if s.staged == nil {
		return ""
	}
	return s.staged.Name()
}

// TakeStage empties the staging buffer and returns its coprocessor (nil if
// none was staged).
func (s *Slot) TakeStage() copro.Coprocessor {
	core := s.staged
	s.staged = nil
	return core
}

// CancelStage discards the staged bitstream (the job it was staged for went
// elsewhere); the resident core is untouched.
func (s *Slot) CancelStage() {
	s.staged = nil
}

// Eval implements sim.Ticker by delegating to the resident core.
func (s *Slot) Eval() {
	if s.core != nil {
		s.core.Eval()
	}
}

// Update implements sim.Ticker.
func (s *Slot) Update() {
	if s.core != nil {
		s.core.Update()
	}
}

// IdleEdges implements sim.BulkIdler: an empty slot is idle until input
// (which only a Load can produce), a loaded slot answers with its core's
// bounded idleness, and a core that offers no idleness contract pins the
// slot busy.
func (s *Slot) IdleEdges() int64 {
	if s.core == nil {
		return sim.IdleForever
	}
	if s.bulk == nil {
		return 0
	}
	return s.bulk.IdleEdges()
}

// SkipEdges implements sim.BulkIdler.
func (s *Slot) SkipEdges(k int64) {
	if s.bulk != nil {
		s.bulk.SkipEdges(k)
	}
}

// ShellHW is the dynamically-reconfigurable hardware assembly: one engine
// and one shell clock domain carrying the board's IMU plus a fixed set of
// slots whose resident coprocessors come and go at runtime. Every tenant —
// and the IMU — runs at the shell clock, the "recompiled against the shell's
// clock plan" regime of the sessions layer, so a slot can host any
// registered core without re-planning the engine.
type ShellHW struct {
	Eng   *sim.Engine
	Dom   *sim.Domain
	Slots []*Slot
}

// AssembleShell builds an nslots-slot shell clocked at shellHz: the IMU is
// reconfigured to one channel per slot, and channel i serves whatever core
// is currently loaded into Slots[i]. Slots attach before the IMU, matching
// AssembleMulti's deterministic order.
func (b *Board) AssembleShell(shellHz int64, nslots int) (*ShellHW, error) {
	if nslots <= 0 {
		return nil, fmt.Errorf("platform: shell needs at least one slot")
	}
	if shellHz <= 0 {
		return nil, fmt.Errorf("platform: non-positive shell clock %d", shellHz)
	}
	if err := b.IMU.SetChannels(nslots); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	dom := eng.NewDomain("shell", shellHz)
	hw := &ShellHW{Eng: eng, Dom: dom}
	for i := 0; i < nslots; i++ {
		sl := &Slot{}
		dom.Attach(sl)
		hw.Slots = append(hw.Slots, sl)
	}
	dom.Attach(b.IMU)
	if err := eng.Validate(); err != nil {
		return nil, err
	}
	return hw, nil
}

// LoadSlot loads core into slot i over a fresh port and binds the IMU
// channel to it. Engine must be paused.
func (hw *ShellHW) LoadSlot(b *Board, i int, core copro.Coprocessor) {
	port := copro.NewPort()
	hw.Slots[i].Load(core, port)
	b.IMU.BindCh(i, port)
}

// UnloadSlot empties slot i and unbinds its IMU channel (partial
// reconfiguration begins; the other slots keep running).
func (hw *ShellHW) UnloadSlot(b *Board, i int) {
	hw.Slots[i].Unload()
	b.IMU.UnbindCh(i)
}

// CommitSlot swaps slot i's staged coprocessor in for the resident one:
// the old core is dropped, the staged core becomes resident over a fresh
// port and the IMU channel rebinds to it. The caller models the fixed
// commit latency — the double-buffered configuration swap, not a
// configuration-port stream. Engine must be paused.
func (hw *ShellHW) CommitSlot(b *Board, i int) error {
	core := hw.Slots[i].TakeStage()
	if core == nil {
		return fmt.Errorf("platform: slot %d has no staged coprocessor to commit", i)
	}
	hw.UnloadSlot(b, i)
	hw.LoadSlot(b, i, core)
	return nil
}
