// Package platform assembles the simulated reconfigurable SoC boards: the
// Excalibur EPXA1 the paper measures on, plus the larger EPXA4 and EPXA10
// the paper names as recompile-only porting targets (§4: "using the module
// on the system with different size of the dual-port memory ... would
// require only recompiling the module").
//
// A Board owns the platform-fixed hardware (CPU, SDRAM, flash, AHB, DP RAM,
// IMU); Assemble instantiates the per-application clock domains around a
// loaded coprocessor, since core and IMU frequencies travel with the
// bitstream.
package platform

import (
	"fmt"

	"repro/internal/amba"
	"repro/internal/copro"
	"repro/internal/cpu"
	"repro/internal/imu"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// AHB address map (stripe-side). The DP RAM and register windows sit above
// the largest SDRAM option (256 MB on the EPXA10 model).
const (
	SDRAMBase  = 0x0000_0000
	DPBase     = 0x4000_0000
	IMURegBase = 0x7fff_c000
	UserBase   = 0x0001_0000 // start of the process arena inside SDRAM
)

// Spec describes one board model.
type Spec struct {
	Name       string
	CPUHz      int64
	BusDiv     int64 // CPU-to-AHB clock ratio
	SDRAMBytes int
	FlashBytes int
	DPBytes    int
	PageLog    uint
	SDRAM      mem.SDRAMTiming
	Cache      cpu.CacheConfig
	Cost       cpu.CostModel
	KCosts     kernel.Costs
	IMUMode    imu.Mode
}

// EPXA1 is the paper's board: ARM stripe at 133 MHz, 64 MB SDRAM, 4 MB
// flash, 16 KB dual-port RAM in eight 2 KB pages.
func EPXA1() Spec {
	return Spec{
		Name:       "EPXA1",
		CPUHz:      133_000_000,
		BusDiv:     2,
		SDRAMBytes: 64 << 20,
		FlashBytes: 4 << 20,
		DPBytes:    16 * 1024,
		PageLog:    11,
		SDRAM:      mem.DefaultSDRAMTiming(),
		Cache:      cpu.DefaultCacheConfig(),
		Cost:       cpu.DefaultCostModel(),
		KCosts:     kernel.DefaultCosts(),
		IMUMode:    imu.MultiCycle,
	}
}

// EPXA4 doubles the dual-port RAM (sixteen 2 KB pages).
func EPXA4() Spec {
	s := EPXA1()
	s.Name = "EPXA4"
	s.DPBytes = 32 * 1024
	s.SDRAMBytes = 128 << 20
	return s
}

// EPXA10 doubles it again (thirty-two 2 KB pages).
func EPXA10() Spec {
	s := EPXA1()
	s.Name = "EPXA10"
	s.DPBytes = 64 * 1024
	s.SDRAMBytes = 256 << 20
	return s
}

// SpecByName resolves a board name.
func SpecByName(name string) (Spec, bool) {
	switch name {
	case "", "EPXA1", "epxa1":
		return EPXA1(), true
	case "EPXA4", "epxa4":
		return EPXA4(), true
	case "EPXA10", "epxa10":
		return EPXA10(), true
	}
	return Spec{}, false
}

// Board is an assembled platform.
type Board struct {
	Spec  Spec
	SDRAM *mem.SDRAM
	Flash *mem.Flash
	DP    *mem.DPRAM
	Bus   *amba.Bus
	CPU   *cpu.Core
	Kern  *kernel.Kernel
	IMU   *imu.IMU
}

// NewBoard wires a board from its spec.
func NewBoard(spec Spec) (*Board, error) {
	sdram := mem.NewSDRAM(spec.SDRAMBytes, spec.SDRAM)
	flash := mem.NewFlash(spec.FlashBytes)
	dp, err := mem.NewDPRAM(spec.DPBytes, 1<<spec.PageLog)
	if err != nil {
		return nil, fmt.Errorf("platform %s: %w", spec.Name, err)
	}
	u, err := imu.New(imu.Config{PageShift: spec.PageLog, Entries: dp.Pages(), Mode: spec.IMUMode}, dp)
	if err != nil {
		return nil, fmt.Errorf("platform %s: %w", spec.Name, err)
	}
	bus := amba.NewBus()
	if err := bus.Map(SDRAMBase, uint32(spec.SDRAMBytes), &amba.SDRAMSlave{RAM: sdram}); err != nil {
		return nil, err
	}
	if err := bus.Map(DPBase, uint32(spec.DPBytes), &amba.DPRAMSlave{RAM: dp}); err != nil {
		return nil, err
	}
	if err := bus.Map(IMURegBase, imu.RegWindowAll, u.Slave()); err != nil {
		return nil, err
	}
	core, err := cpu.NewCore(spec.CPUHz, spec.Cost, spec.Cache, sdram)
	if err != nil {
		return nil, err
	}
	kern, err := kernel.New(core, bus, spec.KCosts, spec.BusDiv, UserBase, uint32(spec.SDRAMBytes))
	if err != nil {
		return nil, err
	}
	return &Board{
		Spec:  spec,
		SDRAM: sdram,
		Flash: flash,
		DP:    dp,
		Bus:   bus,
		CPU:   core,
		Kern:  kern,
		IMU:   u,
	}, nil
}

// HW is a per-application hardware assembly: the clock domains running a
// loaded coprocessor against the board's IMU.
type HW struct {
	Eng      *sim.Engine
	IMUDom   *sim.Domain
	CoproDom *sim.Domain
	Port     *copro.Port
	Core     copro.Coprocessor
}

// Assemble builds the clock domains for a loaded coprocessor. The IMU and
// core frequencies come from the bitstream header; they must be an integer
// ratio so the stall handshake lines up.
func (b *Board) Assemble(coreHz, imuHz int64, core copro.Coprocessor) (*HW, error) {
	if core == nil {
		return nil, fmt.Errorf("platform: nil coprocessor")
	}
	if coreHz <= 0 || imuHz <= 0 {
		return nil, fmt.Errorf("platform: non-positive clocks %d/%d", coreHz, imuHz)
	}
	// A previous multi-session assembly may have left the IMU with several
	// channels; the single-coprocessor shape uses exactly one.
	if b.IMU.Channels() != 1 {
		if err := b.IMU.SetChannels(1); err != nil {
			return nil, err
		}
	}
	port := copro.NewPort()
	b.IMU.Bind(port)
	core.Bind(port)
	core.ResetCore()

	eng := sim.NewEngine()
	imuDom := eng.NewDomain("imu", imuHz)
	coproDom := imuDom
	if coreHz != imuHz {
		coproDom = eng.NewDomain("copro", coreHz)
	}
	coproDom.Attach(core)
	imuDom.Attach(b.IMU)
	if err := eng.Validate(); err != nil {
		return nil, err
	}
	return &HW{Eng: eng, IMUDom: imuDom, CoproDom: coproDom, Port: port, Core: core}, nil
}

// CoproSlot describes one loaded coprocessor of a multi-session assembly:
// the core model and the clock it runs at. Every slot shares the board's
// IMU (one channel each) and its dual-port RAM.
type CoproSlot struct {
	Core   copro.Coprocessor
	CoreHz int64
}

// MultiHW is a multi-coprocessor hardware assembly: one engine driving the
// board's IMU plus one clock domain and port per loaded coprocessor —
// the FOS/SYNERGY-style shell in which several accelerators sit behind one
// memory interface.
type MultiHW struct {
	Eng    *sim.Engine
	IMUDom *sim.Domain
	Doms   []*sim.Domain // per-slot core domain (may alias IMUDom)
	Ports  []*copro.Port
	Cores  []copro.Coprocessor
}

// AssembleMulti builds the clock domains for several loaded coprocessors
// sharing the board's IMU: channel i of the IMU serves slots[i]. All clock
// pairs must form integer ratios (the shared shell fixes one clock plan for
// every tenant, so cores are "recompiled" against divisors of the shell's
// IMU clock). Cores attach before the IMU so the deterministic order is
// fixed; two-phase semantics make the order observationally irrelevant.
func (b *Board) AssembleMulti(imuHz int64, slots []CoproSlot) (*MultiHW, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("platform: no coprocessor slots")
	}
	if imuHz <= 0 {
		return nil, fmt.Errorf("platform: non-positive IMU clock %d", imuHz)
	}
	if err := b.IMU.SetChannels(len(slots)); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	imuDom := eng.NewDomain("imu", imuHz)
	hw := &MultiHW{Eng: eng, IMUDom: imuDom}
	for i, sl := range slots {
		if sl.Core == nil {
			return nil, fmt.Errorf("platform: nil coprocessor in slot %d", i)
		}
		if sl.CoreHz <= 0 {
			return nil, fmt.Errorf("platform: non-positive clock %d in slot %d", sl.CoreHz, i)
		}
		port := copro.NewPort()
		b.IMU.BindCh(i, port)
		sl.Core.Bind(port)
		sl.Core.ResetCore()
		dom := imuDom
		if sl.CoreHz != imuHz {
			dom = eng.NewDomain(fmt.Sprintf("copro%d", i), sl.CoreHz)
		}
		dom.Attach(sl.Core)
		hw.Doms = append(hw.Doms, dom)
		hw.Ports = append(hw.Ports, port)
		hw.Cores = append(hw.Cores, sl.Core)
	}
	imuDom.Attach(b.IMU)
	if err := eng.Validate(); err != nil {
		return nil, err
	}
	return hw, nil
}
