package platform

import (
	"testing"

	"repro/internal/copro/vecadd"
)

func TestSpecsAreConsistent(t *testing.T) {
	for _, spec := range []Spec{EPXA1(), EPXA4(), EPXA10()} {
		if spec.DPBytes%(1<<spec.PageLog) != 0 {
			t.Errorf("%s: DP RAM %d not a multiple of page size", spec.Name, spec.DPBytes)
		}
		if spec.CPUHz <= 0 || spec.BusDiv <= 0 {
			t.Errorf("%s: bad clocks", spec.Name)
		}
	}
	if EPXA4().DPBytes <= EPXA1().DPBytes || EPXA10().DPBytes <= EPXA4().DPBytes {
		t.Error("DP RAM sizes must grow EPXA1 < EPXA4 < EPXA10")
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"", "EPXA1", "epxa4", "EPXA10"} {
		if _, ok := SpecByName(name); !ok {
			t.Errorf("SpecByName(%q) failed", name)
		}
	}
	if _, ok := SpecByName("EPXA99"); ok {
		t.Error("unknown board accepted")
	}
}

func TestNewBoardWiresAddressMap(t *testing.T) {
	b, err := NewBoard(EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	// SDRAM reachable at its base.
	if err := b.Bus.Write32(SDRAMBase+0x100, 0x11223344); err != nil {
		t.Fatal(err)
	}
	// DP RAM reachable through its window.
	if err := b.Bus.Write32(DPBase+4, 0x55667788); err != nil {
		t.Fatal(err)
	}
	v, err := b.DP.ReadB(4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x55667788 {
		t.Fatalf("DP RAM via bus = %#x", v)
	}
	// IMU registers reachable.
	if _, err := b.Bus.Read32(IMURegBase); err != nil {
		t.Fatal(err)
	}
	// The largest board must also wire cleanly (no address overlap).
	if _, err := NewBoard(EPXA10()); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleValidatesClocks(t *testing.T) {
	b, err := NewBoard(EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	core := vecadd.New()
	if _, err := b.Assemble(0, 40_000_000, core); err == nil {
		t.Fatal("zero core clock accepted")
	}
	if _, err := b.Assemble(40_000_000, 40_000_000, nil); err == nil {
		t.Fatal("nil core accepted")
	}
	// Non-integer ratio must be rejected by the engine validation.
	if _, err := b.Assemble(7_000_000, 24_000_000, core); err == nil {
		t.Fatal("non-integer clock ratio accepted")
	}
	hw, err := b.Assemble(6_000_000, 24_000_000, core)
	if err != nil {
		t.Fatal(err)
	}
	if hw.CoproDom == hw.IMUDom {
		t.Fatal("distinct clocks must produce distinct domains")
	}
	hw2, err := b.Assemble(40_000_000, 40_000_000, core)
	if err != nil {
		t.Fatal(err)
	}
	if hw2.CoproDom != hw2.IMUDom {
		t.Fatal("equal clocks should share one domain")
	}
}

// TestSlotStagingBuffer pins the pre-staged reconfiguration primitives: a
// bitstream staged behind a resident core leaves the slot's ticking and
// identity untouched, CommitSlot swaps it in and rebinds the IMU channel,
// TakeStage empties the buffer, and CancelStage discards a stage without
// disturbing the resident core.
func TestSlotStagingBuffer(t *testing.T) {
	b, err := NewBoard(EPXA1())
	if err != nil {
		t.Fatal(err)
	}
	hw, err := b.AssembleShell(24_000_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	hw.LoadSlot(b, 0, vecadd.New())
	if got := hw.Slots[0].Resident(); got != "vecadd" {
		t.Fatalf("resident = %q, want vecadd", got)
	}

	// An empty slot has an empty staging buffer; committing it is an error.
	if got := hw.Slots[0].Staged(); got != "" {
		t.Fatalf("fresh slot stages %q", got)
	}
	if err := hw.CommitSlot(b, 0); err == nil {
		t.Fatal("CommitSlot with an empty staging buffer succeeded")
	}

	// Staging does not disturb the resident core.
	staged := vecadd.New()
	hw.Slots[0].Stage(staged)
	if got := hw.Slots[0].Resident(); got != "vecadd" {
		t.Fatalf("staging evicted the resident core: resident = %q", got)
	}
	if got := hw.Slots[0].Staged(); got != "vecadd" {
		t.Fatalf("staged = %q, want vecadd", got)
	}

	// Cancel discards only the buffer.
	hw.Slots[0].CancelStage()
	if got := hw.Slots[0].Staged(); got != "" {
		t.Fatalf("cancel left %q staged", got)
	}
	if hw.Slots[0].Core() == nil {
		t.Fatal("cancel dropped the resident core")
	}

	// Commit swaps the staged core in as resident over a fresh port.
	hw.Slots[0].Stage(staged)
	oldPort := hw.Slots[0].Port()
	if err := hw.CommitSlot(b, 0); err != nil {
		t.Fatal(err)
	}
	if hw.Slots[0].Core() != staged {
		t.Fatal("commit did not make the staged core resident")
	}
	if hw.Slots[0].Staged() != "" {
		t.Fatal("commit left the staging buffer full")
	}
	if hw.Slots[0].Port() == oldPort {
		t.Fatal("commit reused the evicted core's port")
	}

	// TakeStage empties the buffer and hands the core back.
	other := vecadd.New()
	hw.Slots[1].Stage(other)
	if got := hw.Slots[1].TakeStage(); got != other {
		t.Fatalf("TakeStage returned %v", got)
	}
	if got := hw.Slots[1].TakeStage(); got != nil {
		t.Fatalf("second TakeStage returned %v, want nil", got)
	}
}
