// Package stats provides the execution-time accounting used throughout the
// reproduction: a Timeline that accumulates the paper's measured components
// (§4.1) and formatting helpers for the experiment tables.
package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Component is one bucket of the execution-time breakdown.
type Component int

const (
	// HW is time spent in the coprocessor and the IMU (computation,
	// translated memory accesses, stalls) — the paper's "hardware
	// execution time".
	HW Component = iota
	// SWDP is operating-system time moving data between user-space memory
	// and the dual-port RAM — "software execution time for the dual-port
	// RAM management".
	SWDP
	// SWIMU is operating-system time interrogating and reprogramming the
	// IMU (fault decode, TLB updates, restart) — "software execution time
	// for the IMU management".
	SWIMU
	// SWOS is residual operating-system overhead (system-call entry/exit,
	// process wake-up). The paper folds this into its software components;
	// reports keep it separate and also publish the folded view.
	SWOS

	numComponents
)

// String implements fmt.Stringer.
func (c Component) String() string {
	switch c {
	case HW:
		return "HW"
	case SWDP:
		return "SW(DP)"
	case SWIMU:
		return "SW(IMU)"
	case SWOS:
		return "SW(OS)"
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// Timeline accumulates picoseconds per component. The zero value is ready
// to use.
type Timeline struct {
	ps [numComponents]float64
}

// Add accumulates d picoseconds into component c.
func (t *Timeline) Add(c Component, ps float64) {
	if c < 0 || c >= numComponents || ps < 0 {
		panic(fmt.Sprintf("stats: bad Add(%v, %v)", c, ps))
	}
	t.ps[c] += ps
}

// AddCycles accumulates n cycles of a freqHz clock into component c.
func (t *Timeline) AddCycles(c Component, n int64, freqHz int64) {
	t.Add(c, float64(n)*1e12/float64(freqHz))
}

// Ps returns the accumulated picoseconds of component c.
func (t *Timeline) Ps(c Component) float64 { return t.ps[c] }

// Duration returns component c as a time.Duration.
func (t *Timeline) Duration(c Component) time.Duration {
	return time.Duration(t.ps[c] / 1e3 * float64(time.Nanosecond))
}

// TotalPs returns the sum over all components.
func (t *Timeline) TotalPs() float64 {
	var s float64
	for _, v := range t.ps {
		s += v
	}
	return s
}

// Total returns the sum over all components as a duration.
func (t *Timeline) Total() time.Duration {
	return time.Duration(t.TotalPs() / 1e3 * float64(time.Nanosecond))
}

// Fraction returns component c as a fraction of the total (0 if empty).
func (t *Timeline) Fraction(c Component) float64 {
	tot := t.TotalPs()
	if tot == 0 {
		return 0
	}
	return t.ps[c] / tot
}

// Reset zeroes the timeline.
func (t *Timeline) Reset() { t.ps = [numComponents]float64{} }

// Ms formats picoseconds as milliseconds with two decimals.
func Ms(ps float64) string { return fmt.Sprintf("%.2f ms", ps/1e9) }

// Table is a simple fixed-column text table for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (tb *Table) AddRow(cells ...string) { tb.Rows = append(tb.Rows, cells) }

// Render formats the table with aligned columns.
func (tb *Table) Render() string {
	widths := make([]int, len(tb.Headers))
	for i, h := range tb.Headers {
		widths[i] = len(h)
	}
	for _, r := range tb.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if tb.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", tb.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(tb.Headers)
	sep := make([]string, len(tb.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range tb.Rows {
		writeRow(r)
	}
	return b.String()
}

// NearestRank returns the nearest-rank p-quantile (0 < p <= 1) of vals,
// which must already be sorted ascending. An empty input has no latency
// population to rank, so the result is an explicit 0 — never an index panic
// or a NaN — letting aggregate reports over an empty (for example,
// all-rejected) completion set stay zero-valued.
func NearestRank(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("stats: NearestRank quantile %v outside (0,1]", p))
	}
	i := int(math.Ceil(p*float64(len(vals)))) - 1
	if i < 0 {
		i = 0
	}
	return vals[i]
}

// Bar renders an ASCII stacked bar of width chars for the given component
// picosecond values against a full-scale value (Figure 8/9 style charts).
func Bar(width int, fullScalePs float64, parts ...float64) string {
	if width <= 0 || fullScalePs <= 0 {
		return ""
	}
	glyphs := []byte{'#', '=', '.', '~'}
	var b strings.Builder
	for i, p := range parts {
		n := int(p / fullScalePs * float64(width))
		g := glyphs[i%len(glyphs)]
		for j := 0; j < n; j++ {
			b.WriteByte(g)
		}
	}
	return b.String()
}
