// Package stats provides the execution-time accounting used throughout the
// reproduction: a Timeline that accumulates the paper's measured components
// (§4.1) and formatting helpers for the experiment tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Component is one bucket of the execution-time breakdown.
type Component int

const (
	// HW is time spent in the coprocessor and the IMU (computation,
	// translated memory accesses, stalls) — the paper's "hardware
	// execution time".
	HW Component = iota
	// SWDP is operating-system time moving data between user-space memory
	// and the dual-port RAM — "software execution time for the dual-port
	// RAM management".
	SWDP
	// SWIMU is operating-system time interrogating and reprogramming the
	// IMU (fault decode, TLB updates, restart) — "software execution time
	// for the IMU management".
	SWIMU
	// SWOS is residual operating-system overhead (system-call entry/exit,
	// process wake-up). The paper folds this into its software components;
	// reports keep it separate and also publish the folded view.
	SWOS

	numComponents
)

// String implements fmt.Stringer.
func (c Component) String() string {
	switch c {
	case HW:
		return "HW"
	case SWDP:
		return "SW(DP)"
	case SWIMU:
		return "SW(IMU)"
	case SWOS:
		return "SW(OS)"
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// Timeline accumulates picoseconds per component. The zero value is ready
// to use.
type Timeline struct {
	ps [numComponents]float64
}

// Add accumulates d picoseconds into component c.
func (t *Timeline) Add(c Component, ps float64) {
	if c < 0 || c >= numComponents || ps < 0 {
		panic(fmt.Sprintf("stats: bad Add(%v, %v)", c, ps))
	}
	t.ps[c] += ps
}

// AddCycles accumulates n cycles of a freqHz clock into component c.
func (t *Timeline) AddCycles(c Component, n int64, freqHz int64) {
	t.Add(c, float64(n)*1e12/float64(freqHz))
}

// Ps returns the accumulated picoseconds of component c.
func (t *Timeline) Ps(c Component) float64 { return t.ps[c] }

// Duration returns component c as a time.Duration.
func (t *Timeline) Duration(c Component) time.Duration {
	return time.Duration(t.ps[c] / 1e3 * float64(time.Nanosecond))
}

// TotalPs returns the sum over all components.
func (t *Timeline) TotalPs() float64 {
	var s float64
	for _, v := range t.ps {
		s += v
	}
	return s
}

// Total returns the sum over all components as a duration.
func (t *Timeline) Total() time.Duration {
	return time.Duration(t.TotalPs() / 1e3 * float64(time.Nanosecond))
}

// Fraction returns component c as a fraction of the total (0 if empty).
func (t *Timeline) Fraction(c Component) float64 {
	tot := t.TotalPs()
	if tot == 0 {
		return 0
	}
	return t.ps[c] / tot
}

// Reset zeroes the timeline.
func (t *Timeline) Reset() { t.ps = [numComponents]float64{} }

// Ms formats picoseconds as milliseconds with two decimals.
func Ms(ps float64) string { return fmt.Sprintf("%.2f ms", ps/1e9) }

// Table is a simple fixed-column text table for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (tb *Table) AddRow(cells ...string) { tb.Rows = append(tb.Rows, cells) }

// Render formats the table with aligned columns.
func (tb *Table) Render() string {
	widths := make([]int, len(tb.Headers))
	for i, h := range tb.Headers {
		widths[i] = len(h)
	}
	for _, r := range tb.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if tb.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", tb.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(tb.Headers)
	sep := make([]string, len(tb.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range tb.Rows {
		writeRow(r)
	}
	return b.String()
}

// NearestRank returns the nearest-rank p-quantile (0 < p <= 1) of vals,
// which must already be sorted ascending. An empty input has no latency
// population to rank, so the result is an explicit 0 — never an index panic
// or a NaN — letting aggregate reports over an empty (for example,
// all-rejected) completion set stay zero-valued.
func NearestRank(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("stats: NearestRank quantile %v outside (0,1]", p))
	}
	i := int(math.Ceil(p*float64(len(vals)))) - 1
	if i < 0 {
		i = 0
	}
	return vals[i]
}

// Histogram is a fixed-bucket distribution accumulator for the telemetry
// layer: samples land in the first bucket whose upper bound is >= the value,
// with an implicit +Inf bucket past the last bound. Buckets make the state
// mergeable across independent runs (a fleet folds per-board histograms into
// one) at the cost of quantile resolution — Quantile interpolates within the
// winning bucket. All state is exported so snapshots serialise directly.
type Histogram struct {
	Bounds []float64 // bucket upper bounds, strictly ascending
	Counts []uint64  // len(Bounds)+1; the last bucket is (Bounds[last], +Inf)
	Sum    float64
	N      uint64
	Min    float64 // valid while N > 0
	Max    float64 // valid while N > 0
}

// NewHistogram returns a histogram over the given bucket upper bounds, which
// must be strictly ascending and non-empty.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending at %d: %g <= %g",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
	}
}

// Observe accumulates one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
	h.Sum += v
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
}

// Merge folds o into h. The two histograms must share identical bucket
// bounds; merging is commutative and associative in the bucket counts and N
// (exact integer adds), and associative in Sum up to float rounding.
func (h *Histogram) Merge(o *Histogram) error {
	if len(o.Bounds) != len(h.Bounds) {
		return fmt.Errorf("stats: merging histograms with %d vs %d bounds", len(o.Bounds), len(h.Bounds))
	}
	for i := range h.Bounds {
		if h.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("stats: merging histograms with different bounds at %d: %g vs %g",
				i, h.Bounds[i], o.Bounds[i])
		}
	}
	if o.N > 0 {
		if h.N == 0 || o.Min < h.Min {
			h.Min = o.Min
		}
		if h.N == 0 || o.Max > h.Max {
			h.Max = o.Max
		}
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
	h.N += o.N
	return nil
}

// Mean returns the arithmetic mean of the observed samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile estimates the p-quantile (0 < p <= 1) from the bucket counts:
// the bucket holding the nearest-rank sample is located exactly, and the
// value is interpolated linearly inside it (clamped to the observed Min/Max,
// so a single-sample histogram reports that sample). An empty histogram
// reports an explicit 0, matching NearestRank.
func (h *Histogram) Quantile(p float64) float64 {
	if h.N == 0 {
		return 0
	}
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("stats: histogram quantile %v outside (0,1]", p))
	}
	rank := uint64(math.Ceil(p * float64(h.N)))
	if rank == 0 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range h.Counts {
		if cum+c < rank {
			cum += c
			continue
		}
		// The rank-th sample sits in bucket i: interpolate between the
		// bucket's edges by the rank's position inside it, clamped to the
		// observed extremes (the implicit +Inf bucket has no upper edge).
		lo := h.Min
		if i > 0 && h.Bounds[i-1] > lo {
			lo = h.Bounds[i-1]
		}
		hi := h.Max
		if i < len(h.Bounds) && h.Bounds[i] < hi {
			hi = h.Bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		frac := float64(rank-cum) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.Max
}

// Bar renders an ASCII stacked bar of width chars for the given component
// picosecond values against a full-scale value (Figure 8/9 style charts).
func Bar(width int, fullScalePs float64, parts ...float64) string {
	if width <= 0 || fullScalePs <= 0 {
		return ""
	}
	glyphs := []byte{'#', '=', '.', '~'}
	var b strings.Builder
	for i, p := range parts {
		n := int(p / fullScalePs * float64(width))
		g := glyphs[i%len(glyphs)]
		for j := 0; j < n; j++ {
			b.WriteByte(g)
		}
	}
	return b.String()
}
