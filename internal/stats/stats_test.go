package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTimelineAccumulates(t *testing.T) {
	var tl Timeline
	tl.Add(HW, 1e9)                     // 1 ms
	tl.Add(SWDP, 5e8)                   // 0.5 ms
	tl.Add(SWIMU, 25e7)                 // 0.25 ms
	tl.AddCycles(SWOS, 1000, 1_000_000) // 1000 cycles at 1 MHz = 1 ms
	if got := tl.Ps(HW); got != 1e9 {
		t.Fatalf("HW = %v", got)
	}
	if got := tl.TotalPs(); got != 1e9+5e8+25e7+1e9 {
		t.Fatalf("total = %v", got)
	}
	if f := tl.Fraction(HW); f < 0.36 || f > 0.37 {
		t.Fatalf("fraction = %v", f)
	}
	if d := tl.Duration(HW); d != time.Millisecond {
		t.Fatalf("duration = %v, want 1ms (1e9 ps)", d)
	}
	tl.Reset()
	if tl.TotalPs() != 0 {
		t.Fatal("reset failed")
	}
	if tl.Fraction(HW) != 0 {
		t.Fatal("fraction of empty timeline not 0")
	}
}

func TestAddPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var tl Timeline
	tl.Add(HW, -1)
}

func TestComponentStrings(t *testing.T) {
	for c, want := range map[Component]string{
		HW: "HW", SWDP: "SW(DP)", SWIMU: "SW(IMU)", SWOS: "SW(OS)",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if !strings.Contains(Component(99).String(), "99") {
		t.Error("unknown component string unhelpful")
	}
}

func TestQuickTimelineTotalIsSum(t *testing.T) {
	f := func(a, b, c, d uint32) bool {
		var tl Timeline
		tl.Add(HW, float64(a))
		tl.Add(SWDP, float64(b))
		tl.Add(SWIMU, float64(c))
		tl.Add(SWOS, float64(d))
		return tl.TotalPs() == float64(a)+float64(b)+float64(c)+float64(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "2")
	out := tb.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	// Columns align: every row has the same prefix width for column 2.
	idx := strings.Index(lines[1], "value")
	for _, l := range lines[3:] {
		if len(l) <= idx {
			t.Fatalf("row too short: %q", l)
		}
	}
}

// TestNearestRankEmptyInput is the regression test for the aggregate
// edge-case fix: the serving layer's p99 used to index lats[ceil(.99*n)-1]
// directly, which panics with index -1 on an empty completion set (every
// job rejected by admission control). NearestRank must return an explicit
// 0 for n=0 instead.
func TestNearestRankEmptyInput(t *testing.T) {
	if got := NearestRank(nil, 0.99); got != 0 {
		t.Fatalf("NearestRank(nil, 0.99) = %v, want explicit 0", got)
	}
	if got := NearestRank([]float64{}, 0.5); got != 0 {
		t.Fatalf("NearestRank(empty, 0.5) = %v, want explicit 0", got)
	}
}

func TestNearestRank(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range []struct {
		p    float64
		want float64
	}{
		{0.99, 10}, {1, 10}, {0.5, 5}, {0.1, 1}, {0.01, 1},
	} {
		if got := NearestRank(vals, c.p); got != c.want {
			t.Errorf("NearestRank(1..10, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := NearestRank([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-element p99 = %v, want 7", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range quantile did not panic")
		}
	}()
	NearestRank(vals, 1.5)
}

func TestMsFormatting(t *testing.T) {
	if Ms(1.5e9) != "1.50 ms" {
		t.Fatalf("Ms = %q", Ms(1.5e9))
	}
}

func TestBar(t *testing.T) {
	b := Bar(10, 100, 50, 30)
	if len(b) != 8 {
		t.Fatalf("bar %q length %d, want 8", b, len(b))
	}
	if !strings.HasPrefix(b, "#####") {
		t.Fatalf("bar %q should start with five #", b)
	}
	if Bar(0, 100, 50) != "" || Bar(10, 0, 50) != "" {
		t.Fatal("degenerate bars should be empty")
	}
}
