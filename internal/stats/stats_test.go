package stats

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTimelineAccumulates(t *testing.T) {
	var tl Timeline
	tl.Add(HW, 1e9)                     // 1 ms
	tl.Add(SWDP, 5e8)                   // 0.5 ms
	tl.Add(SWIMU, 25e7)                 // 0.25 ms
	tl.AddCycles(SWOS, 1000, 1_000_000) // 1000 cycles at 1 MHz = 1 ms
	if got := tl.Ps(HW); got != 1e9 {
		t.Fatalf("HW = %v", got)
	}
	if got := tl.TotalPs(); got != 1e9+5e8+25e7+1e9 {
		t.Fatalf("total = %v", got)
	}
	if f := tl.Fraction(HW); f < 0.36 || f > 0.37 {
		t.Fatalf("fraction = %v", f)
	}
	if d := tl.Duration(HW); d != time.Millisecond {
		t.Fatalf("duration = %v, want 1ms (1e9 ps)", d)
	}
	tl.Reset()
	if tl.TotalPs() != 0 {
		t.Fatal("reset failed")
	}
	if tl.Fraction(HW) != 0 {
		t.Fatal("fraction of empty timeline not 0")
	}
}

func TestAddPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var tl Timeline
	tl.Add(HW, -1)
}

func TestComponentStrings(t *testing.T) {
	for c, want := range map[Component]string{
		HW: "HW", SWDP: "SW(DP)", SWIMU: "SW(IMU)", SWOS: "SW(OS)",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if !strings.Contains(Component(99).String(), "99") {
		t.Error("unknown component string unhelpful")
	}
}

func TestQuickTimelineTotalIsSum(t *testing.T) {
	f := func(a, b, c, d uint32) bool {
		var tl Timeline
		tl.Add(HW, float64(a))
		tl.Add(SWDP, float64(b))
		tl.Add(SWIMU, float64(c))
		tl.Add(SWOS, float64(d))
		return tl.TotalPs() == float64(a)+float64(b)+float64(c)+float64(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "2")
	out := tb.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	// Columns align: every row has the same prefix width for column 2.
	idx := strings.Index(lines[1], "value")
	for _, l := range lines[3:] {
		if len(l) <= idx {
			t.Fatalf("row too short: %q", l)
		}
	}
}

// TestNearestRankEmptyInput is the regression test for the aggregate
// edge-case fix: the serving layer's p99 used to index lats[ceil(.99*n)-1]
// directly, which panics with index -1 on an empty completion set (every
// job rejected by admission control). NearestRank must return an explicit
// 0 for n=0 instead.
func TestNearestRankEmptyInput(t *testing.T) {
	if got := NearestRank(nil, 0.99); got != 0 {
		t.Fatalf("NearestRank(nil, 0.99) = %v, want explicit 0", got)
	}
	if got := NearestRank([]float64{}, 0.5); got != 0 {
		t.Fatalf("NearestRank(empty, 0.5) = %v, want explicit 0", got)
	}
}

func TestNearestRank(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range []struct {
		p    float64
		want float64
	}{
		{0.99, 10}, {1, 10}, {0.5, 5}, {0.1, 1}, {0.01, 1},
	} {
		if got := NearestRank(vals, c.p); got != c.want {
			t.Errorf("NearestRank(1..10, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := NearestRank([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-element p99 = %v, want 7", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range quantile did not panic")
		}
	}()
	NearestRank(vals, 1.5)
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	if h.N != 0 || h.Sum != 0 {
		t.Fatalf("fresh histogram not empty: N=%d Sum=%v", h.N, h.Sum)
	}
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile(0.99) = %v, want explicit 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	h.Observe(42)
	if h.N != 1 || h.Sum != 42 || h.Min != 42 || h.Max != 42 {
		t.Fatalf("single-sample state wrong: %+v", h)
	}
	// 42 lands in bucket (10, 100]: index 2.
	if h.Counts[2] != 1 {
		t.Fatalf("counts = %v, want sample in bucket 2", h.Counts)
	}
	// With one sample, every quantile is that sample (Min/Max clamp the
	// interpolation down to a point).
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(p); got != 42 {
			t.Errorf("Quantile(%v) = %v, want 42", p, got)
		}
	}
	if got := h.Mean(); got != 42 {
		t.Errorf("Mean = %v, want 42", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(1, 10)
	for _, v := range []float64{0.5, 1, 1.0001, 10, 11, 1e9} {
		h.Observe(v)
	}
	// Upper bounds are inclusive: 1 → bucket 0, 10 → bucket 1, 11 → +Inf.
	want := []uint64{2, 2, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Min != 0.5 || h.Max != 1e9 {
		t.Fatalf("min/max = %v/%v", h.Min, h.Max)
	}
}

// TestHistogramMergeAssociativity checks (a⊕b)⊕c == a⊕(b⊕c) over
// integer-valued samples, where float Sum addition is exact so the whole
// state — not just the counts — must match bit for bit. This is what lets
// the fleet layer fold per-board histograms in board order without the fold
// order leaking into the exported snapshot.
func TestHistogramMergeAssociativity(t *testing.T) {
	bounds := []float64{2, 8, 32, 128}
	build := func(samples ...float64) *Histogram {
		h := NewHistogram(bounds...)
		for _, v := range samples {
			h.Observe(v)
		}
		return h
	}
	a := build(1, 5, 9)
	b := build(200, 3)
	c := build(64, 64, 7, 1)

	left := build()
	for _, o := range []*Histogram{a, b, c} {
		if err := left.Merge(o); err != nil {
			t.Fatal(err)
		}
	}
	bc := build()
	for _, o := range []*Histogram{b, c} {
		if err := bc.Merge(o); err != nil {
			t.Fatal(err)
		}
	}
	right := build()
	if err := right.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative:\n left %+v\nright %+v", left, right)
	}
	if left.N != 9 || left.Min != 1 || left.Max != 200 {
		t.Fatalf("merged aggregate wrong: %+v", left)
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	a := NewHistogram(1, 10)
	if err := a.Merge(NewHistogram(1, 10, 100)); err == nil {
		t.Fatal("merge with different bound count did not error")
	}
	if err := a.Merge(NewHistogram(1, 20)); err == nil {
		t.Fatal("merge with different bound values did not error")
	}
	b := NewHistogram(1, 10)
	b.Observe(5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N != 1 {
		t.Fatalf("compatible merge lost the sample: %+v", a)
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	h.Observe(2) // bucket [_, 10]
	for i := 0; i < 9; i++ {
		h.Observe(15) // nine samples in bucket (10, 20]
	}
	// Median rank 5 of 10 is the 4th of 9 samples in bucket (10, 20],
	// whose edges clamp to [10, 15] (observed Max is 15): 10 + 5*4/9.
	if want := 10 + 5*4.0/9; h.Quantile(0.5) != want {
		t.Fatalf("Quantile(0.5) = %v, want %v", h.Quantile(0.5), want)
	}
	// All samples identical in a bucket: the clamp collapses the bucket to
	// a point, so every quantile inside it is exact.
	same := NewHistogram(10, 20)
	for i := 0; i < 10; i++ {
		same.Observe(15)
	}
	if got := same.Quantile(0.5); got != 15 {
		t.Fatalf("all-equal Quantile(0.5) = %v, want 15", got)
	}
	// The top quantile reaches the bucket ceiling, clamped to Max.
	if got := h.Quantile(1); got != 15 {
		t.Fatalf("Quantile(1) = %v, want 15", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range histogram quantile did not panic")
		}
	}()
	h.Quantile(0)
}

func TestNewHistogramValidatesBounds(t *testing.T) {
	for _, c := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", c)
				}
			}()
			NewHistogram(c...)
		}()
	}
}

func TestMsFormatting(t *testing.T) {
	if Ms(1.5e9) != "1.50 ms" {
		t.Fatalf("Ms = %q", Ms(1.5e9))
	}
}

func TestBar(t *testing.T) {
	b := Bar(10, 100, 50, 30)
	if len(b) != 8 {
		t.Fatalf("bar %q length %d, want 8", b, len(b))
	}
	if !strings.HasPrefix(b, "#####") {
		t.Fatalf("bar %q should start with five #", b)
	}
	if Bar(0, 100, 50) != "" || Bar(10, 0, 50) != "" {
		t.Fatal("degenerate bars should be empty")
	}
}
