// Package exp defines one runnable experiment per figure and table of the
// paper's evaluation (§4), plus ablations and the multi-coprocessor sessions experiment.
// Each experiment regenerates the same rows/series the paper reports;
// cmd/experiments renders them, and the root-level benchmarks wrap them.
package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ideautil"
	"repro/internal/platform"
	"repro/internal/ref"
	"repro/internal/stats"
)

// Result is one experiment's rendered outcome plus machine-readable series
// for the shape assertions in tests.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
	// Series maps a label (e.g. "speedup/4KB") to a value for tests.
	Series map[string]float64
}

// Experiment is a registered, runnable reproduction artefact.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Result, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "FIG3", Title: "Motivating example: programming-model comparison (Figure 3)", Run: RunFig3},
		{ID: "FIG7", Title: "Translated read access timing (Figure 7)", Run: RunFig7},
		{ID: "FIG8", Title: "adpcmdecode execution times (Figure 8)", Run: RunFig8},
		{ID: "FIG9", Title: "IDEA execution times (Figure 9)", Run: RunFig9},
		{ID: "OVERHEAD", Title: "Virtualisation overheads (§4.1 text)", Run: RunOverhead},
		{ID: "PORT", Title: "Portability across devices (§4, §6)", Run: RunPortability},
		{ID: "POLICY", Title: "Ablation: replacement policies (§3.3)", Run: RunPolicyAblation},
		{ID: "BOUNCE", Title: "Ablation: double-transfer (bounce) page movement (§4.1)", Run: RunBounceAblation},
		{ID: "PIPELINE", Title: "Ablation: pipelined IMU (§4.1, §6)", Run: RunPipelineAblation},
		{ID: "PREFETCH", Title: "Ablation: sequential prefetch (§3.3)", Run: RunPrefetchAblation},
		{ID: "PAGESIZE", Title: "Ablation: dual-port RAM page size (§3.3)", Run: RunPageSizeAblation},
		{ID: "CHUNK", Title: "Ablation: hand-chunked baseline vs VIM (Figure 3)", Run: RunChunkAblation},
		{ID: "SESSIONS", Title: "Multi-coprocessor sessions behind one VIM (partition split sweep)", Run: RunSessions},
		{ID: "SERVE", Title: "Dynamic reconfiguration scheduler: multi-user job serving (policy x slots x config bandwidth)", Run: RunServe},
		{ID: "DEADLINE", Title: "Deadline-aware serving with pre-staged reconfiguration (policy x staging x bandwidth x budget)", Run: RunDeadline},
		{ID: "SATURATE", Title: "Open-loop saturation: offered-RPS ramp, overload detection and admission control", Run: RunSaturate},
		{ID: "FLEET", Title: "Fleet-scale serving: dispatch policy x pool size over independent boards", Run: RunFleet},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Render formats a result for terminal output.
func Render(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(r.Series) > 0 {
		keys := make([]string, 0, len(r.Series))
		for k := range r.Series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("series:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.3f", k, r.Series[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ms formats picoseconds as milliseconds.
func ms(ps float64) string { return fmt.Sprintf("%.2f", ps/1e9) }

// VecAddVIM runs the vector-add coprocessor through the virtual interface
// (n 32-bit elements per object, so 3·4n bytes of mapped data).
func VecAddVIM(cfg repro.Config, n int, seed int64) (*core.Report, error) {
	sys, err := repro.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	p, err := sys.NewProcess("vecadd")
	if err != nil {
		return nil, err
	}
	a, err := p.Alloc(4 * n)
	if err != nil {
		return nil, err
	}
	b, err := p.Alloc(4 * n)
	if err != nil {
		return nil, err
	}
	c, err := p.Alloc(4 * n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	av := make([]byte, 4*n)
	bv := make([]byte, 4*n)
	rng.Read(av)
	rng.Read(bv)
	if err := a.Write(av); err != nil {
		return nil, err
	}
	if err := b.Write(bv); err != nil {
		return nil, err
	}
	if err := p.FPGALoad(repro.VecAddBitstream(sys.Board().Spec.Name)); err != nil {
		return nil, err
	}
	if err := p.FPGAMapObject(repro.VecAddObjA, a, repro.In); err != nil {
		return nil, err
	}
	if err := p.FPGAMapObject(repro.VecAddObjB, b, repro.In); err != nil {
		return nil, err
	}
	if err := p.FPGAMapObject(repro.VecAddObjC, c, repro.Out); err != nil {
		return nil, err
	}
	return p.FPGAExecute(uint32(n))
}

// AdpcmVIM runs the coprocessor adpcmdecode through the virtual interface.
func AdpcmVIM(cfg repro.Config, nbytes int, seed int64) (*core.Report, error) {
	sys, err := repro.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	p, err := sys.NewProcess("adpcm")
	if err != nil {
		return nil, err
	}
	in, err := p.Alloc(nbytes)
	if err != nil {
		return nil, err
	}
	out, err := p.Alloc(nbytes * 4)
	if err != nil {
		return nil, err
	}
	packed := make([]byte, nbytes)
	rand.New(rand.NewSource(seed)).Read(packed)
	if err := in.Write(packed); err != nil {
		return nil, err
	}
	if err := p.FPGALoad(repro.ADPCMBitstream(sys.Board().Spec.Name)); err != nil {
		return nil, err
	}
	if err := p.FPGAMapObject(repro.ADPCMObjIn, in, repro.In); err != nil {
		return nil, err
	}
	if err := p.FPGAMapObject(repro.ADPCMObjOut, out, repro.Out); err != nil {
		return nil, err
	}
	return p.FPGAExecute(uint32(nbytes))
}

// AdpcmSW runs the pure-software decoder.
func AdpcmSW(cfg repro.Config, nbytes int, seed int64) (*core.Report, error) {
	sys, err := repro.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	p, err := sys.NewProcess("adpcm-sw")
	if err != nil {
		return nil, err
	}
	in, err := p.Alloc(nbytes)
	if err != nil {
		return nil, err
	}
	out, err := p.Alloc(nbytes * 4)
	if err != nil {
		return nil, err
	}
	packed := make([]byte, nbytes)
	rand.New(rand.NewSource(seed)).Read(packed)
	if err := in.Write(packed); err != nil {
		return nil, err
	}
	return p.RunADPCMDecodeSW(in, out)
}

// IdeaVIM runs the IDEA coprocessor through the virtual interface.
func IdeaVIM(cfg repro.Config, nbytes int, seed int64) (*core.Report, error) {
	sys, err := repro.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	p, err := sys.NewProcess("idea")
	if err != nil {
		return nil, err
	}
	in, err := p.Alloc(nbytes)
	if err != nil {
		return nil, err
	}
	out, err := p.Alloc(nbytes)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var key repro.IDEAKey
	rng.Read(key[:])
	plain := make([]byte, nbytes)
	rng.Read(plain)
	if err := in.Write(plain); err != nil {
		return nil, err
	}
	if err := p.FPGALoad(repro.IDEABitstream(sys.Board().Spec.Name)); err != nil {
		return nil, err
	}
	if err := p.FPGAMapObject(repro.IDEAObjIn, in, repro.In); err != nil {
		return nil, err
	}
	if err := p.FPGAMapObject(repro.IDEAObjOut, out, repro.Out); err != nil {
		return nil, err
	}
	return p.FPGAExecute(repro.IDEAEncryptParams(key, nbytes/8)...)
}

// IdeaSW runs the pure-software cipher.
func IdeaSW(cfg repro.Config, nbytes int, seed int64) (*core.Report, error) {
	sys, err := repro.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	p, err := sys.NewProcess("idea-sw")
	if err != nil {
		return nil, err
	}
	in, err := p.Alloc(nbytes)
	if err != nil {
		return nil, err
	}
	out, err := p.Alloc(nbytes)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var key repro.IDEAKey
	rng.Read(key[:])
	plain := make([]byte, nbytes)
	rng.Read(plain)
	if err := in.Write(plain); err != nil {
		return nil, err
	}
	return p.RunIDEASW(key, in, out)
}

// IdeaNormal runs the single-shot "normal coprocessor" baseline; a nil
// report with nil error means the dataset exceeds the available memory.
func IdeaNormal(board platform.Spec, nbytes int, seed int64) (*core.Report, error) {
	rng := rand.New(rand.NewSource(seed))
	var key ref.IDEAKey
	rng.Read(key[:])
	in := make([]byte, nbytes)
	rng.Read(in)
	r, err := baseline.NewRunner(board, repro.IDEABitstream(board.Name))
	if err != nil {
		return nil, err
	}
	streams := ideautil.Streams(in)
	rep, err := r.RunSingleShot(nbytes/8, streams, ideautil.Params(key))
	if err != nil {
		if strings.Contains(err.Error(), "exceeds available memory") {
			return nil, nil
		}
		return nil, err
	}
	return rep, nil
}
