package exp

import (
	"fmt"

	"repro/internal/rcsched"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Saturation-experiment parameters: open-loop Poisson streams on the
// two-slot EPXA4 shell, swept up a linear RPS ramp until the overload
// detector fires. The stream is long enough that the sliding window sees
// sustained failure runs, short enough that a dozen ramp steps stay cheap.
const (
	SaturateJobs     = 40
	SaturateSeed     = int64(1717)
	SaturateStartRPS = 400.0
	SaturateStepRPS  = 400.0
	SaturateSteps    = 10
)

// SaturateConfig is the experiment's canonical serving configuration under
// the given policy and admission mode.
func SaturateConfig(policy, admit string) rcsched.Config {
	return rcsched.Config{Policy: policy, Slots: 2, Admit: admit}
}

// SaturateRamp sweeps the canonical ramp under cfg and returns the measured
// points plus the detected saturation knee.
func SaturateRamp(cfg rcsched.Config) (*traffic.Ramp, error) {
	return traffic.FindKnee(cfg, traffic.Spec{Process: traffic.Poisson}, traffic.RampSpec{
		StartRPS: SaturateStartRPS,
		StepRPS:  SaturateStepRPS,
		Steps:    SaturateSteps,
		Jobs:     SaturateJobs,
		Seed:     SaturateSeed,
	})
}

// SaturateStream returns the experiment's canonical open-loop Poisson
// stream at the given offered rate.
func SaturateStream(rps float64) ([]rcsched.Job, error) {
	return traffic.Stream(SaturateJobs, SaturateSeed, traffic.Spec{Process: traffic.Poisson, RPS: rps})
}

// RunSaturate regenerates the saturation experiment: an RPS ramp under the
// slack scheduler locates the configuration's knee, then the stream is
// re-offered at the knee and at twice the knee under each deadline policy
// with admission control off, rejecting, and degrading. The headline
// property is that past saturation, shedding provably-late jobs yields
// strictly more goodput — deadline-met completions per second — and a
// strictly lower admitted-job p99 than serving everything.
func RunSaturate() (*Result, error) {
	series := map[string]float64{}

	ramp, err := SaturateRamp(SaturateConfig("slack", rcsched.AdmitOff))
	if err != nil {
		return nil, err
	}
	rampTb := &stats.Table{
		Title: fmt.Sprintf("open-loop Poisson ramp, %d jobs per step on EPXA4 (slack, 2 slots, admission off)",
			SaturateJobs),
		Headers: []string{"target RPS", "offered RPS", "achieved RPS", "goodput RPS",
			"miss rate", "p99 ms", "overloaded"},
	}
	for _, p := range ramp.Points {
		over := "no"
		if p.Overloaded {
			over = "YES"
		}
		rampTb.AddRow(fmt.Sprintf("%.0f", p.RPS), fmt.Sprintf("%.0f", p.OfferedRPS),
			fmt.Sprintf("%.0f", p.AchievedRPS), fmt.Sprintf("%.0f", p.GoodputRPS),
			fmt.Sprintf("%.2f", p.MissRate), ms(p.P99LatencyPs), over)
	}
	if ramp.SaturationRPS == 0 {
		return nil, fmt.Errorf("exp: the ramp never saturated the board — extend it past %.0f jobs/s",
			SaturateStartRPS+float64(SaturateSteps-1)*SaturateStepRPS)
	}
	series["knee_rps"] = ramp.KneeRPS
	series["saturation_rps"] = ramp.SaturationRPS

	admitTb := &stats.Table{
		Title: fmt.Sprintf("the same process at the knee (%.0f jobs/s) and past saturation (%.0f jobs/s): policy x admission",
			ramp.KneeRPS, 2*ramp.KneeRPS),
		Headers: []string{"offered", "policy", "admission", "goodput RPS", "shed rate",
			"p99 admitted ms", "p99 ms", "miss rate", "completed"},
	}
	for _, mult := range []float64{1, 2} {
		rps := mult * ramp.KneeRPS
		jobs, err := SaturateStream(rps)
		if err != nil {
			return nil, err
		}
		for _, policy := range []string{"slack", "edf"} {
			for _, admit := range []string{rcsched.AdmitOff, rcsched.AdmitReject, rcsched.AdmitDegrade} {
				rep, err := rcsched.Serve(SaturateConfig(policy, admit), jobs)
				if err != nil {
					return nil, err
				}
				label := fmt.Sprintf("%s/%s/%gx", policy, admit, mult)
				admitTb.AddRow(fmt.Sprintf("%.0fx knee", mult), policy, admit,
					fmt.Sprintf("%.0f", rep.GoodputRPS), fmt.Sprintf("%.2f", rep.ShedRate),
					ms(rep.P99AdmittedPs), ms(rep.P99LatencyPs),
					fmt.Sprintf("%.2f", rep.MissRate), fmt.Sprintf("%d", rep.Completed))
				series["goodput_rps/"+label] = rep.GoodputRPS
				series["shed_rate/"+label] = rep.ShedRate
				series["p99_admitted_ms/"+label] = rep.P99AdmittedPs / 1e9
				series["miss_rate/"+label] = rep.MissRate
			}
		}
	}

	return &Result{
		ID:     "SATURATE",
		Title:  "Open-loop saturation: offered-RPS ramp, overload detection and admission control",
		Tables: []*stats.Table{rampTb, admitTb},
		Notes: []string{
			"arrivals are open-loop: the generator keeps offering load at the target rate whether or not the board keeps up",
			fmt.Sprintf("overload = more than %.0f%% of any %d consecutive jobs failing (missed deadline or shed)",
				100*traffic.DefaultThreshold, traffic.DefaultWindow),
			"admission control estimates each arrival's best-case completion from live slot, stage and queue state and sheds only provably-late jobs",
			"degrade mode serves shed jobs on the timed-SW baseline path instead of rejecting them outright",
		},
		Series: series,
	}, nil
}
