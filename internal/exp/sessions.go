package exp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/copro/adpcmdec"
	"repro/internal/copro/ideacp"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/vim"
)

// SessionsClockHz is the shared shell clock plan of the sessions gang: one
// IMU clock for every tenant, with cores recompiled against divisors of it
// (the IDEA core keeps its native 6 MHz, which divides 24 MHz; the ADPCM
// core is recompiled from 40 MHz down to the shell's 24 MHz).
const SessionsClockHz = 24_000_000

// SessionsGang runs the concurrent IDEA+ADPCM gang: two coprocessor
// sessions behind one Virtual Interface Manager on one board, IDEA
// encrypting ideaBytes and ADPCM decoding adpcmBytes at the same time,
// with ideaFrames of the page pool carved into IDEA's home partition and
// the rest into ADPCM's. Both outputs are verified against the golden
// algorithms before the report is returned.
func SessionsGang(boardName, arb string, ideaFrames, ideaBytes, adpcmBytes int, seed int64) (*core.MultiReport, error) {
	spec, ok := platform.SpecByName(boardName)
	if !ok {
		return nil, fmt.Errorf("exp: unknown board %q", boardName)
	}
	arbitration, ok := vim.NewArbitration(arb)
	if !ok {
		return nil, fmt.Errorf("exp: unknown arbitration %q", arb)
	}
	board, err := platform.NewBoard(spec)
	if err != nil {
		return nil, err
	}
	g, err := core.NewGang(board, arbitration)
	if err != nil {
		return nil, err
	}

	idea, err := g.AddMember(repro.IDEABitstream(spec.Name), ideaFrames, vim.Config{}, 0, SessionsClockHz)
	if err != nil {
		return nil, err
	}
	adpcmFrames := board.DP.Pages() - ideaFrames
	adpcm, err := g.AddMember(repro.ADPCMBitstream(spec.Name), adpcmFrames, vim.Config{},
		SessionsClockHz, SessionsClockHz)
	if err != nil {
		return nil, err
	}

	// User buffers and inputs (each member models its own process image).
	rng := rand.New(rand.NewSource(seed))
	var key repro.IDEAKey
	rng.Read(key[:])
	plain := make([]byte, ideaBytes)
	rng.Read(plain)
	packed := make([]byte, adpcmBytes)
	rng.Read(packed)

	ideaIn, err := board.Kern.Alloc(ideaBytes)
	if err != nil {
		return nil, err
	}
	ideaOut, err := board.Kern.Alloc(ideaBytes)
	if err != nil {
		return nil, err
	}
	adpcmIn, err := board.Kern.Alloc(adpcmBytes)
	if err != nil {
		return nil, err
	}
	adpcmOut, err := board.Kern.Alloc(adpcmBytes * 4)
	if err != nil {
		return nil, err
	}
	if err := board.Kern.WriteUser(ideaIn, plain); err != nil {
		return nil, err
	}
	if err := board.Kern.WriteUser(adpcmIn, packed); err != nil {
		return nil, err
	}

	if err := idea.Sess.MapObject(ideacp.ObjIn, ideaIn, uint32(ideaBytes), vim.In); err != nil {
		return nil, err
	}
	if err := idea.Sess.MapObject(ideacp.ObjOut, ideaOut, uint32(ideaBytes), vim.Out); err != nil {
		return nil, err
	}
	if err := adpcm.Sess.MapObject(adpcmdec.ObjIn, adpcmIn, uint32(adpcmBytes), vim.In); err != nil {
		return nil, err
	}
	if err := adpcm.Sess.MapObject(adpcmdec.ObjOut, adpcmOut, uint32(adpcmBytes*4), vim.Out); err != nil {
		return nil, err
	}
	idea.Params = repro.IDEAEncryptParams(key, ideaBytes/8)
	adpcm.Params = []uint32{uint32(adpcmBytes)}

	if err := g.Assemble(); err != nil {
		return nil, err
	}
	rep, err := g.ExecuteAll()
	if err != nil {
		return nil, err
	}

	// Verify both sessions' results against the golden algorithms — the
	// gang must not trade correctness for concurrency.
	gotIdea, err := board.Kern.ReadUser(ideaOut, ideaBytes)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(gotIdea, repro.GoldenIDEAEncrypt(key, plain)) {
		return nil, fmt.Errorf("exp: gang IDEA output diverges from the reference cipher")
	}
	gotAdpcm, err := board.Kern.ReadUser(adpcmOut, adpcmBytes*4)
	if err != nil {
		return nil, err
	}
	wantSamples := repro.GoldenADPCMDecode(packed)
	want := make([]byte, 2*len(wantSamples))
	for i, s := range wantSamples {
		binary.LittleEndian.PutUint16(want[2*i:], uint16(s))
	}
	if !bytes.Equal(gotAdpcm, want) {
		return nil, fmt.Errorf("exp: gang ADPCM output diverges from the reference decoder")
	}
	return rep, nil
}

// RunSessions regenerates the sessions-layer experiment: concurrent
// IDEA+ADPCM throughput behind one VIM on the EPXA4 (sixteen 2 KB frames)
// as a function of the partition split, under both arbitration policies.
// Static partitioning confines each session's paging to its home
// partition; global-LRU lets the session that is paging harder steal the
// coldest frames from its neighbour.
func RunSessions() (*Result, error) {
	const (
		boardName  = "EPXA4"
		ideaBytes  = 16384
		adpcmBytes = 8192
		seed       = int64(4242)
	)
	spec, _ := platform.SpecByName(boardName)
	pool := spec.DPBytes >> spec.PageLog // 16 frames on the EPXA4
	splits := []int{pool / 4, pool / 2, 3 * pool / 4}
	tb := &stats.Table{
		Title: fmt.Sprintf("concurrent IDEA (%d KB) + ADPCM (%d KB) on %s, shared shell @ %d MHz",
			ideaBytes/1024, adpcmBytes/1024, boardName, SessionsClockHz/1_000_000),
		Headers: []string{"split (idea+adpcm)", "arbitration", "total ms", "idea done ms",
			"adpcm done ms", "idea faults", "adpcm faults", "steals"},
	}
	series := map[string]float64{}
	for _, ideaFrames := range splits {
		for _, arb := range []string{"static", "global-lru"} {
			rep, err := SessionsGang(boardName, arb, ideaFrames, ideaBytes, adpcmBytes, seed)
			if err != nil {
				return nil, err
			}
			ideaS, adpcmS := rep.Sessions[0], rep.Sessions[1]
			label := fmt.Sprintf("%s/%d+%d", arb, ideaFrames, pool-ideaFrames)
			tb.AddRow(fmt.Sprintf("%d+%d", ideaFrames, pool-ideaFrames), arb,
				ms(rep.TotalPs()), ms(ideaS.DonePs), ms(adpcmS.DonePs),
				fmt.Sprintf("%d", ideaS.VIM.Faults), fmt.Sprintf("%d", adpcmS.VIM.Faults),
				fmt.Sprintf("%d", rep.VIM.Steals))
			series["total_ms/"+label] = rep.TotalPs() / 1e9
			series["idea_done_ms/"+label] = ideaS.DonePs / 1e9
			series["adpcm_done_ms/"+label] = adpcmS.DonePs / 1e9
			series["idea_faults/"+label] = float64(ideaS.VIM.Faults)
			series["adpcm_faults/"+label] = float64(adpcmS.VIM.Faults)
			series["steals/"+label] = float64(rep.VIM.Steals)
		}
	}
	return &Result{
		ID:     "SESSIONS",
		Title:  "Multi-coprocessor sessions behind one VIM",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"both coprocessors run concurrently behind one IMU and one manager; every cell verifies both outputs against the golden algorithms",
			"starved partitions fault harder under static arbitration; global-LRU lets the paging-heavy session steal its neighbour's coldest frames",
		},
		Series: series,
	}, nil
}
