package exp

import (
	"strings"
	"testing"
)

// These tests assert the reproduction targets of the evaluation (§4): the *shapes*
// of the paper's figures, not absolute numbers.

func run(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return res
}

func TestFig7Shape(t *testing.T) {
	res := run(t, "FIG7")
	if res.Series["latency_cycles"] != 4 {
		t.Fatalf("translated read latency = %v cycles, paper says 4", res.Series["latency_cycles"])
	}
	if res.Series["read_value_ok"] != 1 {
		t.Fatal("translated read returned wrong data")
	}
}

func TestFig8Shape(t *testing.T) {
	res := run(t, "FIG8")
	// Paper: speedups 1.5x/1.5x/1.6x; assert 1.3-1.9x at every size.
	for _, sz := range []string{"2KB", "4KB", "8KB"} {
		s := res.Series["speedup/"+sz]
		if s < 1.3 || s > 1.9 {
			t.Errorf("adpcm speedup at %s = %.2fx, want 1.3-1.9x", sz, s)
		}
	}
	// No faults at 2 KB, faults from 4 KB onwards.
	if res.Series["faults/2KB"] != 0 {
		t.Errorf("faults at 2KB = %v, want 0", res.Series["faults/2KB"])
	}
	if res.Series["faults/4KB"] == 0 || res.Series["faults/8KB"] == 0 {
		t.Error("expected faults at 4KB and 8KB")
	}
	// SW times double with input size (paper: ~4.4/8.9/17.8 ms).
	if r := res.Series["sw_ms/8KB"] / res.Series["sw_ms/4KB"]; r < 1.8 || r > 2.2 {
		t.Errorf("SW scaling 4->8KB = %.2f, want ~2", r)
	}
	// IMU-management share stays small.
	for _, sz := range []string{"2KB", "4KB", "8KB"} {
		if f := res.Series["swimu_frac/"+sz]; f > 0.04 {
			t.Errorf("SW(IMU) fraction at %s = %.3f, want <= 0.04 (paper: 2.5%%)", sz, f)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res := run(t, "FIG9")
	// Paper: speedups ≈11-12x; assert 8-14x.
	for _, sz := range []string{"4KB", "8KB", "16KB", "32KB"} {
		s := res.Series["speedup_vim/"+sz]
		if s < 8 || s > 14 {
			t.Errorf("IDEA VIM speedup at %s = %.1fx, want 8-14x", sz, s)
		}
	}
	// Normal coprocessor exists at 4/8 KB and not beyond.
	if _, ok := res.Series["normal_ms/4KB"]; !ok {
		t.Error("normal coprocessor missing at 4KB")
	}
	if _, ok := res.Series["normal_ms/8KB"]; !ok {
		t.Error("normal coprocessor missing at 8KB")
	}
	if _, ok := res.Series["normal_ms/16KB"]; ok {
		t.Error("normal coprocessor should exceed memory at 16KB")
	}
	if _, ok := res.Series["normal_ms/32KB"]; ok {
		t.Error("normal coprocessor should exceed memory at 32KB")
	}
	// Normal is at least as fast as VIM where it runs (paper: 12x vs 11x).
	for _, sz := range []string{"4KB", "8KB"} {
		if res.Series["speedup_normal/"+sz]+0.01 < res.Series["speedup_vim/"+sz] {
			t.Errorf("normal slower than VIM at %s", sz)
		}
	}
	// SW times roughly double per size step (paper: 26/53/105/211 ms).
	if r := res.Series["sw_ms/32KB"] / res.Series["sw_ms/16KB"]; r < 1.8 || r > 2.2 {
		t.Errorf("SW scaling 16->32KB = %.2f, want ~2", r)
	}
	// Faults appear once the working set exceeds the DP RAM.
	if res.Series["faults/16KB"] == 0 || res.Series["faults/32KB"] == 0 {
		t.Error("expected faults at 16KB and 32KB")
	}
	// The VIM keeps scaling: time roughly doubles 16->32 KB.
	if r := res.Series["vim_ms/32KB"] / res.Series["vim_ms/16KB"]; r < 1.7 || r > 2.3 {
		t.Errorf("VIM scaling 16->32KB = %.2f, want ~2", r)
	}
}

func TestOverheadShape(t *testing.T) {
	res := run(t, "OVERHEAD")
	// Paper: SW(IMU) up to 2.5% of total (we allow a little slack).
	for k, v := range res.Series {
		if strings.Contains(k, "imu_frac") && v > 3.0 {
			t.Errorf("%s = %.2f%%, want <= 3%%", k, v)
		}
	}
	// Paper: IDEA translation overhead around 20% of HW time.
	for _, k := range []string{"idea_xlat_frac/8KB", "idea_xlat_frac/16KB"} {
		if v := res.Series[k]; v < 10 || v > 28 {
			t.Errorf("%s = %.1f%%, want 10-28%% (paper ~20%%)", k, v)
		}
	}
}

func TestPortabilityShape(t *testing.T) {
	res := run(t, "PORT")
	// Faults shrink as the DP RAM grows; EPXA10 holds the whole working set.
	if !(res.Series["faults/EPXA1"] > res.Series["faults/EPXA4"]) {
		t.Errorf("EPXA4 should fault less than EPXA1: %v vs %v",
			res.Series["faults/EPXA4"], res.Series["faults/EPXA1"])
	}
	if res.Series["faults/EPXA10"] != 0 {
		t.Errorf("EPXA10 faults = %v, want 0 (64 KB DP RAM)", res.Series["faults/EPXA10"])
	}
}

func TestBounceShape(t *testing.T) {
	res := run(t, "BOUNCE")
	// Double transfers land between 1.5x and 2.5x the direct SW(DP) time.
	for _, k := range []string{"swdp_ratio/adpcm", "swdp_ratio/idea"} {
		if v := res.Series[k]; v < 1.5 || v > 2.5 {
			t.Errorf("%s = %.2f, want ~2 (two transfers per page)", k, v)
		}
	}
}

func TestPipelineShape(t *testing.T) {
	res := run(t, "PIPELINE")
	for _, k := range []string{"hw_saved_pct/adpcm", "hw_saved_pct/idea"} {
		if v := res.Series[k]; v <= 5 {
			t.Errorf("%s = %.1f%%, pipelining should recover measurable HW time", k, v)
		}
	}
}

func TestPrefetchShape(t *testing.T) {
	res := run(t, "PREFETCH")
	if !(res.Series["faults/1"] < res.Series["faults/0"]) {
		t.Error("prefetch 1 did not reduce faults")
	}
	if !(res.Series["faults/2"] <= res.Series["faults/1"]) {
		t.Error("prefetch 2 did not reduce faults further")
	}
}

func TestPageSizeShape(t *testing.T) {
	res := run(t, "PAGESIZE")
	// Smaller pages always fault more on a streaming workload.
	if !(res.Series["faults/512B"] > res.Series["faults/1024B"] &&
		res.Series["faults/1024B"] > res.Series["faults/2048B"] &&
		res.Series["faults/2048B"] > res.Series["faults/4096B"]) {
		t.Error("fault counts not monotone in page size")
	}
	// The paper's 2 KB choice sits at the knee: within 2% of the best
	// total across the sweep.
	best := res.Series["total_ms/512B"]
	for _, k := range []string{"total_ms/1024B", "total_ms/2048B", "total_ms/4096B"} {
		if res.Series[k] < best {
			best = res.Series[k]
		}
	}
	if res.Series["total_ms/2048B"] > best*1.02 {
		t.Errorf("2 KB pages %.3f ms, > 2%% off the sweep best %.3f ms",
			res.Series["total_ms/2048B"], best)
	}
}

func TestChunkShape(t *testing.T) {
	res := run(t, "CHUNK")
	// The VIM's transparency tax over hand-chunking stays below 25%.
	tax := res.Series["vim_ms"]/res.Series["chunked_ms"] - 1
	if tax < 0 || tax > 0.25 {
		t.Errorf("VIM vs hand-chunked tax = %.1f%%, want 0-25%%", tax*100)
	}
}

func TestFig3Shape(t *testing.T) {
	res := run(t, "FIG3")
	if !(res.Series["vim_ms"] < res.Series["sw_ms"]) {
		t.Error("VIM-based vecadd not faster than pure SW")
	}
	if !(res.Series["typ_ms"] <= res.Series["vim_ms"]) {
		t.Error("typical coprocessor should be at most as fast as VIM (no OS overhead)")
	}
}

func TestDeadlineShape(t *testing.T) {
	res := run(t, "DEADLINE")
	// The headline acceptance property: slack with pre-staging strictly
	// lowers p99 latency and deadline miss-rate against the PR-4 affinity
	// scheduler on the slow configuration port.
	if !(res.Series["p99_ms/slack+stage"] < res.Series["p99_ms/affinity"]) {
		t.Errorf("slack+staging p99 %.3f ms not below plain affinity's %.3f ms",
			res.Series["p99_ms/slack+stage"], res.Series["p99_ms/affinity"])
	}
	if !(res.Series["miss_rate/slack+stage"] < res.Series["miss_rate/affinity"]) {
		t.Errorf("slack+staging miss rate %.3f not below plain affinity's %.3f",
			res.Series["miss_rate/slack+stage"], res.Series["miss_rate/affinity"])
	}
	// Pre-staging must actually fire and must cut full reconfigurations
	// for every policy that runs with it.
	for _, p := range []string{"affinity", "edf", "slack"} {
		if res.Series["stage_commits/"+p+"+stage"] == 0 {
			t.Errorf("%s+stage never committed a pre-staged bitstream", p)
		}
		if !(res.Series["reconfig_ms/"+p+"+stage"] < res.Series["reconfig_ms/"+p]) {
			t.Errorf("%s+stage config time %.3f ms not below %.3f ms without staging",
				p, res.Series["reconfig_ms/"+p+"+stage"], res.Series["reconfig_ms/"+p])
		}
	}
	// Pinned-stream property, not a theorem: deadlines feed the slack
	// policy's decisions, so a different budget factor yields a different
	// schedule — but on this pinned stream looser budgets do lower the
	// miss rate, and a break here means the pinned fixture drifted.
	if !(res.Series["miss_rate/slack+stage/b2"] <= res.Series["miss_rate/slack+stage/b1"] &&
		res.Series["miss_rate/slack+stage/b1"] <= res.Series["miss_rate/slack+stage/b0.5"]) {
		t.Error("slack+stage miss rate no longer monotone in the budget factor on the pinned stream (fixture drift?)")
	}
}

func TestSaturateShape(t *testing.T) {
	res := run(t, "SATURATE")
	knee, sat := res.Series["knee_rps"], res.Series["saturation_rps"]
	if knee <= 0 || sat <= knee {
		t.Fatalf("ramp found no knee strictly below saturation: knee %.0f, saturation %.0f", knee, sat)
	}
	// The headline acceptance property, at twice the detected knee for both
	// deadline policies: shedding provably-late jobs strictly improves
	// goodput and strictly tightens the admitted-job p99 over admitting
	// everything — and actually sheds something, or the comparison is vacuous.
	for _, p := range []string{"slack", "edf"} {
		off, rej := p+"/off/2x", p+"/reject/2x"
		if res.Series["shed_rate/"+rej] == 0 {
			t.Errorf("%s: admission shed nothing at 2x the knee", p)
		}
		if !(res.Series["goodput_rps/"+rej] > res.Series["goodput_rps/"+off]) {
			t.Errorf("%s: admission goodput %.0f jobs/s not above admit-everything's %.0f",
				p, res.Series["goodput_rps/"+rej], res.Series["goodput_rps/"+off])
		}
		if !(res.Series["p99_admitted_ms/"+rej] < res.Series["p99_admitted_ms/"+off]) {
			t.Errorf("%s: admitted-job p99 %.3f ms not below admit-everything's %.3f ms",
				p, res.Series["p99_admitted_ms/"+rej], res.Series["p99_admitted_ms/"+off])
		}
		// Degrade mode answers every request, so it sheds nothing outright.
		if res.Series["shed_rate/"+p+"/degrade/2x"] != 0 {
			t.Errorf("%s: degrade mode rejected jobs outright", p)
		}
	}
}

func TestFleetShape(t *testing.T) {
	res := run(t, "FLEET")
	if res.Series["knee_rps"] <= 0 {
		t.Fatal("fleet experiment found no single-board knee to scale from")
	}
	// The headline acceptance property, at 4 boards offered 2x the knee per
	// board: the locality-aware policies strictly beat seeded-random routing
	// on goodput AND on fleet-wide configuration traffic. Residency is a
	// resource the dispatcher can conserve, not just a tiebreak.
	for _, d := range []string{"affinity", "po2"} {
		if !(res.Series["goodput_rps/"+d+"/4"] > res.Series["goodput_rps/random/4"]) {
			t.Errorf("%s goodput %.0f jobs/s not above random's %.0f at 4 boards",
				d, res.Series["goodput_rps/"+d+"/4"], res.Series["goodput_rps/random/4"])
		}
		if !(res.Series["config_ms/"+d+"/4"] < res.Series["config_ms/random/4"]) {
			t.Errorf("%s config traffic %.3f ms not below random's %.3f ms at 4 boards",
				d, res.Series["config_ms/"+d+"/4"], res.Series["config_ms/random/4"])
		}
	}
	// Admission through the dispatcher actually sheds under overload, and
	// (pinned-stream property) shedding helps goodput as it did single-board.
	for _, d := range []string{"random", "affinity"} {
		if res.Series["admit_shed_rate/"+d+"/reject/4"] == 0 {
			t.Errorf("%s: fleet admission shed nothing at 2x the knee per board", d)
		}
		if !(res.Series["admit_goodput_rps/"+d+"/reject/4"] > res.Series["admit_goodput_rps/"+d+"/off/4"]) {
			t.Errorf("%s: fleet admission goodput %.0f not above admit-everything's %.0f",
				d, res.Series["admit_goodput_rps/"+d+"/reject/4"], res.Series["admit_goodput_rps/"+d+"/off/4"])
		}
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"FIG3", "FIG7", "FIG8", "FIG9", "OVERHEAD", "PORT",
		"POLICY", "BOUNCE", "PIPELINE", "PREFETCH", "PAGESIZE", "CHUNK",
		"SESSIONS", "SERVE", "DEADLINE", "SATURATE", "FLEET"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
	}
	if _, ok := ByID("fig9"); !ok {
		t.Error("ByID should be case-insensitive")
	}
	if _, ok := ByID("NOPE"); ok {
		t.Error("ByID accepted unknown id")
	}
}
