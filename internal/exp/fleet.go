package exp

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/rcsched"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Fleet-experiment parameters: the single-board saturation setup scaled out
// behind a dispatcher. Each board keeps the canonical two-slot EPXA4 shell,
// and the fleet is offered twice the single-board knee PER BOARD — every
// dispatch policy faces the same overload the admission experiment studied,
// multiplied across the pool, so routing quality is what separates them.
const (
	// FleetJobsPerBoard scales the stream with the pool so every cell sees
	// the same per-board pressure and duration.
	FleetJobsPerBoard = 24
	// FleetSeed drives the job stream; FleetDispatchSeed drives the
	// randomised dispatch policies. Separate on purpose: replaying the same
	// stream under a different dispatch seed is how the determinism tests
	// isolate routing randomness from arrival randomness.
	FleetSeed         = int64(7)
	FleetDispatchSeed = int64(99)
)

// FleetBoardCounts returns the pool sizes the experiment sweeps.
func FleetBoardCounts() []int { return []int{2, 4, 8} }

// FleetDispatches returns the dispatch policies in presentation order:
// the uninformed baseline first, then the load-only, affinity-only and
// combined balancers.
func FleetDispatches() []string {
	return []string{fleet.Random, fleet.LeastLoaded, fleet.Affinity, fleet.Po2}
}

// FleetConfig is the experiment's canonical fleet configuration: the given
// dispatch policy over `boards` copies of the saturation experiment's
// two-slot slack board, with admission control threaded through to each
// board's serving loop.
func FleetConfig(dispatch string, boards int, admit string) fleet.Config {
	return fleet.Config{
		Boards:   boards,
		Dispatch: dispatch,
		Seed:     FleetDispatchSeed,
		Board:    SaturateConfig("slack", admit),
	}
}

// FleetStream returns the experiment's canonical open-loop Poisson stream
// for a pool of the given size: FleetJobsPerBoard jobs per board offered at
// twice the single-board knee per board.
func FleetStream(boards int, kneeRPS float64) ([]rcsched.Job, error) {
	return traffic.Stream(FleetJobsPerBoard*boards, FleetSeed,
		traffic.Spec{Process: traffic.Poisson, RPS: 2 * kneeRPS * float64(boards)})
}

// RunFleet regenerates the fleet experiment: the single-board ramp locates
// the knee, then a stream at twice that knee per board is dispatched across
// pools of 2, 4 and 8 boards under every routing policy. The headline
// property is that at 4 boards the informed policies (affinity, po2) beat
// seeded-random routing on both goodput and total configuration traffic —
// fleet-wide bitstream locality is a measurable resource, not a tiebreak. A
// second table threads admission control through the dispatcher at 4 boards.
func RunFleet() (*Result, error) {
	series := map[string]float64{}

	ramp, err := SaturateRamp(SaturateConfig("slack", rcsched.AdmitOff))
	if err != nil {
		return nil, err
	}
	if ramp.SaturationRPS == 0 {
		return nil, fmt.Errorf("exp: the single-board ramp never saturated — no knee to scale from")
	}
	knee := ramp.KneeRPS
	series["knee_rps"] = knee

	mainTb := &stats.Table{
		Title: fmt.Sprintf("dispatch policy x pool size at %.0f jobs/s per board (2x the single-board knee), %d jobs per board",
			2*knee, FleetJobsPerBoard),
		Headers: []string{"boards", "dispatch", "goodput RPS", "p99 ms", "miss rate",
			"reconfigs", "config ms", "util min/mean/max"},
	}
	for _, boards := range FleetBoardCounts() {
		jobs, err := FleetStream(boards, knee)
		if err != nil {
			return nil, err
		}
		for _, dispatch := range FleetDispatches() {
			rep, err := fleet.Run(FleetConfig(dispatch, boards, rcsched.AdmitOff), jobs)
			if err != nil {
				return nil, err
			}
			mainTb.AddRow(fmt.Sprintf("%d", boards), dispatch,
				fmt.Sprintf("%.0f", rep.GoodputRPS), ms(rep.P99LatencyPs),
				fmt.Sprintf("%.2f", rep.MissRate), fmt.Sprintf("%d", rep.Reconfigs),
				ms(rep.TotalReconfigPs),
				fmt.Sprintf("%.2f/%.2f/%.2f", rep.UtilMin, rep.UtilMean, rep.UtilMax))
			label := fmt.Sprintf("%s/%d", dispatch, boards)
			series["goodput_rps/"+label] = rep.GoodputRPS
			series["config_ms/"+label] = rep.TotalReconfigPs / 1e9
			series["reconfigs/"+label] = float64(rep.Reconfigs)
			series["miss_rate/"+label] = rep.MissRate
			series["util_spread/"+label] = rep.UtilMax - rep.UtilMin
		}
	}

	admitTb := &stats.Table{
		Title: "admission control through the dispatcher, 4 boards at 2x the knee per board (each arrival admitted against its chosen board)",
		Headers: []string{"dispatch", "admission", "goodput RPS", "shed rate",
			"p99 admitted ms", "miss rate"},
	}
	jobs4, err := FleetStream(4, knee)
	if err != nil {
		return nil, err
	}
	for _, dispatch := range []string{fleet.Random, fleet.Affinity} {
		for _, admit := range []string{rcsched.AdmitOff, rcsched.AdmitReject} {
			rep, err := fleet.Run(FleetConfig(dispatch, 4, admit), jobs4)
			if err != nil {
				return nil, err
			}
			admitTb.AddRow(dispatch, admit, fmt.Sprintf("%.0f", rep.GoodputRPS),
				fmt.Sprintf("%.2f", rep.ShedRate), ms(rep.P99AdmittedPs),
				fmt.Sprintf("%.2f", rep.MissRate))
			label := fmt.Sprintf("%s/%s/4", dispatch, admit)
			series["admit_goodput_rps/"+label] = rep.GoodputRPS
			series["admit_shed_rate/"+label] = rep.ShedRate
		}
	}

	return &Result{
		ID:     "FLEET",
		Title:  "Fleet-scale serving: dispatch policy x pool size over independent boards",
		Tables: []*stats.Table{mainTb, admitTb},
		Notes: []string{
			"each board is an independent two-slot shell with its own config port, VIM and serving loop; the dispatcher is a pure routing layer over them",
			"dispatch decisions use only the dispatcher's own backlog/residency model at each job's arrival epoch, so routing is deterministic in (stream, config, seed)",
			"affinity and po2 route to boards modelled as holding the job's bitstream while their backlog stays under the bound — fleet-wide zero-config dispatch with bounded-load replication",
			"config ms is the fleet-wide configuration-port busy time: what bitstream locality saves",
		},
		Series: series,
	}, nil
}
