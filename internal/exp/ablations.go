package exp

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/baseline"
	"repro/internal/ideautil"
	"repro/internal/platform"
	"repro/internal/ref"
	"repro/internal/stats"
)

// RunOverhead derives the §4.1 overhead claims from fresh runs: the SW(IMU)
// share of total time (paper: up to 2.5%) and the translation share of the
// hardware time (paper: ≈20% for IDEA, to be masked by a pipelined IMU).
func RunOverhead() (*Result, error) {
	tb := &stats.Table{
		Title:   "virtualisation overheads",
		Headers: []string{"application", "input", "SW(IMU) % of total", "translation % of HW time"},
	}
	series := map[string]float64{}

	for _, n := range []int{4096, 8192} {
		rep, err := AdpcmVIM(repro.Config{}, n, int64(n))
		if err != nil {
			return nil, err
		}
		pipe, err := AdpcmVIM(repro.Config{PipelinedIMU: true}, n, int64(n))
		if err != nil {
			return nil, err
		}
		imuFrac := (rep.SWIMUPs + rep.SWOSPs) / rep.TotalPs() * 100
		xlatFrac := (rep.HWPs - pipe.HWPs) / rep.HWPs * 100
		label := fmt.Sprintf("%dKB", n/1024)
		tb.AddRow("adpcmdecode", label, fmt.Sprintf("%.2f%%", imuFrac), fmt.Sprintf("%.1f%%", xlatFrac))
		series["adpcm_imu_frac/"+label] = imuFrac
		series["adpcm_xlat_frac/"+label] = xlatFrac
	}
	for _, n := range []int{8192, 16384} {
		rep, err := IdeaVIM(repro.Config{}, n, int64(n))
		if err != nil {
			return nil, err
		}
		pipe, err := IdeaVIM(repro.Config{PipelinedIMU: true}, n, int64(n))
		if err != nil {
			return nil, err
		}
		imuFrac := (rep.SWIMUPs + rep.SWOSPs) / rep.TotalPs() * 100
		xlatFrac := (rep.HWPs - pipe.HWPs) / rep.HWPs * 100
		label := fmt.Sprintf("%dKB", n/1024)
		tb.AddRow("IDEA", label, fmt.Sprintf("%.2f%%", imuFrac), fmt.Sprintf("%.1f%%", xlatFrac))
		series["idea_imu_frac/"+label] = imuFrac
		series["idea_xlat_frac/"+label] = xlatFrac
	}
	return &Result{
		ID: "OVERHEAD", Title: "Virtualisation overheads",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"paper: SW(IMU) management up to 2.5% of total; IDEA translation overhead around 20% of HW time",
			"translation share measured as the HW time recovered by the pipelined IMU",
		},
		Series: series,
	}, nil
}

// RunPortability re-runs the unchanged IDEA application on the three
// devices; only the kernel module parameters (DP RAM geometry) differ.
func RunPortability() (*Result, error) {
	tb := &stats.Table{
		Title:   "IDEA 16 KB on three devices (identical app + coprocessor code)",
		Headers: []string{"device", "DP RAM", "frames", "faults", "VIM total ms", "speedup vs SW"},
	}
	series := map[string]float64{}
	for _, name := range []string{"EPXA1", "EPXA4", "EPXA10"} {
		spec, _ := platform.SpecByName(name)
		sw, err := IdeaSW(repro.Config{Board: name}, 16384, 777)
		if err != nil {
			return nil, err
		}
		rep, err := IdeaVIM(repro.Config{Board: name}, 16384, 777)
		if err != nil {
			return nil, err
		}
		tb.AddRow(name, fmt.Sprintf("%d KB", spec.DPBytes/1024),
			fmt.Sprintf("%d", spec.DPBytes>>spec.PageLog),
			fmt.Sprintf("%d", rep.VIM.Faults), ms(rep.TotalPs()),
			fmt.Sprintf("%.1fx", sw.TotalPs()/rep.TotalPs()))
		series["faults/"+name] = float64(rep.VIM.Faults)
		series["vim_ms/"+name] = rep.TotalPs() / 1e9
	}
	return &Result{
		ID: "PORT", Title: "Portability across devices",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"neither the C application nor the coprocessor HDL changes across devices (§4: only the kernel module is recompiled)",
		},
		Series: series,
	}, nil
}

// RunPolicyAblation compares replacement policies under DP RAM pressure.
func RunPolicyAblation() (*Result, error) {
	tb := &stats.Table{
		Title:   "IDEA 32 KB under each replacement policy",
		Headers: []string{"policy", "faults", "evictions", "writebacks", "VIM total ms"},
	}
	series := map[string]float64{}
	for _, pol := range []string{"fifo", "lru", "clock", "random"} {
		rep, err := IdeaVIM(repro.Config{Policy: pol, Seed: 4242}, 32768, 4242)
		if err != nil {
			return nil, err
		}
		tb.AddRow(pol, fmt.Sprintf("%d", rep.VIM.Faults), fmt.Sprintf("%d", rep.VIM.Evictions),
			fmt.Sprintf("%d", rep.VIM.Writebacks), ms(rep.TotalPs()))
		series["faults/"+pol] = float64(rep.VIM.Faults)
		series["total_ms/"+pol] = rep.TotalPs() / 1e9
	}
	return &Result{
		ID: "POLICY", Title: "Replacement policies",
		Tables: []*stats.Table{tb},
		Notes:  []string{"§3.3 lists FIFO, LRU and random as candidate policies; clock added as the classic Ref-bit approximation"},
		Series: series,
	}, nil
}

// RunBounceAblation quantifies the paper's double-transfer inefficiency.
func RunBounceAblation() (*Result, error) {
	tb := &stats.Table{
		Title:   "page movement: direct vs bounce-buffer (double transfer)",
		Headers: []string{"application", "input", "SW(DP) direct ms", "SW(DP) bounce ms", "total direct ms", "total bounce ms"},
	}
	series := map[string]float64{}
	for _, n := range []int{8192} {
		direct, err := AdpcmVIM(repro.Config{}, n, 21)
		if err != nil {
			return nil, err
		}
		bounce, err := AdpcmVIM(repro.Config{BounceBuffer: true}, n, 21)
		if err != nil {
			return nil, err
		}
		tb.AddRow("adpcmdecode", fmt.Sprintf("%dKB", n/1024),
			ms(direct.SWDPPs), ms(bounce.SWDPPs), ms(direct.TotalPs()), ms(bounce.TotalPs()))
		series["swdp_ratio/adpcm"] = bounce.SWDPPs / direct.SWDPPs
	}
	for _, n := range []int{16384} {
		direct, err := IdeaVIM(repro.Config{}, n, 22)
		if err != nil {
			return nil, err
		}
		bounce, err := IdeaVIM(repro.Config{BounceBuffer: true}, n, 22)
		if err != nil {
			return nil, err
		}
		tb.AddRow("IDEA", fmt.Sprintf("%dKB", n/1024),
			ms(direct.SWDPPs), ms(bounce.SWDPPs), ms(direct.TotalPs()), ms(bounce.TotalPs()))
		series["swdp_ratio/idea"] = bounce.SWDPPs / direct.SWDPPs
	}
	return &Result{
		ID: "BOUNCE", Title: "Double-transfer page movement",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"§4.1: the naive module \"makes two transfers each time a page is loaded or unloaded\"; the direct path is the fix the authors were working on",
		},
		Series: series,
	}, nil
}

// RunPipelineAblation compares the multi-cycle IMU with the pipelined one.
func RunPipelineAblation() (*Result, error) {
	tb := &stats.Table{
		Title:   "IMU translation micro-architecture",
		Headers: []string{"application", "input", "HW ms (multi-cycle)", "HW ms (pipelined)", "HW time saved"},
	}
	series := map[string]float64{}
	for _, n := range []int{8192} {
		multi, err := AdpcmVIM(repro.Config{}, n, 31)
		if err != nil {
			return nil, err
		}
		pipe, err := AdpcmVIM(repro.Config{PipelinedIMU: true}, n, 31)
		if err != nil {
			return nil, err
		}
		saved := (multi.HWPs - pipe.HWPs) / multi.HWPs * 100
		tb.AddRow("adpcmdecode", fmt.Sprintf("%dKB", n/1024), ms(multi.HWPs), ms(pipe.HWPs),
			fmt.Sprintf("%.1f%%", saved))
		series["hw_saved_pct/adpcm"] = saved
	}
	for _, n := range []int{16384} {
		multi, err := IdeaVIM(repro.Config{}, n, 32)
		if err != nil {
			return nil, err
		}
		pipe, err := IdeaVIM(repro.Config{PipelinedIMU: true}, n, 32)
		if err != nil {
			return nil, err
		}
		saved := (multi.HWPs - pipe.HWPs) / multi.HWPs * 100
		tb.AddRow("IDEA", fmt.Sprintf("%dKB", n/1024), ms(multi.HWPs), ms(pipe.HWPs),
			fmt.Sprintf("%.1f%%", saved))
		series["hw_saved_pct/idea"] = saved
	}
	return &Result{
		ID: "PIPELINE", Title: "Pipelined IMU",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"§4.1/§6: the authors expected a pipelined IMU to mask almost completely the translation overhead",
		},
		Series: series,
	}, nil
}

// RunPrefetchAblation measures sequential prefetch.
func RunPrefetchAblation() (*Result, error) {
	tb := &stats.Table{
		Title:   "sequential prefetch on fault service",
		Headers: []string{"application", "input", "prefetch", "faults", "SW(IMU) ms", "total ms"},
	}
	series := map[string]float64{}
	for _, pf := range []int{0, 1, 2, 4} {
		rep, err := AdpcmVIM(repro.Config{PrefetchPages: pf}, 8192, 51)
		if err != nil {
			return nil, err
		}
		tb.AddRow("adpcmdecode", "8KB", fmt.Sprintf("%d", pf),
			fmt.Sprintf("%d", rep.VIM.Faults), ms(rep.SWIMUPs+rep.SWOSPs), ms(rep.TotalPs()))
		series[fmt.Sprintf("faults/%d", pf)] = float64(rep.VIM.Faults)
		series[fmt.Sprintf("total_ms/%d", pf)] = rep.TotalPs() / 1e9
	}
	return &Result{
		ID: "PREFETCH", Title: "Sequential prefetch",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"§3.3: \"speculative actions as prefetching could be used in order to avoid translation misses\"",
			"aggressive speculation thrashes: with only 8 frames, prefetching 4 pages evicts live pages and fault counts explode — the ablation shows why the paper left prefetch as future work",
		},
		Series: series,
	}, nil
}

// RunChunkAblation compares the hand-chunked baseline against the VIM on a
// dataset that exceeds the DP RAM.
func RunChunkAblation() (*Result, error) {
	n := 32768
	seed := int64(61)
	rng := rand.New(rand.NewSource(seed))
	var key ref.IDEAKey
	rng.Read(key[:])
	in := make([]byte, n)
	rng.Read(in)

	runner, err := baseline.NewRunner(platform.EPXA1(), repro.IDEABitstream("EPXA1"))
	if err != nil {
		return nil, err
	}
	chunked, err := runner.RunChunked(n/8, ideautil.Streams(in), ideautil.Params(key))
	if err != nil {
		return nil, err
	}
	vimRep, err := IdeaVIM(repro.Config{}, n, seed)
	if err != nil {
		return nil, err
	}
	tb := &stats.Table{
		Title:   fmt.Sprintf("IDEA %d KB beyond the DP RAM: hand-chunked app vs transparent VIM", n/1024),
		Headers: []string{"version", "HW ms", "SW(DP) ms", "SW(IMU) ms", "total ms"},
	}
	tb.AddRow("hand-chunked (Figure 3)", ms(chunked.HWPs), ms(chunked.SWDPPs),
		ms(chunked.SWIMUPs+chunked.SWOSPs), ms(chunked.TotalPs()))
	tb.AddRow("VIM-based", ms(vimRep.HWPs), ms(vimRep.SWDPPs),
		ms(vimRep.SWIMUPs+vimRep.SWOSPs), ms(vimRep.TotalPs()))
	return &Result{
		ID: "CHUNK", Title: "Hand-chunked baseline vs VIM",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"the VIM pays a bounded transparency tax over hand-written chunking while removing every platform detail from the application",
		},
		Series: map[string]float64{
			"chunked_ms": chunked.TotalPs() / 1e9,
			"vim_ms":     vimRep.TotalPs() / 1e9,
		},
	}, nil
}

// RunPageSizeAblation sweeps the dual-port RAM page size — the one
// parameter of the §3.3 page organisation the paper fixes at 2 KB. Smaller
// pages mean more frames and finer-grained transfers but more faults and
// more OS entries; larger pages amortise fault service over bigger copies.
func RunPageSizeAblation() (*Result, error) {
	tb := &stats.Table{
		Title:   "adpcmdecode 8 KB vs dual-port RAM page size (16 KB DP RAM)",
		Headers: []string{"page size", "frames", "faults", "SW(DP) ms", "SW(IMU) ms", "total ms"},
	}
	series := map[string]float64{}
	for _, lg := range []uint{9, 10, 11, 12} {
		rep, err := AdpcmVIM(repro.Config{PageLog: lg}, 8192, 71)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%dB", 1<<lg)
		tb.AddRow(label, fmt.Sprintf("%d", 16*1024>>lg),
			fmt.Sprintf("%d", rep.VIM.Faults),
			ms(rep.SWDPPs), ms(rep.SWIMUPs+rep.SWOSPs), ms(rep.TotalPs()))
		series["faults/"+label] = float64(rep.VIM.Faults)
		series["total_ms/"+label] = rep.TotalPs() / 1e9
		series["swimu_ms/"+label] = (rep.SWIMUPs + rep.SWOSPs) / 1e9
	}
	return &Result{
		ID: "PAGESIZE", Title: "Page-size sensitivity",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"the paper organises the 16 KB dual-port RAM as 8 x 2 KB pages; this sweep shows the trade-off that choice sits on",
		},
		Series: series,
	}, nil
}
