package exp

import (
	"fmt"

	"repro/internal/rcsched"
	"repro/internal/stats"
)

// Deadline-experiment trace parameters: a 120-job seeded multi-user stream
// on the EPXA4, long enough that the nearest-rank p99 latency measures the
// tail cluster rather than the single worst job.
const (
	DeadlineJobs      = 120
	DeadlineSeed      = int64(4242)
	DeadlineMeanGapPs = 0.25e9 // 0.25 ms between arrivals on average
)

// DeadlineTrace returns the experiment's canonical job stream with
// service-level budgets at the given slack factor.
func DeadlineTrace(budgetFactor float64) []rcsched.Job {
	jobs, err := rcsched.Trace(DeadlineJobs, DeadlineSeed, DeadlineMeanGapPs)
	if err != nil {
		panic(err) // the pinned parameters are valid by construction
	}
	rcsched.SetBudgets(jobs, budgetFactor)
	return jobs
}

// deadlineLabel names one cell of the sweep.
func deadlineLabel(policy string, stage bool) string {
	if stage {
		return policy + "+stage"
	}
	return policy
}

// RunDeadline regenerates the deadline-aware serving experiment: the
// 120-job stream is served under the deadline policies with and without
// pre-staged reconfiguration, swept over the configuration-port bandwidth,
// the service-level budget factor and the slot count. The headline
// comparison is slack+staging against the plain bitstream-affinity
// scheduler on a slow configuration port.
func RunDeadline() (*Result, error) {
	series := map[string]float64{}
	run := func(policy string, stage bool, slots int, bw, budget float64) (*rcsched.Report, error) {
		return rcsched.Serve(rcsched.Config{
			Policy:   policy,
			Slots:    slots,
			ConfigBW: bw,
			Stage:    stage,
		}, DeadlineTrace(budget))
	}
	record := func(label string, rep *rcsched.Report) {
		series["p99_ms/"+label] = rep.P99LatencyPs / 1e9
		series["miss_rate/"+label] = rep.MissRate
		series["mean_latency_ms/"+label] = rep.MeanLatencyPs / 1e9
		series["reconfig_ms/"+label] = rep.TotalReconfigPs / 1e9
		series["stage_commits/"+label] = float64(rep.StageCommits)
	}

	polTb := &stats.Table{
		Title: fmt.Sprintf("deadline serving, %d mixed jobs on EPXA4: policy x pre-staging (2 slots, config port 250 KB/s, budget factor 1)",
			DeadlineJobs),
		Headers: []string{"policy", "staging", "p99 ms", "miss rate", "mean latency ms",
			"reconfigs", "stage commits", "config ms", "makespan ms"},
	}
	for _, policy := range []string{"affinity", "edf", "slack"} {
		for _, stage := range []bool{false, true} {
			rep, err := run(policy, stage, 2, 250_000, 1)
			if err != nil {
				return nil, err
			}
			staging := "off"
			if stage {
				staging = "on"
			}
			label := deadlineLabel(policy, stage)
			polTb.AddRow(policy, staging,
				ms(rep.P99LatencyPs), fmt.Sprintf("%.2f", rep.MissRate), ms(rep.MeanLatencyPs),
				fmt.Sprintf("%d", rep.Reconfigs), fmt.Sprintf("%d", rep.StageCommits),
				ms(rep.TotalReconfigPs), ms(rep.MakespanPs))
			record(label, rep)
		}
	}

	bwTb := &stats.Table{
		Title:   "the same stream: slack+staging vs plain affinity across the configuration-port bandwidth (2 slots)",
		Headers: []string{"policy", "config BW KB/s", "p99 ms", "miss rate", "reconfigs", "config ms"},
	}
	for _, bw := range []float64{250_000, 1_000_000, 4_000_000} {
		for _, c := range []struct {
			policy string
			stage  bool
		}{{"affinity", false}, {"slack", true}} {
			rep, err := run(c.policy, c.stage, 2, bw, 1)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s/%dKBps", deadlineLabel(c.policy, c.stage), int(bw)/1000)
			bwTb.AddRow(deadlineLabel(c.policy, c.stage), fmt.Sprintf("%d", int(bw)/1000),
				ms(rep.P99LatencyPs), fmt.Sprintf("%.2f", rep.MissRate),
				fmt.Sprintf("%d", rep.Reconfigs), ms(rep.TotalReconfigPs))
			series["p99_ms/"+label] = rep.P99LatencyPs / 1e9
			series["miss_rate/"+label] = rep.MissRate
		}
	}

	budTb := &stats.Table{
		Title:   "the same stream: miss rate across the service-level budget factor (2 slots, 250 KB/s)",
		Headers: []string{"policy", "budget factor", "p99 ms", "miss rate", "misses"},
	}
	for _, budget := range []float64{0.5, 1, 2} {
		for _, c := range []struct {
			policy string
			stage  bool
		}{{"affinity", false}, {"slack", true}} {
			rep, err := run(c.policy, c.stage, 2, 250_000, budget)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s/b%g", deadlineLabel(c.policy, c.stage), budget)
			budTb.AddRow(deadlineLabel(c.policy, c.stage), fmt.Sprintf("%g", budget),
				ms(rep.P99LatencyPs), fmt.Sprintf("%.2f", rep.MissRate), fmt.Sprintf("%d", rep.Misses))
			series["miss_rate/"+label] = rep.MissRate
		}
	}

	slotTb := &stats.Table{
		Title:   "the same stream: slack+staging across the slot count (250 KB/s, budget factor 1)",
		Headers: []string{"slots", "p99 ms", "miss rate", "makespan ms", "utilisation"},
	}
	for _, slots := range []int{1, 2, 4} {
		rep, err := run("slack", true, slots, 250_000, 1)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("slack+stage/%dslots", slots)
		slotTb.AddRow(fmt.Sprintf("%d", slots), ms(rep.P99LatencyPs),
			fmt.Sprintf("%.2f", rep.MissRate), ms(rep.MakespanPs), fmt.Sprintf("%.2f", rep.UtilMean))
		series["p99_ms/"+label] = rep.P99LatencyPs / 1e9
		series["miss_rate/"+label] = rep.MissRate
	}

	return &Result{
		ID:     "DEADLINE",
		Title:  "Deadline-aware serving with pre-staged reconfiguration",
		Tables: []*stats.Table{polTb, bwTb, budTb, slotTb},
		Notes: []string{
			"every job carries a per-app service-level deadline (arrival + budget factor x (fixed allowance + modelled execution estimate))",
			"pre-staging DMAs the next bitstream into a busy slot's staging buffer while the resident core executes; the swap then costs a fixed commit window instead of the full configuration stream",
			"slack takes the cheap resident/staged match unless that would make an urgent job miss a deadline it could still meet; plain EDF collapses under overload by paying every reconfiguration",
			"the slower the configuration port, the larger the lead of slack+staging over plain affinity",
		},
		Series: series,
	}, nil
}
