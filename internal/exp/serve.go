package exp

import (
	"fmt"

	"repro/internal/rcsched"
	"repro/internal/stats"
)

// Serving-experiment trace parameters: a 24-job seeded multi-user stream of
// mixed IDEA/ADPCM/vecadd requests on the EPXA4.
const (
	ServeJobs      = 24
	ServeSeed      = int64(4242)
	ServeMeanGapPs = 0.15e9 // 0.15 ms between arrivals on average
)

// ServeTrace returns the experiment's canonical job stream (deadlines at
// the default service-level budget; re-derive with rcsched.SetBudgets).
func ServeTrace() []rcsched.Job {
	jobs, err := rcsched.Trace(ServeJobs, ServeSeed, ServeMeanGapPs)
	if err != nil {
		panic(err) // the pinned parameters are valid by construction
	}
	return jobs
}

// RunServe regenerates the dynamic-reconfiguration serving experiment: the
// 24-job stream is served under every scheduling policy, swept over the
// shell slot count at the default configuration-port bandwidth and over the
// bandwidth at two slots. Every job's output is verified against the golden
// algorithm inside the scheduler.
func RunServe() (*Result, error) {
	jobs := ServeTrace()
	series := map[string]float64{}

	slotsTb := &stats.Table{
		Title: fmt.Sprintf("serving %d mixed jobs on EPXA4, policy x slot count (config port %d KB/s)",
			ServeJobs, int(rcsched.DefaultConfigBW)/1000),
		Headers: []string{"policy", "slots", "makespan ms", "mean wait ms", "mean latency ms",
			"reconfigs", "reconfig ms", "utilisation", "faults"},
	}
	for _, policy := range []string{"fcfs", "sjf", "affinity"} {
		for _, slots := range []int{1, 2, 4} {
			rep, err := rcsched.Serve(rcsched.Config{Policy: policy, Slots: slots}, jobs)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s/%dslots", policy, slots)
			slotsTb.AddRow(policy, fmt.Sprintf("%d", slots),
				ms(rep.MakespanPs), ms(rep.MeanWaitPs), ms(rep.MeanLatencyPs),
				fmt.Sprintf("%d", rep.Reconfigs), ms(rep.TotalReconfigPs),
				fmt.Sprintf("%.2f", rep.UtilMean), fmt.Sprintf("%d", rep.VIM.Faults))
			series["makespan_ms/"+label] = rep.MakespanPs / 1e9
			series["wait_ms/"+label] = rep.MeanWaitPs / 1e9
			series["latency_ms/"+label] = rep.MeanLatencyPs / 1e9
			series["reconfigs/"+label] = float64(rep.Reconfigs)
			series["reconfig_ms/"+label] = rep.TotalReconfigPs / 1e9
			series["util/"+label] = rep.UtilMean
		}
	}

	bwTb := &stats.Table{
		Title:   "serving the same stream on 2 slots, policy x configuration-port bandwidth",
		Headers: []string{"policy", "config BW KB/s", "makespan ms", "mean latency ms", "reconfigs", "reconfig ms"},
	}
	for _, policy := range []string{"fcfs", "affinity"} {
		for _, bw := range []float64{250_000, 1_000_000, 4_000_000} {
			rep, err := rcsched.Serve(rcsched.Config{Policy: policy, Slots: 2, ConfigBW: bw}, jobs)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s/%dKBps", policy, int(bw)/1000)
			bwTb.AddRow(policy, fmt.Sprintf("%d", int(bw)/1000),
				ms(rep.MakespanPs), ms(rep.MeanLatencyPs),
				fmt.Sprintf("%d", rep.Reconfigs), ms(rep.TotalReconfigPs))
			series["makespan_ms/"+label] = rep.MakespanPs / 1e9
			series["latency_ms/"+label] = rep.MeanLatencyPs / 1e9
			series["reconfig_ms/"+label] = rep.TotalReconfigPs / 1e9
		}
	}

	return &Result{
		ID:     "SERVE",
		Title:  "Dynamic reconfiguration scheduler: multi-user job serving",
		Tables: []*stats.Table{slotsTb, bwTb},
		Notes: []string{
			"jobs attach/detach VIM sessions at runtime; slots load/unload coprocessors while neighbours keep translating; every output is verified against the golden algorithm",
			"reconfiguration time is the bitstream size over the configuration-port bandwidth; bitstream-affinity avoids it by reusing resident coprocessors",
			"the slower the configuration port, the larger affinity's lead over FCFS",
		},
		Series: series,
	}, nil
}
