package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"repro"
	"repro/internal/baseline"
	"repro/internal/copro"
	"repro/internal/copro/vecadd"
	"repro/internal/imu"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vim"
)

// RunFig3 reproduces the motivating example: the same vector addition as
// (1) pure software, (2) hand-managed typical coprocessor, (3) VIM-based
// coprocessor — comparing both run time and the programming burden the
// paper's Figure 3 illustrates (lines of platform-aware code).
func RunFig3() (*Result, error) {
	const n = 4096 // elements; 3 x 16 KB objects exceed the DP RAM
	seed := int64(303)

	// Pure software.
	sys, err := repro.NewSystem(repro.Config{})
	if err != nil {
		return nil, err
	}
	p, err := sys.NewProcess("vecadd")
	if err != nil {
		return nil, err
	}
	a, err := p.Alloc(4 * n)
	if err != nil {
		return nil, err
	}
	b, err := p.Alloc(4 * n)
	if err != nil {
		return nil, err
	}
	c, err := p.Alloc(4 * n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	av := make([]byte, 4*n)
	bv := make([]byte, 4*n)
	rng.Read(av)
	rng.Read(bv)
	if err := a.Write(av); err != nil {
		return nil, err
	}
	if err := b.Write(bv); err != nil {
		return nil, err
	}
	swRep := p.RunVecAddSW(a, b, c, n)

	// VIM-based coprocessor (three mapped objects, one execute call).
	if err := p.FPGALoad(repro.VecAddBitstream("EPXA1")); err != nil {
		return nil, err
	}
	if err := p.FPGAMapObject(repro.VecAddObjA, a, repro.In); err != nil {
		return nil, err
	}
	if err := p.FPGAMapObject(repro.VecAddObjB, b, repro.In); err != nil {
		return nil, err
	}
	if err := p.FPGAMapObject(repro.VecAddObjC, c, repro.Out); err != nil {
		return nil, err
	}
	vimRep, err := p.FPGAExecute(n)
	if err != nil {
		return nil, err
	}

	// Typical coprocessor: the hand-written chunking loop of Figure 3.
	runner, err := baseline.NewRunner(platform.EPXA1(), repro.VecAddBitstream("EPXA1"))
	if err != nil {
		return nil, err
	}
	streams := []*baseline.Stream{
		{ID: vecadd.ObjA, Dir: vim.In, ItemBytes: 4, Data: av},
		{ID: vecadd.ObjB, Dir: vim.In, ItemBytes: 4, Data: bv},
		{ID: vecadd.ObjC, Dir: vim.Out, ItemBytes: 4},
	}
	typRep, err := runner.RunChunked(n, streams, func(items int) []uint32 {
		return []uint32{uint32(items)}
	})
	if err != nil {
		return nil, err
	}

	tb := &stats.Table{
		Title:   fmt.Sprintf("vector addition, %d elements (3 x %d KB objects)", n, 4*n/1024),
		Headers: []string{"version", "total ms", "platform-aware app code", "notes"},
	}
	tb.AddRow("pure SW", ms(swRep.TotalPs()), "0 lines", "add_vectors(A,B,C,SIZE)")
	tb.AddRow("typical coprocessor", ms(typRep.TotalPs()), "~10 lines (chunk loop)", "explicit DP_SIZE chunking, copies")
	tb.AddRow("VIM-based coprocessor", ms(vimRep.TotalPs()), "4 lines (map+execute)", "no platform details in app code")

	return &Result{
		ID:     "FIG3",
		Title:  "Motivating example",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"the VIM version keeps the software shape of the pure-SW call while handling datasets larger than the DP RAM",
		},
		Series: map[string]float64{
			"sw_ms":  swRep.TotalPs() / 1e9,
			"typ_ms": typRep.TotalPs() / 1e9,
			"vim_ms": vimRep.TotalPs() / 1e9,
		},
	}, nil
}

// RunFig7 regenerates the timing diagram of a translated coprocessor read
// access: a one-shot testbench records the CP_* port waveform and the
// result asserts the 4-cycle latency.
func RunFig7() (*Result, error) {
	dp, err := mem.NewDPRAM(16*1024, 2*1024)
	if err != nil {
		return nil, err
	}
	u, err := imu.New(imu.Config{PageShift: 11, Entries: 8, Mode: imu.MultiCycle}, dp)
	if err != nil {
		return nil, err
	}
	port := copro.NewPort()
	u.Bind(port)
	if err := u.SetEntry(0, imu.TLBEntry{Valid: true, Obj: 2, VPage: 0, Frame: 3}); err != nil {
		return nil, err
	}
	if err := dp.WriteB(dp.PageBase(3)+0x10, 0xcafe0042, 0xf); err != nil {
		return nil, err
	}

	rec := trace.NewRecorder(25_000) // 25 ns: one 40 MHz cycle per column
	sigClk := rec.Declare("clk", 1)
	sigAddr := rec.Declare("cp_addr", 24)
	sigAcc := rec.Declare("cp_access", 1)
	sigHit := rec.Declare("cp_tlbhit", 1)
	sigDin := rec.Declare("cp_din", 32)

	var accessAt, hitAt int64 = -1, -1
	u.SetTrace(&imu.TraceHooks{OnEdge: func(cy uint64, cp copro.CPOut, out copro.IMUOut) {
		t := int64(cy)
		rec.Record(sigClk, t, 1)
		rec.Record(sigAddr, t, uint64(cp.Addr))
		b2u := func(b bool) uint64 {
			if b {
				return 1
			}
			return 0
		}
		rec.Record(sigAcc, t, b2u(cp.Access))
		rec.Record(sigHit, t, b2u(out.TLBHit))
		rec.Record(sigDin, t, uint64(out.DIn))
		if cp.Access && accessAt < 0 {
			accessAt = t
		}
		if out.TLBHit && hitAt < 0 {
			hitAt = t
		}
	}})

	eng := sim.NewEngine()
	dom := eng.NewDomain("imu", 40_000_000)
	m := copro.NewMem(port)
	issued := false
	var got uint32
	dom.Attach(sim.TickerFunc{
		OnEval: func() {
			m.Step()
			if m.Completed() {
				got = m.Data()
			}
			if !issued && m.Ready() {
				m.Read(2, 0x10, copro.Size32)
				issued = true
			}
			m.Drive(false, false)
		},
		OnUpdate: func() { m.Commit() },
	})
	dom.Attach(u)
	if _, err := eng.RunUntil(func() bool { return got != 0 }, 100); err != nil {
		return nil, err
	}

	latency := hitAt - accessAt
	tb := &stats.Table{
		Title:   "translated read access",
		Headers: []string{"event", "cycle"},
	}
	tb.AddRow("CP_ACCESS asserted", fmt.Sprintf("%d", accessAt))
	tb.AddRow("CP_TLBHIT + data valid", fmt.Sprintf("%d", hitAt))
	tb.AddRow("latency (cycles)", fmt.Sprintf("%d", latency))

	wave := rec.RenderASCII(0, hitAt+2)
	return &Result{
		ID:     "FIG7",
		Title:  "Coprocessor read access timing",
		Tables: []*stats.Table{tb},
		Notes: []string{
			"data is ready on the 4th rising edge after the access is generated (paper Figure 7)",
			"waveform:\n" + wave,
		},
		Series: map[string]float64{
			"latency_cycles": float64(latency),
			"read_value_ok":  boolTo01(got == 0xcafe0042),
		},
	}, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// RunFig8 regenerates the adpcmdecode measurements: pure software vs the
// VIM-based coprocessor for 2/4/8 KB inputs, with the three stacked
// components of the coprocessor bars.
func RunFig8() (*Result, error) {
	sizes := []int{2048, 4096, 8192}
	tb := &stats.Table{
		Title: "adpcmdecode (coprocessor + IMU @ 40 MHz, output = 4x input)",
		Headers: []string{"input", "SW ms", "VIM total ms", "HW ms", "SW(DP) ms",
			"SW(IMU) ms", "speedup", "faults"},
	}
	series := map[string]float64{}
	var notes []string
	for _, n := range sizes {
		seed := int64(800 + n)
		swRep, err := AdpcmSW(repro.Config{}, n, seed)
		if err != nil {
			return nil, err
		}
		hwRep, err := AdpcmVIM(repro.Config{}, n, seed)
		if err != nil {
			return nil, err
		}
		speedup := swRep.TotalPs() / hwRep.TotalPs()
		label := fmt.Sprintf("%dKB", n/1024)
		tb.AddRow(label, ms(swRep.TotalPs()), ms(hwRep.TotalPs()), ms(hwRep.HWPs),
			ms(hwRep.SWDPPs), ms(hwRep.SWIMUPs+hwRep.SWOSPs),
			fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%d", hwRep.VIM.Faults))
		series["sw_ms/"+label] = swRep.TotalPs() / 1e9
		series["vim_ms/"+label] = hwRep.TotalPs() / 1e9
		series["speedup/"+label] = speedup
		series["faults/"+label] = float64(hwRep.VIM.Faults)
		series["swimu_frac/"+label] = (hwRep.SWIMUPs + hwRep.SWOSPs) / hwRep.TotalPs()
	}
	notes = append(notes,
		"paper speedups: 1.5x / 1.5x / 1.6x; no page faults at 2 KB, faults from 4 KB onwards")
	return &Result{ID: "FIG8", Title: "adpcmdecode execution times",
		Tables: []*stats.Table{tb}, Notes: notes, Series: series}, nil
}

// RunFig9 regenerates the IDEA measurements: pure software, the normal
// (single-shot, no-OS) coprocessor, and the VIM-based coprocessor for
// 4/8/16/32 KB inputs. The normal version exceeds the available memory at
// 16 KB and beyond, exactly as in the paper.
func RunFig9() (*Result, error) {
	sizes := []int{4096, 8192, 16384, 32768}
	tb := &stats.Table{
		Title: "IDEA (core @ 6 MHz, IMU + memory @ 24 MHz)",
		Headers: []string{"input", "SW ms", "normal ms", "VIM ms", "HW ms",
			"SW(DP) ms", "SW(IMU) ms", "speedup(norm)", "speedup(VIM)", "faults"},
	}
	series := map[string]float64{}
	for _, n := range sizes {
		seed := int64(900 + n)
		swRep, err := IdeaSW(repro.Config{}, n, seed)
		if err != nil {
			return nil, err
		}
		normRep, err := IdeaNormal(platform.EPXA1(), n, seed)
		if err != nil {
			return nil, err
		}
		vimRep, err := IdeaVIM(repro.Config{}, n, seed)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%dKB", n/1024)
		normMs := "exceeds memory"
		normSpeed := "—"
		if normRep != nil {
			normMs = ms(normRep.TotalPs())
			normSpeed = fmt.Sprintf("%.1fx", swRep.TotalPs()/normRep.TotalPs())
			series["normal_ms/"+label] = normRep.TotalPs() / 1e9
			series["speedup_normal/"+label] = swRep.TotalPs() / normRep.TotalPs()
		}
		speed := swRep.TotalPs() / vimRep.TotalPs()
		tb.AddRow(label, ms(swRep.TotalPs()), normMs, ms(vimRep.TotalPs()),
			ms(vimRep.HWPs), ms(vimRep.SWDPPs), ms(vimRep.SWIMUPs+vimRep.SWOSPs),
			normSpeed, fmt.Sprintf("%.1fx", speed), fmt.Sprintf("%d", vimRep.VIM.Faults))
		series["sw_ms/"+label] = swRep.TotalPs() / 1e9
		series["vim_ms/"+label] = vimRep.TotalPs() / 1e9
		series["speedup_vim/"+label] = speed
		series["faults/"+label] = float64(vimRep.VIM.Faults)
		series["swimu_frac/"+label] = (vimRep.SWIMUPs + vimRep.SWOSPs) / vimRep.TotalPs()
		series["hw_only_speedup/"+label] = swRep.TotalPs() / vimRep.HWPs
	}
	notes := []string{
		"paper: SW 26/53/105/211 ms; speedups ≈11-12x; normal coprocessor exceeds available memory at 16/32 KB",
		strings.TrimSpace(`bars: "normal" stages the whole dataset statically (no OS); "VIM" demand-pages transparently`),
	}
	return &Result{ID: "FIG9", Title: "IDEA execution times",
		Tables: []*stats.Table{tb}, Notes: notes, Series: series}, nil
}
