package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Seededrand keeps every random draw attributable to an explicit seed.
// Package-level math/rand functions (rand.Intn, rand.Float64, ...) pull
// from the process-global source, whose state depends on everything else
// that touched it — sharing it across subsystems couples their streams
// and breaks seeded replay. The rule: construct a local generator with
// rand.New(rand.NewSource(seed)) where the seed expression flows from a
// Config.Seed, and pass *rand.Rand down.
var Seededrand = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions and rand.New without an explicit rand.NewSource(seed): " +
		"all randomness must flow from a Config.Seed",
	Run: runSeededrand,
}

// seededrandCtors are the math/rand package-level functions that build
// generators rather than draw from the global one. rand.New is checked
// separately at each call site for an explicit NewSource argument.
var seededrandCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *Rand, draws nothing itself
	"NewPCG":     true, // math/rand/v2: explicit seed pair
	"NewChaCha8": true, // math/rand/v2: explicit seed
}

func isMathRand(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

func runSeededrand(pass *analysis.Pass) (interface{}, error) {
	// Global-source draws: any package-level math/rand function that is
	// not a generator constructor.
	for ident, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || !isMathRand(fn.Pkg()) {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue
		}
		if !seededrandCtors[fn.Name()] {
			pass.Reportf(ident.Pos(),
				"package-level rand.%s draws from the process-global source: "+
					"use rand.New(rand.NewSource(seed)) with a seed from the config",
				fn.Name())
		}
	}
	// rand.New call sites: the source argument must be constructed in
	// place from an explicit seed expression, not threaded in from afar.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil || !isMathRand(callee.Pkg()) || callee.Name() != "New" {
				return true
			}
			if arg, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
				if src := calleeFunc(pass, arg); src != nil && isMathRand(src.Pkg()) &&
					seededrandCtors[src.Name()] && src.Name() != "New" {
					return true // rand.New(rand.NewSource(<seed>)): explicit
				}
			}
			pass.Reportf(call.Pos(),
				"rand.New without an inline rand.NewSource(seed): construct the generator "+
					"from an explicit seed so the draw stream is attributable to the config")
			return true
		})
	}
	return nil, nil
}

// calleeFunc resolves a call expression's static callee, or nil (builtin,
// function value, type conversion).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
