// Package walltime is a vimlint fixture: every host-clock read or wait
// must be flagged.
package walltime

import "time"

func bad() {
	_ = time.Now()               // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	_ = time.Since(time.Time{})  // want `time.Since reads the wall clock`
	_ = time.Until(time.Time{})  // want `time.Until reads the wall clock`
	_ = time.NewTimer(0)         // want `time.NewTimer reads the wall clock`
	_ = time.NewTicker(1)        // want `time.NewTicker reads the wall clock`
	_ = time.After(1)            // want `time.After reads the wall clock`
	_ = time.Tick(1)             // want `time.Tick reads the wall clock`
	_ = time.AfterFunc(1, nil)   // want `time.AfterFunc reads the wall clock`
}

func indirect() {
	// Taking the function's value is a read waiting to happen.
	clock := time.Now // want `time.Now reads the wall clock`
	_ = clock
}
