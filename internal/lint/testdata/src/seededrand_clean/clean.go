// Package seededrandclean is a vimlint fixture: generators constructed
// from an explicit seed, and draws through them, are the sanctioned
// pattern and must not be flagged.
package seededrandclean

import "math/rand"

type config struct{ Seed int64 }

func run(cfg config) float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := float64(rng.Intn(100))
	total += rng.Float64()
	for _, i := range rng.Perm(8) {
		total += float64(i)
	}
	return total
}

func derived(cfg config, stream int64) *rand.Rand {
	// Deriving sub-streams from the config seed stays attributable.
	return rand.New(rand.NewSource(cfg.Seed ^ stream<<32))
}
