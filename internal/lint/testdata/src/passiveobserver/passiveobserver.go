// Package passiveobserver is a vimlint fixture: a type implementing the
// serving layer's Observer interface must not assign into the observed
// parameters — even a by-value write is either an attempt to steer the
// run or a silent no-op bug.
package passiveobserver

import "repro/internal/rcsched"

// Mutator implements rcsched.Observer and misbehaves.
type Mutator struct {
	finished int
	last     rcsched.JobReport
}

var _ rcsched.Observer = (*Mutator)(nil)

func (m *Mutator) JobShed(jr rcsched.JobReport) {
	jr.LatencyPs = 0 // want `Mutator.JobShed implements rcsched.Observer and must be passive`
}

func (m *Mutator) JobDispatched(jobID, slot int, atPs float64, path string) {
	m.finished++ // writing own state is fine
}

func (m *Mutator) JobFinished(jr rcsched.JobReport) {
	jr.Faults++       // want `Mutator.JobFinished implements rcsched.Observer and must be passive`
	jr.Missed = false // want `Mutator.JobFinished implements rcsched.Observer and must be passive`
	m.last = jr       // copying the report out is fine
}
