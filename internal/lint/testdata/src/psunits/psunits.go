// Package psunits is a vimlint fixture: Ps-suffixed identifiers carrying
// anything but an int64/float64 scalar, and arithmetic mixing picosecond
// values with other time units, must be flagged.
package psunits

import "time"

type report struct {
	LatencyPs float64
	StartPs   int64
	WaitPs    time.Duration       // want `WaitPs is suffixed Ps but carries time.Duration`
	CountPs   int                 // want `CountPs is suffixed Ps but carries int`
	FinePs    float32             // want `FinePs is suffixed Ps but carries float32`
	NamePs    func(int) string    // want `NamePs is suffixed Ps but carries func\(int\) string`
	WhenPs    func(time.Duration) // want `WhenPs is suffixed Ps but carries func\(time.Duration\)`
}

func budgetPs() uint32 { // want `budgetPs is suffixed Ps but carries uint32`
	return 0
}

func narrowed(deadlinePs int32) { // want `deadlinePs is suffixed Ps but carries int32`
	_ = deadlinePs
}

const tickMs = 4.0

func mixed(nowPs, lagMs float64, spanUs float64) {
	_ = nowPs + lagMs  // want `mixed-unit arithmetic`
	_ = nowPs > tickMs // want `mixed-unit arithmetic`
	_ = spanUs - nowPs // want `mixed-unit arithmetic`
	_ = lagMs * spanUs // want `mixed-unit arithmetic`
}

type engine struct{}

func (engine) NowPs() float64  { return 0 }
func (engine) TotalMs() string { return "" }

func mixedCalls(e engine, elapsedMs float64) {
	_ = e.NowPs() + elapsedMs // want `mixed-unit arithmetic`
}
