// Package allow is a vimlint fixture for the //lint:allow escape hatch:
// a directive with a reason suppresses the named analyzer on its line or
// the next one; a directive without a reason, or naming an unknown
// analyzer, is itself a diagnostic.
package allow

import "time"

func stampedAbove() int64 {
	//lint:allow walltime report generation stamps are genuinely wall-clock
	return time.Now().UnixNano()
}

func stampedSameLine() time.Time {
	return time.Now() //lint:allow walltime fixture demonstrates same-line allows
}

func unexcused() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func wrongAnalyzer() time.Time {
	//lint:allow seededrand the directive names the wrong analyzer
	return time.Now() // want `time.Now reads the wall clock`
}

//lint:allow walltime // want `//lint:allow walltime needs a reason`

//lint:allow bogus some reason // want `//lint:allow names unknown analyzer "bogus"`

//lint:allow // want `//lint:allow needs an analyzer name and a reason`
