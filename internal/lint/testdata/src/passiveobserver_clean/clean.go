// Package passiveobserverclean is a vimlint fixture: observers that only
// read their parameters and write their own state are passive; a type
// that merely shares method names with the interface without
// implementing it is out of scope.
package passiveobserverclean

import (
	"repro/internal/fleet"
	"repro/internal/rcsched"
)

// Recorder implements rcsched.Observer passively.
type Recorder struct {
	sheds      []rcsched.JobReport
	dispatches int
}

var _ rcsched.Observer = (*Recorder)(nil)

func (r *Recorder) JobShed(jr rcsched.JobReport) {
	r.sheds = append(r.sheds, jr)
}

func (r *Recorder) JobDispatched(jobID, slot int, atPs float64, path string) {
	r.dispatches++
}

func (r *Recorder) JobFinished(jr rcsched.JobReport) {
	local := jr
	local.Slot = -1 // a local copy is the caller's own value
	_ = local
}

// PerBoard implements fleet.Observer (one Recorder per board).
type PerBoard struct{ rec Recorder }

var _ fleet.Observer = (*PerBoard)(nil)

func (p *PerBoard) BoardObserver(board int) rcsched.Observer { return &p.rec }

// NotAnObserver shares a method name with the interface but does not
// implement it; its parameter writes are someone else's business.
type NotAnObserver struct{}

func (NotAnObserver) JobFinished(jr rcsched.JobReport) {
	jr.Slot = 0
}
