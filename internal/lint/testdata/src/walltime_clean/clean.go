// Package walltimeclean is a vimlint fixture: pure time.Duration
// packaging and explicit-instant construction never touch the host clock
// and must not be flagged.
package walltimeclean

import "time"

func durations() time.Duration {
	d := 5 * time.Millisecond
	d += time.Duration(1e9)
	return d
}

func explicitInstant() time.Time {
	// An instant built from explicit inputs is a pure value.
	return time.Unix(0, 0).Add(time.Second)
}

func formatting(t time.Time) string {
	return t.Format(time.RFC3339)
}
