// Package psunitsclean is a vimlint fixture: picosecond scalars used
// homogeneously, conversion factors named *Per*, and explicit type
// conversions are the sanctioned shapes and must not be flagged.
package psunitsclean

import "time"

const psPerUs = 1e6

type report struct {
	LatencyPs   float64
	ArrivalPs   float64
	StartPs     int64
	DeadlinesPs []float64
	ByAppPs     map[string]float64
	ExecEstPs   func(size int) float64 // an estimator returning picoseconds carries them
}

func homogeneous(r report) float64 {
	slack := r.LatencyPs - r.ArrivalPs
	return slack + r.DeadlinesPs[0]
}

func converted(nowPs float64, d time.Duration) float64 {
	us := nowPs / psPerUs        // a *Per* factor is an explicit conversion
	back := us * psPerUs         // and converts in either direction
	return back + float64(d)*1e3 // an explicit type conversion is neutral
}

func literals(nowPs float64) float64 {
	return nowPs/1e9 + 2.5
}
