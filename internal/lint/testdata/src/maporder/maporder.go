// Package maporder is a vimlint fixture: order-sensitive work inside a
// range-over-map — writer output, escaping unsorted appends, telemetry
// sinks — must be flagged.
package maporder

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/telemetry"
)

func promText(series map[string]float64) string {
	var b strings.Builder
	for key, v := range series {
		fmt.Fprintf(&b, "%s %g\n", key, v) // want `io.Writer argument passed to fmt.Fprintf`
	}
	return b.String()
}

func writerMethod(series map[string]string, w io.Writer) {
	var b strings.Builder
	for key := range series {
		b.WriteString(key)     // want `io.Writer method call`
		w.Write([]byte(key))   // want `io.Writer method call`
		io.WriteString(w, key) // want `io.Writer argument passed to io.WriteString`
		fmt.Println(key, w)    // want `fmt.Println \(writes to a process-global stream\)`
	}
}

func escapingAppend(cells map[string]int) []string {
	var rows []string
	for k := range cells {
		rows = append(rows, k) // want `appending to rows in map-iteration order`
	}
	return rows
}

type report struct{ Rows []string }

func fieldEscape(cells map[string]int, r *report) {
	var rows []string
	for k := range cells {
		rows = append(rows, k) // want `appending to rows in map-iteration order`
	}
	r.Rows = rows
}

func sinkCalls(counts map[string]uint64, m *telemetry.Meter) {
	for k, n := range counts {
		m.Count("events", n, "key", k) // want `telemetry sink call`
	}
}
