// Package seededrand is a vimlint fixture: draws from the process-global
// math/rand source and seed-less generator construction must be flagged.
package seededrand

import "math/rand"

func globalDraws() {
	_ = rand.Intn(10)        // want `package-level rand.Intn draws from the process-global source`
	_ = rand.Float64()       // want `package-level rand.Float64 draws from the process-global source`
	_ = rand.Perm(4)         // want `package-level rand.Perm draws from the process-global source`
	rand.Shuffle(2, swapNop) // want `package-level rand.Shuffle draws from the process-global source`
	_ = rand.Int63n(9)       // want `package-level rand.Int63n draws from the process-global source`
}

func swapNop(i, j int) {}

func laundered(src rand.Source) *rand.Rand {
	// The seed is hidden behind the Source argument: not attributable.
	return rand.New(src) // want `rand.New without an inline rand.NewSource`
}

func indirectSource() *rand.Rand {
	return rand.New(someSource()) // want `rand.New without an inline rand.NewSource`
}

func someSource() rand.Source { return rand.NewSource(1) }
