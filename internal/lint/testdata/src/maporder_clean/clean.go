// Package maporderclean is a vimlint fixture: the collect-keys-then-sort
// idiom, map-to-map copies and purely local accumulations are the
// sanctioned shapes and must not be flagged.
package maporderclean

import (
	"fmt"
	"sort"
	"strings"
)

func collectThenSort(series map[string]float64) string {
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %g\n", k, series[k])
	}
	return b.String()
}

func sortSlice(cells map[string]int) []string {
	var rows []string
	for k := range cells {
		rows = append(rows, k)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

func mapCopy(dst, src map[int]string) {
	for k, v := range src {
		dst[k] = v
	}
}

func localOnly(cells map[string]int) int {
	var hits []string
	total := 0
	for k, v := range cells {
		if v > 0 {
			hits = append(hits, k)
		}
		total += v
	}
	return total + len(hits)
}
