package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Maporder flags range-over-map loops whose bodies do order-sensitive
// work: writing to an io.Writer (the Prometheus/JSON/trace exporters'
// byte-identity dies here), appending to a slice that escapes the
// function unsorted, or driving a telemetry sink. Go randomises map
// iteration order per run, so any of these silently breaks byte-identical
// output. The sanctioned idiom — collect the keys, sort, range over the
// sorted slice — is recognised: an append whose target is passed to a
// sort.*/slices.Sort* call anywhere in the same function is clean, and so
// is a purely local accumulation that never escapes.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid order-sensitive work (io.Writer writes, escaping appends, telemetry sinks) " +
		"inside range-over-map: sort keys first",
	Run: runMaporder,
}

// ioWriterIface is a structural io.Writer (Write(p []byte) (n int, err
// error)) built without importing io, so the check works on packages that
// never mention io themselves.
var ioWriterIface = func() *types.Interface {
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type())),
		false)
	i := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	i.Complete()
	return i
}()

func runMaporder(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					maporderFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				maporderFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// scopeInspect walks root like ast.Inspect but does not descend into
// nested function literals: they are scanned as their own scope.
func scopeInspect(root ast.Node, f func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return f(n)
	})
}

// maporderFunc checks every range-over-map directly inside one function
// body, using that body as the scope for the sorted-later and escape
// analyses.
func maporderFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	scopeInspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		maporderRange(pass, rng, body)
		return true
	})
}

// maporderRange scans one map-range body for order-sensitive operations.
func maporderRange(pass *analysis.Pass, rng *ast.RangeStmt, scope *ast.BlockStmt) {
	appends := map[string]token.Pos{} // append target expr -> first pos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if why := orderSensitiveCall(pass, n); why != "" {
				pass.Reportf(n.Pos(), "%s inside range over map: iteration order is "+
					"nondeterministic; collect and sort the keys first", why)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pass, call, "append") || i >= len(n.Lhs) {
					continue
				}
				key := types.ExprString(n.Lhs[i])
				if _, seen := appends[key]; !seen {
					appends[key] = n.Pos()
				}
			}
		}
		return true
	})
	for target, pos := range appends {
		if sortedInScope(pass, scope, target) {
			continue
		}
		if escapesScope(pass, scope, target) {
			pass.Reportf(pos, "appending to %s in map-iteration order, and it escapes the "+
				"function unsorted: sort the keys (or %s) before it is observed", target, target)
		}
	}
}

// orderSensitiveCall classifies a call inside a map-range body, returning
// a non-empty description when its effect depends on iteration order.
func orderSensitiveCall(pass *analysis.Pass, call *ast.CallExpr) string {
	// Method call on an io.Writer or a telemetry type.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && tv.Type != nil {
			// A method call takes the receiver's address implicitly, so an
			// addressable value of a pointer-writer counts too.
			if types.Implements(tv.Type, ioWriterIface) ||
				types.Implements(types.NewPointer(tv.Type), ioWriterIface) {
				return "io.Writer method call (" + types.ExprString(call.Fun) + ")"
			}
			if t := tv.Type; isTelemetryType(t) {
				return "telemetry sink call (" + types.ExprString(call.Fun) + ")"
			}
		}
	}
	if fn := calleeFunc(pass, call); fn != nil {
		// Package-level printers write to process-global streams.
		if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "fmt" || pkg.Path() == "log") &&
			strings.HasPrefix(strings.TrimPrefix(fn.Name(), "F"), "Print") {
			if pkg.Path() == "fmt" && strings.HasPrefix(fn.Name(), "F") {
				return "" // Fprint* already caught via its writer argument
			}
			return pkg.Name() + "." + fn.Name() + " (writes to a process-global stream)"
		}
	}
	// A writer handed to any callee is written in iteration order.
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil &&
			!tv.IsType() && types.Implements(tv.Type, ioWriterIface) {
			return "io.Writer argument passed to " + types.ExprString(call.Fun)
		}
	}
	return ""
}

// isTelemetryType reports whether t (after pointer deref) is a named type
// defined in a telemetry package — the sinks whose call order the
// exporters' byte-identity depends on.
func isTelemetryType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "telemetry" || strings.HasSuffix(path, "/telemetry")
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// sortFuncs are the sort-family functions whose first argument comes out
// order-canonical.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortedInScope reports whether the expression (by printed form) is
// sorted by a sort.*/slices.* call anywhere in the function scope — the
// collect-keys-then-sort idiom.
func sortedInScope(pass *analysis.Pass, scope *ast.BlockStmt, target string) bool {
	found := false
	scopeInspect(scope, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || found {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); (p != "sort" && p != "slices") || !sortFuncs[fn.Name()] {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if types.ExprString(arg) == target {
			found = true
			return true
		}
		// sort.Sort(byLen(keys)): unwrap a single-argument conversion.
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 &&
			types.ExprString(ast.Unparen(conv.Args[0])) == target {
			found = true
		}
		return true
	})
	return found
}

// escapesScope reports whether the expression (by printed form) leaves
// the function: returned, stored into a field/element, placed in a
// composite literal, spread into another slice, or passed to a non-sort
// callee. A slice that never escapes cannot leak map order into a Report
// or an export.
func escapesScope(pass *analysis.Pass, scope *ast.BlockStmt, target string) bool {
	matches := func(e ast.Expr) bool { return types.ExprString(ast.Unparen(e)) == target }
	escaped := false
	scopeInspect(scope, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			// Only a directly returned slice escapes here; appearances
			// inside larger result expressions are classified by the
			// composite-literal and call cases below.
			for _, r := range n.Results {
				if matches(r) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if matches(el) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !matches(rhs) || i >= len(n.Lhs) {
					continue
				}
				switch ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					escaped = true
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass, n)
			sortCall := fn != nil && fn.Pkg() != nil &&
				(fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices") && sortFuncs[fn.Name()]
			appendCall := isBuiltin(pass, n, "append")
			for i, arg := range n.Args {
				if !matches(arg) {
					continue
				}
				if sortCall {
					continue // order-canonicalising, not an escape
				}
				if appendCall && i == 0 {
					continue // rebuilding the same slice
				}
				if isBuiltin(pass, n, "len") || isBuiltin(pass, n, "cap") {
					continue
				}
				escaped = true
			}
		}
		return !escaped
	})
	return escaped
}
