package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestPassiveobserver(t *testing.T) {
	linttest.Run(t, lint.Passiveobserver, "passiveobserver")
}

func TestPassiveobserverClean(t *testing.T) {
	linttest.Run(t, lint.Passiveobserver, "passiveobserver_clean")
}
