package lint

import (
	"go/types"

	"repro/internal/lint/analysis"
)

// walltimeBanned is the set of package time functions that read or wait
// on the host's wall clock. Construction helpers that merely package
// durations (time.Duration arithmetic, time.Unix on explicit inputs,
// formatting) are not listed: they are pure.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Walltime forbids consulting the host clock. Every simulated result in
// this repository must be a pure function of config+seed — bit-identical
// under the lockstep and event-driven schedulers and across hosts — and a
// single time.Now() in a hot path silently breaks byte-identical replay.
// Time inside the simulation is the engine's picosecond clock
// (sim.Engine.NowPs); code that legitimately needs the wall clock (a
// benchmark report stamping when it was generated) must say so with
// //lint:allow walltime <reason>.
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock reads (time.Now/Since/Until/Sleep/After/Tick/NewTimer/NewTicker): " +
		"simulated output must be a pure function of config+seed",
	Run: runWalltime,
}

func runWalltime(pass *analysis.Pass) (interface{}, error) {
	for ident, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue
		}
		if walltimeBanned[fn.Name()] {
			pass.Reportf(ident.Pos(),
				"time.%s reads the wall clock: simulated time only (sim.Engine.NowPs); "+
					"//lint:allow walltime <reason> if this output is genuinely wall-clock",
				fn.Name())
		}
	}
	return nil, nil
}
