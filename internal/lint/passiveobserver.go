package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Passiveobserver enforces the observability contract the record/replay
// and telemetry layers are built on: an observer watches, it never
// steers. Types implementing the rcsched or fleet Observer interfaces
// receive the serving loop's reports and decisions after the state change
// is committed; writing into those parameters (even into a by-value copy,
// where the write is a silent no-op) is either an attempt to influence
// the run or a latent bug the differential passivity tests would have to
// catch at runtime. The analyzer finds every type in the package whose
// method set implements an Observer interface and flags assignments whose
// target is rooted at a parameter of the interface's methods.
var Passiveobserver = &analysis.Analyzer{
	Name: "passiveobserver",
	Doc: "types implementing the rcsched/fleet Observer interfaces must not assign into " +
		"observed parameters: observation is strictly passive",
	Run: runPassiveobserver,
}

// observerIfaces collects the Observer interfaces visible to the package:
// named interface types called "Observer" defined in an rcsched or fleet
// package (the package itself, or anywhere in its import closure).
func observerIfaces(pkg *types.Package) map[*types.Interface]string {
	out := map[*types.Interface]string{}
	seen := map[*types.Package]bool{}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		path := p.Path()
		if path == "rcsched" || path == "fleet" ||
			strings.HasSuffix(path, "/rcsched") || strings.HasSuffix(path, "/fleet") {
			if obj, ok := p.Scope().Lookup("Observer").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					out[iface] = p.Name() + ".Observer"
				}
			}
		}
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	visit(pkg)
	return out
}

func runPassiveobserver(pass *analysis.Pass) (interface{}, error) {
	ifaces := observerIfaces(pass.Pkg)
	if len(ifaces) == 0 {
		return nil, nil
	}
	// Which named types of this package observe, and through which
	// interface methods?
	watched := map[types.Object]map[string]string{} // type -> method name -> iface label
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for iface, label := range ifaces {
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			methods := watched[tn]
			if methods == nil {
				methods = map[string]string{}
				watched[tn] = methods
			}
			for i := 0; i < iface.NumMethods(); i++ {
				methods[iface.Method(i).Name()] = label
			}
		}
	}
	if len(watched) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvType := receiverTypeName(pass, fd)
			if recvType == nil {
				continue
			}
			methods, ok := watched[recvType]
			if !ok {
				continue
			}
			label, ok := methods[fd.Name.Name]
			if !ok {
				continue
			}
			checkObserverBody(pass, fd, recvType.Name(), label)
		}
	}
	return nil, nil
}

// receiverTypeName resolves a method declaration's receiver to the
// *types.TypeName of its named type.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return pass.TypesInfo.Uses[tt]
		default:
			return nil
		}
	}
}

// checkObserverBody flags assignments in one observer method whose target
// is rooted at a method parameter: jr.Field = x, rep.Jobs[i] = x, *p = x.
func checkObserverBody(pass *analysis.Pass, fd *ast.FuncDecl, typeName, label string) {
	params := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	if len(params) == 0 {
		return
	}
	report := func(lhs ast.Expr, root *ast.Ident) {
		pass.Reportf(lhs.Pos(),
			"%s.%s implements %s and must be passive: assignment into observed parameter %s",
			typeName, fd.Name.Name, label, root.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if root := paramWriteRoot(pass, lhs, params); root != nil {
					report(lhs, root)
				}
			}
		case *ast.IncDecStmt:
			if root := paramWriteRoot(pass, n.X, params); root != nil {
				report(n.X, root)
			}
		}
		return true
	})
}

// paramWriteRoot returns the parameter identifier at the root of a
// field/element/pointer write target, or nil. A bare reassignment of the
// parameter itself (jr = normalize(jr)) only rebinds the local copy and
// is not flagged.
func paramWriteRoot(pass *analysis.Pass, lhs ast.Expr, params map[types.Object]bool) *ast.Ident {
	lhs = ast.Unparen(lhs)
	wrote := false // saw at least one selector/index/deref on the path
	for {
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			wrote = true
			lhs = e.X
		case *ast.IndexExpr:
			wrote = true
			lhs = e.X
		case *ast.StarExpr:
			wrote = true
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.Ident:
			if wrote && params[pass.TypesInfo.Uses[e]] {
				return e
			}
			return nil
		default:
			return nil
		}
	}
}
