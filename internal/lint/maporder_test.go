package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, lint.Maporder, "maporder")
}

func TestMaporderClean(t *testing.T) {
	linttest.Run(t, lint.Maporder, "maporder_clean")
}
