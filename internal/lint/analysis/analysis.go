// Package analysis is a deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface: an Analyzer names a check
// and supplies a Run function; a Pass hands Run one type-checked package
// and collects Diagnostics. The repository cannot vendor x/tools (the
// build is hermetic — standard library only), so the vimlint suite is
// written against this shim instead; analyzers port to the upstream API
// by changing one import path, and cmd/vimlint speaks the upstream
// unitchecker wire protocol so `go vet -vettool` drives them unchanged.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name is the identifier used on the
// command line and in //lint:allow directives; the first line of Doc is
// the one-line contract the check enforces (cmd/vimlint -list prints it).
type Analyzer struct {
	Name string
	Doc  string

	// Run applies the check to one package and reports findings through
	// pass.Report. The interface{} result mirrors upstream (inter-pass
	// facts); the vimlint analyzers never return one.
	Run func(*Pass) (interface{}, error)
}

// Contract returns the first line of Doc: the one-line statement of the
// invariant the analyzer guards.
func (a *Analyzer) Contract() string {
	for i := 0; i < len(a.Doc); i++ {
		if a.Doc[i] == '\n' {
			return a.Doc[:i]
		}
	}
	return a.Doc
}

// Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver wraps it (allow-directive
	// suppression, sorting); analyzers call Reportf for convenience.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
