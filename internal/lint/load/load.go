// Package load type-checks this module's packages for the vimlint
// analyzers without importing golang.org/x/tools. One `go list -deps
// -test -export -json` invocation yields, for every dependency, the
// compiler's export data file from the build cache; dependencies are then
// imported through go/importer's gc reader while the module's own
// packages — the ones being analyzed — are parsed and type-checked from
// source, test files included (in-package test files join their package;
// external _test packages are checked as a separate package resolving the
// parent from its export data, so type identities agree with sibling
// imports of the parent). The same
// export-data resolver type-checks the analysistest fixtures under
// internal/lint/testdata, which may therefore import real repro packages.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/sim"; "_test" suffix for external test packages)
	Dir   string // source directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves and type-checks packages. All packages loaded through
// one Loader share a FileSet and an export-data importer, so type
// identities agree across passes (types.Implements works between a
// source-checked package and its export-loaded dependencies).
type Loader struct {
	dir    string // module root: go list runs here
	fset   *token.FileSet
	export map[string]string // import path -> export data file
	gc     types.Importer    // export-data importer (shared cache)
}

// New returns a Loader rooted at the module directory dir.
func New(dir string) *Loader {
	l := &Loader{dir: dir, fset: token.NewFileSet(), export: map[string]string{}}
	l.gc = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	Standard     bool
	DepOnly      bool
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// goList runs `go list -json` with the given arguments in the module root
// and decodes the stream of package objects.
func (l *Loader) goList(args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// isVariant reports whether p is a synthesized test entry (`pkg.test`
// binary or a recompiled-for-test variant) rather than a plain package.
func (p *listPkg) isVariant() bool {
	return p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") ||
		strings.Contains(p.ImportPath, " [")
}

// lookup feeds export data files to the gc importer. Paths outside the
// initial `go list -deps` closure (a fixture importing a standard package
// the module never uses) resolve lazily with one more go list call.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.export[path]
	if !ok {
		pkgs, err := l.goList("-export", "-json=ImportPath,Export", path)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			l.export[p.ImportPath] = p.Export
		}
		file = l.export[path]
	}
	if file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// overlayImporter resolves the parent package of an external test package
// to its source-checked form; everything else goes to export data.
type overlayImporter struct {
	l       *Loader
	overlay map[string]*types.Package
}

func (im overlayImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.overlay[path]; ok {
		return p, nil
	}
	return im.l.gc.Import(path)
}

// Packages loads, parses and type-checks the module packages matching the
// given go list patterns (default ./...). With tests true, in-package
// test files are checked with their package and each non-empty external
// test package is returned as an additional "<path>_test" package.
func (l *Loader) Packages(tests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"-deps", "-export",
		"-json=ImportPath,Dir,Name,Export,Standard,DepOnly,ForTest,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles"}
	if tests {
		args = append(args, "-test")
	}
	listed, err := l.goList(append(args, patterns...)...)
	if err != nil {
		return nil, err
	}
	var targets []*listPkg
	for _, p := range listed {
		if p.isVariant() {
			continue
		}
		if p.Export != "" {
			l.export[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var out []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		files := t.GoFiles
		if tests {
			files = append(append([]string{}, t.GoFiles...), t.TestGoFiles...)
		}
		pkg, err := l.check(t.ImportPath, t.Dir, files, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		if tests && len(t.XTestGoFiles) > 0 {
			// Resolve the parent from export data like every other import,
			// so a sibling dependency that also imports the parent (exp ->
			// repro) sees the identical *types.Package. Falling back to the
			// source-checked parent covers parents with no export data.
			xt, err := l.check(t.ImportPath+"_test", t.Dir, t.XTestGoFiles, nil)
			if err != nil {
				xt, err = l.check(t.ImportPath+"_test", t.Dir, t.XTestGoFiles,
					map[string]*types.Package{t.ImportPath: pkg.Types})
			}
			if err != nil {
				return nil, err
			}
			out = append(out, xt)
		}
	}
	return out, nil
}

// CheckDir parses and type-checks every .go file in dir as one package
// (the fixture loader: dir is not required to be part of the module).
func (l *Loader) CheckDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	return l.check(dir, dir, files, nil)
}

// check parses the named files (relative to dir) and type-checks them as
// the package at path, resolving imports through the overlay then export
// data.
func (l *Loader) check(path, dir string, filenames []string, overlay map[string]*types.Package) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var terrs []error
	conf := types.Config{
		Importer: overlayImporter{l, overlay},
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(terrs) > 0 {
		msgs := make([]string, 0, len(terrs))
		for i, e := range terrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(terrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("type checking %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("type checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
