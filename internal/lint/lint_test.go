package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestSuite pins the analyzer roster: names are stable (they appear in
// //lint:allow directives and CI output) and every analyzer states its
// contract in the first Doc line.
func TestSuite(t *testing.T) {
	want := []string{"walltime", "seededrand", "maporder", "psunits", "passiveobserver"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if c := a.Contract(); c == "" || strings.Contains(c, "\n") {
			t.Errorf("%s: bad one-line contract %q", a.Name, c)
		}
		if lint.ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if lint.ByName("nope") != nil {
		t.Errorf("ByName accepted an unknown name")
	}
}
