// Package linttest is a miniature analysistest: it type-checks a fixture
// package under internal/lint/testdata/src/<name>, runs one vimlint
// analyzer over it through the same driver path as cmd/vimlint (so the
// //lint:allow escape hatch is exercised exactly as in production), and
// compares the findings against `// want "regexp"` comments in the
// fixture source. Fixtures are real compilable packages and may import
// repro packages — the loader resolves them from build-cache export data.
package linttest

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// wantRe matches one expectation inside a comment: want "..." or
// want `...`, with analysistest's quoting conventions.
var wantRe = regexp.MustCompile("want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// moduleRoot locates the enclosing module directory (go list must run
// there for ./... patterns and build-cache export data).
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" || gomod == "NUL" {
		t.Fatalf("not inside a module (GOMOD=%q)", gomod)
	}
	return filepath.Dir(gomod)
}

// want is one expected diagnostic: a line and a message pattern.
type want struct {
	line int
	re   *regexp.Regexp
	used bool
}

// Run type-checks testdata/src/<fixture> (relative to the calling test's
// directory), applies the analyzer via lint.RunPackage, and verifies the
// diagnostics match the fixture's want comments exactly — every want
// fires, nothing unexpected fires.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	loader := load.New(moduleRoot(t))
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := loader.CheckDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}

	// Collect want expectations, keyed by file then line.
	wants := map[string][]*want{}
	nwants := 0
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					raw := m[1]
					var pat string
					if raw[0] == '`' {
						pat = raw[1 : len(raw)-1]
					} else {
						var err error
						if pat, err = strconv.Unquote(raw); err != nil {
							t.Fatalf("%s: bad want %s: %v", pkg.Fset.Position(c.Pos()), raw, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
					}
					posn := pkg.Fset.Position(c.Pos())
					wants[posn.Filename] = append(wants[posn.Filename],
						&want{line: posn.Line, re: re})
					nwants++
				}
			}
		}
	}

	diags, err := lint.RunPackage(pkg, a)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixture, err)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Filename] {
			if !w.used && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: no diagnostic at line %d matching %q", fixture, w.line, w.re)
			}
		}
	}
	if testing.Verbose() {
		t.Logf("%s/%s: %d diagnostics, %d wants", a.Name, fixture, len(diags), nwants)
	}
}
