package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestPsunits(t *testing.T) {
	linttest.Run(t, lint.Psunits, "psunits")
}

func TestPsunitsClean(t *testing.T) {
	linttest.Run(t, lint.Psunits, "psunits_clean")
}
