// Package lint is the vimlint analyzer suite: five static checks that
// mechanically enforce the repository's determinism and passivity
// contracts — simulated output is a pure function of config+seed
// (bit-identical under both sim schedulers), and observability is
// strictly passive. The golden-cell and scenario-replay harnesses prove
// those contracts differentially, run by run; these analyzers reject the
// violating code before it ever reaches them. Analyzers are written
// against the internal analysis shim (see internal/lint/analysis) and run
// over type-checked packages from internal/lint/load; cmd/vimlint is the
// command-line driver and the root lint_clean_test.go keeps `go test
// ./...` failing on any new violation.
//
// A finding is suppressed by a //lint:allow <analyzer> <reason> directive
// on the offending line or the line above. The reason is mandatory: an
// allow without one is itself a diagnostic, so every escape from a
// contract is written down next to the escape.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Analyzers returns the vimlint suite in its fixed presentation order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Walltime, Seededrand, Maporder, Psunits, Passiveobserver}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Diagnostic is one resolved finding: analyzer, position and message.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// RunPackage applies the given analyzers (the whole suite when none are
// named) to one loaded package, applies the //lint:allow directives, and
// returns the surviving findings sorted by position. Malformed directives
// (missing reason, unknown analyzer name) are reported as findings of the
// pseudo-analyzer "allow".
func RunPackage(pkg *load.Package, analyzers ...*analysis.Analyzer) ([]Diagnostic, error) {
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	allows, diags := parseAllows(pkg)
	seen := map[string]bool{}
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				posn := pkg.Fset.Position(d.Pos)
				if allows.suppressed(a.Name, posn) {
					return
				}
				dd := Diagnostic{Analyzer: a.Name, Pos: posn, Message: d.Message}
				if key := dd.String(); !seen[key] {
					seen[key] = true
					diags = append(diags, dd)
				}
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allowIndex records the parsed //lint:allow directives of one package:
// filename -> line -> analyzer names allowed there.
type allowIndex map[string]map[int]map[string]bool

// suppressed reports whether a directive on the diagnostic's line or the
// line immediately above covers the named analyzer.
func (ai allowIndex) suppressed(analyzer string, posn token.Position) bool {
	lines := ai[posn.Filename]
	return lines[posn.Line][analyzer] || lines[posn.Line-1][analyzer]
}

// parseAllows scans every comment of the package for //lint:allow
// directives. A well-formed directive names a known analyzer and carries
// a non-empty reason; malformed ones come back as diagnostics so the
// escape hatch cannot silently rot.
func parseAllows(pkg *load.Package) (allowIndex, []Diagnostic) {
	idx := allowIndex{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				// A trailing "// ..." sub-comment (linttest want
				// expectations) is not part of the directive.
				if i := strings.Index(text, "//"); i >= 0 {
					text = text[:i]
				}
				posn := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					diags = append(diags, Diagnostic{Analyzer: "allow", Pos: posn,
						Message: "//lint:allow needs an analyzer name and a reason"})
				case ByName(fields[0]) == nil:
					diags = append(diags, Diagnostic{Analyzer: "allow", Pos: posn,
						Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", fields[0])})
				case len(fields) == 1:
					diags = append(diags, Diagnostic{Analyzer: "allow", Pos: posn,
						Message: fmt.Sprintf("//lint:allow %s needs a reason", fields[0])})
				default:
					file := idx[posn.Filename]
					if file == nil {
						file = map[int]map[string]bool{}
						idx[posn.Filename] = file
					}
					if file[posn.Line] == nil {
						file[posn.Line] = map[string]bool{}
					}
					file[posn.Line][fields[0]] = true
				}
			}
		}
	}
	return idx, diags
}
