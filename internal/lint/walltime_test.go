package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestWalltime(t *testing.T) {
	linttest.Run(t, lint.Walltime, "walltime")
}

func TestWalltimeClean(t *testing.T) {
	linttest.Run(t, lint.Walltime, "walltime_clean")
}

// TestAllowDirective exercises the //lint:allow escape hatch through the
// walltime analyzer: excused reads are silent, unexcused and
// wrongly-excused reads fire, and malformed directives are themselves
// findings.
func TestAllowDirective(t *testing.T) {
	linttest.Run(t, lint.Walltime, "allow")
}
