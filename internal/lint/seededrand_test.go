package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestSeededrand(t *testing.T) {
	linttest.Run(t, lint.Seededrand, "seededrand")
}

func TestSeededrandClean(t *testing.T) {
	linttest.Run(t, lint.Seededrand, "seededrand_clean")
}
