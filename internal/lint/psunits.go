package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Psunits is the unit-hygiene check for the simulated clock. The whole
// stack carries picoseconds in identifiers suffixed Ps (sim.Engine.NowPs,
// rcsched deadlines, telemetry sample instants); the carrier types are
// int64 and float64 scalars, never time.Duration (which would invite
// wall-clock arithmetic) and never narrower numerics (which would
// truncate a picosecond clock within milliseconds). Mixing a Ps value
// arithmetically with an Ms/Us/Ns-suffixed value or a time.Duration is a
// unit error unless it goes through an explicit conversion: a named
// factor containing "Per" (psPerUs) or a conversion helper call.
var Psunits = &analysis.Analyzer{
	Name: "psunits",
	Doc: "Ps-suffixed identifiers are picosecond scalars (int64/float64), never mixed with " +
		"Ms/Us/Ns or time.Duration without an explicit conversion",
	Run: runPsunits,
}

func runPsunits(pass *analysis.Pass) (interface{}, error) {
	// Declared Ps identifiers must carry a picosecond scalar.
	for ident, obj := range pass.TypesInfo.Defs {
		if obj == nil || !strings.HasSuffix(ident.Name, "Ps") || ident.Name == "Ps" {
			continue
		}
		var t types.Type
		switch obj := obj.(type) {
		case *types.Var, *types.Const:
			t = obj.Type()
		case *types.Func:
			sig := obj.Type().(*types.Signature)
			if sig.Results().Len() == 0 {
				continue // XxxPs() with no result: not a unit carrier
			}
			t = sig.Results().At(0).Type()
		default:
			continue
		}
		if !psCarrier(t) {
			pass.Reportf(ident.Pos(),
				"%s is suffixed Ps but carries %s: picosecond values must be int64 or float64",
				ident.Name, t.String())
		}
	}
	// No mixed-unit arithmetic.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || !psArithOp(bin.Op) {
				return true
			}
			l, r := unitFlavour(pass, bin.X), unitFlavour(pass, bin.Y)
			if l != "" && r != "" && l != r {
				pass.Reportf(bin.OpPos,
					"mixed-unit arithmetic: %s (%s) %s %s (%s); convert explicitly "+
						"(a *Per* factor or a conversion helper) before combining",
					types.ExprString(bin.X), l, bin.Op, types.ExprString(bin.Y), r)
			}
			return true
		})
	}
	return nil, nil
}

// psCarrier reports whether t can legitimately hold picoseconds: an
// int64/float64 scalar (or an untyped constant that defaults to one),
// possibly behind one level of pointer/slice/array/map-value/chan, or a
// function whose first result is such a scalar (estimator fields like
// PickCtx.ExecEstPs). time.Duration is explicitly rejected even though
// its underlying type is int64: a Ps identifier typed Duration invites
// time-package arithmetic.
func psCarrier(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration" {
			return false
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int64, types.Float64, types.UntypedInt, types.UntypedFloat:
			return true
		}
		return false
	case *types.Pointer:
		return psCarrier(u.Elem())
	case *types.Slice:
		return psCarrier(u.Elem())
	case *types.Array:
		return psCarrier(u.Elem())
	case *types.Map:
		return psCarrier(u.Elem())
	case *types.Chan:
		return psCarrier(u.Elem())
	case *types.Signature:
		return u.Results().Len() > 0 && psCarrier(u.Results().At(0).Type())
	}
	return false
}

// psArithOp reports whether op combines two unit-bearing operands.
func psArithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// unitFlavour derives the time unit an expression carries from its
// identifier suffix ("" when neutral): "ps", "ms", "us", "ns", or
// "duration" for time.Duration-typed expressions. Identifiers containing
// "Per" are conversion factors (psPerUs) and type conversions are
// explicit by definition — both neutral.
func unitFlavour(pass *analysis.Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration" {
				return "duration"
			}
		}
	}
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.CallExpr:
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return "" // explicit conversion
		}
		return unitFlavour(pass, e.Fun)
	case *ast.BinaryExpr:
		// A homogeneous sub-expression keeps its flavour; a mixed one was
		// already reported on its own operator.
		if l, r := unitFlavour(pass, e.X), unitFlavour(pass, e.Y); l == r {
			return l
		}
		return ""
	case *ast.UnaryExpr:
		return unitFlavour(pass, e.X)
	case *ast.IndexExpr:
		return unitFlavour(pass, e.X)
	default:
		return ""
	}
	if strings.Contains(name, "Per") {
		return "" // conversion factor: psPerUs, BytesPerMs, ...
	}
	for _, suf := range [...]string{"Ps", "Ms", "Us", "Ns"} {
		if strings.HasSuffix(name, suf) && name != suf {
			return strings.ToLower(suf)
		}
	}
	return ""
}
