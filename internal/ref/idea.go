package ref

// IDEA block cipher (Lai–Massey, 1991): 64-bit blocks, 128-bit keys,
// 8.5 rounds over three group operations on 16-bit words — XOR, addition
// mod 2^16, and multiplication in GF(2^16+1) with 0 representing 2^16.
//
// This is the cryptographic application of the paper's Figure 9; the
// coprocessor model implements the same rounds in a 3-stage pipeline.

// IDEARounds is the number of full rounds.
const IDEARounds = 8

// IDEASubkeys is the number of 16-bit subkeys per direction.
const IDEASubkeys = 6*IDEARounds + 4

// IDEABlockBytes is the cipher block size in bytes.
const IDEABlockBytes = 8

// IdeaMul multiplies in GF(2^16+1) with the usual 0 ⇔ 2^16 convention.
func IdeaMul(a, b uint16) uint16 {
	switch {
	case a == 0:
		return uint16(1 - int32(b)) // 65537 - b (mod 2^16)
	case b == 0:
		return uint16(1 - int32(a))
	default:
		p := uint32(a) * uint32(b)
		lo, hi := p&0xffff, p>>16
		r := lo - hi
		if lo < hi {
			r += 0x10001
		}
		return uint16(r)
	}
}

// ideaMulInv returns the multiplicative inverse in GF(2^16+1) by Fermat
// exponentiation: 65537 is prime, so x^-1 = x^65535 (mod 65537).
func ideaMulInv(x uint16) uint16 {
	if x <= 1 {
		return x // 0 ⇔ 2^16 ≡ -1 is its own inverse; 1 likewise
	}
	const m = 0x10001
	result, base := uint64(1), uint64(x)
	for e := uint32(m - 2); e > 0; e >>= 1 {
		if e&1 == 1 {
			result = result * base % m
		}
		base = base * base % m
	}
	return uint16(result)
}

// IDEAKey is a 128-bit cipher key.
type IDEAKey [16]byte

// ExpandIDEAKey derives the 52 encryption subkeys: the first eight are the
// big-endian halves of the key; the rest come from repeated 25-bit left
// rotations of the 128-bit key.
func ExpandIDEAKey(key IDEAKey) [IDEASubkeys]uint16 {
	var ek [IDEASubkeys]uint16
	for i := 0; i < 8; i++ {
		ek[i] = uint16(key[2*i])<<8 | uint16(key[2*i+1])
	}
	for i := 8; i < IDEASubkeys; i++ {
		switch {
		case i&7 < 6:
			ek[i] = ek[i-7]&127<<9 | ek[i-6]>>7
		case i&7 == 6:
			ek[i] = ek[i-7]&127<<9 | ek[i-14]>>7
		default:
			ek[i] = ek[i-15]&127<<9 | ek[i-14]>>7
		}
	}
	return ek
}

// InvertIDEAKey turns encryption subkeys into decryption subkeys, so that
// IDEACryptBlock with the result undoes IDEACryptBlock with the original.
func InvertIDEAKey(ek [IDEASubkeys]uint16) [IDEASubkeys]uint16 {
	var dk [IDEASubkeys]uint16
	neg := func(x uint16) uint16 { return uint16(-int32(x)) }

	dk[0] = ideaMulInv(ek[48])
	dk[1] = neg(ek[49])
	dk[2] = neg(ek[50])
	dk[3] = ideaMulInv(ek[51])
	dk[4] = ek[46]
	dk[5] = ek[47]
	for r := 1; r < IDEARounds; r++ {
		base := 6 * (IDEARounds - r)
		dk[6*r+0] = ideaMulInv(ek[base+0])
		dk[6*r+1] = neg(ek[base+2]) // note the swap of the two
		dk[6*r+2] = neg(ek[base+1]) // addition subkeys mid-rounds
		dk[6*r+3] = ideaMulInv(ek[base+3])
		dk[6*r+4] = ek[base-2]
		dk[6*r+5] = ek[base-1]
	}
	dk[48] = ideaMulInv(ek[0])
	dk[49] = neg(ek[1])
	dk[50] = neg(ek[2])
	dk[51] = ideaMulInv(ek[3])
	return dk
}

// IDEACryptBlock transforms one block (x1..x4 as big-endian 16-bit words)
// with the given subkeys. Encryption and decryption differ only in the
// subkey array.
func IDEACryptBlock(k *[IDEASubkeys]uint16, x1, x2, x3, x4 uint16) (y1, y2, y3, y4 uint16) {
	ki := 0
	next := func() uint16 { v := k[ki]; ki++; return v }
	for r := 0; r < IDEARounds; r++ {
		x1 = IdeaMul(x1, next())
		x2 += next()
		x3 += next()
		x4 = IdeaMul(x4, next())

		s3 := x3
		x3 = IdeaMul(x1^x3, next())
		s2 := x2
		x2 = IdeaMul((x2^x4)+x3, next())
		x3 += x2

		x1 ^= x2
		x4 ^= x3
		x2 ^= s3
		x3 ^= s2
	}
	y1 = IdeaMul(x1, next())
	y2 = x3 + next() // the final transform undoes the last swap
	y3 = x2 + next()
	y4 = IdeaMul(x4, next())
	return
}

// IDEAApply processes a whole buffer of 8-byte blocks (big-endian words,
// ECB mode as in the paper's streaming benchmark). len(in) must be a
// multiple of IDEABlockBytes.
func IDEAApply(k *[IDEASubkeys]uint16, in []byte) []byte {
	out := make([]byte, len(in))
	for off := 0; off+IDEABlockBytes <= len(in); off += IDEABlockBytes {
		x1 := uint16(in[off])<<8 | uint16(in[off+1])
		x2 := uint16(in[off+2])<<8 | uint16(in[off+3])
		x3 := uint16(in[off+4])<<8 | uint16(in[off+5])
		x4 := uint16(in[off+6])<<8 | uint16(in[off+7])
		y1, y2, y3, y4 := IDEACryptBlock(k, x1, x2, x3, x4)
		out[off] = byte(y1 >> 8)
		out[off+1] = byte(y1)
		out[off+2] = byte(y2 >> 8)
		out[off+3] = byte(y2)
		out[off+4] = byte(y3 >> 8)
		out[off+5] = byte(y3)
		out[off+6] = byte(y4 >> 8)
		out[off+7] = byte(y4)
	}
	return out
}

// VecAdd is the golden model of the motivating example: C[i] = A[i] + B[i]
// over 32-bit words.
func VecAdd(a, b []uint32) []uint32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := make([]uint32, n)
	for i := 0; i < n; i++ {
		c[i] = a[i] + b[i]
	}
	return c
}
