package ref

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestADPCMOutputIsFourTimesInput(t *testing.T) {
	in := make([]byte, 2048) // 2 KB, the paper's smallest input
	out := ADPCMDecode(ADPCMState{}, in)
	if got := len(out) * 2; got != len(in)*4 {
		t.Fatalf("output bytes = %d, want %d (4x input)", got, len(in)*4)
	}
}

func TestADPCMDecodeKnownRamp(t *testing.T) {
	// Encoding a constant then decoding must stay near the constant once
	// the codec has adapted; a pure smoke test of codec sanity.
	samples := make([]int16, 256)
	for i := range samples {
		samples[i] = 1000
	}
	packed := ADPCMEncode(ADPCMState{}, samples)
	dec := ADPCMDecode(ADPCMState{}, packed)
	if len(dec) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(dec), len(samples))
	}
	tail := dec[len(dec)-1]
	if tail < 900 || tail > 1100 {
		t.Fatalf("decoder did not converge: tail = %d", tail)
	}
}

func TestADPCMEncodeDecodeTracksSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 4096
	samples := make([]int16, n)
	phase := 0.0
	for i := range samples {
		phase += 0.05 + rng.Float64()*0.01
		samples[i] = int16(8000 * sin(phase))
	}
	packed := ADPCMEncode(ADPCMState{}, samples)
	dec := ADPCMDecode(ADPCMState{}, packed)
	// ADPCM is lossy: assert bounded mean absolute error relative to the
	// signal amplitude.
	var mae float64
	for i := range samples {
		d := float64(samples[i]) - float64(dec[i])
		if d < 0 {
			d = -d
		}
		mae += d
	}
	mae /= float64(n)
	if mae > 1200 {
		t.Fatalf("mean absolute error %.1f too large", mae)
	}
}

// sin is a minimal Taylor/periodic sine so the package avoids importing
// math just for a test helper (stdlib math is allowed; this keeps the
// dependency surface explicit).
func sin(x float64) float64 {
	const twoPi = 6.283185307179586
	for x > twoPi {
		x -= twoPi
	}
	for x < 0 {
		x += twoPi
	}
	if x > 3.141592653589793 {
		return -sin(x - 3.141592653589793)
	}
	x2 := x * x
	return x * (1 - x2/6*(1-x2/20*(1-x2/42)))
}

func TestQuickADPCMDecoderDeterministic(t *testing.T) {
	f := func(data []byte, v int16, idx uint8) bool {
		st := ADPCMState{Valprev: v, Index: int8(idx % 89)}
		a := ADPCMDecode(st, data)
		b := ADPCMDecode(st, data)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickADPCMIndexStaysInRange(t *testing.T) {
	f := func(data []byte, idx uint8) bool {
		st := ADPCMState{Index: int8(idx % 89)}
		for _, b := range data {
			ADPCMDecodeNibble(&st, b>>4)
			ADPCMDecodeNibble(&st, b&0xf)
			if st.Index < 0 || st.Index > 88 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestIDEAKnownAnswer checks the classic published vector:
// key 0001 0002 0003 0004 0005 0006 0007 0008,
// plaintext 0000 0001 0002 0003 -> ciphertext 11FB ED2B 0198 6DE5.
func TestIDEAKnownAnswer(t *testing.T) {
	var key IDEAKey
	for i := 0; i < 8; i++ {
		key[2*i] = 0
		key[2*i+1] = byte(i + 1)
	}
	ek := ExpandIDEAKey(key)
	y1, y2, y3, y4 := IDEACryptBlock(&ek, 0, 1, 2, 3)
	if y1 != 0x11fb || y2 != 0xed2b || y3 != 0x0198 || y4 != 0x6de5 {
		t.Fatalf("ciphertext = %04x %04x %04x %04x, want 11fb ed2b 0198 6de5", y1, y2, y3, y4)
	}
	dk := InvertIDEAKey(ek)
	p1, p2, p3, p4 := IDEACryptBlock(&dk, y1, y2, y3, y4)
	if p1 != 0 || p2 != 1 || p3 != 2 || p4 != 3 {
		t.Fatalf("decrypt = %04x %04x %04x %04x, want 0000 0001 0002 0003", p1, p2, p3, p4)
	}
}

func TestQuickIDEARoundTrip(t *testing.T) {
	f := func(key IDEAKey, x1, x2, x3, x4 uint16) bool {
		ek := ExpandIDEAKey(key)
		dk := InvertIDEAKey(ek)
		y1, y2, y3, y4 := IDEACryptBlock(&ek, x1, x2, x3, x4)
		p1, p2, p3, p4 := IDEACryptBlock(&dk, y1, y2, y3, y4)
		return p1 == x1 && p2 == x2 && p3 == x3 && p4 == x4
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIdeaMulGroupProperties(t *testing.T) {
	// IdeaMul forms an abelian group on [0,65535] (0 ⇔ 2^16): identity 1,
	// commutativity, and inverse via ideaMulInv.
	f := func(a, b uint16) bool {
		if IdeaMul(a, 1) != a {
			return false
		}
		if IdeaMul(a, b) != IdeaMul(b, a) {
			return false
		}
		inv := ideaMulInv(a)
		return IdeaMul(a, inv) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIDEAApplyBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var key IDEAKey
	rng.Read(key[:])
	ek := ExpandIDEAKey(key)
	dk := InvertIDEAKey(ek)
	in := make([]byte, 4096)
	rng.Read(in)
	ct := IDEAApply(&ek, in)
	pt := IDEAApply(&dk, ct)
	for i := range in {
		if pt[i] != in[i] {
			t.Fatalf("byte %d: roundtrip %#x != %#x", i, pt[i], in[i])
		}
	}
	// Ciphertext must differ from plaintext (overwhelming probability).
	same := 0
	for i := range in {
		if ct[i] == in[i] {
			same++
		}
	}
	if same > len(in)/8 {
		t.Fatalf("ciphertext suspiciously similar to plaintext (%d/%d bytes)", same, len(in))
	}
}

func TestVecAdd(t *testing.T) {
	a := []uint32{1, 2, 3, 0xffffffff}
	b := []uint32{10, 20, 30, 2}
	c := VecAdd(a, b)
	want := []uint32{11, 22, 33, 1} // wraparound
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d] = %d, want %d", i, c[i], want[i])
		}
	}
}
