// Package ref holds golden reference implementations of the application
// algorithms used by the paper's evaluation: the IMA/DVI ADPCM codec (the
// "adpcmdecode" multimedia benchmark) and the IDEA block cipher. The
// coprocessor models and the timed software kernels are verified against
// these implementations bit-for-bit.
package ref

// IMA/DVI ADPCM tables (Intel/DVI reference codec).
var adpcmIndexTable = [16]int{
	-1, -1, -1, -1, 2, 4, 6, 8,
	-1, -1, -1, -1, 2, 4, 6, 8,
}

var adpcmStepTable = [89]int{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// ADPCMState is the codec state carried across calls. The zero value is the
// canonical initial state.
type ADPCMState struct {
	Valprev int16 // predicted output value
	Index   int8  // index into the step-size table
}

// ADPCMIndexTable exposes the index-adaptation table (the coprocessor model
// embeds the same ROM).
func ADPCMIndexTable() [16]int { return adpcmIndexTable }

// ADPCMStepTable exposes the step-size table ROM.
func ADPCMStepTable() [89]int { return adpcmStepTable }

// ADPCMDecodeNibble advances the decoder by one 4-bit code and returns the
// reconstructed sample. This is the shared primitive between the golden
// decoder, the timed software kernel and the coprocessor model tests.
func ADPCMDecodeNibble(st *ADPCMState, delta byte) int16 {
	step := adpcmStepTable[st.Index]

	idx := int(st.Index) + adpcmIndexTable[delta&0xf]
	if idx < 0 {
		idx = 0
	}
	if idx > 88 {
		idx = 88
	}
	st.Index = int8(idx)

	sign := delta & 8
	mag := int(delta & 7)

	vpdiff := step >> 3
	if mag&4 != 0 {
		vpdiff += step
	}
	if mag&2 != 0 {
		vpdiff += step >> 1
	}
	if mag&1 != 0 {
		vpdiff += step >> 2
	}

	v := int(st.Valprev)
	if sign != 0 {
		v -= vpdiff
	} else {
		v += vpdiff
	}
	if v > 32767 {
		v = 32767
	}
	if v < -32768 {
		v = -32768
	}
	st.Valprev = int16(v)
	return st.Valprev
}

// ADPCMEncodeSample quantises one 16-bit sample to a 4-bit code, updating
// the state exactly as the decoder will.
func ADPCMEncodeSample(st *ADPCMState, sample int16) byte {
	step := adpcmStepTable[st.Index]

	diff := int(sample) - int(st.Valprev)
	var delta byte
	if diff < 0 {
		delta = 8
		diff = -diff
	}

	var code byte
	vpdiff := step >> 3
	if diff >= step {
		code |= 4
		diff -= step
		vpdiff += step
	}
	step >>= 1
	if diff >= step {
		code |= 2
		diff -= step
		vpdiff += step
	}
	step >>= 1
	if diff >= step {
		code |= 1
		vpdiff += step
	}
	delta |= code

	v := int(st.Valprev)
	if delta&8 != 0 {
		v -= vpdiff
	} else {
		v += vpdiff
	}
	if v > 32767 {
		v = 32767
	}
	if v < -32768 {
		v = -32768
	}
	st.Valprev = int16(v)

	idx := int(st.Index) + adpcmIndexTable[delta&0xf]
	if idx < 0 {
		idx = 0
	}
	if idx > 88 {
		idx = 88
	}
	st.Index = int8(idx)
	return delta & 0xf
}

// ADPCMDecode decodes packed 4-bit codes (high nibble first) into 16-bit
// samples: every input byte yields two samples, so the output is four times
// the input size — the property the paper relies on in Figure 8.
func ADPCMDecode(st ADPCMState, in []byte) []int16 {
	out := make([]int16, 0, len(in)*2)
	for _, b := range in {
		out = append(out, ADPCMDecodeNibble(&st, b>>4))
		out = append(out, ADPCMDecodeNibble(&st, b&0xf))
	}
	return out
}

// ADPCMEncode packs samples two per byte, high nibble first. Odd trailing
// samples are padded with a zero code.
func ADPCMEncode(st ADPCMState, samples []int16) []byte {
	out := make([]byte, 0, (len(samples)+1)/2)
	for i := 0; i < len(samples); i += 2 {
		hi := ADPCMEncodeSample(&st, samples[i])
		var lo byte
		if i+1 < len(samples) {
			lo = ADPCMEncodeSample(&st, samples[i+1])
		}
		out = append(out, hi<<4|lo)
	}
	return out
}
