package trace

import (
	"strings"
	"testing"
)

func TestVCDHeaderAndChanges(t *testing.T) {
	r := NewRecorder(25000) // 25 ns = one 40 MHz period
	clk := r.Declare("clk", 1)
	addr := r.Declare("cp_addr", 16)
	r.Record(clk, 0, 0)
	r.Record(clk, 1, 1)
	r.Record(addr, 1, 0x2a)
	r.Record(clk, 2, 0)
	var sb strings.Builder
	if err := r.WriteVCD(&sb, "imu"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 25000 ps $end",
		"$scope module imu $end",
		"$var wire 1 ! clk $end",
		"$var wire 16 \" cp_addr $end",
		"#0", "#1", "#2",
		"b101010 \"",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD output missing %q:\n%s", want, out)
		}
	}
}

func TestRecordCoalescesIdenticalValues(t *testing.T) {
	r := NewRecorder(1)
	s := r.Declare("sig", 1)
	r.Record(s, 0, 1)
	r.Record(s, 1, 1) // identical, coalesced
	r.Record(s, 2, 0)
	if n := len(r.series[s]); n != 2 {
		t.Fatalf("stored %d changes, want 2", n)
	}
}

func TestRenderASCIIWireAndBus(t *testing.T) {
	r := NewRecorder(1)
	en := r.Declare("en", 1)
	bus := r.Declare("bus", 8)
	r.Record(en, 0, 0)
	r.Record(en, 2, 1)
	r.Record(en, 4, 0)
	r.Record(bus, 2, 0x5)
	out := r.RenderASCII(0, 5)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "__##_") {
		t.Fatalf("wire row wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "|5") {
		t.Fatalf("bus row missing value: %q", lines[1])
	}
}

func TestValueAtBeforeFirstChange(t *testing.T) {
	r := NewRecorder(1)
	s := r.Declare("sig", 4)
	r.Record(s, 5, 0xf)
	if _, ok := r.valueAt(s, 3); ok {
		t.Fatal("valueAt reported a value before the first change")
	}
	if v, ok := r.valueAt(s, 7); !ok || v != 0xf {
		t.Fatalf("valueAt(7) = %v,%v want 0xf,true", v, ok)
	}
}
