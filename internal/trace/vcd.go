// Package trace records signal waveforms from a simulation and renders them
// as IEEE-1364 VCD files or as ASCII timing diagrams. It is used to
// regenerate the paper's Figure 7 (the 4-cycle translated read access).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Signal identifies one traced wire or bus.
type Signal struct {
	Name  string
	Width int // bits; 1 for a wire
}

// sample is one recorded value change.
type sample struct {
	time int64 // in timescale units
	val  uint64
}

// Recorder accumulates value changes for a set of signals.
type Recorder struct {
	TimescalePs int64 // picoseconds per time unit (e.g. one clock period)
	signals     []Signal
	series      [][]sample
	last        []uint64
	hasLast     []bool
}

// NewRecorder returns a Recorder with the given timescale in picoseconds.
func NewRecorder(timescalePs int64) *Recorder {
	if timescalePs <= 0 {
		timescalePs = 1
	}
	return &Recorder{TimescalePs: timescalePs}
}

// Declare registers a signal and returns its index for Record calls.
func (r *Recorder) Declare(name string, width int) int {
	if width <= 0 {
		width = 1
	}
	r.signals = append(r.signals, Signal{Name: name, Width: width})
	r.series = append(r.series, nil)
	r.last = append(r.last, 0)
	r.hasLast = append(r.hasLast, false)
	return len(r.signals) - 1
}

// Record stores the value of signal id at the given time (in timescale
// units). Consecutive identical values are coalesced.
func (r *Recorder) Record(id int, time int64, val uint64) {
	if id < 0 || id >= len(r.signals) {
		return
	}
	if r.hasLast[id] && r.last[id] == val {
		return
	}
	r.series[id] = append(r.series[id], sample{time: time, val: val})
	r.last[id] = val
	r.hasLast[id] = true
}

// Signals returns the declared signals in declaration order.
func (r *Recorder) Signals() []Signal { return r.signals }

// vcdID returns a short printable identifier for signal i.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return fmt.Sprintf("s%d", i)
}

// WriteVCD emits the recording as a VCD document.
func (r *Recorder) WriteVCD(w io.Writer, module string) error {
	if module == "" {
		module = "top"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "$timescale %d ps $end\n", r.TimescalePs)
	fmt.Fprintf(&b, "$scope module %s $end\n", module)
	for i, s := range r.signals {
		fmt.Fprintf(&b, "$var wire %d %s %s $end\n", s.Width, vcdID(i), s.Name)
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	// Merge all samples into a single time-ordered change list.
	type change struct {
		time int64
		id   int
		val  uint64
	}
	var changes []change
	for id, ser := range r.series {
		for _, s := range ser {
			changes = append(changes, change{s.time, id, s.val})
		}
	}
	sort.SliceStable(changes, func(i, j int) bool { return changes[i].time < changes[j].time })
	lastTime := int64(-1)
	for _, c := range changes {
		if c.time != lastTime {
			fmt.Fprintf(&b, "#%d\n", c.time)
			lastTime = c.time
		}
		sig := r.signals[c.id]
		if sig.Width == 1 {
			fmt.Fprintf(&b, "%d%s\n", c.val&1, vcdID(c.id))
		} else {
			fmt.Fprintf(&b, "b%b %s\n", c.val, vcdID(c.id))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// valueAt returns the value of signal id at time t (last change at or before
// t) and whether any change had occurred by then.
func (r *Recorder) valueAt(id int, t int64) (uint64, bool) {
	ser := r.series[id]
	var (
		v  uint64
		ok bool
	)
	for _, s := range ser {
		if s.time > t {
			break
		}
		v, ok = s.val, true
	}
	return v, ok
}

// RenderASCII renders the recording between times from and to (inclusive,
// timescale units) as an ASCII timing diagram, one row per signal, one
// column per time unit. Single-bit signals render as underscores and
// overbars; buses render their hex value at each change.
func (r *Recorder) RenderASCII(from, to int64) string {
	var b strings.Builder
	nameW := 0
	for _, s := range r.signals {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for id, s := range r.signals {
		fmt.Fprintf(&b, "%-*s ", nameW, s.Name)
		if s.Width == 1 {
			for t := from; t <= to; t++ {
				v, ok := r.valueAt(id, t)
				switch {
				case !ok:
					b.WriteByte('.')
				case v != 0:
					b.WriteByte('#')
				default:
					b.WriteByte('_')
				}
			}
		} else {
			prev := uint64(0)
			prevOK := false
			for t := from; t <= to; t++ {
				v, ok := r.valueAt(id, t)
				switch {
				case !ok:
					b.WriteString(". ")
				case !prevOK || v != prev:
					fmt.Fprintf(&b, "|%x", v)
				default:
					b.WriteString("  ")
				}
				prev, prevOK = v, ok
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
