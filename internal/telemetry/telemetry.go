// Package telemetry is the deterministic, strictly passive observability
// layer: a metrics registry (counters, gauges, histograms), a
// simulated-time sampler that snapshots gauges into per-run time series,
// and exporters for Prometheus-style text, a machine-readable JSON dump,
// and Chrome trace-event JSON (Perfetto-loadable).
//
// # Passivity contract
//
// A Meter observes; it never steers. Instrumented code hands the meter
// values it already computed — it must not branch on the meter's presence,
// read anything back from it, or do extra simulated work to feed it. The
// layer is keyed entirely on simulated time (never the wall clock), so
// every exported byte is a pure function of (configuration, seed): golden
// cells and recorded scenarios stay bit-identical with telemetry off and
// on, which the differential tests at the repository root prove the same
// way PR 8 proved it for observers.
//
// # Naming and labels
//
// Metric names follow the Prometheus convention (snake_case, _total suffix
// on counters, unit suffix like _ps on gauges and histograms). A metric may
// carry labels ("slot"="2", "path"="staged"); each distinct label set is
// its own series. Registration is implicit: the first Count/Set/Observe
// under a name creates the series. All iteration orders are sorted, so
// exports are deterministic without any care from call sites.
//
// # Concurrency
//
// A Meter is single-goroutine, like the sim engine it observes. Fleet runs
// give each board its own child meter and fold them back into the parent
// with Absorb under a distinguishing label, in board order — deterministic
// regardless of goroutine interleaving.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// DefaultLatencyBoundsPs is the bucket layout used for latency-flavoured
// histograms (queue wait, end-to-end latency): roughly logarithmic from
// 1 µs to 10 s in picoseconds, wide enough for every calibrated board.
var DefaultLatencyBoundsPs = []float64{
	1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13,
}

// Labels is one metric's label set. Call sites pass alternating key/value
// strings to the Meter methods; the canonical form is sorted by key.
type Labels map[string]string

// keyOf renders a deterministic series key: name{k1="v1",k2="v2"} with
// keys sorted. It doubles as the Prometheus exposition form.
func keyOf(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// labelsOf folds alternating key/value arguments into a Labels map.
func labelsOf(kv []string) Labels {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", kv))
	}
	l := make(Labels, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		l[kv[i]] = kv[i+1]
	}
	return l
}

// series is one (name, labels) instrument instance.
type series struct {
	name   string
	labels Labels
	kind   string // "counter" | "gauge" | "histogram"

	counter uint64
	gauge   float64
	// gaugeFn, when set, makes the gauge live: the sampler and the
	// snapshot exporters read the function instead of the stored value.
	// Used for values the instrumented code already maintains (queue
	// length, VIM fault counter) so call sites don't have to mirror them.
	gaugeFn func() float64
	hist    *stats.Histogram

	// samples is the gauge's sampled time series (filled by the sampler).
	samples []Sample
}

func (s *series) gaugeValue() float64 {
	if s.gaugeFn != nil {
		return s.gaugeFn()
	}
	return s.gauge
}

// Sample is one sampled gauge value at a simulated-time boundary.
type Sample struct {
	AtPs  float64 `json:"at_ps"`
	Value float64 `json:"value"`
}

// Meter is the metrics registry plus sampler state. The zero value is not
// usable; call NewMeter. A nil *Meter is the off switch: every method is a
// cheap no-op, so instrumented code calls unconditionally.
type Meter struct {
	series map[string]*series
	order  []string // registration order, for stable iteration before sort

	// Sampler state: gauges are snapshotted at every multiple of
	// intervalPs as simulated time advances past it (see Advance).
	intervalPs float64
	nextPs     float64

	trace *Trace
}

// NewMeter returns an empty meter sampling gauges every intervalPs of
// simulated time (intervalPs <= 0 disables sampling).
func NewMeter(intervalPs float64) *Meter {
	return &Meter{
		series:     make(map[string]*series),
		intervalPs: intervalPs,
		nextPs:     intervalPs,
		trace:      NewTrace(),
	}
}

// Child returns an empty meter with the same sampling interval, for a
// concurrent sub-run (a fleet board) whose results are folded back into
// this meter with Absorb. A nil meter's child is nil.
func (m *Meter) Child() *Meter {
	if m == nil {
		return nil
	}
	return NewMeter(m.intervalPs)
}

// Trace returns the meter's trace-event collector (nil on a nil meter).
func (m *Meter) Trace() *Trace {
	if m == nil {
		return nil
	}
	return m.trace
}

// get returns the series for (name, labels), creating it with the given
// kind on first use and rejecting cross-kind reuse of a name+labels key.
func (m *Meter) get(name, kind string, kv []string) *series {
	labels := labelsOf(kv)
	key := keyOf(name, labels)
	s, ok := m.series[key]
	if !ok {
		s = &series{name: name, labels: labels, kind: kind}
		if kind == "histogram" {
			s.hist = stats.NewHistogram(DefaultLatencyBoundsPs...)
		}
		m.series[key] = s
		m.order = append(m.order, key)
		return s
	}
	if s.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s, used as %s", key, s.kind, kind))
	}
	return s
}

// Count adds n to the counter name{labels...}.
func (m *Meter) Count(name string, n uint64, kv ...string) {
	if m == nil {
		return
	}
	m.get(name, "counter", kv).counter += n
}

// Set sets the gauge name{labels...} to v.
func (m *Meter) Set(name string, v float64, kv ...string) {
	if m == nil {
		return
	}
	s := m.get(name, "gauge", kv)
	s.gaugeFn = nil
	s.gauge = v
}

// SetFunc binds the gauge name{labels...} to a live read function; the
// sampler and exporters call it instead of a stored value. The function
// must be pure with respect to simulated state (no wall clock, no
// randomness) and must stay valid until the final export.
func (m *Meter) SetFunc(name string, fn func() float64, kv ...string) {
	if m == nil {
		return
	}
	m.get(name, "gauge", kv).gaugeFn = fn
}

// Observe adds one sample to the histogram name{labels...} (default
// latency bucket bounds).
func (m *Meter) Observe(name string, v float64, kv ...string) {
	if m == nil {
		return
	}
	m.get(name, "histogram", kv).hist.Observe(v)
}

// Advance moves the sampler to simulated time nowPs: every un-filled
// boundary k·interval <= nowPs gets one sample of every gauge's current
// value. Call sites invoke it at their natural observation points (the
// serving loop's arrival/completion/dispatch instants), so a sample at
// boundary B records the state as observed at the first instrumentation
// point at or after B — a deterministic function of the run, documented as
// such rather than pretending the loop was interrupted exactly at B.
func (m *Meter) Advance(nowPs float64) {
	if m == nil || m.intervalPs <= 0 {
		return
	}
	for m.nextPs <= nowPs {
		at := m.nextPs
		for _, key := range m.order {
			s := m.series[key]
			if s.kind != "gauge" {
				continue
			}
			s.samples = append(s.samples, Sample{AtPs: at, Value: s.gaugeValue()})
		}
		m.nextPs += m.intervalPs
	}
}

// Absorb folds child into m under an extra distinguishing label (for
// example "board"="3"): counters add, histograms merge, and gauges and
// their sampled series copy over. Fleet aggregation calls it in board
// order after all goroutines joined, so the fold is deterministic. Child
// live gauges are pinned to their final value at absorb time.
func (m *Meter) Absorb(child *Meter, labelKey, labelValue string) {
	if m == nil || child == nil {
		return
	}
	for _, key := range child.order {
		cs := child.series[key]
		names := make([]string, 0, len(cs.labels))
		for k := range cs.labels {
			names = append(names, k)
		}
		sort.Strings(names)
		kv := make([]string, 0, 2*len(names)+2)
		for _, k := range names {
			kv = append(kv, k, cs.labels[k])
		}
		kv = append(kv, labelKey, labelValue)
		switch cs.kind {
		case "counter":
			m.Count(cs.name, cs.counter, kv...)
		case "gauge":
			s := m.get(cs.name, "gauge", kv)
			s.gaugeFn = nil
			s.gauge = cs.gaugeValue()
			s.samples = append(s.samples, cs.samples...)
		case "histogram":
			s := m.get(cs.name, "histogram", kv)
			if err := s.hist.Merge(cs.hist); err != nil {
				panic(fmt.Sprintf("telemetry: absorb %s: %v", cs.name, err))
			}
		}
	}
	m.trace.absorb(child.trace)
}

// sortedKeys returns every series key in sorted order (export order).
func (m *Meter) sortedKeys() []string {
	keys := append([]string(nil), m.order...)
	sort.Strings(keys)
	return keys
}
