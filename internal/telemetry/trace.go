package telemetry

import (
	"encoding/json"
	"sort"
)

// This file holds the Chrome trace-event collector. Instrumented code
// records spans (complete "X" events) and instants ("i" events) in
// simulated picoseconds; Marshal renders the Perfetto-loadable JSON
// ({"traceEvents": [...]}, timestamps in microseconds) with a
// deterministic event order and a per-track normalisation pass that keeps
// "X" spans non-overlapping on every (pid, tid) track — the invariant the
// fuzz target pins.
//
// Track layout convention (established by rcsched/fleet TraceReport):
// pid 0 is the scheduler/dispatcher (routing instants), pid 1 is the job
// view (tid = job ID; queue → config → exec spans), and pid 2+b is board
// b's slot view (tid = slot; config and exec spans).

// Span is one completed interval on a (pid, tid) track.
type Span struct {
	Name    string
	Cat     string
	Pid     int
	Tid     int
	StartPs float64
	DurPs   float64
	Args    map[string]string
}

// Instant is one point event on a (pid, tid) track.
type Instant struct {
	Name string
	Pid  int
	Tid  int
	AtPs float64
	Args map[string]string
}

// Trace accumulates events. A nil *Trace is the off switch: every method
// is a no-op, so instrumented code calls m.Trace().Span(...) without
// checking the meter.
type Trace struct {
	procs    map[int]string
	threads  map[[2]int]string
	spans    []Span
	instants []Instant
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{procs: make(map[int]string), threads: make(map[[2]int]string)}
}

// NameProcess labels pid's track group.
func (t *Trace) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.procs[pid] = name
}

// NameThread labels the (pid, tid) track.
func (t *Trace) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.threads[[2]int{pid, tid}] = name
}

// Span records one completed interval. Negative durations are recorded
// as zero-length (the normalisation pass also enforces this).
func (t *Trace) Span(s Span) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, s)
}

// Instant records one point event.
func (t *Trace) Instant(i Instant) {
	if t == nil {
		return
	}
	t.instants = append(t.instants, i)
}

// absorb folds o's events and names into t (fleet board meters).
func (t *Trace) absorb(o *Trace) {
	if t == nil || o == nil {
		return
	}
	for pid, n := range o.procs {
		t.procs[pid] = n
	}
	for k, n := range o.threads {
		t.threads[k] = n
	}
	t.spans = append(t.spans, o.spans...)
	t.instants = append(t.instants, o.instants...)
}

// traceEvent is the Chrome trace-event wire form. Ts and Dur are
// microseconds (the format's unit); ps values are scaled on export.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the top-level JSON object Perfetto loads.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

const psPerUs = 1e6

// Marshal renders the trace as Chrome trace-event JSON. The output is
// deterministic: metadata events first (sorted by pid/tid), then all
// spans and instants sorted by (ts, pid, tid, name), with "X" spans
// normalised per (pid, tid) track — sorted by start and clipped so no
// span starts before the previous one on its track ends. Instrumentation
// is expected to emit disjoint spans per track (a slot runs one job at a
// time); the clip turns any violation into a visible truncation instead
// of an unloadable or misleading trace.
func (t *Trace) Marshal() ([]byte, error) {
	if t == nil {
		return json.Marshal(traceFile{TraceEvents: []traceEvent{}})
	}
	events := make([]traceEvent, 0, len(t.procs)+len(t.threads)+len(t.spans)+len(t.instants))

	pids := make([]int, 0, len(t.procs))
	for pid := range t.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": t.procs[pid]},
		})
	}
	tkeys := make([][2]int, 0, len(t.threads))
	for k := range t.threads {
		tkeys = append(tkeys, k)
	}
	sort.Slice(tkeys, func(i, j int) bool {
		if tkeys[i][0] != tkeys[j][0] {
			return tkeys[i][0] < tkeys[j][0]
		}
		return tkeys[i][1] < tkeys[j][1]
	})
	for _, k := range tkeys {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: k[0], Tid: k[1],
			Args: map[string]string{"name": t.threads[k]},
		})
	}

	// Scale to microseconds before normalising: the non-overlap clip then
	// holds exactly in the emitted numbers, not just before rounding.
	us := make([]Span, len(t.spans))
	for i, s := range t.spans {
		s.StartPs /= psPerUs
		s.DurPs /= psPerUs
		us[i] = s
	}
	var body []traceEvent
	for _, s := range normalizeSpans(us) {
		dur := s.DurPs
		body = append(body, traceEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: s.StartPs, Dur: &dur,
			Pid: s.Pid, Tid: s.Tid, Args: s.Args,
		})
	}
	for _, i := range t.instants {
		body = append(body, traceEvent{
			Name: i.Name, Ph: "i", Ts: i.AtPs / psPerUs,
			Pid: i.Pid, Tid: i.Tid, Args: i.Args,
		})
	}
	sort.SliceStable(body, func(i, j int) bool {
		a, b := body[i], body[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})
	events = append(events, body...)
	return json.MarshalIndent(traceFile{TraceEvents: events}, "", " ")
}

// normalizeSpans sorts spans per (pid, tid) track by start time and clips
// them so each span begins no earlier than the previous one on its track
// ends: durations clamp at zero, overlaps shrink to the free interval.
// The result is non-overlapping per track by construction.
func normalizeSpans(spans []Span) []Span {
	out := append([]Span(nil), spans...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.StartPs != b.StartPs {
			return a.StartPs < b.StartPs
		}
		return a.DurPs < b.DurPs
	})
	type track struct{ pid, tid int }
	endOf := make(map[track]float64)
	for i := range out {
		s := &out[i]
		if s.DurPs < 0 {
			s.DurPs = 0
		}
		tr := track{s.Pid, s.Tid}
		if free, ok := endOf[tr]; ok && s.StartPs < free {
			end := s.StartPs + s.DurPs
			s.StartPs = free
			if end < free {
				end = free
			}
			s.DurPs = end - s.StartPs
		}
		// Track the end exactly as a consumer recomputes it (start + dur
		// in float arithmetic), so the non-overlap invariant survives the
		// rounding of the clip's own subtraction.
		endOf[tr] = s.StartPs + s.DurPs
	}
	return out
}
