package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file holds the snapshot exporters: a Prometheus-style text
// exposition and a machine-readable JSON dump. Both walk the series in
// sorted-key order and format floats with strconv's shortest round-trip
// form, so the bytes are a deterministic function of the meter's state.

// ftoa renders a float in its shortest form that parses back exactly.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PromText renders the meter as Prometheus text exposition: one
// "# TYPE" line per metric name, then one "name{labels} value" line per
// series, sorted. Histograms expose the conventional _bucket (cumulative,
// with le labels), _sum and _count series. Sampled gauge time series are
// not part of the exposition (a scrape is a point in time); use JSON for
// them.
func (m *Meter) PromText() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	typed := make(map[string]bool)
	for _, key := range m.sortedKeys() {
		s := m.series[key]
		if !typed[s.name] {
			typed[s.name] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
		}
		switch s.kind {
		case "counter":
			fmt.Fprintf(&b, "%s %d\n", key, s.counter)
		case "gauge":
			fmt.Fprintf(&b, "%s %s\n", key, ftoa(s.gaugeValue()))
		case "histogram":
			cum := uint64(0)
			for i, c := range s.hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.hist.Bounds) {
					le = ftoa(s.hist.Bounds[i])
				}
				fmt.Fprintf(&b, "%s %d\n", bucketKey(s, le), cum)
			}
			fmt.Fprintf(&b, "%s %s\n", suffixKey(s, "_sum"), ftoa(s.hist.Sum))
			fmt.Fprintf(&b, "%s %d\n", suffixKey(s, "_count"), s.hist.N)
		}
	}
	return b.String()
}

// bucketKey renders name_bucket{labels...,le="bound"} for one histogram
// bucket line.
func bucketKey(s *series, le string) string {
	l := make(Labels, len(s.labels)+1)
	for k, v := range s.labels {
		l[k] = v
	}
	l["le"] = le
	return keyOf(s.name+"_bucket", l)
}

// suffixKey renders name<suffix>{labels...} for _sum/_count lines.
func suffixKey(s *series, suffix string) string {
	return keyOf(s.name+suffix, s.labels)
}

// JSONSeries is one series in the JSON dump.
type JSONSeries struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	Kind   string `json:"kind"`

	Counter uint64  `json:"counter,omitempty"`
	Gauge   float64 `json:"gauge,omitempty"`

	// Histogram state (kind "histogram" only).
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	N      uint64    `json:"n,omitempty"`

	// Samples is the gauge's sampled time series (kind "gauge" only,
	// present when the run sampled).
	Samples []Sample `json:"samples,omitempty"`
}

// JSONDump is the machine-readable snapshot: every series, sorted by key,
// with sampled gauge time series inline. encoding/json emits map keys
// sorted, so the bytes are fully deterministic.
type JSONDump struct {
	SampleIntervalPs float64      `json:"sample_interval_ps,omitempty"`
	Series           []JSONSeries `json:"series"`
}

// Dump builds the JSON snapshot structure.
func (m *Meter) Dump() *JSONDump {
	if m == nil {
		return &JSONDump{Series: []JSONSeries{}}
	}
	d := &JSONDump{SampleIntervalPs: m.intervalPs, Series: []JSONSeries{}}
	for _, key := range m.sortedKeys() {
		s := m.series[key]
		js := JSONSeries{Name: s.name, Labels: s.labels, Kind: s.kind}
		switch s.kind {
		case "counter":
			js.Counter = s.counter
		case "gauge":
			js.Gauge = s.gaugeValue()
			js.Samples = s.samples
		case "histogram":
			js.Bounds = s.hist.Bounds
			js.Counts = s.hist.Counts
			js.Sum = s.hist.Sum
			js.N = s.hist.N
		}
		d.Series = append(d.Series, js)
	}
	return d
}

// DumpJSON renders the dump with stable indentation. (Deliberately not
// named MarshalJSON: a Meter is not a JSON value, and implementing
// json.Marshaler would make nested encoding recurse here.)
func (m *Meter) DumpJSON() ([]byte, error) {
	return json.MarshalIndent(m.Dump(), "", "  ")
}

// GaugeSamples returns the sampled time series of the gauge named name
// whose labels include every given key/value pair (nil when absent or
// never sampled). Reporting helper for tests and the future
// feedback-driven dispatcher.
func (m *Meter) GaugeSamples(name string, kv ...string) []Sample {
	if m == nil {
		return nil
	}
	want := labelsOf(kv)
	keys := m.sortedKeys()
	sort.Strings(keys)
	for _, key := range keys {
		s := m.series[key]
		if s.name != name || s.kind != "gauge" {
			continue
		}
		match := true
		for k, v := range want {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.samples
		}
	}
	return nil
}
