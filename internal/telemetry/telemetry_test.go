package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilMeterIsNoOp(t *testing.T) {
	var m *Meter
	m.Count("x_total", 1)
	m.Set("g", 3)
	m.SetFunc("g2", func() float64 { return 1 })
	m.Observe("h_ps", 5)
	m.Advance(1e9)
	m.Absorb(NewMeter(0), "board", "0")
	if m.PromText() != "" {
		t.Fatal("nil meter PromText not empty")
	}
	if s := m.GaugeSamples("g"); s != nil {
		t.Fatal("nil meter has samples")
	}
	if _, err := m.Trace().Marshal(); err != nil {
		t.Fatal(err)
	}
	m.Trace().Span(Span{Name: "x"})
	m.Trace().Instant(Instant{Name: "y"})
	m.Trace().NameProcess(0, "p")
	m.Trace().NameThread(0, 0, "t")
}

func TestCountersAndGauges(t *testing.T) {
	m := NewMeter(0)
	m.Count("jobs_total", 1, "path", "staged")
	m.Count("jobs_total", 2, "path", "staged")
	m.Count("jobs_total", 5, "path", "stream")
	live := 7.0
	m.Set("depth", 3)
	m.SetFunc("live_depth", func() float64 { return live })
	live = 9

	out := m.PromText()
	for _, want := range []string{
		`jobs_total{path="staged"} 3`,
		`jobs_total{path="stream"} 5`,
		"depth 3",
		"live_depth 9",
		"# TYPE jobs_total counter",
		"# TYPE depth gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("PromText missing %q:\n%s", want, out)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("counter reused as gauge did not panic")
		}
	}()
	m := NewMeter(0)
	m.Count("x", 1)
	m.Set("x", 2)
}

func TestSamplerFillsBoundaries(t *testing.T) {
	m := NewMeter(100)
	depth := 0.0
	m.SetFunc("depth", func() float64 { return depth })
	m.Advance(50) // no boundary crossed
	depth = 2
	m.Advance(250) // boundaries 100, 200 filled with the value seen now
	depth = 5
	m.Advance(300) // boundary 300
	got := m.GaugeSamples("depth")
	want := []Sample{{100, 2}, {200, 2}, {300, 5}}
	if len(got) != len(want) {
		t.Fatalf("samples = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Sampling disabled: no series accumulate.
	off := NewMeter(0)
	off.Set("g", 1)
	off.Advance(1e12)
	if s := off.GaugeSamples("g"); len(s) != 0 {
		t.Fatalf("disabled sampler recorded %d samples", len(s))
	}
}

func TestHistogramExposition(t *testing.T) {
	m := NewMeter(0)
	m.Observe("lat_ps", 5e6) // bucket le=1e7
	m.Observe("lat_ps", 2e12)
	out := m.PromText()
	for _, want := range []string{
		"# TYPE lat_ps histogram",
		`lat_ps_bucket{le="1e+07"} 1`,
		`lat_ps_bucket{le="+Inf"} 2`,
		"lat_ps_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("PromText missing %q:\n%s", want, out)
		}
	}
}

func TestAbsorbFoldsUnderLabel(t *testing.T) {
	parent := NewMeter(100)
	for b := 0; b < 2; b++ {
		child := NewMeter(100)
		child.Count("faults_total", uint64(b+1))
		child.Set("depth", float64(10*b))
		child.Observe("lat_ps", 1e9)
		child.Advance(100)
		child.Trace().Span(Span{Name: "exec", Pid: 2 + b, Tid: 0, StartPs: 0, DurPs: 10})
		parent.Absorb(child, "board", string(rune('0'+b)))
	}
	out := parent.PromText()
	for _, want := range []string{
		`faults_total{board="0"} 1`,
		`faults_total{board="1"} 2`,
		`depth{board="1"} 10`,
		`lat_ps_count{board="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("PromText missing %q:\n%s", want, out)
		}
	}
	if s := parent.GaugeSamples("depth", "board", "1"); len(s) != 1 || s[0].Value != 10 {
		t.Fatalf("absorbed samples = %+v", s)
	}
	raw, err := parent.Trace().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"exec"`)) {
		t.Fatal("absorbed trace lost the span")
	}
}

func TestDumpDeterministic(t *testing.T) {
	build := func() *Meter {
		m := NewMeter(50)
		m.Count("b_total", 2)
		m.Count("a_total", 1, "k", "v")
		m.Set("g", 4)
		m.Observe("h_ps", 3e9)
		m.Advance(120)
		return m
	}
	d1, err := build().DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := build().DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("identical meters dumped different bytes")
	}
	var dump JSONDump
	if err := json.Unmarshal(d1, &dump); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if len(dump.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(dump.Series))
	}
	// Sorted by key: a_total before b_total.
	if dump.Series[0].Name != "a_total" {
		t.Fatalf("first series %q, want a_total", dump.Series[0].Name)
	}
}

func TestTraceMarshalStructure(t *testing.T) {
	tr := NewTrace()
	tr.NameProcess(1, "jobs")
	tr.NameThread(1, 7, "job 7")
	tr.Span(Span{Name: "exec", Cat: "job", Pid: 1, Tid: 7, StartPs: 2e6, DurPs: 3e6})
	tr.Span(Span{Name: "queue", Cat: "job", Pid: 1, Tid: 7, StartPs: 0, DurPs: 2e6})
	tr.Instant(Instant{Name: "route", Pid: 0, Tid: 0, AtPs: 1e6})
	raw, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	// 2 metadata + 2 spans + 1 instant.
	if len(f.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(f.TraceEvents))
	}
	if f.TraceEvents[0]["ph"] != "M" {
		t.Fatal("metadata not first")
	}
	// queue (ts 0) sorts before exec (ts 2); ts is in microseconds.
	var spans []map[string]any
	for _, ev := range f.TraceEvents {
		if ev["ph"] == "X" {
			spans = append(spans, ev)
		}
	}
	if spans[0]["name"] != "queue" || spans[0]["ts"].(float64) != 0 {
		t.Fatalf("first span = %+v", spans[0])
	}
	if spans[1]["ts"].(float64) != 2 || spans[1]["dur"].(float64) != 3 {
		t.Fatalf("exec span ts/dur = %v/%v, want 2/3 us", spans[1]["ts"], spans[1]["dur"])
	}
}

func TestNormalizeClipsOverlap(t *testing.T) {
	got := normalizeSpans([]Span{
		{Name: "b", Pid: 1, Tid: 1, StartPs: 5, DurPs: 10},
		{Name: "a", Pid: 1, Tid: 1, StartPs: 0, DurPs: 8},
		{Name: "neg", Pid: 1, Tid: 2, StartPs: 3, DurPs: -4},
	})
	// Track (1,1): a [0,8), b clipped to [8,15). Track (1,2): neg clamps to 0.
	if got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("order = %s,%s", got[0].Name, got[1].Name)
	}
	if got[1].StartPs != 8 || got[1].DurPs != 7 {
		t.Fatalf("clipped span = %+v", got[1])
	}
	if got[2].DurPs != 0 {
		t.Fatalf("negative duration not clamped: %+v", got[2])
	}
	checkNoOverlap(t, got)
}

// checkNoOverlap asserts spans are disjoint per (pid, tid) track.
func checkNoOverlap(t *testing.T, spans []Span) {
	t.Helper()
	end := map[[2]int]float64{}
	for _, s := range spans {
		k := [2]int{s.Pid, s.Tid}
		free, seen := end[k]
		if seen && s.StartPs < free {
			t.Fatalf("span %q starts at %v before track (%d,%d) is free at %v",
				s.Name, s.StartPs, s.Pid, s.Tid, free)
		}
		if e := s.StartPs + s.DurPs; !seen || e > free {
			end[k] = e
		}
	}
}

// FuzzTraceMarshal feeds arbitrary span soups through the exporter and
// asserts the two structural invariants every consumer relies on: the
// output always parses as trace-event JSON, and "X" spans never overlap
// on one (pid, tid) track.
func FuzzTraceMarshal(f *testing.F) {
	f.Add(int64(3), uint8(2), uint8(2))
	f.Add(int64(99), uint8(1), uint8(8))
	f.Add(int64(-7), uint8(5), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, tracks, perTrack uint8) {
		tr := NewTrace()
		// A tiny deterministic generator from the fuzzed seed; spans get
		// arbitrary (possibly overlapping, possibly negative) geometry.
		x := uint64(seed)
		next := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return float64(int64(x>>16)%2_000_000) - 500_000
		}
		nt := int(tracks%8) + 1
		for pid := 0; pid < nt; pid++ {
			for i := 0; i < int(perTrack%16); i++ {
				tr.Span(Span{
					Name: "s", Pid: pid, Tid: int(uint8(x) % 4),
					StartPs: next(), DurPs: next(),
				})
			}
		}
		raw, err := tr.Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var parsed struct {
			TraceEvents []traceEvent `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &parsed); err != nil {
			t.Fatalf("export does not parse: %v", err)
		}
		end := map[[2]int]float64{}
		for _, ev := range parsed.TraceEvents {
			if ev.Ph != "X" {
				continue
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("X span with missing or negative dur: %+v", ev)
			}
			k := [2]int{ev.Pid, ev.Tid}
			free, seen := end[k]
			if seen && ev.Ts < free {
				t.Fatalf("span overlaps on track %v: ts %v before free %v", k, ev.Ts, free)
			}
			if e := ev.Ts + *ev.Dur; !seen || e > free {
				end[k] = e
			}
		}
	})
}
