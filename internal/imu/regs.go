package imu

import (
	"fmt"

	"repro/internal/amba"
)

// Register-window word offsets (the IMU's AHB slave interface, Figure 4's
// AR/SR/CR block plus the TLB access port).
const (
	RegSR       = 0x00 // status (RO)
	RegAR       = 0x04 // fault address (RO): obj<<24 | byte address
	RegCR       = 0x08 // control (WO)
	RegTLBIdx   = 0x0c // TLB entry selector (RW)
	RegTLBLo    = 0x10 // selected entry: valid|obj|vpage (RW)
	RegTLBHi    = 0x14 // selected entry: frame|dirty|ref (RW)
	RegTLBCount = 0x18 // number of TLB entries (RO)
	RegLastUse  = 0x1c // LastUse stamp of the selected entry (RO)
	RegWindow   = 0x20 // total window size in bytes
)

// Control register bits.
const (
	CRStart   = 1 << 0 // assert CP_START
	CRRestart = 1 << 1 // resume translation after fault service
	CRAckDone = 1 << 2 // acknowledge completion, deassert CP_START
	CRStop    = 1 << 3 // deassert CP_START without acknowledging
	CRClrPF   = 1 << 4 // clear the parameter-free status bit
)

// --- Direct (engine-paused) OS accessors -------------------------------

// SR returns the status register.
func (u *IMU) SR() uint32 { return u.sr }

// AR returns the fault address register.
func (u *IMU) AR() uint32 { return u.ar }

// IRQ reports whether the interrupt line is asserted.
func (u *IMU) IRQ() bool { return u.irq }

// IRQRef exposes the interrupt line for the engine's flag-polled run loop
// (sim.Engine.RunUntilFlag). The line is only written during Update, so
// polling it between super-edges observes committed state.
func (u *IMU) IRQRef() *bool { return &u.irq }

// FaultPending reports a pending translation fault.
func (u *IMU) FaultPending() bool { return u.sr&SRFault != 0 }

// DonePending reports a pending completion notification.
func (u *IMU) DonePending() bool { return u.sr&SRDone != 0 }

// ParamFree reports that the coprocessor has released the parameter page.
func (u *IMU) ParamFree() bool { return u.sr&SRParamFree != 0 }

// ClearParamFree clears the parameter-free status bit (VIM bookkeeping).
func (u *IMU) ClearParamFree() { u.sr &^= SRParamFree }

// FaultObj decodes the faulting object identifier from AR.
func (u *IMU) FaultObj() uint8 { return uint8(u.ar >> 24) }

// FaultAddr decodes the faulting byte address from AR.
func (u *IMU) FaultAddr() uint32 { return u.ar & 0x00ffffff }

// Start requests CP_START assertion at the next hardware edge.
func (u *IMU) Start() { u.ctl |= ctlStart }

// Stop requests CP_START deassertion.
func (u *IMU) Stop() { u.ctl |= ctlStop }

// Restart resumes a faulted translation after the OS has fixed the TLB.
func (u *IMU) Restart() { u.ctl |= ctlRestart }

// AckDone acknowledges completion and returns the IMU to idle.
func (u *IMU) AckDone() { u.ctl |= ctlAckDone }

// Entries returns the TLB size.
func (u *IMU) Entries() int { return len(u.tlb) }

// Entry returns TLB entry i.
func (u *IMU) Entry(i int) TLBEntry {
	if i < 0 || i >= len(u.tlb) {
		return TLBEntry{}
	}
	return u.tlb[i]
}

// SetEntry writes TLB entry i (OS fault service; the engine is paused, and
// real hardware likewise only allows table writes while the coprocessor is
// stalled).
func (u *IMU) SetEntry(i int, e TLBEntry) error {
	if i < 0 || i >= len(u.tlb) {
		return fmt.Errorf("imu: TLB index %d out of range", i)
	}
	u.tlb[i] = e
	return nil
}

// ClearRefBits clears every entry's reference bit (clock policy sweep).
func (u *IMU) ClearRefBits() {
	for i := range u.tlb {
		u.tlb[i].Ref = false
	}
}

// InvalidateAll clears the whole TLB (end of operation).
func (u *IMU) InvalidateAll() {
	for i := range u.tlb {
		u.tlb[i] = TLBEntry{}
	}
}

// ResetCounters zeroes the activity counters (between experiment runs).
func (u *IMU) ResetCounters() { u.Count = Counters{} }

// --- Register window encoding ------------------------------------------

func packLo(e TLBEntry) uint32 {
	v := uint32(0)
	if e.Valid {
		v |= 1
	}
	v |= uint32(e.Obj) << 1
	v |= (e.VPage & 0x7fff) << 9
	return v
}

func unpackLo(v uint32, e *TLBEntry) {
	e.Valid = v&1 != 0
	e.Obj = uint8(v >> 1)
	e.VPage = v >> 9 & 0x7fff
}

func packHi(e TLBEntry) uint32 {
	v := uint32(e.Frame)
	if e.Dirty {
		v |= 1 << 8
	}
	if e.Ref {
		v |= 1 << 9
	}
	return v
}

func unpackHi(v uint32, e *TLBEntry) {
	e.Frame = uint8(v)
	e.Dirty = v&(1<<8) != 0
	e.Ref = v&(1<<9) != 0
}

// RegRead implements the slave read path of the register window.
func (u *IMU) RegRead(off uint32) (uint32, error) {
	switch off {
	case RegSR:
		return u.sr, nil
	case RegAR:
		return u.ar, nil
	case RegTLBIdx:
		return uint32(u.tlbIdx), nil
	case RegTLBLo:
		return packLo(u.Entry(u.tlbIdx)), nil
	case RegTLBHi:
		return packHi(u.Entry(u.tlbIdx)), nil
	case RegTLBCount:
		return uint32(len(u.tlb)), nil
	case RegLastUse:
		return uint32(u.Entry(u.tlbIdx).LastUse), nil
	default:
		return 0, fmt.Errorf("imu: read from unmapped register %#x", off)
	}
}

// RegWrite implements the slave write path of the register window.
func (u *IMU) RegWrite(off uint32, v uint32) error {
	switch off {
	case RegCR:
		if v&CRStart != 0 {
			u.Start()
		}
		if v&CRRestart != 0 {
			u.Restart()
		}
		if v&CRAckDone != 0 {
			u.AckDone()
		}
		if v&CRStop != 0 {
			u.Stop()
		}
		if v&CRClrPF != 0 {
			u.ClearParamFree()
		}
		return nil
	case RegTLBIdx:
		if int(v) >= len(u.tlb) {
			return fmt.Errorf("imu: TLB index %d out of range", v)
		}
		u.tlbIdx = int(v)
		return nil
	case RegTLBLo:
		e := u.Entry(u.tlbIdx)
		unpackLo(v, &e)
		return u.SetEntry(u.tlbIdx, e)
	case RegTLBHi:
		e := u.Entry(u.tlbIdx)
		unpackHi(v, &e)
		return u.SetEntry(u.tlbIdx, e)
	default:
		return fmt.Errorf("imu: write to unmapped register %#x", off)
	}
}

// Slave returns an AHB slave exposing the register window.
func (u *IMU) Slave() amba.Slave {
	return &amba.RegSlave{Label: "imu-regs", ReadFn: u.RegRead, WriteFn: u.RegWrite}
}
