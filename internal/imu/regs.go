package imu

import (
	"fmt"

	"repro/internal/amba"
	"repro/internal/copro"
)

// Register-window word offsets (the IMU's AHB slave interface, Figure 4's
// AR/SR/CR block plus the TLB access port). Channel i's bank is stacked at
// byte offset i*RegWindow; SR/AR/CR are per channel, while the TLB access
// port (index, entry words, count, stamp) addresses the shared table from
// any bank.
const (
	RegSR       = 0x00 // status (RO)
	RegAR       = 0x04 // fault address (RO): obj<<24 | byte address
	RegCR       = 0x08 // control (WO)
	RegTLBIdx   = 0x0c // TLB entry selector (RW)
	RegTLBLo    = 0x10 // selected entry: valid|obj|vpage|sess (RW)
	RegTLBHi    = 0x14 // selected entry: frame|dirty|ref (RW)
	RegTLBCount = 0x18 // number of TLB entries (RO)
	RegLastUse  = 0x1c // LastUse stamp of the selected entry (RO)
	RegWindow   = 0x20 // per-channel bank size in bytes
)

// MaxChannels bounds the coprocessor channels one IMU can serve; it also
// sizes the AHB register window (MaxChannels banks of RegWindow bytes).
const MaxChannels = 8

// RegWindowAll is the full banked register window size in bytes.
const RegWindowAll = RegWindow * MaxChannels

// RegBank returns the byte offset of channel i's register bank within the
// window.
func RegBank(i int) uint32 { return uint32(i) * RegWindow }

// Control register bits.
const (
	CRStart   = 1 << 0 // assert CP_START
	CRRestart = 1 << 1 // resume translation after fault service
	CRAckDone = 1 << 2 // acknowledge completion, deassert CP_START
	CRStop    = 1 << 3 // deassert CP_START without acknowledging
	CRClrPF   = 1 << 4 // clear the parameter-free status bit
)

// --- Direct (engine-paused) OS accessors -------------------------------

// SR returns channel 0's status register.
func (u *IMU) SR() uint32 { return u.ch[0].sr }

// SRCh returns channel i's status register.
func (u *IMU) SRCh(i int) uint32 { return u.ch[i].sr }

// AR returns channel 0's fault address register.
func (u *IMU) AR() uint32 { return u.ch[0].ar }

// ARCh returns channel i's fault address register.
func (u *IMU) ARCh(i int) uint32 { return u.ch[i].ar }

// IRQ reports whether the (shared) interrupt line is asserted.
func (u *IMU) IRQ() bool { return u.irq }

// IRQCh reports whether channel i is contributing to the interrupt line.
func (u *IMU) IRQCh(i int) bool { return u.ch[i].irq }

// IRQRef exposes the interrupt line for the engine's flag-polled run loop
// (sim.Engine.RunUntilFlag). The line is the OR of the channel IRQs and is
// only written during Update, so polling it between super-edges observes
// committed state.
func (u *IMU) IRQRef() *bool { return &u.irq }

// FaultPending reports a pending translation fault on channel 0.
func (u *IMU) FaultPending() bool { return u.ch[0].sr&SRFault != 0 }

// FaultPendingCh reports a pending translation fault on channel i.
func (u *IMU) FaultPendingCh(i int) bool { return u.ch[i].sr&SRFault != 0 }

// DonePending reports a pending completion notification on channel 0.
func (u *IMU) DonePending() bool { return u.ch[0].sr&SRDone != 0 }

// DonePendingCh reports a pending completion notification on channel i.
func (u *IMU) DonePendingCh(i int) bool { return u.ch[i].sr&SRDone != 0 }

// ParamFree reports that channel 0's coprocessor has released the parameter
// page.
func (u *IMU) ParamFree() bool { return u.ch[0].sr&SRParamFree != 0 }

// ParamFreeCh reports that channel i's coprocessor has released the
// parameter page.
func (u *IMU) ParamFreeCh(i int) bool { return u.ch[i].sr&SRParamFree != 0 }

// ClearParamFree clears channel 0's parameter-free status bit.
func (u *IMU) ClearParamFree() { u.ch[0].sr &^= SRParamFree }

// ClearParamFreeCh clears channel i's parameter-free status bit.
func (u *IMU) ClearParamFreeCh(i int) { u.ch[i].sr &^= SRParamFree }

// FaultObj decodes the faulting object identifier from channel 0's AR.
func (u *IMU) FaultObj() uint8 { return uint8(u.ch[0].ar >> 24) }

// FaultAddr decodes the faulting byte address from channel 0's AR.
func (u *IMU) FaultAddr() uint32 { return u.ch[0].ar & 0x00ffffff }

// Start requests CP_START assertion on channel 0 at the next hardware edge.
func (u *IMU) Start() { u.ch[0].ctl |= ctlStart }

// StartCh requests CP_START assertion on channel i.
func (u *IMU) StartCh(i int) { u.ch[i].ctl |= ctlStart }

// Stop requests CP_START deassertion on channel 0.
func (u *IMU) Stop() { u.ch[0].ctl |= ctlStop }

// StopCh requests CP_START deassertion on channel i.
func (u *IMU) StopCh(i int) { u.ch[i].ctl |= ctlStop }

// Restart resumes channel 0's faulted translation after the OS has fixed
// the TLB.
func (u *IMU) Restart() { u.ch[0].ctl |= ctlRestart }

// RestartCh resumes channel i's faulted translation.
func (u *IMU) RestartCh(i int) { u.ch[i].ctl |= ctlRestart }

// AckDone acknowledges completion on channel 0.
func (u *IMU) AckDone() { u.ch[0].ctl |= ctlAckDone }

// AckDoneCh acknowledges completion on channel i.
func (u *IMU) AckDoneCh(i int) { u.ch[i].ctl |= ctlAckDone }

// ChCounters returns channel i's activity counters.
func (u *IMU) ChCounters(i int) Counters { return u.ch[i].Count }

// UnbindCh returns channel i to its quiescent power-on state behind a fresh
// idle port, keeping only the session tag and the accumulated counters. It
// is the hardware half of unloading a slot for partial reconfiguration: the
// other channels keep translating, and the shared interrupt line is
// recomputed so a request the detached channel had pending cannot linger.
// Like every OS-side accessor it must only be called while the engine is
// paused; rebind with BindCh once a new coprocessor occupies the slot.
func (u *IMU) UnbindCh(i int) {
	c := &u.ch[i]
	*c = channel{sess: c.sess, Count: c.Count}
	u.BindCh(i, copro.NewPort())
	irq := false
	for j := range u.ch {
		if u.ch[j].irq {
			irq = true
			break
		}
	}
	u.irq = irq
}

// InjectFault forces channel i into the faulted state with the given cause
// (testbench support: unit tests of the fault-service path poke the fault
// without running a coprocessor model).
func (u *IMU) InjectFault(i int, obj uint8, addr uint32) {
	c := &u.ch[i]
	c.state = stFault
	c.sr |= SRFault
	c.ar = uint32(obj)<<24 | addr&0x00ffffff
	c.irq = true
	u.irq = true
}

// Entries returns the TLB size.
func (u *IMU) Entries() int { return len(u.tlb) }

// Entry returns TLB entry i.
func (u *IMU) Entry(i int) TLBEntry {
	if i < 0 || i >= len(u.tlb) {
		return TLBEntry{}
	}
	return u.tlb[i]
}

// SetEntry writes TLB entry i (OS fault service; the engine is paused, and
// real hardware likewise only allows table writes while the coprocessor is
// stalled).
func (u *IMU) SetEntry(i int, e TLBEntry) error {
	if i < 0 || i >= len(u.tlb) {
		return fmt.Errorf("imu: TLB index %d out of range", i)
	}
	u.tlb[i] = e
	return nil
}

// ClearRefBits clears every entry's reference bit (clock policy sweep).
func (u *IMU) ClearRefBits() {
	for i := range u.tlb {
		u.tlb[i].Ref = false
	}
}

// InvalidateAll clears the whole TLB (end of operation, single session).
func (u *IMU) InvalidateAll() {
	for i := range u.tlb {
		u.tlb[i] = TLBEntry{}
	}
}

// InvalidateSession clears only the entries owned by session sess (end of
// one session's operation on a shared table).
func (u *IMU) InvalidateSession(sess uint8) {
	for i := range u.tlb {
		if u.tlb[i].Valid && u.tlb[i].Sess == sess {
			u.tlb[i] = TLBEntry{}
		}
	}
}

// ResetCounters zeroes the activity counters, global and per channel
// (between experiment runs).
func (u *IMU) ResetCounters() {
	u.Count = Counters{}
	for i := range u.ch {
		u.ch[i].Count = Counters{}
	}
}

// --- Register window encoding ------------------------------------------

func packLo(e TLBEntry) uint32 {
	v := uint32(0)
	if e.Valid {
		v |= 1
	}
	v |= uint32(e.Obj) << 1
	v |= (e.VPage & 0x7fff) << 9
	v |= uint32(e.Sess&0xf) << 24
	return v
}

func unpackLo(v uint32, e *TLBEntry) {
	e.Valid = v&1 != 0
	e.Obj = uint8(v >> 1)
	e.VPage = v >> 9 & 0x7fff
	e.Sess = uint8(v >> 24 & 0xf)
}

func packHi(e TLBEntry) uint32 {
	v := uint32(e.Frame)
	if e.Dirty {
		v |= 1 << 8
	}
	if e.Ref {
		v |= 1 << 9
	}
	return v
}

func unpackHi(v uint32, e *TLBEntry) {
	e.Frame = uint8(v)
	e.Dirty = v&(1<<8) != 0
	e.Ref = v&(1<<9) != 0
}

// RegRead implements the slave read path of the banked register window:
// byte offset = bank*RegWindow + register, where bank selects the channel.
func (u *IMU) RegRead(off uint32) (uint32, error) {
	bank := int(off / RegWindow)
	if bank >= len(u.ch) {
		return 0, fmt.Errorf("imu: read from bank %d of a %d-channel IMU", bank, len(u.ch))
	}
	c := &u.ch[bank]
	switch off % RegWindow {
	case RegSR:
		return c.sr, nil
	case RegAR:
		return c.ar, nil
	case RegTLBIdx:
		return uint32(u.tlbIdx), nil
	case RegTLBLo:
		return packLo(u.Entry(u.tlbIdx)), nil
	case RegTLBHi:
		return packHi(u.Entry(u.tlbIdx)), nil
	case RegTLBCount:
		return uint32(len(u.tlb)), nil
	case RegLastUse:
		return uint32(u.Entry(u.tlbIdx).LastUse), nil
	default:
		return 0, fmt.Errorf("imu: read from unmapped register %#x", off)
	}
}

// RegWrite implements the slave write path of the banked register window.
func (u *IMU) RegWrite(off uint32, v uint32) error {
	bank := int(off / RegWindow)
	if bank >= len(u.ch) {
		return fmt.Errorf("imu: write to bank %d of a %d-channel IMU", bank, len(u.ch))
	}
	switch off % RegWindow {
	case RegCR:
		if v&CRStart != 0 {
			u.StartCh(bank)
		}
		if v&CRRestart != 0 {
			u.RestartCh(bank)
		}
		if v&CRAckDone != 0 {
			u.AckDoneCh(bank)
		}
		if v&CRStop != 0 {
			u.StopCh(bank)
		}
		if v&CRClrPF != 0 {
			u.ClearParamFreeCh(bank)
		}
		return nil
	case RegTLBIdx:
		if int(v) >= len(u.tlb) {
			return fmt.Errorf("imu: TLB index %d out of range", v)
		}
		u.tlbIdx = int(v)
		return nil
	case RegTLBLo:
		e := u.Entry(u.tlbIdx)
		unpackLo(v, &e)
		return u.SetEntry(u.tlbIdx, e)
	case RegTLBHi:
		e := u.Entry(u.tlbIdx)
		unpackHi(v, &e)
		return u.SetEntry(u.tlbIdx, e)
	default:
		return fmt.Errorf("imu: write to unmapped register %#x", off)
	}
}

// Slave returns an AHB slave exposing the banked register window.
func (u *IMU) Slave() amba.Slave {
	return &amba.RegSlave{Label: "imu-regs", ReadFn: u.RegRead, WriteFn: u.RegWrite}
}
