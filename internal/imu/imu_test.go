package imu

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/copro"
	"repro/internal/mem"
	"repro/internal/sim"
)

// tbOp is one scripted access for the testbench driver.
type tbOp struct {
	wr   bool
	obj  uint8
	addr uint32
	size uint8
	val  uint32
}

// tbResult records a completed access.
type tbResult struct {
	data       uint32
	issueCycle int64
	doneCycle  int64
}

// tbDriver is a minimal scripted coprocessor used to exercise the IMU.
type tbDriver struct {
	mem     *copro.Mem
	dom     *sim.Domain
	script  []tbOp
	idx     int
	results []tbResult
	issueAt int64
	finish  bool // drive CP_FIN once the script is exhausted
	pinv    bool // drive one CP_PINV pulse at the first edge
	sent    bool
}

func (d *tbDriver) Eval() {
	d.mem.Step()
	if d.mem.Completed() {
		d.results = append(d.results, tbResult{
			data:       d.mem.Data(),
			issueCycle: d.issueAt,
			doneCycle:  d.dom.Cycles(),
		})
		d.idx++
	}
	if d.mem.Ready() && d.idx < len(d.script) {
		op := d.script[d.idx]
		if op.wr {
			d.mem.Write(op.obj, op.addr, op.size, op.val)
		} else {
			d.mem.Read(op.obj, op.addr, op.size)
		}
		d.issueAt = d.dom.Cycles()
	}
	fin := d.finish && d.idx >= len(d.script) && d.mem.Ready()
	pinv := d.pinv && !d.sent
	d.sent = true
	d.mem.Drive(fin, pinv)
}

func (d *tbDriver) Update() { d.mem.Commit() }

// rig bundles a complete IMU test fixture.
type rig struct {
	eng  *sim.Engine
	dom  *sim.Domain
	dp   *mem.DPRAM
	imu  *IMU
	port *copro.Port
	drv  *tbDriver
}

func newRig(t *testing.T, mode Mode, script []tbOp) *rig {
	t.Helper()
	dp, err := mem.NewDPRAM(16*1024, 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	u, err := New(Config{PageShift: 11, Entries: 8, Mode: mode}, dp)
	if err != nil {
		t.Fatal(err)
	}
	port := copro.NewPort()
	u.Bind(port)
	eng := sim.NewEngine()
	dom := eng.NewDomain("imu", 40_000_000)
	drv := &tbDriver{mem: copro.NewMem(port), dom: dom, script: script}
	dom.Attach(drv)
	dom.Attach(u)
	return &rig{eng: eng, dom: dom, dp: dp, imu: u, port: port, drv: drv}
}

// mapPage installs a TLB entry mapping (obj, vpage) -> frame.
func (r *rig) mapPage(obj uint8, vpage uint32, frame uint8) {
	for i := 0; i < r.imu.Entries(); i++ {
		if !r.imu.Entry(i).Valid {
			if err := r.imu.SetEntry(i, TLBEntry{Valid: true, Obj: obj, VPage: vpage, Frame: frame}); err != nil {
				panic(err)
			}
			return
		}
	}
	panic("no free TLB entry")
}

func (r *rig) runUntil(t *testing.T, done func() bool) {
	t.Helper()
	if _, err := r.eng.RunUntil(done, 100000); err != nil {
		t.Fatalf("simulation did not converge: %v", err)
	}
}

func TestFig7ReadLatencyIsFourCycles(t *testing.T) {
	r := newRig(t, MultiCycle, []tbOp{{obj: 2, addr: 0x10, size: copro.Size32}})
	r.mapPage(2, 0, 3)
	want := uint32(0xa5a5_1234)
	if err := r.dp.WriteB(r.dp.PageBase(3)+0x10, want, 0xf); err != nil {
		t.Fatal(err)
	}

	var accessSeen, hitSeen int64 = -1, -1
	r.imu.SetTrace(&TraceHooks{OnEdge: func(cy uint64, cp copro.CPOut, out copro.IMUOut) {
		if cp.Access && accessSeen < 0 {
			accessSeen = int64(cy)
		}
		if out.TLBHit && hitSeen < 0 {
			hitSeen = int64(cy)
		}
	}})

	r.runUntil(t, func() bool { return len(r.drv.results) == 1 })
	if got := r.drv.results[0].data; got != want {
		t.Fatalf("read data = %#x, want %#x", got, want)
	}
	if accessSeen < 0 || hitSeen < 0 {
		t.Fatalf("trace incomplete: access@%d hit@%d", accessSeen, hitSeen)
	}
	// The paper's Figure 7: the data is ready on the fourth rising edge
	// after the coprocessor generates the access. Both trace stamps are
	// first-visible edges (one after the respective commits), so the
	// committed-edge distance is their difference.
	if d := hitSeen - accessSeen; d != 4 {
		t.Fatalf("translated read latency = %d cycles, want 4 (access committed@%d, hit committed@%d)",
			d, accessSeen-1, hitSeen-1)
	}
	if r.imu.Count.Accesses != 1 || r.imu.Count.Faults != 0 {
		t.Fatalf("counters = %+v", r.imu.Count)
	}
}

func TestPipelinedReadLatencyIsOneCycle(t *testing.T) {
	r := newRig(t, Pipelined, []tbOp{{obj: 1, addr: 0, size: copro.Size32}})
	r.mapPage(1, 0, 0)
	var accessSeen, hitSeen int64 = -1, -1
	r.imu.SetTrace(&TraceHooks{OnEdge: func(cy uint64, cp copro.CPOut, out copro.IMUOut) {
		if cp.Access && accessSeen < 0 {
			accessSeen = int64(cy)
		}
		if out.TLBHit && hitSeen < 0 {
			hitSeen = int64(cy)
		}
	}})
	r.runUntil(t, func() bool { return len(r.drv.results) == 1 })
	if d := hitSeen - accessSeen; d != 1 {
		t.Fatalf("pipelined read latency = %d cycles, want 1", d)
	}
}

func TestSubWordReadLaneExtraction(t *testing.T) {
	r := newRig(t, MultiCycle, []tbOp{
		{obj: 0, addr: 0x21, size: copro.Size8},
		{obj: 0, addr: 0x22, size: copro.Size16},
	})
	r.mapPage(0, 0, 0)
	if err := r.dp.WriteB(0x20, 0xddccbbaa, 0xf); err != nil {
		t.Fatal(err)
	}
	r.runUntil(t, func() bool { return len(r.drv.results) == 2 })
	if got := r.drv.results[0].data; got != 0xbb {
		t.Fatalf("byte read = %#x, want 0xbb", got)
	}
	if got := r.drv.results[1].data; got != 0xddcc {
		t.Fatalf("halfword read = %#x, want 0xddcc", got)
	}
}

func TestWriteSetsDirtyAndLands(t *testing.T) {
	r := newRig(t, MultiCycle, []tbOp{
		{wr: true, obj: 5, addr: 0x40, size: copro.Size32, val: 0x01020304},
		{wr: true, obj: 5, addr: 0x45, size: copro.Size8, val: 0x99},
	})
	r.mapPage(5, 0, 7)
	r.runUntil(t, func() bool { return len(r.drv.results) == 2 })
	base := r.dp.PageBase(7)
	w, _ := r.dp.ReadB(base + 0x40)
	if w != 0x01020304 {
		t.Fatalf("word at +0x40 = %#x", w)
	}
	w, _ = r.dp.ReadB(base + 0x44)
	if w&0x0000ff00 != 0x9900 {
		t.Fatalf("byte lane write wrong: word = %#x", w)
	}
	if !r.imu.Entry(0).Dirty {
		t.Fatal("dirty bit not set by write hit")
	}
}

func TestFaultRaisesIRQAndRestartResumes(t *testing.T) {
	r := newRig(t, MultiCycle, []tbOp{{obj: 9, addr: 0x1810, size: copro.Size32}})
	// No mapping for obj 9 page 3 -> fault. (0x1810 >> 11 == 3)
	r.runUntil(t, func() bool { return r.imu.IRQ() })
	if !r.imu.FaultPending() {
		t.Fatal("SR.FAULT not set")
	}
	if r.imu.FaultObj() != 9 {
		t.Fatalf("AR obj = %d, want 9", r.imu.FaultObj())
	}
	if r.imu.FaultAddr() != 0x1810 {
		t.Fatalf("AR addr = %#x, want 0x1810", r.imu.FaultAddr())
	}
	if r.imu.Count.Faults != 1 {
		t.Fatalf("faults = %d, want 1", r.imu.Count.Faults)
	}

	// OS service: install the mapping, put data in the frame, restart.
	want := uint32(0x5ee5_0042)
	if err := r.dp.WriteB(r.dp.PageBase(2)+0x10, want, 0xf); err != nil {
		t.Fatal(err)
	}
	r.mapPage(9, 3, 2)
	r.imu.Restart()
	r.runUntil(t, func() bool { return len(r.drv.results) == 1 })
	if got := r.drv.results[0].data; got != want {
		t.Fatalf("post-restart data = %#x, want %#x", got, want)
	}
	if r.imu.FaultPending() || r.imu.IRQ() {
		t.Fatal("fault state not cleared after restart")
	}
}

func TestFinSetsDoneAndAckClears(t *testing.T) {
	r := newRig(t, MultiCycle, []tbOp{{obj: 0, addr: 0, size: copro.Size32}})
	r.mapPage(0, 0, 0)
	r.drv.finish = true
	r.imu.Start()
	r.runUntil(t, func() bool { return r.imu.DonePending() })
	if !r.imu.IRQ() {
		t.Fatal("completion did not raise IRQ")
	}
	if r.imu.SR()&SRRunning == 0 {
		t.Fatal("SR.RUNNING lost before ack")
	}
	r.imu.AckDone()
	r.eng.RunCycles(r.dom, 3)
	if r.imu.DonePending() || r.imu.IRQ() {
		t.Fatal("AckDone did not clear completion state")
	}
	if r.port.IMU().Start {
		t.Fatal("CP_START still asserted after AckDone")
	}
}

func TestParamPageInvalidation(t *testing.T) {
	r := newRig(t, MultiCycle, nil)
	r.mapPage(copro.ParamObj, 0, 0)
	r.drv.pinv = true
	r.eng.RunCycles(r.dom, 5)
	if !r.imu.ParamFree() {
		t.Fatal("SR.PARAMFREE not set")
	}
	if r.imu.Entry(0).Valid {
		t.Fatal("parameter TLB entry still valid")
	}
	if r.imu.Count.ParamFrees != 1 {
		t.Fatalf("ParamFrees = %d, want 1", r.imu.Count.ParamFrees)
	}
	r.imu.ClearParamFree()
	if r.imu.ParamFree() {
		t.Fatal("ClearParamFree did not clear the bit")
	}
}

func TestLastUseStampsAreMonotone(t *testing.T) {
	r := newRig(t, MultiCycle, []tbOp{
		{obj: 0, addr: 0, size: copro.Size32},
		{obj: 1, addr: 0, size: copro.Size32},
		{obj: 0, addr: 4, size: copro.Size32},
	})
	r.mapPage(0, 0, 0)
	r.mapPage(1, 0, 1)
	r.runUntil(t, func() bool { return len(r.drv.results) == 3 })
	e0, e1 := r.imu.Entry(0), r.imu.Entry(1)
	if !e0.Ref || !e1.Ref {
		t.Fatal("Ref bits not set by hits")
	}
	if !(e0.LastUse > e1.LastUse) {
		t.Fatalf("LastUse not monotone: e0=%d e1=%d (obj0 touched last)", e0.LastUse, e1.LastUse)
	}
}

func TestRegisterWindow(t *testing.T) {
	dp, _ := mem.NewDPRAM(16*1024, 2*1024)
	u, err := New(Config{PageShift: 11, Entries: 8}, dp)
	if err != nil {
		t.Fatal(err)
	}
	// Select entry 3 and program it through the window.
	if err := u.RegWrite(RegTLBIdx, 3); err != nil {
		t.Fatal(err)
	}
	e := TLBEntry{Valid: true, Obj: 7, VPage: 5, Frame: 6, Dirty: true, Ref: true}
	if err := u.RegWrite(RegTLBLo, packLo(e)); err != nil {
		t.Fatal(err)
	}
	if err := u.RegWrite(RegTLBHi, packHi(e)); err != nil {
		t.Fatal(err)
	}
	got := u.Entry(3)
	if got.Obj != 7 || got.VPage != 5 || got.Frame != 6 || !got.Valid || !got.Dirty || !got.Ref {
		t.Fatalf("entry = %+v", got)
	}
	lo, _ := u.RegRead(RegTLBLo)
	hi, _ := u.RegRead(RegTLBHi)
	if lo != packLo(e) || hi != packHi(e) {
		t.Fatal("register readback mismatch")
	}
	if n, _ := u.RegRead(RegTLBCount); n != 8 {
		t.Fatalf("TLBCount = %d, want 8", n)
	}
	if err := u.RegWrite(RegTLBIdx, 99); err == nil {
		t.Fatal("accepted out-of-range TLB index")
	}
	if _, err := u.RegRead(0x7c); err == nil {
		t.Fatal("accepted unmapped register read")
	}
	// CR dispatch.
	if err := u.RegWrite(RegCR, CRStart); err != nil {
		t.Fatal(err)
	}
	if u.ch[0].ctl&ctlStart == 0 {
		t.Fatal("CRStart did not request start")
	}
}

func TestNewValidation(t *testing.T) {
	dp, _ := mem.NewDPRAM(16*1024, 2*1024)
	if _, err := New(Config{PageShift: 11, Entries: 4}, dp); err == nil {
		t.Fatal("accepted entry/frame mismatch")
	}
	if _, err := New(Config{PageShift: 12, Entries: 8}, dp); err == nil {
		t.Fatal("accepted page-size mismatch")
	}
	if _, err := New(Config{PageShift: 11, Entries: 8}, nil); err == nil {
		t.Fatal("accepted nil DP RAM")
	}
}

func TestBackToBackAccessThroughput(t *testing.T) {
	// Eight sequential word reads; in multi-cycle mode each handshake
	// takes 7 driver cycles (issue + 4 translation + consume + drain).
	var script []tbOp
	for i := 0; i < 8; i++ {
		script = append(script, tbOp{obj: 0, addr: uint32(i * 4), size: copro.Size32})
	}
	r := newRig(t, MultiCycle, script)
	r.mapPage(0, 0, 0)
	r.runUntil(t, func() bool { return len(r.drv.results) == 8 })
	multi := r.drv.results[7].doneCycle

	r2 := newRig(t, Pipelined, script)
	r2.mapPage(0, 0, 0)
	r2.runUntil(t, func() bool { return len(r2.drv.results) == 8 })
	pipe := r2.drv.results[7].doneCycle
	if pipe >= multi {
		t.Fatalf("pipelined (%d cycles) not faster than multi-cycle (%d)", pipe, multi)
	}
}

// TestQuickTranslationMatchesModel drives random TLB programs and random
// accesses through the hardware FSM and checks every outcome (hit/fault,
// returned data, written bytes) against a direct software model of a fully
// associative translation table.
func TestQuickTranslationMatchesModel(t *testing.T) {
	f := func(seedRaw int64) bool {
		seed := seedRaw
		rng := rand.New(rand.NewSource(seed))

		// Random table: map a handful of (obj, vpage) pairs to distinct
		// frames; fill the DP RAM with a seeded pattern.
		type key struct {
			obj   uint8
			vpage uint32
		}
		mapping := map[key]uint8{}
		var script []tbOp
		nMap := 1 + rng.Intn(7)
		framesUsed := rng.Perm(8)
		for i := 0; i < nMap; i++ {
			k := key{obj: uint8(rng.Intn(4)), vpage: uint32(rng.Intn(3))}
			if _, dup := mapping[k]; dup {
				continue
			}
			mapping[k] = uint8(framesUsed[i])
		}
		// Random accesses over mapped pages only (faults stall forever
		// in an OS-less rig, so the script stays within the mapping).
		keys := make([]key, 0, len(mapping))
		for k := range mapping {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			return keys[i].obj < keys[j].obj ||
				(keys[i].obj == keys[j].obj && keys[i].vpage < keys[j].vpage)
		})
		sizes := []uint8{1, 2, 4}
		for i := 0; i < 24; i++ {
			k := keys[rng.Intn(len(keys))]
			sz := sizes[rng.Intn(3)]
			off := uint32(rng.Intn(2048/int(sz))) * uint32(sz)
			script = append(script, tbOp{
				wr:   rng.Intn(2) == 0,
				obj:  k.obj,
				addr: k.vpage*2048 + off,
				size: sz,
				val:  rng.Uint32(),
			})
		}

		r := newRig(t, MultiCycle, script)
		model := make([]byte, 16*1024)
		rng2 := rand.New(rand.NewSource(seed + 1))
		rng2.Read(model)
		if err := r.dp.Store().WriteBytes(0, model); err != nil {
			return false
		}
		for k, f := range mapping {
			r.mapPage(k.obj, k.vpage, f)
		}
		r.runUntil(t, func() bool { return len(r.drv.results) == len(script) })

		// Replay on the model.
		for i, op := range script {
			k := key{op.obj, op.addr / 2048}
			base := uint32(mapping[k])*2048 + op.addr%2048
			if op.wr {
				for b := uint8(0); b < op.size; b++ {
					model[base+uint32(b)] = byte(op.val >> (8 * b))
				}
			} else {
				var want uint32
				for b := uint8(0); b < op.size; b++ {
					want |= uint32(model[base+uint32(b)]) << (8 * b)
				}
				if r.drv.results[i].data != want {
					t.Logf("seed %d op %d: read %#x want %#x", seed, i, r.drv.results[i].data, want)
					return false
				}
			}
		}
		got, err := r.dp.Store().ReadBytes(0, len(model))
		if err != nil {
			return false
		}
		for i := range model {
			if got[i] != model[i] {
				t.Logf("seed %d: DP byte %#x differs", seed, i)
				return false
			}
		}
		return r.imu.Count.Faults == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
