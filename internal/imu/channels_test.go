package imu

import (
	"testing"

	"repro/internal/copro"
	"repro/internal/mem"
	"repro/internal/sim"
)

// multiRig bundles a two-channel IMU fixture: two scripted drivers on two
// ports of one IMU over one shared dual-port RAM.
type multiRig struct {
	eng   *sim.Engine
	dom   *sim.Domain
	dp    *mem.DPRAM
	imu   *IMU
	ports [2]*copro.Port
	drv   [2]*tbDriver
}

func newMultiRig(t *testing.T, scripts [2][]tbOp) *multiRig {
	t.Helper()
	dp, err := mem.NewDPRAM(16*1024, 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	u, err := New(Config{PageShift: 11, Entries: 8, Mode: MultiCycle}, dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.SetChannels(2); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	dom := eng.NewDomain("imu", 40_000_000)
	r := &multiRig{eng: eng, dom: dom, dp: dp, imu: u}
	for i := 0; i < 2; i++ {
		port := copro.NewPort()
		u.BindCh(i, port)
		drv := &tbDriver{mem: copro.NewMem(port), dom: dom, script: scripts[i]}
		dom.Attach(drv)
		r.ports[i] = port
		r.drv[i] = drv
	}
	dom.Attach(u)
	return r
}

// mapSess installs a session-tagged TLB entry at index == frame.
func (r *multiRig) mapSess(t *testing.T, sess, obj uint8, vpage uint32, frame uint8) {
	t.Helper()
	if err := r.imu.SetEntry(int(frame), TLBEntry{
		Valid: true, Sess: sess, Obj: obj, VPage: vpage, Frame: frame,
	}); err != nil {
		t.Fatal(err)
	}
}

func (r *multiRig) runUntil(t *testing.T, done func() bool) {
	t.Helper()
	if _, err := r.eng.RunUntil(done, 100000); err != nil {
		t.Fatalf("simulation did not converge: %v", err)
	}
}

// TestChannelsTranslateSameObjectIndependently drives the same virtual
// address (object 0, offset 0x10) from both channels: the session-tagged
// CAM must resolve each to its own frame, so the channels read different
// data from the shared memory.
func TestChannelsTranslateSameObjectIndependently(t *testing.T) {
	r := newMultiRig(t, [2][]tbOp{
		{{obj: 0, addr: 0x10, size: copro.Size32}},
		{{obj: 0, addr: 0x10, size: copro.Size32}},
	})
	r.mapSess(t, 0, 0, 0, 2)
	r.mapSess(t, 1, 0, 0, 5)
	if err := r.dp.WriteB(r.dp.PageBase(2)+0x10, 0x11111111, 0xf); err != nil {
		t.Fatal(err)
	}
	if err := r.dp.WriteB(r.dp.PageBase(5)+0x10, 0x22222222, 0xf); err != nil {
		t.Fatal(err)
	}
	r.runUntil(t, func() bool {
		return len(r.drv[0].results) == 1 && len(r.drv[1].results) == 1
	})
	if got := r.drv[0].results[0].data; got != 0x11111111 {
		t.Fatalf("channel 0 read %#x, want 0x11111111", got)
	}
	if got := r.drv[1].results[0].data; got != 0x22222222 {
		t.Fatalf("channel 1 read %#x, want 0x22222222", got)
	}
	if c0, c1 := r.imu.ChCounters(0), r.imu.ChCounters(1); c0.Hits != 1 || c1.Hits != 1 {
		t.Fatalf("per-channel hits = %d/%d, want 1/1", c0.Hits, c1.Hits)
	}
	if r.imu.Count.Hits != 2 || r.imu.Count.Accesses != 2 {
		t.Fatalf("global counters = %+v, want 2 hits / 2 accesses", r.imu.Count)
	}
	if r.imu.Count.Faults != 0 {
		t.Fatalf("unexpected faults: %d", r.imu.Count.Faults)
	}
}

// TestChannelFaultIsolation lets channel 1 fault while channel 0 keeps
// translating: the fault must land in channel 1's register bank only, the
// shared IRQ line must assert, and a channel-1 restart after the OS fixes
// the table must complete the stalled access without disturbing channel 0.
func TestChannelFaultIsolation(t *testing.T) {
	var script0 []tbOp
	for i := 0; i < 4; i++ {
		script0 = append(script0, tbOp{obj: 0, addr: uint32(4 * i), size: copro.Size32})
	}
	r := newMultiRig(t, [2][]tbOp{
		script0,
		{{obj: 3, addr: 0x24, size: copro.Size32}}, // unmapped: faults
	})
	r.mapSess(t, 0, 0, 0, 1)
	r.runUntil(t, func() bool { return r.imu.FaultPendingCh(1) })

	if r.imu.FaultPendingCh(0) {
		t.Fatal("fault leaked into channel 0's bank")
	}
	if !r.imu.IRQ() {
		t.Fatal("shared IRQ line not asserted")
	}
	if obj := uint8(r.imu.ARCh(1) >> 24); obj != 3 {
		t.Fatalf("AR bank 1 decodes object %d, want 3", obj)
	}
	if addr := r.imu.ARCh(1) & 0xffffff; addr != 0x24 {
		t.Fatalf("AR bank 1 decodes address %#x, want 0x24", addr)
	}
	// The banked register window exposes the same values.
	sr, err := r.imu.RegRead(RegBank(1) + RegSR)
	if err != nil {
		t.Fatal(err)
	}
	if sr&SRFault == 0 {
		t.Fatal("banked SR read missed the fault bit")
	}
	// Channel 0 keeps completing accesses while channel 1 stalls.
	r.runUntil(t, func() bool { return len(r.drv[0].results) == 4 })
	if got := r.imu.ChCounters(1).Accesses; got != 0 {
		t.Fatalf("stalled channel completed %d accesses", got)
	}

	// OS service: map the page for session 1 and restart via the bank's CR.
	r.mapSess(t, 1, 3, 0, 6)
	if err := r.dp.WriteB(r.dp.PageBase(6)+0x24, 0xfeed, 0xf); err != nil {
		t.Fatal(err)
	}
	if err := r.imu.RegWrite(RegBank(1)+RegCR, CRRestart); err != nil {
		t.Fatal(err)
	}
	r.runUntil(t, func() bool { return len(r.drv[1].results) == 1 })
	if got := r.drv[1].results[0].data; got != 0xfeed {
		t.Fatalf("restarted access read %#x, want 0xfeed", got)
	}
	if f := r.imu.ChCounters(0).Faults; f != 0 {
		t.Fatalf("channel 0 counted %d faults", f)
	}
	if f := r.imu.ChCounters(1).Faults; f != 1 {
		t.Fatalf("channel 1 counted %d faults, want 1", f)
	}
}

// TestParamFreePerChannel asserts that a parameter-page invalidation pulse
// on one channel invalidates only that session's parameter entry and sets
// only that channel's status bit.
func TestParamFreePerChannel(t *testing.T) {
	r := newMultiRig(t, [2][]tbOp{nil, nil})
	r.drv[1].pinv = true
	r.mapSess(t, 0, copro.ParamObj, 0, 0)
	r.mapSess(t, 1, copro.ParamObj, 0, 4)
	r.runUntil(t, func() bool { return r.imu.ParamFreeCh(1) })
	if r.imu.ParamFreeCh(0) {
		t.Fatal("param-free leaked into channel 0")
	}
	if !r.imu.Entry(0).Valid {
		t.Fatal("session 0's parameter entry was invalidated")
	}
	if r.imu.Entry(4).Valid {
		t.Fatal("session 1's parameter entry survived the pulse")
	}
	if n := r.imu.ChCounters(1).ParamFrees; n != 1 {
		t.Fatalf("channel 1 ParamFrees = %d, want 1", n)
	}
}

// TestInvalidateSessionClearsOnlyOwnSlice pins the table-segmentation
// contract used by the VIM's per-session Finish.
func TestInvalidateSessionClearsOnlyOwnSlice(t *testing.T) {
	r := newMultiRig(t, [2][]tbOp{nil, nil})
	r.mapSess(t, 0, 0, 0, 1)
	r.mapSess(t, 0, 1, 0, 2)
	r.mapSess(t, 1, 0, 0, 5)
	r.imu.InvalidateSession(0)
	if r.imu.Entry(1).Valid || r.imu.Entry(2).Valid {
		t.Fatal("session 0 entries survived InvalidateSession(0)")
	}
	if !r.imu.Entry(5).Valid {
		t.Fatal("session 1 entry was clobbered by InvalidateSession(0)")
	}
}

// TestSetChannelsValidation pins the channel-count bounds and the register
// bank bounds check.
func TestSetChannelsValidation(t *testing.T) {
	dp, _ := mem.NewDPRAM(16*1024, 2*1024)
	u, err := New(Config{PageShift: 11, Entries: 8}, dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.SetChannels(0); err == nil {
		t.Fatal("accepted zero channels")
	}
	if err := u.SetChannels(MaxChannels + 1); err == nil {
		t.Fatal("accepted too many channels")
	}
	if u.Channels() != 1 {
		t.Fatalf("channel count = %d after rejected reconfigurations, want 1", u.Channels())
	}
	if _, err := u.RegRead(RegBank(3) + RegSR); err == nil {
		t.Fatal("read from an unconfigured bank succeeded")
	}
	if err := u.RegWrite(RegBank(3)+RegCR, CRStart); err == nil {
		t.Fatal("write to an unconfigured bank succeeded")
	}
}

// TestPackUnpackSessionTag round-trips the session tag through the TLBLo
// register encoding.
func TestPackUnpackSessionTag(t *testing.T) {
	e := TLBEntry{Valid: true, Sess: 5, Obj: 7, VPage: 3, Frame: 2}
	var got TLBEntry
	unpackLo(packLo(e), &got)
	if got.Sess != 5 || got.Obj != 7 || got.VPage != 3 || !got.Valid {
		t.Fatalf("round-trip lost fields: %+v", got)
	}
}
