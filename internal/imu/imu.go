// Package imu implements the Interface Management Unit of §3.2 — the
// hardware component that translates the virtual addresses emitted by a
// standardised coprocessor (object identifier + offset) into physical
// dual-port-RAM addresses, using a fully associative TLB, and that requests
// operating-system service through an interrupt whenever translation fails
// or the coprocessor completes.
//
// The model is register-transfer-level: a translation FSM advances one state
// per IMU clock edge under the two-phase discipline of package sim, so the
// multi-cycle timing of the paper's Figure 7 (data ready on the fourth
// rising edge after the access is generated) is a measured property of the
// model, not an assumption. A pipelined mode models the paper's announced
// follow-up ("a pipelined implementation of the IMU ... expected to mask
// almost completely the translation overhead") by sustaining one translated
// access per IMU cycle.
//
// # Channels and sessions
//
// Beyond the paper, the IMU multiplexes several coprocessors — FOS/SYNERGY
// style shells load more than one accelerator behind one memory interface.
// Each loaded coprocessor occupies a channel: an independent copy of the
// translation FSM, the CP_* port, and the SR/AR/CR register bank, stacked
// at RegWindow-sized offsets in the register window. The translation table
// itself stays shared and session-tagged: every entry carries the session
// identifier of its owner, the CAM matches on (session, object, page), and
// a fault is delivered in the faulting channel's own register bank, so the
// operating system always knows which session to service. A single-channel
// IMU is bit-identical to the paper's original unit.
package imu

import (
	"fmt"

	"repro/internal/copro"
	"repro/internal/mem"
)

// Mode selects the translation micro-architecture.
type Mode int

const (
	// MultiCycle is the paper's implementation: four IMU cycles per
	// translated access (CAM match, translation-RAM read, address
	// formation, memory access).
	MultiCycle Mode = iota
	// Pipelined models the follow-up implementation: the four stages are
	// pipelined and sustain one access per cycle.
	Pipelined
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Pipelined {
		return "pipelined"
	}
	return "multicycle"
}

// Config parameterises the IMU for a platform.
type Config struct {
	PageShift uint // log2(page size); 11 for the 2 KB pages of the EPXA1
	Entries   int  // TLB entries; equals the number of DP RAM page frames
	Mode      Mode
}

// TLBEntry is one row of the translation table. The OS reads and writes
// entries through the register window; the hardware sets Dirty and Ref and
// stamps LastUse on hits. Sess tags the owning session so several
// coprocessor channels can share the table without object-identifier
// collisions (every session numbers its objects from zero).
type TLBEntry struct {
	Valid   bool
	Sess    uint8  // owning session / channel index
	Obj     uint8  // object identifier
	VPage   uint32 // virtual page number within the object
	Frame   uint8  // DP RAM page frame
	Dirty   bool   // set by write hits
	Ref     bool   // set by any hit; cleared by the OS (clock policy)
	LastUse uint64 // access stamp of the latest hit (LRU policy)
}

// Status register bits.
const (
	SRFault     = 1 << 0 // translation fault pending
	SRDone      = 1 << 1 // coprocessor signalled completion
	SRRunning   = 1 << 2 // CP_START asserted
	SRParamFree = 1 << 3 // parameter page was invalidated by the coprocessor
)

// ctlMask packs the pending OS control requests.
type ctlMask uint8

const (
	ctlStart ctlMask = 1 << iota
	ctlStop
	ctlRestart
	ctlAckDone
)

type fsmState uint8

const (
	stIdle   fsmState = iota
	stCAM             // CAM match
	stXlate           // translation RAM read / physical address formation
	stAccess          // dual-port RAM access
	stDrop            // wait for CP_ACCESS to fall
	stFault           // stalled awaiting OS restart
)

// pending is the state scheduled during Eval and committed in Update.
type pending struct {
	state    fsmState
	req      request
	out      copro.IMUOut
	sr       uint32
	ar       uint32
	irq      bool
	entryUpd int // TLB index to update on commit, -1 if none
	entry    TLBEntry
	doWrite  bool // DP write side effect on commit
	wAddr    uint32
	wData    uint32
	wBE      uint8
}

// request is the latched coprocessor access.
type request struct {
	obj  uint8
	addr uint32
	size uint8
	wr   bool
	dout uint32
}

// Counters aggregates IMU activity for reports. The IMU keeps one global
// set (all channels) and one per channel.
type Counters struct {
	Accesses    uint64 // translated accesses completed
	Hits        uint64 // CAM hits
	Faults      uint64 // translation faults raised
	ParamFrees  uint64 // parameter-page invalidations
	FaultCycles uint64 // cycles spent stalled in the fault state
}

// channel is the per-coprocessor slice of the IMU: one CP_* port, one
// translation FSM, and one SR/AR/CR register bank. The translation table,
// the LastUse stamp counter and the DP RAM are shared across channels.
// The fields read by Eval's per-edge idle check (port, state, ctl) lead
// the struct so the fast path touches a single cache line.
type channel struct {
	port *copro.Port

	// FSM state (two-phase: cur committed, next scheduled in Eval).
	state fsmState

	// OS-requested asynchronous controls (the engine is paused when the
	// OS runs, so these are plain flags), packed into one mask so the
	// per-edge idle check is a single compare.
	ctl ctlMask

	// noop marks an Eval that scheduled no state change, letting Update
	// skip the commit entirely. A channel is idle on the large majority of
	// edges (its coprocessor computes internally between accesses), so
	// this fast path keeps the per-edge cost to a few loads and branches.
	noop bool

	sess uint8 // session tag written into TLB entries and CAM-matched

	// Architectural state (OS-visible through this channel's bank).
	sr  uint32
	ar  uint32
	irq bool

	out copro.IMUOut
	req request

	next pending

	Count Counters
}

// IMU is the interface management unit.
type IMU struct {
	cfg Config
	dp  *mem.DPRAM

	// Shared architectural state. ch aliases the leading channels of
	// chbuf: backing the slice with a struct-resident array keeps the
	// per-edge channel loads one indirection away from the IMU pointer,
	// exactly like the pre-sessions field layout.
	tlb   []TLBEntry
	ch    []channel
	chbuf [MaxChannels]channel
	// anyWork marks an Eval in which at least one channel scheduled a
	// state change, so Update's idle fast path is a single branch.
	anyWork bool
	irq     bool // CPU interrupt line: OR of the channel IRQs

	stamp  uint64 // access counter for LastUse, shared across channels
	Count  Counters
	tlbIdx int // register-window entry selector (shared indirect port)

	// Trace hooks (nil when not recording; channel 0 only).
	trace *TraceHooks
}

// TraceHooks lets a testbench record the port-level waveform (Figure 7).
// Tracing observes channel 0.
type TraceHooks struct {
	// OnEdge is called at every Eval with the current cycle index and the
	// committed port values.
	OnEdge func(cycle uint64, cp copro.CPOut, imuOut copro.IMUOut)
	cycle  uint64
}

// New builds an IMU over the given dual-port RAM with one channel.
func New(cfg Config, dp *mem.DPRAM) (*IMU, error) {
	if cfg.Entries <= 0 || cfg.Entries > 256 {
		return nil, fmt.Errorf("imu: %d TLB entries out of range", cfg.Entries)
	}
	if cfg.PageShift < 4 || cfg.PageShift > 20 {
		return nil, fmt.Errorf("imu: page shift %d out of range", cfg.PageShift)
	}
	if dp == nil {
		return nil, fmt.Errorf("imu: nil DP RAM")
	}
	if dp.PageSize() != 1<<cfg.PageShift {
		return nil, fmt.Errorf("imu: page shift %d does not match DP RAM page size %d",
			cfg.PageShift, dp.PageSize())
	}
	if dp.Pages() != cfg.Entries {
		return nil, fmt.Errorf("imu: %d TLB entries but %d DP RAM frames", cfg.Entries, dp.Pages())
	}
	u := &IMU{
		cfg: cfg,
		dp:  dp,
		tlb: make([]TLBEntry, cfg.Entries),
	}
	if err := u.SetChannels(1); err != nil {
		return nil, err
	}
	return u, nil
}

// SetChannels reconfigures the IMU to n coprocessor channels, resetting all
// channel state (FSMs, register banks, counters, port bindings). Call it
// before binding ports and starting simulation; the shared TLB is also
// invalidated.
func (u *IMU) SetChannels(n int) error {
	if n <= 0 || n > MaxChannels {
		return fmt.Errorf("imu: %d channels out of range [1,%d]", n, MaxChannels)
	}
	u.chbuf = [MaxChannels]channel{}
	u.ch = u.chbuf[:n]
	for i := range u.ch {
		u.ch[i].sess = uint8(i)
		// A fresh quiescent port per channel: a channel left unbound is
		// simply idle forever instead of dereferencing a nil port at the
		// first edge. Real bindings replace these.
		u.BindCh(i, copro.NewPort())
	}
	u.anyWork = false
	u.irq = false
	u.InvalidateAll()
	return nil
}

// Channels returns the configured channel count.
func (u *IMU) Channels() int { return len(u.ch) }

// Bind attaches the coprocessor port to channel 0.
func (u *IMU) Bind(p *copro.Port) { u.BindCh(0, p) }

// BindCh attaches the coprocessor port of channel i.
func (u *IMU) BindCh(i int, p *copro.Port) {
	c := &u.ch[i]
	c.port = p
	// Pick up the (possibly fresh) port's committed outputs so trace hooks
	// observe consistent values from the first edge.
	c.out = p.IMU()
}

// SetTrace installs waveform hooks.
func (u *IMU) SetTrace(t *TraceHooks) { u.trace = t }

// Config returns the configuration.
func (u *IMU) Config() Config { return u.cfg }

// IdleUntilInput implements sim.Idler: it mirrors Eval's no-op fast path,
// so the engine may bulk-skip IMU edges while every bound coprocessor
// computes internally. The predicate depends only on the channels' own FSM
// states, the OS control masks (written while the engine is paused) and the
// committed coprocessor outputs (written at coprocessor-domain edges),
// which is exactly the contract sim.Idler requires. The idleness is
// open-ended — only a coprocessor commit or an OS poke ends it — so the IMU
// does not need the bounded sim.BulkIdler extension the coprocessor cores
// use for their compute countdowns; under the event-driven scheduler the
// two compose, letting whole boards jump to the coprocessor's wake edge.
// With a waveform trace installed every edge must be recorded, so skipping
// is declined.
func (u *IMU) IdleUntilInput() bool {
	if u.trace != nil {
		return false
	}
	for i := range u.ch {
		c := &u.ch[i]
		cp := c.port.CPRef()
		if c.state != stIdle || c.ctl != 0 || cp.Access || cp.Fin || cp.ParamInv {
			return false
		}
	}
	return true
}

// camMatch looks up (sess, obj, vpage); returns the entry index or -1.
func (u *IMU) camMatch(sess, obj uint8, vpage uint32) int {
	for i := range u.tlb {
		e := &u.tlb[i]
		if e.Valid && e.Sess == sess && e.Obj == obj && e.VPage == vpage {
			return i
		}
	}
	return -1
}

// Eval implements sim.Ticker: every channel's FSM advances one state. The
// per-channel idle fast path stays inline here — the IMU is idle on the
// large majority of edges, so the no-op check must cost only a few loads
// and branches, with the full FSM step (evalCh) paid only by channels
// that have work.
func (u *IMU) Eval() {
	if u.trace != nil && u.trace.OnEdge != nil {
		c := &u.ch[0]
		u.trace.OnEdge(u.trace.cycle, *c.port.CPRef(), c.out)
		u.trace.cycle++
	}
	anyWork := false
	for i := range u.ch {
		c := &u.ch[i]
		cp := c.port.CPRef()
		// Idle fast path: no access in flight, no port event, no OS
		// request — nothing can change this edge, so schedule nothing and
		// let Update skip the channel. Any state other than stIdle
		// (including stFault, which counts stall cycles) takes the full
		// path.
		if c.state == stIdle && c.ctl == 0 && !cp.Access && !cp.Fin && !cp.ParamInv {
			c.noop = true
			continue
		}
		c.noop = false
		anyWork = true
		u.evalCh(c, cp)
	}
	u.anyWork = anyWork
}

// evalCh advances one non-idle channel's FSM.
func (u *IMU) evalCh(c *channel, cp *copro.CPOut) {
	n := &c.next
	n.state = c.state
	n.req = c.req
	n.out = c.out
	n.sr = c.sr
	n.ar = c.ar
	n.irq = c.irq
	n.entryUpd = -1
	n.doWrite = false

	// OS control requests (engine was paused; apply at the next edge).
	if c.ctl != 0 {
		if c.ctl&ctlStart != 0 {
			n.out.Start = true
			n.sr |= SRRunning
		}
		if c.ctl&ctlAckDone != 0 {
			n.out.Start = false
			n.sr &^= SRDone | SRRunning
			n.irq = false
		}
		if c.ctl&ctlStop != 0 {
			n.out.Start = false
			n.sr &^= SRRunning
		}
		c.ctl &= ctlRestart // restart is consumed by the fault state below
	}

	// Completion has priority over memory traffic: a well-formed
	// coprocessor never raises CP_FIN with a request in flight.
	if cp.Fin && n.sr&SRDone == 0 && n.sr&SRRunning != 0 {
		n.sr |= SRDone
		n.irq = true
	}

	// Parameter-page invalidation pulse.
	if cp.ParamInv {
		if i := u.camMatch(c.sess, copro.ParamObj, 0); i >= 0 {
			e := u.tlb[i]
			e.Valid = false
			e.Dirty = false
			n.entryUpd = i
			n.entry = e
			n.sr |= SRParamFree
			u.Count.ParamFrees++
			c.Count.ParamFrees++
		}
	}

	switch c.state {
	case stIdle:
		if cp.Access {
			n.req = request{obj: cp.Obj, addr: cp.Addr, size: cp.Size, wr: cp.Wr, dout: cp.DOut}
			if u.cfg.Mode == Pipelined {
				u.translate(c, n)
			} else {
				n.state = stCAM
			}
		}
	case stCAM:
		if i := u.camMatch(c.sess, c.req.obj, c.req.addr>>u.cfg.PageShift); i >= 0 {
			n.state = stXlate
		} else {
			u.raiseFault(c, n)
		}
	case stXlate:
		n.state = stAccess
	case stAccess:
		u.translate(c, n)
	case stDrop:
		if !cp.Access {
			n.out.TLBHit = false
			n.state = stIdle
		}
	case stFault:
		u.Count.FaultCycles++
		c.Count.FaultCycles++
		if c.ctl&ctlRestart != 0 {
			c.ctl &^= ctlRestart
			n.sr &^= SRFault
			n.irq = false
			// Retry the latched request from the CAM stage.
			if u.cfg.Mode == Pipelined {
				u.translate(c, n)
			} else {
				n.state = stCAM
			}
		}
	}
}

// translate performs CAM match + memory access in one step (the final stage
// of the multi-cycle FSM, or the whole pipelined access).
func (u *IMU) translate(c *channel, n *pending) {
	r := n.req
	vpage := r.addr >> u.cfg.PageShift
	i := u.camMatch(c.sess, r.obj, vpage)
	if i < 0 {
		u.raiseFault(c, n)
		return
	}
	e := u.tlb[i]
	u.stamp++
	e.Ref = true
	e.LastUse = u.stamp
	offset := r.addr & (1<<u.cfg.PageShift - 1)
	phys := u.dp.PageBase(int(e.Frame)) + offset
	wordAddr := phys &^ 3
	lane := phys & 3

	if r.wr {
		e.Dirty = true
		var be uint8
		switch r.size {
		case copro.Size8:
			be = 1 << lane
		case copro.Size16:
			be = 3 << lane
		default:
			be = 0xf
		}
		n.doWrite = true
		n.wAddr = wordAddr
		n.wData = r.dout << (8 * lane)
		n.wBE = be
	} else {
		word, err := u.dp.ReadA(wordAddr)
		if err != nil {
			// A translated address can only be out of range if the
			// TLB was misprogrammed; treat as a fault for the OS.
			u.raiseFault(c, n)
			return
		}
		v := word >> (8 * lane)
		switch r.size {
		case copro.Size8:
			v &= 0xff
		case copro.Size16:
			v &= 0xffff
		}
		n.out.DIn = v
	}
	n.entryUpd = i
	n.entry = e
	n.out.TLBHit = true
	n.state = stDrop
	u.Count.Accesses++
	u.Count.Hits++
	c.Count.Accesses++
	c.Count.Hits++
}

// raiseFault latches the fault cause in the channel's bank and interrupts
// the OS.
func (u *IMU) raiseFault(c *channel, n *pending) {
	n.state = stFault
	n.sr |= SRFault
	n.ar = uint32(n.req.obj)<<24 | n.req.addr&0x00ffffff
	n.irq = true
	u.Count.Faults++
	c.Count.Faults++
}

// Update implements sim.Ticker.
func (u *IMU) Update() {
	if !u.anyWork {
		// Every channel took Eval's no-op fast path: the committed port
		// outputs are unchanged, so skipping the commit loop leaves all
		// coprocessor-visible values intact.
		return
	}
	for i := range u.ch {
		c := &u.ch[i]
		if c.noop {
			continue
		}
		n := &c.next
		if n.doWrite {
			// The translated store hits the DP RAM exactly once, at commit.
			if err := u.dp.WriteA(n.wAddr, n.wData, n.wBE); err != nil {
				// Unreachable when the TLB is consistent; keep the model
				// honest by dropping the hit and faulting instead.
				n.state = stFault
				n.sr |= SRFault
				n.irq = true
				n.out.TLBHit = false
			}
		}
		if n.entryUpd >= 0 {
			u.tlb[n.entryUpd] = n.entry
		}
		c.state = n.state
		c.req = n.req
		c.sr = n.sr
		c.ar = n.ar
		c.irq = n.irq
		c.out = n.out
		// Skip the schedule/commit pair when the port already holds the new
		// bundle. Comparing against the port's committed value (rather than a
		// local mirror) keeps the guard exact even if the port is Reset or
		// rebound between runs.
		if n.out != *c.port.IMURef() {
			c.port.SetIMU(n.out)
			c.port.CommitIMU()
		}
	}
	irq := false
	for i := range u.ch {
		if u.ch[i].irq {
			irq = true
			break
		}
	}
	u.irq = irq
}
