package scriptcp

import (
	"fmt"
	"math/rand"
)

// ObjSpec describes one object available to a generated script.
type ObjSpec struct {
	ID       uint8
	Size     uint32
	Readable bool // In or InOut objects
	Writable bool // Out or InOut objects
	// ReadbackSafe marks objects whose written data may be read back
	// later (InOut: pages reload from user memory after eviction). For
	// load-elided Out objects a re-read after eviction is undefined, so
	// the generator never reads them.
	ReadbackSafe bool
}

// Generate builds a random but semantically valid script of n operations
// over the given objects, ending with a checksum write at the start of the
// first writable object. Every address is naturally aligned.
func Generate(rng *rand.Rand, objs []ObjSpec, n int) (Script, error) {
	var readable, writable []ObjSpec
	for _, o := range objs {
		if o.Readable {
			readable = append(readable, o)
		}
		if o.Writable {
			writable = append(writable, o)
		}
	}
	if len(writable) == 0 {
		return nil, fmt.Errorf("scriptcp: need at least one writable object")
	}
	var s Script
	sizes := []uint8{1, 2, 4}
	for i := 0; i < n; i++ {
		sz := sizes[rng.Intn(len(sizes))]
		doRead := len(readable) > 0 && rng.Intn(2) == 0
		if doRead {
			o := readable[rng.Intn(len(readable))]
			if o.Size < uint32(sz) {
				continue
			}
			addr := alignedAddr(rng, o.Size, sz)
			s = append(s, Op{Kind: OpRead, Obj: o.ID, Size: sz, Addr: addr})
		} else {
			o := writable[rng.Intn(len(writable))]
			if o.Size < uint32(sz) {
				continue
			}
			addr := alignedAddr(rng, o.Size, sz)
			s = append(s, Op{Kind: OpWrite, Obj: o.ID, Size: sz, Addr: addr, Val: rng.Uint32()})
		}
	}
	// Leave offset 0 of the checksum target untouched by random writes?
	// Not necessary: the checksum write is last and simply overwrites.
	s = append(s, Op{Kind: OpWriteChecksum, Obj: writable[0].ID, Addr: 0})
	return s, nil
}

func alignedAddr(rng *rand.Rand, objSize uint32, sz uint8) uint32 {
	slots := objSize / uint32(sz)
	return uint32(rng.Intn(int(slots))) * uint32(sz)
}

// Apply replays the script on host-side buffers (keyed by object ID) and
// returns the final checksum the coprocessor must produce, plus a per-object
// written-byte mask. Buffers must be pre-filled with the objects' initial
// user-space contents; after Apply they hold the expected final contents.
//
// The mask matters for load-elided (Out) objects: the virtualisation layer
// never loads their pages, so bytes the coprocessor did not write are
// undefined after the dirty-page flush — the same contract as any DMA
// output buffer. Verification must restrict Out-object comparisons to
// masked (written) bytes; In/InOut objects compare in full.
func Apply(s Script, bufs map[uint8][]byte) (uint32, map[uint8][]bool, error) {
	sum := uint32(0)
	masks := map[uint8][]bool{}
	for id, b := range bufs {
		masks[id] = make([]bool, len(b))
	}
	mark := func(id uint8, addr uint32, size uint8) {
		m := masks[id]
		for i := uint8(0); i < size; i++ {
			m[addr+uint32(i)] = true
		}
	}
	for i, op := range s {
		buf, ok := bufs[op.Obj]
		if !ok {
			return 0, nil, fmt.Errorf("scriptcp: op %d touches unknown object %d", i, op.Obj)
		}
		switch op.Kind {
		case OpRead:
			v, err := load(buf, op.Addr, op.Size)
			if err != nil {
				return 0, nil, fmt.Errorf("op %d: %w", i, err)
			}
			sum = fold(sum, v, i)
		case OpWrite:
			if err := store(buf, op.Addr, op.Size, op.Val); err != nil {
				return 0, nil, fmt.Errorf("op %d: %w", i, err)
			}
			mark(op.Obj, op.Addr, op.Size)
		case OpWriteChecksum:
			if err := store(buf, op.Addr, 4, sum); err != nil {
				return 0, nil, fmt.Errorf("op %d: %w", i, err)
			}
			mark(op.Obj, op.Addr, 4)
		}
	}
	return sum, masks, nil
}

func load(buf []byte, addr uint32, size uint8) (uint32, error) {
	if int(addr)+int(size) > len(buf) {
		return 0, fmt.Errorf("scriptcp: read %d@%#x beyond %d", size, addr, len(buf))
	}
	var v uint32
	for i := uint8(0); i < size; i++ {
		v |= uint32(buf[addr+uint32(i)]) << (8 * i)
	}
	return v, nil
}

func store(buf []byte, addr uint32, size uint8, v uint32) error {
	if int(addr)+int(size) > len(buf) {
		return fmt.Errorf("scriptcp: write %d@%#x beyond %d", size, addr, len(buf))
	}
	for i := uint8(0); i < size; i++ {
		buf[addr+uint32(i)] = byte(v >> (8 * i))
	}
	return nil
}
