// Package scriptcp provides a programmable coprocessor whose access
// sequence is carried in its configuration bit-stream: each image encodes a
// script of reads and writes over virtual objects. It exists to stress the
// virtualisation layer with access patterns the paper's streaming
// applications never produce — random object interleavings, re-reads of
// written data, dirty evictions followed by reloads — and to make the
// whole-system property tests possible: a host-side model replays the same
// script and the two must agree bit for bit.
//
// The core follows the full §3.2 protocol (parameter read, parameter-page
// invalidation, CP_FIN) so it exercises exactly the same paths as the
// production coprocessors.
package scriptcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bitstream"
	"repro/internal/copro"
	"repro/internal/sim"
)

// CoreName is the identity carried in bitstream images.
const CoreName = "scriptcp"

// OpKind enumerates script operations.
type OpKind uint8

const (
	// OpRead reads (obj, addr, size) and folds the value into the
	// running checksum.
	OpRead OpKind = iota
	// OpWrite writes Val at (obj, addr, size).
	OpWrite
	// OpWriteChecksum writes the running checksum at (obj, addr), 32-bit.
	// It lets the host verify that every read returned exactly the
	// modelled data.
	OpWriteChecksum
)

// Op is one scripted access. Addr must be naturally aligned to Size.
type Op struct {
	Kind OpKind
	Obj  uint8
	Size uint8 // 1, 2 or 4 (ignored for OpWriteChecksum: always 4)
	Addr uint32
	Val  uint32
}

// Script is a coprocessor program.
type Script []Op

const opBytes = 12

// Encode serialises the script as a bit-stream payload.
func Encode(s Script) []byte {
	out := make([]byte, 4+opBytes*len(s))
	binary.LittleEndian.PutUint32(out, uint32(len(s)))
	for i, op := range s {
		b := out[4+i*opBytes:]
		b[0] = byte(op.Kind)
		b[1] = op.Obj
		b[2] = op.Size
		b[3] = 0
		binary.LittleEndian.PutUint32(b[4:], op.Addr)
		binary.LittleEndian.PutUint32(b[8:], op.Val)
	}
	return out
}

// Decode parses a payload produced by Encode.
func Decode(p []byte) (Script, error) {
	if len(p) < 4 {
		return nil, errors.New("scriptcp: truncated payload")
	}
	n := int(binary.LittleEndian.Uint32(p))
	if len(p) < 4+n*opBytes {
		return nil, fmt.Errorf("scriptcp: payload holds %d bytes, need %d", len(p), 4+n*opBytes)
	}
	s := make(Script, n)
	for i := range s {
		b := p[4+i*opBytes:]
		s[i] = Op{
			Kind: OpKind(b[0]),
			Obj:  b[1],
			Size: b[2],
			Addr: binary.LittleEndian.Uint32(b[4:]),
			Val:  binary.LittleEndian.Uint32(b[8:]),
		}
		switch s[i].Kind {
		case OpRead, OpWrite, OpWriteChecksum:
		default:
			return nil, fmt.Errorf("scriptcp: op %d has unknown kind %d", i, s[i].Kind)
		}
	}
	return s, nil
}

// Bitstream builds a configuration image carrying the script.
func Bitstream(device string, s Script) ([]byte, error) {
	return bitstream.Build(bitstream.Header{
		Device:    device,
		Core:      CoreName,
		CoreClock: 40_000_000,
		IMUClock:  40_000_000,
		LEs:       900 + uint32(len(s)),
		Payload:   Encode(s),
	})
}

// fold mixes a read value into the checksum, position-dependently.
func fold(sum, v uint32, idx int) uint32 {
	return bits.RotateLeft32(sum^v+0x9e3779b9, 7) ^ uint32(idx)*0x85ebca6b
}

type state uint8

const (
	stWaitStart state = iota
	stParamIssue
	stParamWait
	stOpIssue
	stOpWait
	stDone
)

// Core is the scripted coprocessor model.
type Core struct {
	port   *copro.Port
	mem    *copro.Mem
	script Script

	st  state
	idx int
	sum uint32
}

// New returns a core that will run the given script.
func New(script Script) *Core { return &Core{script: script} }

// Name implements copro.Coprocessor.
func (c *Core) Name() string { return CoreName }

// Bind implements copro.Coprocessor.
func (c *Core) Bind(p *copro.Port) {
	c.port = p
	c.mem = copro.NewMem(p)
}

// ResetCore implements copro.Coprocessor.
func (c *Core) ResetCore() {
	c.st = stWaitStart
	c.idx = 0
	c.sum = 0
	if c.mem != nil {
		c.mem.ResetMem()
	}
}

// IdleEdges implements sim.BulkIdler. Scripted accesses have no compute
// phases between them, so only the open-ended windows qualify: waiting for
// CP_START and holding CP_FIN, both ended only by an IMU-domain commit.
func (c *Core) IdleEdges() int64 {
	switch c.st {
	case stWaitStart:
		if !c.port.IMURef().Start && c.mem.Quiet() {
			return sim.IdleForever
		}
	case stDone:
		if c.port.IMURef().Start && c.mem.Quiet() && c.port.CPRef().Fin {
			return sim.IdleForever
		}
	}
	return 0
}

// SkipEdges implements sim.BulkIdler: the idle windows carry no per-edge
// state, so skipped edges need no replay.
func (c *Core) SkipEdges(int64) {}

// Eval implements sim.Ticker.
func (c *Core) Eval() {
	in := c.port.IMU()
	c.mem.Step()
	pinv := false

	if !in.Start && c.st != stWaitStart {
		c.ResetCore()
	}

	switch c.st {
	case stWaitStart:
		if in.Start {
			c.st = stParamIssue
		}
	case stParamIssue:
		c.mem.Read(copro.ParamObj, 0, copro.Size32)
		c.st = stParamWait
	case stParamWait:
		if c.mem.Completed() {
			pinv = true
			c.idx = 0
			c.sum = 0
			if len(c.script) == 0 {
				c.st = stDone
			} else {
				c.st = stOpIssue
			}
		}
	case stOpIssue:
		if c.mem.Ready() {
			op := c.script[c.idx]
			switch op.Kind {
			case OpRead:
				c.mem.Read(op.Obj, op.Addr, op.Size)
			case OpWrite:
				c.mem.Write(op.Obj, op.Addr, op.Size, op.Val)
			case OpWriteChecksum:
				c.mem.Write(op.Obj, op.Addr, copro.Size32, c.sum)
			}
			c.st = stOpWait
		}
	case stOpWait:
		if c.mem.Completed() {
			op := c.script[c.idx]
			if op.Kind == OpRead {
				c.sum = fold(c.sum, c.mem.Data(), c.idx)
			}
			c.idx++
			if c.idx >= len(c.script) {
				c.st = stDone
			} else {
				c.st = stOpIssue
			}
		}
	case stDone:
	}

	c.mem.Drive(c.st == stDone, pinv)
}

// Update implements sim.Ticker.
func (c *Core) Update() { c.mem.Commit() }

func init() {
	bitstream.RegisterCore(CoreName, func(h bitstream.Header) (any, error) {
		s, err := Decode(h.Payload)
		if err != nil {
			return nil, err
		}
		return New(s), nil
	})
}
