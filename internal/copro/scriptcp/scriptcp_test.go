package scriptcp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func specs() []ObjSpec {
	return []ObjSpec{
		{ID: 0, Size: 1024, Readable: true, ReadbackSafe: true},
		{ID: 1, Size: 2048, Readable: true, Writable: true, ReadbackSafe: true},
		{ID: 2, Size: 512, Writable: true},
	}
}

func TestGenerateProducesValidOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := Generate(rng, specs(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) == 0 {
		t.Fatal("empty script")
	}
	if s[len(s)-1].Kind != OpWriteChecksum {
		t.Fatal("script must end with a checksum write")
	}
	sizes := map[uint8]uint32{0: 1024, 1: 2048, 2: 512}
	for i, op := range s {
		max, ok := sizes[op.Obj]
		if !ok {
			t.Fatalf("op %d touches unknown object", i)
		}
		sz := uint32(op.Size)
		if op.Kind == OpWriteChecksum {
			sz = 4
		}
		if op.Addr%sz != 0 {
			t.Fatalf("op %d unaligned: %+v", i, op)
		}
		if op.Addr+sz > max {
			t.Fatalf("op %d out of bounds: %+v", i, op)
		}
		if op.Kind == OpRead && op.Obj == 2 {
			t.Fatalf("op %d reads the write-only object", i)
		}
		if op.Kind == OpWrite && op.Obj == 0 {
			t.Fatalf("op %d writes the read-only object", i)
		}
	}
}

func TestGenerateNeedsWritableObject(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, err := Generate(rng, []ObjSpec{{ID: 0, Size: 64, Readable: true}}, 10)
	if err == nil {
		t.Fatal("accepted object set with no writable object")
	}
}

func TestApplyTracksWritesAndChecksum(t *testing.T) {
	bufs := map[uint8][]byte{
		0: {1, 2, 3, 4, 5, 6, 7, 8},
		1: make([]byte, 8),
	}
	s := Script{
		{Kind: OpRead, Obj: 0, Size: 4, Addr: 0},
		{Kind: OpWrite, Obj: 1, Size: 2, Addr: 2, Val: 0xaabb},
		{Kind: OpWriteChecksum, Obj: 1, Addr: 4},
	}
	sum, masks, err := Apply(s, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if bufs[1][2] != 0xbb || bufs[1][3] != 0xaa {
		t.Fatalf("write not applied: % x", bufs[1])
	}
	want := fold(0, 0x04030201, 0)
	if sum != want {
		t.Fatalf("sum = %#x, want %#x", sum, want)
	}
	// The mask covers exactly the written bytes of object 1.
	wantMask := []bool{false, false, true, true, true, true, true, true}
	for i, m := range wantMask {
		if masks[1][i] != m {
			t.Fatalf("mask[1][%d] = %v, want %v", i, masks[1][i], m)
		}
	}
	// Object 0 was only read.
	for i, m := range masks[0] {
		if m {
			t.Fatalf("mask[0][%d] set for a read-only access", i)
		}
	}
}

func TestApplyRejectsBadScript(t *testing.T) {
	bufs := map[uint8][]byte{0: make([]byte, 4)}
	if _, _, err := Apply(Script{{Kind: OpRead, Obj: 9, Size: 1}}, bufs); err == nil {
		t.Fatal("unknown object accepted")
	}
	if _, _, err := Apply(Script{{Kind: OpRead, Obj: 0, Size: 4, Addr: 2}}, bufs); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if _, _, err := Apply(Script{{Kind: OpWrite, Obj: 0, Size: 4, Addr: 4}}, bufs); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := Generate(rng, specs(), int(n%64)+1)
		if err != nil {
			return false
		}
		dec, err := Decode(Encode(s))
		if err != nil || len(dec) != len(s) {
			return false
		}
		for i := range s {
			if dec[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	s := Script{{Kind: OpRead, Obj: 0, Size: 4}}
	p := Encode(s)
	p[4] = 0x7f // corrupt the kind byte
	if _, err := Decode(p); err == nil {
		t.Fatal("unknown op kind accepted")
	}
}
