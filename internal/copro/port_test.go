package copro

import "testing"

func TestPortTwoPhaseIsolation(t *testing.T) {
	p := NewPort()
	p.SetCP(CPOut{Access: true, Obj: 3})
	if p.CP().Access {
		t.Fatal("SetCP visible before CommitCP")
	}
	p.CommitCP()
	if !p.CP().Access || p.CP().Obj != 3 {
		t.Fatal("CommitCP lost data")
	}
	p.SetIMU(IMUOut{TLBHit: true, DIn: 7})
	if p.IMU().TLBHit {
		t.Fatal("SetIMU visible before CommitIMU")
	}
	p.CommitIMU()
	if !p.IMU().TLBHit || p.IMU().DIn != 7 {
		t.Fatal("CommitIMU lost data")
	}
	p.Reset()
	if p.CP().Access || p.IMU().TLBHit {
		t.Fatal("Reset did not quiesce the port")
	}
}

func TestMemHandshakeProtocol(t *testing.T) {
	p := NewPort()
	m := NewMem(p)
	if !m.Ready() || m.Busy() {
		t.Fatal("fresh helper not idle")
	}

	// Issue a read; the request must be driven and held.
	m.Step()
	m.Read(4, 0x20, Size32)
	m.Drive(false, false)
	m.Commit()
	cp := p.CP()
	if !cp.Access || cp.Obj != 4 || cp.Addr != 0x20 || cp.Wr {
		t.Fatalf("driven request wrong: %+v", cp)
	}
	if m.Ready() {
		t.Fatal("helper idle with request in flight")
	}

	// A few cycles with no hit: request stays up, WaitCycles counts.
	for i := 0; i < 3; i++ {
		m.Step()
		m.Drive(false, false)
		m.Commit()
	}
	if !p.CP().Access {
		t.Fatal("request dropped early")
	}
	if m.WaitCycles == 0 {
		t.Fatal("wait cycles not counted")
	}

	// The IMU answers: data consumed this edge, request drops.
	p.SetIMU(IMUOut{TLBHit: true, DIn: 0xabcd})
	p.CommitIMU()
	m.Step()
	if !m.Completed() || m.Data() != 0xabcd {
		t.Fatal("response not consumed")
	}
	m.Drive(false, false)
	m.Commit()
	if p.CP().Access {
		t.Fatal("request still asserted after consume")
	}

	// Helper waits for the hit line to fall before going idle.
	m.Step()
	if m.Ready() {
		t.Fatal("helper idle while TLBHIT still high")
	}
	p.SetIMU(IMUOut{})
	p.CommitIMU()
	m.Step()
	if !m.Ready() {
		t.Fatal("helper not idle after drain")
	}
	if m.Reads != 1 {
		t.Fatalf("read counter = %d", m.Reads)
	}
}

func TestMemWriteCarriesData(t *testing.T) {
	p := NewPort()
	m := NewMem(p)
	m.Step()
	m.Write(2, 0x10, Size16, 0xbeef)
	m.Drive(true, true)
	m.Commit()
	cp := p.CP()
	if !cp.Wr || cp.DOut != 0xbeef || cp.Size != Size16 {
		t.Fatalf("write request wrong: %+v", cp)
	}
	if !cp.Fin || !cp.ParamInv {
		t.Fatal("Drive flags not carried")
	}
	if m.Writes != 1 {
		t.Fatalf("write counter = %d", m.Writes)
	}
}

func TestMemPanicsOnDoubleIssue(t *testing.T) {
	p := NewPort()
	m := NewMem(p)
	m.Step()
	m.Read(0, 0, Size32)
	defer func() {
		if recover() == nil {
			t.Fatal("double issue did not panic")
		}
	}()
	m.Read(0, 4, Size32)
}

func TestMemReset(t *testing.T) {
	p := NewPort()
	m := NewMem(p)
	m.Step()
	m.Read(0, 0, Size32)
	m.ResetMem()
	if !m.Ready() {
		t.Fatal("ResetMem did not return to idle")
	}
}
