package vecadd

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/harness"
	"repro/internal/ref"
)

// run executes the core over n elements with the given inputs, returning C.
func run(t *testing.T, a, b []uint32) []uint32 {
	t.Helper()
	core := New()
	bench, err := harness.New(harness.DefaultConfig(), core)
	if err != nil {
		t.Fatal(err)
	}
	n := len(a)
	pageWords := bench.PageSize() / 4
	if n > pageWords {
		t.Fatalf("test input %d words exceeds one page (%d)", n, pageWords)
	}
	enc := func(v []uint32) []byte {
		out := make([]byte, 4*len(v))
		for i, x := range v {
			binary.LittleEndian.PutUint32(out[4*i:], x)
		}
		return out
	}
	if err := bench.SetParams(uint32(n)); err != nil {
		t.Fatal(err)
	}
	if err := bench.LoadFrame(1, enc(a)); err != nil {
		t.Fatal(err)
	}
	if err := bench.LoadFrame(2, enc(b)); err != nil {
		t.Fatal(err)
	}
	for _, m := range []struct {
		obj   uint8
		frame uint8
	}{{ObjA, 1}, {ObjB, 2}, {ObjC, 3}} {
		if err := bench.MapPage(m.obj, 0, m.frame); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bench.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	raw, err := bench.ReadFrame(3)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	return out
}

func TestMatchesGoldenModel(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 0xffffffff, 100}
	b := []uint32{10, 20, 30, 40, 3, 200}
	got := run(t, a, b)
	want := ref.VecAdd(a, b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestZeroLengthFinishesImmediately(t *testing.T) {
	got := run(t, nil, nil)
	if len(got) != 0 {
		t.Fatal("unexpected output")
	}
}

func TestQuickRandomVectors(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		got := run(t, a, b)
		want := ref.VecAdd(a, b)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestParamPageReleasedAfterStart(t *testing.T) {
	core := New()
	bench, err := harness.New(harness.DefaultConfig(), core)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.SetParams(0); err != nil {
		t.Fatal(err)
	}
	if _, err := bench.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if !bench.IMU.ParamFree() {
		t.Fatal("core did not invalidate the parameter page")
	}
}

func TestUnmappedObjectFaults(t *testing.T) {
	core := New()
	bench, err := harness.New(harness.DefaultConfig(), core)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.SetParams(4); err != nil { // 4 elements but A unmapped
		t.Fatal(err)
	}
	if _, err := bench.Run(100_000); err == nil {
		t.Fatal("expected a fault for unmapped object")
	}
}
