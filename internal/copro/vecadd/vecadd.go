// Package vecadd implements the paper's motivating coprocessor (Figures 3,
// 5 and 6): C[i] = A[i] + B[i] over 32-bit elements. Objects 0, 1 and 2 are
// the A, B and C vectors; the element count arrives as the first scalar in
// the parameter page. The core is a direct transcription of the Figure 5
// FSM onto the portable CP_* interface: no physical address ever appears,
// and the core is oblivious to the dual-port RAM size.
package vecadd

import (
	"repro/internal/bitstream"
	"repro/internal/copro"
	"repro/internal/sim"
)

// CoreName is the identity carried in bitstream images.
const CoreName = "vecadd"

// Object identifiers agreed between the software and hardware designer
// (the FPGA_MAP_OBJECT contract of §3.1).
const (
	ObjA = 0
	ObjB = 1
	ObjC = 2
)

type state uint8

const (
	stWaitStart state = iota
	stParamIssue
	stParamWait
	stReadAIssue
	stReadAWait
	stReadBIssue
	stReadBWait
	stWriteIssue
	stWriteWait
	stDone
)

// Core is the vector-add coprocessor model.
type Core struct {
	port *copro.Port
	mem  *copro.Mem

	st    state
	count uint32 // elements to process
	i     uint32 // current element
	a, b  uint32
	pinv  bool
}

// New returns a reset core.
func New() *Core { return &Core{} }

// Name implements copro.Coprocessor.
func (c *Core) Name() string { return CoreName }

// Bind implements copro.Coprocessor.
func (c *Core) Bind(p *copro.Port) {
	c.port = p
	c.mem = copro.NewMem(p)
}

// ResetCore implements copro.Coprocessor.
func (c *Core) ResetCore() {
	c.st = stWaitStart
	c.count, c.i, c.a, c.b = 0, 0, 0, 0
	c.pinv = false
	if c.mem != nil {
		c.mem.ResetMem()
	}
}

// IdleEdges implements sim.BulkIdler. The adder has no multi-cycle compute
// phase, so only the open-ended windows qualify: waiting for CP_START
// before an operation and holding CP_FIN after completion. Both end only
// through an IMU-domain commit (Start toggling), per the Idler contract.
func (c *Core) IdleEdges() int64 {
	switch c.st {
	case stWaitStart:
		if !c.port.IMURef().Start && c.mem.Quiet() {
			return sim.IdleForever
		}
	case stDone:
		if c.port.IMURef().Start && c.mem.Quiet() && c.port.CPRef().Fin {
			return sim.IdleForever
		}
	}
	return 0
}

// SkipEdges implements sim.BulkIdler: the idle windows carry no per-edge
// state, so skipped edges need no replay.
func (c *Core) SkipEdges(int64) {}

// Eval implements sim.Ticker.
func (c *Core) Eval() {
	in := c.port.IMU()
	c.mem.Step()
	pinv := false

	if !in.Start && c.st != stWaitStart {
		c.ResetCore()
	}

	switch c.st {
	case stWaitStart:
		if in.Start {
			c.st = stParamIssue
		}
	case stParamIssue:
		c.mem.Read(copro.ParamObj, 0, copro.Size32)
		c.st = stParamWait
	case stParamWait:
		if c.mem.Completed() {
			c.count = c.mem.Data()
			pinv = true
			c.i = 0
			if c.count == 0 {
				c.st = stDone
			} else {
				c.st = stReadAIssue
			}
		}
	case stReadAIssue:
		if c.mem.Ready() {
			c.mem.Read(ObjA, c.i*4, copro.Size32)
			c.st = stReadAWait
		}
	case stReadAWait:
		if c.mem.Completed() {
			c.a = c.mem.Data()
			c.st = stReadBIssue
		}
	case stReadBIssue:
		if c.mem.Ready() {
			c.mem.Read(ObjB, c.i*4, copro.Size32)
			c.st = stReadBWait
		}
	case stReadBWait:
		if c.mem.Completed() {
			c.b = c.mem.Data()
			c.st = stWriteIssue
		}
	case stWriteIssue:
		if c.mem.Ready() {
			c.mem.Write(ObjC, c.i*4, copro.Size32, c.a+c.b)
			c.st = stWriteWait
		}
	case stWriteWait:
		if c.mem.Completed() {
			c.i++
			if c.i >= c.count {
				c.st = stDone
			} else {
				c.st = stReadAIssue
			}
		}
	case stDone:
		// Hold CP_FIN until the OS acknowledges by dropping CP_START.
	}

	c.mem.Drive(c.st == stDone, pinv)
}

// Update implements sim.Ticker.
func (c *Core) Update() { c.mem.Commit() }

// Mem exposes the access helper for reports and tests.
func (c *Core) Mem() *copro.Mem { return c.mem }

func init() {
	bitstream.RegisterCore(CoreName, func(h bitstream.Header) (any, error) {
		return New(), nil
	})
}
