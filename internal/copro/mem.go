package copro

// Mem is the handshake helper coprocessor FSMs use to issue virtual-address
// accesses over a Port. It implements the request/acknowledge protocol of
// §3.2: assert CP_ACCESS with a stable request, wait for CP_TLBHIT (which
// arrives four IMU cycles later in the multi-cycle implementation, or stays
// low indefinitely while the OS services a fault), consume the data, drop
// the request, and wait for the hit line to fall before issuing again.
//
// Usage inside a Coprocessor, each clock edge:
//
//	Eval:   m.Step()                  // advance the handshake
//	        if m.Completed() { ... }  // response consumed this edge
//	        if m.Ready()     { m.Read(...) or m.Write(...) }
//	        m.Drive(fin, paramInv)    // schedule port outputs
//	Update: m.Commit()
type Mem struct {
	port *Port
	out  CPOut
	// driven mirrors the committed port value so Drive can skip the
	// schedule/commit pair on the (majority of) edges where the outputs
	// are unchanged; dirty marks that out has diverged from driven since
	// the last Drive.
	driven CPOut
	dirty  bool

	state     memState
	data      uint32
	completed bool

	// Counters for reports and tests.
	Reads, Writes uint64
	WaitCycles    uint64
}

type memState uint8

const (
	memIdle memState = iota
	memIssue
	memDrain
)

// NewMem returns a helper bound to port. The helper starts dirty so the
// first Drive always commits, even onto a port left non-quiescent by a
// previous owner.
func NewMem(port *Port) *Mem { return &Mem{port: port, dirty: true} }

// Step advances the handshake; call first in Eval.
func (m *Mem) Step() {
	m.completed = false
	imu := m.port.IMURef()
	switch m.state {
	case memIssue:
		if imu.TLBHit {
			m.data = imu.DIn
			m.out.Access = false
			m.out.Wr = false
			m.dirty = true
			m.state = memDrain
			m.completed = true
		} else {
			m.WaitCycles++
		}
	case memDrain:
		if !imu.TLBHit {
			m.state = memIdle
		}
	}
}

// Ready reports whether a new request may be issued this edge.
func (m *Mem) Ready() bool { return m.state == memIdle }

// Quiet reports that the handshake is at rest for idle-skip purposes: no
// request is in flight (a request in flight counts WaitCycles every edge,
// so those edges are not inert) and no scheduled output change is waiting
// for the next Drive. A drain in progress — waiting for CP_TLBHIT to fall —
// is quiet: its only pending transition is internal, commits nothing to the
// port, and happens at whichever delivered edge first observes the hit line
// low, so deferring it across a skipped window is unobservable.
func (m *Mem) Quiet() bool { return m.state != memIssue && !m.dirty }

// Busy reports whether a request is in flight or draining.
func (m *Mem) Busy() bool { return m.state != memIdle }

// Completed reports whether a response was consumed on this edge; for reads
// Data then holds the value.
func (m *Mem) Completed() bool { return m.completed }

// Data returns the data of the most recently completed read. Sub-word
// values arrive lane-aligned (already shifted to bit 0 by the IMU).
func (m *Mem) Data() uint32 { return m.data }

// Read issues a read of size bytes at byte offset addr of object obj.
// It must only be called when Ready.
func (m *Mem) Read(obj uint8, addr uint32, size uint8) {
	if m.state != memIdle {
		panic("copro: Read while busy")
	}
	m.Reads++
	m.dirty = true
	m.out.Obj = obj
	m.out.Addr = addr
	m.out.Size = size
	m.out.Wr = false
	m.out.DOut = 0
	m.out.Access = true
	m.state = memIssue
}

// Write issues a write of size bytes at byte offset addr of object obj.
// It must only be called when Ready.
func (m *Mem) Write(obj uint8, addr uint32, size uint8, v uint32) {
	if m.state != memIdle {
		panic("copro: Write while busy")
	}
	m.Writes++
	m.dirty = true
	m.out.Obj = obj
	m.out.Addr = addr
	m.out.Size = size
	m.out.Wr = true
	m.out.DOut = v
	m.out.Access = true
	m.state = memIssue
}

// Drive schedules the port outputs for this edge; call last in Eval.
func (m *Mem) Drive(fin, paramInv bool) {
	if !m.dirty && fin == m.driven.Fin && paramInv == m.driven.ParamInv {
		// The committed port value already matches; scheduling it again
		// would commit the identical bundle.
		return
	}
	m.dirty = false
	out := m.out
	out.Fin = fin
	out.ParamInv = paramInv
	m.driven = out
	m.port.SetCP(out)
}

// Commit commits the port outputs; call from Update.
func (m *Mem) Commit() { m.port.CommitCP() }

// ResetMem returns the helper to idle (coprocessor reset).
func (m *Mem) ResetMem() {
	m.state = memIdle
	m.out = CPOut{}
	m.completed = false
	// The port may have been Reset (forced to the zero bundle) outside a
	// clock edge; resynchronise the committed-value mirror.
	m.driven = m.port.CP()
	m.dirty = true
}
