package ideacp

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/harness"
	"repro/internal/imu"
	"repro/internal/ref"
)

// ideaConfig is the paper's clock plan: 6 MHz core, 24 MHz IMU and memory.
func ideaConfig(mode imu.Mode) harness.Config {
	return harness.Config{
		CoproHz: 6_000_000,
		IMUHz:   24_000_000,
		DPBytes: 16 * 1024,
		PageLog: 11,
		Mode:    mode,
	}
}

// encryptOnBench runs the core over in (one page max) with the given key.
func encryptOnBench(t *testing.T, mode imu.Mode, key ref.IDEAKey, in []byte) ([]byte, int64) {
	t.Helper()
	core := New()
	bench, err := harness.New(ideaConfig(mode), core)
	if err != nil {
		t.Fatal(err)
	}
	if len(in)%8 != 0 || len(in) > bench.PageSize() {
		t.Fatalf("input must be whole blocks within a page, got %d bytes", len(in))
	}
	ek := ref.ExpandIDEAKey(key)
	params := []uint32{uint32(len(in) / 8)}
	for _, w := range PackSubkeys(ek) {
		params = append(params, w)
	}
	if err := bench.SetParams(params...); err != nil {
		t.Fatal(err)
	}
	if err := bench.LoadFrame(1, in); err != nil {
		t.Fatal(err)
	}
	if err := bench.MapPage(ObjIn, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := bench.MapPage(ObjOut, 0, 2); err != nil {
		t.Fatal(err)
	}
	cycles, err := bench.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := bench.ReadFrame(2)
	if err != nil {
		t.Fatal(err)
	}
	return raw[:len(in)], cycles
}

func TestMatchesGoldenCipher(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var key ref.IDEAKey
	rng.Read(key[:])
	in := make([]byte, 512)
	rng.Read(in)
	got, _ := encryptOnBench(t, imu.MultiCycle, key, in)
	ek := ref.ExpandIDEAKey(key)
	want := ref.IDEAApply(&ek, in)
	if !bytes.Equal(got, want) {
		t.Fatal("coprocessor ciphertext differs from golden model")
	}
}

func TestDecryptionRoundTripThroughHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var key ref.IDEAKey
	rng.Read(key[:])
	in := make([]byte, 256)
	rng.Read(in)
	ek := ref.ExpandIDEAKey(key)
	ct := ref.IDEAApply(&ek, in)

	// Run the *decryption* schedule through the coprocessor.
	core := New()
	bench, err := harness.New(ideaConfig(imu.MultiCycle), core)
	if err != nil {
		t.Fatal(err)
	}
	dk := ref.InvertIDEAKey(ek)
	params := []uint32{uint32(len(ct) / 8)}
	for _, w := range PackSubkeys(dk) {
		params = append(params, w)
	}
	if err := bench.SetParams(params...); err != nil {
		t.Fatal(err)
	}
	if err := bench.LoadFrame(1, ct); err != nil {
		t.Fatal(err)
	}
	if err := bench.MapPage(ObjIn, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := bench.MapPage(ObjOut, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := bench.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	raw, _ := bench.ReadFrame(2)
	if !bytes.Equal(raw[:len(in)], in) {
		t.Fatal("hardware decryption did not recover the plaintext")
	}
}

func TestKnownAnswerVectorThroughHardware(t *testing.T) {
	var key ref.IDEAKey
	for i := 0; i < 8; i++ {
		key[2*i+1] = byte(i + 1)
	}
	// Plaintext 0000 0001 0002 0003 big-endian.
	in := []byte{0x00, 0x00, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03}
	got, _ := encryptOnBench(t, imu.MultiCycle, key, in)
	want := []byte{0x11, 0xfb, 0xed, 0x2b, 0x01, 0x98, 0x6d, 0xe5}
	if !bytes.Equal(got, want) {
		t.Fatalf("ciphertext = %x, want %x", got, want)
	}
}

func TestPipelinedIMUIsFasterSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var key ref.IDEAKey
	rng.Read(key[:])
	in := make([]byte, 512)
	rng.Read(in)
	multi, cm := encryptOnBench(t, imu.MultiCycle, key, in)
	pipe, cp := encryptOnBench(t, imu.Pipelined, key, in)
	if !bytes.Equal(multi, pipe) {
		t.Fatal("IMU mode changed the computation")
	}
	if cp >= cm {
		t.Fatalf("pipelined IMU (%d cycles) not faster than multi-cycle (%d)", cp, cm)
	}
}

func TestSubkeyPacking(t *testing.T) {
	var ek [ref.IDEASubkeys]uint16
	for i := range ek {
		ek[i] = uint16(i * 257)
	}
	packed := PackSubkeys(ek)
	for i, w := range packed {
		if uint16(w) != ek[2*i] || uint16(w>>16) != ek[2*i+1] {
			t.Fatalf("word %d mispacked", i)
		}
	}
}

func TestEndiannessHelpers(t *testing.T) {
	x1, x2 := be16Pair(0x44332211)
	if x1 != 0x1122 || x2 != 0x3344 {
		t.Fatalf("be16Pair = %04x %04x", x1, x2)
	}
	if le32FromBE(x1, x2) != 0x44332211 {
		t.Fatal("le32FromBE not the inverse of be16Pair")
	}
}
