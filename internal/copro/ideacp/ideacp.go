// Package ideacp implements the IDEA coprocessor of the paper's Figure 9: a
// 3-stage-pipelined cipher core clocked at 6 MHz behind an IMU and memory
// subsystem at 24 MHz, synchronised by the CP_TLBHIT stall mechanism.
//
// Object 0 is the input stream and object 1 the output stream (both
// processed as 64-bit ECB blocks). The parameter page carries the block
// count and the 52 pre-expanded 16-bit subkeys — the key schedule runs in
// software, as in the paper's port where only the critical kernel moved to
// hardware. With its 3-stage round pipeline the core sustains roughly one
// round per cycle once full; ComputeCycles models the per-block occupancy
// (8 rounds + output transform + pipeline fill).
package ideacp

import (
	"repro/internal/bitstream"
	"repro/internal/copro"
	"repro/internal/ref"
	"repro/internal/sim"
)

// CoreName is the identity carried in bitstream images.
const CoreName = "idea"

// Object identifiers of the software/hardware contract.
const (
	ObjIn  = 0
	ObjOut = 1
)

// ComputeCycles is the core-clock occupancy of one block in the 3-stage
// round pipeline: 8 rounds at one cycle each in steady state, plus the
// output transform and pipeline fill.
const ComputeCycles = 12

// Parameter-page layout (byte offsets).
const (
	ParamCount   = 0 // u32: number of 8-byte blocks
	ParamSubkeys = 4 // 26 u32 words, two little-endian subkeys per word
)

type state uint8

const (
	stWaitStart state = iota
	stParamCountIssue
	stParamCountWait
	stParamKeyIssue
	stParamKeyWait
	stReadLoIssue
	stReadLoWait
	stReadHiIssue
	stReadHiWait
	stCompute
	stWriteLoIssue
	stWriteLoWait
	stWriteHiIssue
	stWriteHiWait
	stDone
)

// Core is the IDEA coprocessor model.
type Core struct {
	port *copro.Port
	mem  *copro.Mem

	st      state
	blocks  uint32
	blk     uint32
	keyIdx  uint32
	keys    [ref.IDEASubkeys]uint16
	wLo     uint32 // first input word of the current block
	wHi     uint32
	yLo     uint32 // first output word
	yHi     uint32
	compute uint32 // remaining compute cycles
	pinv    bool
}

// New returns a reset core.
func New() *Core { return &Core{} }

// Name implements copro.Coprocessor.
func (c *Core) Name() string { return CoreName }

// Bind implements copro.Coprocessor.
func (c *Core) Bind(p *copro.Port) {
	c.port = p
	c.mem = copro.NewMem(p)
}

// ResetCore implements copro.Coprocessor.
func (c *Core) ResetCore() {
	c.st = stWaitStart
	c.blocks, c.blk, c.keyIdx = 0, 0, 0
	c.compute = 0
	if c.mem != nil {
		c.mem.ResetMem()
	}
}

// be16Pair splits a little-endian memory word into the two big-endian
// 16-bit cipher words it contains.
func be16Pair(w uint32) (uint16, uint16) {
	x1 := uint16(w&0xff)<<8 | uint16(w>>8&0xff)
	x2 := uint16(w>>16&0xff)<<8 | uint16(w>>24&0xff)
	return x1, x2
}

// le32FromBE packs two big-endian 16-bit cipher words back into a
// little-endian memory word.
func le32FromBE(x1, x2 uint16) uint32 {
	return uint32(x1>>8) | uint32(x1&0xff)<<8 | uint32(x2>>8)<<16 | uint32(x2&0xff)<<24
}

// IdleEdges implements sim.BulkIdler: the core advertises the edges Eval
// would provably no-op (or purely count down) so the engine can bulk-skip
// them. Three windows qualify: waiting for CP_START before an operation,
// the multi-cycle cipher compute between the block read and the block
// write (the decrement edges are inert; the edge that drains the pipeline
// and latches the ciphertext must be delivered), and holding CP_FIN after
// completion until the OS acknowledges. Each window ends only through an
// IMU-domain commit (Start toggling) or the core's own advertised
// countdown, which is exactly the contract sim.BulkIdler requires.
func (c *Core) IdleEdges() int64 {
	switch c.st {
	case stWaitStart:
		if !c.port.IMURef().Start && c.mem.Quiet() {
			return sim.IdleForever
		}
	case stCompute:
		if c.compute > 1 && c.port.IMURef().Start && c.mem.Quiet() {
			return int64(c.compute) - 1
		}
	case stDone:
		if c.port.IMURef().Start && c.mem.Quiet() && c.port.CPRef().Fin {
			return sim.IdleForever
		}
	}
	return 0
}

// SkipEdges implements sim.BulkIdler: skipped compute edges decrement the
// pipeline-occupancy countdown exactly as delivered edges would. The
// open-ended windows carry no per-edge state, so there is nothing to do.
func (c *Core) SkipEdges(k int64) {
	if c.st == stCompute {
		c.compute -= uint32(k)
	}
}

// Eval implements sim.Ticker.
func (c *Core) Eval() {
	in := c.port.IMU()
	c.mem.Step()
	pinv := false

	if !in.Start && c.st != stWaitStart {
		c.ResetCore()
	}

	switch c.st {
	case stWaitStart:
		if in.Start {
			c.st = stParamCountIssue
		}
	case stParamCountIssue:
		c.mem.Read(copro.ParamObj, ParamCount, copro.Size32)
		c.st = stParamCountWait
	case stParamCountWait:
		if c.mem.Completed() {
			c.blocks = c.mem.Data()
			c.keyIdx = 0
			c.st = stParamKeyIssue
		}
	case stParamKeyIssue:
		if c.mem.Ready() {
			c.mem.Read(copro.ParamObj, ParamSubkeys+c.keyIdx*4, copro.Size32)
			c.st = stParamKeyWait
		}
	case stParamKeyWait:
		if c.mem.Completed() {
			w := c.mem.Data()
			c.keys[2*c.keyIdx] = uint16(w)
			c.keys[2*c.keyIdx+1] = uint16(w >> 16)
			c.keyIdx++
			if int(c.keyIdx) >= ref.IDEASubkeys/2 {
				pinv = true
				c.blk = 0
				if c.blocks == 0 {
					c.st = stDone
				} else {
					c.st = stReadLoIssue
				}
			} else {
				c.st = stParamKeyIssue
			}
		}
	case stReadLoIssue:
		if c.mem.Ready() {
			c.mem.Read(ObjIn, c.blk*8, copro.Size32)
			c.st = stReadLoWait
		}
	case stReadLoWait:
		if c.mem.Completed() {
			c.wLo = c.mem.Data()
			c.st = stReadHiIssue
		}
	case stReadHiIssue:
		if c.mem.Ready() {
			c.mem.Read(ObjIn, c.blk*8+4, copro.Size32)
			c.st = stReadHiWait
		}
	case stReadHiWait:
		if c.mem.Completed() {
			c.wHi = c.mem.Data()
			c.compute = ComputeCycles
			c.st = stCompute
		}
	case stCompute:
		c.compute--
		if c.compute == 0 {
			x1, x2 := be16Pair(c.wLo)
			x3, x4 := be16Pair(c.wHi)
			y1, y2, y3, y4 := ref.IDEACryptBlock(&c.keys, x1, x2, x3, x4)
			c.yLo = le32FromBE(y1, y2)
			c.yHi = le32FromBE(y3, y4)
			c.st = stWriteLoIssue
		}
	case stWriteLoIssue:
		if c.mem.Ready() {
			c.mem.Write(ObjOut, c.blk*8, copro.Size32, c.yLo)
			c.st = stWriteLoWait
		}
	case stWriteLoWait:
		if c.mem.Completed() {
			c.st = stWriteHiIssue
		}
	case stWriteHiIssue:
		if c.mem.Ready() {
			c.mem.Write(ObjOut, c.blk*8+4, copro.Size32, c.yHi)
			c.st = stWriteHiWait
		}
	case stWriteHiWait:
		if c.mem.Completed() {
			c.blk++
			if c.blk >= c.blocks {
				c.st = stDone
			} else {
				c.st = stReadLoIssue
			}
		}
	case stDone:
	}

	c.mem.Drive(c.st == stDone, pinv)
}

// Update implements sim.Ticker.
func (c *Core) Update() { c.mem.Commit() }

// Mem exposes the access helper for reports and tests.
func (c *Core) Mem() *copro.Mem { return c.mem }

// PackSubkeys lays out 52 subkeys as the 26 parameter words the core
// expects (two little-endian subkeys per word). The application side uses
// this when filling the parameter page.
func PackSubkeys(keys [ref.IDEASubkeys]uint16) [ref.IDEASubkeys / 2]uint32 {
	var out [ref.IDEASubkeys / 2]uint32
	for i := range out {
		out[i] = uint32(keys[2*i]) | uint32(keys[2*i+1])<<16
	}
	return out
}

func init() {
	bitstream.RegisterCore(CoreName, func(h bitstream.Header) (any, error) {
		return New(), nil
	})
}
