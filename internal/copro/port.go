// Package copro defines the portable coprocessor interface of the paper's
// Figure 4 — the CP_* signal bundle between a standardised coprocessor and
// the Interface Management Unit — together with a handshake helper that
// coprocessor FSMs use to issue virtual-address accesses.
//
// Everything on this side of the IMU is platform independent: a coprocessor
// names an object (CP_OBJ) and a byte offset within it (CP_ADDR) and never
// sees physical dual-port-RAM addresses, memory sizes, or allocation policy.
// Each Port carries exactly one coprocessor; a multi-session IMU simply
// binds several ports (one per channel) over the same dual-port memory, so
// cores need no changes to run as tenants of a shared shell.
package copro

import "repro/internal/sim"

// ParamObj is the reserved object identifier of the parameter-passing page
// (§3.2 of the paper: scalar parameters are read from a designated page at
// start-up, after which the coprocessor invalidates it).
const ParamObj = 0xff

// Access sizes in bytes carried on the control bundle.
const (
	Size8  = 1
	Size16 = 2
	Size32 = 4
)

// CPOut is the set of signals driven by the coprocessor, committed at the
// coprocessor's clock edge.
type CPOut struct {
	Obj      uint8  // CP_OBJ: object identifier
	Addr     uint32 // CP_ADDR: byte offset within the object
	Size     uint8  // access width in bytes (1, 2 or 4)
	Access   bool   // CP_ACCESS: request valid
	Wr       bool   // CP_WR: request is a write
	DOut     uint32 // CP_DOUT: write data
	Fin      bool   // CP_FIN: operation complete
	ParamInv bool   // CP_PINV: parameter page consumed, invalidate it
}

// IMUOut is the set of signals driven by the IMU towards the coprocessor.
type IMUOut struct {
	Start  bool   // CP_START: begin operation
	TLBHit bool   // CP_TLBHIT: translation + memory access completed
	DIn    uint32 // CP_DIN: read data (sub-word values are lane-aligned)
}

// Port is the wire bundle between one coprocessor and one IMU. Each side
// owns one direction: it writes its outputs during Eval via the Set
// methods and commits them in Update; it reads the opposite direction's
// committed values. This enforces the two-phase synchronous contract of
// package sim across the boundary.
type Port struct {
	cp  sim.Reg[CPOut]
	imu sim.Reg[IMUOut]
}

// NewPort returns a quiescent port.
func NewPort() *Port { return &Port{} }

// CP returns the committed coprocessor-driven signals.
func (p *Port) CP() CPOut { return p.cp.Get() }

// CPRef returns a read-only view of the committed coprocessor-driven
// signals. The pointed-to value is stable for the duration of an Eval (only
// the coprocessor's Update commits it); callers must not write through it.
// Hot per-edge consumers (the IMU's idle check) use this to avoid copying
// the bundle on every edge.
func (p *Port) CPRef() *CPOut { return p.cp.Ref() }

// SetCP schedules the coprocessor-driven signals (coprocessor Eval).
func (p *Port) SetCP(v CPOut) { p.cp.Set(v) }

// CommitCP commits the coprocessor-driven signals (coprocessor Update).
func (p *Port) CommitCP() { p.cp.Commit() }

// IMU returns the committed IMU-driven signals.
func (p *Port) IMU() IMUOut { return p.imu.Get() }

// IMURef returns a read-only view of the committed IMU-driven signals,
// under the same contract as CPRef.
func (p *Port) IMURef() *IMUOut { return p.imu.Ref() }

// SetIMU schedules the IMU-driven signals (IMU Eval).
func (p *Port) SetIMU(v IMUOut) { p.imu.Set(v) }

// CommitIMU commits the IMU-driven signals (IMU Update).
func (p *Port) CommitIMU() { p.imu.Commit() }

// Reset forces both directions to quiescent values (testbench use).
func (p *Port) Reset() {
	p.cp.Force(CPOut{})
	p.imu.Force(IMUOut{})
}

// Coprocessor is a synchronous coprocessor model. It is attached to its own
// clock domain; on every rising edge Eval reads p.IMU() and schedules
// p.SetCP, and Update commits internal state plus the port.
type Coprocessor interface {
	sim.Ticker
	// Name identifies the core (matches its bitstream identity).
	Name() string
	// Bind attaches the port before simulation starts.
	Bind(p *Port)
	// ResetCore returns the FSM to its power-on state.
	ResetCore()
}
