// Package adpcmdec implements the adpcmdecode coprocessor of the paper's
// Figure 8: an IMA/DVI ADPCM decoder that reads packed 4-bit codes from
// object 0 and writes 16-bit PCM samples to object 1 — producing four times
// its input volume, which is what drives the dual-port RAM under pressure
// as the input grows.
//
// The decode data path mirrors the reference codec exactly (same ROMs, same
// clamping); each nibble costs one compute cycle between the translated
// memory accesses, matching the simple, non-pipelined core the paper runs
// at 40 MHz.
package adpcmdec

import (
	"repro/internal/bitstream"
	"repro/internal/copro"
	"repro/internal/ref"
	"repro/internal/sim"
)

// CoreName is the identity carried in bitstream images.
const CoreName = "adpcmdec"

// Object identifiers of the software/hardware contract.
const (
	ObjIn  = 0 // packed ADPCM codes, byte stream
	ObjOut = 1 // decoded PCM samples, int16 stream
)

// DecodeCycles is the core-clock cost of decoding one nibble. The paper's
// decoder is a simple, area-minimal core (40 MHz, ~1.5x over the 133 MHz
// ARM): the step-size lookup comes from block RAM and the difference
// accumulation and clamping run serially on a shared adder, so one code
// takes many cycles rather than one.
const DecodeCycles = 16

type state uint8

const (
	stWaitStart state = iota
	stParamIssue
	stParamWait
	stReadIssue
	stReadWait
	stDecodeHi
	stWriteHiIssue
	stWriteHiWait
	stDecodeLo
	stWriteLoIssue
	stWriteLoWait
	stDone
)

// Core is the ADPCM decoder coprocessor model.
type Core struct {
	port *copro.Port
	mem  *copro.Mem

	st      state
	nbytes  uint32 // input bytes to decode
	i       uint32 // current input byte
	sample  uint32 // output sample index
	current byte   // latched input byte
	dec     ref.ADPCMState
	out     int16
	wait    uint32 // remaining serial decode cycles
}

// New returns a reset core.
func New() *Core { return &Core{} }

// Name implements copro.Coprocessor.
func (c *Core) Name() string { return CoreName }

// Bind implements copro.Coprocessor.
func (c *Core) Bind(p *copro.Port) {
	c.port = p
	c.mem = copro.NewMem(p)
}

// ResetCore implements copro.Coprocessor.
func (c *Core) ResetCore() {
	c.st = stWaitStart
	c.nbytes, c.i, c.sample = 0, 0, 0
	c.current = 0
	c.wait = 0
	c.dec = ref.ADPCMState{}
	if c.mem != nil {
		c.mem.ResetMem()
	}
}

// IdleEdges implements sim.BulkIdler. The serial decode states are pure
// countdowns: from a committed wait of 0 the next edge arms the counter at
// DecodeCycles and the following DecodeCycles-1 edges only decrement it, so
// all but the final edge (which performs the nibble decode and must be
// delivered) are inert. Waiting for CP_START and holding CP_FIN are
// open-ended idle windows ended only by an IMU commit.
func (c *Core) IdleEdges() int64 {
	switch c.st {
	case stWaitStart:
		if !c.port.IMURef().Start && c.mem.Quiet() {
			return sim.IdleForever
		}
	case stDecodeHi, stDecodeLo:
		if c.port.IMURef().Start && c.mem.Quiet() {
			if c.wait == 0 {
				return DecodeCycles - 1
			}
			if c.wait > 1 {
				return int64(c.wait) - 1
			}
		}
	case stDone:
		if c.port.IMURef().Start && c.mem.Quiet() && c.port.CPRef().Fin {
			return sim.IdleForever
		}
	}
	return 0
}

// SkipEdges implements sim.BulkIdler: a skipped decode edge arms the
// countdown if this is the first edge of the window and decrements it
// otherwise, exactly as the delivered edges would have.
func (c *Core) SkipEdges(k int64) {
	if c.st == stDecodeHi || c.st == stDecodeLo {
		if c.wait == 0 {
			c.wait = DecodeCycles
		}
		c.wait -= uint32(k)
	}
}

// Eval implements sim.Ticker.
func (c *Core) Eval() {
	in := c.port.IMU()
	c.mem.Step()
	pinv := false

	if !in.Start && c.st != stWaitStart {
		c.ResetCore()
	}

	switch c.st {
	case stWaitStart:
		if in.Start {
			c.st = stParamIssue
		}
	case stParamIssue:
		c.mem.Read(copro.ParamObj, 0, copro.Size32)
		c.st = stParamWait
	case stParamWait:
		if c.mem.Completed() {
			c.nbytes = c.mem.Data()
			pinv = true
			c.i, c.sample = 0, 0
			c.dec = ref.ADPCMState{}
			if c.nbytes == 0 {
				c.st = stDone
			} else {
				c.st = stReadIssue
			}
		}
	case stReadIssue:
		if c.mem.Ready() {
			c.mem.Read(ObjIn, c.i, copro.Size8)
			c.st = stReadWait
		}
	case stReadWait:
		if c.mem.Completed() {
			c.current = byte(c.mem.Data())
			c.st = stDecodeHi
		}
	case stDecodeHi:
		// Serial decode: block-RAM step lookup plus shared-adder
		// difference accumulation and clamping.
		if c.wait == 0 {
			c.wait = DecodeCycles
		}
		c.wait--
		if c.wait == 0 {
			c.out = ref.ADPCMDecodeNibble(&c.dec, c.current>>4)
			c.st = stWriteHiIssue
		}
	case stWriteHiIssue:
		if c.mem.Ready() {
			c.mem.Write(ObjOut, c.sample*2, copro.Size16, uint32(uint16(c.out)))
			c.st = stWriteHiWait
		}
	case stWriteHiWait:
		if c.mem.Completed() {
			c.sample++
			c.st = stDecodeLo
		}
	case stDecodeLo:
		if c.wait == 0 {
			c.wait = DecodeCycles
		}
		c.wait--
		if c.wait == 0 {
			c.out = ref.ADPCMDecodeNibble(&c.dec, c.current&0xf)
			c.st = stWriteLoIssue
		}
	case stWriteLoIssue:
		if c.mem.Ready() {
			c.mem.Write(ObjOut, c.sample*2, copro.Size16, uint32(uint16(c.out)))
			c.st = stWriteLoWait
		}
	case stWriteLoWait:
		if c.mem.Completed() {
			c.sample++
			c.i++
			if c.i >= c.nbytes {
				c.st = stDone
			} else {
				c.st = stReadIssue
			}
		}
	case stDone:
	}

	c.mem.Drive(c.st == stDone, pinv)
}

// Update implements sim.Ticker.
func (c *Core) Update() { c.mem.Commit() }

// Mem exposes the access helper for reports and tests.
func (c *Core) Mem() *copro.Mem { return c.mem }

func init() {
	bitstream.RegisterCore(CoreName, func(h bitstream.Header) (any, error) {
		return New(), nil
	})
}
