package adpcmdec

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/harness"
	"repro/internal/ref"
)

// decodeOnBench runs the core over packed input (must fit one page; output
// must fit four frames) and returns the decoded samples.
func decodeOnBench(t *testing.T, packed []byte) []int16 {
	t.Helper()
	core := New()
	bench, err := harness.New(harness.DefaultConfig(), core)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) > bench.PageSize() {
		t.Fatalf("input %d bytes exceeds one page", len(packed))
	}
	if err := bench.SetParams(uint32(len(packed))); err != nil {
		t.Fatal(err)
	}
	if err := bench.LoadFrame(1, packed); err != nil {
		t.Fatal(err)
	}
	if err := bench.MapPage(ObjIn, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Output: 4x volume; map as many pages as needed starting at frame 2.
	outBytes := len(packed) * 4
	pages := (outBytes + bench.PageSize() - 1) / bench.PageSize()
	for p := 0; p < pages; p++ {
		if err := bench.MapPage(ObjOut, uint32(p), uint8(2+p)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bench.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	out := make([]int16, len(packed)*2)
	for p := 0; p < pages; p++ {
		raw, err := bench.ReadFrame(2 + p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(raw); i += 2 {
			idx := (p*bench.PageSize() + i) / 2
			if idx < len(out) {
				out[idx] = int16(binary.LittleEndian.Uint16(raw[i:]))
			}
		}
	}
	return out
}

func TestMatchesGoldenDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	packed := make([]byte, 512) // 1024 samples -> 2 KB output, one page
	rng.Read(packed)
	got := decodeOnBench(t, packed)
	want := ref.ADPCMDecode(ref.ADPCMState{}, packed)
	if len(got) != len(want) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMultiPageOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	packed := make([]byte, 2048) // full input page -> 8 KB output, 4 pages
	rng.Read(packed)
	got := decodeOnBench(t, packed)
	want := ref.ADPCMDecode(ref.ADPCMState{}, packed)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestOutputIsFourTimesInput(t *testing.T) {
	packed := make([]byte, 256)
	got := decodeOnBench(t, packed)
	if len(got)*2 != len(packed)*4 {
		t.Fatalf("output volume %d bytes, want %d", len(got)*2, len(packed)*4)
	}
}

func TestEmptyInputCompletes(t *testing.T) {
	got := decodeOnBench(t, nil)
	if len(got) != 0 {
		t.Fatal("unexpected samples for empty input")
	}
}
