package sw

import (
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/ref"
)

func newCtx(t *testing.T) *cpu.Ctx {
	t.Helper()
	sd := mem.NewSDRAM(1<<22, mem.DefaultSDRAMTiming())
	core, err := cpu.NewCore(133_000_000, cpu.DefaultCostModel(), cpu.DefaultCacheConfig(), sd)
	if err != nil {
		t.Fatal(err)
	}
	return cpu.NewCtx(core)
}

func writer(x *cpu.Ctx) func(uint32, uint32) {
	return func(addr, v uint32) {
		if err := x.Core().SDRAM.Store().Write32(addr, v, 0xf); err != nil {
			panic(err)
		}
	}
}

func TestVecAddMatchesGolden(t *testing.T) {
	x := newCtx(t)
	st := x.Core().SDRAM.Store()
	a := []uint32{5, 10, 0xffffffff, 7}
	for i, v := range a {
		_ = st.Write32(0x1000+uint32(4*i), v, 0xf)
		_ = st.Write32(0x2000+uint32(4*i), v*3, 0xf)
	}
	VecAdd(x, 0x1000, 0x2000, 0x3000, uint32(len(a)))
	for i, v := range a {
		got, _ := st.Read32(0x3000 + uint32(4*i))
		if got != v+v*3 {
			t.Fatalf("C[%d] = %d, want %d", i, got, v+v*3)
		}
	}
	if x.Core().Cycles() == 0 {
		t.Fatal("no cycles charged")
	}
}

func TestADPCMDecodeMatchesGolden(t *testing.T) {
	x := newCtx(t)
	st := x.Core().SDRAM.Store()
	tb := WriteTables(writer(x), 0x100)
	rng := rand.New(rand.NewSource(9))
	packed := make([]byte, 1024)
	rng.Read(packed)
	if err := st.WriteBytes(0x1000, packed); err != nil {
		t.Fatal(err)
	}
	ADPCMDecode(x, tb, 0x1000, 0x8000, uint32(len(packed)))
	want := ref.ADPCMDecode(ref.ADPCMState{}, packed)
	for i, w := range want {
		got, _ := st.Read32(0x8000 + uint32(i*2)&^3)
		v := uint16(got >> (8 * (uint32(i*2) % 4)))
		if int16(v) != w {
			t.Fatalf("sample %d: got %d, want %d", i, int16(v), w)
		}
	}
}

func TestIDEAApplyMatchesGolden(t *testing.T) {
	x := newCtx(t)
	st := x.Core().SDRAM.Store()
	rng := rand.New(rand.NewSource(13))
	var key ref.IDEAKey
	rng.Read(key[:])
	ek := ref.ExpandIDEAKey(key)
	WriteSubkeys(writer(x), 0x100, ek)
	in := make([]byte, 512)
	rng.Read(in)
	if err := st.WriteBytes(0x1000, in); err != nil {
		t.Fatal(err)
	}
	IDEAApply(x, 0x1000, 0x4000, 0x100, uint32(len(in)/8))
	want := ref.IDEAApply(&ek, in)
	got, _ := st.ReadBytes(0x4000, len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d: got %#x, want %#x", i, got[i], want[i])
		}
	}
}

// TestCalibration asserts the cost model lands in the neighbourhood of the
// paper's published software times (docs/ARCHITECTURE.md, Calibration): ≈146 cycles/sample for
// adpcmdecode and ≈6.6k cycles/block for IDEA, both ±35%.
func TestCalibration(t *testing.T) {
	x := newCtx(t)
	st := x.Core().SDRAM.Store()
	tb := WriteTables(writer(x), 0x100)
	rng := rand.New(rand.NewSource(1))
	packed := make([]byte, 4096)
	rng.Read(packed)
	_ = st.WriteBytes(0x1000, packed)
	x.Core().ResetStats()
	ADPCMDecode(x, tb, 0x1000, 0x10000, uint32(len(packed)))
	perSample := float64(x.Core().Cycles()) / float64(len(packed)*2)
	if perSample < 95 || perSample > 197 {
		t.Errorf("adpcm = %.1f cycles/sample, want ≈146 ±35%%", perSample)
	}

	var key ref.IDEAKey
	rng.Read(key[:])
	ek := ref.ExpandIDEAKey(key)
	WriteSubkeys(writer(x), 0x200, ek)
	in := make([]byte, 4096)
	rng.Read(in)
	_ = st.WriteBytes(0x20000, in)
	x.Core().ResetStats()
	IDEAApply(x, 0x20000, 0x30000, 0x200, uint32(len(in)/8))
	perBlock := float64(x.Core().Cycles()) / float64(len(in)/8)
	if perBlock < 4300 || perBlock > 8900 {
		t.Errorf("idea = %.0f cycles/block, want ≈6600 ±35%%", perBlock)
	}
	t.Logf("calibration: adpcm %.1f cycles/sample, idea %.0f cycles/block", perSample, perBlock)
}
