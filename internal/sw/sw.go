// Package sw contains the pure-software versions of the paper's benchmark
// kernels, written against the timed CPU model: every memory access,
// arithmetic operation and branch both computes the real result on the
// simulated SDRAM and charges cycles, so the "pure SW" bars of Figures 8
// and 9 are produced by actually running the algorithms on the ARM-stripe
// model.
//
// The per-statement accounting mirrors the unoptimised C the paper's port
// used (operands bounce through the stack; the IDEA modular multiplication
// calls the software division library). SpillALU is the single calibration
// knob documented in docs/ARCHITECTURE.md (Calibration): it models the residual per-iteration
// stack traffic of the -O0 build and is fixed by matching the paper's
// published pure-software times.
package sw

import (
	"repro/internal/cpu"
	"repro/internal/ref"
)

// SpillALU is the calibrated per-sample/per-operation stack-spill factor
// (ALU-cost units) of the unoptimised compile; see docs/ARCHITECTURE.md.
const SpillALU = 43

// Tables holds the SDRAM addresses of the ADPCM codec ROMs; the software
// decoder loads them like the C original loads its const arrays.
type Tables struct {
	Index uint32 // 16 int32 entries
	Step  uint32 // 89 int32 entries
}

// WriteTables materialises the codec tables at addr (190 words) and returns
// their layout. Alloc 512 bytes.
func WriteTables(write func(addr uint32, v uint32), base uint32) Tables {
	idx := ref.ADPCMIndexTable()
	for i, v := range idx {
		write(base+uint32(4*i), uint32(int32(v)))
	}
	stepBase := base + 64
	st := ref.ADPCMStepTable()
	for i, v := range st {
		write(stepBase+uint32(4*i), uint32(int32(v)))
	}
	return Tables{Index: base, Step: stepBase}
}

// VecAdd is the software version of the motivating example: C[i]=A[i]+B[i]
// over n 32-bit elements.
func VecAdd(x *cpu.Ctx, a, b, c uint32, n uint32) {
	x.Call()
	for i := uint32(0); i < n; i++ {
		x.Branch(true)
		av := x.Load32(a + 4*i)
		bv := x.Load32(b + 4*i)
		x.ALU(4) // index arithmetic + add
		x.Store32(c+4*i, av+bv)
	}
	x.Branch(false)
}

// adpcmStep decodes one 4-bit code, charging the cost of the C decoder's
// body: table lookups, conditional difference accumulation, clamping, and
// the stack traffic of the unoptimised build.
func adpcmStep(x *cpu.Ctx, tb Tables, valprev *int32, index *int32, delta uint32) int16 {
	step := int32(x.Load32(tb.Step + uint32(*index)*4))

	*index += int32(x.Load32(tb.Index + (delta&0xf)*4))
	x.ALU(2)
	if *index < 0 {
		x.Branch(true)
		*index = 0
	} else {
		x.Branch(false)
	}
	if *index > 88 {
		x.Branch(true)
		*index = 88
	} else {
		x.Branch(false)
	}

	sign := delta & 8
	mag := int32(delta & 7)
	x.ALU(2)

	vpdiff := step >> 3
	x.ALU(1)
	if mag&4 != 0 {
		x.Branch(true)
		vpdiff += step
		x.ALU(1)
	} else {
		x.Branch(false)
	}
	if mag&2 != 0 {
		x.Branch(true)
		vpdiff += step >> 1
		x.ALU(2)
	} else {
		x.Branch(false)
	}
	if mag&1 != 0 {
		x.Branch(true)
		vpdiff += step >> 2
		x.ALU(2)
	} else {
		x.Branch(false)
	}

	if sign != 0 {
		x.Branch(true)
		*valprev -= vpdiff
	} else {
		x.Branch(false)
		*valprev += vpdiff
	}
	x.ALU(1)
	if *valprev > 32767 {
		x.Branch(true)
		*valprev = 32767
	} else {
		x.Branch(false)
	}
	if *valprev < -32768 {
		x.Branch(true)
		*valprev = -32768
	} else {
		x.Branch(false)
	}
	x.ALU(SpillALU) // stack spill/reload of the unoptimised build
	return int16(*valprev)
}

// ADPCMDecode decodes nbytes of packed codes at in (high nibble first) into
// 16-bit samples at out, exactly as ref.ADPCMDecode does, while charging
// the ARM cost model.
func ADPCMDecode(x *cpu.Ctx, tb Tables, in, out uint32, nbytes uint32) {
	x.Call()
	var valprev, index int32
	sample := uint32(0)
	for i := uint32(0); i < nbytes; i++ {
		x.Branch(true)
		b := uint32(x.Load8(in + i))
		x.ALU(3) // unpack both nibbles
		s := adpcmStep(x, tb, &valprev, &index, b>>4)
		x.Store16(out+sample*2, uint16(s))
		sample++
		s = adpcmStep(x, tb, &valprev, &index, b&0xf)
		x.Store16(out+sample*2, uint16(s))
		sample++
		x.ALU(2) // loop/index bookkeeping
	}
	x.Branch(false)
}

// ideaMul is the software modular multiplication: the C original computes
// (a*b) % 0x10001 through the division library, which dominates the IDEA
// software profile on the divider-less ARM9.
func ideaMul(x *cpu.Ctx, a, b uint16) uint16 {
	x.Call()
	x.ALU(2)
	if a == 0 {
		x.Branch(true)
		x.ALU(1)
		return uint16(1 - int32(b))
	}
	x.Branch(false)
	if b == 0 {
		x.Branch(true)
		x.ALU(1)
		return uint16(1 - int32(a))
	}
	x.Branch(false)
	x.Mul()
	x.Div() // % 0x10001 via __aeabi_uidivmod
	x.ALU(3)
	return ref.IdeaMul(a, b)
}

// ideaAdd charges a 16-bit modular addition.
func ideaAdd(x *cpu.Ctx, a, b uint16) uint16 {
	x.ALU(2)
	return a + b
}

// ideaXor charges a XOR.
func ideaXor(x *cpu.Ctx, a, b uint16) uint16 {
	x.ALU(1)
	return a ^ b
}

// IDEAApply processes nblocks 8-byte blocks from in to out using the 52
// subkeys stored little-endian at keys (as 16-bit halfwords), charging the
// ARM cost model. The transformation matches ref.IDEAApply bit for bit.
func IDEAApply(x *cpu.Ctx, in, out, keys uint32, nblocks uint32) {
	x.Call()
	for blk := uint32(0); blk < nblocks; blk++ {
		x.Branch(true)
		base := in + blk*8
		// Big-endian 16-bit loads, as the C code assembles them.
		x1 := uint16(x.Load8(base))<<8 | uint16(x.Load8(base+1))
		x2 := uint16(x.Load8(base+2))<<8 | uint16(x.Load8(base+3))
		x3 := uint16(x.Load8(base+4))<<8 | uint16(x.Load8(base+5))
		x4 := uint16(x.Load8(base+6))<<8 | uint16(x.Load8(base+7))
		x.ALU(8)

		ki := uint32(0)
		next := func() uint16 {
			v := x.Load16(keys + ki*2)
			ki++
			x.ALU(1)
			return v
		}
		for r := 0; r < ref.IDEARounds; r++ {
			x.Branch(true)
			x1 = ideaMul(x, x1, next())
			x2 = ideaAdd(x, x2, next())
			x3 = ideaAdd(x, x3, next())
			x4 = ideaMul(x, x4, next())

			s3 := x3
			x3 = ideaMul(x, ideaXor(x, x1, x3), next())
			s2 := x2
			x2 = ideaMul(x, ideaAdd(x, ideaXor(x, x2, x4), x3), next())
			x3 = ideaAdd(x, x3, x2)

			x1 = ideaXor(x, x1, x2)
			x4 = ideaXor(x, x4, x3)
			x2 = ideaXor(x, x2, s3)
			x3 = ideaXor(x, x3, s2)
			x.ALU(SpillALU) // per-round stack traffic
		}
		y1 := ideaMul(x, x1, next())
		y2 := ideaAdd(x, x3, next())
		y3 := ideaAdd(x, x2, next())
		y4 := ideaMul(x, x4, next())

		ob := out + blk*8
		x.Store8(ob, byte(y1>>8))
		x.Store8(ob+1, byte(y1))
		x.Store8(ob+2, byte(y2>>8))
		x.Store8(ob+3, byte(y2))
		x.Store8(ob+4, byte(y3>>8))
		x.Store8(ob+5, byte(y3))
		x.Store8(ob+6, byte(y4>>8))
		x.Store8(ob+7, byte(y4))
		x.ALU(6) // loop/index bookkeeping
	}
	x.Branch(false)
}

// WriteSubkeys stores 52 subkeys as little-endian halfwords at base
// (104 bytes) for IDEAApply.
func WriteSubkeys(write func(addr uint32, v uint32), base uint32, keys [ref.IDEASubkeys]uint16) {
	for i := 0; i < len(keys); i += 2 {
		w := uint32(keys[i]) | uint32(keys[i+1])<<16
		write(base+uint32(i*2), w)
	}
}
