package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/telemetry"
)

// telemetryFlags bundles the -metrics-out, -trace-out and -sample-ps flag
// values. Telemetry attaches to exactly one serving run (serve, saturate,
// fleet, record, or a single-file replay); the exports are deterministic,
// so two same-seed runs write byte-identical files.
type telemetryFlags struct {
	metricsOut string
	traceOut   string
	samplePs   float64
}

// enabled reports whether any telemetry output was requested.
func (tf telemetryFlags) enabled() bool {
	return tf.metricsOut != "" || tf.traceOut != ""
}

// validate checks the telemetry flag combination before any simulation
// work starts; every rejection is a one-line error carrying a usage hint
// (main turns it into a non-zero exit), matching the other validators.
func (tf telemetryFlags) validate(ramp bool) error {
	if tf.samplePs < 0 {
		return fmt.Errorf("telemetry: -sample-ps must be non-negative, got %g (simulated picoseconds between gauge samples; try -sample-ps 1e9)", tf.samplePs)
	}
	if tf.samplePs > 0 && tf.metricsOut == "" {
		return fmt.Errorf("telemetry: -sample-ps needs -metrics-out to receive the sampled series")
	}
	if ramp && tf.enabled() {
		return fmt.Errorf("telemetry: -metrics-out and -trace-out export exactly one run, but -ramp sweeps many (export the knee rate instead: -rps <knee>)")
	}
	for _, p := range []string{tf.metricsOut, tf.traceOut} {
		if p == "" {
			continue
		}
		if info, err := os.Stat(filepath.Dir(p)); err != nil || !info.IsDir() {
			return fmt.Errorf("telemetry: output directory %s does not exist (for %s)", filepath.Dir(p), p)
		}
	}
	return nil
}

// meter builds the run's meter, or nil when no telemetry was requested —
// the off switch the instrumented layers treat as a no-op.
func (tf telemetryFlags) meter() *telemetry.Meter {
	if !tf.enabled() {
		return nil
	}
	return telemetry.NewMeter(tf.samplePs)
}

// export writes the requested telemetry files from a finished run's meter
// (a nil meter writes nothing). -metrics-out renders the JSON dump when
// the path ends in .json and Prometheus text otherwise; -trace-out is
// Chrome trace-event JSON either way.
func (tf telemetryFlags) export(m *telemetry.Meter) error {
	if m == nil {
		return nil
	}
	if tf.metricsOut != "" {
		var data []byte
		if strings.HasSuffix(tf.metricsOut, ".json") {
			var err error
			if data, err = m.DumpJSON(); err != nil {
				return fmt.Errorf("telemetry: %w", err)
			}
		} else {
			data = []byte(m.PromText())
		}
		if err := os.WriteFile(tf.metricsOut, data, 0o644); err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		fmt.Printf("metrics     %s\n", tf.metricsOut)
	}
	if tf.traceOut != "" {
		data, err := m.Trace().Marshal()
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		if err := os.WriteFile(tf.traceOut, data, 0o644); err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		fmt.Printf("trace       %s (load in ui.perfetto.dev or chrome://tracing)\n", tf.traceOut)
	}
	return nil
}
